// Command gpuscoutd is the long-lived GPUscout analysis service: the
// one-shot CLI's pipeline behind an HTTP API with a bounded job queue,
// a worker pool, a content-addressed report cache, and Prometheus-format
// metrics. Stdlib only.
//
//	gpuscoutd -addr :8090 -workers 4 -queue 64 -cache 256
//
//	curl -s localhost:8090/v1/workloads
//	curl -s -X POST localhost:8090/v1/analyze -d '{"workload":"sgemm_naive","scale":128}'
//	curl -s -X POST 'localhost:8090/v1/analyze?async=1' -d '{"workload":"jacobi_naive"}'
//	curl -s localhost:8090/v1/jobs/j00000002
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpuscout"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		workers  = flag.Int("workers", 0, "concurrent analysis workers (0 = #CPUs, capped at 8)")
		queue    = flag.Int("queue", 64, "bounded job-queue depth (full queue => 429)")
		cache    = flag.Int("cache", 256, "report-cache capacity in entries (negative disables)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-job timeout")
		maxBody  = flag.Int64("max-upload", 8<<20, "max request body bytes (SASS/cubin uploads)")
		retained = flag.Int("retained-jobs", 1024, "finished jobs kept for GET /v1/jobs/{id}")
		simW     = flag.Int("sim-workers", 1, "default per-launch simulation parallelism (sampled SMs simulated concurrently); jobs may override via sim_workers")
		budgetsF = flag.String("stage-budgets", "", `per-stage deadline split "parse,sim,scout,verify" (e.g. "5,55,15,25"; "off" disables staged degradation; empty = defaults)`)
		retries  = flag.Int("retry-attempts", 2, "max execution attempts per job for transient failures (1 disables retry)")
		backoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, capped, jittered)")
		quarAft  = flag.Int("quarantine-after", 2, "consecutive failures before an input is quarantined (negative disables)")
		quarCool = flag.Duration("quarantine-cooldown", 30*time.Second, "how long a quarantined input stays rejected before a probe is admitted")
	)
	flag.Parse()

	budgets, err := gpuscout.ParseStageBudgets(*budgetsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(2)
	}

	svc, err := gpuscout.NewService(gpuscout.ServiceConfig{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		DefaultTimeout:     *timeout,
		MaxUploadBytes:     *maxBody,
		MaxJobsRetained:    *retained,
		SimWorkers:         *simW,
		StageBudgets:       budgets,
		RetryAttempts:      *retries,
		RetryBackoff:       *backoff,
		QuarantineAfter:    *quarAft,
		QuarantineCooldown: *quarCool,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown, in readiness-first order: flip /readyz to 503 so
	// load balancers stop routing, then stop accepting connections, then
	// cancel every queued/running job and drain the worker pool.
	idle := make(chan struct{})
	go func() {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		log.Print("gpuscoutd: shutting down")
		svc.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("gpuscoutd: shutdown: %v", err)
		}
		svc.Close()
		close(idle)
	}()

	log.Printf("gpuscoutd: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(1)
	}
	<-idle
}
