// Command gpuscoutd is the long-lived GPUscout analysis service: the
// one-shot CLI's pipeline behind an HTTP API with a bounded job queue,
// a worker pool, a content-addressed report cache, and Prometheus-format
// metrics. Stdlib only.
//
// It runs in one of three modes:
//
//	standalone (default)  one self-contained daemon
//	worker                a cluster replica: standalone + peer cache-fill
//	coordinator           routes /v1/analyze to worker replicas by
//	                      consistent hashing on the input fingerprint
//
//	gpuscoutd -addr :8090 -workers 4 -queue 64 -cache 256
//
//	# a three-replica cluster on one host
//	gpuscoutd -mode worker -addr :8091 -self http://127.0.0.1:8091 \
//	          -replicas http://127.0.0.1:8091,http://127.0.0.1:8092,http://127.0.0.1:8093 &
//	...(8092, 8093 likewise)...
//	gpuscoutd -mode coordinator -addr :8090 \
//	          -replicas http://127.0.0.1:8091,http://127.0.0.1:8092,http://127.0.0.1:8093
//
//	curl -s localhost:8090/v1/workloads
//	curl -s -X POST localhost:8090/v1/analyze -d '{"workload":"sgemm_naive","scale":128}'
//	curl -s -X POST localhost:8090/v1/analyze/batch -d '{"requests":[{"workload":"jacobi_naive"},{"workload":"jacobi_naive"}]}'
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gpuscout"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		mode     = flag.String("mode", "standalone", "process role: standalone, worker (replica with peer cache-fill), or coordinator")
		version  = flag.Bool("version", false, "print version and exit")
		workers  = flag.Int("workers", 0, "concurrent analysis workers (0 = #CPUs, capped at 8)")
		queue    = flag.Int("queue", 64, "bounded job-queue depth (full queue => 429)")
		cache    = flag.Int("cache", 256, "report-cache capacity in entries (negative disables)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-job timeout")
		maxBody  = flag.Int64("max-upload", 8<<20, "max request body bytes (SASS/cubin uploads)")
		maxBatch = flag.Int("max-batch", 4096, "max requests per /v1/analyze/batch body")
		retained = flag.Int("retained-jobs", 1024, "finished jobs kept for GET /v1/jobs/{id}")
		simW     = flag.Int("sim-workers", 1, "default per-launch simulation parallelism (sampled SMs simulated concurrently); jobs may override via sim_workers")
		budgetsF = flag.String("stage-budgets", "", `per-stage deadline split "parse,sim,scout,verify" (e.g. "5,55,15,25"; "off" disables staged degradation; empty = defaults)`)
		retries  = flag.Int("retry-attempts", 2, "max execution attempts per job for transient failures (1 disables retry)")
		backoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, capped, jittered)")
		quarAft  = flag.Int("quarantine-after", 2, "consecutive failures before an input is quarantined (negative disables)")
		quarCool = flag.Duration("quarantine-cooldown", 30*time.Second, "how long a quarantined input stays rejected before a probe is admitted")

		dataDir   = flag.String("data-dir", "", "crash-safe persistence directory: write-ahead job journal, persistent report store, durable breaker state (empty = in-memory only)")
		fsyncPol  = flag.String("fsync", "always", "journal/report flush discipline: always (safe default), interval, or never")
		fsyncIv   = flag.Duration("fsync-interval", 100*time.Millisecond, "journal flush period under -fsync interval")
		storeMaxB = flag.Int64("store-max-bytes", 1<<30, "persistent report store byte bound; least-recently-used entries are evicted past it (negative = unlimited)")
		cacheMaxB = flag.Int64("cache-max-bytes", 0, "in-memory report cache byte bound on top of -cache entries (0 = entries-only)")

		replicasF = flag.String("replicas", "", "comma-separated replica base URLs — the cluster's static member list (worker and coordinator modes)")
		selfF     = flag.String("self", "", "this worker's own advertised base URL, as it appears in -replicas (worker mode)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per replica on the consistent-hash ring (0 = default; must match across the cluster)")
		healthIv  = flag.Duration("health-interval", 2*time.Second, "coordinator /readyz poll period per replica")
		peerTmo   = flag.Duration("peer-timeout", 750*time.Millisecond, "worker peer cache-fill budget before falling back to local simulation")
		proxyTmo  = flag.Duration("proxy-timeout", 5*time.Minute, "coordinator per-attempt proxy timeout")
	)
	flag.Parse()

	if *version {
		fmt.Printf("gpuscoutd %s (%s, %s/%s)\n",
			gpuscout.ServiceVersion(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	replicas := splitList(*replicasF)
	switch *mode {
	case "standalone", "worker", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "gpuscoutd: unknown -mode %q (want standalone, worker, or coordinator)\n", *mode)
		os.Exit(2)
	}

	if *mode == "coordinator" {
		runCoordinator(*addr, gpuscout.ClusterConfig{
			Replicas:       replicas,
			VNodes:         *vnodes,
			HealthInterval: *healthIv,
			ProxyTimeout:   *proxyTmo,
			MaxUploadBytes: *maxBody,
			MaxBatchItems:  *maxBatch,
		})
		return
	}

	budgets, err := gpuscout.ParseStageBudgets(*budgetsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(2)
	}

	cfg := gpuscout.ServiceConfig{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		CacheMaxBytes:      *cacheMaxB,
		DefaultTimeout:     *timeout,
		MaxUploadBytes:     *maxBody,
		MaxBatchItems:      *maxBatch,
		MaxJobsRetained:    *retained,
		SimWorkers:         *simW,
		StageBudgets:       budgets,
		RetryAttempts:      *retries,
		RetryBackoff:       *backoff,
		QuarantineAfter:    *quarAft,
		QuarantineCooldown: *quarCool,
		Mode:               *mode,
	}

	// Durable state: accepted jobs survive a crash (write-ahead journal),
	// computed reports survive a restart (content-addressed disk store),
	// and quarantined fingerprints stay quarantined. Worker replicas warm
	// from disk before asking peers.
	var st *gpuscout.Store
	if *dataDir != "" {
		policy, err := gpuscout.ParseFsyncPolicy(*fsyncPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
			os.Exit(2)
		}
		st, err = gpuscout.OpenStore(*dataDir, gpuscout.StoreOptions{
			FsyncPolicy:   policy,
			FsyncInterval: *fsyncIv,
			MaxBytes:      *storeMaxB,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	if *mode == "worker" {
		if len(replicas) == 0 || *selfF == "" {
			fmt.Fprintln(os.Stderr, "gpuscoutd: -mode worker needs -replicas and -self")
			os.Exit(2)
		}
		pc := gpuscout.NewPeerCache(replicas, strings.TrimRight(*selfF, "/"), gpuscout.PeerCacheConfig{
			VNodes:  *vnodes,
			Timeout: *peerTmo,
		})
		cfg.PeerFill = pc.Fill
	}

	svc, err := gpuscout.NewService(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(1)
	}
	closeCore := func() {
		svc.Close()
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("gpuscoutd: close data dir: %v", err)
			}
		}
	}
	serve(*addr, *mode, svc.Handler(), svc.BeginShutdown, closeCore)
}

// runCoordinator brings up the cluster front-end: health polling first
// (one synchronous sweep), then the proxy.
func runCoordinator(addr string, cfg gpuscout.ClusterConfig) {
	coord, err := gpuscout.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(2)
	}
	coord.Start()
	serve(addr, "coordinator", coord.Handler(), coord.BeginShutdown, coord.Close)
}

// serve runs the HTTP server with the shared graceful-shutdown order:
// flip /readyz to 503 so load balancers stop routing, stop accepting
// connections, then drain the core.
func serve(addr, mode string, h http.Handler, beginShutdown, closeCore func()) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	idle := make(chan struct{})
	go func() {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		log.Print("gpuscoutd: shutting down")
		beginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("gpuscoutd: shutdown: %v", err)
		}
		closeCore()
		close(idle)
	}()

	log.Printf("gpuscoutd: %s %s listening on %s", mode, gpuscout.ServiceVersion(), addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gpuscoutd:", err)
		os.Exit(1)
	}
	<-idle
}

// splitList parses a comma-separated URL list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(strings.TrimRight(part, "/")); p != "" {
			out = append(out, p)
		}
	}
	return out
}
