// Command gpusim runs a kernel on the simulated GPU and prints raw
// simulation data: duration, occupancy, stall breakdown, cache/DRAM
// counters, and optionally the disassembly or the PTX view. It is the
// "just run it" companion to the gpuscout analysis CLI.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpuscout"
	"gpuscout/internal/gpu"
	"gpuscout/internal/ptx"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

func main() {
	var (
		name     = flag.String("workload", "", "workload to run (see gpuscout -list)")
		scale    = flag.Int("scale", 0, "workload scale (0 = default)")
		archName = flag.String("arch", "sm_70", "GPU architecture")
		sample   = flag.Int("sample-sms", 2, "SMs to simulate")
		disas    = flag.Bool("disas", false, "print the kernel disassembly")
		ptxView  = flag.Bool("ptx", false, "print the PTX view")
	)
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	arch, err := gpu.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.Build(*name, *scale)
	if err != nil {
		fatal(err)
	}
	if *disas {
		fmt.Println(gpuscout.PrintSASS(w.Kernel))
	}
	if *ptxView {
		fmt.Println(ptx.Lift(w.Kernel).Print())
	}

	dev := sim.NewDevice(arch)
	res, err := workloads.Execute(w, dev, sim.Config{SampleSMs: *sample})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("kernel        %s (%s)\n", w.Kernel.Name, w.Description)
	fmt.Printf("grid/block    %v / %v (%d blocks, %d simulated on %d of %d SMs)\n",
		res.Grid, res.Block, res.TotalBlocks, res.SimulatedBlocks, res.SimulatedSMs, res.NumSMs)
	fmt.Printf("duration      %.0f cycles = %.3f ms at %.2f GHz\n",
		res.Cycles, res.DurationSec*1e3, arch.ClockGHz)
	fmt.Printf("occupancy     theoretical %.0f%% (limited by %s), achieved %.0f%%\n",
		100*res.Occupancy.Theoretical, res.Occupancy.Limiter, 100*res.AchievedOccupancy)
	fmt.Printf("instructions  %d warp, %d thread (IPC %.2f)\n",
		res.Counters.WarpInsts, res.Counters.ThreadInsts, res.IPC())
	fmt.Printf("registers     %d/thread, %d B shared/block, %d B local/thread\n",
		w.Kernel.NumRegs, w.Kernel.SharedBytes, w.Kernel.LocalBytes)

	fmt.Println("\nwarp stalls (share of stall cycles):")
	type sv struct {
		s sim.Stall
		v float64
	}
	var stalls []sv
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if s == sim.StallSelected {
			continue
		}
		if share := res.StallShare(s); share > 0 {
			stalls = append(stalls, sv{s, share})
		}
	}
	sort.Slice(stalls, func(i, j int) bool { return stalls[i].v > stalls[j].v })
	for _, e := range stalls {
		fmt.Printf("  %-22s %6.2f%%\n", e.s, 100*e.v)
	}

	c := res.Counters
	fmt.Println("\nmemory system (simulated blocks):")
	fmt.Printf("  global  ld %d sectors (%.1f%% L1 hit), st %d sectors\n",
		c.GlobalLdSectors, pct(c.GlobalLdSectorHits, c.GlobalLdSectors), c.GlobalStSectors)
	fmt.Printf("  local   ld %d sectors (%.1f%% L1 hit), st %d sectors\n",
		c.LocalLdSectors, pct(c.LocalLdSectorHits, c.LocalLdSectors), c.LocalStSectors)
	fmt.Printf("  shared  %d ld / %d st insts, %d / %d transactions\n",
		c.SharedLdInsts, c.SharedStInsts, c.SharedLdTrans, c.SharedStTrans)
	fmt.Printf("  texture %d sectors (%.1f%% hit)\n", c.TexSectors, pct(c.TexSectorHits, c.TexSectors))
	fmt.Printf("  atomics %d global, %d shared\n", c.GlobalAtomics, c.SharedAtomics)
	fmt.Printf("  L2      %d sectors (%.1f%% hit)\n", c.L2Sectors, pct(c.L2Hits, c.L2Sectors))
	fmt.Printf("  DRAM    %d B read, %d B written\n", c.DRAMReadBytes, c.DRAMWriteBytes)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpusim:", err)
	os.Exit(1)
}
