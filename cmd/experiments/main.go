// Command experiments regenerates the paper's evaluation artifacts
// (§5, Figures 2/5/6/7). Run everything or a single experiment:
//
//	experiments -run all
//	experiments -run fig2|fig5|fig6|mixbench|jacobi|sgemm|compare
//	experiments -run all -fast      (reduced problem scales)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuscout/internal/experiments"
	"gpuscout/internal/sim"
)

func main() {
	var (
		which = flag.String("run", "all", "experiment: all, fig2, fig5, fig6, mixbench, jacobi, sgemm, compare")
		fast  = flag.Bool("fast", false, "reduced problem scales (quicker, same shapes)")
	)
	flag.Parse()

	cfg := sim.Config{SampleSMs: 1}
	mixIters, jacobiSize, sgemmN := 96, 1024, 256
	fig6Sizes := []int{64, 128, 256, 512}
	if *fast {
		mixIters, jacobiSize, sgemmN = 24, 512, 128
		fig6Sizes = []int{64, 128, 256}
	}

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("\n######## %s ########\n\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig2", func() error {
		text, err := experiments.Fig2Report()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	})
	run("fig5", func() error {
		text, err := experiments.Fig5Report()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	})
	run("mixbench", func() error {
		t, err := experiments.Mixbench51(mixIters, cfg)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	})
	run("jacobi", func() error {
		t, err := experiments.Jacobi52(jacobiSize, cfg)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	})
	run("sgemm", func() error {
		t, err := experiments.SGEMM53(sgemmN, cfg)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	})
	run("fig6", func() error {
		s, err := experiments.Fig6Overhead(fig6Sizes, cfg)
		if err != nil {
			return err
		}
		fmt.Println(s.Render())
		return nil
	})
	run("compare", func() error {
		text, err := experiments.CompareDemo()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	})
	run("ablations", func() error {
		for _, f := range []func() (*experiments.Table, error){
			func() (*experiments.Table, error) { return experiments.AblateMSHRs(512, nil, cfg) },
			func() (*experiments.Table, error) { return experiments.AblateSampling("jacobi_naive", 512, nil) },
			func() (*experiments.Table, error) { return experiments.SGEMMScaleSweep(nil, cfg) },
			func() (*experiments.Table, error) { return experiments.AblateLGQueue(nil, cfg) },
		} {
			t, err := f()
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
		}
		return nil
	})

	valid := []string{"all", "fig2", "fig5", "fig6", "mixbench", "jacobi", "sgemm", "compare", "ablations"}
	ok := false
	for _, v := range valid {
		if *which == v {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q (valid: %s)\n", *which, strings.Join(valid, ", "))
		os.Exit(2)
	}
}
