// Command gpuscout is the analysis tool CLI, mirroring the workflow of
// the paper's tool (§3.1): point it at a kernel — a built-in case-study
// workload, a cubin, or disassembled SASS text — and it prints the
// three-pillar report (static SASS analysis, warp stalls, metrics).
//
//	gpuscout -workload sgemm_naive -scale 256        full analysis
//	gpuscout -workload sgemm_naive -dry-run          static analysis only
//	gpuscout -cubin prog.cubin -kernel _Z5sgemm...   static analysis of a cubin
//	gpuscout -sass kernel.sass                       static analysis of SASS text
//	gpuscout -list                                   list built-in workloads
//	gpuscout -compare other_workload                 metric diff vs -workload
//	gpuscout -workload w -arch-compare sm80          cross-arch finding diff
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gpuscout"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload to analyze (see -list)")
		scale    = flag.Int("scale", 0, "workload scale (0 = default)")
		cubinF   = flag.String("cubin", "", "cubin file to analyze (static analysis)")
		kernelN  = flag.String("kernel", "", "kernel name within the cubin (default: first)")
		sassF    = flag.String("sass", "", "SASS text file to analyze (static analysis)")
		dryRun   = flag.Bool("dry-run", false, "static SASS analysis only, no GPU involvement")
		verify   = flag.Bool("verify", false, "re-execute each recommendation's paired optimized variant and attach measured verdicts (workload analyses only)")
		sens     = flag.Bool("sensitivity", false, "re-simulate under the hardware perturbation matrix, attach dominant-resource sensitivity per finding, and rank findings by estimated speedup (workload analyses only)")
		slices   = flag.Bool("slice", false, "attach a backward def-use slice (producer chain) to each finding's highest-stall PC")
		archName = flag.String("arch", "sm_70", "GPU architecture (sm_70/V100, sm_60/P100, sm_80/A100; sm70/sm80 also accepted)")
		archCmp  = flag.String("arch-compare", "", "second architecture: analyze -workload on both and print the cross-arch finding comparison")
		sample   = flag.Int("sample-sms", 2, "SMs to simulate (sampling)")
		period   = flag.Float64("sampling-period", 0, "CUPTI sampling period in cycles (0 = default)")
		list     = flag.Bool("list", false, "list built-in workloads")
		compare  = flag.String("compare", "", "second workload: print old-vs-new metric comparison")
		srcView  = flag.Bool("source-view", false, "also print the correlated source/SASS view")
		jsonOut  = flag.String("json", "", "write the report as JSON to this file")
		region   = flag.String("region", "", "profile a source-line region, e.g. -region 5:10")
		timeout  = flag.Duration("timeout", 0, "overall analysis deadline (0 = none); with stage budgets, a slow stage degrades the report instead of failing it")
		budgetsF = flag.String("stage-budgets", "", `per-stage deadline split "parse,sim,scout,verify" (e.g. "5,55,15,25"; "off" disables staged degradation; empty = defaults)`)
	)
	flag.Parse()

	if *list {
		for _, n := range gpuscout.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	arch, err := gpuscout.ArchByName(*archName)
	if err != nil {
		fatal(err)
	}
	budgets, err := gpuscout.ParseStageBudgets(*budgetsF)
	if err != nil {
		fatal(err)
	}
	opts := gpuscout.Options{
		DryRun:         *dryRun,
		SamplingPeriod: *period,
		Sim:            gpuscout.SimConfig{SampleSMs: *sample},
		Budgets:        budgets,
		StallSlices:    *slices,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch {
	case *workload != "" && *archCmp != "":
		other, err := gpuscout.ArchByName(*archCmp)
		if err != nil {
			fatal(err)
		}
		cmp, err := gpuscout.AnalyzeWorkloadCrossArch(ctx, *workload, *scale, arch, other, opts, *verify)
		if err != nil {
			fatal(err)
		}
		fmt.Println(cmp.Render())
		if *jsonOut != "" {
			data, err := cmp.MarshalJSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}

	case *workload != "":
		rep, err := gpuscout.AnalyzeWorkloadContext(ctx, *workload, *scale, arch, opts)
		if err != nil {
			fatal(err)
		}
		var verified *gpuscout.VerifySummary
		if *verify {
			if *dryRun {
				fatal(fmt.Errorf("-verify needs the dynamic pillars; drop -dry-run"))
			}
			verified, err = gpuscout.VerifyWorkloadReport(rep, *workload, *scale, arch, opts)
			if err != nil {
				fatal(err)
			}
		}
		var swept *gpuscout.Sensitivity
		if *sens {
			if *dryRun {
				fatal(fmt.Errorf("-sensitivity needs a baseline measurement; drop -dry-run"))
			}
			swept, err = gpuscout.SweepWorkloadReportContext(ctx, rep, *workload, *scale, arch, opts)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Println(rep.Render())
		if verified != nil {
			fmt.Printf("verification: %d recommendation(s) re-executed — %d confirmed, %d neutral, %d refuted\n",
				verified.Checked, verified.Confirmed, verified.Neutral, verified.Refuted)
		}
		if swept != nil {
			fmt.Printf("sensitivity: %d perturbation(s) re-simulated — %s\n",
				len(swept.Deltas), swept.Summary())
		}
		if *srcView {
			fmt.Println(rep.SourceView())
		}
		if *jsonOut != "" {
			if err := gpuscout.WriteReportJSON(*jsonOut, rep); err != nil {
				fatal(err)
			}
		}
		if *region != "" {
			var from, to int
			if _, err := fmt.Sscanf(*region, "%d:%d", &from, &to); err != nil {
				fatal(fmt.Errorf("bad -region %q (want from:to): %w", *region, err))
			}
			prof, err := rep.ProfileRegion(from, to)
			if err != nil {
				fatal(err)
			}
			fmt.Println(prof.Render())
		}
		if *compare != "" {
			rep2, err := gpuscout.AnalyzeWorkloadContext(ctx, *compare, *scale, arch, opts)
			if err != nil {
				fatal(err)
			}
			cmp, err := gpuscout.Compare(rep, rep2)
			if err != nil {
				fatal(err)
			}
			fmt.Println(cmp.Render())
		}

	case *cubinF != "":
		bin, err := gpuscout.LoadCubin(*cubinF)
		if err != nil {
			fatal(err)
		}
		if len(bin.Kernels) == 0 {
			fatal(fmt.Errorf("cubin %s holds no kernels", *cubinF))
		}
		// Without -kernel, every kernel in the module is analyzed (the
		// paper's Configuration stage disassembles the whole cubin).
		kernels := bin.Kernels
		if *kernelN != "" {
			k, err := bin.Kernel(*kernelN)
			if err != nil {
				fatal(err)
			}
			kernels = []*gpuscout.Kernel{k}
		}
		for _, k := range kernels {
			rep, err := gpuscout.DryRun(arch, k)
			if err != nil {
				fatal(err)
			}
			fmt.Println(rep.Render())
		}

	case *sassF != "":
		text, err := os.ReadFile(*sassF)
		if err != nil {
			fatal(err)
		}
		k, err := gpuscout.ParseSASS(string(text))
		if err != nil {
			fatal(err)
		}
		rep, err := gpuscout.DryRun(arch, k)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Render())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpuscout:", err)
	os.Exit(1)
}
