package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gpuscout
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelLaunch/sgemm_naive           	       3	 323249914 ns/op	         0.9989 sm_speedup_x
BenchmarkParallelLaunch/sgemm_naive-4         	       3	 120768490 ns/op	         3.749 sm_speedup_x
BenchmarkParallelLaunch/jacobi_naive          	       3	 129750708 ns/op	         0.9984 sm_speedup_x
BenchmarkParallelLaunch/jacobi_naive-4        	       3	  41635622 ns/op	         3.316 sm_speedup_x
BenchmarkDryRun-4                             	     100	   1234567 ns/op
PASS
ok  	gpuscout	5.950s
`

func TestParseBench(t *testing.T) {
	samples, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(samples))
	}
	s := samples[1]
	if s.Name != "BenchmarkParallelLaunch/sgemm_naive" || s.CPUs != 4 {
		t.Errorf("sample 1 = %q cpus %d, want sgemm_naive cpus 4", s.Name, s.CPUs)
	}
	if s.NsPerOp != 120768490 {
		t.Errorf("NsPerOp = %v", s.NsPerOp)
	}
	if s.Metrics["sm_speedup_x"] != 3.749 {
		t.Errorf("sm_speedup_x = %v", s.Metrics["sm_speedup_x"])
	}
	// The unsuffixed run is CPUs 1; a workload name with dashes must not
	// be mis-split (only a trailing integer > 1 is a cpu suffix).
	if samples[0].CPUs != 1 {
		t.Errorf("unsuffixed sample parsed as cpus %d", samples[0].CPUs)
	}
}

func TestGatePass(t *testing.T) {
	samples, _ := parseBench(strings.NewReader(sampleOutput))
	rep := gate(samples, 4, 1.10)
	if !rep.Pass {
		t.Fatalf("gate failed: %+v", rep.Pairs)
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("paired %d benchmarks, want 2 (DryRun has no 1-cpu baseline)", len(rep.Pairs))
	}
	// Pairs are sorted by name.
	if rep.Pairs[0].Name != "BenchmarkParallelLaunch/jacobi_naive" {
		t.Errorf("pair order: %q first", rep.Pairs[0].Name)
	}
	p := rep.Pairs[1]
	if p.Ratio >= 1 || p.Speedup < 2.5 {
		t.Errorf("sgemm pair ratio %.3f speedup %.3f", p.Ratio, p.Speedup)
	}
	if p.SMSpeedup != 3.749 {
		t.Errorf("SMSpeedup = %v", p.SMSpeedup)
	}
}

func TestGateRegression(t *testing.T) {
	slow := strings.ReplaceAll(sampleOutput,
		"BenchmarkParallelLaunch/sgemm_naive-4         	       3	 120768490 ns/op",
		"BenchmarkParallelLaunch/sgemm_naive-4         	       3	 400000000 ns/op")
	samples, _ := parseBench(strings.NewReader(slow))
	rep := gate(samples, 4, 1.10)
	if rep.Pass {
		t.Fatal("gate passed a 24% regression")
	}
	var failed int
	for _, p := range rep.Pairs {
		if !p.Pass {
			failed++
			if p.Name != "BenchmarkParallelLaunch/sgemm_naive" {
				t.Errorf("wrong pair failed: %q", p.Name)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d pairs failed, want 1", failed)
	}
}

func TestGateToleratesSmallSlowdown(t *testing.T) {
	// 5% slower than baseline stays within the 10% budget — noise on a
	// loaded or single-core host must not flap the gate.
	in := `BenchmarkParallelLaunch/x 	 3	 100000000 ns/op
BenchmarkParallelLaunch/x-4 	 3	 105000000 ns/op
`
	samples, err := parseBench(strings.NewReader(in))
	if err != nil || len(samples) != 2 {
		t.Fatalf("parse: %v, %d samples", err, len(samples))
	}
	if rep := gate(samples, 4, 1.10); !rep.Pass {
		t.Errorf("5%% slowdown failed the 10%% gate: %+v", rep.Pairs)
	}
}
