package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gpuscout
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelLaunch/sgemm_naive           	       3	 323249914 ns/op	         0.9989 sm_speedup_x
BenchmarkParallelLaunch/sgemm_naive-4         	       3	 120768490 ns/op	         3.749 sm_speedup_x
BenchmarkParallelLaunch/jacobi_naive          	       3	 129750708 ns/op	         0.9984 sm_speedup_x
BenchmarkParallelLaunch/jacobi_naive-4        	       3	  41635622 ns/op	         3.316 sm_speedup_x
BenchmarkDryRun-4                             	     100	   1234567 ns/op
PASS
ok  	gpuscout	5.950s
`

func cpuSet(ns ...int) map[int]bool {
	m := map[int]bool{}
	for _, n := range ns {
		m[n] = true
	}
	return m
}

func TestParseBench(t *testing.T) {
	samples, err := parseBench(strings.NewReader(sampleOutput), cpuSet(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(samples))
	}
	s := samples[1]
	if s.Name != "BenchmarkParallelLaunch/sgemm_naive" || s.CPUs != 4 {
		t.Errorf("sample 1 = %q cpus %d, want sgemm_naive cpus 4", s.Name, s.CPUs)
	}
	if s.NsPerOp != 120768490 {
		t.Errorf("NsPerOp = %v", s.NsPerOp)
	}
	if s.Metrics["sm_speedup_x"] != 3.749 {
		t.Errorf("sm_speedup_x = %v", s.Metrics["sm_speedup_x"])
	}
	// The unsuffixed run is CPUs 1; a workload name with dashes must not
	// be mis-split (only a trailing integer > 1 is a cpu suffix).
	if samples[0].CPUs != 1 {
		t.Errorf("unsuffixed sample parsed as cpus %d", samples[0].CPUs)
	}
}

// TestParseBenchHyphenatedNames pins the cpu-suffix fix: a sub-benchmark
// whose own name ends in -<digits> (like vec4-2) must only lose the
// suffix when that number is a GOMAXPROCS value the run was told about.
func TestParseBenchHyphenatedNames(t *testing.T) {
	cases := []struct {
		line     string
		cpuList  map[int]bool
		wantName string
		wantCPUs int
	}{
		{
			// -2 names a variant, not a cpu count: 2 is not in the list.
			line:     "BenchmarkCopy/vec4-2 	 3	 1000 ns/op",
			cpuList:  cpuSet(4),
			wantName: "BenchmarkCopy/vec4-2",
			wantCPUs: 1,
		},
		{
			// Same name under -cpu 1,2: now -2 IS the GOMAXPROCS suffix.
			line:     "BenchmarkCopy/vec4-2 	 3	 1000 ns/op",
			cpuList:  cpuSet(2),
			wantName: "BenchmarkCopy/vec4",
			wantCPUs: 2,
		},
		{
			line:     "BenchmarkCopy/vec4-2-4 	 3	 1000 ns/op",
			cpuList:  cpuSet(4),
			wantName: "BenchmarkCopy/vec4-2",
			wantCPUs: 4,
		},
		{
			// -128 looks like a big cpu suffix but is not in the list.
			line:     "BenchmarkTile/size-128 	 3	 1000 ns/op",
			cpuList:  cpuSet(4),
			wantName: "BenchmarkTile/size-128",
			wantCPUs: 1,
		},
		{
			// -1 is never a suffix (go test only appends for GOMAXPROCS>1).
			line:     "BenchmarkX/case-1 	 3	 1000 ns/op",
			cpuList:  cpuSet(1, 4),
			wantName: "BenchmarkX/case-1",
			wantCPUs: 1,
		},
	}
	for _, tc := range cases {
		samples, err := parseBench(strings.NewReader(tc.line+"\n"), tc.cpuList)
		if err != nil || len(samples) != 1 {
			t.Fatalf("%q: parse: %v, %d samples", tc.line, err, len(samples))
		}
		if samples[0].Name != tc.wantName || samples[0].CPUs != tc.wantCPUs {
			t.Errorf("%q: got (%q, %d), want (%q, %d)",
				tc.line, samples[0].Name, samples[0].CPUs, tc.wantName, tc.wantCPUs)
		}
	}
}

// TestParseBenchMalformed pins the resynchronization fix: a malformed
// column must not shift the value/unit pairing off by one for the rest of
// the line, and garbage lines must not produce samples.
func TestParseBenchMalformed(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		want    int // samples parsed
		ns      float64
		allocs  float64
		metrics map[string]float64
	}{
		{
			name: "well-formed with benchmem",
			line: "BenchmarkX 	 3	 1000 ns/op	 64 B/op	 2 allocs/op",
			want: 1, ns: 1000, allocs: 2,
		},
		{
			// A stray non-numeric token before ns/op: the old i += 2 walk
			// landed on (ns/op, 64) next and dropped everything; the
			// resynchronizing walk recovers the remaining pairs.
			name: "stray token resync",
			line: "BenchmarkX 	 3	 ??? 1000 ns/op	 64 B/op	 2 allocs/op",
			want: 1, ns: 1000, allocs: 2,
		},
		{
			// Two numbers in a row (mangled count column): the first number
			// is not a (value, unit) pair and must be skipped by one.
			name: "doubled number resync",
			line: "BenchmarkX 	 3	 7 1000 ns/op	 0.5 things_x",
			want: 1, ns: 1000, metrics: map[string]float64{"things_x": 0.5},
		},
		{
			name: "no ns/op at all",
			line: "BenchmarkX 	 3	 64 B/op	 2 allocs/op",
			want: 0,
		},
		{
			name: "too few fields",
			line: "BenchmarkX 	 3	 1000",
			want: 0,
		},
	}
	for _, tc := range cases {
		samples, err := parseBench(strings.NewReader(tc.line+"\n"), cpuSet(4))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(samples) != tc.want {
			t.Fatalf("%s: parsed %d samples, want %d", tc.name, len(samples), tc.want)
		}
		if tc.want == 0 {
			continue
		}
		s := samples[0]
		if s.NsPerOp != tc.ns {
			t.Errorf("%s: NsPerOp = %v, want %v", tc.name, s.NsPerOp, tc.ns)
		}
		if s.AllocsPerOp != tc.allocs {
			t.Errorf("%s: AllocsPerOp = %v, want %v", tc.name, s.AllocsPerOp, tc.allocs)
		}
		for k, v := range tc.metrics {
			if s.Metrics[k] != v {
				t.Errorf("%s: metric %s = %v, want %v", tc.name, k, s.Metrics[k], v)
			}
		}
	}
}

func TestGatePass(t *testing.T) {
	samples, _ := parseBench(strings.NewReader(sampleOutput), cpuSet(4))
	rep := gate(samples, 4, 1.10, 0)
	if !rep.Pass {
		t.Fatalf("gate failed: %+v", rep.Pairs)
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("paired %d benchmarks, want 2 (DryRun has no 1-cpu baseline)", len(rep.Pairs))
	}
	// Pairs are sorted by name.
	if rep.Pairs[0].Name != "BenchmarkParallelLaunch/jacobi_naive" {
		t.Errorf("pair order: %q first", rep.Pairs[0].Name)
	}
	p := rep.Pairs[1]
	if p.Ratio >= 1 || p.Speedup < 2.5 {
		t.Errorf("sgemm pair ratio %.3f speedup %.3f", p.Ratio, p.Speedup)
	}
	if p.SMSpeedup != 3.749 {
		t.Errorf("SMSpeedup = %v", p.SMSpeedup)
	}
}

func TestGateRegression(t *testing.T) {
	slow := strings.ReplaceAll(sampleOutput,
		"BenchmarkParallelLaunch/sgemm_naive-4         	       3	 120768490 ns/op",
		"BenchmarkParallelLaunch/sgemm_naive-4         	       3	 400000000 ns/op")
	samples, _ := parseBench(strings.NewReader(slow), cpuSet(4))
	rep := gate(samples, 4, 1.10, 0)
	if rep.Pass {
		t.Fatal("gate passed a 24% regression")
	}
	var failed int
	for _, p := range rep.Pairs {
		if !p.Pass {
			failed++
			if p.Name != "BenchmarkParallelLaunch/sgemm_naive" {
				t.Errorf("wrong pair failed: %q", p.Name)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d pairs failed, want 1", failed)
	}
}

func TestGateToleratesSmallSlowdown(t *testing.T) {
	// 5% slower than baseline stays within the 10% budget — noise on a
	// loaded or single-core host must not flap the gate.
	in := `BenchmarkParallelLaunch/x 	 3	 100000000 ns/op
BenchmarkParallelLaunch/x-4 	 3	 105000000 ns/op
`
	samples, err := parseBench(strings.NewReader(in), cpuSet(4))
	if err != nil || len(samples) != 2 {
		t.Fatalf("parse: %v, %d samples", err, len(samples))
	}
	if rep := gate(samples, 4, 1.10, 0); !rep.Pass {
		t.Errorf("5%% slowdown failed the 10%% gate: %+v", rep.Pairs)
	}
}

func TestGateAllocs(t *testing.T) {
	in := `BenchmarkParallelLaunch/x 	 3	 100000000 ns/op	 2048 B/op	 10 allocs/op
BenchmarkParallelLaunch/x-4 	 3	  50000000 ns/op	 2048 B/op	 500 allocs/op
`
	samples, err := parseBench(strings.NewReader(in), cpuSet(4))
	if err != nil || len(samples) != 2 {
		t.Fatalf("parse: %v, %d samples", err, len(samples))
	}
	if rep := gate(samples, 4, 1.10, 0); !rep.Pass {
		t.Errorf("disabled allocation gate failed: %+v", rep.Pairs)
	}
	if rep := gate(samples, 4, 1.10, 1000); !rep.Pass {
		t.Errorf("500 allocs/op failed a 1000 ceiling: %+v", rep.Pairs)
	}
	rep := gate(samples, 4, 1.10, 100)
	if rep.Pass {
		t.Error("500 allocs/op passed a 100 ceiling")
	}
	if p := rep.Pairs[0]; p.BaseAllocsPerOp != 10 || p.ParAllocsPerOp != 500 {
		t.Errorf("pair allocs = %v/%v, want 10/500", p.BaseAllocsPerOp, p.ParAllocsPerOp)
	}
}

// TestTrajectoryAppend pins the -out semantics: the file is a JSON array
// of dated entries that grows by one per run; a legacy single-report file
// is absorbed as the first entry rather than clobbered.
func TestTrajectoryAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_parallel_sim.json")

	rep := Report{MaxRatio: 1.1, Pass: true}
	if err := appendEntry(path, Entry{Date: "2026-08-08T00:00:00Z", Note: "first", Report: rep}); err != nil {
		t.Fatal(err)
	}
	if err := appendEntry(path, Entry{Date: "2026-08-09T00:00:00Z", Note: "second", Report: rep}); err != nil {
		t.Fatal(err)
	}
	entries, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Note != "first" || entries[1].Note != "second" {
		t.Fatalf("trajectory = %+v, want first,second", entries)
	}

	// Legacy single-report file becomes the sole entry on the next append.
	legacy := filepath.Join(dir, "legacy.json")
	data, _ := json.Marshal(rep)
	if err := os.WriteFile(legacy, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendEntry(legacy, Entry{Date: "2026-08-09T00:00:00Z", Note: "new", Report: rep}); err != nil {
		t.Fatal(err)
	}
	entries, err = loadTrajectory(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Note != "new" {
		t.Fatalf("legacy upgrade = %+v, want 2 entries ending in new", entries)
	}
	if entries[0].Report.MaxRatio != 1.1 {
		t.Errorf("legacy report lost: %+v", entries[0])
	}
}

func TestLatestEntry(t *testing.T) {
	mk := func(date, note string) Entry {
		return Entry{Date: date, Note: note}
	}
	cases := []struct {
		name    string
		entries []Entry
		want    string // note of the expected entry
		ok      bool
	}{
		{"empty", nil, "", false},
		{"single", []Entry{mk("2026-08-08T00:00:00Z", "only")}, "only", true},
		{"in_order", []Entry{
			mk("2026-08-07T00:00:00Z", "old"),
			mk("2026-08-08T00:00:00Z", "new"),
		}, "new", true},
		// The point of the function: a merged trajectory whose newest
		// entry is NOT last must still be selected by date.
		{"out_of_order", []Entry{
			mk("2026-08-06T00:00:00Z", "oldest"),
			mk("2026-08-09T12:00:00Z", "newest"),
			mk("2026-08-08T00:00:00Z", "middle"),
			mk("2026-08-07T00:00:00Z", "older"),
		}, "newest", true},
		{"legacy_undated_sorts_oldest", []Entry{
			mk("", "legacy"),
			mk("2026-08-08T00:00:00Z", "dated"),
			mk("", "legacy2"),
		}, "dated", true},
		{"all_undated_keeps_first", []Entry{
			mk("", "a"),
			mk("", "b"),
		}, "a", true},
		{"tie_keeps_first", []Entry{
			mk("2026-08-08T00:00:00Z", "first"),
			mk("2026-08-08T00:00:00Z", "second"),
		}, "first", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := latestEntry(tc.entries)
			if ok != tc.ok {
				t.Fatalf("ok = %t, want %t", ok, tc.ok)
			}
			if ok && got.Note != tc.want {
				t.Errorf("latestEntry picked %q (date %s), want %q", got.Note, got.Date, tc.want)
			}
		})
	}
}

// TestGateHistory pins the drift gate to the same max-date entry
// selection the trend printing uses: an out-of-order trajectory must gate
// against the newest entry by date, not the last array element.
func TestGateHistory(t *testing.T) {
	pair := func(name string, parNs float64) Pair {
		return Pair{Name: name, ParNsPerOp: parNs, ParCPUs: 4, Pass: true}
	}
	entry := func(date string, pairs ...Pair) Entry {
		return Entry{Date: date, Report: Report{Pairs: pairs}}
	}
	cases := []struct {
		name       string
		entries    []Entry
		cur        []Pair
		maxDrift   float64
		violations int
		wantPass   bool
	}{
		{
			name:     "disabled",
			entries:  []Entry{entry("2026-08-07T00:00:00Z", pair("x", 100))},
			cur:      []Pair{pair("x", 1000)},
			maxDrift: 0, violations: 0, wantPass: true,
		},
		{
			name:     "empty_history",
			entries:  nil,
			cur:      []Pair{pair("x", 1000)},
			maxDrift: 1.2, violations: 0, wantPass: true,
		},
		{
			name:     "within_budget",
			entries:  []Entry{entry("2026-08-07T00:00:00Z", pair("x", 100))},
			cur:      []Pair{pair("x", 110)},
			maxDrift: 1.2, violations: 0, wantPass: true,
		},
		{
			name:     "regression",
			entries:  []Entry{entry("2026-08-07T00:00:00Z", pair("x", 100))},
			cur:      []Pair{pair("x", 150)},
			maxDrift: 1.2, violations: 1, wantPass: false,
		},
		{
			// The fix under test: the newest entry by date (x=200, dated
			// Aug 8) sits before a stale one (x=100, dated Aug 6) in the
			// array. Gating against array order would flag 210 > 100*1.2;
			// gating against the max-dated entry accepts 210 <= 200*1.2.
			name: "out_of_order_uses_max_date",
			entries: []Entry{
				entry("2026-08-08T00:00:00Z", pair("x", 200)),
				entry("2026-08-06T00:00:00Z", pair("x", 100)),
			},
			cur:      []Pair{pair("x", 210)},
			maxDrift: 1.2, violations: 0, wantPass: true,
		},
		{
			// Mirror image: the stale entry is newer-positioned but
			// older-dated and fast; the max-dated entry is slow, so a
			// current slow run still passes.
			name: "out_of_order_regression_detected",
			entries: []Entry{
				entry("2026-08-08T00:00:00Z", pair("x", 100)),
				entry("2026-08-06T00:00:00Z", pair("x", 500)),
			},
			cur:      []Pair{pair("x", 150)},
			maxDrift: 1.2, violations: 1, wantPass: false,
		},
		{
			name:     "new_benchmark_unexamined",
			entries:  []Entry{entry("2026-08-07T00:00:00Z", pair("x", 100))},
			cur:      []Pair{pair("x", 100), pair("y", 9999)},
			maxDrift: 1.2, violations: 0, wantPass: true,
		},
		{
			name:     "prior_without_measurement_unexamined",
			entries:  []Entry{entry("2026-08-07T00:00:00Z", pair("x", 0))},
			cur:      []Pair{pair("x", 9999)},
			maxDrift: 1.2, violations: 0, wantPass: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Report{Pass: true, Pairs: tc.cur}
			got := gateHistory(tc.entries, &rep, tc.maxDrift)
			if len(got) != tc.violations {
				t.Errorf("violations = %d (%v), want %d", len(got), got, tc.violations)
			}
			if rep.Pass != tc.wantPass {
				t.Errorf("rep.Pass = %t, want %t", rep.Pass, tc.wantPass)
			}
			if !tc.wantPass {
				failed := 0
				for _, p := range rep.Pairs {
					if !p.Pass {
						failed++
					}
				}
				if failed == 0 {
					t.Error("report failed but no pair was marked")
				}
			}
		})
	}
}

func TestParseCPUList(t *testing.T) {
	set, err := parseCPUList("", 4)
	if err != nil || !set[4] || len(set) != 1 {
		t.Errorf("default list = %v, %v", set, err)
	}
	set, err = parseCPUList("1, 2,8", 4)
	if err != nil || !set[1] || !set[2] || !set[8] || len(set) != 3 {
		t.Errorf("explicit list = %v, %v", set, err)
	}
	if _, err := parseCPUList("4,x", 4); err == nil {
		t.Error("bad list accepted")
	}
}
