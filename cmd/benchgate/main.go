// Command benchgate turns `go test -bench` output into a machine-readable
// benchmark report and a pass/fail regression gate for the parallel
// simulator. The nightly CI job runs
//
//	go test -run '^$' -bench BenchmarkParallelLaunch -cpu 1,4 -benchtime=3x . \
//	    | go run ./cmd/benchgate -out BENCH_parallel_sim.json
//
// benchgate pairs each benchmark's 1-CPU run (no -N name suffix) with its
// multi-CPU run (-4 suffix by default), writes the pairs as JSON, and
// exits non-zero when any multi-CPU run is slower than its 1-CPU
// counterpart by more than the allowed ratio — the parallel path must
// never cost real time, even on hosts where it cannot win any.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark line.
type Sample struct {
	// Name is the benchmark name without any -N cpu suffix.
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS of the run (1 when the name has no suffix).
	CPUs int `json:"cpus"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the custom b.ReportMetric values (e.g. sm_speedup_x).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Pair couples a benchmark's single-CPU and multi-CPU runs.
type Pair struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	ParNsPerOp  float64 `json:"par_ns_per_op"`
	ParCPUs     int     `json:"par_cpus"`
	// Ratio is par/base; below 1 the parallel run is faster.
	Ratio float64 `json:"ratio"`
	// Speedup is base/par, the wall-clock gain of the parallel run.
	Speedup float64 `json:"speedup"`
	// SMSpeedup carries the benchmark's own sm_speedup_x metric for the
	// parallel run, when present: the simulator-measured concurrency
	// overlap, meaningful even on CPU-starved hosts.
	SMSpeedup float64 `json:"sm_speedup,omitempty"`
	Pass      bool    `json:"pass"`
}

// Report is the written JSON document.
type Report struct {
	MaxRatio float64  `json:"max_ratio"`
	Pass     bool     `json:"pass"`
	Pairs    []Pair   `json:"pairs"`
	Samples  []Sample `json:"samples"`
}

func main() {
	var (
		in       = flag.String("in", "-", "benchmark output to read (- = stdin)")
		out      = flag.String("out", "BENCH_parallel_sim.json", "JSON report path (- = stdout, empty = none)")
		cpus     = flag.Int("cpus", 4, "cpu suffix of the parallel runs to gate")
		maxRatio = flag.Float64("max-ratio", 1.10, "fail when parallel ns/op exceeds sequential by this factor")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	samples, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	rep := gate(samples, *cpus, *maxRatio)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}

	for _, p := range rep.Pairs {
		status := "ok"
		if !p.Pass {
			status = "REGRESSION"
		}
		fmt.Fprintf(os.Stderr, "benchgate: %-40s base %12.0f ns/op  %d-cpu %12.0f ns/op  ratio %.3f  %s\n",
			p.Name, p.BaseNsPerOp, p.ParCPUs, p.ParNsPerOp, p.Ratio, status)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — a %d-cpu run is more than %.0f%% slower than its 1-cpu baseline\n",
			*cpus, (*maxRatio-1)*100)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// parseBench extracts Samples from `go test -bench` output. A benchmark
// line looks like
//
//	BenchmarkParallelLaunch/sgemm_naive-4  3  376768490 ns/op  3.749 sm_speedup_x
//
// where the trailing -4 is the GOMAXPROCS suffix (absent for 1).
func parseBench(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		s := Sample{Name: fields[0], CPUs: 1, Metrics: map[string]float64{}}
		if i := strings.LastIndex(s.Name, "-"); i > 0 {
			if n, err := strconv.Atoi(s.Name[i+1:]); err == nil && n > 1 {
				s.Name, s.CPUs = s.Name[:i], n
			}
		}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				s.NsPerOp, ok = v, true
			} else {
				s.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, sc.Err()
}

// gate pairs each benchmark's 1-CPU sample with its parCPUs sample and
// applies the ratio threshold. With -count > 1 each side keeps its best
// (minimum ns/op) run, the standard way to damp scheduler noise.
// Benchmarks missing either side are reported as samples but not gated.
func gate(samples []Sample, parCPUs int, maxRatio float64) Report {
	base := map[string]Sample{}
	par := map[string]Sample{}
	keepBest := func(m map[string]Sample, s Sample) {
		if prev, ok := m[s.Name]; !ok || s.NsPerOp < prev.NsPerOp {
			m[s.Name] = s
		}
	}
	for _, s := range samples {
		switch s.CPUs {
		case 1:
			keepBest(base, s)
		case parCPUs:
			keepBest(par, s)
		}
	}
	rep := Report{MaxRatio: maxRatio, Pass: true, Samples: samples}
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := par[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, p := base[name], par[name]
		pair := Pair{
			Name:        name,
			BaseNsPerOp: b.NsPerOp,
			ParNsPerOp:  p.NsPerOp,
			ParCPUs:     parCPUs,
			Ratio:       p.NsPerOp / b.NsPerOp,
			Speedup:     b.NsPerOp / p.NsPerOp,
			SMSpeedup:   p.Metrics["sm_speedup_x"],
		}
		pair.Pass = pair.Ratio <= maxRatio
		if !pair.Pass {
			rep.Pass = false
		}
		rep.Pairs = append(rep.Pairs, pair)
	}
	return rep
}
