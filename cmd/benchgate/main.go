// Command benchgate turns `go test -bench` output into a machine-readable
// benchmark report and a pass/fail regression gate for the parallel
// simulator. The nightly CI job runs
//
//	go test -run '^$' -bench BenchmarkParallelLaunch -benchmem -cpu 1,4 -benchtime=3x . \
//	    | go run ./cmd/benchgate -out BENCH_parallel_sim.json -gate-allocs 4096
//
// benchgate pairs each benchmark's 1-CPU run (no -N name suffix) with its
// multi-CPU run (-4 suffix by default), appends the run as a dated entry
// to the trajectory file named by -out, and exits non-zero when
//
//   - any multi-CPU run is slower than its 1-CPU counterpart by more than
//     the allowed ratio (the parallel path must never cost real time, even
//     on hosts where it cannot win any), or
//   - -gate-allocs is set and any paired run reports more than that many
//     allocs/op (the simulator hot path is arena-backed and must stay
//     allocation-free after launch setup; see DESIGN.md), or
//   - -max-drift is set and any paired run's multi-CPU ns/op exceeds the
//     same pair in the most recent prior trajectory entry by more than
//     that factor. "Most recent" is selected by date (latestEntry), not
//     file position — trajectories merged from parallel CI branches hold
//     entries out of chronological order, and gating against the last
//     array element would silently compare with a stale run.
//
// The -out file is a trajectory: a JSON array of dated entries, one per
// benchgate run, appended to — never overwritten — so the committed file
// records how ns/op and allocs/op evolve across changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one parsed benchmark line.
type Sample struct {
	// Name is the benchmark name without any -N cpu suffix.
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS of the run (1 when the name has no suffix).
	CPUs int `json:"cpus"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp carry the -benchmem columns when present.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric values (e.g. sm_speedup_x).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Pair couples a benchmark's single-CPU and multi-CPU runs.
type Pair struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	ParNsPerOp  float64 `json:"par_ns_per_op"`
	ParCPUs     int     `json:"par_cpus"`
	// Ratio is par/base; below 1 the parallel run is faster.
	Ratio float64 `json:"ratio"`
	// Speedup is base/par, the wall-clock gain of the parallel run.
	Speedup float64 `json:"speedup"`
	// SMSpeedup carries the benchmark's own sm_speedup_x metric for the
	// parallel run, when present: the simulator-measured concurrency
	// overlap, meaningful even on CPU-starved hosts.
	SMSpeedup float64 `json:"sm_speedup,omitempty"`
	// BaseAllocsPerOp / ParAllocsPerOp carry the -benchmem allocation
	// counts of the two runs (0 when -benchmem was not used).
	BaseAllocsPerOp float64 `json:"base_allocs_per_op,omitempty"`
	ParAllocsPerOp  float64 `json:"par_allocs_per_op,omitempty"`
	Pass            bool    `json:"pass"`
}

// Report is one benchgate evaluation.
type Report struct {
	MaxRatio float64 `json:"max_ratio"`
	// GateAllocs is the allocs/op ceiling applied to every paired run
	// (0 = allocation gate disabled).
	GateAllocs float64  `json:"gate_allocs,omitempty"`
	Pass       bool     `json:"pass"`
	Pairs      []Pair   `json:"pairs"`
	Samples    []Sample `json:"samples"`
}

// Entry is one dated run in the trajectory file.
type Entry struct {
	Date string `json:"date"`
	Note string `json:"note,omitempty"`
	Report
}

func main() {
	var (
		in         = flag.String("in", "-", "benchmark output to read (- = stdin)")
		out        = flag.String("out", "BENCH_parallel_sim.json", "trajectory file to append this run to (- = print report to stdout, empty = none)")
		cpus       = flag.Int("cpus", 4, "cpu suffix of the parallel runs to gate")
		cpuList    = flag.String("cpu-list", "", "comma-separated GOMAXPROCS values the -cpu flag ran with; only these are recognized as -N name suffixes (default: the -cpus value)")
		maxRatio   = flag.Float64("max-ratio", 1.10, "fail when parallel ns/op exceeds sequential by this factor")
		gateAllocs = flag.Float64("gate-allocs", 0, "fail when any paired run reports more than this many allocs/op (0 = off; requires -benchmem)")
		maxDrift   = flag.Float64("max-drift", 0, "fail when a pair's parallel ns/op exceeds the most recent prior trajectory entry's by this factor (0 = off; needs -out history)")
		note       = flag.String("note", "", "free-form note recorded in the trajectory entry")
	)
	flag.Parse()

	suffixes, err := parseCPUList(*cpuList, *cpus)
	if err != nil {
		fatal(err)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	samples, err := parseBench(r, suffixes)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	rep := gate(samples, *cpus, *maxRatio, *gateAllocs)
	if *out == "-" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else if *out != "" {
		// Trend line and drift gate against the most recent prior run —
		// both selected by date, not file position (see latestEntry).
		// Unreadable history is not fatal here; appendEntry will surface
		// it.
		if entries, err := loadTrajectory(*out); err == nil {
			if prev, ok := latestEntry(entries); ok {
				printTrend(prev, rep)
			}
			for _, v := range gateHistory(entries, &rep, *maxDrift) {
				fmt.Fprintf(os.Stderr, "benchgate: DRIFT — %s\n", v)
			}
		}
		entry := Entry{Date: time.Now().UTC().Format(time.RFC3339), Note: *note, Report: rep}
		if err := appendEntry(*out, entry); err != nil {
			fatal(err)
		}
	}

	for _, p := range rep.Pairs {
		status := "ok"
		if !p.Pass {
			status = "REGRESSION"
		}
		allocs := ""
		if p.BaseAllocsPerOp != 0 || p.ParAllocsPerOp != 0 {
			allocs = fmt.Sprintf("  allocs %v/%v", p.BaseAllocsPerOp, p.ParAllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %-40s base %12.0f ns/op  %d-cpu %12.0f ns/op  ratio %.3f%s  %s\n",
			p.Name, p.BaseNsPerOp, p.ParCPUs, p.ParNsPerOp, p.Ratio, allocs, status)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — a %d-cpu run is more than %.0f%% slower than its 1-cpu baseline, or a run exceeded %.0f allocs/op\n",
			*cpus, (*maxRatio-1)*100, *gateAllocs)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// parseCPUList builds the set of GOMAXPROCS values that may appear as -N
// benchmark-name suffixes. Defaults to {parCPUs} when the list is empty.
func parseCPUList(list string, parCPUs int) (map[int]bool, error) {
	set := map[int]bool{}
	if strings.TrimSpace(list) == "" {
		set[parCPUs] = true
		return set, nil
	}
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu-list entry %q", tok)
		}
		set[n] = true
	}
	return set, nil
}

// parseBench extracts Samples from `go test -bench` output. A benchmark
// line looks like
//
//	BenchmarkParallelLaunch/sgemm_naive-4  3  376768490 ns/op  64 B/op  2 allocs/op  3.749 sm_speedup_x
//
// where the trailing -4 is the GOMAXPROCS suffix (absent for 1).
//
// A trailing -N is only treated as a cpu suffix when N is in cpuSuffixes:
// sub-benchmark names routinely end in -<digits> themselves (e.g.
// "copy/vec4-2"), and stripping those would merge distinct benchmarks.
func parseBench(r io.Reader, cpuSuffixes map[int]bool) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		s := Sample{Name: fields[0], CPUs: 1, Metrics: map[string]float64{}}
		if i := strings.LastIndex(s.Name, "-"); i > 0 {
			if n, err := strconv.Atoi(s.Name[i+1:]); err == nil && n > 1 && cpuSuffixes[n] {
				s.Name, s.CPUs = s.Name[:i], n
			}
		}
		// Walk value/unit pairs. On a token that is not a number — or a
		// "value" whose following token is itself numeric — advance by one
		// to resynchronize instead of blindly stepping two, which would
		// skip a valid pair after any malformed column.
		ok := false
		for i := 2; i+1 < len(fields); {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				i++
				continue
			}
			unit := fields[i+1]
			if _, err := strconv.ParseFloat(unit, 64); err == nil {
				i++
				continue
			}
			switch unit {
			case "ns/op":
				s.NsPerOp, ok = v, true
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			default:
				s.Metrics[unit] = v
			}
			i += 2
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, sc.Err()
}

// gate pairs each benchmark's 1-CPU sample with its parCPUs sample and
// applies the ratio threshold plus, when gateAllocs > 0, the allocs/op
// ceiling on both sides of the pair. With -count > 1 each side keeps its
// best (minimum ns/op) run, the standard way to damp scheduler noise.
// Benchmarks missing either side are reported as samples but not gated.
func gate(samples []Sample, parCPUs int, maxRatio, gateAllocs float64) Report {
	base := map[string]Sample{}
	par := map[string]Sample{}
	keepBest := func(m map[string]Sample, s Sample) {
		if prev, ok := m[s.Name]; !ok || s.NsPerOp < prev.NsPerOp {
			m[s.Name] = s
		}
	}
	for _, s := range samples {
		switch s.CPUs {
		case 1:
			keepBest(base, s)
		case parCPUs:
			keepBest(par, s)
		}
	}
	rep := Report{MaxRatio: maxRatio, GateAllocs: gateAllocs, Pass: true, Samples: samples}
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := par[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, p := base[name], par[name]
		pair := Pair{
			Name:            name,
			BaseNsPerOp:     b.NsPerOp,
			ParNsPerOp:      p.NsPerOp,
			ParCPUs:         parCPUs,
			Ratio:           p.NsPerOp / b.NsPerOp,
			Speedup:         b.NsPerOp / p.NsPerOp,
			SMSpeedup:       p.Metrics["sm_speedup_x"],
			BaseAllocsPerOp: b.AllocsPerOp,
			ParAllocsPerOp:  p.AllocsPerOp,
		}
		pair.Pass = pair.Ratio <= maxRatio
		if gateAllocs > 0 && (b.AllocsPerOp > gateAllocs || p.AllocsPerOp > gateAllocs) {
			pair.Pass = false
		}
		if !pair.Pass {
			rep.Pass = false
		}
		rep.Pairs = append(rep.Pairs, pair)
	}
	return rep
}

// latestEntry returns the most recent trajectory entry by Date, not by
// array position: trajectory files merged from parallel CI branches (or
// hand-edited) routinely hold entries out of chronological order, and
// "last element" would silently compare against a stale run. Dates are
// RFC3339 UTC, so lexicographic comparison is chronological; undated
// legacy entries sort oldest, and among equal dates the earliest element
// wins for determinism. ok is false for an empty trajectory.
func latestEntry(entries []Entry) (e Entry, ok bool) {
	best := -1
	for i := range entries {
		if best < 0 || entries[i].Date > entries[best].Date {
			best = i
		}
	}
	if best < 0 {
		return Entry{}, false
	}
	return entries[best], true
}

// gateHistory applies the -max-drift gate: each of rep's paired runs is
// compared against the same pair in the most recent prior trajectory
// entry — the max-dated one per latestEntry, the same selection rule the
// trend printing uses — and fails when ParNsPerOp grew by more than
// maxDrift. Pairs absent from the prior entry (new benchmarks) and prior
// pairs with no measurement pass unexamined. Returns one message per
// violation; rep.Pass and the offending pairs' Pass flip to false. A
// maxDrift of 0 (or an empty history) disables the gate.
func gateHistory(entries []Entry, rep *Report, maxDrift float64) []string {
	if maxDrift <= 0 {
		return nil
	}
	prev, ok := latestEntry(entries)
	if !ok {
		return nil
	}
	prevPairs := map[string]Pair{}
	for _, p := range prev.Pairs {
		prevPairs[p.Name] = p
	}
	var violations []string
	for i := range rep.Pairs {
		p := &rep.Pairs[i]
		q, ok := prevPairs[p.Name]
		if !ok || q.ParNsPerOp <= 0 {
			continue
		}
		if p.ParNsPerOp > q.ParNsPerOp*maxDrift {
			p.Pass = false
			rep.Pass = false
			violations = append(violations, fmt.Sprintf(
				"%s: %d-cpu %.0f ns/op is %.2fx the prior entry's %.0f (%s; limit %.2fx)",
				p.Name, p.ParCPUs, p.ParNsPerOp, p.ParNsPerOp/q.ParNsPerOp, q.ParNsPerOp,
				prev.Date, maxDrift))
		}
	}
	return violations
}

// printTrend reports how this run's paired ns/op moved against the most
// recent prior entry.
func printTrend(prev Entry, cur Report) {
	prevPairs := map[string]Pair{}
	for _, p := range prev.Pairs {
		prevPairs[p.Name] = p
	}
	when := prev.Date
	if when == "" {
		when = "undated"
	}
	for _, p := range cur.Pairs {
		q, ok := prevPairs[p.Name]
		if !ok || q.ParNsPerOp <= 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchgate: %-40s %d-cpu %12.0f ns/op vs %12.0f (%s): %+.1f%%\n",
			p.Name, p.ParCPUs, p.ParNsPerOp, q.ParNsPerOp, when,
			100*(p.ParNsPerOp-q.ParNsPerOp)/q.ParNsPerOp)
	}
}

// appendEntry loads the trajectory at path (tolerating a missing file and
// the legacy single-report format), appends entry, and writes it back.
func appendEntry(path string, entry Entry) error {
	entries, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadTrajectory reads the entry array at path. A missing or empty file
// yields an empty trajectory; a legacy single-Report document becomes its
// sole (undated) entry so old files keep their history when appended to.
func loadTrajectory(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil
	}
	if strings.HasPrefix(trimmed, "{") {
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: legacy report: %w", path, err)
		}
		return []Entry{{Note: "legacy report (pre-trajectory)", Report: rep}}, nil
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}
