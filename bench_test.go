// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each bench runs the corresponding experiment and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the §5 numbers alongside the harness cost. Scales are
// reduced versus the paper's V100 runs (the substrate is a simulator);
// EXPERIMENTS.md records the full-scale paper-vs-measured comparison.
package gpuscout_test

import (
	"testing"

	"gpuscout"
	"gpuscout/internal/experiments"
	"gpuscout/internal/sim"
)

var benchCfg = sim.Config{SampleSMs: 1}

// run executes a workload once and returns its cycle count.
func runCycles(b *testing.B, name string, scale int) float64 {
	b.Helper()
	w, err := gpuscout.BuildWorkload(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	res, err := gpuscout.RunWorkload(w, gpuscout.V100(), benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkFig2_SpillReport regenerates the Fig. 2 sample output (the
// register-spilling report with warp stalls and metric analysis).
func BenchmarkFig2_SpillReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, err := experiments.Fig2Report()
		if err != nil {
			b.Fatal(err)
		}
		if len(text) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFig5_MixbenchReport regenerates the Fig. 5 tool output for the
// naive Mixbench kernel.
func BenchmarkFig5_MixbenchReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, err := experiments.Fig5Report()
		if err != nil {
			b.Fatal(err)
		}
		if len(text) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTableMixbench regenerates the §5.1 vectorization results.
// Paper: 3.77x (SP), 3.86x (DP), 4.44x (int) at 96 compute iterations.
func BenchmarkTableMixbench(b *testing.B) {
	const iters = 24 // per-iteration effect identical to the paper's 96
	for _, tc := range []struct{ naive, vec, metric string }{
		{"mixbench_sp_naive", "mixbench_sp_vec4", "sp_speedup_x"},
		{"mixbench_dp_naive", "mixbench_dp_vec4", "dp_speedup_x"},
		{"mixbench_int_naive", "mixbench_int_vec4", "int_speedup_x"},
	} {
		b.Run(tc.naive, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				n := runCycles(b, tc.naive, iters)
				v := runCycles(b, tc.vec, iters)
				speedup = n / v
			}
			b.ReportMetric(speedup, tc.metric)
		})
	}
}

// BenchmarkTableJacobi regenerates the §5.2 heat-transfer results.
// Paper: texture +61.1% throughput, tex_throttle 0% -> 24.65%,
// __restrict__ +0.3%.
func BenchmarkTableJacobi(b *testing.B) {
	const size = 512
	var texSpeedup, restrictSpeedup float64
	for i := 0; i < b.N; i++ {
		n := runCycles(b, "jacobi_naive", size)
		texSpeedup = n / runCycles(b, "jacobi_texture", size)
		restrictSpeedup = n / runCycles(b, "jacobi_restrict", size)
	}
	b.ReportMetric(texSpeedup, "texture_speedup_x")
	b.ReportMetric(restrictSpeedup, "restrict_speedup_x")
}

// BenchmarkTableSGEMM regenerates the §5.3 SGEMM results.
// Paper: shared tiling 54x (at 10240^2), vectorized tile loads +8.5%,
// registers 25 -> 72.
func BenchmarkTableSGEMM(b *testing.B) {
	const n = 256
	var sharedSpeedup, vecGain float64
	for i := 0; i < b.N; i++ {
		naive := runCycles(b, "sgemm_naive", n)
		shared := runCycles(b, "sgemm_shared", n)
		vec := runCycles(b, "sgemm_shared_vec", n)
		sharedSpeedup = naive / shared
		vecGain = shared / vec
	}
	b.ReportMetric(sharedSpeedup, "shared_speedup_x")
	b.ReportMetric(vecGain, "vec_gain_x")
}

// BenchmarkFig6_Overhead regenerates the Fig. 6 overhead analysis on a
// reduced SGEMM sweep. Paper shape: metric collection dominates and the
// total overhead factor is large (28x at 8192^2).
func BenchmarkFig6_Overhead(b *testing.B) {
	var series *experiments.Fig6Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig6Overhead([]int{64, 128, 256}, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := series.Points[len(series.Points)-1]
	b.ReportMetric(last.OverheadX, "overhead_x")
	b.ReportMetric(last.MetricShare*100, "metric_share_pct")
}

// BenchmarkFig7_Compare regenerates the Fig. 7 metrics-comparison view
// for the mixbench naive -> vec4 change.
func BenchmarkFig7_Compare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, err := experiments.CompareDemo()
		if err != nil {
			b.Fatal(err)
		}
		if len(text) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkParallelLaunch measures the parallel per-SM simulation against
// its sequential reference. Workers is left at 0 so the effective
// parallelism tracks GOMAXPROCS — run with -cpu 1,2,4 to compare:
//
//	go test -bench=BenchmarkParallelLaunch -cpu 1,4 -benchtime=3x
//
// The per-launch sm_speedup_x metric reports the simulator's own
// aggregate-SM-time / wall-time ratio; cmd/benchgate consumes the ns/op
// series to gate regressions in CI. Prepare runs once outside the timed
// loop (host-side buffer setup and verification are not what this
// benchmark measures), and SampleSMs is 8 so there are enough
// independent SMs to spread across 4 workers.
func BenchmarkParallelLaunch(b *testing.B) {
	for _, wl := range []struct {
		name  string
		scale int
	}{
		{"sgemm_naive", 192},
		{"jacobi_naive", 512},
	} {
		b.Run(wl.name, func(b *testing.B) {
			w, err := gpuscout.BuildWorkload(wl.name, wl.scale)
			if err != nil {
				b.Fatal(err)
			}
			dev := gpuscout.NewDevice(gpuscout.V100())
			run, err := w.Prepare(dev)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sim.Config{SampleSMs: 8}
			var speedup float64
			b.ReportAllocs() // benchgate gates allocs/op alongside ns/op
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := gpuscout.Launch(dev, run.Spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				speedup = res.Host.Speedup()
			}
			b.ReportMetric(speedup, "sm_speedup_x")
		})
	}
}

// BenchmarkDryRun measures the static-only analysis path (§3.1): the SASS
// pillar alone, independent of kernel execution time — the flat line of
// Fig. 6.
func BenchmarkDryRun(b *testing.B) {
	w, err := gpuscout.BuildWorkload("sgemm_naive", 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpuscout.DryRun(gpuscout.V100(), w.Kernel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation throughput (warp
// instructions per second of host time) on the shared-memory SGEMM.
func BenchmarkSimulator(b *testing.B) {
	w, err := gpuscout.BuildWorkload("sgemm_shared", 128)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gpuscout.RunWorkload(w, gpuscout.V100(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Counters.WarpInsts
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "warp_insts/s")
}

// BenchmarkAblation_MSHRs sweeps the LSU MSHR count and reports the
// Jacobi texture speedup at the V100 default — the knob behind §5.2.
func BenchmarkAblation_MSHRs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateMSHRs(512, []int{32, 112, 4096}, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SGEMMScale reports the tiling speedup growing with N
// (the trend toward the paper's 54x).
func BenchmarkAblation_SGEMMScale(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.SGEMMScaleSweep([]int{64, 128, 256}, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = tbl
		last = float64(len(tbl.Rows))
	}
	b.ReportMetric(last, "sizes")
}
