package experiments

import (
	"strconv"
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func TestAblateMSHRs(t *testing.T) {
	tbl, err := AblateMSHRs(512, []int{32, 112, 4096}, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("AblateMSHRs: %v", err)
	}
	t.Log("\n" + tbl.Render())
	// The texture advantage must shrink monotonically as the LSU gets
	// more outstanding-miss capacity, and essentially vanish when the
	// MSHR limit is lifted.
	speedups := make([]float64, 0, 3)
	for _, r := range tbl.Rows {
		x := strings.SplitN(r.Measured, "x", 2)[0]
		v, err := strconv.ParseFloat(x, 64)
		if err != nil {
			t.Fatalf("unparseable measured %q", r.Measured)
		}
		speedups = append(speedups, v)
	}
	for i := 1; i < len(speedups); i++ {
		if speedups[i] > speedups[i-1]+0.05 {
			t.Errorf("texture speedup not shrinking with MSHRs: %v", speedups)
		}
	}
	if last := speedups[len(speedups)-1]; last > 1.35 {
		t.Errorf("with unlimited MSHRs the texture advantage should nearly vanish, got %.2fx", last)
	}
	if first := speedups[0]; first < 1.5 {
		t.Errorf("with scarce MSHRs the texture advantage should be large, got %.2fx", first)
	}
}

func TestAblateSampling(t *testing.T) {
	// SampleSMs=1 sees only SM 0, which owns the grid's left-edge blocks
	// and so skips one halo-sector DRAM miss per row — a real boundary
	// effect, not noise. Fidelity is therefore asserted among the
	// multi-SM samples, which must agree tightly (baseline: SampleSMs=2).
	tbl, err := AblateSampling("jacobi_naive", 512, []int{2, 4, 8})
	if err != nil {
		t.Fatalf("AblateSampling: %v", err)
	}
	t.Log("\n" + tbl.Render())
	for _, r := range tbl.Rows[1:] {
		i := strings.Index(r.Measured, "(")
		j := strings.Index(r.Measured, "%")
		if i < 0 || j < i {
			t.Fatalf("unparseable %q", r.Measured)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(r.Measured[i+1:j]), 64)
		if err != nil {
			t.Fatalf("unparseable delta in %q", r.Measured)
		}
		if v < -10 || v > 10 {
			t.Errorf("sampling fidelity broken: %s", r.Measured)
		}
	}
}

func TestSGEMMScaleSweep(t *testing.T) {
	tbl, err := SGEMMScaleSweep([]int{64, 128, 256}, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("SGEMMScaleSweep: %v", err)
	}
	t.Log("\n" + tbl.Render())
	// The tiling advantage must grow with N (toward the paper's 54x).
	var prev float64
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(r.Measured, "x"), 64)
		if err != nil {
			t.Fatalf("unparseable %q", r.Measured)
		}
		if v < prev*0.9 {
			t.Errorf("speedup shrinking with size: %s", tbl.Render())
		}
		prev = v
	}
}

func TestAblateLGQueue(t *testing.T) {
	tbl, err := AblateLGQueue([]int{2, 12, 48}, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("AblateLGQueue: %v", err)
	}
	t.Log("\n" + tbl.Render())
	// Shallower LG queues must produce more lg_throttle.
	shares := make([]float64, 0, 3)
	for _, r := range tbl.Rows {
		i := strings.Index(r.Measured, "lg_throttle ")
		j := strings.Index(r.Measured, "%")
		v, err := strconv.ParseFloat(r.Measured[i+len("lg_throttle "):j], 64)
		if err != nil {
			t.Fatalf("unparseable %q", r.Measured)
		}
		shares = append(shares, v)
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] > shares[i-1]+0.5 {
			t.Errorf("lg_throttle not decreasing with queue depth: %v", shares)
		}
	}
	if shares[0] <= shares[len(shares)-1] {
		t.Errorf("no lg_throttle sensitivity to queue depth: %v", shares)
	}
}
