package experiments

import (
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func TestMixbench51Table(t *testing.T) {
	tbl, err := Mixbench51(24, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("Mixbench51: %v", err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	text := tbl.Render()
	t.Log("\n" + text)
	for _, want := range []string{"3.77x", "single-precision speedup", "long_scoreboard", "occupancy"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestJacobi52Table(t *testing.T) {
	tbl, err := Jacobi52(512, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("Jacobi52: %v", err)
	}
	text := tbl.Render()
	t.Log("\n" + text)
	for _, want := range []string{"61.1%", "tex_throttle", "221760 B", "__restrict__", "I2F", "6 (static count)"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestSGEMM53Table(t *testing.T) {
	tbl, err := SGEMM53(256, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("SGEMM53: %v", err)
	}
	text := tbl.Render()
	t.Log("\n" + text)
	for _, want := range []string{"54x", "mio_throttle", "registers per thread", "25 -> 72"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	s, err := Fig6Overhead([]int{64, 128, 256}, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatalf("Fig6Overhead: %v", err)
	}
	t.Log("\n" + s.Render())
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for i, p := range s.Points {
		// The Fig. 6 qualitative shape: metric collection dominates.
		if p.MetricsMs <= p.SamplingMs || p.MetricShare < 0.5 {
			t.Errorf("N=%d: metric collection does not dominate (%.3f ms vs sampling %.3f ms)",
				p.N, p.MetricsMs, p.SamplingMs)
		}
		if p.OverheadX <= 1 {
			t.Errorf("N=%d: overhead factor %.2f <= 1", p.N, p.OverheadX)
		}
		// Kernel time and dynamic-pillar time grow with size.
		if i > 0 {
			prev := s.Points[i-1]
			if p.KernelMs <= prev.KernelMs {
				t.Errorf("kernel time not growing: N=%d %.3f <= N=%d %.3f", p.N, p.KernelMs, prev.N, prev.KernelMs)
			}
			if p.MetricsMs <= prev.MetricsMs {
				t.Errorf("metric collection not growing with size")
			}
		}
	}
}

func TestFigReports(t *testing.T) {
	fig2, err := Fig2Report()
	if err != nil {
		t.Fatalf("Fig2Report: %v", err)
	}
	for _, want := range []string{"Register spilling", "Warp stalls", "Metric analysis", "local memory"} {
		if !strings.Contains(fig2, want) {
			t.Errorf("Fig2 report missing %q", want)
		}
	}
	fig5, err := Fig5Report()
	if err != nil {
		t.Fatalf("Fig5Report: %v", err)
	}
	for _, want := range []string{"vectorized", "shared memory", "benchmark_func"} {
		if !strings.Contains(fig5, want) {
			t.Errorf("Fig5 report missing %q", want)
		}
	}
}

func TestCompareDemo(t *testing.T) {
	text, err := CompareDemo()
	if err != nil {
		t.Fatalf("CompareDemo: %v", err)
	}
	if !strings.Contains(text, "Metrics comparison") || !strings.Contains(text, "faster") {
		t.Errorf("comparison demo incomplete:\n%s", text)
	}
}
