package experiments

import (
	"fmt"
	"strings"

	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// Fig6Point is one matrix size of the Fig. 6 overhead analysis: the time
// each GPUscout pillar needs when analyzing the SGEMM kernel, and the
// resulting overhead factor versus the bare kernel execution.
type Fig6Point struct {
	N int
	// All times in milliseconds at the modeled V100 clock.
	KernelMs    float64
	SASSMs      float64 // static analysis (measured wall time)
	SamplingMs  float64 // CUPTI PC sampling pass
	MetricsMs   float64 // ncu metric collection (replay passes)
	TotalMs     float64
	OverheadX   float64 // total analysis time / bare kernel time
	MetricShare float64 // metric collection's share of the total
}

// Fig6Series is the full sweep.
type Fig6Series struct {
	Points []Fig6Point
}

// Fig6Overhead regenerates the Fig. 6 measurement: GPUscout's overhead on
// the SGEMM kernel across matrix sizes. sizes == nil selects a default
// sweep (the paper swept up to 8192; the simulator sweeps a scaled range).
func Fig6Overhead(sizes []int, cfg sim.Config) (*Fig6Series, error) {
	if sizes == nil {
		sizes = []int{64, 128, 256, 512}
	}
	arch := gpu.V100()
	toMs := func(cycles float64) float64 {
		return arch.CyclesToSeconds(uint64(cycles)) * 1e3
	}
	s := &Fig6Series{}
	for _, n := range sizes {
		w, err := workloads.Build("sgemm_naive", n)
		if err != nil {
			return nil, err
		}
		run := func(c sim.Config) (*sim.Result, error) {
			dev := sim.NewDevice(arch)
			return workloads.Execute(w, dev, c)
		}
		rep, err := scout.Analyze(arch, w.Kernel, run, scout.Options{Sim: cfg})
		if err != nil {
			return nil, err
		}
		p := Fig6Point{
			N:          n,
			KernelMs:   toMs(rep.KernelCycles),
			SASSMs:     toMs(rep.OverheadSASSCycles),
			SamplingMs: toMs(rep.OverheadSamplingCycles),
			MetricsMs:  toMs(rep.OverheadMetricsCycles),
		}
		p.TotalMs = p.SASSMs + p.SamplingMs + p.MetricsMs
		if p.KernelMs > 0 {
			p.OverheadX = p.TotalMs / p.KernelMs
		}
		if p.TotalMs > 0 {
			p.MetricShare = p.MetricsMs / p.TotalMs
		}
		s.Points = append(s.Points, p)
	}
	return s, nil
}

// Render formats the sweep as the two Fig. 6 panels: per-pillar times and
// the overhead factor.
func (s *Fig6Series) Render() string {
	var b strings.Builder
	b.WriteString("Fig.6 — GPUscout measurement overhead (SGEMM size sweep)\n")
	fmt.Fprintf(&b, "  %8s | %12s | %10s | %12s | %12s | %10s | %9s\n",
		"N", "kernel (ms)", "SASS (ms)", "PC samp (ms)", "metrics (ms)", "total (ms)", "overhead")
	b.WriteString("  " + strings.Repeat("-", 90) + "\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  %8d | %12.3f | %10.3f | %12.3f | %12.3f | %10.3f | %8.1fx\n",
			p.N, p.KernelMs, p.SASSMs, p.SamplingMs, p.MetricsMs, p.TotalMs, p.OverheadX)
	}
	b.WriteString("\n  Paper shape: metric collection dominates and grows with problem size;\n")
	b.WriteString("  PC sampling grows slower; SASS analysis is size-independent\n")
	b.WriteString("  (dominant only for very short kernels). Paper peak overhead: 28x at 8192^2.\n")
	return b.String()
}
