package experiments

import (
	"fmt"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// Ablations probe the design choices DESIGN.md calls out: the MSHR model
// that produces the §5.2 texture win, the SM-sampling approximation, and
// the growth of the §5.3 tiling speedup with problem size.

// runOnArch executes a workload on a specific architecture description.
func runOnArch(arch gpu.Arch, name string, scale int, cfg sim.Config) (*sim.Result, error) {
	w, err := workloads.Build(name, scale)
	if err != nil {
		return nil, err
	}
	dev := sim.NewDevice(arch)
	return workloads.Execute(w, dev, cfg)
}

// AblateMSHRs sweeps the LSU miss-status-holding-register count and
// reports the Jacobi texture-vs-naive speedup at each point: the knob
// that controls the §5.2 result. With unlimited LSU MSHRs the texture
// path's extra memory-level parallelism — and hence its advantage —
// disappears.
func AblateMSHRs(size int, mshrs []int, cfg sim.Config) (*Table, error) {
	if size <= 0 {
		size = 512
	}
	if mshrs == nil {
		mshrs = []int{32, 64, 112, 256, 4096}
	}
	t := &Table{ID: "ablation", Title: fmt.Sprintf("LSU MSHR count vs. Jacobi texture speedup (%dx%d)", size, size)}
	for _, m := range mshrs {
		arch := gpu.V100()
		arch.LSUMSHRs = m
		rn, err := runOnArch(arch, "jacobi_naive", size, cfg)
		if err != nil {
			return nil, err
		}
		rt, err := runOnArch(arch, "jacobi_texture", size, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Name:     fmt.Sprintf("LSUMSHRs=%d", m),
			Paper:    "1.64x at the V100 default",
			Measured: fmt.Sprintf("%.2fx (naive %.0f cy, texture %.0f cy)", rn.Cycles/rt.Cycles, rn.Cycles, rt.Cycles),
			Match:    "ablation",
		})
	}
	return t, nil
}

// AblateSampling measures how the SM-sampling approximation affects the
// reported kernel duration: with a homogeneous workload, simulating 1, 2,
// 4 or 8 SMs must agree closely (the justification for SampleSMs).
func AblateSampling(name string, scale int, samples []int) (*Table, error) {
	if samples == nil {
		samples = []int{1, 2, 4, 8}
	}
	t := &Table{ID: "ablation", Title: fmt.Sprintf("SM-sampling fidelity on %s", name)}
	var base float64
	for _, s := range samples {
		res, err := runOnArch(gpu.V100(), name, scale, sim.Config{SampleSMs: s})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Cycles
		}
		t.Rows = append(t.Rows, Row{
			Name:     fmt.Sprintf("SampleSMs=%d (%d blocks simulated)", s, res.SimulatedBlocks),
			Paper:    "n/a (simulator methodology)",
			Measured: fmt.Sprintf("%.0f cycles (%+.1f%% vs SampleSMs=%d)", res.Cycles, 100*(res.Cycles/base-1), samples[0]),
			Match:    "ablation",
		})
	}
	return t, nil
}

// SGEMMScaleSweep shows the §5.3 shared-tiling speedup growing with the
// matrix size — the trend connecting our 256-point measurement to the
// paper's 54x at 10240.
func SGEMMScaleSweep(sizes []int, cfg sim.Config) (*Table, error) {
	if sizes == nil {
		sizes = []int{64, 128, 256, 512}
	}
	t := &Table{ID: "ablation", Title: "SGEMM shared-memory speedup vs matrix size (paper: 54x at 10240)"}
	for _, n := range sizes {
		rn, err := runOnArch(gpu.V100(), "sgemm_naive", n, cfg)
		if err != nil {
			return nil, err
		}
		rs, err := runOnArch(gpu.V100(), "sgemm_shared", n, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Name:     fmt.Sprintf("N=%d", n),
			Paper:    "54x at N=10240",
			Measured: fmt.Sprintf("%.1fx", rn.Cycles/rs.Cycles),
			Match:    "trend",
		})
	}
	return t, nil
}

// AblateLGQueue sweeps the LG issue-queue depth and reports the
// spill-pressure kernel's lg_throttle share: the §4.2 coupling between
// register spills and LG backpressure.
func AblateLGQueue(depths []int, cfg sim.Config) (*Table, error) {
	if depths == nil {
		depths = []int{2, 4, 12, 48}
	}
	t := &Table{ID: "ablation", Title: "LG queue depth vs lg_throttle on the spill-pressure kernel"}
	for _, d := range depths {
		arch := gpu.V100()
		arch.LGQueueDepth = d
		res, err := runOnArch(arch, "spill_pressure", 16, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Name:     fmt.Sprintf("LGQueueDepth=%d", d),
			Paper:    "n/a (§4.2 mechanism)",
			Measured: fmt.Sprintf("lg_throttle %.1f%%, %.0f cycles", 100*res.StallShare(sim.StallLGThrottle), res.Cycles),
			Match:    "ablation",
		})
	}
	return t, nil
}
