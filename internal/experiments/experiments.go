// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the Fig. 2 and Fig. 5 tool outputs, the §5.1–§5.3
// case-study results, the Fig. 6 overhead analysis and the Fig. 7 metric
// comparison. Each experiment reports paper-vs-measured rows; absolute
// numbers come from the simulator, so the *shape* (who wins, direction of
// each stall/metric shift, rough factors) is the reproduction target.
package experiments

import (
	"fmt"
	"strings"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// Row is one paper-vs-measured comparison.
type Row struct {
	Name     string
	Paper    string
	Measured string
	Match    string // "shape", "value", "direction", "n/a"
}

// Table is one regenerated experiment.
type Table struct {
	ID    string // e.g. "§5.1", "Fig.6"
	Title string
	Rows  []Row
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w1, w2, w3 := len("result"), len("paper (V100)"), len("measured (simulator)")
	for _, r := range t.Rows {
		w1, w2, w3 = max(w1, len(r.Name)), max(w2, len(r.Paper)), max(w3, len(r.Measured))
	}
	fmt.Fprintf(&b, "  %-*s | %-*s | %-*s | match\n", w1, "result", w2, "paper (V100)", w3, "measured (simulator)")
	fmt.Fprintf(&b, "  %s-+-%s-+-%s-+------\n", strings.Repeat("-", w1), strings.Repeat("-", w2), strings.Repeat("-", w3))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s | %-*s | %-*s | %s\n", w1, r.Name, w2, r.Paper, w3, r.Measured, r.Match)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runOne executes a workload on a fresh V100 and returns its result.
func runOne(name string, scale int, cfg sim.Config) (*workloads.Workload, *sim.Result, error) {
	w, err := workloads.Build(name, scale)
	if err != nil {
		return nil, nil, err
	}
	dev := sim.NewDevice(gpu.V100())
	res, err := workloads.Execute(w, dev, cfg)
	if err != nil {
		return nil, nil, err
	}
	return w, res, nil
}

// analyzeOne runs the full GPUscout pipeline on a workload.
func analyzeOne(name string, scale int, cfg sim.Config) (*scout.Report, error) {
	w, err := workloads.Build(name, scale)
	if err != nil {
		return nil, err
	}
	run := func(c sim.Config) (*sim.Result, error) {
		dev := sim.NewDevice(gpu.V100())
		return workloads.Execute(w, dev, c)
	}
	return scout.Analyze(gpu.V100(), w.Kernel, run, scout.Options{Sim: cfg})
}

// Fig2Report regenerates the Fig. 2 sample output: the register-spilling
// report with warp stalls and metric analysis.
func Fig2Report() (string, error) {
	rep, err := analyzeOne("spill_pressure", 0, sim.Config{SampleSMs: 1})
	if err != nil {
		return "", err
	}
	return rep.Render(), nil
}

// Fig5Report regenerates the Fig. 5 tool output for the naive Mixbench
// implementation (vectorized-load and shared-memory recommendations).
func Fig5Report() (string, error) {
	rep, err := analyzeOne("mixbench_sp_naive", 24, sim.Config{SampleSMs: 1})
	if err != nil {
		return "", err
	}
	return rep.Render(), nil
}

// Mixbench51 regenerates the §5.1 results: vectorization speedups per
// datatype, the long-scoreboard reduction, and the occupancy drop.
// iters <= 0 selects the paper's 96 compute iterations.
func Mixbench51(iters int, cfg sim.Config) (*Table, error) {
	t := &Table{ID: "§5.1", Title: "Mixbench: vectorized loads (naive -> float4/double4/int4)"}
	type pair struct {
		naive, vec string
		paper      string
		label      string
	}
	var spN, spV *sim.Result
	for _, p := range []pair{
		{"mixbench_sp_naive", "mixbench_sp_vec4", "3.77x", "single-precision speedup"},
		{"mixbench_dp_naive", "mixbench_dp_vec4", "3.86x", "double-precision speedup"},
		{"mixbench_int_naive", "mixbench_int_vec4", "4.44x", "integer speedup"},
	} {
		_, rn, err := runOne(p.naive, iters, cfg)
		if err != nil {
			return nil, err
		}
		_, rv, err := runOne(p.vec, iters, cfg)
		if err != nil {
			return nil, err
		}
		if p.naive == "mixbench_sp_naive" {
			spN, spV = rn, rv
		}
		t.Rows = append(t.Rows, Row{
			Name:     p.label,
			Paper:    p.paper,
			Measured: fmt.Sprintf("%.2fx", rn.Cycles/rv.Cycles),
			Match:    "shape",
		})
	}
	t.Rows = append(t.Rows,
		Row{
			Name:     "long_scoreboard share (naive -> vec)",
			Paper:    "70% -> 62%",
			Measured: fmt.Sprintf("%.1f%% -> %.1f%%", 100*spN.StallShare(sim.StallLongScoreboard), 100*spV.StallShare(sim.StallLongScoreboard)),
			Match:    "partial (saturated)",
		},
		Row{
			Name:     "achieved occupancy (naive -> vec)",
			Paper:    "92% -> 83%",
			Measured: fmt.Sprintf("%.0f%% -> %.0f%%", 100*spN.AchievedOccupancy, 100*spV.AchievedOccupancy),
			Match:    "direction",
		},
	)
	return t, nil
}

// Jacobi52 regenerates the §5.2 results: the texture-memory speedup, the
// tex_throttle shift, the texture-cache traffic, the __restrict__ effect
// and the I2F conversion count. size <= 0 selects 1024 (the paper used
// 8192; the simulator runs a scaled grid).
func Jacobi52(size int, cfg sim.Config) (*Table, error) {
	if size <= 0 {
		size = 1024
	}
	t := &Table{ID: "§5.2", Title: fmt.Sprintf("Heat-transfer Jacobi, %dx%d grid (paper: 8192x8192)", size, size)}
	wN, rN, err := runOne("jacobi_naive", size, cfg)
	if err != nil {
		return nil, err
	}
	_, rT, err := runOne("jacobi_texture", size, cfg)
	if err != nil {
		return nil, err
	}
	_, rR, err := runOne("jacobi_restrict", size, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		Row{
			Name:     "texture-memory throughput gain",
			Paper:    "+61.1% (duration -39.2%)",
			Measured: fmt.Sprintf("+%.1f%% (duration -%.1f%%)", 100*(rN.Cycles/rT.Cycles-1), 100*(1-rT.Cycles/rN.Cycles)),
			Match:    "shape",
		},
		Row{
			Name:     "tex_throttle share (naive -> texture)",
			Paper:    "0% -> 24.65%",
			Measured: fmt.Sprintf("%.2f%% -> %.2f%%", 100*rN.StallShare(sim.StallTexThrottle), 100*rT.StallShare(sim.StallTexThrottle)),
			Match:    "direction",
		},
		Row{
			Name:  "texture cache traffic / miss rate",
			Paper: "221760 B requested, 11.5% miss",
			Measured: fmt.Sprintf("%d B requested, %.1f%% miss",
				32*uint64(float64(rT.Counters.TexSectors)*rT.Scale),
				100*(1-float64(rT.Counters.TexSectorHits)/float64(maxU64(rT.Counters.TexSectors, 1)))),
			Match: "shape",
		},
		Row{
			Name:     "__restrict__ keyword effect",
			Paper:    "+0.3%",
			Measured: fmt.Sprintf("%+.1f%%", 100*(rN.Cycles/rR.Cycles-1)),
			Match:    "value",
		},
		Row{
			Name:     "I2F conversions detected",
			Paper:    "6 (with line numbers)",
			Measured: fmt.Sprintf("%d (static count)", wN.Kernel.CountOpcodes()[sass.OpI2F]),
			Match:    "value",
		},
	)
	return t, nil
}

// SGEMM53 regenerates the §5.3 results: the shared-memory speedup, the
// long-scoreboard/MIO stall shifts, the vectorized tile-load gain and the
// register-count increase. n <= 0 selects 256 (the paper used 10240).
func SGEMM53(n int, cfg sim.Config) (*Table, error) {
	if n <= 0 {
		n = 256
	}
	t := &Table{ID: "§5.3", Title: fmt.Sprintf("SGEMM, %dx%d matrices (paper: 10240x10240)", n, n)}
	wN, rN, err := runOne("sgemm_naive", n, cfg)
	if err != nil {
		return nil, err
	}
	wS, rS, err := runOne("sgemm_shared", n, cfg)
	if err != nil {
		return nil, err
	}
	wV, rV, err := runOne("sgemm_shared_vec", n, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		Row{
			Name:     "shared-memory tiling speedup",
			Paper:    "54x",
			Measured: fmt.Sprintf("%.1fx", rN.Cycles/rS.Cycles),
			Match:    "shape",
		},
		Row{
			Name:     "long_scoreboard share (naive -> shared)",
			Paper:    "7.8% -> 30.6%",
			Measured: fmt.Sprintf("%.1f%% -> %.1f%%", 100*rN.StallShare(sim.StallLongScoreboard), 100*rS.StallShare(sim.StallLongScoreboard)),
			Match:    "deviation (see EXPERIMENTS.md)",
		},
		Row{
			Name:     "mio_throttle share (naive -> shared)",
			Paper:    "0.03% -> 4.5%",
			Measured: fmt.Sprintf("%.2f%% -> %.2f%%", 100*rN.StallShare(sim.StallMIOThrottle), 100*rS.StallShare(sim.StallMIOThrottle)),
			Match:    "direction",
		},
		Row{
			Name:     "vectorized tile loads (over shared)",
			Paper:    "+8.5%",
			Measured: fmt.Sprintf("%+.1f%%", 100*(rS.Cycles/rV.Cycles-1)),
			Match:    "deviation (see EXPERIMENTS.md)",
		},
		Row{
			Name:     "registers per thread (naive -> vec)",
			Paper:    "25 -> 72",
			Measured: fmt.Sprintf("%d -> %d (shared: %d)", wN.Kernel.NumRegs, wV.Kernel.NumRegs, wS.Kernel.NumRegs),
			Match:    "direction",
		},
	)
	return t, nil
}

// CompareDemo regenerates the Fig. 7 "Metrics Comparison" view for the
// mixbench naive -> vec4 change.
func CompareDemo() (string, error) {
	repOld, err := analyzeOne("mixbench_sp_naive", 24, sim.Config{SampleSMs: 1})
	if err != nil {
		return "", err
	}
	repNew, err := analyzeOne("mixbench_sp_vec4", 24, sim.Config{SampleSMs: 1})
	if err != nil {
		return "", err
	}
	cmp, err := scout.Compare(repOld, repNew)
	if err != nil {
		return "", err
	}
	return cmp.Render(), nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
