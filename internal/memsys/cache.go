// Package memsys provides the building blocks of the simulated GPU memory
// hierarchy: sectored set-associative caches (L1TEX, L2, the read-only/
// texture cache), a bandwidth/occupancy model for DRAM and L2 service, and
// the shared-memory bank-conflict calculator. internal/sim composes these
// into the full V100 hierarchy.
package memsys

import "fmt"

// CacheConfig sizes a sectored, set-associative, write-through cache.
// NVIDIA L1/L2 caches operate on 128-byte lines divided into 32-byte
// sectors: a miss fills only the missing sector, and all traffic metrics
// (l1tex__t_sectors_*, lts__t_sectors_*) count sectors.
type CacheConfig struct {
	Name        string
	TotalBytes  int
	LineBytes   int
	SectorBytes int
	Ways        int
}

// CacheStats aggregates sector-level access counts.
type CacheStats struct {
	Accesses uint64 // sector accesses
	Hits     uint64
	Misses   uint64
	ReadAcc  uint64
	WriteAcc uint64
}

// HitRate returns hits/accesses in [0,1]; 0 when idle.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns 1 - HitRate when there was traffic, else 0.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag     uint64
	valid   bool
	sectors uint32 // per-sector valid bits
	lastUse uint64 // LRU clock
}

// Cache is a sectored set-associative cache with true LRU replacement.
type Cache struct {
	cfg            CacheConfig
	sets           int
	sectorsPerLine uint
	lines          []cacheLine // sets*ways, way-major within set
	clock          uint64
	stats          CacheStats
}

// NewCache builds a cache; it panics on non-power-of-two geometry
// violations since configurations are static architecture descriptions.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.SectorBytes <= 0 || cfg.LineBytes%cfg.SectorBytes != 0 {
		panic(fmt.Sprintf("memsys: bad line/sector geometry %d/%d", cfg.LineBytes, cfg.SectorBytes))
	}
	if cfg.Ways <= 0 || cfg.TotalBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic(fmt.Sprintf("memsys: %s size %d not divisible into %d ways of %dB lines",
			cfg.Name, cfg.TotalBytes, cfg.Ways, cfg.LineBytes))
	}
	sets := cfg.TotalBytes / (cfg.LineBytes * cfg.Ways)
	return &Cache{
		cfg:            cfg,
		sets:           sets,
		sectorsPerLine: uint(cfg.LineBytes / cfg.SectorBytes),
		lines:          make([]cacheLine, sets*cfg.Ways),
	}
}

// AccessSector looks up the 32-byte (SectorBytes) sector containing addr,
// fills it on miss, and reports whether it hit. write distinguishes read
// and write traffic in the stats; the model is write-allocate.
func (c *Cache) AccessSector(addr uint64, write bool) (hit bool) {
	c.clock++
	c.stats.Accesses++
	if write {
		c.stats.WriteAcc++
	} else {
		c.stats.ReadAcc++
	}
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := int(lineAddr) % c.sets
	tag := lineAddr / uint64(c.sets)
	sector := uint32(1) << ((addr % uint64(c.cfg.LineBytes)) / uint64(c.cfg.SectorBytes))

	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.lastUse = c.clock
			if l.sectors&sector != 0 {
				c.stats.Hits++
				return true
			}
			// Line present, sector missing: sector miss fill.
			l.sectors |= sector
			c.stats.Misses++
			return false
		}
	}
	// Miss: fill an invalid way, else evict true-LRU.
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.lastUse < c.lines[victim].lastUse {
			victim = base + w
		}
	}
	v := &c.lines[victim]
	v.valid = true
	v.tag = tag
	v.sectors = sector
	v.lastUse = c.clock
	c.stats.Misses++
	return false
}

// Contains reports whether the sector holding addr is resident (no state
// change, no stats).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := int(lineAddr) % c.sets
	tag := lineAddr / uint64(c.sets)
	sector := uint32(1) << ((addr % uint64(c.cfg.LineBytes)) / uint64(c.cfg.SectorBytes))
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag && l.sectors&sector != 0 {
			return true
		}
	}
	return false
}

// Stats returns a copy of the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.clock = 0
	c.stats = CacheStats{}
}

// SectorBytes exposes the sector granularity.
func (c *Cache) SectorBytes() int { return c.cfg.SectorBytes }
