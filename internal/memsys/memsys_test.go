package memsys

import (
	"testing"
	"testing/quick"
)

func testCache() *Cache {
	return NewCache(CacheConfig{
		Name: "test", TotalBytes: 16 << 10, LineBytes: 128, SectorBytes: 32, Ways: 4,
	})
}

func TestCacheHitMiss(t *testing.T) {
	c := testCache()
	if c.AccessSector(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.AccessSector(0x1000, false) {
		t.Error("warm access missed")
	}
	if !c.AccessSector(0x101f, false) {
		t.Error("same-sector access missed")
	}
	// Different sector of the same line: sector miss.
	if c.AccessSector(0x1020, false) {
		t.Error("new sector of resident line hit")
	}
	if !c.AccessSector(0x1020, false) {
		t.Error("filled sector missed")
	}
	s := c.Stats()
	if s.Accesses != 5 || s.Hits != 3 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache()
	// 16 KiB / (128 B x 4 ways) = 32 sets. Addresses striding by
	// 128*32 = 4 KiB all map to set 0.
	setStride := uint64(4 << 10)
	for i := uint64(0); i < 4; i++ {
		c.AccessSector(i*setStride, false)
	}
	// Touch line 0 so line 1 is LRU, then bring in a 5th line.
	c.AccessSector(0, false)
	c.AccessSector(4*setStride, false)
	if !c.Contains(0) {
		t.Error("recently used line evicted")
	}
	if c.Contains(1 * setStride) {
		t.Error("LRU line survived eviction")
	}
	if !c.Contains(4 * setStride) {
		t.Error("newly inserted line absent")
	}
}

func TestCacheInvariants(t *testing.T) {
	// Property: hits + misses == accesses, and a repeated access always
	// hits immediately after the first.
	f := func(addrs []uint32) bool {
		c := testCache()
		for _, a := range addrs {
			c.AccessSector(uint64(a), false)
			if !c.AccessSector(uint64(a), false) {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses &&
			s.ReadAcc+s.WriteAcc == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCacheReset(t *testing.T) {
	c := testCache()
	c.AccessSector(0x40, true)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats survive reset: %+v", s)
	}
	if c.Contains(0x40) {
		t.Error("contents survive reset")
	}
}

func TestBandwidthQueueing(t *testing.T) {
	bw := NewBandwidth(32) // 32 B/cycle
	t1 := bw.Request(0, 32)
	if t1 != 1 {
		t.Errorf("first request completes at %v, want 1", t1)
	}
	// Second request at the same instant queues behind the first.
	t2 := bw.Request(0, 32)
	if t2 != 2 {
		t.Errorf("second request completes at %v, want 2", t2)
	}
	// A late request sees an idle resource.
	t3 := bw.Request(100, 64)
	if t3 != 102 {
		t.Errorf("late request completes at %v, want 102", t3)
	}
	if bw.TotalBytes() != 128 || bw.TotalRequests() != 3 {
		t.Errorf("counters: %d bytes, %d requests", bw.TotalBytes(), bw.TotalRequests())
	}
	if d := bw.QueueDelay(101); d != 1 {
		t.Errorf("QueueDelay = %v, want 1", d)
	}
}

func TestBandwidthMonotone(t *testing.T) {
	f := func(times []uint16) bool {
		bw := NewBandwidth(16)
		now, prev := 0.0, 0.0
		for _, dt := range times {
			now += float64(dt % 64)
			done := bw.Request(now, 32)
			if done < prev || done < now {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func allActive() []bool {
	a := make([]bool, 32)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestBankConflicts(t *testing.T) {
	active := allActive()

	// Conflict-free: lane i touches word i.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i * 4)
	}
	if got := BankConflicts(32, addrs, active, 4); got != 1 {
		t.Errorf("sequential access: %d transactions, want 1", got)
	}

	// Broadcast: all lanes read the same word — still one transaction.
	for i := range addrs {
		addrs[i] = 128
	}
	if got := BankConflicts(32, addrs, active, 4); got != 1 {
		t.Errorf("broadcast: %d transactions, want 1", got)
	}

	// Stride-32 words: every lane maps to bank 0 — 32-way conflict.
	for i := range addrs {
		addrs[i] = uint64(i * 32 * 4)
	}
	if got := BankConflicts(32, addrs, active, 4); got != 32 {
		t.Errorf("stride-32: %d transactions, want 32", got)
	}

	// Stride-2 words: two lanes per bank — 2-way conflict.
	for i := range addrs {
		addrs[i] = uint64(i * 8)
	}
	if got := BankConflicts(32, addrs, active, 4); got != 2 {
		t.Errorf("stride-2: %d transactions, want 2", got)
	}

	// Inactive lanes do not conflict.
	inactive := make([]bool, 32)
	inactive[0] = true
	for i := range addrs {
		addrs[i] = 0
	}
	if got := BankConflicts(32, addrs, inactive, 4); got != 1 {
		t.Errorf("single active lane: %d, want 1", got)
	}
	none := make([]bool, 32)
	if got := BankConflicts(32, addrs, none, 4); got != 0 {
		t.Errorf("no active lanes: %d, want 0", got)
	}
}

func TestCoalesceSectors(t *testing.T) {
	active := allActive()
	addrs := make([]uint64, 32)

	// Fully coalesced float loads: 32 lanes x 4 B = 128 B = 4 sectors.
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*4)
	}
	if got := len(CoalesceSectors(32, addrs, active, 4)); got != 4 {
		t.Errorf("coalesced: %d sectors, want 4", got)
	}

	// float4 loads: 32 lanes x 16 B = 512 B = 16 sectors.
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*16)
	}
	if got := len(CoalesceSectors(32, addrs, active, 16)); got != 16 {
		t.Errorf("float4: %d sectors, want 16", got)
	}

	// Stride 128: one sector per lane.
	for i := range addrs {
		addrs[i] = uint64(i * 128)
	}
	if got := len(CoalesceSectors(32, addrs, active, 4)); got != 32 {
		t.Errorf("strided: %d sectors, want 32", got)
	}

	// All lanes the same address: one sector.
	for i := range addrs {
		addrs[i] = 0x2000
	}
	if got := len(CoalesceSectors(32, addrs, active, 4)); got != 1 {
		t.Errorf("uniform: %d sectors, want 1", got)
	}
}
