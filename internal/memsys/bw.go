package memsys

// Bandwidth models a shared service resource (DRAM channels, the L2 slice
// bandwidth) as a single queue with a fixed byte rate. Requests occupy the
// resource back-to-back: a request arriving while the resource is busy is
// delayed, which is how memory-bandwidth-bound kernels (naive SGEMM,
// §5.3) saturate in the model.
type Bandwidth struct {
	BytesPerCycle float64
	busyUntil     float64
	totalBytes    uint64
	totalRequests uint64
}

// NewBandwidth creates a resource serving bytesPerCycle.
func NewBandwidth(bytesPerCycle float64) *Bandwidth {
	if bytesPerCycle <= 0 {
		panic("memsys: bandwidth must be positive")
	}
	return &Bandwidth{BytesPerCycle: bytesPerCycle}
}

// Request schedules a transfer of n bytes arriving at time now (cycles)
// and returns its completion time. Completion times are monotone in
// arrival order.
func (b *Bandwidth) Request(now float64, n int) float64 {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + float64(n)/b.BytesPerCycle
	b.totalBytes += uint64(n)
	b.totalRequests++
	return b.busyUntil
}

// QueueDelay returns how long a request arriving now would wait before
// service begins, without scheduling anything.
func (b *Bandwidth) QueueDelay(now float64) float64 {
	if b.busyUntil > now {
		return b.busyUntil - now
	}
	return 0
}

// TotalBytes returns the bytes transferred so far.
func (b *Bandwidth) TotalBytes() uint64 { return b.totalBytes }

// TotalRequests returns the number of transfers so far.
func (b *Bandwidth) TotalRequests() uint64 { return b.totalRequests }

// Reset clears state and counters.
func (b *Bandwidth) Reset() {
	b.busyUntil = 0
	b.totalBytes = 0
	b.totalRequests = 0
}
