package memsys

// BankConflicts computes how many serialized transactions a warp's
// shared-memory access generates on a banked shared memory. Shared memory
// is organized in NumBanks 4-byte-wide banks; lanes touching different
// 32-bit words that map to the same bank serialize, while lanes reading
// the *same* word broadcast in one transaction.
//
// The paper's §4.3 bank-conflict ratio —
//
//	(# shared load transactions) / (# shared load accesses)
//
// — is exactly (sum of this function over accesses) / (access count):
// 1.0 means conflict-free, 32 means fully serialized 32-way conflicts.
func BankConflicts(numBanks int, addrs []uint64, active []bool, widthBytes int) int {
	var s BankScratch
	return s.BankConflicts(numBanks, addrs, active, widthBytes)
}

// BankScratch holds reusable buffers for the conflict calculators so the
// simulator's hot path computes conflicts without heap allocation. The
// zero value is ready to use; buffers grow on first use and are retained.
type BankScratch struct {
	words   []uint64 // distinct word addresses of one access
	perBank []int    // transaction count per bank
}

// BankConflicts is the allocation-free form of the package-level
// BankConflicts; it produces the identical result for identical inputs.
func (s *BankScratch) BankConflicts(numBanks int, addrs []uint64, active []bool, widthBytes int) int {
	// Collect the set of distinct word addresses touched. A warp touches
	// at most 32 lanes x widthBytes/4 words, so linear dedup over a small
	// slice beats a map.
	words := s.words[:0]
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		for w := 0; w < widthBytes; w += 4 {
			word := (a + uint64(w)) / 4
			seen := false
			for _, prev := range words {
				if prev == word {
					seen = true
					break
				}
			}
			if !seen {
				words = append(words, word)
			}
		}
	}
	s.words = words
	if len(words) == 0 {
		return 0
	}
	perBank := s.bankCounts(numBanks)
	maxPer := 0
	for _, word := range words {
		bank := int(word % uint64(numBanks))
		perBank[bank]++
		if perBank[bank] > maxPer {
			maxPer = perBank[bank]
		}
	}
	return maxPer
}

func (s *BankScratch) bankCounts(numBanks int) []int {
	if cap(s.perBank) < numBanks {
		s.perBank = make([]int, numBanks)
	}
	s.perBank = s.perBank[:numBanks]
	for i := range s.perBank {
		s.perBank[i] = 0
	}
	return s.perBank
}

// AtomicConflicts computes the serialization factor of a warp's shared
// memory *atomic* access: unlike plain loads, same-word accesses cannot
// broadcast — every lane performs a read-modify-write, so the per-bank
// lane count (including duplicates) bounds the transactions.
func AtomicConflicts(numBanks int, addrs []uint64, active []bool) int {
	var s BankScratch
	return s.AtomicConflicts(numBanks, addrs, active)
}

// AtomicConflicts is the allocation-free form of the package-level
// AtomicConflicts; it produces the identical result for identical inputs.
func (s *BankScratch) AtomicConflicts(numBanks int, addrs []uint64, active []bool) int {
	perBank := s.bankCounts(numBanks)
	maxPer := 0
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		bank := int((a / 4) % uint64(numBanks))
		perBank[bank]++
		if perBank[bank] > maxPer {
			maxPer = perBank[bank]
		}
	}
	return maxPer
}

// CoalesceSectors returns the distinct sector base addresses a warp's
// global/local access touches — the unit the L1TEX pipe processes.
// Perfectly coalesced 32-lane 4-byte accesses produce 4 sectors of 32
// bytes (one 128-byte line); a stride-N pattern produces up to one sector
// per lane. The returned slice is in first-touch order.
func CoalesceSectors(sectorBytes int, addrs []uint64, active []bool, widthBytes int) []uint64 {
	return CoalesceSectorsInto(nil, sectorBytes, addrs, active, widthBytes)
}

// CoalesceSectorsInto is CoalesceSectors writing into a caller-provided
// buffer (reused across calls to keep the simulator's hot path free of
// heap allocation). It returns buf[:0] extended with the distinct sector
// bases in first-touch order — identical content to CoalesceSectors.
func CoalesceSectorsInto(buf []uint64, sectorBytes int, addrs []uint64, active []bool, widthBytes int) []uint64 {
	// A warp produces at most 32 lanes x widthBytes/4 sector candidates;
	// linear dedup over the output slice beats a map at that size.
	order := buf[:0]
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		for w := 0; w < widthBytes; w += 4 {
			s := (a + uint64(w)) / uint64(sectorBytes) * uint64(sectorBytes)
			// Adjacent lanes usually land in the same sector (that is what
			// coalescing means), so check the last sector first before the
			// full dedup scan.
			if n := len(order); n > 0 && order[n-1] == s {
				continue
			}
			seen := false
			for _, prev := range order {
				if prev == s {
					seen = true
					break
				}
			}
			if !seen {
				order = append(order, s)
			}
		}
	}
	return order
}
