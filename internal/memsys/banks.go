package memsys

// BankConflicts computes how many serialized transactions a warp's
// shared-memory access generates on a banked shared memory. Shared memory
// is organized in NumBanks 4-byte-wide banks; lanes touching different
// 32-bit words that map to the same bank serialize, while lanes reading
// the *same* word broadcast in one transaction.
//
// The paper's §4.3 bank-conflict ratio —
//
//	(# shared load transactions) / (# shared load accesses)
//
// — is exactly (sum of this function over accesses) / (access count):
// 1.0 means conflict-free, 32 means fully serialized 32-way conflicts.
func BankConflicts(numBanks int, addrs []uint64, active []bool, widthBytes int) int {
	// Per bank, collect the set of distinct word addresses touched.
	words := make(map[uint64]struct{}, len(addrs))
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		for w := 0; w < widthBytes; w += 4 {
			words[(a+uint64(w))/4] = struct{}{}
		}
	}
	if len(words) == 0 {
		return 0
	}
	perBank := make(map[int]int)
	maxPer := 0
	for word := range words {
		bank := int(word % uint64(numBanks))
		perBank[bank]++
		if perBank[bank] > maxPer {
			maxPer = perBank[bank]
		}
	}
	return maxPer
}

// AtomicConflicts computes the serialization factor of a warp's shared
// memory *atomic* access: unlike plain loads, same-word accesses cannot
// broadcast — every lane performs a read-modify-write, so the per-bank
// lane count (including duplicates) bounds the transactions.
func AtomicConflicts(numBanks int, addrs []uint64, active []bool) int {
	perBank := make(map[int]int)
	maxPer := 0
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		bank := int((a / 4) % uint64(numBanks))
		perBank[bank]++
		if perBank[bank] > maxPer {
			maxPer = perBank[bank]
		}
	}
	return maxPer
}

// CoalesceSectors returns the distinct sector base addresses a warp's
// global/local access touches — the unit the L1TEX pipe processes.
// Perfectly coalesced 32-lane 4-byte accesses produce 4 sectors of 32
// bytes (one 128-byte line); a stride-N pattern produces up to one sector
// per lane. The returned slice is in first-touch order.
func CoalesceSectors(sectorBytes int, addrs []uint64, active []bool, widthBytes int) []uint64 {
	var order []uint64
	seen := make(map[uint64]struct{}, len(addrs))
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		for w := 0; w < widthBytes; w += 4 {
			s := (a + uint64(w)) / uint64(sectorBytes) * uint64(sectorBytes)
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				order = append(order, s)
			}
		}
	}
	return order
}
