package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpuscout/internal/faultinject"
)

// The persistent report store backs the service's in-memory LRU: one
// file per report under reports/, named by the same v3 cache key the
// memory tier uses (a SHA-256 hex digest, so the name doubles as the
// content address). Each entry is self-verifying:
//
//	GPUSCOUT-REPORT v1 <sha256(body) hex> <body length> <fingerprint>\n
//	<body bytes>
//
// Reads re-hash the body against the header; any mismatch — flipped
// bits, a truncated write that somehow survived the atomic-rename
// discipline, manual tampering — moves the file to corrupt/ and
// reports a miss, so the caller recomputes and the next put self-heals
// the entry. The store never serves bytes it cannot prove whole.
//
// Writes are atomic: body to a temp file in the same directory, fsync
// per policy, then rename onto the final name. A crash mid-write
// leaves only a temp file (removed at the next Open); a crash between
// write and rename leaves the old entry (or absence) intact. There is
// no state in which a reader can observe a half-written entry.
//
// The store is size-bounded: when total bytes exceed Options.MaxBytes
// the least recently *used* entries go first, where recency is the
// file mtime — reads touch it, so a disk entry that keeps serving warm
// restarts stays resident while dead keys age out.

// siteReportRename is the kill site between an entry's temp-file write
// and its rename: the crash that loses the report but must never
// corrupt the store.
var siteReportRename = faultinject.Register("store.report.rename")

const (
	reportMagic = "GPUSCOUT-REPORT v1"
	// reportHeaderMax bounds the header line a reader will accept:
	// magic + 64-hex digest + length + fingerprint, with slack.
	reportHeaderMax = 256
)

// reportEntry is the in-memory index row for one on-disk report.
type reportEntry struct {
	bytes int64 // file size, header included
	mtime time.Time
	fp    string
}

// reportPath maps a cache key to its entry file. Keys are hex digests,
// but belt-and-braces: anything that could traverse is rejected.
func (s *Store) reportPath(key string) (string, bool) {
	if key == "" || len(key) > 128 || strings.ContainsAny(key, "/\\.") {
		return "", false
	}
	return filepath.Join(s.dir, "reports", key), true
}

// PutReport durably stores one rendered report under its cache key.
// The fingerprint rides along in the header so recovery and operators
// can map entries back to inputs without recomputing keys.
func (s *Store) PutReport(key, fingerprint string, data []byte) error {
	path, ok := s.reportPath(key)
	if !ok {
		return fmt.Errorf("store: invalid report key %q", key)
	}
	sum := sha256.Sum256(data)
	header := fmt.Sprintf("%s %s %d %s\n", reportMagic, hex.EncodeToString(sum[:]), len(data), fingerprint)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrDead
	}
	dir := filepath.Join(s.dir, "reports")
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: report temp: %w", err)
	}
	tmpName := tmp.Name()
	_, err = tmp.WriteString(header)
	if err == nil {
		_, err = tmp.Write(data)
	}
	if err == nil && s.opts.FsyncPolicy == FsyncAlways {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: report write: %w", err)
	}
	if err := faultinject.Hit(siteReportRename); err != nil {
		// Crash point: the entry exists only as a temp file. The rename
		// never happens; Open removes the orphan and the report is
		// recomputed on the next request (self-heal by recompute).
		s.dead = true
		return fmt.Errorf("store: report rename: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: report rename: %w", err)
	}
	s.syncDir()
	size := int64(len(header) + len(data))
	if old, ok := s.reports[key]; ok {
		s.reportBytes -= old.bytes
	} else {
		s.fpIndex[fingerprint]++
	}
	s.reports[key] = reportEntry{bytes: size, mtime: time.Now(), fp: fingerprint}
	s.reportBytes += size
	s.gcLocked()
	return nil
}

// GetReport returns the verified report bytes for key. A checksum or
// framing failure quarantines the entry to corrupt/ and reports a miss
// — corrupt bytes are never returned. A hit refreshes the entry's
// recency (mtime) for the byte-bounded GC.
func (s *Store) GetReport(key string) ([]byte, bool) {
	path, ok := s.reportPath(key)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.quarantineLocked(key, path)
		}
		return nil, false
	}
	body, fp, ok := verifyReport(raw)
	if !ok {
		s.quarantineLocked(key, path)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	if e, indexed := s.reports[key]; indexed {
		e.mtime = now
		s.reports[key] = e
	} else {
		// Entry appeared behind the index's back (operator copy-in);
		// adopt it.
		s.reports[key] = reportEntry{bytes: int64(len(raw)), mtime: now, fp: fp}
		s.reportBytes += int64(len(raw))
		s.fpIndex[fp]++
	}
	return body, true
}

// verifyReport checks an entry's header against its body and returns
// the body and fingerprint on success.
func verifyReport(raw []byte) (body []byte, fingerprint string, ok bool) {
	nl := -1
	limit := len(raw)
	if limit > reportHeaderMax {
		limit = reportHeaderMax
	}
	for i := 0; i < limit; i++ {
		if raw[i] == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, "", false
	}
	fields := strings.Fields(string(raw[:nl]))
	// "GPUSCOUT-REPORT" "v1" <digest> <len> <fingerprint>
	if len(fields) != 5 || fields[0]+" "+fields[1] != reportMagic {
		return nil, "", false
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 || n != len(raw)-nl-1 {
		return nil, "", false
	}
	body = raw[nl+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, "", false
	}
	return body, fields[4], true
}

// quarantineLocked moves a bad entry to corrupt/ (never deletes it —
// the bytes are evidence) and drops it from the index so it reads as a
// miss from now on.
func (s *Store) quarantineLocked(key, path string) {
	dst := filepath.Join(s.dir, "corrupt", key)
	if err := os.Rename(path, dst); err != nil && !os.IsNotExist(err) {
		// Rename across a broken filesystem: removing is the only way
		// to stop serving the entry.
		os.Remove(path)
	}
	if e, ok := s.reports[key]; ok {
		s.reportBytes -= e.bytes
		s.dropFingerprintLocked(e.fp)
		delete(s.reports, key)
	}
	s.corrupt++
}

// gcLocked evicts least-recently-used entries (by mtime) until the
// store is back under Options.MaxBytes. MaxBytes <= 0 disables the
// bound.
func (s *Store) gcLocked() {
	if s.opts.MaxBytes <= 0 || s.reportBytes <= s.opts.MaxBytes {
		return
	}
	type aged struct {
		key   string
		mtime time.Time
	}
	entries := make([]aged, 0, len(s.reports))
	for k, e := range s.reports {
		entries = append(entries, aged{k, e.mtime})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, a := range entries {
		if s.reportBytes <= s.opts.MaxBytes {
			break
		}
		path, ok := s.reportPath(a.key)
		if !ok {
			continue
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			continue
		}
		e := s.reports[a.key]
		s.reportBytes -= e.bytes
		s.dropFingerprintLocked(e.fp)
		delete(s.reports, a.key)
		s.evicted++
	}
}

// dropFingerprintLocked decrements the fingerprint refcount, removing
// exhausted entries.
func (s *Store) dropFingerprintLocked(fp string) {
	if n := s.fpIndex[fp]; n <= 1 {
		delete(s.fpIndex, fp)
	} else {
		s.fpIndex[fp] = n - 1
	}
}

// HasFingerprint reports whether any stored report was computed from
// the given input fingerprint — the recovery pass's cheap "is this
// pending job's work already on disk" probe.
func (s *Store) HasFingerprint(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fpIndex[fp] > 0
}

// loadReportIndex scans reports/ at Open: orphan temp files from a
// crashed write are removed, entry headers are read (header line only
// — bodies are verified lazily on Get), and the byte/mtime index is
// rebuilt.
func (s *Store) loadReportIndex() error {
	dir := filepath.Join(s.dir, "reports")
	des, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(path)
			continue
		}
		info, err := de.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		fp, ok := readEntryFingerprint(path)
		if !ok {
			s.quarantineLocked(name, path)
			continue
		}
		s.reports[name] = reportEntry{bytes: info.Size(), mtime: info.ModTime(), fp: fp}
		s.reportBytes += info.Size()
		s.fpIndex[fp]++
	}
	s.gcLocked()
	return nil
}

// readEntryFingerprint parses just the header line of an entry file.
func readEntryFingerprint(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, reportHeaderMax)
	line, err := r.ReadString('\n')
	if err != nil {
		return "", false
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) != 5 || fields[0]+" "+fields[1] != reportMagic {
		return "", false
	}
	return fields[4], true
}
