// Package store is gpuscoutd's crash-safe persistence layer: a
// write-ahead job journal, a persistent content-addressed report store
// behind the in-memory LRU, and a small slot for quarantine-breaker
// state — everything that must survive a process death under
// `gpuscoutd -data-dir`.
//
// Layout of one data directory:
//
//	data-dir/
//	  journal.wal     append-only framed job journal (journal.go)
//	  journal.tmp     transient: a compaction rewrite in flight
//	  reports/<key>   one self-verifying entry per cached report
//	  corrupt/<key>   quarantined entries that failed verification
//	  breaker.json    persisted quarantine-breaker entries
//
// Durability contract: a job acknowledged to a client has its accept
// record on disk before the acknowledgement (write-ahead); a report
// entry is either absent, whole and checksum-verified, or quarantined
// — never served partial. Every multi-step mutation (entry writes,
// journal compaction, breaker saves) goes through temp-file + fsync +
// rename so a crash at any instruction leaves a recoverable directory.
//
// Fail-stop: the first injected or real I/O failure marks the Store
// dead and every later operation returns ErrDead — mirroring a crashed
// process instead of limping on with untracked on-disk state. Recovery
// is always a fresh Open.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrDead is returned by every operation after the store has hit an
// I/O failure (or an injected crash point): the on-disk state may be
// mid-mutation, so the only safe continuation is a restart + Open.
var ErrDead = errors.New("store: store is dead (crashed mid-write; reopen the data dir)")

// FsyncPolicy selects how aggressively the journal and report writes
// are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every journal append and report write:
	// an acknowledged job survives even a kernel panic. The safe
	// default; costs one fsync per accepted job.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs the journal on a timer (Options.FsyncInterval):
	// a hard power cut can lose the last interval's acknowledgements,
	// a plain process crash loses nothing (the OS has the bytes).
	FsyncInterval
	// FsyncNever leaves flushing entirely to the OS: fastest, loses up
	// to the page-cache window on power loss. Process crashes are
	// still safe.
	FsyncNever
)

// String names the policy ("always", "interval", "never").
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// ParseFsyncPolicy is the inverse of FsyncPolicy.String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options tunes one data directory. The zero value selects safe
// defaults (fsync always, 1 GiB report bound).
type Options struct {
	// FsyncPolicy is the flush discipline (default FsyncAlways).
	FsyncPolicy FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// MaxBytes bounds the report store; least-recently-used entries
	// (by mtime) are evicted past it. <= 0 after defaulting disables
	// the bound (default 1 GiB; negative = unlimited).
	MaxBytes int64
	// CompactAfter triggers a journal snapshot+compaction once the log
	// holds this many more records than live jobs (default 512).
	CompactAfter int
}

func (o *Options) applyDefaults() {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 1 << 30
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 512
	}
}

// Store is one open data directory. All methods are safe for
// concurrent use.
type Store struct {
	dir         string
	opts        Options
	journalPath string

	mu       sync.Mutex
	dead     bool
	journalF *os.File

	// Journal state (journal.go).
	journalLen     int64
	records        int
	pending        map[string]PendingJob
	pendingOrder   []string
	lastJobID      string
	lastCompaction time.Time
	compactions    uint64
	recoveredTorn  bool // replay hit a torn/corrupt tail at Open

	// Report-store state (reports.go).
	reports     map[string]reportEntry
	reportBytes int64
	fpIndex     map[string]int // fingerprint -> live entry count
	corrupt     uint64         // entries quarantined since Open
	evicted     uint64         // entries evicted by GC since Open

	stopSync chan struct{} // FsyncInterval ticker shutdown
	syncDone chan struct{}
}

// Open prepares a data directory: creates the layout, removes orphan
// temp files from crashed writes, rebuilds the report index, replays
// the journal (truncating any torn tail), and starts the interval
// fsync loop when configured. The journal's pending jobs are then
// available via Pending.
func Open(dir string, opts Options) (*Store, error) {
	opts.applyDefaults()
	for _, d := range []string{dir, filepath.Join(dir, "reports"), filepath.Join(dir, "corrupt")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:         dir,
		opts:        opts,
		journalPath: filepath.Join(dir, "journal.wal"),
		pending:     map[string]PendingJob{},
		reports:     map[string]reportEntry{},
		fpIndex:     map[string]int{},
	}
	// A compaction that crashed between temp write and rename leaves
	// journal.tmp; the old journal is still authoritative.
	os.Remove(filepath.Join(dir, "journal.tmp"))

	if err := s.loadReportIndex(); err != nil {
		return nil, fmt.Errorf("store: scan reports: %w", err)
	}

	// Replay the journal and truncate the torn tail, if any, so appends
	// resume from the last whole frame.
	data, err := os.ReadFile(s.journalPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read journal: %w", err)
	}
	recs, validLen := replayJournal(data)
	s.recoveredTorn = validLen < int64(len(data))
	pending, lastID := reduce(recs)
	for _, p := range pending {
		s.pending[p.ID] = p
		s.pendingOrder = append(s.pendingOrder, p.ID)
	}
	s.lastJobID = lastID
	s.records = len(recs)
	s.journalLen = validLen

	f, err := os.OpenFile(s.journalPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek journal: %w", err)
	}
	s.journalF = f

	if opts.FsyncPolicy == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop(s.stopSync, s.syncDone)
	}
	return s, nil
}

// syncLoop flushes the journal on a timer under FsyncInterval. The
// channels are passed in rather than re-read from the struct: Close
// nils s.stopSync after closing it, and a select that re-evaluated the
// field would block forever on the nil channel.
func (s *Store) syncLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.dead && s.journalF != nil {
				s.journalF.Sync()
			}
			s.mu.Unlock()
		case <-stop:
			return
		}
	}
}

// syncDir flushes the data directory's own metadata (new names after a
// rename) under FsyncAlways. Errors are swallowed: directory fsync is
// best-effort hardening on filesystems that need it.
func (s *Store) syncDir() {
	if s.opts.FsyncPolicy != FsyncAlways {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close flushes and closes the journal. The store must not be used
// afterwards; a dead store closes cleanly.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.stopSync != nil {
		close(s.stopSync)
		s.stopSync = nil
		done := s.syncDone
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
	var err error
	if s.journalF != nil {
		if !s.dead && s.opts.FsyncPolicy != FsyncNever {
			err = s.journalF.Sync()
		}
		if cerr := s.journalF.Close(); err == nil {
			err = cerr
		}
		s.journalF = nil
	}
	s.dead = true
	s.mu.Unlock()
	return err
}

// SaveBreaker persists the quarantine breaker's exported state
// (opaque bytes to the store) atomically, so a restart cannot
// un-quarantine a poison fingerprint.
func (s *Store) SaveBreaker(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrDead
	}
	path := filepath.Join(s.dir, "breaker.json")
	tmp, err := os.CreateTemp(s.dir, ".breaker-*")
	if err != nil {
		return fmt.Errorf("store: breaker temp: %w", err)
	}
	name := tmp.Name()
	_, err = tmp.Write(data)
	if err == nil && s.opts.FsyncPolicy == FsyncAlways {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		os.Remove(name)
		return fmt.Errorf("store: save breaker: %w", err)
	}
	s.syncDir()
	return nil
}

// LoadBreaker returns the persisted breaker state, if any.
func (s *Store) LoadBreaker() ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, "breaker.json"))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// Stats is the observability snapshot /healthz and /metrics render.
type Stats struct {
	// Path is the data directory.
	Path string
	// ReportEntries / ReportBytes size the persistent report store.
	ReportEntries int
	ReportBytes   int64
	// JournalRecords is the total frames in the journal file;
	// JournalLiveJobs the accepts without tombstones; JournalLag their
	// difference — the garbage a compaction would reclaim.
	JournalRecords  int
	JournalLiveJobs int
	JournalLag      int
	// JournalBytes is the journal file's valid length.
	JournalBytes int64
	// LastCompaction is the zero time until the first compaction.
	LastCompaction time.Time
	// Compactions counts journal rewrites since Open.
	Compactions uint64
	// CorruptQuarantined counts entries moved to corrupt/ since Open.
	CorruptQuarantined uint64
	// Evicted counts entries removed by the byte-bound GC since Open.
	Evicted uint64
	// RecoveredTorn reports whether Open found (and truncated) a torn
	// journal tail.
	RecoveredTorn bool
	// Dead reports fail-stop: an I/O failure froze this store.
	Dead bool
}

// Stats snapshots the store's health.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Path:               s.dir,
		ReportEntries:      len(s.reports),
		ReportBytes:        s.reportBytes,
		JournalRecords:     s.records,
		JournalLiveJobs:    len(s.pending),
		JournalLag:         s.records - len(s.pending),
		JournalBytes:       s.journalLen,
		LastCompaction:     s.lastCompaction,
		Compactions:        s.compactions,
		CorruptQuarantined: s.corrupt,
		Evicted:            s.evicted,
		RecoveredTorn:      s.recoveredTorn,
		Dead:               s.dead,
	}
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }
