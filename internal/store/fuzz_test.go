package store

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// frames builds a journal byte stream from records (test/fuzz seeds).
func frames(recs ...rec) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		payload, _ := json.Marshal(r)
		buf.Write(encodeFrame(payload))
	}
	return buf.Bytes()
}

// FuzzJournalReplay drives the journal decoder with arbitrary bytes —
// torn frames, flipped bits, duplicate tombstones, interleaved
// snapshots, hostile lengths. The decoder must never panic, and must
// satisfy three properties on every input:
//
//  1. Determinism: two replays of the same bytes agree exactly.
//  2. Valid-prefix: the reported valid length is ≤ len(input), frames
//     before it re-replay identically, and replaying just the valid
//     prefix yields the same records (truncation is sound).
//  3. Round-trip: re-encoding the replayed records produces a journal
//     that replays to the same reduced pending set — what compaction
//     relies on to rewrite logs without changing their meaning.
func FuzzJournalReplay(f *testing.F) {
	// Seeds: the shapes the chaos suite produces on purpose.
	clean := frames(
		rec{Op: opAccept, ID: "j00000001", FP: "fp-a", Req: json.RawMessage(`{"workload":"sgemm_naive"}`)},
		rec{Op: opAccept, ID: "j00000002", FP: "fp-b", Req: json.RawMessage(`{"workload":"jacobi_naive","scale":64}`)},
		rec{Op: opTomb, ID: "j00000001", Out: "done"},
	)
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn tail mid-frame
	f.Add(clean[:9])            // torn inside the first frame's header+payload
	f.Add(frames(
		rec{Op: opTomb, ID: "j00000001", Out: "done"},
		rec{Op: opTomb, ID: "j00000001", Out: "done"},      // duplicate tombstone
		rec{Op: opTomb, ID: "j00000404", Out: "cancelled"}, // tombstone without accept
	))
	f.Add(frames(
		rec{Op: opAccept, ID: "j00000001", FP: "fp-a"},
		rec{Op: opSnap},
		rec{Op: opAccept, ID: "j00000002", FP: "fp-b"},
		rec{Op: opSnap}, // second interleaved snapshot
		rec{Op: opAccept, ID: "j00000003", FP: "fp-c"},
	))
	f.Add(frames(rec{Op: "op-from-the-future", ID: "j00000007"}))
	flipped := append([]byte(nil), clean...)
	flipped[12] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // hostile length field
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := replayJournal(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}

		// Determinism.
		recs2, validLen2 := replayJournal(data)
		if validLen != validLen2 || !reflect.DeepEqual(recs, recs2) {
			t.Fatal("replay is nondeterministic")
		}

		// Valid-prefix soundness: the truncated journal replays to the
		// same records with nothing torn.
		recsPrefix, validPrefix := replayJournal(data[:validLen])
		if validPrefix != validLen || !reflect.DeepEqual(recs, recsPrefix) {
			t.Fatalf("valid prefix is not self-contained: %d vs %d records, len %d vs %d",
				len(recs), len(recsPrefix), validLen, validPrefix)
		}

		// Round-trip: rewriting the decoded records must preserve the
		// reduced state (compaction soundness).
		pending, lastID := reduce(recs)
		reencoded := frames(recs...)
		recs3, valid3 := replayJournal(reencoded)
		if valid3 != int64(len(reencoded)) {
			t.Fatalf("re-encoded journal reports torn tail: %d/%d", valid3, len(reencoded))
		}
		pending3, lastID3 := reduce(recs3)
		if lastID != lastID3 || !reflect.DeepEqual(pending, pending3) {
			t.Fatalf("round-trip changed the reduced state:\n  %+v (last %q)\nvs\n  %+v (last %q)",
				pending, lastID, pending3, lastID3)
		}
		for _, p := range pending {
			if p.ID == "" {
				t.Fatal("pending job with empty ID escaped reduce")
			}
		}
	})
}
