package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func req(workload string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"workload":%q}`, workload))
}

func TestJournalAcceptTombstoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.AppendAccept("j00000001", "fp-a", req("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAccept("j00000002", "fp-b", req("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTombstone("j00000001", "done"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != "j00000002" || pending[0].Fingerprint != "fp-b" {
		t.Fatalf("pending = %+v, want only j00000002", pending)
	}
	if got := s2.LastJobID(); got != "j00000002" {
		t.Errorf("LastJobID = %q, want j00000002", got)
	}
	if st := s2.Stats(); st.RecoveredTorn {
		t.Error("clean journal reported a torn tail")
	}
	// Tombstoning the survivor empties the journal's live set.
	if err := s2.AppendTombstone("j00000002", "cancelled"); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Pending()); got != 0 {
		t.Errorf("pending after tombstones = %d, want 0", got)
	}
}

// TestJournalTornTail truncates the journal at every byte boundary of
// its final record: replay must recover exactly the records before the
// cut, never panic, and the reopened journal must accept appends that
// survive another restart (the truncated tail does not poison the
// file).
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := s.AppendAccept(fmt.Sprintf("j%08d", i), fmt.Sprintf("fp-%d", i), req("w")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, "journal.wal")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, validLen := replayJournal(whole)
	if len(recs) != 3 || validLen != int64(len(whole)) {
		t.Fatalf("baseline replay: %d recs, validLen %d/%d", len(recs), validLen, len(whole))
	}
	// The third record spans [secondEnd, len(whole)).
	_, secondEnd := replayJournal(whole[:len(whole)-1])
	if secondEnd >= int64(len(whole)) {
		t.Fatal("could not locate second record end")
	}

	for cut := int(secondEnd); cut < len(whole); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "journal.wal"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openTest(t, dir2, Options{})
		pending := s2.Pending()
		if len(pending) != 2 {
			t.Fatalf("cut at %d: recovered %d jobs, want 2", cut, len(pending))
		}
		if cut > int(secondEnd) {
			if st := s2.Stats(); !st.RecoveredTorn {
				t.Errorf("cut at %d: torn tail not reported", cut)
			}
		}
		// The journal must remain appendable and replayable.
		if err := s2.AppendAccept("j00000009", "fp-9", req("x")); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		s2.Close()
		s3 := openTest(t, dir2, Options{})
		if got := len(s3.Pending()); got != 3 {
			t.Fatalf("cut at %d: second restart sees %d pending, want 3", cut, got)
		}
		s3.Close()
	}
}

// TestJournalFlippedByte corrupts one byte inside an interior record:
// replay must stop at the corruption (conservative — everything after
// an unverifiable frame is suspect) and the reopened store must
// truncate it away.
func TestJournalFlippedByte(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := s.AppendAccept(fmt.Sprintf("j%08d", i), "fp", req("w")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, "journal.wal")
	whole, _ := os.ReadFile(path)
	// Locate record boundaries by replaying prefixes.
	var bounds []int
	for cut := 0; cut <= len(whole); cut++ {
		if recs, v := replayJournal(whole[:cut]); int(v) == cut && len(recs) > len(bounds) {
			bounds = append(bounds, cut)
		}
	}
	if len(bounds) != 3 {
		t.Fatalf("found %d record boundaries, want 3", len(bounds))
	}
	// Flip a payload byte of record 2 (between bounds[0] and bounds[1]).
	mut := append([]byte(nil), whole...)
	mut[bounds[0]+10] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	if got := len(s2.Pending()); got != 1 {
		t.Errorf("pending after mid-journal corruption = %d, want 1 (records after the flip discarded)", got)
	}
	if st := s2.Stats(); !st.RecoveredTorn {
		t.Error("corruption not reported as torn")
	}
	if st := s2.Stats(); st.JournalBytes != int64(bounds[0]) {
		t.Errorf("journal truncated to %d bytes, want %d", st.JournalBytes, bounds[0])
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{CompactAfter: 8})
	// Churn enough accept+tombstone pairs to trip compaction, keeping
	// two jobs permanently live.
	if err := s.AppendAccept("j00000001", "fp-live-1", req("keep1")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 30; i++ {
		id := fmt.Sprintf("j%08d", i)
		if err := s.AppendAccept(id, "fp-churn", req("churn")); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendTombstone(id, "done"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendAccept("j00000099", "fp-live-2", req("keep2")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 40+ records with CompactAfter=8: %+v", st)
	}
	if st.JournalLag >= 8+2 {
		t.Errorf("journal lag %d not reclaimed by compaction", st.JournalLag)
	}
	if st.LastCompaction.IsZero() {
		t.Error("LastCompaction not stamped")
	}
	s.Close()

	// The compacted journal must replay to exactly the live set, in
	// acknowledgement order, and still know the highest ID ever issued.
	s2 := openTest(t, dir, Options{})
	pending := s2.Pending()
	if len(pending) != 2 || pending[0].ID != "j00000001" || pending[1].ID != "j00000099" {
		t.Fatalf("pending after compaction+restart = %+v", pending)
	}
	if got := s2.LastJobID(); got != "j00000099" {
		t.Errorf("LastJobID = %q, want j00000099", got)
	}
}

func TestReportStoreRoundTripAndRecency(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	key := strings.Repeat("ab", 32)
	data := []byte(`{"report":"payload"}`)
	if _, ok := s.GetReport(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.PutReport(key, "fp-1", data); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetReport(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("GetReport = %q, %v", got, ok)
	}
	if !s.HasFingerprint("fp-1") {
		t.Error("fingerprint index missed fp-1")
	}
	s.Close()

	// Entries survive a restart; the index is rebuilt from headers.
	s2 := openTest(t, dir, Options{})
	got, ok = s2.GetReport(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("after restart: GetReport = %q, %v", got, ok)
	}
	if !s2.HasFingerprint("fp-1") {
		t.Error("fingerprint index not rebuilt at Open")
	}
	st := s2.Stats()
	if st.ReportEntries != 1 || st.ReportBytes <= int64(len(data)) {
		t.Errorf("stats = %+v", st)
	}
}

// TestReportStoreCorruptEntryQuarantined flips one body byte and one
// header byte: both reads must miss, the files must land in corrupt/,
// and a re-put must self-heal the entry.
func TestReportStoreCorruptEntryQuarantined(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(raw []byte) []byte
	}{
		{"body bit flip", func(raw []byte) []byte {
			m := append([]byte(nil), raw...)
			m[len(m)-2] ^= 0x01
			return m
		}},
		{"header digest flip", func(raw []byte) []byte {
			m := append([]byte(nil), raw...)
			m[len(reportMagic)+3] ^= 0x01
			return m
		}},
		{"truncated body", func(raw []byte) []byte {
			return raw[:len(raw)-4]
		}},
		{"missing newline", func(raw []byte) []byte {
			return bytes.ReplaceAll(raw, []byte("\n"), []byte(" "))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{})
			key := strings.Repeat("cd", 32)
			if err := s.PutReport(key, "fp-x", []byte(`{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "reports", key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if data, ok := s.GetReport(key); ok {
				t.Fatalf("corrupt entry served: %q", data)
			}
			if _, err := os.Stat(filepath.Join(dir, "corrupt", key)); err != nil {
				t.Errorf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still present in reports/")
			}
			if st := s.Stats(); st.CorruptQuarantined != 1 {
				t.Errorf("CorruptQuarantined = %d, want 1", st.CorruptQuarantined)
			}
			// Self-heal: recompute (simulated by a fresh put) and read back.
			if err := s.PutReport(key, "fp-x", []byte(`{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.GetReport(key); !ok {
				t.Error("re-put after quarantine missed")
			}
		})
	}
}

func TestReportStoreByteBoundGC(t *testing.T) {
	dir := t.TempDir()
	// Each entry: ~130-byte header + 100-byte body. Bound to ~3 entries.
	s := openTest(t, dir, Options{MaxBytes: 720})
	body := bytes.Repeat([]byte("x"), 100)
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064d", i)
		if err := s.PutReport(keys[i], fmt.Sprintf("fp-%d", i), body); err != nil {
			t.Fatal(err)
		}
		// mtime granularity: make recency strictly ordered.
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(filepath.Join(dir, "reports", keys[i]), mt, mt)
		e := s.reports[keys[i]]
		e.mtime = mt
		s.reports[keys[i]] = e
	}
	s.mu.Lock()
	s.gcLocked()
	st := Stats{ReportEntries: len(s.reports), ReportBytes: s.reportBytes, Evicted: s.evicted}
	s.mu.Unlock()
	if st.ReportBytes > 720 {
		t.Errorf("GC left %d bytes, bound 720", st.ReportBytes)
	}
	if st.Evicted == 0 {
		t.Error("nothing evicted despite exceeding the bound")
	}
	// The oldest entries must be the evicted ones.
	if _, ok := s.GetReport(keys[0]); ok {
		t.Error("oldest entry survived GC")
	}
	if _, ok := s.GetReport(keys[4]); !ok {
		t.Error("newest entry evicted")
	}
}

func TestReportStoreOrphanTempCleanup(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "reports"), 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "reports", ".tmp-crashed123")
	if err := os.WriteFile(orphan, []byte("half a report"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan temp file survived Open")
	}
	if st := s.Stats(); st.ReportEntries != 0 {
		t.Errorf("orphan counted as an entry: %+v", st)
	}
}

// TestReportStoreUnparseableFileQuarantinedAtOpen: a reports/ file that
// is not an entry at all (no header) must be quarantined during the
// Open scan, not indexed.
func TestReportStoreUnparseableFileQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "reports"), 0o755); err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)
	if err := os.WriteFile(filepath.Join(dir, "reports", key), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if _, ok := s.GetReport(key); ok {
		t.Error("headerless file served")
	}
	if _, err := os.Stat(filepath.Join(dir, "corrupt", key)); err != nil {
		t.Errorf("headerless file not quarantined: %v", err)
	}
	if st := s.Stats(); st.CorruptQuarantined == 0 {
		t.Error("quarantine not counted")
	}
}

func TestReportKeyValidation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "dotted.name", strings.Repeat("k", 200)} {
		if err := s.PutReport(key, "fp", []byte("x")); err == nil {
			t.Errorf("PutReport accepted invalid key %q", key)
		}
		if _, ok := s.GetReport(key); ok {
			t.Errorf("GetReport hit invalid key %q", key)
		}
	}
}

func TestBreakerStatePersistence(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, ok := s.LoadBreaker(); ok {
		t.Fatal("breaker state on a fresh dir")
	}
	state := []byte(`{"entries":{"fp-poison":{"failures":3}}}`)
	if err := s.SaveBreaker(state); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTest(t, dir, Options{})
	got, ok := s2.LoadBreaker()
	if !ok || !bytes.Equal(got, state) {
		t.Fatalf("LoadBreaker = %q, %v", got, ok)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{FsyncPolicy: p, FsyncInterval: 5 * time.Millisecond})
			if err := s.AppendAccept("j00000001", "fp", req("w")); err != nil {
				t.Fatal(err)
			}
			if err := s.PutReport(strings.Repeat("77", 32), "fp", []byte("data")); err != nil {
				t.Fatal(err)
			}
			if p == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the ticker run
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openTest(t, dir, Options{})
			if got := len(s2.Pending()); got != 1 {
				t.Errorf("pending = %d, want 1", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "": FsyncAlways,
		"interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestStoreDeadAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	s.Close()
	if err := s.AppendAccept("j00000001", "fp", req("w")); err == nil {
		t.Error("append on closed store succeeded")
	}
	if err := s.PutReport(strings.Repeat("aa", 32), "fp", []byte("x")); err == nil {
		t.Error("put on closed store succeeded")
	}
}

// TestReduceDuplicateTombstonesAndReaccept pins the replay semantics
// the fuzz target relies on: duplicate tombstones are no-ops, an
// accept after a tombstone re-opens the ID with the latest request,
// and a snapshot forgets everything before it.
func TestReduceDuplicateTombstonesAndReaccept(t *testing.T) {
	recs := []rec{
		{Op: opAccept, ID: "j1", FP: "a", Req: req("one")},
		{Op: opTomb, ID: "j1", Out: "done"},
		{Op: opTomb, ID: "j1", Out: "done"},                // duplicate tombstone
		{Op: opAccept, ID: "j1", FP: "b", Req: req("two")}, // re-accept
		{Op: opAccept, ID: "j2", FP: "c", Req: req("three")},
		{Op: "future-op", ID: "zz"}, // unknown op skipped
	}
	pending, last := reduce(recs)
	if len(pending) != 2 || pending[0].ID != "j1" || pending[1].ID != "j2" {
		t.Fatalf("pending = %+v", pending)
	}
	if pending[0].Fingerprint != "b" {
		t.Errorf("re-accept did not keep the latest request: %+v", pending[0])
	}
	if last != "j2" {
		t.Errorf("lastID = %q", last)
	}

	recs = append(recs, rec{Op: opSnap}, rec{Op: opAccept, ID: "j9", FP: "z", Req: req("after")})
	pending, _ = reduce(recs)
	if len(pending) != 1 || pending[0].ID != "j9" {
		t.Fatalf("pending after snapshot = %+v", pending)
	}
}
