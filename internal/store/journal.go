package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"gpuscout/internal/faultinject"
)

// The write-ahead job journal is a single append-only file of framed
// records. Every accepted async/batch job is appended *before* it is
// enqueued — the acknowledgement the client receives is backed by bytes
// on disk — and every terminal transition (done, failed, cancelled,
// timeout) is appended as a tombstone. On startup a recovery pass
// replays the journal: accepts without a tombstone are the jobs a crash
// interrupted, and the service re-enqueues them.
//
// Frame layout (little-endian):
//
//	[4 bytes payload length][4 bytes IEEE CRC32 of payload][payload]
//
// The payload is one JSON record (see rec). A torn tail — a partial
// frame left by a crash mid-append — is detected by a short header, an
// implausible length, a short payload, or a CRC mismatch; replay stops
// at the last valid frame and the file is truncated there, so the next
// append continues from a clean prefix. Everything after the first bad
// frame is discarded deliberately: a record written after a torn one
// cannot have been acknowledged in order, and resynchronizing inside
// corrupt bytes risks resurrecting garbage as a job.
//
// Compaction: once the log carries compactAfter more records than live
// jobs, it is rewritten as one snapshot marker followed by an accept
// per still-pending job (temp file + fsync + rename, the same
// atomicity discipline as report entries). A "snap" record therefore
// means "forget everything replayed so far" — replay handles snapshots
// at any position, not only record zero, so a journal produced by a
// crashed compaction glued to an older log still replays sanely.

// journal kill sites for the restart chaos suite. Each one models the
// process dying at a specific point of the write path: mid-append
// (torn frame on disk), before a tombstone lands (job re-runs on
// restart), and between a compacted journal's temp write and its
// rename (old journal must stay authoritative).
var (
	siteJournalAppend    = faultinject.Register("store.journal.append")
	siteJournalTombstone = faultinject.Register("store.journal.tombstone")
	siteCompactRename    = faultinject.Register("store.compact.rename")
)

// recMaxBytes bounds one frame's payload: the largest legitimate record
// is an accept carrying a full AnalyzeRequest (upload bodies are capped
// at 8 MiB by the service, base64-inflated in JSON). Anything larger in
// the length field is torn or hostile bytes, not a record.
const recMaxBytes = 64 << 20

// Journal record operations.
const (
	opAccept = "accept" // job acknowledged: id, fp, req
	opTomb   = "tomb"   // job reached a terminal state: id, out
	opSnap   = "snap"   // compaction marker: forget all prior records
)

// rec is the JSON payload of one journal frame.
type rec struct {
	Op string `json:"op"`
	// ID is the job handle ("j00000007"); accept and tomb records.
	ID string `json:"id,omitempty"`
	// FP is the input fingerprint (accept records) — the identity the
	// report store and cluster routing key on.
	FP string `json:"fp,omitempty"`
	// Out is the terminal state a tombstone records ("done", "failed",
	// "cancelled", "timeout").
	Out string `json:"out,omitempty"`
	// Req is the marshaled AnalyzeRequest (accept records), replayed
	// verbatim into a re-enqueued job.
	Req json.RawMessage `json:"req,omitempty"`
	// T is the record's wall-clock time (unix nanoseconds), for
	// operators reading journals; replay ignores it.
	T int64 `json:"t,omitempty"`
}

// PendingJob is one journal accept without a matching tombstone: a job
// the daemon acknowledged but never finished. Recovery re-enqueues it.
type PendingJob struct {
	ID          string
	Fingerprint string
	Req         json.RawMessage
}

// encodeFrame wraps one payload in the length+CRC frame.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// replayJournal decodes frames from data until the first torn or
// corrupt one. It returns the decoded records and the byte length of
// the valid prefix (the offset appends must resume from).
func replayJournal(data []byte) (recs []rec, validLen int64) {
	off := 0
	for {
		if len(data)-off < 8 {
			return recs, int64(off) // short header: torn tail
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > recMaxBytes || int(n) > len(data)-off-8 {
			return recs, int64(off) // implausible length or short payload
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, int64(off) // flipped bytes: stop, do not resync
		}
		var r rec
		if err := json.Unmarshal(payload, &r); err != nil {
			// A frame that passes its CRC but is not a record means a
			// writer bug or deliberate corruption with a fixed-up CRC;
			// treat like a torn tail — conservative, never guess.
			return recs, int64(off)
		}
		recs = append(recs, r)
		off += 8 + int(n)
	}
}

// reduce folds a replayed record sequence into the live-job state:
// pending jobs in acknowledgement order, plus the highest job ID ever
// seen (so a restarted daemon resumes its ID sequence past every
// handle a client may still hold). Duplicate accepts keep the latest
// request bytes; duplicate tombstones are harmless; an accept after a
// tombstone re-opens the job (the only way that sequence is written is
// an ID reused after the journal recorded its predecessor's end).
func reduce(recs []rec) (pending []PendingJob, lastID string) {
	live := map[string]PendingJob{}
	var order []string
	for _, r := range recs {
		switch r.Op {
		case opAccept:
			if r.ID == "" {
				continue
			}
			if r.ID > lastID {
				lastID = r.ID
			}
			if _, ok := live[r.ID]; !ok {
				order = append(order, r.ID)
			}
			live[r.ID] = PendingJob{ID: r.ID, Fingerprint: r.FP, Req: r.Req}
		case opTomb:
			if r.ID > lastID {
				lastID = r.ID
			}
			delete(live, r.ID)
		case opSnap:
			// Compaction marker: everything before it is superseded.
			live = map[string]PendingJob{}
			order = nil
		default:
			// Unknown op from a newer version: skip the record, keep the
			// rest of the journal.
		}
	}
	seen := map[string]bool{}
	for _, id := range order {
		if p, ok := live[id]; ok && !seen[id] {
			seen[id] = true
			pending = append(pending, p)
		}
	}
	return pending, lastID
}

// appendRecord frames and writes one record, honoring the fsync policy
// and the mid-append kill site. The write is deliberately split in two
// so an injected crash leaves a genuinely torn frame on disk — the
// exact artifact a real mid-append power cut produces.
func (s *Store) appendRecordLocked(r rec) error {
	if s.dead {
		return ErrDead
	}
	r.T = time.Now().UnixNano()
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: encode journal record: %w", err)
	}
	frame := encodeFrame(payload)
	half := len(frame) / 2
	if _, err := s.journalF.Write(frame[:half]); err != nil {
		s.dead = true
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := faultinject.Hit(siteJournalAppend); err != nil {
		// Crash point: the first half of the frame is on disk, the rest
		// never lands. Fail-stop — the store behaves like the process
		// died here.
		s.dead = true
		return fmt.Errorf("store: journal append: %w", err)
	}
	if _, err := s.journalF.Write(frame[half:]); err != nil {
		s.dead = true
		return fmt.Errorf("store: journal append: %w", err)
	}
	s.journalLen += int64(len(frame))
	s.records++
	if s.opts.FsyncPolicy == FsyncAlways {
		if err := s.journalF.Sync(); err != nil {
			s.dead = true
			return fmt.Errorf("store: journal fsync: %w", err)
		}
	}
	return nil
}

// AppendAccept journals one acknowledged job before it is enqueued.
// The service must not acknowledge the job to the client until this
// returns nil: the write-ahead property is exactly that ordering.
func (s *Store) AppendAccept(id, fingerprint string, req json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendRecordLocked(rec{Op: opAccept, ID: id, FP: fingerprint, Req: req}); err != nil {
		return err
	}
	if _, ok := s.pending[id]; !ok {
		s.pendingOrder = append(s.pendingOrder, id)
	}
	s.pending[id] = PendingJob{ID: id, Fingerprint: fingerprint, Req: req}
	if id > s.lastJobID {
		s.lastJobID = id
	}
	return s.maybeCompactLocked()
}

// AppendTombstone journals a job's terminal state. A missing tombstone
// is never an error for correctness — the job just re-runs on restart
// and dedupes against the report store — but it is what keeps the
// journal from re-enqueueing finished work.
func (s *Store) AppendTombstone(id, outcome string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrDead
	}
	if err := faultinject.Hit(siteJournalTombstone); err != nil {
		// Crash point: the job finished but its tombstone never landed —
		// the restart must re-enqueue it and converge via the report
		// store instead of re-simulating blindly.
		s.dead = true
		return fmt.Errorf("store: journal tombstone: %w", err)
	}
	if err := s.appendRecordLocked(rec{Op: opTomb, ID: id, Out: outcome}); err != nil {
		return err
	}
	if _, ok := s.pending[id]; ok {
		delete(s.pending, id)
	}
	return s.maybeCompactLocked()
}

// maybeCompactLocked rewrites the journal once the log carries
// compactAfter more records than live jobs: the snapshot is one snap
// marker plus an accept per pending job, written to a temp file and
// renamed over the journal so a crash at any point leaves exactly one
// valid journal on disk.
func (s *Store) maybeCompactLocked() error {
	live := len(s.pending)
	if s.records-live < s.opts.CompactAfter {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.dead {
		return ErrDead
	}
	tmpPath := filepath.Join(s.dir, "journal.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	now := time.Now().UnixNano()
	write := func(r rec) error {
		payload, err := json.Marshal(r)
		if err != nil {
			return err
		}
		_, err = tmp.Write(encodeFrame(payload))
		return err
	}
	var newLen int64
	records := 1
	err = write(rec{Op: opSnap, T: now})
	if err == nil {
		for _, id := range s.pendingOrder {
			p, ok := s.pending[id]
			if !ok {
				continue
			}
			if err = write(rec{Op: opAccept, ID: p.ID, FP: p.Fingerprint, Req: p.Req, T: now}); err != nil {
				break
			}
			records++
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err == nil {
		newLen, err = tmp.Seek(0, io.SeekEnd)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := faultinject.Hit(siteCompactRename); err != nil {
		// Crash point: the compacted journal exists only as journal.tmp.
		// The rename never happens, so the old journal stays
		// authoritative; Open removes the orphan temp file.
		s.dead = true
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, s.journalPath); err != nil {
		s.dead = true
		return fmt.Errorf("store: compact rename: %w", err)
	}
	// Swap the append handle onto the new file. The old handle still
	// points at the unlinked inode; close it after the new one is live.
	f, err := os.OpenFile(s.journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.dead = true
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	old := s.journalF
	s.journalF = f
	old.Close()
	s.syncDir()
	s.journalLen = newLen
	s.records = records
	// Rebuild pendingOrder without tombstoned gaps while we hold the
	// lock anyway — it only ever grows between compactions.
	order := s.pendingOrder[:0]
	for _, id := range s.pendingOrder {
		if _, ok := s.pending[id]; ok {
			order = append(order, id)
		}
	}
	s.pendingOrder = order
	s.lastCompaction = time.Now()
	s.compactions++
	return nil
}

// Compact forces a journal snapshot+compaction regardless of lag.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Pending returns the journal's live jobs — accepts without tombstones
// — in acknowledgement order. The slice is the recovery worklist; it
// reflects the journal as replayed at Open plus appends since.
func (s *Store) Pending() []PendingJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PendingJob, 0, len(s.pending))
	for _, id := range s.pendingOrder {
		if p, ok := s.pending[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// LastJobID returns the highest job ID the journal has ever recorded
// (lexicographic — job IDs are fixed-width), so a restarted daemon can
// resume its ID sequence without colliding with handles clients still
// hold. Empty when the journal has never seen a job.
func (s *Store) LastJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastJobID
}
