//go:build faultinject

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscout/internal/faultinject"
)

// These tests kill the store at each registered crash point and assert
// the recovery invariants directly at the store layer: a crash
// mid-mutation never corrupts the directory, never loses an
// acknowledged job, and never resurrects an unacknowledged one. The
// service-level suite (internal/service) layers the same kill sites
// under a running daemon.

func armError(t *testing.T, site string) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if _, err := faultinject.Arm(faultinject.Fault{Site: site, Mode: faultinject.ModeError, Times: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosMidAppend kills the store between the two halves of a frame
// write: the journal holds genuinely torn bytes. The job was never
// acknowledged (AppendAccept errored), so recovery must not resurrect
// it — and must truncate the torn tail so the journal stays usable.
func TestChaosMidAppend(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.AppendAccept("j00000001", "fp-acked", req("acked")); err != nil {
		t.Fatal(err)
	}

	armError(t, "store.journal.append")
	err := s.AppendAccept("j00000002", "fp-torn", req("torn"))
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append survived the injected crash: %v", err)
	}
	// Fail-stop: every later operation refuses.
	if err := s.AppendAccept("j00000003", "fp-x", req("x")); !errors.Is(err, ErrDead) {
		t.Fatalf("dead store accepted an append: %v", err)
	}
	s.Close()

	// The torn frame is really on disk — half a frame past the valid end.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	_, validLen := replayJournal(raw)
	if validLen >= int64(len(raw)) {
		t.Fatalf("no torn bytes on disk: validLen %d, file %d", validLen, len(raw))
	}

	// Restart: the acknowledged job survives, the torn one does not.
	s2 := openTest(t, dir, Options{})
	if st := s2.Stats(); !st.RecoveredTorn {
		t.Error("torn tail not reported after restart")
	}
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != "j00000001" {
		t.Fatalf("pending after crash = %+v, want only the acknowledged job", pending)
	}
	// The journal accepts appends again and they survive another restart.
	if err := s2.AppendAccept("j00000004", "fp-after", req("after")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir, Options{})
	if got := len(s3.Pending()); got != 2 {
		t.Fatalf("second restart sees %d pending, want 2", got)
	}
}

// TestChaosMidTombstone kills the store before a finished job's
// tombstone lands: restart must re-list the job as pending (it re-runs
// and converges through the report store — never silently dropped).
func TestChaosMidTombstone(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.AppendAccept("j00000001", "fp-a", req("a")); err != nil {
		t.Fatal(err)
	}
	armError(t, "store.journal.tombstone")
	if err := s.AppendTombstone("j00000001", "done"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("tombstone survived the injected crash: %v", err)
	}
	s.Close()

	s2 := openTest(t, dir, Options{})
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != "j00000001" {
		t.Fatalf("pending = %+v, want the un-tombstoned job back", pending)
	}
	// This time the tombstone lands; the journal converges.
	if err := s2.AppendTombstone("j00000001", "done"); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Pending()); got != 0 {
		t.Fatalf("pending after successful tombstone = %d, want 0", got)
	}
}

// TestChaosMidReportRename kills the store between a report entry's
// temp-file write and its rename: the entry must read as a clean miss
// after restart (self-heal by recompute), with no temp-file debris and
// no partial bytes ever served.
func TestChaosMidReportRename(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	key := strings.Repeat("ab", 32)
	armError(t, "store.report.rename")
	if err := s.PutReport(key, "fp-1", []byte("report body")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("put survived the injected crash: %v", err)
	}
	s.Close()

	s2 := openTest(t, dir, Options{})
	if _, ok := s2.GetReport(key); ok {
		t.Fatal("half-written report served after restart")
	}
	// Open removed the orphaned temp file.
	des, err := os.ReadDir(filepath.Join(dir, "reports"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Fatalf("orphan temp file %s survived restart", de.Name())
		}
	}
	// Recompute path: the next put lands and round-trips.
	want := []byte("recomputed body")
	if err := s2.PutReport(key, "fp-1", want); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetReport(key); !ok || !bytes.Equal(got, want) {
		t.Fatalf("self-heal put: got %q, %v", got, ok)
	}
}

// TestChaosMidCompactRename kills the store between the compacted
// journal's temp write and its rename: the old journal must stay
// authoritative and the next Open must discard journal.tmp.
func TestChaosMidCompactRename(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{CompactAfter: 4})
	if err := s.AppendAccept("j00000001", "fp-live", req("live")); err != nil {
		t.Fatal(err)
	}
	armError(t, "store.compact.rename")
	// Churn until the compaction trips and hits the armed site.
	var crashed bool
	for i := 10; i < 30 && !crashed; i++ {
		id := fmt.Sprintf("j%08d", i)
		if err := s.AppendAccept(id, "fp-churn", req("churn")); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("append %s: %v", id, err)
			}
			crashed = true
			break
		}
		if err := s.AppendTombstone(id, "done"); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("tombstone %s: %v", id, err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("compaction never tripped the armed rename site")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.tmp")); err != nil {
		t.Fatalf("crashed compaction left no journal.tmp: %v", err)
	}
	s.Close()

	// Restart: the uncompacted journal is authoritative, the temp file
	// is swept, and the live set is exactly what was acknowledged.
	s2 := openTest(t, dir, Options{CompactAfter: 4})
	if _, err := os.Stat(filepath.Join(dir, "journal.tmp")); !os.IsNotExist(err) {
		t.Fatal("journal.tmp survived restart")
	}
	pending := s2.Pending()
	ids := map[string]bool{}
	for _, p := range pending {
		ids[p.ID] = true
	}
	if !ids["j00000001"] {
		t.Fatalf("long-lived job lost across crashed compaction: %+v", pending)
	}
	// A clean compaction now succeeds and preserves the same live set.
	faultinject.Reset()
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s2.Pending()
	if len(after) != len(pending) {
		t.Fatalf("compaction changed the live set: %d -> %d", len(pending), len(after))
	}
	s2.Close()
	s3 := openTest(t, dir, Options{})
	if got := len(s3.Pending()); got != len(pending) {
		t.Fatalf("post-compaction restart sees %d pending, want %d", got, len(pending))
	}
}
