package scout

import (
	"fmt"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// BankConflictAnalysis is an added detector (the paper's §7 notes that
// "more SASS analyses can be added very easily" thanks to the modular
// design — this is one). It statically predicts shared-memory bank
// conflicts: a shared access whose address is threadIdx.x times a
// multiple of 128 bytes (32 banks x 4 B) maps every lane of a warp to the
// same bank — the classic unpadded-tile column read, fully serialized
// 32 ways. The §4.3 transactions/accesses metric confirms the prediction
// at runtime.
type BankConflictAnalysis struct {
	// Banks is the bank count (default 32).
	Banks int
}

// Name implements Analysis.
func (BankConflictAnalysis) Name() string { return "bank_conflicts" }

// Detect implements Analysis.
func (a BankConflictAnalysis) Detect(v *KernelView) []Finding {
	banks := a.Banks
	if banks <= 0 {
		banks = 32
	}
	rowBytes := int64(banks * 4)
	k := v.Kernel

	var sites []Site
	inLoop := false
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDS && in.Op != sass.OpSTS {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok || mem.Reg == sass.RZ {
			continue
		}
		stride, lane := a.laneStride(v, mem.Reg, i)
		if !lane || stride <= 0 || stride%rowBytes != 0 {
			continue
		}
		ways := banks
		note := fmt.Sprintf(
			"shared address = threadIdx.x * %d bytes: every lane maps to the same bank (predicted %d-way conflict)",
			stride, ways)
		if v.CFG.InLoop(i) {
			inLoop = true
			note += "; inside a for-loop"
		}
		sites = append(sites, v.site(i, note))
	}
	if len(sites) == 0 {
		return nil
	}
	f := Finding{
		Analysis: "bank_conflicts",
		Title:    "Shared-memory bank conflicts predicted",
		Problem: fmt.Sprintf(
			"%d shared-memory access(es) stride threadIdx.x by a multiple of %d bytes, so all 32 lanes of a warp hit one bank and serialize",
			len(sites), rowBytes),
		Recommendation: "pad the shared array's row pitch (e.g. [32][33] instead of [32][32]) or swizzle the indexing so consecutive lanes touch consecutive banks",
		Sites:          sites,
		InLoop:         inLoop,
		RelevantStalls: []sim.Stall{sim.StallShortScoreboard, sim.StallMIOThrottle},
		RelevantMetrics: []string{
			// The §4.3 ratio: transactions / accesses.
			"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
			"smsp__inst_executed_op_shared_ld.sum",
			"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
			"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
		},
	}
	return []Finding{f}
}

// laneStride inspects the reaching definition of a shared-address
// register. When it is an IMAD of threadIdx.x (directly off S2R
// SR_TID.X) by an immediate, it returns that byte stride.
func (a BankConflictAnalysis) laneStride(v *KernelView, base sass.Reg, at int) (stride int64, laneVarying bool) {
	def := v.DefUse.LastDefBefore(base, at)
	if def < 0 {
		return 0, false
	}
	in := &v.Kernel.Insts[def]
	if in.Op != sass.OpIMAD || in.HasMod("WIDE") || len(in.Src) < 2 {
		return 0, false
	}
	// Find the immediate multiplier and the register factor.
	var imm int64
	var reg sass.Reg = sass.RZ
	hasImm := false
	for _, o := range in.Src[:2] {
		switch o.Kind {
		case sass.OpdImm:
			imm, hasImm = o.Imm, true
		case sass.OpdReg:
			reg = o.Reg
		}
	}
	if !hasImm || reg == sass.RZ {
		return 0, false
	}
	// The register factor must be threadIdx.x itself (one hop to S2R).
	rdef := v.DefUse.LastDefBefore(reg, def)
	if rdef < 0 {
		return 0, false
	}
	src := &v.Kernel.Insts[rdef]
	if src.Op != sass.OpS2R || len(src.Src) == 0 ||
		src.Src[0].Kind != sass.OpdSpecial || src.Src[0].Special != sass.SRTidX {
		return 0, false
	}
	return imm, true
}
