package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// VectorLoadAnalysis implements §4.1 / Fig. 3: find groups of narrow
// (32-bit) global loads from the same base register at adjacent offsets
// and recommend vectorized LDG.E.{64,128} accesses.
type VectorLoadAnalysis struct{}

// Name implements Analysis.
func (VectorLoadAnalysis) Name() string { return "vectorized_load" }

// loadGroup keys loads by (base register, reaching definition of base):
// loads only combine if the base holds the same value.
type loadGroup struct {
	base    sass.Reg
	baseDef int
	idxs    []int // instruction indices
	offs    []int64
}

// Detect implements Analysis.
func (VectorLoadAnalysis) Detect(v *KernelView) []Finding {
	k := v.Kernel
	groups := map[[2]int64]*loadGroup{}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDG || in.IsVectorized() || in.WidthBytes() != 4 {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok {
			continue
		}
		key := [2]int64{int64(mem.Reg), int64(v.DefUse.LastDefBefore(mem.Reg, i))}
		g := groups[key]
		if g == nil {
			g = &loadGroup{base: mem.Reg, baseDef: int(key[1])}
			groups[key] = g
		}
		g.idxs = append(g.idxs, i)
		g.offs = append(g.offs, mem.Imm)
	}

	var findings []Finding
	keys := make([][2]int64, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		g := groups[key]
		run := longestAdjacentRun(g.offs)
		if run < 2 {
			continue
		}
		width := "64-bit (2 elements)"
		if run >= 4 {
			width = "128-bit (4 elements)"
		}
		f := Finding{
			Analysis: "vectorized_load",
			Title:    "Use vectorized global loads",
			Problem: fmt.Sprintf(
				"%d non-vectorized 32-bit global loads (LDG.E) read adjacent addresses off base register %s; each costs one instruction and one memory transaction",
				len(g.idxs), g.base),
			Recommendation: fmt.Sprintf(
				"combine adjacent loads into %s vectorized accesses (e.g. reinterpret_cast<float4*>), reducing the number of load instructions executed", width),
			RelevantStalls: []sim.Stall{sim.StallLongScoreboard, sim.StallLGThrottle},
			RelevantMetrics: []string{
				"smsp__inst_executed_op_global_ld.sum",
				"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
				"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
			},
			CautionMetrics: []string{
				"launch__registers_per_thread",
				"sm__warps_active.avg.pct_of_peak_sustained_active",
			},
		}
		inLoop := false
		for n, i := range g.idxs {
			note := fmt.Sprintf("offset %+d from [%s]; +%d registers live here",
				g.offs[n], g.base, v.Liveness.ExtraRegs(i))
			if v.CFG.InLoop(i) {
				inLoop = true
				note += "; inside a for-loop"
			}
			f.Sites = append(f.Sites, v.site(i, note))
		}
		f.InLoop = inLoop
		findings = append(findings, f)
	}
	return findings
}

// longestAdjacentRun returns the length of the longest run of offsets
// spaced exactly 4 bytes apart.
func longestAdjacentRun(offs []int64) int {
	s := append([]int64(nil), offs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	best, cur := 1, 1
	for i := 1; i < len(s); i++ {
		switch s[i] - s[i-1] {
		case 4:
			cur++
		case 0:
			continue
		default:
			cur = 1
		}
		if cur > best {
			best = cur
		}
	}
	if len(s) == 0 {
		return 0
	}
	return best
}
