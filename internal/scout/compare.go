package scout

import (
	"fmt"
	"sort"
	"strings"

	"gpuscout/internal/ncu"
)

// Comparison is the "Metrics Comparison" view the paper sketches as
// future work (Fig. 7): after the user modifies the kernel, GPUscout
// shows how each watched metric rose or fell versus the previous run.
type Comparison struct {
	KernelOld, KernelNew string
	Rows                 []ComparisonRow
	// SpeedupX is old duration / new duration.
	SpeedupX float64
}

// ComparisonRow is one metric's old-vs-new pair.
type ComparisonRow struct {
	Metric   string
	Unit     string
	Old, New float64
}

// Delta returns the relative change in percent (new vs old).
func (r ComparisonRow) Delta() float64 {
	if r.Old == 0 {
		if r.New == 0 {
			return 0
		}
		return 100
	}
	return 100 * (r.New - r.Old) / r.Old
}

// Compare builds the old-vs-new metric comparison across two reports
// (typically: before and after applying a recommendation). Only metrics
// present in both reports are compared.
func Compare(oldRep, newRep *Report) (*Comparison, error) {
	if oldRep.Metrics == nil || newRep.Metrics == nil {
		return nil, fmt.Errorf("scout: comparison requires non-dry-run reports")
	}
	c := &Comparison{KernelOld: oldRep.Kernel, KernelNew: newRep.Kernel}
	var names []string
	for n := range oldRep.Metrics.Values {
		if _, ok := newRep.Metrics.Get(n); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		unit := ""
		if m, ok := ncu.Lookup(n); ok {
			unit = m.Unit
		}
		c.Rows = append(c.Rows, ComparisonRow{
			Metric: n,
			Unit:   unit,
			Old:    oldRep.Metrics.Values[n],
			New:    newRep.Metrics.Values[n],
		})
	}
	if oldC, newC := oldRep.KernelCycles, newRep.KernelCycles; oldC > 0 && newC > 0 {
		c.SpeedupX = oldC / newC
	}
	return c, nil
}

// Render prints the comparison as a table with rise/fall arrows.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Metrics comparison: %s (old) vs %s (new)\n", c.KernelOld, c.KernelNew)
	if c.SpeedupX > 0 {
		fmt.Fprintf(&b, "Kernel duration change: %.2fx %s\n", c.SpeedupX, speedWord(c.SpeedupX))
	}
	fmt.Fprintf(&b, "%-58s %14s %14s %9s\n", "metric", "old", "new", "delta")
	for _, r := range c.Rows {
		arrow := "  "
		switch {
		case r.New > r.Old*1.0001:
			arrow = "^ "
		case r.New < r.Old*0.9999:
			arrow = "v "
		}
		fmt.Fprintf(&b, "%-58s %14.6g %14.6g %s%+7.1f%%\n", r.Metric, r.Old, r.New, arrow, r.Delta())
	}
	return b.String()
}

func speedWord(x float64) string {
	if x >= 1 {
		return "faster"
	}
	return "slower"
}
