package scout

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	_ "gpuscout/internal/cubin" // registers cubin.decode for TestDetectorSitesRegistered
	"gpuscout/internal/faultinject"
)

func TestGuardPassesThroughSuccess(t *testing.T) {
	if err := Guard(StageScout, "x", func() error { return nil }); err != nil {
		t.Fatalf("Guard on success: %v", err)
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard(StageScout, "scout.detector.demo", func() error {
		panic("boom")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("Guard returned %T, want *StageError", err)
	}
	if se.Stage != StageScout || se.Site != "scout.detector.demo" {
		t.Errorf("attribution = %s/%s", se.Stage, se.Site)
	}
	if se.PanicValue != "boom" {
		t.Errorf("PanicValue = %v", se.PanicValue)
	}
	if len(se.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(se.Error(), "panic at scout.detector.demo: boom") {
		t.Errorf("Error() = %q", se.Error())
	}
	if !se.Transient() {
		t.Error("a real panic should be transient")
	}
}

func TestGuardReattributesInjectedPanic(t *testing.T) {
	err := Guard(StageSim, "outer.site", func() error {
		panic(&faultinject.InjectedPanic{Site: "inner.site"})
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("Guard returned %T", err)
	}
	if se.Site != "inner.site" {
		t.Errorf("Site = %s, want the injected fault's own site", se.Site)
	}
}

func TestGuardWrapsPlainError(t *testing.T) {
	inner := errors.New("bad input")
	err := Guard(StageParse, "cubin.decode", func() error { return inner })
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("Guard returned %T", err)
	}
	if se.Site != "cubin.decode" || !errors.Is(err, inner) {
		t.Errorf("wrap lost site or cause: %v", err)
	}
	if se.Transient() {
		t.Error("a deterministic input error must not be transient")
	}

	// An error that is already a StageError keeps its original attribution.
	err2 := Guard(StageScout, "outer", func() error { return se })
	var se2 *StageError
	if !errors.As(err2, &se2) || se2.Site != "cubin.decode" {
		t.Errorf("double-wrap changed attribution: %v", err2)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("x"), false},
		{"plain stage error", &StageError{Stage: StageSim, Site: "s", Err: errors.New("x")}, false},
		{"panic", &StageError{Stage: StageSim, Site: "s", Err: errors.New("panic: x"), PanicValue: "x"}, true},
		{"panic caused by cancel", &StageError{Stage: StageSim, Site: "s", Err: fmt.Errorf("panic: %w", context.Canceled), PanicValue: context.Canceled}, false},
		{"injected fault", &StageError{Stage: StageSim, Site: "s", Err: fmt.Errorf("faultinject: %w", faultinject.ErrInjected)}, true},
		{"deadline", &StageError{Stage: StageSim, Site: "s", Err: context.DeadlineExceeded}, false},
		{"wrapped transient", fmt.Errorf("job: %w", &StageError{Stage: StageSim, Site: "s", Err: errors.New("p"), PanicValue: "p"}), true},
	}
	for _, tc := range cases {
		if got := TransientError(tc.err); got != tc.want {
			t.Errorf("%s: TransientError = %t, want %t", tc.name, got, tc.want)
		}
	}
}

func TestDegradationFor(t *testing.T) {
	se := &StageError{Stage: StageScout, Site: "scout.detector.x", Err: errors.New("p"), PanicValue: "p"}
	d := DegradationFor(StageScout, "fallback.site", se, false)
	if d.Kind != DegradePanic || d.Site != "scout.detector.x" {
		t.Errorf("panic entry = %+v", d)
	}
	// Panic classification wins even if the stage deadline also expired.
	d = DegradationFor(StageScout, "fallback.site", se, true)
	if d.Kind != DegradePanic {
		t.Errorf("panic+expired entry = %+v", d)
	}
	d = DegradationFor(StageSim, "sim.launch", context.DeadlineExceeded, false)
	if d.Kind != DegradeTimeout {
		t.Errorf("deadline entry = %+v", d)
	}
	d = DegradationFor(StageSim, "sim.launch", errors.New("broke"), true)
	if d.Kind != DegradeTimeout {
		t.Errorf("expired-slice entry = %+v", d)
	}
	d = DegradationFor(StageSim, "sim.launch", errors.New("broke"), false)
	if d.Kind != DegradeError || d.Detail != "broke" {
		t.Errorf("plain entry = %+v", d)
	}
}

func TestParseStageBudgets(t *testing.T) {
	cases := []struct {
		in      string
		want    string // expected String() of the parsed value
		wantErr bool
	}{
		{"", DefaultStageBudgets().String(), false},
		{"off", "off", false},
		{"none", "off", false},
		{"disabled", "off", false},
		{"5,55,15,25", "5,55,15,25", false},
		{" 5, 55 ,15,25 ", "5,55,15,25", false},
		{"0.05,0.55,0.15,0.25", "5,55,15,25", false}, // only the ratio matters
		{"1,1,1,1", "25,25,25,25", false},
		{"10,55,15", "", true},      // three weights
		{"10,55,15,25,5", "", true}, // five weights
		{"10,nope,15,25", "", true}, // not a number
		{"10,-55,15,25", "", true},  // negative
		{"0,0,0,0", "", true},       // all zero
	}
	for _, tc := range cases {
		b, err := ParseStageBudgets(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseStageBudgets(%q) = %v, want error", tc.in, b)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStageBudgets(%q): %v", tc.in, err)
			continue
		}
		if got := b.String(); got != tc.want {
			t.Errorf("ParseStageBudgets(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStageBudgetSlices(t *testing.T) {
	b := DefaultStageBudgets()
	total := 1000 * time.Millisecond
	if got := b.SliceOf(StageSim, total); got != 550*time.Millisecond {
		t.Errorf("sim slice = %v, want 550ms", got)
	}
	if got := b.SliceOf(StageVerify, total); got != 250*time.Millisecond {
		t.Errorf("verify slice = %v, want 250ms", got)
	}
	if got := (StageBudgets{Disabled: true}).SliceOf(StageSim, total); got != 0 {
		t.Errorf("disabled slice = %v, want 0", got)
	}
	if got := b.SliceOf("bogus", total); got != 0 {
		t.Errorf("unknown-stage slice = %v, want 0", got)
	}
	// The zero value behaves as the defaults.
	if got := (StageBudgets{}).SliceOf(StageSim, total); got != 550*time.Millisecond {
		t.Errorf("zero-value sim slice = %v, want 550ms", got)
	}
	// Weights rescale: sim gets everything when the others are zero.
	if got := (StageBudgets{Sim: 3}).SliceOf(StageSim, total); got != total {
		t.Errorf("sim-only slice = %v, want %v", got, total)
	}
}

func TestDetectorSitesRegistered(t *testing.T) {
	sites := faultinject.Sites()
	have := make(map[string]bool, len(sites))
	for _, s := range sites {
		have[s] = true
	}
	for _, a := range AllAnalyses() {
		if site := DetectorSite(a.Name()); !have[site] {
			t.Errorf("detector site %s not registered", site)
		}
	}
	for _, s := range []string{"scout.parse", "scout.correlate", "sim.launch", "cupti.collect", "ncu.collect", "cubin.decode"} {
		if !have[s] {
			t.Errorf("site %s not registered", s)
		}
	}
}
