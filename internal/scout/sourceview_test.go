package scout

import (
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func TestSourceView(t *testing.T) {
	rep := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	view := rep.SourceView()
	for _, want := range []string{
		"Source/SASS view",
		"tmps[j] = g_data[gid * GRANULARITY + j];", // quoted source
		"LDG.E.SYS",                                // SASS under the line
		"findings: vectorized_load",                // margin marker
		"#",                                        // heat bar
	} {
		if !strings.Contains(view, want) {
			t.Errorf("source view missing %q\n%s", want, view)
		}
	}
	// Every attributed source line appears with its number.
	for _, line := range []string{"   5 ", "   7 ", "  13 "} {
		if !strings.Contains(view, line) {
			t.Errorf("source view missing line marker %q", line)
		}
	}
}

func TestSourceViewDryRun(t *testing.T) {
	// Without dynamic data the view still renders source + SASS.
	rep := analyzeWorkload(t, "jacobi_naive", 128, Options{DryRun: true})
	view := rep.SourceView()
	if !strings.Contains(view, "jacobi_step") && !strings.Contains(view, "LDG") {
		t.Errorf("dry-run source view broken:\n%s", view)
	}
	if strings.Contains(view, "%") && strings.Contains(view, "<-") {
		t.Error("dry-run view shows stall data it cannot have")
	}
}

func TestHottestLines(t *testing.T) {
	rep := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	hot := rep.HottestLines(3)
	if len(hot) == 0 {
		t.Fatal("no hottest lines")
	}
	if len(hot) > 3 {
		t.Fatalf("limit ignored: %d entries", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Samples > hot[i-1].Samples {
			t.Error("hottest lines not sorted")
		}
	}
	// The memory-bound loop body must top the profile (lines 7/8).
	if top := hot[0].Line; top != 7 && top != 8 {
		t.Errorf("hottest line = %d, want the loop body (7 or 8)", top)
	}
	var totalShare float64
	for _, h := range hot {
		totalShare += h.Share
		if h.Source == "" {
			t.Errorf("line %d lacks source text", h.Line)
		}
	}
	if totalShare <= 0 || totalShare > 1.0001 {
		t.Errorf("shares out of range: %v", totalShare)
	}
	// Dry runs have no heat data.
	dry := analyzeWorkload(t, "mixbench_sp_naive", 4, Options{DryRun: true})
	if dry.HottestLines(3) != nil {
		t.Error("dry run returned heat data")
	}
}
