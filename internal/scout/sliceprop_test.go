package scout_test

import (
	"context"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// slicePropScale mirrors the differential suite's small problem sizes so
// the all-workload sweep stays fast while still producing stall samples.
func slicePropScale(name string) int {
	switch name {
	case "mixbench_sp_naive", "mixbench_sp_vec4", "mixbench_dp_naive",
		"mixbench_dp_vec4", "mixbench_int_naive", "mixbench_int_vec4":
		return 4
	case "jacobi_naive", "jacobi_texture", "jacobi_restrict", "jacobi_shared":
		return 128
	case "sgemm_naive", "sgemm_shared", "sgemm_shared_vec":
		return 64
	case "transpose_naive", "transpose_shared", "transpose_padded":
		return 64
	case "spill_pressure", "histogram_global", "histogram_shared":
		return 4
	}
	return 0
}

// TestSliceSoundnessAllWorkloads fuzzes the backward-slicing soundness
// property over every registered workload: each instruction in a reported
// stall slice must lie on a def-use path to the slice's stalled root.
// The check recomputes reachability independently of the walker, with
// permissive edges — from any instruction, every definition of each
// source register counts as reachable (the walker commits to one reaching
// definition; the closure accepts any, including loop-carried ones) — so
// an unsound step fails the test without the test hard-coding the
// walker's tie-breaks.
func TestSliceSoundnessAllWorkloads(t *testing.T) {
	arch := gpu.V100()
	cfg := sim.Config{SampleSMs: 1}
	slices := 0
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.BuildArch(name, slicePropScale(name), arch)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			run := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
				return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), c)
			}
			rep, err := scout.AnalyzeContext(context.Background(), arch, w.Kernel, run,
				scout.Options{Sim: cfg, StallSlices: true})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			du := sass.ComputeDefUse(w.Kernel)
			for i := range rep.Findings {
				for _, sl := range rep.Findings[i].StallSlices {
					slices++
					checkSliceSound(t, w.Kernel, du, sl)
				}
			}
		})
	}
	if slices == 0 {
		t.Error("no workload produced a stall slice; the property was never exercised")
	}
}

// checkSliceSound verifies one slice against the independent closure.
func checkSliceSound(t *testing.T, k *sass.Kernel, du *sass.DefUse, sl scout.StallSlice) {
	t.Helper()
	root := -1
	for _, st := range sl.Steps {
		if st.Depth != 0 {
			continue
		}
		if root >= 0 {
			t.Errorf("slice at pc %#x has multiple depth-0 roots", sl.PC)
		}
		if st.PC != sl.PC {
			t.Errorf("slice root pc %#x != slice pc %#x", st.PC, sl.PC)
		}
		root = int(st.PC / sass.InstBytes)
	}
	if root < 0 {
		t.Errorf("slice at pc %#x lost its depth-0 root", sl.PC)
		return
	}
	if len(sl.Steps) > 8 {
		t.Errorf("slice at pc %#x has %d steps, exceeding the size bound", sl.PC, len(sl.Steps))
	}
	reach := backwardReachable(k, du, root)
	for _, st := range sl.Steps {
		idx := int(st.PC / sass.InstBytes)
		if idx < 0 || idx >= len(k.Insts) {
			t.Errorf("slice step pc %#x outside the kernel", st.PC)
			continue
		}
		if !reach[idx] {
			t.Errorf("slice step pc %#x (%s) is not on any def-use path to the root at pc %#x",
				st.PC, st.SASS, sl.PC)
		}
		if st.Depth < 0 || st.Depth > 4 {
			t.Errorf("slice step pc %#x has depth %d outside the walk bound", st.PC, st.Depth)
		}
		if st.Depth > 0 {
			// The step was pulled in as the producer of st.Reg, so the
			// instruction must actually define that register.
			defines := false
			for _, r := range k.Insts[idx].DstRegs(nil) {
				if r.String() == st.Reg {
					defines = true
				}
			}
			if !defines {
				t.Errorf("slice step pc %#x (%s) does not define %s, the register that pulled it in",
					st.PC, st.SASS, st.Reg)
			}
		}
	}
}

// backwardReachable computes the permissive backward def-use closure from
// root: every definition of every source register of every reachable
// instruction, to a fixpoint. Any sound slice is a subset of this set.
func backwardReachable(k *sass.Kernel, du *sass.DefUse, root int) map[int]bool {
	reach := map[int]bool{root: true}
	queue := []int{root}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, r := range k.Insts[i].SrcRegs(nil) {
			if r == sass.RZ {
				continue
			}
			for _, d := range du.Defs[r] {
				if d == i || reach[d] {
					continue
				}
				reach[d] = true
				queue = append(queue, d)
			}
		}
	}
	return reach
}
