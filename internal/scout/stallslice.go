package scout

import (
	"gpuscout/internal/cupti"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Slice walk bounds: enough hops to cross address arithmetic -> load ->
// consumer chains, small enough that reports stay readable.
const (
	sliceMaxDepth = 4
	sliceMaxInsts = 8
	sliceMaxPerF  = 2 // slices per finding (one per hottest site)
)

// stallSlices builds the LEO-style backward slices for a finding: for
// each flagged site, find the instruction where the stall actually
// surfaces (the site itself or the consumer of its result — stalls bill
// to the instruction *waiting* on the scoreboard), then walk def-use
// chains backward to the producers. Sites are ranked by stall samples;
// only the hottest few get a slice.
func stallSlices(f *Finding, rep *Report) []StallSlice {
	if rep.view == nil || rep.Samples == nil {
		return nil
	}
	var out []StallSlice
	seen := map[uint64]bool{}
	for _, s := range f.Sites {
		if len(out) >= sliceMaxPerF {
			break
		}
		idx := int(s.PC / sass.InstBytes)
		if idx >= len(rep.view.Kernel.Insts) {
			continue
		}
		stalled, samples, reason := stalledConsumer(rep.view, rep.Samples, idx)
		if samples <= 0 {
			continue
		}
		pc := rep.view.Kernel.Insts[stalled].PC
		if seen[pc] {
			continue
		}
		seen[pc] = true
		steps := rep.view.DefUse.BackwardSlice(stalled, sliceMaxDepth, sliceMaxInsts)
		if len(steps) < 2 {
			continue // a slice that is just the root explains nothing
		}
		sl := StallSlice{
			PC:      pc,
			Line:    rep.view.Kernel.Insts[stalled].Line,
			Stall:   reason.String(),
			Samples: samples,
		}
		for _, st := range steps {
			in := &rep.view.Kernel.Insts[st.Index]
			file := in.File
			if file == "" {
				file = rep.view.Kernel.SourceFile
			}
			reg := ""
			if st.Depth > 0 {
				reg = st.Reg.String()
			}
			sl.Steps = append(sl.Steps, SliceStep{
				PC: in.PC, Line: in.Line, File: file,
				Depth: st.Depth, Reg: reg, SASS: in.String(),
			})
		}
		out = append(out, sl)
	}
	return out
}

// stalledConsumer picks the instruction where the stall caused by the
// instruction at idx surfaces: among idx itself and the consumers of its
// destination registers (uses before the next redefinition), the PC with
// the most non-bookkeeping stall samples. Returns its index, sample
// count, and dominant stall reason.
func stalledConsumer(view *KernelView, samples *cupti.Report, idx int) (int, float64, sim.Stall) {
	k := view.Kernel
	candidates := []int{idx}
	for _, r := range k.Insts[idx].DstRegs(nil) {
		// Uses of this definition: after idx, up to and including the next
		// redefinition (mirrors DefUse.UseLinesAfter, by index).
		next := len(k.Insts)
		for _, d := range view.DefUse.Defs[r] {
			if d > idx {
				next = d
				break
			}
		}
		for _, u := range view.DefUse.Uses[r] {
			if u > idx && u <= next {
				candidates = append(candidates, u)
			}
		}
	}
	best, bestSamples := idx, 0.0
	var bestStall sim.Stall
	for _, c := range candidates {
		agg := samples.AtPC(k.Insts[c].PC)
		var total float64
		top, topSamples := sim.Stall(0), 0.0
		for st := sim.Stall(0); st < sim.NumStalls; st++ {
			if st == sim.StallSelected || st == sim.StallNotSelected {
				continue
			}
			total += agg[st]
			if agg[st] > topSamples {
				top, topSamples = st, agg[st]
			}
		}
		if total > bestSamples {
			best, bestSamples, bestStall = c, total, top
		}
	}
	return best, bestSamples, bestStall
}
