package scout

import (
	"context"
	"fmt"
	"time"

	"gpuscout/internal/cupti"
	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/ncu"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// AllAnalyses returns the full §4 detector set in paper order, tuned
// for the default Volta-class target.
func AllAnalyses() []Analysis {
	return AllAnalysesFor(gpu.V100())
}

// AllAnalysesFor returns the §4 detector set parameterized by the
// target architecture's descriptor tables (shared-memory bank count
// today; any future detector knob belongs here too).
func AllAnalysesFor(arch gpu.Arch) []Analysis {
	return []Analysis{
		VectorLoadAnalysis{},                          // §4.1
		RegSpillAnalysis{},                            // §4.2
		SharedMemAnalysis{},                           // §4.3
		SharedAtomicAnalysis{},                        // §4.4
		ReadOnlyAnalysis{},                            // §4.5
		TextureAnalysis{},                             // §4.6
		DtypeConvAnalysis{},                           // §4.7
		BankConflictAnalysis{Banks: arch.SharedBanks}, // added analysis (§7: modular extension)
	}
}

// Options configure one GPUscout run.
type Options struct {
	// DryRun restricts the run to the static SASS analysis — no GPU
	// involvement, no warp stalls, no metrics (§3.1). It also is the only
	// mode available on architectures ncu does not support.
	DryRun bool
	// SamplingPeriod is the CUPTI PC sampling period in cycles
	// (default 2048).
	SamplingPeriod float64
	// Sim configures the simulated launches.
	Sim sim.Config
	// Analyses overrides the detector set (nil = AllAnalyses).
	Analyses []Analysis
	// StallSlices attaches a backward def-use slice to each finding: the
	// producer chain from address arithmetic through the load to the
	// stalled consumer at the finding's highest-stall PC (LEO-style).
	// Needs the dynamic pillars, so it is ignored in --dry-run.
	StallSlices bool
	// Budgets splits the context deadline (when there is one) into
	// per-stage slices so a slow stage degrades the report instead of
	// timing out the whole job. The zero value uses DefaultStageBudgets;
	// set Disabled to restore whole-deadline semantics.
	Budgets StageBudgets
}

// RunFunc launches the kernel once and returns the simulation result.
// GPUscout invokes it for the dynamic pillars; the static pillar never
// needs it.
type RunFunc func(cfg sim.Config) (*sim.Result, error)

// RunContextFunc is RunFunc with cancellation: implementations should
// forward ctx into sim.LaunchContext so that aborting the analysis
// actually interrupts the simulated launch.
type RunContextFunc func(ctx context.Context, cfg sim.Config) (*sim.Result, error)

// Analyze performs the full GPUscout workflow (§3.1) on one kernel:
// static code instrumentation, dynamic data collection (PC sampling and
// ncu metrics, unless DryRun), and data evaluation.
func Analyze(arch gpu.Arch, k *sass.Kernel, run RunFunc, opts Options) (*Report, error) {
	var rc RunContextFunc
	if run != nil {
		rc = func(_ context.Context, cfg sim.Config) (*sim.Result, error) { return run(cfg) }
	}
	return AnalyzeContext(context.Background(), arch, k, rc, opts)
}

// AnalyzeContext is Analyze with cancellation and fault tolerance: the
// context deadline (when present) is split into per-stage budgets, every
// stage runs under a panic guard, and failures degrade the report —
// recorded in Report.Degradations — instead of abandoning it. A parse
// failure is still fatal (there is nothing to report on); a failing or
// slow dynamic pillar falls back to the static-only report; a panicking
// detector drops only its own findings.
func AnalyzeContext(ctx context.Context, arch gpu.Arch, k *sass.Kernel, run RunContextFunc, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scout: %w", err)
	}
	analyses := opts.Analyses
	if analyses == nil {
		analyses = AllAnalysesFor(arch)
	}
	budgets := opts.Budgets
	var total time.Duration
	if deadline, ok := ctx.Deadline(); ok && !budgets.Disabled {
		total = time.Until(deadline)
	}

	// --- Pillar 1: static SASS analysis. ---
	start := time.Now()
	var staticDeadline time.Time
	if total > 0 {
		staticDeadline = start.Add(budgets.SliceOf(StageParse, total) + budgets.SliceOf(StageScout, total))
	}
	var view *KernelView
	if err := Guard(StageParse, siteParse, func() error {
		if err := faultinject.Hit(siteParse); err != nil {
			return err
		}
		v, err := NewKernelView(k)
		if err != nil {
			return err
		}
		view = v
		return nil
	}); err != nil {
		return nil, err
	}

	rep := &Report{
		Kernel: k.Name,
		Arch:   k.Arch,
		DryRun: opts.DryRun || run == nil,
		kernel: k,
		view:   view,
	}

	// Per-detector isolation: a panicking detector loses its own findings
	// and nothing else; once the static budget is spent, the remaining
	// detectors are skipped, each loss named in the ledger.
	for _, a := range analyses {
		site := DetectorSite(a.Name())
		if !staticDeadline.IsZero() && time.Now().After(staticDeadline) {
			rep.Degradations = append(rep.Degradations, Degradation{
				Stage: StageScout, Site: site, Kind: DegradeTimeout,
				Detail: "detector skipped: static-stage budget exhausted",
			})
			continue
		}
		var found []Finding
		if err := Guard(StageScout, site, func() error {
			if err := faultinject.Hit(site); err != nil {
				return err
			}
			found = a.Detect(view)
			return nil
		}); err != nil {
			rep.Degradations = append(rep.Degradations, DegradationFor(StageScout, site, err, false))
			continue
		}
		rep.Findings = append(rep.Findings, found...)
	}
	rep.OverheadSASSCycles = time.Since(start).Seconds() * arch.ClockGHz * 1e9

	if rep.DryRun {
		sortFindings(rep.Findings)
		return rep, nil
	}

	// --- Pillars 2+3 under the sim budget slice. Any failure here —
	// panic, error, or the slice expiring — degrades to the static-only
	// report rather than surfacing an empty timeout, unless the *job*
	// context itself is done (then the caller's deadline governs).
	simCtx, cancel := ctx, context.CancelFunc(func() {})
	if total > 0 {
		simCtx, cancel = context.WithTimeout(ctx, budgets.SliceOf(StageSim, total))
	}
	err := runDynamicPillars(simCtx, arch, k, run, opts, rep)
	cancel()
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("scout: %w", ctxErr)
		}
		rep.DryRun = true
		rep.Result, rep.Samples, rep.Metrics = nil, nil, nil
		rep.KernelCycles, rep.OverheadSamplingCycles, rep.OverheadMetricsCycles = 0, 0, 0
		for fi := range rep.Findings {
			rep.Findings[fi].Severity = 0
			rep.Findings[fi].StallSummary = nil
			rep.Findings[fi].MetricSummary = nil
		}
		rep.Degradations = append(rep.Degradations,
			DegradationFor(StageSim, "sim.launch", err, simCtx.Err() != nil))
		sortFindings(rep.Findings)
		return rep, nil
	}

	// --- Data evaluation: correlate stalls and metrics per finding. A
	// correlation failure leaves that one finding static-shaped.
	for fi := range rep.Findings {
		f := &rep.Findings[fi]
		if err := Guard(StageScout, siteCorrelate, func() error {
			if err := faultinject.Hit(siteCorrelate); err != nil {
				return err
			}
			correlate(f, rep)
			return nil
		}); err != nil {
			f.Severity = 0
			f.StallSummary = nil
			f.MetricSummary = nil
			rep.Degradations = append(rep.Degradations, DegradationFor(StageScout, siteCorrelate, err, false))
		}
		if opts.StallSlices {
			if err := Guard(StageScout, siteSlice, func() error {
				if err := faultinject.Hit(siteSlice); err != nil {
					return err
				}
				f.StallSlices = stallSlices(f, rep)
				return nil
			}); err != nil {
				f.StallSlices = nil
				rep.Degradations = append(rep.Degradations, DegradationFor(StageScout, siteSlice, err, false))
			}
		}
	}
	sortFindings(rep.Findings)
	return rep, nil
}

// runDynamicPillars executes the warp-stall sampling and metric
// collection pillars, filling rep on success. Each step runs under its
// own guard so the returned error names the failing site.
func runDynamicPillars(ctx context.Context, arch gpu.Arch, k *sass.Kernel, run RunContextFunc, opts Options, rep *Report) error {
	// --- Pillar 2: warp-stall sampling (CUPTI). ---
	var res *sim.Result
	if err := Guard(StageSim, "sim.launch", func() error {
		r, err := run(ctx, opts.Sim)
		if err != nil {
			return err
		}
		res = r
		return ctx.Err()
	}); err != nil {
		return err
	}
	if err := Guard(StageSim, "cupti.collect", func() error {
		samples, err := cupti.Collect(k, res, cupti.Config{PeriodCycles: opts.SamplingPeriod})
		if err != nil {
			return err
		}
		rep.Samples = samples
		return nil
	}); err != nil {
		return err
	}
	rep.Result = res
	rep.KernelCycles = res.Cycles
	rep.OverheadSamplingCycles = cupti.CollectionCycles(res)

	// --- Pillar 3: kernel-wide metrics (ncu). ---
	// "The number of collected metrics is kept to minimum" (§3): only the
	// metrics the findings reference, plus a small base set.
	names := baseMetrics()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for fi := range rep.Findings {
		for _, n := range append(append([]string{}, rep.Findings[fi].RelevantMetrics...), rep.Findings[fi].CautionMetrics...) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return Guard(StageSim, "ncu.collect", func() error {
		ms, err := ncu.Collector{Arch: arch}.Collect(ncu.Context{Kernel: k, Result: res}, names)
		if err != nil {
			return err
		}
		rep.Metrics = ms
		rep.OverheadMetricsCycles = ms.OverheadCycles
		return nil
	})
}

// baseMetrics is the always-collected minimum set: the kernel-wide data
// movement summary of §3.2.
func baseMetrics() []string {
	return []string{
		"gpu__time_duration.sum",
		"sm__cycles_elapsed.max",
		"launch__registers_per_thread",
		"sm__warps_active.avg.pct_of_peak_sustained_active",
		"sm__maximum_warps_per_active_cycle_pct",
		"smsp__inst_executed.sum",
		"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
		"l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum",
		"l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
		"lts__t_sectors.sum",
		"lts__t_sector_hit_rate.pct",
		"dram__bytes_read.sum",
		"dram__bytes_write.sum",
	}
}

// correlate fills a finding's stall summary, metric summary and severity
// from the dynamic pillars.
func correlate(f *Finding, rep *Report) {
	// Warp stalls at the finding's sites, aggregated by line. Stalls
	// surface at the *dependent* instruction (the consumer waiting on the
	// scoreboard), so the correlation includes the lines that consume the
	// flagged instructions' results.
	seenLines := map[int]bool{}
	for _, s := range f.Sites {
		idx := int(s.PC / sass.InstBytes)
		if rep.view != nil && idx < len(rep.view.Kernel.Insts) {
			in := &rep.view.Kernel.Insts[idx]
			for _, r := range in.DstRegs(nil) {
				for _, l := range rep.view.DefUse.UseLinesAfter(r, idx) {
					seenLines[l] = false // consumer line: counted, not listed
				}
			}
		}
	}
	var relevantShare float64
	for _, s := range f.Sites {
		if _, dup := seenLines[s.Line]; dup && seenLines[s.Line] {
			continue
		}
		seenLines[s.Line] = true
		top := topLineStalls(rep.Samples, s.Line, 3)
		for _, ts := range top {
			f.StallSummary = append(f.StallSummary, fmt.Sprintf(
				"line %d: %s — %.1f%% of stall samples at this line (%s)",
				s.Line, ts.stall, 100*ts.share, ts.stall.Explain()))
		}
	}
	// Relevance: how much of the kernel's stalls are of the kinds this
	// finding points at, at these lines.
	var atSites, total float64
	for line := range seenLines {
		agg := rep.Samples.AtLine(line)
		for _, st := range f.RelevantStalls {
			atSites += agg[st]
		}
	}
	for st := sim.Stall(0); st < sim.NumStalls; st++ {
		if st == sim.StallSelected {
			continue
		}
		total += rep.Result.Counters.StallCycles[st] / rep.Samples.PeriodCycles
	}
	if total > 0 {
		relevantShare = atSites / total
	}
	switch {
	case relevantShare >= 0.20:
		f.Severity = SeverityCritical
	case relevantShare >= 0.02:
		f.Severity = SeverityWarning
	default:
		if f.Severity < SeverityInfo {
			f.Severity = SeverityInfo
		}
	}
	f.StallSummary = append(f.StallSummary, fmt.Sprintf(
		"relevant stalls (%s) at the flagged lines account for %.1f%% of all kernel stall samples",
		stallList(f.RelevantStalls), 100*relevantShare))

	// GPA-style payoff ceiling: if every stall this finding attributes
	// vanished, the kernel could at best run 1/(1-frac)x faster, where
	// frac is the finding's share of stalls scaled by how much of the
	// issue opportunity stalls actually cost (Amdahl over exposed stall
	// cycles). The advisor's sensitivity sweep later widens this with
	// measured headroom.
	f.RelevantStallShare = relevantShare
	frac := relevantShare * exposedStallFraction(rep.Result)
	if frac > 0.95 {
		frac = 0.95
	}
	f.EstSpeedup = 1 / (1 - frac)

	// Metric analysis.
	f.MetricSummary = metricSummary(f, rep)
}

// exposedStallFraction is the fraction of issue opportunities lost to
// stalls: exposed stall cycles / (exposed stall cycles + issued cycles).
// not_selected is excluded — another warp was issuing, so no latency was
// exposed.
func exposedStallFraction(res *sim.Result) float64 {
	if res == nil {
		return 0
	}
	var exposed float64
	for st := sim.Stall(0); st < sim.NumStalls; st++ {
		if st == sim.StallSelected || st == sim.StallNotSelected {
			continue
		}
		exposed += res.Counters.StallCycles[st]
	}
	denom := exposed + res.Counters.StallCycles[sim.StallSelected]
	if denom == 0 {
		return 0
	}
	return exposed / denom
}

type lineStall struct {
	stall sim.Stall
	share float64
}

func topLineStalls(r *cupti.Report, line, max int) []lineStall {
	agg := r.AtLine(line)
	var total float64
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if s == sim.StallSelected || s == sim.StallNotSelected {
			continue
		}
		total += agg[s]
	}
	if total == 0 {
		return nil
	}
	var out []lineStall
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if s == sim.StallSelected || s == sim.StallNotSelected || agg[s] == 0 {
			continue
		}
		out = append(out, lineStall{s, agg[s] / total})
	}
	// Selection sort for the top few.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].share > out[i].share {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

func stallList(ss []sim.Stall) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s.String()
	}
	return out
}

// metricSummary renders the per-finding metric analysis, including the
// derived formulas the paper describes (§2.3, §4.2, §4.3).
func metricSummary(f *Finding, rep *Report) []string {
	ms := rep.Metrics
	var out []string
	add := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	val := func(name string) float64 {
		v, _ := ms.Get(name)
		return v
	}
	for _, name := range f.RelevantMetrics {
		if m, ok := ncu.Lookup(name); ok {
			add("%s = %.6g %s (%s)", name, val(name), m.Unit, m.Description)
		}
	}
	// Sector size comes from the report's architecture descriptor (32 B
	// on Volta, wider on Ampere-class targets).
	secB := 32.0
	if a, err := gpu.ByName(rep.Arch); err == nil && a.L1SectorBytes > 0 {
		secB = float64(a.L1SectorBytes)
	}
	switch f.Analysis {
	case "register_spilling":
		localInsts := val("smsp__inst_executed_op_local_ld.sum") + val("smsp__inst_executed_op_local_st.sum")
		missPct := 100 - val("l1tex__t_sector_pipe_lsu_mem_local_op_ld_hit_rate.pct")
		numSMs := float64(rep.Result.NumSMs)
		// §2.3: #SMs * (% cache miss) * (local memory instructions).
		add("estimated queries to L2 due to local memory = #SMs x miss%% x local insts = %.0f x %.1f%% x %.0f = %.4g",
			numSMs, missPct, localInsts/numSMs, missPct/100*localInsts)
		localSect := val("l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum") + val("l1tex__t_sectors_pipe_lsu_mem_local_op_st.sum")
		totalSect := localSect + val("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum") + val("l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum")
		if totalSect > 0 {
			add("local memory causes %.1f%% of the L1TEX sector traffic (%.4g of %.4g sectors, %.4g B)",
				100*localSect/totalSect, localSect, totalSect, localSect*secB)
		}
	case "vectorized_load":
		ldInsts := val("smsp__inst_executed_op_global_ld.sum")
		sectors := val("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum")
		if ldInsts > 0 {
			add("global loads execute %.4g instructions moving %.4g sectors (%.2f sectors/instruction); vectorizing reduces the instruction count",
				ldInsts, sectors, sectors/ldInsts)
		}
		add("current register pressure: %.0f registers/thread at %.1f%% achieved occupancy — check both after vectorizing",
			val("launch__registers_per_thread"),
			val("sm__warps_active.avg.pct_of_peak_sustained_active"))
	case "shared_memory", "bank_conflicts":
		acc := val("smsp__inst_executed_op_shared_ld.sum")
		trans := val("l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum")
		if acc > 0 {
			// §4.3: transactions per access approximates the n-way bank
			// conflict (1 = conflict-free, 32 = fully serialized).
			add("shared-memory bank conflict ratio = %.4g transactions / %.4g accesses = %.2f-way (1.0 = conflict-free)",
				trans, acc, trans/acc)
		} else {
			add("kernel currently uses no shared memory; after the change, watch the bank-conflict ratio (transactions/accesses)")
		}
	case "shared_atomics":
		add("global atomics: %.4g thread ops; shared atomics: %.4g thread ops; atomic requests usually miss L1 entirely and resolve in L2 (hit rate %.1f%%) or DRAM",
			val("smsp__sass_inst_executed_op_global_atom.sum"),
			val("smsp__sass_inst_executed_op_shared_atom.sum"),
			val("lts__t_sector_hit_rate.pct"))
	case "texture_memory", "readonly_cache":
		tex := val("l1tex__t_sectors_pipe_tex_mem_texture.sum")
		if tex > 0 {
			add("texture/read-only path: %.4g sectors requested (%.4g B), %.1f%% hit the texture cache",
				tex, tex*secB, val("l1tex__t_sector_pipe_tex_mem_texture_hit_rate.pct"))
		}
	case "datatype_conversion":
		total := val("smsp__inst_executed.sum")
		if total > 0 && rep.Result != nil {
			conv := float64(rep.Result.Counters.OpcodeDyn[sass.OpI2F]+
				rep.Result.Counters.OpcodeDyn[sass.OpF2I]+
				rep.Result.Counters.OpcodeDyn[sass.OpF2F]+
				rep.Result.Counters.OpcodeDyn[sass.OpI2I]) * rep.Result.Scale
			add("conversions are %.2f%% of all executed warp instructions (%.4g of %.4g)",
				100*conv/total, conv, total)
		}
	}
	return out
}
