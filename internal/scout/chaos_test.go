//go:build faultinject

// Chaos suite: drives every workload through every reachable
// fault-injection site and asserts the three pipeline guarantees — the
// process survives, every loss is in the ledger, and a quiet harness
// (nothing armed, or a fault that never fires) yields byte-identical
// reports. Kept behind the faultinject build tag because the sweep is
// deliberately broad; CI runs it via `go test -tags faultinject -run
// Chaos ./...`.
package scout_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// chaosScale picks a small problem size per workload so the full sweep
// stays fast while still reaching every pipeline stage.
func chaosScale(name string) int {
	switch {
	case strings.HasPrefix(name, "jacobi"):
		return 64
	case strings.HasPrefix(name, "sgemm"), strings.HasPrefix(name, "transpose"):
		return 32
	default:
		return 4
	}
}

// chaosAnalyze runs one workload through the full pipeline with a
// 1-SM sample so the sweep stays cheap.
func chaosAnalyze(t *testing.T, name string, ctx context.Context) ([]byte, error) {
	t.Helper()
	w, err := workloads.Build(name, chaosScale(name))
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	arch, err := gpu.ByName("sm_70")
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), cfg)
	}
	rep, err := scout.AnalyzeContext(ctx, arch, w.Kernel, run,
		scout.Options{Sim: sim.Config{SampleSMs: 1}})
	if err != nil {
		return nil, err
	}
	// The static-pass overhead is wall-clock-derived (Fig. 6), the one
	// legitimately nondeterministic report field; zero it so the
	// byte-identity assertions compare everything else.
	rep.OverheadSASSCycles = 0
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	return data, nil
}

// chaosSites returns the registered sites reachable from a direct
// workload analysis (the advisor, cubin and service sites belong to
// other harnesses).
func chaosSites() []string {
	var out []string
	for _, s := range faultinject.Sites() {
		if strings.HasPrefix(s, "scout.") || strings.HasPrefix(s, "sim.") ||
			strings.HasPrefix(s, "cupti.") || strings.HasPrefix(s, "ncu.") {
			out = append(out, s)
		}
	}
	return out
}

// TestChaosPanicEverySiteEveryWorkload is the tentpole guarantee: a
// panic injected at any site, for any workload, never kills the process
// and never silently drops data.
func TestChaosPanicEverySiteEveryWorkload(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			faultinject.Reset()
			baseline, err := chaosAnalyze(t, name, context.Background())
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			for _, site := range chaosSites() {
				site := site
				t.Run(site, func(t *testing.T) {
					faultinject.Reset()
					disarm, err := faultinject.Arm(faultinject.Fault{
						Site: site, Mode: faultinject.ModePanic, Times: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer disarm()
					data, err := chaosAnalyze(t, name, context.Background())
					if faultinject.Fired(site) == 0 {
						// Unreachable site for this workload: the run must be
						// indistinguishable from the baseline.
						if err != nil {
							t.Fatalf("unfired fault changed the outcome: %v", err)
						}
						if !bytes.Equal(data, baseline) {
							t.Fatal("unfired fault changed the report bytes")
						}
						return
					}
					if site == "scout.parse" {
						// Parse is the one fatal stage: nothing to report on.
						if err == nil {
							t.Fatal("parse panic did not fail the analysis")
						}
						if !scout.TransientError(err) {
							t.Errorf("parse panic not classified transient: %v", err)
						}
						return
					}
					if err != nil {
						t.Fatalf("pipeline abandoned the report: %v", err)
					}
					assertLedger(t, data, site, scout.DegradePanic)
					if strings.HasPrefix(site, "scout.detector.") {
						det := strings.TrimPrefix(site, "scout.detector.")
						if bytes.Contains(data, []byte(`"analysis": "`+det+`"`)) {
							t.Errorf("panicking detector %s left findings behind", det)
						}
					}
					if site == "sim.launch" || site == "cupti.collect" || site == "ncu.collect" {
						if !bytes.Contains(data, []byte(`"dry_run": true`)) {
							t.Error("dynamic-pillar panic did not fall back to a static report")
						}
					}
				})
			}
		})
	}
}

// assertLedger requires at least one degradation entry attributing the
// loss to (site, kind) in the marshaled report.
func assertLedger(t *testing.T, data []byte, site, kind string) {
	t.Helper()
	if !bytes.Contains(data, []byte(`"degradations"`)) {
		t.Fatalf("no ledger in a degraded report (site %s)", site)
	}
	if !bytes.Contains(data, []byte(`"site": "`+site+`"`)) {
		t.Errorf("ledger misses site %s", site)
	}
	if !bytes.Contains(data, []byte(`"kind": "`+kind+`"`)) {
		t.Errorf("ledger misses kind %s for site %s", kind, site)
	}
}

// TestChaosErrorAndDelayModes covers the two other fault modes on one
// representative workload: injected errors degrade with kind "error",
// and a pure delay (no deadline pressure) must not perturb the report at
// all.
func TestChaosErrorAndDelayModes(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	const name = "histogram_shared"
	baseline, err := chaosAnalyze(t, name, context.Background())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	for _, site := range []string{"sim.launch", scout.DetectorSite("shared_atomics"), "scout.correlate"} {
		faultinject.Reset()
		disarm, err := faultinject.Arm(faultinject.Fault{Site: site, Mode: faultinject.ModeError, Times: 1})
		if err != nil {
			t.Fatal(err)
		}
		data, err := chaosAnalyze(t, name, context.Background())
		disarm()
		if err != nil {
			t.Fatalf("error at %s abandoned the report: %v", site, err)
		}
		assertLedger(t, data, site, scout.DegradeError)
	}

	faultinject.Reset()
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: "sim.launch", Mode: faultinject.ModeDelay, Delay: 20 * time.Millisecond, Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := chaosAnalyze(t, name, context.Background())
	disarm()
	if err != nil {
		t.Fatalf("delay with no deadline failed the run: %v", err)
	}
	if !bytes.Equal(data, baseline) {
		t.Error("a pure delay changed the report bytes")
	}
}

// TestChaosQuietHarnessByteIdentity: with nothing armed, repeated runs
// are byte-identical — the fault-injection instrumentation has zero
// observable cost when disarmed.
func TestChaosQuietHarnessByteIdentity(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	for _, name := range []string{"sgemm_naive", "jacobi_texture", "mixbench_sp_vec4"} {
		a, err := chaosAnalyze(t, name, context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := chaosAnalyze(t, name, context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two quiet runs differ", name)
		}
	}
}
