package scout

import (
	"encoding/json"
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func mkFinding(analysis string, line int, sev Severity, verdict Verdict) Finding {
	f := Finding{
		Analysis: analysis,
		Title:    analysis + " finding",
		Sites:    []Site{{Line: line, PC: uint64(line * 16)}},
		Severity: sev,
	}
	if verdict != "" {
		f.Verification = &Verification{Verdict: verdict}
	}
	return f
}

func TestCompareReportsStatuses(t *testing.T) {
	base := &Report{
		Kernel: "k",
		Arch:   "sm_70",
		Findings: []Finding{
			mkFinding("readonly_cache", 8, SeverityCritical, VerdictConfirmed),
			mkFinding("bank_conflict", 12, SeverityWarning, VerdictConfirmed),
			mkFinding("register_spill", 20, SeverityWarning, ""),
		},
		Result: &sim.Result{},
	}
	other := &Report{
		Kernel: "k",
		Arch:   "sm_80",
		Findings: []Finding{
			mkFinding("bank_conflict", 12, SeverityWarning, VerdictNeutral),
			mkFinding("register_spill", 20, SeverityWarning, ""),
			mkFinding("shared_atomic", 30, SeverityInfo, ""),
		},
		Result: &sim.Result{Counters: &sim.Counters{AsyncCopyInsts: 3}},
	}

	c := CompareReports(base, other)
	if c.Kernel != "k" || c.BaseArch != "sm_70" || c.OtherArch != "sm_80" {
		t.Fatalf("header = %q/%q/%q", c.Kernel, c.BaseArch, c.OtherArch)
	}
	if len(c.Deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(c.Deltas), c.Deltas)
	}
	byKey := map[string]*ArchDelta{}
	for i := range c.Deltas {
		byKey[c.Deltas[i].Analysis] = &c.Deltas[i]
	}

	ro := byKey["readonly_cache"]
	if ro.Status != DeltaOnlyBase {
		t.Errorf("readonly_cache status = %s, want only_base", ro.Status)
	}
	if !strings.Contains(ro.Note, "cp.async") || !strings.Contains(ro.Note, "LDGSTS") {
		t.Errorf("readonly_cache note lacks cp.async attribution: %q", ro.Note)
	}
	if !ro.Differs() {
		t.Error("readonly_cache should differ")
	}

	bc := byKey["bank_conflict"]
	if bc.Status != DeltaPersists {
		t.Errorf("bank_conflict status = %s, want persists", bc.Status)
	}
	if bc.BaseVerdict != "confirmed" || bc.OtherVerdict != "neutral" {
		t.Errorf("bank_conflict verdicts = %q/%q", bc.BaseVerdict, bc.OtherVerdict)
	}
	if !bc.Differs() {
		t.Error("bank_conflict verdict changed; Differs must be true")
	}
	if !strings.Contains(bc.Note, "advisor verdict") {
		t.Errorf("bank_conflict note = %q, want verdict delta note", bc.Note)
	}

	rs := byKey["register_spill"]
	if rs.Status != DeltaPersists || rs.Differs() {
		t.Errorf("register_spill unchanged on both arches: status=%s differs=%v", rs.Status, rs.Differs())
	}

	sa := byKey["shared_atomic"]
	if sa.Status != DeltaOnlyOther {
		t.Errorf("shared_atomic status = %s, want only_other", sa.Status)
	}
	if sa.Note != "" {
		t.Errorf("shared_atomic (not a global-load detector) got note %q", sa.Note)
	}

	if !c.AnyVerdictDiffers() {
		t.Error("AnyVerdictDiffers = false, want true")
	}

	out := c.Render()
	for _, want := range []string{"sm_70 vs sm_80", "sm_70 only", "sm_80 only", "persists", "cp.async"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

// The cp.async attribution must not fire when the other arch executed no
// async copies — absence then has some other cause.
func TestCompareReportsNoAsyncNoNote(t *testing.T) {
	base := &Report{Kernel: "k", Arch: "sm_70",
		Findings: []Finding{mkFinding("readonly_cache", 8, SeverityCritical, "")},
		Result:   &sim.Result{}}
	other := &Report{Kernel: "k", Arch: "sm_80", Result: &sim.Result{Counters: &sim.Counters{}}}
	c := CompareReports(base, other)
	if len(c.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(c.Deltas))
	}
	if c.Deltas[0].Note != "" {
		t.Errorf("note = %q, want empty without async-copy evidence", c.Deltas[0].Note)
	}
}

// Duplicate (analysis, line) pairs collapse to one delta; dry-run reports
// render severity as "present".
func TestCompareReportsDedupAndDryRun(t *testing.T) {
	base := &Report{Kernel: "k", Arch: "sm_70", DryRun: true,
		Findings: []Finding{
			mkFinding("vectorized_load", 7, 0, ""),
			mkFinding("vectorized_load", 7, 0, ""),
		}}
	other := &Report{Kernel: "k", Arch: "sm_80", DryRun: true,
		Findings: []Finding{mkFinding("vectorized_load", 7, 0, "")}}
	c := CompareReports(base, other)
	if len(c.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (dedup by analysis+line): %+v", len(c.Deltas), c.Deltas)
	}
	d := c.Deltas[0]
	if d.BaseSeverity != "present" || d.OtherSeverity != "present" {
		t.Errorf("dry-run severities = %q/%q, want present/present", d.BaseSeverity, d.OtherSeverity)
	}
	if d.Differs() {
		t.Error("identical presence on both arches must not differ")
	}
	if c.AnyVerdictDiffers() {
		t.Error("AnyVerdictDiffers = true, want false")
	}
}

func TestArchComparisonJSON(t *testing.T) {
	base := &Report{Kernel: "k", Arch: "sm_70",
		Findings: []Finding{mkFinding("readonly_cache", 8, SeverityCritical, VerdictConfirmed)},
		Result:   &sim.Result{Counters: &sim.Counters{}}}
	other := &Report{Kernel: "k", Arch: "sm_80", Result: &sim.Result{Counters: &sim.Counters{AsyncCopyInsts: 1}}}
	c := CompareReports(base, other)
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var round JSONArchComparison
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if round.BaseArch != "sm_70" || round.OtherArch != "sm_80" {
		t.Errorf("arches = %q/%q", round.BaseArch, round.OtherArch)
	}
	if len(round.Deltas) != 1 || round.Deltas[0].Status != "only_base" {
		t.Fatalf("deltas = %+v", round.Deltas)
	}
	if round.Base == nil || round.Other == nil {
		t.Error("full reports missing from JSON form")
	}
	if round.Deltas[0].Note == "" {
		t.Error("note lost in JSON round-trip")
	}
}
