package scout

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ArchDeltaStatus classifies how one finding behaves across two
// architectures: the cross-arch report dimension ("this bottleneck
// disappears on sm_80 because cp.async hides it").
type ArchDeltaStatus string

const (
	// DeltaPersists: the finding fires on both architectures.
	DeltaPersists ArchDeltaStatus = "persists"
	// DeltaOnlyBase: the finding fires on the base arch only — the
	// other backend's lowering (or machine balance) removed it.
	DeltaOnlyBase ArchDeltaStatus = "only_base"
	// DeltaOnlyOther: the finding appears only on the other arch.
	DeltaOnlyOther ArchDeltaStatus = "only_other"
)

// ArchDelta is one finding tracked across the two architectures.
// Findings are matched by (analysis, primary source line): source lines
// are stable across backends while PCs are not.
type ArchDelta struct {
	Analysis string
	Line     int
	Title    string
	Status   ArchDeltaStatus

	// Severities as rendered strings; empty when the finding is absent
	// on that arch.
	BaseSeverity  string
	OtherSeverity string

	// Advisor verdicts ("confirmed"/"neutral"/"refuted"), empty when the
	// report was not verified or the finding is absent.
	BaseVerdict  string
	OtherVerdict string

	// Note explains the delta when the comparison can attribute it
	// (e.g. cp.async lowering hiding a global-load stall).
	Note string
}

// Differs reports whether the finding's verdict — presence, severity, or
// advisor verdict — changed between the two architectures.
func (d *ArchDelta) Differs() bool {
	if d.Status != DeltaPersists {
		return true
	}
	return d.BaseSeverity != d.OtherSeverity || d.BaseVerdict != d.OtherVerdict
}

// ArchComparison is the result of analyzing the same kernel on two
// architectures and diffing the findings.
type ArchComparison struct {
	Kernel    string
	BaseArch  string
	OtherArch string
	Base      *Report
	Other     *Report
	Deltas    []ArchDelta
}

// globalLoadAnalyses are the detectors whose findings an async-copy
// lowering can remove: they all key off LDG instructions that LDGSTS
// fusion deletes.
func isGlobalLoadAnalysis(name string) bool {
	switch name {
	case "readonly_cache", "vectorized_load", "texture_memory":
		return true
	}
	return false
}

func verdictOf(f *Finding) string {
	if f.Verification == nil {
		return ""
	}
	return string(f.Verification.Verdict)
}

// CompareReports diffs two reports of the same kernel produced on
// different architectures. Findings are matched by detector name and
// primary source line.
func CompareReports(base, other *Report) *ArchComparison {
	c := &ArchComparison{
		Kernel:    base.Kernel,
		BaseArch:  base.Arch,
		OtherArch: other.Arch,
		Base:      base,
		Other:     other,
	}
	type key struct {
		analysis string
		line     int
	}
	otherByKey := map[key]*Finding{}
	for i := range other.Findings {
		f := &other.Findings[i]
		k := key{f.Analysis, f.PrimaryLine()}
		if _, dup := otherByKey[k]; !dup {
			otherByKey[k] = f
		}
	}
	otherHasAsync := other.Result != nil && other.Result.Counters != nil &&
		other.Result.Counters.AsyncCopyInsts > 0

	seen := map[key]bool{}
	for i := range base.Findings {
		f := &base.Findings[i]
		k := key{f.Analysis, f.PrimaryLine()}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := ArchDelta{
			Analysis:     f.Analysis,
			Line:         f.PrimaryLine(),
			Title:        f.Title,
			BaseSeverity: f.Severity.String(),
			BaseVerdict:  verdictOf(f),
		}
		if base.DryRun {
			d.BaseSeverity = "present"
		}
		if of, ok := otherByKey[k]; ok {
			d.Status = DeltaPersists
			d.OtherSeverity = of.Severity.String()
			if other.DryRun {
				d.OtherSeverity = "present"
			}
			d.OtherVerdict = verdictOf(of)
			if d.BaseSeverity != d.OtherSeverity {
				d.Note = fmt.Sprintf("severity %s on %s, %s on %s",
					d.BaseSeverity, c.BaseArch, d.OtherSeverity, c.OtherArch)
			}
			if d.BaseVerdict != "" && d.OtherVerdict != "" && d.BaseVerdict != d.OtherVerdict {
				d.Note = fmt.Sprintf("advisor verdict %s on %s, %s on %s",
					d.BaseVerdict, c.BaseArch, d.OtherVerdict, c.OtherArch)
			}
		} else {
			d.Status = DeltaOnlyBase
			if otherHasAsync && isGlobalLoadAnalysis(f.Analysis) {
				d.Note = fmt.Sprintf("the %s backend lowered this LDG+STS staging to a cp.async-style copy (LDGSTS): "+
					"the global load bypasses the register file and its latency hides behind the next barrier, "+
					"so there is no global-load stall left to optimize", c.OtherArch)
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	for i := range other.Findings {
		f := &other.Findings[i]
		k := key{f.Analysis, f.PrimaryLine()}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := ArchDelta{
			Analysis:      f.Analysis,
			Line:          f.PrimaryLine(),
			Title:         f.Title,
			Status:        DeltaOnlyOther,
			OtherSeverity: f.Severity.String(),
			OtherVerdict:  verdictOf(f),
		}
		if other.DryRun {
			d.OtherSeverity = "present"
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// AnyVerdictDiffers reports whether at least one finding's verdict
// (presence, severity, or advisor verdict) differs between the arches.
func (c *ArchComparison) AnyVerdictDiffers() bool {
	for i := range c.Deltas {
		if c.Deltas[i].Differs() {
			return true
		}
	}
	return false
}

// Render produces the human-readable cross-arch comparison.
func (c *ArchComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GPUscout cross-arch comparison — kernel %s (%s vs %s)\n",
		c.Kernel, c.BaseArch, c.OtherArch)
	cyc := func(r *Report) string {
		if r.Result == nil {
			return "static-only"
		}
		return fmt.Sprintf("%.0f cycles", r.KernelCycles)
	}
	fmt.Fprintf(&b, "  %-6s %d finding(s), %s\n", c.BaseArch+":", len(c.Base.Findings), cyc(c.Base))
	fmt.Fprintf(&b, "  %-6s %d finding(s), %s\n", c.OtherArch+":", len(c.Other.Findings), cyc(c.Other))
	b.WriteString("\n")
	if len(c.Deltas) == 0 {
		b.WriteString("  no findings on either architecture\n")
		return b.String()
	}
	for i := range c.Deltas {
		d := &c.Deltas[i]
		var status string
		switch d.Status {
		case DeltaPersists:
			status = "persists"
		case DeltaOnlyBase:
			status = c.BaseArch + " only"
		case DeltaOnlyOther:
			status = c.OtherArch + " only"
		}
		fmt.Fprintf(&b, "  [%s] %s @ line %d", status, d.Analysis, d.Line)
		switch d.Status {
		case DeltaPersists:
			fmt.Fprintf(&b, ": %s on %s, %s on %s", d.BaseSeverity, c.BaseArch, d.OtherSeverity, c.OtherArch)
			if d.BaseVerdict != "" || d.OtherVerdict != "" {
				fmt.Fprintf(&b, " (verdict %s vs %s)", orDash(d.BaseVerdict), orDash(d.OtherVerdict))
			}
		case DeltaOnlyBase:
			fmt.Fprintf(&b, ": %s on %s, absent on %s", d.BaseSeverity, c.BaseArch, c.OtherArch)
		case DeltaOnlyOther:
			fmt.Fprintf(&b, ": absent on %s, %s on %s", c.BaseArch, d.OtherSeverity, c.OtherArch)
		}
		b.WriteString("\n")
		if d.Note != "" {
			fmt.Fprintf(&b, "      %s\n", d.Note)
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// JSONArchDelta mirrors ArchDelta.
type JSONArchDelta struct {
	Analysis      string `json:"analysis"`
	Line          int    `json:"line"`
	Title         string `json:"title"`
	Status        string `json:"status"`
	BaseSeverity  string `json:"base_severity,omitempty"`
	OtherSeverity string `json:"other_severity,omitempty"`
	BaseVerdict   string `json:"base_verdict,omitempty"`
	OtherVerdict  string `json:"other_verdict,omitempty"`
	Note          string `json:"note,omitempty"`
}

// JSONArchComparison is the machine-readable cross-arch comparison: the
// delta list plus both full reports.
type JSONArchComparison struct {
	Kernel    string          `json:"kernel"`
	BaseArch  string          `json:"base_arch"`
	OtherArch string          `json:"other_arch"`
	Deltas    []JSONArchDelta `json:"deltas"`
	Base      *JSONReport     `json:"base,omitempty"`
	Other     *JSONReport     `json:"other,omitempty"`
}

// ToJSON converts the comparison to its serializable form.
func (c *ArchComparison) ToJSON() *JSONArchComparison {
	out := &JSONArchComparison{
		Kernel:    c.Kernel,
		BaseArch:  c.BaseArch,
		OtherArch: c.OtherArch,
	}
	for i := range c.Deltas {
		d := &c.Deltas[i]
		out.Deltas = append(out.Deltas, JSONArchDelta{
			Analysis:      d.Analysis,
			Line:          d.Line,
			Title:         d.Title,
			Status:        string(d.Status),
			BaseSeverity:  d.BaseSeverity,
			OtherSeverity: d.OtherSeverity,
			BaseVerdict:   d.BaseVerdict,
			OtherVerdict:  d.OtherVerdict,
			Note:          d.Note,
		})
	}
	if c.Base != nil {
		out.Base = c.Base.ToJSON()
	}
	if c.Other != nil {
		out.Other = c.Other.ToJSON()
	}
	return out
}

// MarshalJSON lets an ArchComparison be encoded directly.
func (c *ArchComparison) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(c.ToJSON(), "", "  ")
}
