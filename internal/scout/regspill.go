package scout

import (
	"fmt"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// RegSpillAnalysis implements §4.2: STL/LDL instructions indicate register
// spilling to local memory. The detector names the spilled register, the
// source line, and — "an optimistic assumption" per the paper — the last
// arithmetic operation that wrote the register and thereby caused the
// spill (as shown in the Fig. 2 sample output).
type RegSpillAnalysis struct{}

// Name implements Analysis.
func (RegSpillAnalysis) Name() string { return "register_spilling" }

// Detect implements Analysis.
func (RegSpillAnalysis) Detect(v *KernelView) []Finding {
	k := v.Kernel
	var sites []Site
	inLoop := false
	spills, reloads := 0, 0
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Op {
		case sass.OpSTL:
			spills++
			reg := sass.RZ
			if len(in.Src) > 0 && in.Src[0].Kind == sass.OpdReg {
				reg = in.Src[0].Reg
			}
			note := fmt.Sprintf("register %s spilled to local memory; live register pressure here: %d",
				reg, v.Liveness.PressureAt(i))
			if cause := v.DefUse.LastDefBefore(reg, i); cause >= 0 {
				ci := &k.Insts[cause]
				note += fmt.Sprintf("; previous write by %s at line %d", ci.Op, ci.Line)
			}
			if v.CFG.InLoop(i) {
				inLoop = true
				note += "; inside a for-loop"
			}
			sites = append(sites, v.site(i, note))
		case sass.OpLDL:
			reloads++
			note := "spilled value reloaded from local memory"
			if v.CFG.InLoop(i) {
				inLoop = true
				note += "; inside a for-loop"
			}
			sites = append(sites, v.site(i, note))
		}
	}
	if spills == 0 && reloads == 0 {
		return nil
	}
	maxP, at := v.Liveness.MaxPressure()
	f := Finding{
		Analysis: "register_spilling",
		Title:    "Register spilling to local memory detected",
		Problem: fmt.Sprintf(
			"%d spill stores (STL) and %d reloads (LDL) — the kernel needs more registers than available (%d allocated; peak live pressure %d at PC %#x, %d B of local memory per thread), creating extra memory traffic through L1 and L2",
			spills, reloads, k.NumRegs, maxP, k.Insts[at].PC, k.LocalBytes),
		Recommendation: "reduce simultaneously-live values (split the kernel, reduce unrolling, recompute instead of keeping values), or raise the register budget (-maxrregcount / __launch_bounds__) if occupancy allows",
		Sites:          sites,
		InLoop:         inLoop,
		RelevantStalls: []sim.Stall{sim.StallLGThrottle, sim.StallLongScoreboard},
		RelevantMetrics: []string{
			"launch__local_mem_per_thread",
			"smsp__inst_executed_op_local_ld.sum",
			"smsp__inst_executed_op_local_st.sum",
			"l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum",
			"l1tex__t_sectors_pipe_lsu_mem_local_op_st.sum",
			"l1tex__t_sector_pipe_lsu_mem_local_op_ld_hit_rate.pct",
			"lts__t_sectors.sum",
			"smsp__warp_issue_stalled_lg_throttle_per_warp_active.pct",
			"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
		},
		CautionMetrics: []string{
			"sm__warps_active.avg.pct_of_peak_sustained_active",
		},
	}
	return []Finding{f}
}
