package scout

import (
	"fmt"

	"gpuscout/internal/ptx"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// SharedAtomicAnalysis implements §4.4: frequent global atomics serialize
// device-wide (resolved in L2), while shared atomics serialize only within
// a thread block. Following the paper (footnote 2), the analysis runs on
// the PTX view of the kernel and is cross-checked against the SASS.
type SharedAtomicAnalysis struct{}

// Name implements Analysis.
func (SharedAtomicAnalysis) Name() string { return "shared_atomics" }

// Detect implements Analysis.
func (SharedAtomicAnalysis) Detect(v *KernelView) []Finding {
	k := v.Kernel
	mod := ptx.Lift(k)
	atomics := mod.Atomics()
	if len(atomics.GlobalAtomics) == 0 {
		return nil
	}

	f := Finding{
		Analysis: "shared_atomics",
		Title:    "Frequent global atomics: consider shared-memory atomics",
		Problem: fmt.Sprintf(
			"PTX analysis finds %d global atomic(s) (atom.global/red.global) vs %d shared atomic(s); a global atomic is a kernel-wide serialization typically resolved in the L2 cache",
			len(atomics.GlobalAtomics), len(atomics.SharedAtomics)),
		Recommendation: "accumulate per-block partial results with shared-memory atomics (block-level serialization) and combine them with one global atomic per block; note shared atomics only synchronize within one thread block",
		RelevantStalls: []sim.Stall{sim.StallLGThrottle},
		RelevantMetrics: []string{
			"smsp__sass_inst_executed_op_global_atom.sum",
			"smsp__sass_inst_executed_op_shared_atom.sum",
			"lts__t_sector_hit_rate.pct",
			"smsp__warp_issue_stalled_lg_throttle_per_warp_active.pct",
		},
		CautionMetrics: []string{
			// §4.4: shared atomics load the MIO pipelines.
			"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
			"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
		},
	}

	// Locate the SASS sites and the loop amplification the paper warns
	// about ("especially detected in a for-loop").
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpATOM && in.Op != sass.OpRED {
			continue
		}
		note := "global atomic (" + in.Mnemonic() + "); typically a 100% L1 miss, resolved in L2 or DRAM"
		if v.CFG.InLoop(i) {
			f.InLoop = true
			note += "; inside a for-loop: repeated serialization amplifies the penalty"
		}
		f.Sites = append(f.Sites, v.site(i, note))
	}
	if f.InLoop {
		f.Severity = SeverityWarning
	}
	return []Finding{f}
}
