// Package scout is the GPUscout core: it connects the three analysis
// pillars of the paper — static SASS analysis, warp-stall sampling, and
// kernel-wide metrics (§3) — runs the §4 bottleneck detectors, and renders
// the text report (Figures 2 and 5).
package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/cupti"
	"gpuscout/internal/ncu"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Severity grades how much a finding is expected to matter, judged from
// the correlated stalls and metrics (the "assess its importance" part of
// the paper's abstract).
type Severity int

const (
	// SeverityInfo is informational (pattern present, low measured impact).
	SeverityInfo Severity = iota
	// SeverityWarning indicates measurable impact worth investigating.
	SeverityWarning
	// SeverityCritical indicates the bottleneck dominates kernel stalls.
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "INFO"
	case SeverityWarning:
		return "WARNING"
	default:
		return "CRITICAL"
	}
}

// Site is one code location a finding points at: the paper's promise is
// that "the problem description and source code line number are always
// attached".
type Site struct {
	PC   uint64
	Line int
	File string
	// SASS is the disassembled instruction at PC.
	SASS string
	// Note carries site-specific detail ("register R9", "inside a
	// for-loop", "spilled by IADD at line 7", ...).
	Note string
}

// Finding is one detected (potential) bottleneck.
type Finding struct {
	// Analysis names the detector, e.g. "vectorized_load".
	Analysis string
	// Title is the one-line recommendation headline.
	Title string
	// Problem explains the detected pattern.
	Problem string
	// Recommendation tells the user what change to consider.
	Recommendation string
	// Sites are the code locations involved, in program order.
	Sites []Site
	// InLoop reports whether the pattern sits inside a loop, which
	// amplifies it (§4.3, §4.4).
	InLoop bool
	// RelevantStalls lists the stall reasons to inspect for this finding
	// (correlated by the Warp Stalls pillar).
	RelevantStalls []sim.Stall
	// RelevantMetrics lists ncu metric names that assess the finding.
	RelevantMetrics []string
	// CautionMetrics lists metrics to watch after applying the fix
	// (e.g. register pressure after vectorizing, MIO stalls after
	// switching to shared atomics).
	CautionMetrics []string

	// Filled by the dynamic pillars (empty in --dry-run):
	Severity Severity
	// StallSummary lines describe the dominant stalls at the sites.
	StallSummary []string
	// MetricSummary lines present the metric analysis.
	MetricSummary []string

	// Verification is the measured counterfactual evidence for the
	// recommendation, attached by the advisor when the analysis ran with
	// verification enabled and an optimized variant is paired with this
	// finding (nil otherwise).
	Verification *Verification

	// RelevantStallShare is the fraction of all kernel stall samples that
	// are of this finding's relevant kinds at its flagged lines (the
	// attribution correlate computes; 0 in --dry-run).
	RelevantStallShare float64
	// EstSpeedup is the GPA-style modeled payoff ceiling: how much faster
	// the kernel could run if this finding's stalls were eliminated,
	// widened by measured sensitivity headroom when a sweep ran. Reports
	// are ordered by it (0 in --dry-run; ≥1 otherwise).
	EstSpeedup float64
	// Sensitivity is this finding's view of the microarchitectural sweep:
	// the perturbed re-simulations of the resources its bottleneck class
	// can be bound by (nil unless the advisor ran a sweep).
	Sensitivity *Sensitivity
	// StallSlices are the backward producer chains explaining the
	// highest-stall PCs at this finding's sites (nil unless the run asked
	// for slices).
	StallSlices []StallSlice
}

// PrimaryLine returns the first site's source line (0 when none).
func (f *Finding) PrimaryLine() int {
	if len(f.Sites) == 0 {
		return 0
	}
	return f.Sites[0].Line
}

// sortFindings orders findings by modeled payoff (GPA-style: estimated
// speedup, descending), then severity, then first PC. Dry-run reports
// have all-zero estimates and fall through to the severity order.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].EstSpeedup != fs[j].EstSpeedup {
			return fs[i].EstSpeedup > fs[j].EstSpeedup
		}
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		pi, pj := uint64(0), uint64(0)
		if len(fs[i].Sites) > 0 {
			pi = fs[i].Sites[0].PC
		}
		if len(fs[j].Sites) > 0 {
			pj = fs[j].Sites[0].PC
		}
		return pi < pj
	})
}

// SortFindings re-applies the report's payoff ordering. The advisor calls
// it after a sensitivity sweep widens the estimated speedups.
func (r *Report) SortFindings() { sortFindings(r.Findings) }

// Analysis is one standalone SASS detector. The modular design mirrors
// §3: "all analyses are standalone, hence new bottleneck analyses can
// easily be added".
type Analysis interface {
	// Name is the detector's identifier.
	Name() string
	// Detect runs the static pattern search on the prepared kernel view.
	Detect(k *KernelView) []Finding
}

// KernelView bundles the kernel with the static analyses every detector
// needs (CFG/loops, liveness, def-use), computed once.
type KernelView struct {
	Kernel   *sass.Kernel
	CFG      *sass.CFG
	Liveness *sass.Liveness
	DefUse   *sass.DefUse
}

// NewKernelView prepares the shared static analyses.
func NewKernelView(k *sass.Kernel) (*KernelView, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("scout: %w", err)
	}
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		return nil, fmt.Errorf("scout: %w", err)
	}
	return &KernelView{
		Kernel:   k,
		CFG:      cfg,
		Liveness: sass.ComputeLiveness(cfg),
		DefUse:   sass.ComputeDefUse(k),
	}, nil
}

// site builds a Site for instruction index i.
func (v *KernelView) site(i int, note string) Site {
	in := &v.Kernel.Insts[i]
	file := in.File
	if file == "" {
		file = v.Kernel.SourceFile
	}
	return Site{PC: in.PC, Line: in.Line, File: file, SASS: in.String(), Note: note}
}

// Report is the full result of one GPUscout run on one kernel.
type Report struct {
	Kernel   string
	Arch     string
	DryRun   bool
	Findings []Finding

	// Dynamic data (nil in --dry-run).
	Result  *sim.Result
	Samples *cupti.Report
	Metrics *ncu.MetricSet

	// Sensitivity is the full perturbation-matrix sweep for the kernel,
	// attached by the advisor (nil unless a sweep ran). Per-finding
	// filtered views live on the findings.
	Sensitivity *Sensitivity

	// Degradations is the ledger of everything this report lost to stage
	// failures or exhausted stage budgets — empty on a clean run. A
	// report either carries the data or an entry naming why it does not.
	Degradations []Degradation

	// Overhead accounting for the Fig. 6 analysis, in modeled SM cycles
	// (SASS analysis time is real wall time converted at the modeled
	// clock for comparability).
	OverheadSASSCycles     float64
	OverheadSamplingCycles float64
	OverheadMetricsCycles  float64
	KernelCycles           float64

	kernel *sass.Kernel // for quoting embedded source in the report
	view   *KernelView  // static analyses, for stall correlation
}
