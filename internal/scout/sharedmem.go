package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// SharedMemAnalysis implements §4.3 / Fig. 4: global loads whose data is
// used repeatedly — the same address loaded more than once, or a load
// inside a for-loop feeding several arithmetic instructions — are
// candidates for staging in shared memory.
type SharedMemAnalysis struct {
	// MinArithUses is the Fig. 4 arithmetic-instruction threshold;
	// defaults to 2.
	MinArithUses int
}

// Name implements Analysis.
func (SharedMemAnalysis) Name() string { return "shared_memory" }

// Detect implements Analysis.
func (a SharedMemAnalysis) Detect(v *KernelView) []Finding {
	minUses := a.MinArithUses
	if minUses <= 0 {
		minUses = 2
	}
	k := v.Kernel

	// Count repeated loads per (base, base version, offset) address.
	type addrKey struct {
		base sass.Reg
		def  int
		off  int64
	}
	loadsAt := map[addrKey][]int{}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDG {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok {
			continue
		}
		key := addrKey{mem.Reg, v.DefUse.LastDefBefore(mem.Reg, i), mem.Imm}
		loadsAt[key] = append(loadsAt[key], i)
	}

	var candidates []int
	notes := map[int]string{}
	for _, idxs := range loadsAt {
		for _, i := range idxs {
			in := &k.Insts[i]
			if len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdReg {
				continue
			}
			dst := in.Dst[0].Reg
			// Scope the count to this load's value: the allocator recycles
			// registers, and an unrelated later value's arithmetic must not
			// be credited to the load (sgemm_shared's staging loads would
			// otherwise inherit the tile-compute FFMAs).
			arith := v.DefUse.ArithUseCountAt(dst, i)
			repeated := len(idxs) > 1
			inLoop := v.CFG.InLoop(i)
			// Fig. 4: repeated access to the same data AND arithmetic use;
			// a loop amplifies the load's execution count.
			if arith < minUses || (!repeated && !inLoop) {
				continue
			}
			note := fmt.Sprintf("register %s: %d arithmetic use(s)", dst, arith)
			if repeated {
				note += fmt.Sprintf("; address loaded %d times", len(idxs))
			}
			if inLoop {
				note += "; load inside a for-loop (repeated global requests)"
			}
			candidates = append(candidates, i)
			notes[i] = note
		}
	}
	// Second pattern (§5.2 Jacobi): a stencil neighborhood. Several loads
	// off the SAME base address at small offsets straddling zero mean each
	// thread fetches its own element plus neighbors — adjacent threads
	// re-fetch overlapping data from global memory, the halo pattern whose
	// repair is shared-memory tiling. The within-thread reuse check above
	// cannot see this: every loaded value is used once per thread, the
	// reuse is across threads.
	type baseKey struct {
		base sass.Reg
		def  int
	}
	groups := map[baseKey]map[int64][]int{}
	for key, idxs := range loadsAt {
		bk := baseKey{key.base, key.def}
		if groups[bk] == nil {
			groups[bk] = map[int64][]int{}
		}
		groups[bk][key.off] = append(groups[bk][key.off], idxs...)
	}
	var stencilSites []int
	stencilNotes := map[int]string{}
	for _, offs := range groups {
		var min, max int64
		distinct := 0
		for off := range offs {
			if distinct == 0 || off < min {
				min = off
			}
			if distinct == 0 || off > max {
				max = off
			}
			distinct++
		}
		// A centered window: at least three distinct offsets, neighbors on
		// both sides of the thread's own element, within a cache line each
		// way.
		if distinct < 3 || min >= 0 || max <= 0 || max-min > 256 {
			continue
		}
		for off, idxs := range offs {
			for _, i := range idxs {
				stencilSites = append(stencilSites, i)
				stencilNotes[i] = fmt.Sprintf(
					"neighbor load at offset %+d of a %d-point window [%+d..%+d]",
					off, distinct, min, max)
			}
		}
	}

	// Third pattern (§5.3 SGEMM): a warp-uniform load in a loop. When a
	// loop load's address never depends on tid.x, all 32 lanes of a warp
	// request the same element every iteration — data that one thread
	// could stage into shared memory for the whole block. The naive SGEMM
	// inner product is the canonical case: its k-walking operand varies
	// only with the loop counter and tid.y.
	tainted := tidXTaint(v)
	var uniformSites []int
	uniformNotes := map[int]string{}
	for key, idxs := range loadsAt {
		if tainted[regDef{key.base, key.def}] {
			continue
		}
		for _, i := range idxs {
			in := &k.Insts[i]
			if !v.CFG.InLoop(i) || len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdReg {
				continue
			}
			if v.DefUse.ArithUseCountAt(in.Dst[0].Reg, i) == 0 {
				continue
			}
			uniformSites = append(uniformSites, i)
			uniformNotes[i] = fmt.Sprintf(
				"address (base %s) is uniform across the warp: every lane requests the same element each iteration",
				in.Dst[0].Reg)
		}
	}

	var out []Finding
	if len(uniformSites) > 0 {
		sort.Ints(uniformSites)
		uf := Finding{
			Analysis: "shared_memory",
			Title:    "Stage warp-uniform loop data in shared memory",
			Problem: fmt.Sprintf(
				"%d global load(s) in a loop use an address that does not depend on threadIdx.x; all 32 lanes of each warp fetch the same element every iteration, multiplying global traffic for data the block shares",
				len(uniformSites)),
			Recommendation: "stage the shared operand into __shared__ memory cooperatively (each thread copies a slice, then __syncthreads()), and read it from the tile inside the loop",
			InLoop:         true,
			RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
			RelevantMetrics: []string{
				"smsp__inst_executed_op_global_ld.sum",
				"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
			},
			CautionMetrics: []string{
				"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
				"smsp__inst_executed_op_shared_ld.sum",
				"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
				"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
			},
		}
		for _, i := range uniformSites {
			uf.Sites = append(uf.Sites, v.site(i, uniformNotes[i]))
		}
		out = append(out, uf)
	}
	if len(stencilSites) > 0 {
		sort.Ints(stencilSites)
		sf := Finding{
			Analysis: "shared_memory",
			Title:    "Stage the stencil neighborhood in shared memory",
			Problem: fmt.Sprintf(
				"%d global load(s) fetch a window of neighboring elements around each thread's own; adjacent threads re-request overlapping data from global memory every iteration",
				len(stencilSites)),
			Recommendation: "tile the block's working set (plus a halo) into __shared__ memory once, synchronize with __syncthreads(), and read neighbors from the tile; overlapping fetches then hit shared memory instead of L1TEX",
			RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
			RelevantMetrics: []string{
				"smsp__inst_executed_op_global_ld.sum",
				"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
				"l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
			},
			CautionMetrics: []string{
				"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
				"smsp__inst_executed_op_shared_ld.sum",
				"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
				"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
			},
		}
		for _, i := range stencilSites {
			if v.CFG.InLoop(i) {
				sf.InLoop = true
			}
			sf.Sites = append(sf.Sites, v.site(i, stencilNotes[i]))
		}
		out = append(out, sf)
	}

	if len(candidates) == 0 {
		return out
	}
	sort.Ints(candidates)

	f := Finding{
		Analysis: "shared_memory",
		Title:    "Consider staging reused global data in shared memory",
		Problem: fmt.Sprintf(
			"%d global load(s) feed repeated arithmetic on the same data; every repetition pays global-memory latency that shared memory (low-latency, per-block) would avoid",
			len(candidates)),
		Recommendation: "copy the reused data into __shared__ memory once per block (with __syncthreads()), and compute from there; profitable only when the data is reused enough to amortize the staging cost",
		RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
		RelevantMetrics: []string{
			"smsp__inst_executed_op_global_ld.sum",
			"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
		},
		CautionMetrics: []string{
			// §4.3: watch the bank-conflict ratio (transactions/accesses)
			// and MIO pressure after the change.
			"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
			"smsp__inst_executed_op_shared_ld.sum",
			"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
			"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
		},
	}
	for _, i := range candidates {
		if v.CFG.InLoop(i) {
			f.InLoop = true
		}
		f.Sites = append(f.Sites, v.site(i, notes[i]))
	}
	return append(out, f)
}
