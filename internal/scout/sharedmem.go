package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// SharedMemAnalysis implements §4.3 / Fig. 4: global loads whose data is
// used repeatedly — the same address loaded more than once, or a load
// inside a for-loop feeding several arithmetic instructions — are
// candidates for staging in shared memory.
type SharedMemAnalysis struct {
	// MinArithUses is the Fig. 4 arithmetic-instruction threshold;
	// defaults to 2.
	MinArithUses int
}

// Name implements Analysis.
func (SharedMemAnalysis) Name() string { return "shared_memory" }

// Detect implements Analysis.
func (a SharedMemAnalysis) Detect(v *KernelView) []Finding {
	minUses := a.MinArithUses
	if minUses <= 0 {
		minUses = 2
	}
	k := v.Kernel

	// Count repeated loads per (base, base version, offset) address.
	type addrKey struct {
		base sass.Reg
		def  int
		off  int64
	}
	loadsAt := map[addrKey][]int{}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDG {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok {
			continue
		}
		key := addrKey{mem.Reg, v.DefUse.LastDefBefore(mem.Reg, i), mem.Imm}
		loadsAt[key] = append(loadsAt[key], i)
	}

	var candidates []int
	notes := map[int]string{}
	for _, idxs := range loadsAt {
		for _, i := range idxs {
			in := &k.Insts[i]
			if len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdReg {
				continue
			}
			dst := in.Dst[0].Reg
			arith := v.DefUse.ArithUseCount(dst)
			repeated := len(idxs) > 1
			inLoop := v.CFG.InLoop(i)
			// Fig. 4: repeated access to the same data AND arithmetic use;
			// a loop amplifies the load's execution count.
			if arith < minUses || (!repeated && !inLoop) {
				continue
			}
			note := fmt.Sprintf("register %s: %d arithmetic use(s)", dst, arith)
			if repeated {
				note += fmt.Sprintf("; address loaded %d times", len(idxs))
			}
			if inLoop {
				note += "; load inside a for-loop (repeated global requests)"
			}
			candidates = append(candidates, i)
			notes[i] = note
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Ints(candidates)

	f := Finding{
		Analysis: "shared_memory",
		Title:    "Consider staging reused global data in shared memory",
		Problem: fmt.Sprintf(
			"%d global load(s) feed repeated arithmetic on the same data; every repetition pays global-memory latency that shared memory (low-latency, per-block) would avoid",
			len(candidates)),
		Recommendation: "copy the reused data into __shared__ memory once per block (with __syncthreads()), and compute from there; profitable only when the data is reused enough to amortize the staging cost",
		RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
		RelevantMetrics: []string{
			"smsp__inst_executed_op_global_ld.sum",
			"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
		},
		CautionMetrics: []string{
			// §4.3: watch the bank-conflict ratio (transactions/accesses)
			// and MIO pressure after the change.
			"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum",
			"smsp__inst_executed_op_shared_ld.sum",
			"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
			"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
		},
	}
	for _, i := range candidates {
		if v.CFG.InLoop(i) {
			f.InLoop = true
		}
		f.Sites = append(f.Sites, v.site(i, notes[i]))
	}
	return []Finding{f}
}
