package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// ReadOnlyAnalysis implements §4.5: global loads whose pointer is never
// stored through and whose destination registers stay read-only for the
// rest of the kernel can be marked const __restrict__, letting the
// compiler route them through the read-only data cache (LDG.E.NC) and
// reorder accesses more aggressively.
type ReadOnlyAnalysis struct{}

// Name implements Analysis.
func (ReadOnlyAnalysis) Name() string { return "readonly_cache" }

// Detect implements Analysis.
func (ReadOnlyAnalysis) Detect(v *KernelView) []Finding {
	k := v.Kernel
	// Group candidate loads by base-pointer register.
	byBase := map[sass.Reg][]int{}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDG || in.IsNC() {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok || v.DefUse.PointerStoredThroughAt(mem.Reg, i) {
			continue
		}
		byBase[mem.Reg] = append(byBase[mem.Reg], i)
	}
	if len(byBase) == 0 {
		return nil
	}
	bases := make([]sass.Reg, 0, len(byBase))
	for b := range byBase {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	var findings []Finding
	for _, base := range bases {
		idxs := byBase[base]
		f := Finding{
			Analysis: "readonly_cache",
			Title:    "Mark read-only pointer with const __restrict__",
			Problem: fmt.Sprintf(
				"%d global load(s) through pointer pair %s/%s are read-only for the whole kernel and the pointer is never stored through — but they do not use the read-only data cache (no LDG.E.NC)",
				len(idxs), base, base+1),
			Recommendation: "declare the kernel parameter as const T* __restrict__: the compiler can route loads through the read-only cache and optimize the order of memory accesses",
			RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
			RelevantMetrics: []string{
				"l1tex__t_sectors_pipe_tex_mem_texture.sum",
				"l1tex__t_sector_pipe_tex_mem_texture_hit_rate.pct",
				"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
			},
			CautionMetrics: []string{
				// §4.5: "unless the corresponding register pressure is too
				// high" — the compiler may extend live ranges.
				"launch__registers_per_thread",
				"sm__warps_active.avg.pct_of_peak_sustained_active",
			},
		}
		for _, i := range idxs {
			note := "read-only load; +%d registers live here"
			f.Sites = append(f.Sites, v.site(i, fmt.Sprintf(note, v.Liveness.ExtraRegs(i))))
			if v.CFG.InLoop(i) {
				f.InLoop = true
			}
		}
		findings = append(findings, f)
	}
	return findings
}
