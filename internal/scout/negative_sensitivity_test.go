package scout_test

import (
	"context"
	"testing"

	"gpuscout/internal/advisor"
	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// TestSweepNeutralOnOptimizedVariants is the sensitivity analogue of
// TestDetectorsSilentOnOptimizedVariants: after applying a recommended
// fix, re-simulating the fixed kernel under the perturbation matrix must
// show no dominant sensitivity on the resource class that fix relieved —
// relieving shared-memory banks further cannot speed up a kernel whose
// bank conflicts are already padded away. The check is scoped to the
// fix's own resources, not the whole matrix: an optimized kernel is still
// a real kernel and legitimately remains sensitive to resources the fix
// never touched (a vectorized mixbench saturates DRAM bandwidth harder,
// not less).
func TestSweepNeutralOnOptimizedVariants(t *testing.T) {
	cases := []struct {
		workload string
		scale    int
		// relieved lists the resources the workload's fix addressed; the
		// sweep's helping-direction relief on each must stay inside the
		// neutral band.
		relieved []string
	}{
		{"transpose_padded", 64, []string{gpu.ResourceSharedBanks}},
		{"spill_relief", 0, []string{gpu.ResourceL1Capacity, gpu.ResourceL2Capacity}},
		{"mixbench_sp_vec4", 4, []string{gpu.ResourceIssueWidth, gpu.ResourceScoreboards}},
		{"mixbench_int_vec4", 4, []string{gpu.ResourceIssueWidth, gpu.ResourceScoreboards}},
		{"jacobi_texture", 128, []string{gpu.ResourceL1Capacity}},
		{"jacobi_restrict", 128, []string{gpu.ResourceL1Capacity}},
		{"jacobi_shared", 128, []string{gpu.ResourceSharedBanks}},
		{"sgemm_shared", 64, []string{gpu.ResourceSharedBanks}},
		{"histogram_shared", 4, []string{gpu.ResourceSharedBanks}},
		{"reduction_shfl", 0, []string{gpu.ResourceSharedBanks}},
	}
	for _, arch := range negativeArches() {
		for _, tc := range cases {
			t.Run(arch.SM+"/"+tc.workload, func(t *testing.T) {
				cfg := sim.Config{SampleSMs: 1}
				w, err := workloads.BuildArch(tc.workload, tc.scale, arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				run := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
					return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), c)
				}
				rep, err := scout.AnalyzeContext(context.Background(), arch, w.Kernel, run,
					scout.Options{Sim: cfg})
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				s, err := advisor.Sweep(context.Background(), rep, tc.workload, tc.scale, arch, cfg)
				if err != nil {
					t.Fatalf("Sweep: %v", err)
				}
				sub := &scout.Sensitivity{BaselineCycles: s.BaselineCycles}
				want := map[string]bool{}
				for _, r := range tc.relieved {
					want[r] = true
				}
				for _, d := range s.Deltas {
					if want[d.Resource] {
						sub.Deltas = append(sub.Deltas, d)
					}
				}
				if len(sub.Deltas) != 2*len(tc.relieved) {
					t.Fatalf("sweep covered %d deltas on %v, want %d",
						len(sub.Deltas), tc.relieved, 2*len(tc.relieved))
				}
				sub.Rank()
				if sub.Dominant != "" {
					t.Errorf("%s is still sensitive to %s after its fix (relief %.4f, neutral band %.2f)",
						tc.workload, sub.Dominant, sub.DominantRelief, scout.NeutralSensitivity)
				}
			})
		}
	}
}
