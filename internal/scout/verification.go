package scout

import "fmt"

// Verdict is the outcome of counterfactually verifying a recommendation:
// the paired optimized kernel was actually re-executed, so the verdict is
// a measurement, not an estimate (contrast GPA's projected speedups).
type Verdict string

const (
	// VerdictConfirmed: the optimized variant ran measurably faster.
	VerdictConfirmed Verdict = "confirmed"
	// VerdictNeutral: the change made no measurable difference (within
	// the ±2% noise band), like the paper's "+0.3%" __restrict__ result
	// on Jacobi (§5.2).
	VerdictNeutral Verdict = "neutral"
	// VerdictRefuted: the "fix" regressed — e.g. shared-memory staging
	// whose halo overhead is not amortized at a small problem size.
	VerdictRefuted Verdict = "refuted"
)

// MetricDelta is one ncu metric measured before (on the analyzed kernel)
// and after (on the optimized variant).
type MetricDelta struct {
	Name   string
	Before float64
	After  float64
}

// Delta returns the relative change in percent (0 when Before is 0).
func (d MetricDelta) Delta() float64 {
	if d.Before == 0 {
		return 0
	}
	return 100 * (d.After - d.Before) / d.Before
}

// StallDelta is one stall reason's share of kernel stalls before/after.
type StallDelta struct {
	Stall  string
	Before float64 // share of stall samples, 0..1
	After  float64
}

// Verification is the counterfactual evidence attached to a finding: the
// advisor mapped the recommendation to its optimized workload variant,
// re-ran it under the same sim.Config, and recorded what changed.
type Verification struct {
	// Workload is the baseline workload the report analyzed.
	Workload string
	// Fixed is the optimized variant that implements the recommendation.
	Fixed string
	// Change summarizes the source-level difference between the two.
	Change string
	// BaselineCycles and FixedCycles are the measured kernel durations.
	BaselineCycles float64
	FixedCycles    float64
	// Speedup is BaselineCycles / FixedCycles (>1 = the fix helped).
	Speedup float64
	// Verdict grades the measurement.
	Verdict Verdict
	// StallDeltas covers the finding's relevant stall reasons.
	StallDeltas []StallDelta
	// MetricDeltas covers the finding's relevant and caution metrics
	// that changed.
	MetricDeltas []MetricDelta
}

// Grade converts a measured speedup into a verdict. The ±2% band absorbs
// simulation-placement noise so tiny shifts read as "neutral".
func Grade(speedup float64) Verdict {
	switch {
	case speedup >= 1.02:
		return VerdictConfirmed
	case speedup <= 0.98:
		return VerdictRefuted
	default:
		return VerdictNeutral
	}
}

// Summary is the one-line form used in reports and logs.
func (v *Verification) Summary() string {
	return fmt.Sprintf("%s: %s -> %s runs %.2fx (%s -> %s cycles)",
		v.Verdict, v.Workload, v.Fixed, v.Speedup,
		humanCycles(v.BaselineCycles), humanCycles(v.FixedCycles))
}

func humanCycles(c float64) string {
	switch {
	case c >= 1e6:
		return fmt.Sprintf("%.3gM", c/1e6)
	case c >= 1e3:
		return fmt.Sprintf("%.3gk", c/1e3)
	default:
		return fmt.Sprintf("%.0f", c)
	}
}
