package scout_test

import (
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/workloads"
)

// TestDetectorsSilentOnOptimizedVariants is the negative half of the §5
// case studies: after applying the recommended fix, the detector that
// recommended it must stop firing (or drop to informational). A detector
// that still flags its own fix would send users in circles.
func TestDetectorsSilentOnOptimizedVariants(t *testing.T) {
	cases := []struct {
		workload string
		analysis string
		// allowInfo permits an informational-severity residue: the
		// shared-atomics detector reports "atomics now in shared memory"
		// as INFO on the fixed kernels, which is the desired outcome, not
		// a recommendation to change anything.
		allowInfo bool
	}{
		{"mixbench_sp_vec4", "vectorized_load", false},
		{"mixbench_int_vec4", "vectorized_load", false},
		{"mixbench_dp_vec4", "vectorized_load", false},
		{"jacobi_shared", "shared_memory", false},
		{"jacobi_restrict", "readonly_cache", false},
		{"jacobi_texture", "texture_memory", false},
		{"sgemm_restrict", "readonly_cache", false},
		{"sgemm_shared", "shared_memory", false},
		{"spill_relief", "register_spilling", false},
		{"transpose_padded", "bank_conflicts", false},
		{"histogram_shared", "shared_atomics", true},
		{"reduction_shfl", "shared_atomics", true},
	}
	for _, arch := range negativeArches() {
		for _, tc := range cases {
			t.Run(arch.SM+"/"+tc.workload+"/"+tc.analysis, func(t *testing.T) {
				w, err := workloads.BuildArch(tc.workload, 0, arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				rep, err := scout.Analyze(arch, w.Kernel, nil, scout.Options{DryRun: true})
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				for i := range rep.Findings {
					f := &rep.Findings[i]
					if f.Analysis != tc.analysis {
						continue
					}
					if tc.allowInfo && f.Severity == scout.SeverityInfo {
						continue
					}
					t.Errorf("%s still fires on %s: [%s] %s",
						tc.analysis, tc.workload, f.Severity, f.Title)
				}
			})
		}
	}
}

// negativeArches lists the backends the negative/positive control suites
// run on: a fixed kernel must stay fixed — and a broken one broken — on
// every supported lowering, not just Volta.
func negativeArches() []gpu.Arch {
	return []gpu.Arch{gpu.V100(), gpu.A100()}
}

// TestDetectorsFireOnBaselines is the matching positive control: the same
// detectors do fire on the naive variants, so the silence above means
// "fixed", not "detector broken".
func TestDetectorsFireOnBaselines(t *testing.T) {
	cases := []struct {
		workload string
		analysis string
		scale    int
	}{
		{"mixbench_sp_naive", "vectorized_load", 0},
		{"jacobi_naive", "shared_memory", 0},
		{"jacobi_naive", "texture_memory", 0},
		{"sgemm_naive", "readonly_cache", 0},
		{"sgemm_naive", "shared_memory", 0},
		{"spill_pressure", "register_spilling", 0},
		{"transpose_shared", "bank_conflicts", 0},
		{"histogram_global", "shared_atomics", 0},
		{"reduction_atomic", "shared_atomics", 0},
	}
	for _, arch := range negativeArches() {
		for _, tc := range cases {
			t.Run(arch.SM+"/"+tc.workload+"/"+tc.analysis, func(t *testing.T) {
				w, err := workloads.BuildArch(tc.workload, tc.scale, arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				rep, err := scout.Analyze(arch, w.Kernel, nil, scout.Options{DryRun: true})
				if err != nil {
					t.Fatalf("analyze: %v", err)
				}
				for i := range rep.Findings {
					if rep.Findings[i].Analysis == tc.analysis {
						return
					}
				}
				t.Errorf("%s does not fire on baseline %s", tc.analysis, tc.workload)
			})
		}
	}
}
