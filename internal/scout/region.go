package scout

import (
	"fmt"
	"sort"
	"strings"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// RegionProfile is the §7 future-work feature ("injecting PTX
// instructions around specific code regions of interest to collect
// further metrics"), realized without instrumentation: the simulator's
// exact per-PC integrals are sliced to a source-line range, yielding the
// same per-region characterization region markers would produce.
type RegionProfile struct {
	Kernel             string
	FromLine, ToLine   int
	Instructions       []uint64 // PCs attributed to the region
	IssuedWarpInsts    float64  // warp instructions issued in the region
	StallSamples       float64  // non-bookkeeping stall samples in the region
	ShareOfKernel      float64  // region stall samples / kernel stall samples
	TopStalls          []RegionStall
	MemoryInstructions map[string]int // static counts by space (global/shared/local/texture/atomic)
}

// RegionStall is one stall reason's share within the region.
type RegionStall struct {
	Stall sim.Stall
	Share float64
}

// ProfileRegion computes the profile of the source-line range
// [fromLine, toLine]. It requires a non-dry-run report.
func (r *Report) ProfileRegion(fromLine, toLine int) (*RegionProfile, error) {
	if r.Samples == nil || r.kernel == nil {
		return nil, fmt.Errorf("scout: region profiling needs a full (non-dry-run) report")
	}
	if fromLine > toLine {
		return nil, fmt.Errorf("scout: empty region %d..%d", fromLine, toLine)
	}
	p := &RegionProfile{
		Kernel:             r.Kernel,
		FromLine:           fromLine,
		ToLine:             toLine,
		MemoryInstructions: map[string]int{},
	}

	inRegion := map[uint64]bool{}
	for i := range r.kernel.Insts {
		in := &r.kernel.Insts[i]
		if in.Line < fromLine || in.Line > toLine {
			continue
		}
		inRegion[in.PC] = true
		p.Instructions = append(p.Instructions, in.PC)
		switch in.Op {
		case sass.OpLDG, sass.OpSTG:
			p.MemoryInstructions["global"]++
		case sass.OpLDS, sass.OpSTS:
			p.MemoryInstructions["shared"]++
		case sass.OpLDL, sass.OpSTL:
			p.MemoryInstructions["local"]++
		case sass.OpTEX:
			p.MemoryInstructions["texture"]++
		case sass.OpATOM, sass.OpATOMS, sass.OpRED:
			p.MemoryInstructions["atomic"]++
		}
	}
	if len(p.Instructions) == 0 {
		return nil, fmt.Errorf("scout: no instructions attributed to lines %d..%d", fromLine, toLine)
	}

	var regionStalls [sim.NumStalls]float64
	var kernelTotal float64
	for pc, integ := range r.Result.Counters.PCStalls {
		for s := sim.Stall(0); s < sim.NumStalls; s++ {
			samples := integ[s] / r.Samples.PeriodCycles
			if s == sim.StallSelected {
				if inRegion[pc] {
					// One "selected" sample per period per issue cycle:
					// scale back to issued instructions.
					p.IssuedWarpInsts += integ[s]
				}
				continue
			}
			if s != sim.StallNotSelected {
				kernelTotal += samples
			}
			if inRegion[pc] && s != sim.StallNotSelected {
				regionStalls[s] += samples
				p.StallSamples += samples
			}
		}
	}
	if kernelTotal > 0 {
		p.ShareOfKernel = p.StallSamples / kernelTotal
	}
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if regionStalls[s] > 0 && p.StallSamples > 0 {
			p.TopStalls = append(p.TopStalls, RegionStall{s, regionStalls[s] / p.StallSamples})
		}
	}
	sort.Slice(p.TopStalls, func(i, j int) bool { return p.TopStalls[i].Share > p.TopStalls[j].Share })
	return p, nil
}

// Render formats the region profile as text.
func (p *RegionProfile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Region profile — %s, lines %d..%d\n", p.Kernel, p.FromLine, p.ToLine)
	fmt.Fprintf(&b, "  %d SASS instructions; %.4g warp instructions issued\n",
		len(p.Instructions), p.IssuedWarpInsts)
	fmt.Fprintf(&b, "  %.4g stall samples = %.1f%% of the kernel's stalls\n",
		p.StallSamples, 100*p.ShareOfKernel)
	if len(p.MemoryInstructions) > 0 {
		keys := make([]string, 0, len(p.MemoryInstructions))
		for k := range p.MemoryInstructions {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  memory instructions:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, p.MemoryInstructions[k])
		}
		b.WriteString("\n")
	}
	for i, ts := range p.TopStalls {
		if i >= 4 {
			break
		}
		fmt.Fprintf(&b, "  %-22s %6.1f%%\n", ts.Stall, 100*ts.Share)
	}
	return b.String()
}
