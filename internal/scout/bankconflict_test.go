package scout

import (
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func TestBankConflictDetector(t *testing.T) {
	// The unpadded transpose tile read strides threadIdx.x by 128 bytes:
	// a statically predictable 32-way conflict.
	rep := analyzeWorkload(t, "transpose_shared", 128, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	bc := m["bank_conflicts"]
	if len(bc) == 0 {
		t.Fatal("bank_conflicts did not fire on the unpadded transpose")
	}
	f := bc[0]
	if f.PrimaryLine() != 10 {
		t.Errorf("finding points at line %d, want 10 (the column read)", f.PrimaryLine())
	}
	if !strings.Contains(f.Sites[0].Note, "32-way") {
		t.Errorf("note lacks the predicted conflict degree: %q", f.Sites[0].Note)
	}
	// The runtime §4.3 ratio confirms the static prediction.
	joined := strings.Join(f.MetricSummary, "\n")
	if !strings.Contains(joined, "32.00-way") && !strings.Contains(joined, "= 32.0") {
		t.Errorf("metric summary lacks the measured 32-way ratio:\n%s", joined)
	}
	if f.Severity < SeverityWarning {
		t.Errorf("severity = %v, want >= WARNING (conflicts dominate)", f.Severity)
	}

	// The padded tile is clean.
	repP := analyzeWorkload(t, "transpose_padded", 128, Options{Sim: sim.Config{SampleSMs: 1}})
	if got := findingsByAnalysis(repP)["bank_conflicts"]; len(got) != 0 {
		t.Errorf("bank_conflicts fired on the padded tile: %+v", got[0].Sites)
	}

	// Row-wise shared access in SGEMM is also clean (threadIdx.y stride).
	repS := analyzeWorkload(t, "sgemm_shared", 64, Options{Sim: sim.Config{SampleSMs: 1}})
	if got := findingsByAnalysis(repS)["bank_conflicts"]; len(got) != 0 {
		t.Errorf("bank_conflicts false positive on sgemm_shared: %+v", got[0].Sites)
	}
}
