package scout

import (
	"fmt"
	"sort"
	"strings"

	"gpuscout/internal/sim"
)

// SourceView renders the Fig. 7 'Source Code' + 'SASS Instructions'
// correlated view as text: every source line with its sampled-stall
// profile and the SASS instructions attributed to it, so the user can
// walk from a hot line to the exact machine instructions (and back).
//
// The per-line heat column uses the share of all (non-bookkeeping) stall
// samples attributed to the line; findings flagged by the detectors are
// marked in the margin.
func (r *Report) SourceView() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Source/SASS view — %s (%s)\n", r.Kernel, r.Arch)
	if r.kernel == nil {
		return b.String() + "(no kernel attached)\n"
	}

	// Which lines carry findings, for the margin markers.
	flagged := map[int][]string{}
	for i := range r.Findings {
		f := &r.Findings[i]
		for _, s := range f.Sites {
			found := false
			for _, a := range flagged[s.Line] {
				if a == f.Analysis {
					found = true
				}
			}
			if !found {
				flagged[s.Line] = append(flagged[s.Line], f.Analysis)
			}
		}
	}

	// Total samples for normalization (dry runs have none).
	var total float64
	if r.Samples != nil {
		for l := range lineSet(r) {
			agg := r.Samples.AtLine(l)
			for s := sim.Stall(0); s < sim.NumStalls; s++ {
				if s == sim.StallSelected || s == sim.StallNotSelected {
					continue
				}
				total += agg[s]
			}
		}
	}

	lines := r.kernel.Lines()
	// Include unattributed source lines for completeness.
	maxLine := len(r.kernel.Source)
	for _, l := range lines {
		if l > maxLine {
			maxLine = l
		}
	}
	attributed := map[int]bool{}
	for _, l := range lines {
		attributed[l] = true
	}

	for line := 1; line <= maxLine; line++ {
		src := r.kernel.SourceLine(line)
		if src == "" && !attributed[line] {
			continue
		}
		heat := ""
		if r.Samples != nil && total > 0 {
			agg := r.Samples.AtLine(line)
			var lineTotal float64
			for s := sim.Stall(0); s < sim.NumStalls; s++ {
				if s == sim.StallSelected || s == sim.StallNotSelected {
					continue
				}
				lineTotal += agg[s]
			}
			share := lineTotal / total
			heat = fmt.Sprintf("%5.1f%% %-10s", 100*share, bar(share, 10))
		}
		mark := "  "
		if len(flagged[line]) > 0 {
			mark = "! "
		}
		fmt.Fprintf(&b, "%s%4d %s| %s\n", mark, line, heat, src)
		if len(flagged[line]) > 0 {
			fmt.Fprintf(&b, "      %s^ findings: %s\n", strings.Repeat(" ", len(heat)), strings.Join(flagged[line], ", "))
		}
		if !attributed[line] {
			continue
		}
		// SASS instructions for the line with their dominant stall.
		for _, pc := range r.kernel.PCsForLine(line) {
			in := r.kernel.InstAt(pc)
			stall := ""
			if r.Samples != nil {
				if top := r.Samples.TopStallsAtPC(pc, 1); len(top) > 0 {
					stall = fmt.Sprintf("   <- %s", top[0].Stall)
				}
			}
			fmt.Fprintf(&b, "      %s| %s%s\n", strings.Repeat(" ", len(heat)), in.String(), stall)
		}
	}
	return b.String()
}

// lineSet collects the lines with attributed instructions.
func lineSet(r *Report) map[int]bool {
	set := map[int]bool{}
	for _, l := range r.kernel.Lines() {
		set[l] = true
	}
	return set
}

// bar renders a proportional ASCII bar.
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// HottestLines returns the source lines ordered by stall-sample share
// (descending), up to max entries — the "where should I look first" list.
func (r *Report) HottestLines(max int) []LineHeat {
	if r.Samples == nil || r.kernel == nil {
		return nil
	}
	var out []LineHeat
	var total float64
	for _, line := range r.kernel.Lines() {
		agg := r.Samples.AtLine(line)
		var lineTotal float64
		var topStall sim.Stall
		var topVal float64
		for s := sim.Stall(0); s < sim.NumStalls; s++ {
			if s == sim.StallSelected || s == sim.StallNotSelected {
				continue
			}
			lineTotal += agg[s]
			if agg[s] > topVal {
				topVal, topStall = agg[s], s
			}
		}
		if lineTotal == 0 {
			continue
		}
		total += lineTotal
		out = append(out, LineHeat{Line: line, Samples: lineTotal, TopStall: topStall, Source: r.kernel.SourceLine(line)})
	}
	for i := range out {
		if total > 0 {
			out[i].Share = out[i].Samples / total
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Samples > out[j].Samples })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// LineHeat is one entry of the hottest-lines profile.
type LineHeat struct {
	Line     int
	Source   string
	Samples  float64
	Share    float64
	TopStall sim.Stall
}
