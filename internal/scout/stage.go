package scout

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"gpuscout/internal/faultinject"
)

// Pipeline stage names, shared by StageError, Degradation, StageBudgets
// and the service metrics. "parse" covers kernel resolution (SASS parse,
// cubin decode, workload build, KernelView construction); "scout" the
// static detector passes; "sim" the dynamic pillars (simulated launch,
// PC-sampling and metric collection); "verify" the advisor's
// counterfactual re-runs.
const (
	StageParse  = "parse"
	StageScout  = "scout"
	StageSim    = "sim"
	StageVerify = "verify"
)

// StageError is a typed, site-attributed pipeline failure: which stage
// died, at which instrumented site, and whether it was a recovered panic
// (carrying the trimmed stack) or an ordinary error.
type StageError struct {
	// Stage is one of StageParse/StageScout/StageSim/StageVerify.
	Stage string
	// Site names the instrumented location, e.g. "cubin.decode" or
	// "scout.detector.bank_conflicts".
	Site string
	// Err is the underlying error (for a panic, a synthesized one).
	Err error
	// PanicValue is non-nil when the error was converted from a panic.
	PanicValue any
	// Stack holds the goroutine stack captured at recover time.
	Stack []byte
}

func (e *StageError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("stage %s: panic at %s: %v", e.Stage, e.Site, e.PanicValue)
	}
	return fmt.Sprintf("stage %s: %s: %v", e.Stage, e.Site, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Transient reports whether retrying the same input might succeed: a
// recovered panic (unless caused by context expiry) or an injected
// fault. Deterministic input errors — malformed SASS, an undecodable
// cubin — are not transient; retrying them only re-burns a worker.
func (e *StageError) Transient() bool {
	if e.Err != nil && (errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded)) {
		return false
	}
	return e.PanicValue != nil || errors.Is(e.Err, faultinject.ErrInjected)
}

// TransientError reports whether err is (or wraps) a transient
// StageError — the pool's retry predicate.
func TransientError(err error) bool {
	var se *StageError
	return errors.As(err, &se) && se.Transient()
}

// newPanicError converts a recovered panic value into a StageError. An
// injected panic names its own site; real panics are attributed to the
// site the guard was protecting.
func newPanicError(stage, site string, r any) *StageError {
	if ip, ok := r.(*faultinject.InjectedPanic); ok {
		site = ip.Site
	}
	return &StageError{
		Stage:      stage,
		Site:       site,
		Err:        fmt.Errorf("panic: %v", r),
		PanicValue: r,
		Stack:      debug.Stack(),
	}
}

// guard runs fn, converting a panic into a *StageError attributed to
// (stage, site). Non-panic errors returned by fn that are not already
// StageErrors are wrapped so every failure path carries its site.
func Guard(stage, site string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(stage, site, r)
		}
	}()
	if err := fn(); err != nil {
		var se *StageError
		if errors.As(err, &se) {
			return err
		}
		return &StageError{Stage: stage, Site: site, Err: err}
	}
	return nil
}

// Degradation records one thing a report lost on its way out: the stage
// and site that failed, how ("panic", "timeout", "error"), and what the
// loss means for the reader. The ledger is the contract that nothing is
// ever dropped silently — a report either carries the data or an entry
// naming exactly why it does not.
type Degradation struct {
	Stage  string `json:"stage"`
	Site   string `json:"site"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Degradation kinds.
const (
	DegradePanic   = "panic"
	DegradeTimeout = "timeout"
	DegradeError   = "error"
)

// degradationFrom classifies a stage failure into a ledger entry.
// stageCtxExpired tells the classifier the stage's own deadline (not the
// job's) is what expired.
func DegradationFor(stage, site string, err error, stageCtxExpired bool) Degradation {
	d := Degradation{Stage: stage, Site: site, Kind: DegradeError}
	var se *StageError
	if errors.As(err, &se) {
		d.Site = se.Site
		if se.PanicValue != nil {
			d.Kind = DegradePanic
		}
	}
	if d.Kind != DegradePanic && (stageCtxExpired || errors.Is(err, context.DeadlineExceeded)) {
		d.Kind = DegradeTimeout
	}
	d.Detail = err.Error()
	return d
}

// StageBudgets splits a job's deadline into per-stage slices, as
// fractions of the total budget. Each stage's slice is measured from the
// moment the stage starts, so time an early stage leaves unused rolls
// forward; the job deadline still caps everything. The zero value means
// "use the defaults" (parse 5% / sim 55% / scout 15% / verify 25%);
// Disabled turns staged degradation off so a slow simulation consumes
// the whole job budget and times the job out, pre-PR-5 style.
type StageBudgets struct {
	Parse  float64
	Sim    float64
	Scout  float64
	Verify float64
	// Disabled turns staged deadlines off entirely.
	Disabled bool
}

// DefaultStageBudgets returns the standard split.
func DefaultStageBudgets() StageBudgets {
	return StageBudgets{Parse: 0.05, Sim: 0.55, Scout: 0.15, Verify: 0.25}
}

// normalized resolves the zero value to the defaults and rescales the
// fractions to sum to 1. Negative fractions are clamped to 0.
func (b StageBudgets) normalized() StageBudgets {
	if b.Disabled {
		return b
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	b.Parse, b.Sim, b.Scout, b.Verify = clamp(b.Parse), clamp(b.Sim), clamp(b.Scout), clamp(b.Verify)
	sum := b.Parse + b.Sim + b.Scout + b.Verify
	if sum == 0 {
		return DefaultStageBudgets()
	}
	b.Parse /= sum
	b.Sim /= sum
	b.Scout /= sum
	b.Verify /= sum
	return b
}

// SliceOf returns the stage's share of a total job budget (zero when
// staged deadlines are disabled or the stage is unknown).
func (b StageBudgets) SliceOf(stage string, total time.Duration) time.Duration {
	if b.Disabled || total <= 0 {
		return 0
	}
	n := b.normalized()
	var frac float64
	switch stage {
	case StageParse:
		frac = n.Parse
	case StageSim:
		frac = n.Sim
	case StageScout:
		frac = n.Scout
	case StageVerify:
		frac = n.Verify
	}
	return time.Duration(frac * float64(total))
}

// String renders the budgets in the -stage-budgets flag syntax.
func (b StageBudgets) String() string {
	if b.Disabled {
		return "off"
	}
	n := b.normalized()
	pct := func(v float64) string {
		// Precision 10 hides normalization round-off (55.00000000000001).
		return strconv.FormatFloat(v*100, 'g', 10, 64)
	}
	return pct(n.Parse) + "," + pct(n.Sim) + "," + pct(n.Scout) + "," + pct(n.Verify)
}

// ParseStageBudgets parses the -stage-budgets flag: "off" disables
// staged degradation; otherwise four comma-separated non-negative
// weights for parse,sim,scout,verify (percentages or fractions — only
// the ratio matters), e.g. "5,55,15,25". An empty string selects the
// defaults.
func ParseStageBudgets(s string) (StageBudgets, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return StageBudgets{}, nil
	case "off", "none", "disabled":
		return StageBudgets{Disabled: true}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return StageBudgets{}, fmt.Errorf("stage budgets %q: want four comma-separated weights (parse,sim,scout,verify) or \"off\"", s)
	}
	vals := make([]float64, 4)
	sum := 0.0
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return StageBudgets{}, fmt.Errorf("stage budgets %q: weight %d: %w", s, i+1, err)
		}
		if v < 0 {
			return StageBudgets{}, fmt.Errorf("stage budgets %q: weight %d is negative", s, i+1)
		}
		vals[i] = v
		sum += v
	}
	if sum == 0 {
		return StageBudgets{}, fmt.Errorf("stage budgets %q: all weights are zero", s)
	}
	return StageBudgets{Parse: vals[0], Sim: vals[1], Scout: vals[2], Verify: vals[3]}, nil
}

// Fault-injection sites owned by the scout pipeline. The per-detector
// sites are registered in an init in scout.go (they derive from the
// detector set).
var (
	siteParse     = faultinject.Register("scout.parse")
	siteCorrelate = faultinject.Register("scout.correlate")
	siteSlice     = faultinject.Register("scout.slice")
)

// DetectorSite names the fault-injection site of one detector.
func DetectorSite(name string) string { return "scout.detector." + name }

func init() {
	for _, a := range AllAnalyses() {
		faultinject.Register(DetectorSite(a.Name()))
	}
}
