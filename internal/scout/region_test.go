package scout

import (
	"math"
	"strings"
	"testing"

	"gpuscout/internal/sim"
)

func TestProfileRegion(t *testing.T) {
	rep := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})

	// The loop body (lines 5-10) must dominate the kernel's stalls.
	loop, err := rep.ProfileRegion(5, 10)
	if err != nil {
		t.Fatalf("ProfileRegion: %v", err)
	}
	if loop.ShareOfKernel < 0.9 {
		t.Errorf("loop region share = %.2f, want > 0.9", loop.ShareOfKernel)
	}
	if loop.MemoryInstructions["global"] != 8 {
		t.Errorf("region global memory instructions = %d, want 8", loop.MemoryInstructions["global"])
	}
	if len(loop.TopStalls) == 0 || loop.TopStalls[0].Stall != sim.StallLongScoreboard {
		t.Errorf("region top stall = %v, want long_scoreboard", loop.TopStalls)
	}
	if loop.IssuedWarpInsts <= 0 {
		t.Error("no issued instructions in region")
	}

	// The epilogue (lines 11-13) is a small share.
	epi, err := rep.ProfileRegion(11, 13)
	if err != nil {
		t.Fatalf("epilogue: %v", err)
	}
	if epi.ShareOfKernel >= loop.ShareOfKernel {
		t.Error("epilogue region out-weighs the loop")
	}
	// Shares are complementary-ish (plus the prologue).
	if s := loop.ShareOfKernel + epi.ShareOfKernel; s > 1.0001 {
		t.Errorf("region shares exceed 1: %v", s)
	}
	if math.IsNaN(loop.StallSamples) {
		t.Error("NaN samples")
	}

	text := loop.Render()
	for _, want := range []string{"Region profile", "lines 5..10", "global=8", "long_scoreboard"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}

	// Errors.
	if _, err := rep.ProfileRegion(10, 5); err == nil {
		t.Error("accepted inverted region")
	}
	if _, err := rep.ProfileRegion(100, 200); err == nil {
		t.Error("accepted empty region")
	}
	dry := analyzeWorkload(t, "mixbench_sp_naive", 4, Options{DryRun: true})
	if _, err := dry.ProfileRegion(5, 10); err == nil {
		t.Error("dry-run region profiling succeeded")
	}
}
