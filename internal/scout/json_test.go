package scout

import (
	"encoding/json"
	"testing"

	"gpuscout/internal/sim"
)

func TestReportJSON(t *testing.T) {
	rep := analyzeWorkload(t, "spill_pressure", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	var got JSONReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.Kernel != rep.Kernel || got.DryRun {
		t.Errorf("header wrong: %+v", got)
	}
	if len(got.Findings) == 0 {
		t.Fatal("no findings serialized")
	}
	spill := false
	for _, f := range got.Findings {
		if f.Analysis == "register_spilling" {
			spill = true
			if len(f.Sites) == 0 || f.Sites[0].Line == 0 || f.Sites[0].SASS == "" {
				t.Errorf("spill sites incomplete: %+v", f.Sites)
			}
			if f.Severity == "" || len(f.StallSummary) == 0 {
				t.Error("dynamic correlation missing from JSON")
			}
		}
	}
	if !spill {
		t.Error("register_spilling not serialized")
	}
	if got.KernelCycles <= 0 || len(got.Metrics) == 0 || len(got.StallShares) == 0 {
		t.Error("dynamic sections missing")
	}
	if len(got.HottestLines) == 0 {
		t.Error("hottest lines missing")
	}
	if got.Overhead() == nil {
		t.Error("overhead missing")
	}

	// Dry runs omit the dynamic sections.
	dry := analyzeWorkload(t, "spill_pressure", 4, Options{DryRun: true})
	data, err = dry.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var dgot JSONReport
	if err := json.Unmarshal(data, &dgot); err != nil {
		t.Fatal(err)
	}
	if !dgot.DryRun || dgot.KernelCycles != 0 || len(dgot.Metrics) != 0 {
		t.Errorf("dry-run JSON carries dynamic data: %+v", dgot)
	}
}

// Overhead is a test accessor (the field is a pointer for omitempty).
func (r *JSONReport) Overhead() *JSONOverhead { return r.OverheadCycles }
