package scout

import "gpuscout/internal/sass"

// regDef names one SSA-ish value: the architectural register r as written
// by the instruction at index def (-1 for values live on kernel entry).
// Keying taint on the pair, not the register alone, keeps allocator
// recycling from smearing taint across unrelated values.
type regDef struct {
	r   sass.Reg
	def int
}

// tidXTaint computes which register definitions (transitively) depend on
// threadIdx.x. Taint is seeded at S2R reads of SR_TID.X and propagated to
// every instruction whose reaching source definitions include a tainted
// value, iterating to a fixpoint so loop-carried dependencies converge.
// A loop load whose address base is NOT in the returned set is
// warp-uniform: all 32 lanes of a warp compute the same address.
func tidXTaint(v *KernelView) map[regDef]bool {
	k := v.Kernel
	tainted := map[regDef]bool{}
	var scratch [8]sass.Reg
	for changed := true; changed; {
		changed = false
		for i := range k.Insts {
			in := &k.Insts[i]
			taint := in.Op == sass.OpS2R && len(in.Src) > 0 &&
				in.Src[0].Kind == sass.OpdSpecial && in.Src[0].Special == sass.SRTidX
			if !taint {
				for _, r := range in.SrcRegs(scratch[:0]) {
					if tainted[regDef{r, v.DefUse.LastDefBefore(r, i)}] {
						taint = true
						break
					}
				}
			}
			if !taint {
				continue
			}
			for _, d := range in.DstRegs(scratch[:0]) {
				if !tainted[regDef{d, i}] {
					tainted[regDef{d, i}] = true
					changed = true
				}
			}
		}
	}
	return tainted
}
