package scout

import (
	"fmt"
	"strings"

	"gpuscout/internal/ncu"
)

// Render produces the text report printed to the terminal, following the
// three-section structure of the paper's Fig. 2/Fig. 5 sample outputs:
// SASS analysis, warp stalls, and metric analysis per finding, plus a
// kernel-wide data-movement summary.
func (r *Report) Render() string {
	var b strings.Builder
	bar := strings.Repeat("=", 78)
	thin := strings.Repeat("-", 78)

	fmt.Fprintf(&b, "%s\nGPUscout report — kernel %s (%s)", bar, r.Kernel, r.Arch)
	if r.DryRun {
		b.WriteString("  [dry run: static SASS analysis only]")
	}
	fmt.Fprintf(&b, "\n%s\n", bar)

	if len(r.Degradations) > 0 {
		fmt.Fprintf(&b, "\nDEGRADED REPORT — %d stage failure(s); results below are partial:\n", len(r.Degradations))
		for _, d := range r.Degradations {
			line := fmt.Sprintf("[%s/%s] %s", d.Stage, d.Kind, d.Site)
			if d.Detail != "" {
				line += ": " + d.Detail
			}
			fmt.Fprintf(&b, "  ! %s\n", wrap(line, 72, "    "))
		}
	}

	if len(r.Findings) == 0 {
		b.WriteString("No data-movement bottleneck patterns detected.\n")
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		fmt.Fprintf(&b, "\n[%s] %s   (analysis: %s)\n", f.Severity, f.Title, f.Analysis)
		fmt.Fprintf(&b, "  Problem: %s\n", wrap(f.Problem, 74, "           "))
		fmt.Fprintf(&b, "  Advice:  %s\n", wrap(f.Recommendation, 74, "           "))
		if f.EstSpeedup > 0 {
			fmt.Fprintf(&b, "  Payoff:  estimated speedup ceiling %.2fx (relevant stalls are %.1f%% of kernel stall samples)\n",
				f.EstSpeedup, 100*f.RelevantStallShare)
		}
		if f.InLoop {
			b.WriteString("  Note:    pattern occurs inside a for-loop — repeated execution amplifies it\n")
		}
		if len(f.Sites) > 0 {
			b.WriteString("  Locations:\n")
			for _, s := range f.Sites {
				fmt.Fprintf(&b, "    %s:%d  %s\n", s.File, s.Line, s.SASS)
				if s.Note != "" {
					fmt.Fprintf(&b, "      > %s\n", s.Note)
				}
				if src := r.sourceLine(s.Line); src != "" {
					fmt.Fprintf(&b, "      source: %s\n", strings.TrimSpace(src))
				}
			}
		}
		if len(f.StallSummary) > 0 {
			fmt.Fprintf(&b, "  %s\n  Warp stalls (CUPTI PC sampling):\n", thin[:70])
			for _, line := range f.StallSummary {
				fmt.Fprintf(&b, "    %s\n", wrap(line, 72, "      "))
			}
		}
		if len(f.MetricSummary) > 0 {
			fmt.Fprintf(&b, "  %s\n  Metric analysis (ncu):\n", thin[:70])
			for _, line := range f.MetricSummary {
				fmt.Fprintf(&b, "    %s\n", wrap(line, 72, "      "))
			}
		}
		for _, sl := range f.StallSlices {
			fmt.Fprintf(&b, "  %s\n  Stall slice (producer chain for the stalled instruction):\n", thin[:70])
			fmt.Fprintf(&b, "    stall surfaces at pc %04x line %d: %s (%.0f samples)\n",
				sl.PC, sl.Line, sl.Stall, sl.Samples)
			for _, st := range sl.Steps {
				marker := fmt.Sprintf("via %s", st.Reg)
				if st.Depth == 0 {
					marker = "stalled here"
				}
				fmt.Fprintf(&b, "      [hop %d] %s:%d  %s   <- %s\n",
					st.Depth, st.File, st.Line, st.SASS, marker)
			}
		}
		if s := f.Sensitivity; s != nil {
			fmt.Fprintf(&b, "  %s\n  Sensitivity (kernel re-simulated under perturbed hardware):\n", thin[:70])
			for _, d := range s.Deltas {
				pct := 0.0
				if s.BaselineCycles > 0 {
					pct = 100 * d.Delta / s.BaselineCycles
				}
				fmt.Fprintf(&b, "    %-15s %-4s x%-4g %12.6g cycles (%+.2f%%)\n",
					d.Resource, d.Direction, d.Factor, d.Cycles, pct)
			}
			fmt.Fprintf(&b, "    %s\n", wrap(s.Summary(), 72, "      "))
		}
		if v := f.Verification; v != nil {
			fmt.Fprintf(&b, "  %s\n  Verification (recommendation re-executed):\n", thin[:70])
			fmt.Fprintf(&b, "    %s\n", wrap(v.Summary(), 72, "      "))
			if v.Change != "" {
				fmt.Fprintf(&b, "    applied change: %s\n", wrap(v.Change, 72, "      "))
			}
			for _, sd := range v.StallDeltas {
				fmt.Fprintf(&b, "    stall %-20s %5.1f%% -> %5.1f%% of stall samples\n",
					sd.Stall, 100*sd.Before, 100*sd.After)
			}
			for _, md := range v.MetricDeltas {
				rel := "new"
				if md.Before != 0 {
					rel = fmt.Sprintf("%+.1f%%", md.Delta())
				}
				fmt.Fprintf(&b, "    %-55s %12.6g -> %12.6g (%s)\n",
					md.Name, md.Before, md.After, rel)
			}
		}
	}

	if !r.DryRun && r.Metrics != nil {
		fmt.Fprintf(&b, "\n%s\nKernel-wide data movement (ncu metrics)\n%s\n", thin, thin)
		for _, name := range []string{
			"gpu__time_duration.sum",
			"sm__cycles_elapsed.max",
			"launch__registers_per_thread",
			"sm__warps_active.avg.pct_of_peak_sustained_active",
			"smsp__inst_executed.sum",
			"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
			"l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
			"lts__t_sectors.sum",
			"lts__t_sector_hit_rate.pct",
			"dram__bytes_read.sum",
			"dram__bytes_write.sum",
		} {
			if v, ok := r.Metrics.Get(name); ok {
				unit := ""
				if m, found := ncu.Lookup(name); found {
					unit = m.Unit
				}
				fmt.Fprintf(&b, "  %-55s %14.6g %s\n", name, v, unit)
			}
		}
		fmt.Fprintf(&b, "\nOverhead: SASS analysis %.3g Mcycles | PC sampling %.3g Mcycles | metrics %.3g Mcycles (%d ncu passes) | bare kernel %.3g Mcycles\n",
			r.OverheadSASSCycles/1e6, r.OverheadSamplingCycles/1e6,
			r.OverheadMetricsCycles/1e6, r.Metrics.Passes, r.KernelCycles/1e6)
	}

	if s := r.Sensitivity; s != nil {
		fmt.Fprintf(&b, "\n%s\nSensitivity matrix (kernel cycles under perturbed hardware)\n%s\n", thin, thin)
		fmt.Fprintf(&b, "  baseline: %.6g cycles\n", s.BaselineCycles)
		for _, d := range s.Deltas {
			pct := 0.0
			if s.BaselineCycles > 0 {
				pct = 100 * d.Delta / s.BaselineCycles
			}
			relief := " "
			if d.Helps {
				relief = "+" // the direction that relieves the resource
			}
			fmt.Fprintf(&b, "  %s%-15s %-4s x%-4g %14.6g cycles (%+.2f%%)\n",
				relief, d.Resource, d.Direction, d.Factor, d.Cycles, pct)
		}
		fmt.Fprintf(&b, "  %s\n", wrap(s.Summary(), 74, "    "))
	}
	return b.String()
}

// sourceLine fetches embedded source text for quoting.
func (r *Report) sourceLine(line int) string {
	if r.kernel == nil {
		return ""
	}
	return r.kernel.SourceLine(line)
}

// wrap soft-wraps s at width, indenting continuation lines.
func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return s
	}
	var b strings.Builder
	lineLen := 0
	for i, w := range words {
		if i > 0 {
			if lineLen+1+len(w) > width {
				b.WriteString("\n" + indent)
				lineLen = 0
			} else {
				b.WriteString(" ")
				lineLen++
			}
		}
		b.WriteString(w)
		lineLen += len(w)
	}
	return b.String()
}
