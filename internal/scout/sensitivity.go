package scout

import (
	"fmt"

	"gpuscout/internal/gpu"
)

// NeutralSensitivity is the relief band below which no resource is named
// dominant: a perturbation must buy at least 2% — the same noise band the
// counterfactual verifier uses (Grade) — before the sweep attributes the
// bottleneck to its resource.
const NeutralSensitivity = 1.02

// ResourceDelta is one run of the sensitivity matrix: the kernel
// re-simulated with a single hardware resource scaled, and how its cycle
// count moved.
type ResourceDelta struct {
	// Resource and Direction identify the perturbation (gpu.Perturbation).
	Resource  string
	Direction string
	Factor    float64
	// Cycles is the perturbed run's kernel duration.
	Cycles float64
	// Delta is Cycles - baseline (positive = the perturbation hurt).
	Delta float64
	// Helps records whether this direction relieves the resource.
	Helps bool
}

// Relief returns baseline/Cycles — the speedup the perturbation bought
// (>1 = the kernel ran faster under it).
func (d ResourceDelta) Relief(baseline float64) float64 {
	if d.Cycles <= 0 {
		return 0
	}
	return baseline / d.Cycles
}

// Sensitivity is the result of a microarchitectural sensitivity sweep
// (Pompougnac et al.): the kernel re-simulated under each perturbation of
// the gpu.Perturbations matrix. The resource whose *helping* direction
// moves cycles most is the dominant bottleneck; if no helping perturbation
// clears the neutral band, the kernel is not bound by any swept resource.
type Sensitivity struct {
	// BaselineCycles is the unperturbed kernel duration.
	BaselineCycles float64
	// Deltas lists every perturbation run in matrix order.
	Deltas []ResourceDelta
	// Dominant names the bottleneck resource ("" when nothing clears the
	// neutral band).
	Dominant string
	// DominantRelief is the speedup the dominant resource's helping
	// perturbation bought (1 when Dominant is "").
	DominantRelief float64
}

// Rank recomputes Dominant/DominantRelief from Deltas: the helping
// perturbation with the largest relief, ties broken by matrix order. The
// advisor calls it after filling Deltas; FilterFor calls it on the
// filtered view.
func (s *Sensitivity) Rank() {
	s.Dominant, s.DominantRelief = "", 1
	best := 0.0
	for _, d := range s.Deltas {
		if !d.Helps {
			continue
		}
		if r := d.Relief(s.BaselineCycles); r > best {
			best = r
			if r >= NeutralSensitivity {
				s.Dominant, s.DominantRelief = d.Resource, r
			}
		}
	}
}

// FilterFor returns the per-finding view of the sweep: only the resources
// the finding's analysis can plausibly be bound by, with the dominant
// resource recomputed among them. A vectorization finding never blames
// shared-memory banks, and a bank-conflict finding never blames DRAM.
func (s *Sensitivity) FilterFor(analysis string) *Sensitivity {
	if s == nil {
		return nil
	}
	keep := map[string]bool{}
	for _, r := range relevantResources(analysis) {
		keep[r] = true
	}
	out := &Sensitivity{BaselineCycles: s.BaselineCycles}
	for _, d := range s.Deltas {
		if keep[d.Resource] {
			out.Deltas = append(out.Deltas, d)
		}
	}
	out.Rank()
	return out
}

// Summary is the one-line dominant-resource statement for reports.
func (s *Sensitivity) Summary() string {
	if s.Dominant == "" {
		return fmt.Sprintf("no dominant resource: no perturbation relieves more than %.0f%% of cycles",
			100*(NeutralSensitivity-1))
	}
	return fmt.Sprintf("dominant resource: %s — relieving it runs the kernel %.2fx faster",
		s.Dominant, s.DominantRelief)
}

// relevantResources maps a detector to the hardware resources its
// bottleneck class can be bound by; the per-finding sensitivity block is
// filtered to these so the attribution stays causal, not correlational.
func relevantResources(analysis string) []string {
	switch analysis {
	case "vectorized_load":
		// Instruction-count bound global loads: issue slots, memory
		// latency hiding (scoreboards), and raw DRAM throughput.
		return []string{gpu.ResourceDRAMBandwidth, gpu.ResourceDRAMLatency,
			gpu.ResourceIssueWidth, gpu.ResourceScoreboards}
	case "register_spilling":
		// Spills live in local memory: L1/L2 capacity absorb them,
		// latency exposes them.
		return []string{gpu.ResourceL1Capacity, gpu.ResourceL2Capacity,
			gpu.ResourceDRAMLatency}
	case "shared_memory":
		// Staging into shared memory trades global latency/bandwidth for
		// bank-limited on-chip accesses.
		return []string{gpu.ResourceDRAMLatency, gpu.ResourceDRAMBandwidth,
			gpu.ResourceL1Capacity, gpu.ResourceSharedBanks}
	case "shared_atomics":
		return []string{gpu.ResourceDRAMLatency, gpu.ResourceL2Capacity,
			gpu.ResourceSharedBanks}
	case "readonly_cache", "texture_memory":
		// Read-only/texture routing pays off when cache capacity or
		// memory latency is the binding resource.
		return []string{gpu.ResourceL1Capacity, gpu.ResourceL2Capacity,
			gpu.ResourceDRAMLatency}
	case "datatype_conversion":
		return []string{gpu.ResourceIssueWidth, gpu.ResourceScoreboards}
	case "bank_conflicts":
		return []string{gpu.ResourceSharedBanks}
	}
	return gpu.ResourceNames()
}

// SliceStep is one instruction on a rendered backward stall slice.
type SliceStep struct {
	PC    uint64
	Line  int
	File  string
	Depth int    // def-use hops from the stalled instruction (0 = itself)
	Reg   string // register whose definition pulled this step in ("" at root)
	SASS  string
}

// StallSlice is the LEO-style causal explanation of one high-stall PC:
// the ordered producer chain (program order) from address arithmetic
// through the load to the stalled consumer. The stall surfaces at the
// consumer; the cause is upstream.
type StallSlice struct {
	// PC/Line locate the stalled instruction the slice explains.
	PC   uint64
	Line int
	// Stall names the dominant stall reason sampled at PC.
	Stall string
	// Samples counts the (non-bookkeeping) stall samples at PC.
	Samples float64
	// Steps is the backward slice in program order; the stalled
	// instruction is the Depth-0 step.
	Steps []SliceStep
}
