package scout

import (
	"encoding/json"

	"gpuscout/internal/sim"
)

// JSONReport is the machine-readable form of a Report: everything a
// frontend (the paper's planned visualization, Fig. 7) needs, without the
// internal simulator state.
type JSONReport struct {
	Kernel   string        `json:"kernel"`
	Arch     string        `json:"arch"`
	DryRun   bool          `json:"dry_run"`
	Findings []JSONFinding `json:"findings"`

	// Degradations lists what this report lost to stage failures; absent
	// on a clean run, so undegraded reports are byte-identical to pre-PR-5
	// output.
	Degradations []Degradation `json:"degradations,omitempty"`

	// Dynamic data (omitted on dry runs).
	KernelCycles float64            `json:"kernel_cycles,omitempty"`
	Occupancy    float64            `json:"achieved_occupancy,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	StallShares  map[string]float64 `json:"stall_shares,omitempty"`
	HottestLines []JSONLineHeat     `json:"hottest_lines,omitempty"`

	OverheadCycles *JSONOverhead `json:"overhead_cycles,omitempty"`

	// Sensitivity is the kernel-wide perturbation sweep (present when the
	// advisor ran one).
	Sensitivity *JSONSensitivity `json:"sensitivity,omitempty"`
}

// JSONFinding mirrors Finding.
type JSONFinding struct {
	Analysis       string            `json:"analysis"`
	Severity       string            `json:"severity"`
	Title          string            `json:"title"`
	Problem        string            `json:"problem"`
	Recommendation string            `json:"recommendation"`
	InLoop         bool              `json:"in_loop"`
	EstSpeedup     float64           `json:"est_speedup,omitempty"`
	StallShare     float64           `json:"relevant_stall_share,omitempty"`
	Sites          []JSONSite        `json:"sites"`
	StallSummary   []string          `json:"stall_summary,omitempty"`
	MetricSummary  []string          `json:"metric_summary,omitempty"`
	StallSlices    []JSONStallSlice  `json:"stall_slices,omitempty"`
	Sensitivity    *JSONSensitivity  `json:"sensitivity,omitempty"`
	Verification   *JSONVerification `json:"verification,omitempty"`
}

// JSONSensitivity mirrors Sensitivity.
type JSONSensitivity struct {
	BaselineCycles float64             `json:"baseline_cycles"`
	Deltas         []JSONResourceDelta `json:"deltas"`
	Dominant       string              `json:"dominant,omitempty"`
	DominantRelief float64             `json:"dominant_relief,omitempty"`
}

// JSONResourceDelta mirrors ResourceDelta.
type JSONResourceDelta struct {
	Resource  string  `json:"resource"`
	Direction string  `json:"direction"`
	Factor    float64 `json:"factor"`
	Cycles    float64 `json:"cycles"`
	Delta     float64 `json:"delta"`
	Helps     bool    `json:"helps"`
}

// JSONStallSlice mirrors StallSlice.
type JSONStallSlice struct {
	PC      uint64          `json:"pc"`
	Line    int             `json:"line"`
	Stall   string          `json:"stall"`
	Samples float64         `json:"samples"`
	Steps   []JSONSliceStep `json:"steps"`
}

// JSONSliceStep mirrors SliceStep.
type JSONSliceStep struct {
	PC    uint64 `json:"pc"`
	Line  int    `json:"line"`
	File  string `json:"file"`
	Depth int    `json:"depth"`
	Reg   string `json:"reg,omitempty"`
	SASS  string `json:"sass"`
}

// JSONVerification mirrors Verification.
type JSONVerification struct {
	Workload       string            `json:"workload"`
	Fixed          string            `json:"fixed"`
	Change         string            `json:"change,omitempty"`
	BaselineCycles float64           `json:"baseline_cycles"`
	FixedCycles    float64           `json:"fixed_cycles"`
	Speedup        float64           `json:"speedup"`
	Verdict        string            `json:"verdict"`
	StallDeltas    []JSONStallDelta  `json:"stall_deltas,omitempty"`
	MetricDeltas   []JSONMetricDelta `json:"metric_deltas,omitempty"`
}

// JSONStallDelta mirrors StallDelta.
type JSONStallDelta struct {
	Stall  string  `json:"stall"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// JSONMetricDelta mirrors MetricDelta.
type JSONMetricDelta struct {
	Name   string  `json:"name"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// JSONSite mirrors Site.
type JSONSite struct {
	PC   uint64 `json:"pc"`
	File string `json:"file"`
	Line int    `json:"line"`
	SASS string `json:"sass"`
	Note string `json:"note,omitempty"`
}

// JSONLineHeat mirrors LineHeat.
type JSONLineHeat struct {
	Line     int     `json:"line"`
	Source   string  `json:"source,omitempty"`
	Share    float64 `json:"share"`
	TopStall string  `json:"top_stall"`
}

// JSONOverhead mirrors the Fig. 6 accounting.
type JSONOverhead struct {
	SASS     float64 `json:"sass"`
	Sampling float64 `json:"sampling"`
	Metrics  float64 `json:"metrics"`
}

// ToJSON converts the report to its serializable form.
func (r *Report) ToJSON() *JSONReport {
	out := &JSONReport{
		Kernel:       r.Kernel,
		Arch:         r.Arch,
		DryRun:       r.DryRun,
		Degradations: r.Degradations,
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		jf := JSONFinding{
			Analysis:       f.Analysis,
			Severity:       f.Severity.String(),
			Title:          f.Title,
			Problem:        f.Problem,
			Recommendation: f.Recommendation,
			InLoop:         f.InLoop,
			EstSpeedup:     f.EstSpeedup,
			StallShare:     f.RelevantStallShare,
			StallSummary:   f.StallSummary,
			MetricSummary:  f.MetricSummary,
		}
		for _, s := range f.Sites {
			jf.Sites = append(jf.Sites, JSONSite{
				PC: s.PC, File: s.File, Line: s.Line, SASS: s.SASS, Note: s.Note,
			})
		}
		for _, sl := range f.StallSlices {
			js := JSONStallSlice{
				PC: sl.PC, Line: sl.Line, Stall: sl.Stall, Samples: sl.Samples,
			}
			for _, st := range sl.Steps {
				js.Steps = append(js.Steps, JSONSliceStep(st))
			}
			jf.StallSlices = append(jf.StallSlices, js)
		}
		jf.Sensitivity = jsonSensitivity(f.Sensitivity)
		if v := f.Verification; v != nil {
			jv := &JSONVerification{
				Workload:       v.Workload,
				Fixed:          v.Fixed,
				Change:         v.Change,
				BaselineCycles: v.BaselineCycles,
				FixedCycles:    v.FixedCycles,
				Speedup:        v.Speedup,
				Verdict:        string(v.Verdict),
			}
			for _, sd := range v.StallDeltas {
				jv.StallDeltas = append(jv.StallDeltas, JSONStallDelta(sd))
			}
			for _, md := range v.MetricDeltas {
				jv.MetricDeltas = append(jv.MetricDeltas, JSONMetricDelta(md))
			}
			jf.Verification = jv
		}
		out.Findings = append(out.Findings, jf)
	}
	if r.DryRun {
		return out
	}
	out.KernelCycles = r.KernelCycles
	if r.Result != nil {
		out.Occupancy = r.Result.AchievedOccupancy
		out.StallShares = map[string]float64{}
		for s := sim.Stall(0); s < sim.NumStalls; s++ {
			if s == sim.StallSelected {
				continue
			}
			if share := r.Result.StallShare(s); share > 0 {
				out.StallShares[s.String()] = share
			}
		}
	}
	if r.Metrics != nil {
		out.Metrics = r.Metrics.Values
	}
	for _, h := range r.HottestLines(10) {
		out.HottestLines = append(out.HottestLines, JSONLineHeat{
			Line: h.Line, Source: h.Source, Share: h.Share, TopStall: h.TopStall.String(),
		})
	}
	out.OverheadCycles = &JSONOverhead{
		SASS:     r.OverheadSASSCycles,
		Sampling: r.OverheadSamplingCycles,
		Metrics:  r.OverheadMetricsCycles,
	}
	out.Sensitivity = jsonSensitivity(r.Sensitivity)
	return out
}

// jsonSensitivity converts a sweep result (nil-safe).
func jsonSensitivity(s *Sensitivity) *JSONSensitivity {
	if s == nil {
		return nil
	}
	js := &JSONSensitivity{
		BaselineCycles: s.BaselineCycles,
		Dominant:       s.Dominant,
		DominantRelief: s.DominantRelief,
	}
	for _, d := range s.Deltas {
		js.Deltas = append(js.Deltas, JSONResourceDelta(d))
	}
	return js
}

// MarshalJSON lets a Report be encoded directly.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(r.ToJSON(), "", "  ")
}
