package scout

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// TextureAnalysis implements §4.6: read-only global loads from adjacent
// addresses (spatial locality, as in the paper's Listing 1 where loads hit
// [R2] and [R2+-0x8]) are candidates for texture memory, whose dedicated
// cache is optimized for spatially-local accesses.
type TextureAnalysis struct {
	// Window is the byte distance within which two loads off the same
	// base count as spatially local; defaults to 32 (one sector).
	Window int64
}

// Name implements Analysis.
func (TextureAnalysis) Name() string { return "texture_memory" }

// Detect implements Analysis.
func (a TextureAnalysis) Detect(v *KernelView) []Finding {
	window := a.Window
	if window <= 0 {
		window = 32
	}
	k := v.Kernel
	type group struct {
		base sass.Reg
		idxs []int
		offs []int64
	}
	groups := map[[2]int64]*group{}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != sass.OpLDG || in.IsNC() {
			continue
		}
		mem, ok := in.MemOperand()
		if !ok || v.DefUse.PointerStoredThroughAt(mem.Reg, i) {
			continue
		}
		key := [2]int64{int64(mem.Reg), int64(v.DefUse.LastDefBefore(mem.Reg, i))}
		g := groups[key]
		if g == nil {
			g = &group{base: mem.Reg}
			groups[key] = g
		}
		g.idxs = append(g.idxs, i)
		g.offs = append(g.offs, mem.Imm)
	}

	keys := make([][2]int64, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	var findings []Finding
	for _, key := range keys {
		g := groups[key]
		if len(g.idxs) < 2 || !withinWindow(g.offs, window) {
			continue
		}
		f := Finding{
			Analysis: "texture_memory",
			Title:    "Spatially-local read-only loads: consider texture memory",
			Problem: fmt.Sprintf(
				"%d read-only global loads off base %s access adjacent addresses (offsets within %d bytes) — a spatially-local pattern the texture cache is optimized for",
				len(g.idxs), g.base, window),
			Recommendation: "fetch this data through texture memory (tex2D()/texture objects) or, for a more maintainable alternative, stage it in shared memory",
			RelevantStalls: []sim.Stall{sim.StallLongScoreboard},
			RelevantMetrics: []string{
				"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
				"l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct",
			},
			CautionMetrics: []string{
				// §4.6: too many outstanding texture requests fill the TEX
				// pipeline; watch these after the change.
				"smsp__warp_issue_stalled_tex_throttle_per_warp_active.pct",
				"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
				"l1tex__t_sector_pipe_tex_mem_texture_hit_rate.pct",
			},
		}
		for n, i := range g.idxs {
			note := fmt.Sprintf("read-only load at offset %+d from [%s]", g.offs[n], g.base)
			if v.CFG.InLoop(i) {
				f.InLoop = true
				note += "; inside a for-loop"
			}
			f.Sites = append(f.Sites, v.site(i, note))
		}
		findings = append(findings, f)
	}
	return findings
}

// withinWindow reports whether at least two distinct offsets lie within
// the window of each other.
func withinWindow(offs []int64, window int64) bool {
	s := append([]int64(nil), offs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i := 1; i < len(s); i++ {
		d := s[i] - s[i-1]
		if d != 0 && d <= window {
			return true
		}
	}
	return false
}
