package scout

import (
	"fmt"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// DtypeConvAnalysis implements §4.7: datatype conversions (F2F, I2F, F2I,
// I2I) are expensive on GPUs — they increase the instruction count and can
// occupy several pipelines. The analysis reports the total count and each
// conversion's source line.
type DtypeConvAnalysis struct{}

// Name implements Analysis.
func (DtypeConvAnalysis) Name() string { return "datatype_conversion" }

// Detect implements Analysis.
func (DtypeConvAnalysis) Detect(v *KernelView) []Finding {
	k := v.Kernel
	var sites []Site
	counts := map[sass.Opcode]int{}
	inLoop := false
	for i := range k.Insts {
		in := &k.Insts[i]
		if !sass.IsConversion(in.Op) {
			continue
		}
		counts[in.Op]++
		note := in.Mnemonic() + " conversion"
		if v.CFG.InLoop(i) {
			inLoop = true
			note += "; inside a for-loop"
		}
		sites = append(sites, v.site(i, note))
	}
	if len(sites) == 0 {
		return nil
	}
	f := Finding{
		Analysis: "datatype_conversion",
		Title:    "Datatype conversions detected",
		Problem: fmt.Sprintf(
			"%d datatype conversion(s): %d I2F, %d F2I, %d F2F, %d I2I — each costs extra instructions and pipeline utilization",
			len(sites), counts[sass.OpI2F], counts[sass.OpF2I], counts[sass.OpF2F], counts[sass.OpI2I]),
		Recommendation: "avoid mixing datatypes where feasible (match literal types, keep loop indices out of floating-point expressions); some conversions are inherent to the algorithm and cannot be removed",
		Sites:          sites,
		InLoop:         inLoop,
		RelevantStalls: []sim.Stall{sim.StallWait, sim.StallMathPipeThrottle},
		RelevantMetrics: []string{
			"smsp__inst_executed.sum",
		},
	}
	return []Finding{f}
}
