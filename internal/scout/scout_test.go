package scout

import (
	"strings"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// analyzeWorkload runs the full GPUscout pipeline on a workload.
func analyzeWorkload(t *testing.T, name string, scale int, opts Options) *Report {
	t.Helper()
	w, err := workloads.Build(name, scale)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	run := func(cfg sim.Config) (*sim.Result, error) {
		dev := sim.NewDevice(gpu.V100())
		return workloads.Execute(w, dev, cfg)
	}
	rep, err := Analyze(gpu.V100(), w.Kernel, run, opts)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	return rep
}

func findingsByAnalysis(rep *Report) map[string][]*Finding {
	m := map[string][]*Finding{}
	for i := range rep.Findings {
		f := &rep.Findings[i]
		m[f.Analysis] = append(m[f.Analysis], f)
	}
	return m
}

func TestMixbenchFindings(t *testing.T) {
	// §5.1 / Fig. 5: GPUscout recommends (1) shared memory and
	// (2) vectorized global loads for the naive mixbench kernel.
	rep := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	vl := m["vectorized_load"]
	if len(vl) == 0 {
		t.Fatal("no vectorized_load finding on naive mixbench")
	}
	// The loads sit at line 7 of the embedded source, inside the loop.
	if vl[0].PrimaryLine() != 7 {
		t.Errorf("vectorized_load points at line %d, want 7", vl[0].PrimaryLine())
	}
	if !vl[0].InLoop {
		t.Error("vectorized_load finding not marked in-loop")
	}
	if len(m["shared_memory"]) == 0 {
		t.Error("no shared_memory finding on naive mixbench (Fig. 5 expects one)")
	}
	// The severity must be grounded in stalls: naive mixbench is
	// dominated by long_scoreboard + lg_throttle at the load line.
	if vl[0].Severity < SeverityWarning {
		t.Errorf("vectorized_load severity = %v, want >= WARNING", vl[0].Severity)
	}
	if len(vl[0].StallSummary) == 0 || len(vl[0].MetricSummary) == 0 {
		t.Error("finding lacks stall or metric correlation")
	}
}

func TestMixbenchVecCured(t *testing.T) {
	rep := analyzeWorkload(t, "mixbench_sp_vec4", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	if len(m["vectorized_load"]) != 0 {
		t.Error("vectorized_load still fires after applying the fix")
	}
}

func TestJacobiFindings(t *testing.T) {
	// §5.2: naive Jacobi gets (1) texture/shared memory, (2) vectorized
	// loads, (3) __restrict__, and (4) datatype conversion findings.
	rep := analyzeWorkload(t, "jacobi_naive", 128, Options{Sim: sim.Config{SampleSMs: 2}})
	m := findingsByAnalysis(rep)
	for _, want := range []string{"texture_memory", "vectorized_load", "readonly_cache", "datatype_conversion"} {
		if len(m[want]) == 0 {
			t.Errorf("missing %s finding on naive jacobi (§5.2 reports it)", want)
		}
	}
	// §5.2: six I2F conversions, each with a line number.
	if dc := m["datatype_conversion"]; len(dc) > 0 {
		if len(dc[0].Sites) != 6 {
			t.Errorf("conversion sites = %d, want 6", len(dc[0].Sites))
		}
		for _, s := range dc[0].Sites {
			if s.Line == 0 {
				t.Error("conversion site without line number")
			}
		}
	}
	// Texture fix applied: the finding disappears, tex traffic appears.
	repT := analyzeWorkload(t, "jacobi_texture", 128, Options{Sim: sim.Config{SampleSMs: 2}})
	mT := findingsByAnalysis(repT)
	if len(mT["texture_memory"]) != 0 {
		t.Error("texture_memory still fires on the texture variant")
	}
	if len(mT["vectorized_load"]) != 0 {
		t.Error("vectorized_load fires on the texture variant (no LDG left)")
	}
}

func TestSGEMMFindings(t *testing.T) {
	// §5.3: naive SGEMM gets __restrict__/const and shared-memory
	// recommendations, with exact source lines.
	rep := analyzeWorkload(t, "sgemm_naive", 64, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	if len(m["readonly_cache"]) == 0 {
		t.Error("missing readonly_cache finding on naive sgemm")
	}
	sm := m["shared_memory"]
	if len(sm) == 0 {
		t.Fatal("missing shared_memory finding on naive sgemm")
	}
	if !sm[0].InLoop {
		t.Error("sgemm shared_memory finding not marked in-loop")
	}
	if sm[0].PrimaryLine() != 7 {
		t.Errorf("shared_memory points at line %d, want 7 (the dot-product line)", sm[0].PrimaryLine())
	}
	// The caution list must tell the user to watch bank conflicts and MIO
	// stalls after the change (§5.3).
	foundMIO := false
	for _, c := range sm[0].CautionMetrics {
		if strings.Contains(c, "mio_throttle") {
			foundMIO = true
		}
	}
	if !foundMIO {
		t.Error("shared_memory caution metrics lack mio_throttle")
	}
}

func TestSpillFindings(t *testing.T) {
	// Fig. 2: the register-spill report names the spilled register, the
	// source line, and the operation that caused the spill.
	rep := analyzeWorkload(t, "spill_pressure", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	rs := m["register_spilling"]
	if len(rs) == 0 {
		t.Fatal("no register_spilling finding")
	}
	f := rs[0]
	if !f.InLoop {
		t.Error("in-loop spills not marked")
	}
	sawCause, sawPressure := false, false
	for _, s := range f.Sites {
		if strings.Contains(s.Note, "previous write by") {
			sawCause = true
		}
		if strings.Contains(s.Note, "pressure") {
			sawPressure = true
		}
		if s.Line == 0 {
			t.Error("spill site without source line")
		}
	}
	if !sawCause {
		t.Error("no spill-cause attribution (Fig. 2 shows the causing op)")
	}
	if !sawPressure {
		t.Error("no live-register-pressure note")
	}
	// Metric summary must include the §2.3 L2-queries estimate.
	joined := strings.Join(f.MetricSummary, "\n")
	if !strings.Contains(joined, "queries to L2") {
		t.Errorf("metric summary lacks the L2-queries estimate:\n%s", joined)
	}
	if f.Severity < SeverityWarning {
		t.Errorf("spill severity = %v, want >= WARNING", f.Severity)
	}
}

func TestAtomicsFindings(t *testing.T) {
	rep := analyzeWorkload(t, "histogram_global", 4, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	sa := m["shared_atomics"]
	if len(sa) == 0 {
		t.Fatal("no shared_atomics finding on global-atomics histogram")
	}
	if !sa[0].InLoop {
		t.Error("in-loop global atomic not marked (the §4.4 amplification)")
	}
	// The shared variant still has the per-block merge atomics but no
	// in-loop ones.
	repS := analyzeWorkload(t, "histogram_shared", 4, Options{Sim: sim.Config{SampleSMs: 1}})
	mS := findingsByAnalysis(repS)
	if len(mS["shared_atomics"]) > 0 && mS["shared_atomics"][0].InLoop {
		t.Error("shared variant's merge atomic flagged as in-loop")
	}
}

func TestDryRun(t *testing.T) {
	// §3.1: --dry-run inspects only the SASS, without the GPU, and works
	// on architectures ncu does not support (Pascal).
	w, err := workloads.Build("mixbench_sp_naive", 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(gpu.P100(), w.Kernel, nil, Options{DryRun: true})
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if !rep.DryRun {
		t.Error("report not marked dry-run")
	}
	if rep.Metrics != nil || rep.Samples != nil {
		t.Error("dry run collected dynamic data")
	}
	if len(rep.Findings) == 0 {
		t.Error("dry run found nothing")
	}
	text := rep.Render()
	if !strings.Contains(text, "dry run") {
		t.Error("rendered report does not mention dry run")
	}
}

func TestReportRender(t *testing.T) {
	rep := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	text := rep.Render()
	for _, want := range []string{
		"GPUscout report",
		"vectorized",
		"Warp stalls (CUPTI PC sampling)",
		"Metric analysis (ncu)",
		"Kernel-wide data movement",
		"mixbench.cu:7",
		"g_data[gid * GRANULARITY + j]", // quoted source
		"Overhead:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q\n----\n%s", want, text)
		}
	}
}

func TestCompareView(t *testing.T) {
	// Fig. 7 "Metrics Comparison": old-vs-new metric diff after a fix.
	repOld := analyzeWorkload(t, "mixbench_sp_naive", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	repNew := analyzeWorkload(t, "mixbench_sp_vec4", 8, Options{Sim: sim.Config{SampleSMs: 1}})
	cmp, err := Compare(repOld, repNew)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if cmp.SpeedupX <= 1 {
		t.Errorf("comparison speedup = %.2f, want > 1", cmp.SpeedupX)
	}
	var checkedLd bool
	for _, r := range cmp.Rows {
		if r.Metric == "smsp__inst_executed_op_global_ld.sum" {
			checkedLd = true
			if r.New >= r.Old {
				t.Errorf("global load instructions did not drop: %v -> %v", r.Old, r.New)
			}
		}
	}
	if !checkedLd {
		t.Error("comparison lacks the global-load-instruction metric")
	}
	text := cmp.Render()
	if !strings.Contains(text, "faster") || !strings.Contains(text, "delta") {
		t.Errorf("comparison render incomplete:\n%s", text)
	}
	if _, err := Compare(&Report{}, repNew); err == nil {
		t.Error("Compare accepted dry-run report")
	}
}

func TestDetectorsSilentOnCleanKernel(t *testing.T) {
	// The vec4 mixbench has no spills, no atomics, no conversions.
	rep := analyzeWorkload(t, "mixbench_sp_vec4", 4, Options{Sim: sim.Config{SampleSMs: 1}})
	m := findingsByAnalysis(rep)
	for _, never := range []string{"register_spilling", "shared_atomics", "datatype_conversion"} {
		if len(m[never]) != 0 {
			t.Errorf("%s fired on a kernel without that pattern", never)
		}
	}
}
