package cupti

import (
	"math"
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// sampleKernel builds and runs a small latency-bound kernel.
func sampleKernel(t *testing.T) (*sass.Kernel, *sim.Result) {
	t.Helper()
	b := kasm.NewBuilder("_Zsample", "sm_70", "s.cu")
	b.NumParams(2)
	b.Line(2)
	tid := b.TidX()
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	off := b.Shl(kasm.VR(tid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	b.Line(3)
	v := b.Ldg(addr, 0, 4, false)
	b.Line(4)
	r := b.FMul(kasm.VR(v), kasm.VR(v))
	oaddr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(oaddr, 0, r, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.Compile(p, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(gpu.V100())
	inB := dev.MustAlloc(4 * 512)
	outB := dev.MustAlloc(4 * 512)
	res, err := sim.Launch(dev, sim.LaunchSpec{
		Kernel: k, Grid: sim.D1(4), Block: sim.D1(128),
		Params: []uint64{inB.Addr, outB.Addr},
	}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k, res
}

func TestCollectBasics(t *testing.T) {
	k, res := sampleKernel(t)
	r, err := Collect(k, res, Config{PeriodCycles: 512})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if r.PeriodCycles != 512 || r.TotalSamples <= 0 || len(r.Samples) == 0 {
		t.Fatalf("empty report: %+v", r)
	}
	// Samples sorted by PC then stall.
	for i := 1; i < len(r.Samples); i++ {
		a, b := r.Samples[i-1], r.Samples[i]
		if a.PC > b.PC || (a.PC == b.PC && a.Stall >= b.Stall) {
			t.Fatalf("samples not sorted at %d", i)
		}
	}
	// Sample totals must match the stall integrals / period.
	var want float64
	for _, arr := range res.Counters.PCStalls {
		for s := sim.Stall(0); s < sim.NumStalls; s++ {
			want += arr[s]
		}
	}
	want /= 512
	if math.Abs(r.TotalSamples-want) > 1e-9*want {
		t.Errorf("TotalSamples = %v, want %v", r.TotalSamples, want)
	}
	// The FMUL at line 4 consumes the load: long_scoreboard must appear.
	if share := r.StallShareAtLine(4, sim.StallLongScoreboard); share <= 0 {
		t.Error("no long_scoreboard at the consumer line")
	}
	// Line aggregation matches PC aggregation.
	var pcAgg [sim.NumStalls]float64
	for _, s := range r.Samples {
		if s.Line == 4 {
			pcAgg[s.Stall] += s.Samples
		}
	}
	lineAgg := r.AtLine(4)
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if math.Abs(pcAgg[s]-lineAgg[s]) > 1e-9 {
			t.Errorf("line aggregation mismatch for %v", s)
		}
	}
}

func TestDefaultPeriodAndTopStalls(t *testing.T) {
	k, res := sampleKernel(t)
	r, err := Collect(k, res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.PeriodCycles != 2048 {
		t.Errorf("default period = %v", r.PeriodCycles)
	}
	// TopStallsAtPC excludes bookkeeping reasons and sorts descending.
	for pc := range res.Counters.PCStalls {
		top := r.TopStallsAtPC(pc, 2)
		if len(top) > 2 {
			t.Fatalf("TopStallsAtPC returned %d entries", len(top))
		}
		for i := 1; i < len(top); i++ {
			if top[i].Samples > top[i-1].Samples {
				t.Error("top stalls not sorted")
			}
		}
		for _, ts := range top {
			if ts.Stall == sim.StallSelected || ts.Stall == sim.StallNotSelected {
				t.Error("bookkeeping stall in top list")
			}
		}
	}
	if _, err := Collect(k, nil, Config{}); err == nil {
		t.Error("Collect accepted nil result")
	}
}

func TestKernelStallShareBounds(t *testing.T) {
	k, res := sampleKernel(t)
	r, err := Collect(k, res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if s == sim.StallSelected {
			continue
		}
		share := r.KernelStallShare(s)
		if share < 0 || share > 1 {
			t.Errorf("share(%v) = %v out of [0,1]", s, share)
		}
		total += share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("stall shares sum to %v, want 1", total)
	}
}

func TestCollectionCyclesGrowsWithKernel(t *testing.T) {
	k, res := sampleKernel(t)
	c1 := CollectionCycles(res)
	if c1 <= res.Cycles {
		t.Error("sampling overhead below bare kernel time")
	}
	big := *res
	big.Cycles = res.Cycles * 100
	if CollectionCycles(&big) <= c1 {
		t.Error("overhead not increasing with kernel duration")
	}
	_ = k
}
