package cupti

import (
	"reflect"
	"testing"
)

// TestDeterminism: two identical launches must produce byte-identical
// PC-sampling reports — the repository's determinism guarantee (no RNG in
// the simulator or the sampler), which EXPERIMENTS.md relies on.
func TestDeterminism(t *testing.T) {
	k1, res1 := sampleKernel(t)
	k2, res2 := sampleKernel(t)
	r1, err := Collect(k1, res1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Collect(k2, res2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalSamples != r2.TotalSamples {
		t.Fatalf("sample totals differ: %v vs %v", r1.TotalSamples, r2.TotalSamples)
	}
	if !reflect.DeepEqual(r1.Samples, r2.Samples) {
		t.Error("sample series differ between identical runs")
	}
	if res1.Cycles != res2.Cycles {
		t.Errorf("cycle counts differ: %v vs %v", res1.Cycles, res2.Cycles)
	}
}
