// Package cupti is the stand-in for the NVIDIA CUPTI PC Sampling API
// (§2.2): it turns the simulator's exact per-PC stall-cycle integrals into
// periodic PC samples with stall reasons and source-line attribution, the
// data GPUscout's Warp Stalls pillar consumes.
//
// Samples are synthesized deterministically as integral/period — the same
// statistics a hardware periodic sampler converges to, without sampling
// noise.
package cupti

import (
	"fmt"
	"sort"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Config controls sample synthesis.
type Config struct {
	// PeriodCycles is the sampling period in SM cycles. CUPTI exposes
	// power-of-two periods; the default is 2048.
	PeriodCycles float64
}

// Sample is one aggregated PC-sampling record: how many samples landed on
// pc with the given stall reason.
type Sample struct {
	PC      uint64
	Line    int
	File    string
	Stall   sim.Stall
	Samples float64
}

// Report is the result of collecting PC samples for one kernel launch.
type Report struct {
	Kernel       string
	PeriodCycles float64
	TotalSamples float64
	Samples      []Sample // sorted by PC, then stall reason

	byPC   map[uint64]*[sim.NumStalls]float64
	byLine map[int]*[sim.NumStalls]float64
	kernel [sim.NumStalls]float64 // whole-kernel aggregate
}

// siteCollect is the fault-injection site covering sample synthesis.
var siteCollect = faultinject.Register("cupti.collect")

// Collect synthesizes the PC-sampling report for a finished launch.
func Collect(k *sass.Kernel, res *sim.Result, cfg Config) (*Report, error) {
	if err := faultinject.Hit(siteCollect); err != nil {
		return nil, fmt.Errorf("cupti: %w", err)
	}
	if res == nil || res.Counters == nil {
		return nil, fmt.Errorf("cupti: no simulation result")
	}
	period := cfg.PeriodCycles
	if period <= 0 {
		period = 2048
	}
	r := &Report{
		Kernel:       k.Name,
		PeriodCycles: period,
		byPC:         map[uint64]*[sim.NumStalls]float64{},
		byLine:       map[int]*[sim.NumStalls]float64{},
	}
	// Iterate PCs in address order: the sums below are floating-point
	// accumulations, and Go's randomized map order would make the low bits
	// of TotalSamples and the per-line aggregates vary run to run.
	pcs := make([]uint64, 0, len(res.Counters.PCStalls))
	for pc := range res.Counters.PCStalls {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		integ := res.Counters.PCStalls[pc]
		in := k.InstAt(pc)
		line, file := 0, k.SourceFile
		if in != nil {
			line = in.Line
			if in.File != "" {
				file = in.File
			}
		}
		for s := sim.Stall(0); s < sim.NumStalls; s++ {
			if integ[s] == 0 {
				continue
			}
			n := integ[s] / period
			r.Samples = append(r.Samples, Sample{
				PC: pc, Line: line, File: file, Stall: s, Samples: n,
			})
			r.TotalSamples += n
			pcAgg := r.byPC[pc]
			if pcAgg == nil {
				pcAgg = new([sim.NumStalls]float64)
				r.byPC[pc] = pcAgg
			}
			pcAgg[s] += n
			lnAgg := r.byLine[line]
			if lnAgg == nil {
				lnAgg = new([sim.NumStalls]float64)
				r.byLine[line] = lnAgg
			}
			lnAgg[s] += n
			r.kernel[s] += n
		}
	}
	sort.Slice(r.Samples, func(i, j int) bool {
		if r.Samples[i].PC != r.Samples[j].PC {
			return r.Samples[i].PC < r.Samples[j].PC
		}
		return r.Samples[i].Stall < r.Samples[j].Stall
	})
	return r, nil
}

// AtPC returns the per-reason sample counts for one PC.
func (r *Report) AtPC(pc uint64) [sim.NumStalls]float64 {
	if a := r.byPC[pc]; a != nil {
		return *a
	}
	return [sim.NumStalls]float64{}
}

// AtLine returns the per-reason sample counts aggregated over all
// instructions attributed to a source line.
func (r *Report) AtLine(line int) [sim.NumStalls]float64 {
	if a := r.byLine[line]; a != nil {
		return *a
	}
	return [sim.NumStalls]float64{}
}

// StallShareAtPC returns reason s's share of all non-selected samples at
// pc, in [0,1].
func (r *Report) StallShareAtPC(pc uint64, s sim.Stall) float64 {
	a := r.AtPC(pc)
	return share(a, s)
}

// StallShareAtLine is StallShareAtPC aggregated over a source line.
func (r *Report) StallShareAtLine(line int, s sim.Stall) float64 {
	a := r.AtLine(line)
	return share(a, s)
}

// KernelStallShare returns reason s's share across the whole kernel. The
// aggregate is accumulated in PC order at collection time, so the share
// is bit-identical across runs and worker counts.
func (r *Report) KernelStallShare(s sim.Stall) float64 {
	return share(r.kernel, s)
}

// TopStallsAtPC returns the stall reasons at pc ordered by sample count,
// excluding selected/not_selected bookkeeping reasons, limited to max.
func (r *Report) TopStallsAtPC(pc uint64, max int) []Sample {
	a := r.AtPC(pc)
	var out []Sample
	for s := sim.Stall(0); s < sim.NumStalls; s++ {
		if s == sim.StallSelected || s == sim.StallNotSelected {
			continue
		}
		if a[s] > 0 {
			out = append(out, Sample{PC: pc, Stall: s, Samples: a[s]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Samples > out[j].Samples })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

func share(a [sim.NumStalls]float64, s sim.Stall) float64 {
	var total float64
	for i := sim.Stall(0); i < sim.NumStalls; i++ {
		if i == sim.StallSelected {
			continue
		}
		total += a[i]
	}
	if total == 0 {
		return 0
	}
	return a[s] / total
}

// CollectionCycles models the runtime cost of PC sampling for the
// overhead analysis (Fig. 6): the kernel runs once under sampling with a
// small serialization slowdown, plus a fixed attach/flush cost that grows
// with the number of distinct PCs sampled.
func CollectionCycles(res *sim.Result) float64 {
	const (
		samplingSlowdown = 1.18
		fixedCycles      = 2.0e6
		perPCCycles      = 5.0e3
	)
	return res.Cycles*samplingSlowdown + fixedCycles +
		perPCCycles*float64(len(res.Counters.PCStalls))
}
