package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
)

// TestDifferentialRandomALU generates random straight-line ALU kernels,
// compiles them through the full kasm -> codegen pipeline (including
// tight register budgets that force spilling), executes them on the
// simulator, and compares every thread's results against a host-side
// evaluation of the same operation sequence. This is the end-to-end
// correctness property for the compiler + simulator pair.
func TestDifferentialRandomALU(t *testing.T) {
	f := func(seed int64, budget8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		budget := 10 + int(budget8%40) // 10..49 registers

		const numVals = 10
		const numOps = 24
		const threads = 64

		b := kasm.NewBuilder("_Zdiff", "sm_70", "diff.cu")
		b.NumParams(2)
		b.Line(1)
		tid := b.TidX()
		in := b.ParamPtr(0)
		out := b.ParamPtr(1)

		// Host model: per-thread value state, updated in lockstep with
		// the emitted instructions.
		host := make([][]uint32, threads)
		for th := range host {
			host[th] = make([]uint32, numVals)
		}

		// Initial values come from global memory: in[tid*numVals + j].
		inData := make([]uint32, threads*numVals)
		for i := range inData {
			// Small floats/ints keep both interpretations tame.
			inData[i] = math.Float32bits(float32(r.Intn(64)) * 0.25)
		}
		base := b.IMul(kasm.VR(tid), kasm.VImm(numVals*4))
		addr := b.IMadWide(kasm.VR(base), kasm.VImm(1), in)
		vals := make([]kasm.VReg, numVals)
		for j := 0; j < numVals; j++ {
			vals[j] = b.Ldg(addr, int64(4*j), 4, false)
			for th := 0; th < threads; th++ {
				host[th][j] = inData[th*numVals+j]
			}
		}

		// Random op sequence.
		for op := 0; op < numOps; op++ {
			d := r.Intn(numVals)
			a := r.Intn(numVals)
			c := r.Intn(numVals)
			av, cv := kasm.VR(vals[a]), kasm.VR(vals[c])
			switch r.Intn(8) {
			case 0: // integer add
				b.IAddTo(kasm.VR(vals[d]), av, cv)
				apply(host, func(x []uint32) uint32 { return uint32(int32(x[a]) + int32(x[c])) }, d)
			case 1: // integer mad
				b.IMadTo(kasm.VR(vals[d]), av, cv, kasm.VImm(3))
				apply(host, func(x []uint32) uint32 { return uint32(int32(x[a])*int32(x[c]) + 3) }, d)
			case 2: // float add
				b.FAddTo(kasm.VR(vals[d]), av, cv)
				apply(host, func(x []uint32) uint32 {
					return math.Float32bits(math.Float32frombits(x[a]) + math.Float32frombits(x[c]))
				}, d)
			case 3: // float fma
				b.FFmaTo(kasm.VR(vals[d]), av, cv, kasm.VR(vals[d]))
				apply(host, func(x []uint32) uint32 {
					return math.Float32bits(math.Float32frombits(x[a])*math.Float32frombits(x[c]) + math.Float32frombits(x[d]))
				}, d)
			case 4: // shift left by 1..3
				n := int64(r.Intn(3) + 1)
				sh := b.Shl(av, n)
				vals[d] = sh
				apply(host, func(x []uint32) uint32 { return x[a] << uint(n) }, d)
			case 5: // integer min
				m := b.IMin(av, cv)
				vals[d] = m
				apply(host, func(x []uint32) uint32 {
					if int32(x[a]) < int32(x[c]) {
						return x[a]
					}
					return x[c]
				}, d)
			case 6: // int -> float
				cvt := b.I2F(av)
				vals[d] = cvt
				apply(host, func(x []uint32) uint32 { return math.Float32bits(float32(int32(x[a]))) }, d)
			case 7: // float -> int
				cvt := b.F2I(av)
				vals[d] = cvt
				apply(host, func(x []uint32) uint32 { return uint32(int32(math.Float32frombits(x[a]))) }, d)
			}
		}

		// Store all values back.
		oaddr := b.IMadWide(kasm.VR(base), kasm.VImm(1), out)
		for j := 0; j < numVals; j++ {
			b.Stg(oaddr, int64(4*j), vals[j], 4)
		}
		b.Exit()

		p, err := b.Build()
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		k, err := codegen.Compile(p, codegen.Options{MaxRegs: budget})
		if err != nil {
			t.Logf("compile (budget %d): %v", budget, err)
			return false
		}
		if k.NumRegs > budget {
			t.Logf("budget exceeded: %d > %d", k.NumRegs, budget)
			return false
		}

		dev := NewDevice(gpu.V100())
		inBuf := dev.MustAlloc(4 * threads * numVals)
		outBuf := dev.MustAlloc(4 * threads * numVals)
		raw := make([]byte, 4*threads*numVals)
		for i, v := range inData {
			raw[4*i] = byte(v)
			raw[4*i+1] = byte(v >> 8)
			raw[4*i+2] = byte(v >> 16)
			raw[4*i+3] = byte(v >> 24)
		}
		if err := dev.CopyToDevice(inBuf, raw); err != nil {
			t.Logf("copy: %v", err)
			return false
		}
		if _, err := Launch(dev, LaunchSpec{
			Kernel: k, Grid: D1(1), Block: D1(threads),
			Params: []uint64{inBuf.Addr, outBuf.Addr},
		}, Config{}); err != nil {
			t.Logf("launch: %v", err)
			return false
		}
		got := make([]byte, 4*threads*numVals)
		if err := dev.CopyFromDevice(got, outBuf); err != nil {
			t.Logf("copy back: %v", err)
			return false
		}
		for th := 0; th < threads; th++ {
			for j := 0; j < numVals; j++ {
				i := th*numVals + j
				g := uint32(got[4*i]) | uint32(got[4*i+1])<<8 | uint32(got[4*i+2])<<16 | uint32(got[4*i+3])<<24
				if g != host[th][j] {
					t.Logf("seed %d budget %d: thread %d val %d = %#x, host %#x",
						seed, budget, th, j, g, host[th][j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// apply updates every thread's host state for destination slot d.
func apply(host [][]uint32, f func(x []uint32) uint32, d int) {
	for th := range host {
		host[th][d] = f(host[th])
	}
}
