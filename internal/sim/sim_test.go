package sim

import (
	"math"
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

func compile(t *testing.T, b *kasm.Builder, opts codegen.Options) *sass.Kernel {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, err := codegen.Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return k
}

// vecAddKernel: out[i] = a[i] + b[i] for i < n, with a bounds guard.
func vecAddKernel(t *testing.T) *sass.Kernel {
	b := kasm.NewBuilder("_Z6vecaddPfS_S_i", "sm_70", "vecadd.cu")
	b.NumParams(4)
	b.Line(2)
	tid := b.TidX()
	ctaid := b.CtaidX()
	ntid := b.NTidX()
	i := b.IMad(kasm.VR(ctaid), kasm.VR(ntid), kasm.VR(tid))
	b.Line(3)
	n := b.Param32(3)
	p := b.ISetp("GE", kasm.VR(i), kasm.VR(n))
	b.ExitPred(p, false)
	b.Line(4)
	pa := b.ParamPtr(0)
	pb := b.ParamPtr(1)
	pc := b.ParamPtr(2)
	off := b.Shl(kasm.VR(i), 2)
	addrA := b.IMadWide(kasm.VR(off), kasm.VImm(1), pa)
	addrB := b.IMadWide(kasm.VR(off), kasm.VImm(1), pb)
	addrC := b.IMadWide(kasm.VR(off), kasm.VImm(1), pc)
	va := b.Ldg(addrA, 0, 4, false)
	vb := b.Ldg(addrB, 0, 4, false)
	sum := b.FAdd(kasm.VR(va), kasm.VR(vb))
	b.Line(5)
	b.Stg(addrC, 0, sum, 4)
	b.Exit()
	return compile(t, b, codegen.Options{})
}

func TestVecAdd(t *testing.T) {
	k := vecAddKernel(t)
	dev := NewDevice(gpu.V100())
	const n = 1000 // deliberately not a multiple of the block size
	a := dev.MustAlloc(4 * n)
	bb := dev.MustAlloc(4 * n)
	c := dev.MustAlloc(4 * n)
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = 2 * float32(i)
	}
	if err := dev.WriteF32(a, av); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteF32(bb, bv); err != nil {
		t.Fatal(err)
	}
	res, err := Launch(dev, LaunchSpec{
		Kernel: k,
		Grid:   D1((n + 127) / 128),
		Block:  D1(128),
		Params: []uint64{a.Addr, bb.Addr, c.Addr, n},
	}, Config{SampleSMs: dev.Arch.NumSMs}) // sample every SM so all blocks run
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(c, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 3*float32(i) {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], 3*float32(i))
		}
	}
	if res.Cycles <= 0 {
		t.Error("zero cycles")
	}
	if res.Counters.GlobalLdInsts == 0 || res.Counters.GlobalStInsts == 0 {
		t.Error("no global traffic counted")
	}
	if res.Scale != 1 {
		t.Errorf("Scale = %v, want 1 with all SMs sampled", res.Scale)
	}
}

// loopSumKernel: out[tid] = sum(in[tid*len .. tid*len+len)).
func loopSumKernel(t *testing.T, length int) *sass.Kernel {
	b := kasm.NewBuilder("_Z7loopsumPfS_", "sm_70", "loopsum.cu")
	b.NumParams(2)
	b.Line(2)
	tid := b.TidX()
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	base := b.IMul(kasm.VR(tid), kasm.VImm(int64(length*4)))
	addr := b.IMadWide(kasm.VR(base), kasm.VImm(1), in)
	i := b.MovImm(0)
	acc := b.MovImmF32(0)
	b.Line(4)
	b.LabelName("loop")
	v := b.Ldg(addr, 0, 4, false)
	b.FAddTo(kasm.VR(acc), kasm.VR(acc), kasm.VR(v))
	b.IAddTo(kasm.VRElem(addr, 0), kasm.VRElem(addr, 0), kasm.VImm(4))
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p := b.ISetp("LT", kasm.VR(i), kasm.VImm(int64(length)))
	b.BraIf(p, false, "loop")
	b.Line(6)
	outOff := b.Shl(kasm.VR(tid), 2)
	oaddr := b.IMadWide(kasm.VR(outOff), kasm.VImm(1), out)
	b.Stg(oaddr, 0, acc, 4)
	b.Exit()
	return compile(t, b, codegen.Options{})
}

func TestLoopSum(t *testing.T) {
	const threads, length = 64, 10
	k := loopSumKernel(t, length)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * threads * length)
	out := dev.MustAlloc(4 * threads)
	vals := make([]float32, threads*length)
	for i := range vals {
		vals[i] = float32(i % 7)
	}
	if err := dev.WriteF32(in, vals); err != nil {
		t.Fatal(err)
	}
	_, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(threads),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(out, threads)
	if err != nil {
		t.Fatal(err)
	}
	for tidx := 0; tidx < threads; tidx++ {
		var want float32
		for j := 0; j < length; j++ {
			want += vals[tidx*length+j]
		}
		if got[tidx] != want {
			t.Fatalf("out[%d] = %v, want %v", tidx, got[tidx], want)
		}
	}
}

// divergeKernel: out[i] = (i % 2 == 0) ? 10 : 20, via an if/else diamond.
func divergeKernel(t *testing.T) *sass.Kernel {
	b := kasm.NewBuilder("_Z7divergePf", "sm_70", "diverge.cu")
	b.NumParams(1)
	b.Line(2)
	tid := b.TidX()
	out := b.ParamPtr(0)
	bit := b.And(kasm.VR(tid), kasm.VImm(1))
	res := b.MovImmF32(0)
	p := b.ISetp("EQ", kasm.VR(bit), kasm.VImm(0))
	b.Line(3)
	b.BraIf(p, true, "odd") // branch if bit != 0
	b.MovTo(kasm.VR(res), kasm.VImm(int64(math.Float32bits(10))))
	b.Bra("join")
	b.Line(4)
	b.LabelName("odd")
	b.MovTo(kasm.VR(res), kasm.VImm(int64(math.Float32bits(20))))
	b.Line(5)
	b.LabelName("join")
	off := b.Shl(kasm.VR(tid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(addr, 0, res, 4)
	b.Exit()
	return compile(t, b, codegen.Options{})
}

func TestDivergence(t *testing.T) {
	k := divergeKernel(t)
	dev := NewDevice(gpu.V100())
	out := dev.MustAlloc(4 * 64)
	_, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(64),
		Params: []uint64{out.Addr},
	}, Config{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(out, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := float32(10)
		if i%2 == 1 {
			want = 20
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// sharedReverseKernel: out[i] = in[blockDim-1-i] within each block, via
// shared memory and a barrier.
func sharedReverseKernel(t *testing.T, blockSize int) *sass.Kernel {
	b := kasm.NewBuilder("_Z8sreversePfS_", "sm_70", "sreverse.cu")
	b.NumParams(2)
	sh := b.AllocShared(blockSize * 4)
	b.Line(2)
	tid := b.TidX()
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	off := b.Shl(kasm.VR(tid), 2)
	iaddr := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	v := b.Ldg(iaddr, 0, 4, false)
	b.Line(3)
	b.Sts(off, sh, v, 4)
	b.Line(4)
	b.Bar()
	b.Line(5)
	// roff = (blockSize-1)*4 - off, via IMAD with multiplier -1.
	rev := b.MovImm(int64((blockSize - 1) * 4))
	roff := b.IMad(kasm.VR(off), kasm.VImm(-1), kasm.VR(rev))
	rv := b.Lds(roff, sh, 4)
	b.Line(6)
	oaddr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(oaddr, 0, rv, 4)
	b.Exit()
	return compile(t, b, codegen.Options{})
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	const bs = 128
	k := sharedReverseKernel(t, bs)
	if k.SharedBytes < bs*4 {
		t.Fatalf("SharedBytes = %d", k.SharedBytes)
	}
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * bs)
	out := dev.MustAlloc(4 * bs)
	vals := make([]float32, bs)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := dev.WriteF32(in, vals); err != nil {
		t.Fatal(err)
	}
	res, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(bs),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(out, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[bs-1-i] {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], vals[bs-1-i])
		}
	}
	if res.Counters.SharedLdInsts == 0 || res.Counters.SharedStInsts == 0 {
		t.Error("shared traffic not counted")
	}
	if res.Counters.StallCycles[StallBarrier] <= 0 {
		t.Error("no barrier stalls recorded")
	}
}

// atomicSumKernel: every thread atomically adds its tid to out[0].
func atomicSumKernel(t *testing.T, shared bool) *sass.Kernel {
	name := "_Z7atomsumPf"
	if shared {
		name = "_Z8atomsumsPf"
	}
	b := kasm.NewBuilder(name, "sm_70", "atomsum.cu")
	b.NumParams(1)
	b.Line(2)
	tid := b.TidX()
	out := b.ParamPtr(0)
	v := b.I2F(kasm.VR(tid))
	if !shared {
		b.Line(3)
		b.RedAddF32(out, 0, v)
	} else {
		// Accumulate in shared memory, then every thread stores the
		// (identical) block total back to global memory.
		sh := b.AllocShared(16)
		zero := b.MovImmF32(0)
		shaddr := b.MovImm(0)
		b.Sts(shaddr, sh, zero, 4)
		b.Bar()
		b.Line(3)
		b.AtomsAddF32(shaddr, sh, v)
		b.Bar()
		rv := b.Lds(shaddr, sh, 4)
		b.Line(4)
		zoff := b.MovImm(0)
		stg := b.IMadWide(kasm.VR(zoff), kasm.VImm(1), out)
		b.RedAddF32(stg, 0, rv)
		_ = stg
	}
	b.Exit()
	return compile(t, b, codegen.Options{})
}

func TestGlobalAtomics(t *testing.T) {
	k := atomicSumKernel(t, false)
	dev := NewDevice(gpu.V100())
	out := dev.MustAlloc(16)
	if err := dev.WriteF32(out, []float32{0}); err != nil {
		t.Fatal(err)
	}
	const threads = 256
	res, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(2), Block: D1(threads / 2),
		Params: []uint64{out.Addr},
	}, Config{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sum over both blocks of tid (0..127) = 2 * 127*128/2.
	want := float32(127 * 128)
	if got[0] != want {
		t.Errorf("atomic sum = %v, want %v", got[0], want)
	}
	if res.Counters.GlobalAtomics != threads {
		t.Errorf("GlobalAtomics = %d, want %d", res.Counters.GlobalAtomics, threads)
	}
}

func TestSpilledKernelCorrectness(t *testing.T) {
	// The same kernel compiled with and without spilling must agree.
	build := func(maxRegs int) *sass.Kernel {
		b := kasm.NewBuilder("_Z5spillPfS_", "sm_70", "spill.cu")
		b.NumParams(2)
		b.Line(2)
		in := b.ParamPtr(0)
		out := b.ParamPtr(1)
		const n = 20
		vals := make([]kasm.VReg, n)
		for i := 0; i < n; i++ {
			b.Line(3 + i)
			vals[i] = b.Ldg(in, int64(4*i), 4, false)
		}
		acc := b.MovImmF32(0)
		for i := 0; i < n; i++ {
			b.FFmaTo(kasm.VR(acc), kasm.VR(vals[i]), kasm.VImm(int64(math.Float32bits(float32(i+1)))), kasm.VR(acc))
		}
		b.Stg(out, 0, acc, 4)
		b.Exit()
		return compile(t, b, codegen.Options{MaxRegs: maxRegs})
	}
	run := func(k *sass.Kernel) (float32, *Result) {
		dev := NewDevice(gpu.V100())
		in := dev.MustAlloc(4 * 32)
		out := dev.MustAlloc(16)
		vals := make([]float32, 32)
		for i := range vals {
			vals[i] = float32(i) * 0.5
		}
		if err := dev.WriteF32(in, vals); err != nil {
			t.Fatal(err)
		}
		res, err := Launch(dev, LaunchSpec{
			Kernel: k, Grid: D1(1), Block: D1(32),
			Params: []uint64{in.Addr, out.Addr},
		}, Config{})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		got, err := dev.ReadF32(out, 1)
		if err != nil {
			t.Fatal(err)
		}
		return got[0], res
	}
	wide := build(0)
	tight := build(12)
	if ops := tight.CountOpcodes(); ops[sass.OpSTL] == 0 {
		t.Fatal("tight build did not spill")
	}
	wantVal, wideRes := run(wide)
	gotVal, tightRes := run(tight)
	if gotVal != wantVal {
		t.Errorf("spilled result %v != unspilled %v", gotVal, wantVal)
	}
	if tightRes.Counters.LocalLdSectors == 0 || tightRes.Counters.LocalStSectors == 0 {
		t.Error("no local traffic from spilled kernel")
	}
	if wideRes.Counters.LocalLdSectors != 0 {
		t.Error("unspilled kernel has local traffic")
	}
	// Spilling must slow the kernel down.
	if tightRes.Cycles <= wideRes.Cycles {
		t.Errorf("spilled kernel not slower: %v vs %v cycles", tightRes.Cycles, wideRes.Cycles)
	}
}

func TestTexture(t *testing.T) {
	// out[y*W+x] = tex2D(x, y) copies the texture.
	const W, H = 32, 8
	b := kasm.NewBuilder("_Z7texcopyPf", "sm_70", "texcopy.cu")
	b.NumParams(1)
	b.Line(2)
	tid := b.TidX() // x
	cta := b.CtaidX()
	out := b.ParamPtr(0)
	v := b.Tex2D(0, kasm.VR(tid), kasm.VR(cta))
	b.Line(3)
	lin := b.IMad(kasm.VR(cta), kasm.VImm(W), kasm.VR(tid))
	off := b.Shl(kasm.VR(lin), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(addr, 0, v, 4)
	b.Exit()
	k := compile(t, b, codegen.Options{})

	dev := NewDevice(gpu.V100())
	texBuf := dev.MustAlloc(4 * W * H)
	outBuf := dev.MustAlloc(4 * W * H)
	vals := make([]float32, W*H)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	if err := dev.WriteF32(texBuf, vals); err != nil {
		t.Fatal(err)
	}
	texID, err := dev.BindTexture2D(texBuf, W, H)
	if err != nil {
		t.Fatal(err)
	}
	if texID != 0 {
		t.Fatalf("texID = %d", texID)
	}
	res, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(H), Block: D1(W),
		Params: []uint64{outBuf.Addr},
	}, Config{SampleSMs: dev.Arch.NumSMs}) // sample every SM so all blocks run
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(outBuf, W*H)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	if res.Counters.TexInsts == 0 || res.Counters.TexSectors == 0 {
		t.Error("texture traffic not counted")
	}
}

func TestStallAccountingInvariant(t *testing.T) {
	// Every live warp accrues exactly dt per advancement in exactly one
	// bucket, so the per-reason totals must sum to ActiveWarpCycles.
	k := loopSumKernel(t, 16)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 256 * 16)
	out := dev.MustAlloc(4 * 256)
	res, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(4), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	var sum float64
	for s := Stall(0); s < NumStalls; s++ {
		sum += res.Counters.StallCycles[s]
	}
	if diff := math.Abs(sum - res.Counters.ActiveWarpCycles); diff > 1e-6*sum+1 {
		t.Errorf("stall sum %v != active warp cycles %v", sum, res.Counters.ActiveWarpCycles)
	}
	// Per-PC integrals must sum to the same totals.
	var pcSum float64
	for _, arr := range res.Counters.PCStalls {
		for s := Stall(0); s < NumStalls; s++ {
			pcSum += arr[s]
		}
	}
	if diff := math.Abs(pcSum - sum); diff > 1e-6*sum+1 {
		t.Errorf("per-PC sum %v != total %v", pcSum, sum)
	}
	if res.AchievedOccupancy <= 0 || res.AchievedOccupancy > 1 {
		t.Errorf("AchievedOccupancy = %v", res.AchievedOccupancy)
	}
}

func TestLaunchErrors(t *testing.T) {
	k := vecAddKernel(t)
	dev := NewDevice(gpu.V100())
	if _, err := Launch(dev, LaunchSpec{Kernel: k, Grid: D1(0), Block: D1(32)}, Config{}); err == nil {
		t.Error("accepted empty grid")
	}
	if _, err := Launch(dev, LaunchSpec{Kernel: k, Grid: D1(1), Block: D1(2048)}, Config{}); err == nil {
		t.Error("accepted oversized block")
	}
	// Out-of-bounds access surfaces as an execution error with location.
	// (The 16-byte buffer is padded to 256 by alignment; 512 threads
	// reach far beyond it.)
	buf := dev.MustAlloc(16)
	_, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(512),
		Params: []uint64{buf.Addr, buf.Addr, buf.Addr, 512},
	}, Config{})
	if err == nil {
		t.Error("out-of-bounds access not detected")
	}
	var ee *execError
	if err != nil && !asExecError(err, &ee) {
		t.Errorf("error %v is not an execError with location", err)
	}
}

// asExecError unwraps err looking for an *execError.
func asExecError(err error, target **execError) bool {
	for err != nil {
		if ee, ok := err.(*execError); ok {
			*target = ee
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
