package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpuscout/internal/gpu"
)

// TestLaunchContextCancelled: an already-cancelled context aborts the
// launch with an error satisfying errors.Is(err, context.Canceled).
func TestLaunchContextCancelled(t *testing.T) {
	k := loopSumKernel(t, 10)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 64 * 10)
	out := dev.MustAlloc(4 * 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LaunchContext(ctx, dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLaunchContextDeadline: a deadline expiring mid-simulation
// interrupts a long launch instead of letting it run to completion.
func TestLaunchContextDeadline(t *testing.T) {
	k := loopSumKernel(t, 20000) // long-running loop
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 64 * 20000)
	out := dev.MustAlloc(4 * 64)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := LaunchContext(ctx, dev, LaunchSpec{
		Kernel: k, Grid: D1(8), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v — the poll is not interrupting the loop", elapsed)
	}
}

// TestLaunchNilContext: Launch (and a nil ctx) behave as Background.
func TestLaunchNilContext(t *testing.T) {
	k := loopSumKernel(t, 5)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 64 * 5)
	out := dev.MustAlloc(4 * 64)
	if _, err := LaunchContext(nil, dev, LaunchSpec{ //nolint:staticcheck // nil ctx tolerance is the contract under test
		Kernel: k, Grid: D1(1), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}
