package sim

import (
	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
)

// Counters are the raw hardware event counts a kernel launch produces.
// internal/ncu derives its named metrics from these; internal/cupti
// derives PC samples from the per-PC stall integrals.
type Counters struct {
	// Issue and instruction mix.
	WarpInsts   uint64 // warp instructions issued
	ThreadInsts uint64 // thread instructions (x active lanes)
	OpcodeDyn   map[sass.Opcode]uint64

	// Sector traffic through L1TEX by space and direction. A sector is
	// Arch.L1SectorBytes wide (32 B on Volta, matching l1tex__t_sectors_*
	// semantics; wider on Ampere-class targets).
	GlobalLdSectors, GlobalLdSectorHits uint64
	GlobalStSectors                     uint64
	LocalLdSectors, LocalLdSectorHits   uint64
	LocalStSectors                      uint64
	TexSectors, TexSectorHits           uint64 // texture + LDG.E.NC reads

	// Memory instruction counts by space.
	GlobalLdInsts, GlobalStInsts uint64
	LocalLdInsts, LocalStInsts   uint64
	SharedLdInsts, SharedStInsts uint64
	TexInsts                     uint64
	GlobalAtomics, SharedAtomics uint64

	// cp.async-style global→shared copies (LDGSTS, sm_80+). These bypass
	// L1 and the register file, so their sectors are tracked separately
	// from the GlobalLd* L1TEX counters.
	AsyncCopyInsts, AsyncCopySectors uint64

	// Shared-memory transactions vs accesses (bank-conflict ratio §4.3).
	SharedLdTrans, SharedStTrans uint64

	// L2 and DRAM.
	L2Sectors, L2Hits             uint64
	L2ReadSectors, L2WriteSectors uint64
	DRAMReadBytes, DRAMWriteBytes uint64

	// Stall integrals: total and per PC, in warp-cycles.
	StallCycles [NumStalls]float64
	PCStalls    map[uint64]*[NumStalls]float64

	// Occupancy accounting.
	ActiveWarpCycles float64 // integral of resident, unfinished warps over time
	SMBusyCycles     float64 // sum over simulated SMs of their busy time
}

func newCounters() *Counters {
	return &Counters{
		OpcodeDyn: map[sass.Opcode]uint64{},
		PCStalls:  map[uint64]*[NumStalls]float64{},
	}
}

func (c *Counters) pcStall(pc uint64) *[NumStalls]float64 {
	s := c.PCStalls[pc]
	if s == nil {
		s = new([NumStalls]float64)
		c.PCStalls[pc] = s
	}
	return s
}

func (c *Counters) addStall(pc uint64, reason Stall, dt float64) {
	c.StallCycles[reason] += dt
	c.pcStall(pc)[reason] += dt
}

// merge folds one SM's counters into c. LaunchContext calls it in fixed
// SM-ID order for every worker count, so float accumulation order — and
// hence every value here — is identical between sequential and parallel
// runs. Keep this exhaustive over the struct's fields;
// TestCountersMergeCoversAllFields enforces it by reflection.
func (c *Counters) merge(o *Counters) {
	c.WarpInsts += o.WarpInsts
	c.ThreadInsts += o.ThreadInsts
	for op, n := range o.OpcodeDyn {
		c.OpcodeDyn[op] += n
	}

	c.GlobalLdSectors += o.GlobalLdSectors
	c.GlobalLdSectorHits += o.GlobalLdSectorHits
	c.GlobalStSectors += o.GlobalStSectors
	c.LocalLdSectors += o.LocalLdSectors
	c.LocalLdSectorHits += o.LocalLdSectorHits
	c.LocalStSectors += o.LocalStSectors
	c.TexSectors += o.TexSectors
	c.TexSectorHits += o.TexSectorHits

	c.GlobalLdInsts += o.GlobalLdInsts
	c.GlobalStInsts += o.GlobalStInsts
	c.LocalLdInsts += o.LocalLdInsts
	c.LocalStInsts += o.LocalStInsts
	c.SharedLdInsts += o.SharedLdInsts
	c.SharedStInsts += o.SharedStInsts
	c.TexInsts += o.TexInsts
	c.GlobalAtomics += o.GlobalAtomics
	c.SharedAtomics += o.SharedAtomics

	c.AsyncCopyInsts += o.AsyncCopyInsts
	c.AsyncCopySectors += o.AsyncCopySectors

	c.SharedLdTrans += o.SharedLdTrans
	c.SharedStTrans += o.SharedStTrans

	c.L2Sectors += o.L2Sectors
	c.L2Hits += o.L2Hits
	c.L2ReadSectors += o.L2ReadSectors
	c.L2WriteSectors += o.L2WriteSectors
	c.DRAMReadBytes += o.DRAMReadBytes
	c.DRAMWriteBytes += o.DRAMWriteBytes

	for s := Stall(0); s < NumStalls; s++ {
		c.StallCycles[s] += o.StallCycles[s]
	}
	for pc, arr := range o.PCStalls {
		dst := c.pcStall(pc)
		for s := Stall(0); s < NumStalls; s++ {
			dst[s] += arr[s]
		}
	}

	c.ActiveWarpCycles += o.ActiveWarpCycles
	c.SMBusyCycles += o.SMBusyCycles
}

// HostStats reports host-side execution statistics of one launch: how
// long the SM-simulation phase took on the wall clock, the aggregate
// time the individual SMs consumed (their ratio is the achieved parallel
// speedup), and the worker cap in effect. Host values vary run to run
// and are excluded from the determinism guarantee below.
type HostStats struct {
	// Workers is the effective concurrency cap (after resolving 0 to
	// GOMAXPROCS and clamping to the number of sampled SMs with work).
	Workers int
	// WallSeconds is the elapsed host time of the SM-simulation phase.
	WallSeconds float64
	// SMSeconds sums each SM's individual host simulation time; with
	// perfect scaling WallSeconds approaches SMSeconds / Workers.
	SMSeconds float64
}

// Speedup returns the achieved parallel speedup of the launch
// (aggregate per-SM host time over wall time; 1 when sequential).
func (h HostStats) Speedup() float64 {
	if h.WallSeconds <= 0 {
		return 1
	}
	return h.SMSeconds / h.WallSeconds
}

// Result is the outcome of one simulated kernel launch.
//
// Determinism: for a fixed device state, spec, SampleSMs and MaxCycles,
// every field except Host is bit-identical for every Config.Workers
// value — per-SM state is confined, and the per-SM counters are merged
// in fixed SM-ID order (see DESIGN.md "Parallel per-SM simulation").
type Result struct {
	Kernel      string
	Grid, Block Dim3

	// Cycles is the kernel duration in SM cycles (max over SMs);
	// DurationSec converts it at the modeled clock.
	Cycles      float64
	DurationSec float64

	// Occupancy from the launch configuration, and the achieved value
	// measured during execution.
	Occupancy         gpu.Occupancy
	AchievedOccupancy float64

	// Scale is the block-sampling multiplier applied to chip-wide
	// counters (1 when every block was simulated).
	Scale           float64
	SimulatedBlocks int
	TotalBlocks     int
	NumSMs          int       // SMs on the modeled chip
	SimulatedSMs    int       // SMs actually simulated
	SMFinish        []float64 // per simulated SM, its finish time in cycles

	Counters *Counters

	// Host carries host-side timing of the launch (wall time, aggregate
	// per-SM time, workers); the one field outside the determinism
	// guarantee.
	Host HostStats
}

// BlockRan reports whether the block with the given linearized index
// (X-major) was simulated. Under SM sampling only blocks assigned to the
// simulated SMs execute; verification must skip the rest.
func (r *Result) BlockRan(linear int) bool {
	if r.NumSMs <= 0 {
		return true
	}
	return linear%r.NumSMs < r.SimulatedSMs
}

// StallShare returns stall reason r's fraction of all non-selected stall
// cycles, in [0,1].
func (r *Result) StallShare(s Stall) float64 {
	var total float64
	for i := Stall(0); i < NumStalls; i++ {
		if i == StallSelected {
			continue
		}
		total += r.Counters.StallCycles[i]
	}
	if total == 0 {
		return 0
	}
	return r.Counters.StallCycles[s] / total
}

// StallsAtPC returns the per-reason stall cycles recorded at one PC.
func (r *Result) StallsAtPC(pc uint64) [NumStalls]float64 {
	if s := r.Counters.PCStalls[pc]; s != nil {
		return *s
	}
	return [NumStalls]float64{}
}

// IPC returns issued warp instructions per cycle across the simulated SMs.
func (r *Result) IPC() float64 {
	if r.Counters.SMBusyCycles == 0 {
		return 0
	}
	return float64(r.Counters.WarpInsts) / r.Counters.SMBusyCycles
}
