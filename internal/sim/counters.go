package sim

import (
	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
)

// Counters are the raw hardware event counts a kernel launch produces.
// internal/ncu derives its named metrics from these; internal/cupti
// derives PC samples from the per-PC stall integrals.
type Counters struct {
	// Issue and instruction mix.
	WarpInsts   uint64 // warp instructions issued
	ThreadInsts uint64 // thread instructions (x active lanes)
	OpcodeDyn   map[sass.Opcode]uint64

	// Sector traffic through L1TEX by space and direction. A sector is
	// 32 bytes, matching l1tex__t_sectors_* semantics.
	GlobalLdSectors, GlobalLdSectorHits uint64
	GlobalStSectors                     uint64
	LocalLdSectors, LocalLdSectorHits   uint64
	LocalStSectors                      uint64
	TexSectors, TexSectorHits           uint64 // texture + LDG.E.NC reads

	// Memory instruction counts by space.
	GlobalLdInsts, GlobalStInsts uint64
	LocalLdInsts, LocalStInsts   uint64
	SharedLdInsts, SharedStInsts uint64
	TexInsts                     uint64
	GlobalAtomics, SharedAtomics uint64

	// Shared-memory transactions vs accesses (bank-conflict ratio §4.3).
	SharedLdTrans, SharedStTrans uint64

	// L2 and DRAM.
	L2Sectors, L2Hits             uint64
	L2ReadSectors, L2WriteSectors uint64
	DRAMReadBytes, DRAMWriteBytes uint64

	// Stall integrals: total and per PC, in warp-cycles.
	StallCycles [NumStalls]float64
	PCStalls    map[uint64]*[NumStalls]float64

	// Occupancy accounting.
	ActiveWarpCycles float64 // integral of resident, unfinished warps over time
	SMBusyCycles     float64 // sum over simulated SMs of their busy time
}

func newCounters() *Counters {
	return &Counters{
		OpcodeDyn: map[sass.Opcode]uint64{},
		PCStalls:  map[uint64]*[NumStalls]float64{},
	}
}

func (c *Counters) pcStall(pc uint64) *[NumStalls]float64 {
	s := c.PCStalls[pc]
	if s == nil {
		s = new([NumStalls]float64)
		c.PCStalls[pc] = s
	}
	return s
}

func (c *Counters) addStall(pc uint64, reason Stall, dt float64) {
	c.StallCycles[reason] += dt
	c.pcStall(pc)[reason] += dt
}

// Result is the outcome of one simulated kernel launch.
type Result struct {
	Kernel      string
	Grid, Block Dim3

	// Cycles is the kernel duration in SM cycles (max over SMs);
	// DurationSec converts it at the modeled clock.
	Cycles      float64
	DurationSec float64

	// Occupancy from the launch configuration, and the achieved value
	// measured during execution.
	Occupancy         gpu.Occupancy
	AchievedOccupancy float64

	// Scale is the block-sampling multiplier applied to chip-wide
	// counters (1 when every block was simulated).
	Scale           float64
	SimulatedBlocks int
	TotalBlocks     int
	NumSMs          int       // SMs on the modeled chip
	SimulatedSMs    int       // SMs actually simulated
	SMFinish        []float64 // per simulated SM, its finish time in cycles

	Counters *Counters
}

// BlockRan reports whether the block with the given linearized index
// (X-major) was simulated. Under SM sampling only blocks assigned to the
// simulated SMs execute; verification must skip the rest.
func (r *Result) BlockRan(linear int) bool {
	if r.NumSMs <= 0 {
		return true
	}
	return linear%r.NumSMs < r.SimulatedSMs
}

// StallShare returns stall reason r's fraction of all non-selected stall
// cycles, in [0,1].
func (r *Result) StallShare(s Stall) float64 {
	var total float64
	for i := Stall(0); i < NumStalls; i++ {
		if i == StallSelected {
			continue
		}
		total += r.Counters.StallCycles[i]
	}
	if total == 0 {
		return 0
	}
	return r.Counters.StallCycles[s] / total
}

// StallsAtPC returns the per-reason stall cycles recorded at one PC.
func (r *Result) StallsAtPC(pc uint64) [NumStalls]float64 {
	if s := r.Counters.PCStalls[pc]; s != nil {
		return *s
	}
	return [NumStalls]float64{}
}

// IPC returns issued warp instructions per cycle across the simulated SMs.
func (r *Result) IPC() float64 {
	if r.Counters.SMBusyCycles == 0 {
		return 0
	}
	return float64(r.Counters.WarpInsts) / r.Counters.SMBusyCycles
}
