package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
)

func TestBlocksForSM(t *testing.T) {
	cases := []struct {
		name   string
		grid   Dim3
		smID   int
		numSMs int
		want   []Dim3
	}{
		{
			// Zero dims normalize to 1: a single block for SM 0.
			name: "empty grid", grid: Dim3{}, smID: 0, numSMs: 4,
			want: []Dim3{{X: 0, Y: 0, Z: 0}},
		},
		{
			// Grid smaller than the SM count: trailing SMs get nothing.
			name: "grid smaller than SM count", grid: D1(2), smID: 3, numSMs: 4,
			want: nil,
		},
		{
			name: "grid smaller than SM count, covered SM", grid: D1(2), smID: 1, numSMs: 4,
			want: []Dim3{{X: 1}},
		},
		{
			// Round robin: SM 1 of 4 over 10 blocks gets linear 1, 5, 9.
			name: "1-D round robin", grid: D1(10), smID: 1, numSMs: 4,
			want: []Dim3{{X: 1}, {X: 5}, {X: 9}},
		},
		{
			// 3-D grid, X-major rasterization: linear 1 and 7 of a 2x2x2
			// grid are (1,0,0) and (1,1,1).
			name: "3-D grid", grid: Dim3{X: 2, Y: 2, Z: 2}, smID: 1, numSMs: 6,
			want: []Dim3{{X: 1, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}},
		},
		{
			// 3-D grid with mixed extents: SM 0 of 5 over a 3x2x2 grid
			// (12 blocks) gets linear 0, 5, 10.
			name: "3-D mixed extents", grid: Dim3{X: 3, Y: 2, Z: 2}, smID: 0, numSMs: 5,
			want: []Dim3{{X: 0, Y: 0, Z: 0}, {X: 2, Y: 1, Z: 0}, {X: 1, Y: 1, Z: 1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := blocksForSM(tc.grid, tc.smID, tc.numSMs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("blocksForSM(%v, %d, %d) = %v, want %v",
					tc.grid, tc.smID, tc.numSMs, got, tc.want)
			}
		})
	}
}

// TestCountersMergeCoversAllFields fills every Counters field with
// distinct non-zero values by reflection and checks merge sums each one.
// A field added to Counters but forgotten in merge stays zero in the
// merged copy and fails here, keeping the parallel reduction honest.
func TestCountersMergeCoversAllFields(t *testing.T) {
	fill := func(c *Counters, base uint64) {
		v := reflect.ValueOf(c).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				f.SetUint(base + uint64(i))
			case reflect.Float64:
				f.SetFloat(float64(base) + float64(i) + 0.5)
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					f.Index(j).SetFloat(float64(base) + float64(i*100+j) + 0.25)
				}
			case reflect.Map:
				// OpcodeDyn and PCStalls are seeded below, outside
				// reflection.
			default:
				t.Fatalf("Counters.%s has unhandled kind %s — extend this test and merge",
					v.Type().Field(i).Name, f.Kind())
			}
		}
	}

	a, b := newCounters(), newCounters()
	fill(a, 1000)
	fill(b, 5000)
	a.OpcodeDyn[sass.OpFADD] = 3
	b.OpcodeDyn[sass.OpFADD] = 5
	b.OpcodeDyn[sass.OpLDG] = 7
	a.pcStall(16)[StallWait] = 1.5
	b.pcStall(16)[StallWait] = 2.5
	b.pcStall(32)[StallSelected] = 4

	merged := newCounters()
	merged.merge(a)
	merged.merge(b)

	mv := reflect.ValueOf(merged).Elem()
	av := reflect.ValueOf(a).Elem()
	bv := reflect.ValueOf(b).Elem()
	for i := 0; i < mv.NumField(); i++ {
		name := mv.Type().Field(i).Name
		switch mv.Field(i).Kind() {
		case reflect.Uint64:
			if got, want := mv.Field(i).Uint(), av.Field(i).Uint()+bv.Field(i).Uint(); got != want {
				t.Errorf("merge missed Counters.%s: got %d, want %d", name, got, want)
			}
		case reflect.Float64:
			if got, want := mv.Field(i).Float(), av.Field(i).Float()+bv.Field(i).Float(); got != want {
				t.Errorf("merge missed Counters.%s: got %v, want %v", name, got, want)
			}
		case reflect.Array:
			for j := 0; j < mv.Field(i).Len(); j++ {
				got := mv.Field(i).Index(j).Float()
				want := av.Field(i).Index(j).Float() + bv.Field(i).Index(j).Float()
				if got != want {
					t.Errorf("merge missed Counters.%s[%d]: got %v, want %v", name, j, got, want)
				}
			}
		}
	}
	if got := merged.OpcodeDyn[sass.OpFADD]; got != 8 {
		t.Errorf("OpcodeDyn[FADD] = %d, want 8", got)
	}
	if got := merged.OpcodeDyn[sass.OpLDG]; got != 7 {
		t.Errorf("OpcodeDyn[LDG] = %d, want 7", got)
	}
	if got := merged.PCStalls[16][StallWait]; got != 4 {
		t.Errorf("PCStalls[16][wait] = %v, want 4", got)
	}
	if got := merged.PCStalls[32][StallSelected]; got != 4 {
		t.Errorf("PCStalls[32][selected] = %v, want 4", got)
	}
}

// runParallelVecAdd launches the vecadd kernel across every V100 SM with
// the given worker cap and returns the Result plus a device memory
// snapshot.
func runParallelVecAdd(t *testing.T, k *sass.Kernel, workers int) (*Result, []byte) {
	t.Helper()
	dev := NewDevice(gpu.V100())
	const n = 100000
	a := dev.MustAlloc(4 * n)
	bb := dev.MustAlloc(4 * n)
	c := dev.MustAlloc(4 * n)
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i % 1024)
		bv[i] = 2 * float32(i%512)
	}
	if err := dev.WriteF32(a, av); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteF32(bb, bv); err != nil {
		t.Fatal(err)
	}
	res, err := Launch(dev, LaunchSpec{
		Kernel: k,
		Grid:   D1((n + 127) / 128),
		Block:  D1(128),
		Params: []uint64{a.Addr, bb.Addr, c.Addr, n},
	}, Config{SampleSMs: dev.Arch.NumSMs, Workers: workers})
	if err != nil {
		t.Fatalf("Launch(Workers=%d): %v", workers, err)
	}
	return res, dev.MemorySnapshot()
}

// TestParallelMatchesSequential is the in-package differential check:
// the same launch with Workers 1, 4 and GOMAXPROCS must produce
// bit-identical Results (Host excepted) and byte-identical device memory.
// internal/workloads runs the same comparison over every registered
// workload.
func TestParallelMatchesSequential(t *testing.T) {
	k := vecAddKernel(t)
	ref, refMem := runParallelVecAdd(t, k, 1)
	if ref.Host.Workers != 1 {
		t.Errorf("sequential Host.Workers = %d, want 1", ref.Host.Workers)
	}
	for _, workers := range []int{4, 0} {
		res, mem := runParallelVecAdd(t, k, workers)
		// Host timing legitimately differs run to run; blank it before
		// the deep comparison.
		res.Host = HostStats{}
		want := *ref
		want.Host = HostStats{}
		if !reflect.DeepEqual(&want, res) {
			t.Errorf("Workers=%d Result differs from sequential reference", workers)
		}
		if !reflect.DeepEqual(refMem, mem) {
			t.Errorf("Workers=%d device memory differs from sequential reference", workers)
		}
	}
}

// TestParallelAtomicSerialization hammers one global address from many
// concurrently simulated SMs. Lost updates (a data race in the atomic
// unit) would show up as a short sum; -race turns any unlocked access
// into a hard failure.
func TestParallelAtomicSerialization(t *testing.T) {
	k := atomicSumKernel(t, false)
	dev := NewDevice(gpu.V100())
	out := dev.MustAlloc(16)
	const blocks, threads = 8, 256
	// Each simulated block adds sum(0..255) = 32640 to out[0]; every
	// partial sum is an integer below 2^24, so float32 accumulation is
	// exact regardless of interleaving order.
	want := float32(blocks * (threads - 1) * threads / 2)
	for iter := 0; iter < 4; iter++ {
		if err := dev.WriteF32(out, []float32{0}); err != nil {
			t.Fatal(err)
		}
		res, err := Launch(dev, LaunchSpec{
			Kernel: k, Grid: D1(blocks * 8), Block: D1(threads),
			Params: []uint64{out.Addr},
		}, Config{SampleSMs: blocks, Workers: blocks})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		got, err := dev.ReadF32(out, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("iter %d: atomic sum = %v, want %v (lost updates between SMs)", iter, got[0], want)
		}
		if res.Counters.GlobalAtomics != blocks*threads {
			t.Errorf("GlobalAtomics = %d, want %d", res.Counters.GlobalAtomics, blocks*threads)
		}
	}
}

// TestParallelCancellation: a deadline expiring mid-launch aborts all
// concurrently simulated SMs promptly and surfaces the deadline error,
// not the collateral cancellations of sibling SMs.
func TestParallelCancellation(t *testing.T) {
	k := loopSumKernel(t, 20000)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 64 * 20000)
	out := dev.MustAlloc(4 * 64)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := LaunchContext(ctx, dev, LaunchSpec{
		Kernel: k, Grid: D1(8), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{SampleSMs: 8, Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("parallel cancellation took %v — siblings not stopping", elapsed)
	}
}

// TestWorkersClamped: the effective worker count never exceeds the
// number of SMs that actually have work.
func TestWorkersClamped(t *testing.T) {
	k := loopSumKernel(t, 5)
	dev := NewDevice(gpu.V100())
	in := dev.MustAlloc(4 * 64 * 5)
	out := dev.MustAlloc(4 * 64)
	res, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(64),
		Params: []uint64{in.Addr, out.Addr},
	}, Config{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Host.Workers != 1 {
		t.Errorf("Host.Workers = %d, want 1 (single SM with work)", res.Host.Workers)
	}
	if res.Host.WallSeconds <= 0 || res.Host.SMSeconds <= 0 {
		t.Errorf("host timing not recorded: %+v", res.Host)
	}
	if s := res.Host.Speedup(); s <= 0 {
		t.Errorf("Speedup() = %v, want > 0", s)
	}
}

// TestFirstSMError prefers a real failure over collateral cancellations.
func TestFirstSMError(t *testing.T) {
	real := errors.New("deadlock on SM 3")
	collateral := context.Canceled
	ctx := context.Background()
	if got := firstSMError(ctx, []error{nil, collateral, real}); !errors.Is(got, real) {
		t.Errorf("got %v, want the real error", got)
	}
	if got := firstSMError(ctx, []error{nil, collateral}); !errors.Is(got, context.Canceled) {
		t.Errorf("got %v, want the collateral cancellation as fallback", got)
	}
	if got := firstSMError(ctx, nil); got != nil {
		t.Errorf("got %v, want nil for no errors", got)
	}
	// When the caller's own ctx ended, the cancellation IS the real error.
	ended, cancel := context.WithCancel(context.Background())
	cancel()
	wrapped := &wrapErr{context.Canceled}
	if got := firstSMError(ended, []error{wrapped, real}); !errors.Is(got, context.Canceled) {
		t.Errorf("got %v, want the first (cancellation) error when ctx ended", got)
	}
}

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "sm: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }
