package sim

import (
	"math"

	"gpuscout/internal/memsys"
	"gpuscout/internal/sass"
)

// queueRing tracks completion times of in-flight operations in an issue
// queue (LG / MIO / TEX). Entries whose completion is in the past no
// longer occupy a slot.
type queueRing struct {
	times []float64
	// scratch is the reusable selection buffer of admit; it never holds
	// state between calls.
	scratch []float64
}

func (q *queueRing) push(t float64) { q.times = append(q.times, t) }

// inflight counts entries still pending at time now, compacting as a side
// effect.
func (q *queueRing) inflight(now float64) int {
	n := 0
	for _, t := range q.times {
		if t > now {
			q.times[n] = t
			n++
		}
	}
	q.times = q.times[:n]
	return n
}

// earliest returns the soonest completion among pending entries.
func (q *queueRing) earliest() float64 {
	e := math.Inf(1)
	for _, t := range q.times {
		if t < e {
			e = t
		}
	}
	return e
}

// admit returns the earliest time >= now at which a new entry fits under
// the given capacity: when full, a request waits for the k-th soonest
// completion. Models MSHR admission. The order statistic is found by
// quickselect over a reusable scratch buffer — O(n) expected and
// allocation-free once warm, where the old copy + insertion sort was
// O(n²) with a fresh slice on every MSHR-full event.
func (q *queueRing) admit(now float64, capacity int) float64 {
	n := q.inflight(now)
	if n < capacity {
		return now
	}
	// Need (n - capacity + 1) completions; find that order statistic.
	need := n - capacity + 1
	q.scratch = append(q.scratch[:0], q.times...)
	return kthSmallest(q.scratch, need-1)
}

// kthSmallest returns the k-th smallest value (0-based) of a, partially
// reordering it in place. Hoare-partition quickselect with
// median-of-three pivoting; the k-th order statistic is unique, so the
// result does not depend on pivot choices or tie ordering.
func kthSmallest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[lo]
}

// smState is the timing state of one simulated streaming multiprocessor.
// Everything an SM mutates during simulation lives here (or in its warps
// and blocks), so sampled SMs can run on separate goroutines and merge
// deterministically afterwards.
type smState struct {
	id  int
	now float64

	// counters accumulates this SM's events; LaunchContext merges the
	// per-SM instances in SM-ID order.
	counters *Counters
	// nextGid is the next global warp index, seeded per SM so parallel
	// runs assign the same IDs a sequential pass would.
	nextGid int

	l1   *memsys.Cache     // unified L1TEX data cache (global/local/texture)
	l2   *memsys.Cache     // this SM's slice of the chip L2
	lsu  *memsys.Bandwidth // LSU sector wavefront service
	texu *memsys.Bandwidth // TEX unit sector service
	mio  *memsys.Bandwidth // shared-memory transaction service
	l2bw *memsys.Bandwidth // L2 slice bandwidth
	dram *memsys.Bandwidth // DRAM bandwidth slice

	lgQ, mioQ, texQ  queueRing
	lsuMiss, texMiss queueRing // outstanding L1 misses (MSHR occupancy)

	fp64Free float64
	sfuFree  float64
	atomFree float64

	// arena owns all warp/block backing memory for this SM; block slots
	// are recycled (reset, not reallocated) as CTAs retire and pending
	// ones launch.
	arena *launchArena

	// warps lists live (not yet done) warps in global-warp-ID order. Done
	// warps are compacted out at the top of the scheduler loop, never
	// mid-iteration, so snapshots taken by the loop stay valid.
	warps       []*warp
	needCompact bool
	pending     []Dim3 // block indices not yet launched

	lastPick [8]*warp // per-scheduler greedy pointer (GTO)

	// Dense hot-path counters, folded into the exported Counters maps
	// once at the end of runSM. pcStalls is indexed by instruction index
	// (pc / InstBytes) with one extra slot for the synthetic
	// past-the-end reconvergence PC; opcodeDyn by opcode value.
	pcStalls  [][NumStalls]float64
	opcodeDyn []uint64

	// Reusable scratch for the memory timing path.
	sectorBuf []uint64
	banks     memsys.BankScratch
}

// addStall attributes dt warp-cycles of stall reason `reason` at pc,
// writing the dense per-instruction slice instead of a map.
func (sm *smState) addStall(pc uint64, reason Stall, dt float64) {
	sm.counters.StallCycles[reason] += dt
	idx := int(pc / sass.InstBytes)
	if idx >= len(sm.pcStalls) {
		idx = len(sm.pcStalls) - 1
	}
	sm.pcStalls[idx][reason] += dt
}

// foldDense materializes the dense stall/opcode counters into the
// exported Counters maps — once per launch, in instruction order, with
// exactly the keys the map-based hot path would have produced.
func (sm *smState) foldDense() {
	for idx := range sm.pcStalls {
		arr := &sm.pcStalls[idx]
		touched := false
		for s := Stall(0); s < NumStalls; s++ {
			if arr[s] != 0 {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		dst := new([NumStalls]float64)
		*dst = *arr
		sm.counters.PCStalls[uint64(idx)*sass.InstBytes] = dst
	}
	for op, n := range sm.opcodeDyn {
		if n != 0 {
			sm.counters.OpcodeDyn[sass.Opcode(op)] = n
		}
	}
}

// classification of one warp at one instant.
type wclass struct {
	reason   Stall
	event    float64 // when the condition may clear (+Inf if externally driven)
	eligible bool
	pc       uint64
}

// classify determines whether warp w can issue now, and if not, why and
// until when. This function is both the scheduler's eligibility test and
// the source of stall attribution (and hence of PC sampling data).
func (e *engine) classify(sm *smState, w *warp) wclass {
	if w.atBarrier {
		return wclass{reason: StallBarrier, event: math.Inf(1), pc: w.pc}
	}
	if w.readyAt > sm.now {
		return wclass{reason: w.waitReason, event: w.readyAt, pc: w.pc}
	}
	in := e.kernel.InstAt(w.pc)
	if in == nil {
		// Should be unreachable: Validate guarantees EXIT termination.
		return wclass{reason: StallDrain, event: math.Inf(1), pc: w.pc}
	}

	// Register dependencies (dynamic scoreboard), from the per-launch
	// precomputed source+destination register lists.
	regs := e.depRegs[int(w.pc/sass.InstBytes)]
	var blockUntil float64
	var blockClass sass.Class
	blocked := false
	for _, r := range regs {
		if int(r) < len(w.regReady) && w.regReady[r] > sm.now {
			if !blocked || w.regReady[r] > blockUntil {
				blockUntil = w.regReady[r]
				blockClass = w.regSrc[r]
			}
			blocked = true
		}
	}
	if blocked {
		return wclass{reason: stallForClass(blockClass), event: blockUntil, pc: w.pc}
	}

	// Structural hazards.
	a := &e.arch
	switch sass.ClassOf(in.Op) {
	case sass.ClassGlobal, sass.ClassLocal:
		if sm.lgQ.inflight(sm.now) >= a.LGQueueDepth {
			return wclass{reason: StallLGThrottle, event: sm.lgQ.earliest(), pc: w.pc}
		}
	case sass.ClassShared:
		if sm.mioQ.inflight(sm.now) >= a.MIOQueueDepth {
			return wclass{reason: StallMIOThrottle, event: sm.mioQ.earliest(), pc: w.pc}
		}
	case sass.ClassTexture:
		if sm.texQ.inflight(sm.now) >= a.TEXQueueDepth {
			return wclass{reason: StallTexThrottle, event: sm.texQ.earliest(), pc: w.pc}
		}
	case sass.ClassFP64:
		if sm.fp64Free > sm.now {
			return wclass{reason: StallMathPipeThrottle, event: sm.fp64Free, pc: w.pc}
		}
	case sass.ClassSFU:
		if sm.sfuFree > sm.now {
			return wclass{reason: StallMathPipeThrottle, event: sm.sfuFree, pc: w.pc}
		}
	}
	if in.Op == sass.OpEXIT && w.lastStoreDone > sm.now {
		return wclass{reason: StallDrain, event: w.lastStoreDone, pc: w.pc}
	}
	return wclass{reason: StallSelected, eligible: true, event: sm.now, pc: w.pc}
}

// stallForClass maps the producing pipe of a pending register to the
// dependent warp's stall reason.
func stallForClass(c sass.Class) Stall {
	switch c {
	case sass.ClassGlobal, sass.ClassLocal, sass.ClassTexture:
		return StallLongScoreboard
	case sass.ClassShared:
		return StallShortScoreboard
	default:
		return StallWait
	}
}

// issue executes one instruction for warp w and applies its timing
// effects. Returns the executed instruction for accounting.
func (e *engine) issue(sm *smState, w *warp) error {
	in := e.kernel.InstAt(w.pc)
	execMask := w.guardMask(in)
	ma, err := e.exec(w, in, execMask)
	if err != nil {
		return err
	}

	c := sm.counters
	c.WarpInsts++
	c.ThreadInsts += uint64(popcount32(execMask))
	sm.opcodeDyn[in.Op]++

	a := &e.arch
	w.readyAt = sm.now + 1
	w.waitReason = StallWait

	switch in.Op {
	case sass.OpBRA:
		w.readyAt = sm.now + 2
		w.waitReason = StallBranchResolving
	case sass.OpBAR:
		if !w.done {
			w.atBarrier = true
			w.block.barArrived++
			e.checkBarrier(sm, w.block)
		}
	case sass.OpEXIT:
		if w.done {
			e.retireWarp(sm, w)
		}
	}

	if ma.valid {
		e.memTiming(sm, w, in, ma)
		return nil
	}

	// Fixed-latency results.
	if in.Op == sass.OpSHFL {
		// Shuffles execute on the MIO pipe on Volta: consumers see a
		// short-scoreboard dependency.
		svc := sm.mio.Request(sm.now, 1)
		e.setDstReady(sm, w, in, (svc-sm.now)+float64(a.SharedLatency), sass.ClassShared)
		return nil
	}
	switch sass.ClassOf(in.Op) {
	case sass.ClassALU:
		e.setDstReady(sm, w, in, float64(a.ALULatency), sass.ClassALU)
	case sass.ClassFP64:
		sm.fp64Free = sm.now + float64(a.FP64IssueRate)
		e.setDstReady(sm, w, in, float64(a.FP64Latency), sass.ClassALU)
	case sass.ClassSFU:
		sm.sfuFree = sm.now + float64(a.SFUIssueRate)
		e.setDstReady(sm, w, in, float64(a.SFULatency), sass.ClassALU)
	}
	return nil
}

func (e *engine) setDstReady(sm *smState, w *warp, in *sass.Inst, latency float64, src sass.Class) {
	for _, r := range e.dstRegs[int(in.PC/sass.InstBytes)] {
		if int(r) < len(w.regReady) {
			w.regReady[r] = sm.now + latency
			w.regSrc[r] = src
		}
	}
}

// memTiming applies the memory-system cost of an executed access and
// schedules the destination registers' availability.
func (e *engine) memTiming(sm *smState, w *warp, in *sass.Inst, ma memAccess) {
	a := &e.arch
	c := sm.counters
	now := sm.now
	var active [32]bool
	for lane := 0; lane < 32; lane++ {
		active[lane] = ma.mask&(1<<uint(lane)) != 0
	}

	switch ma.space {
	case sass.ClassGlobal, sass.ClassLocal:
		if ma.async {
			e.asyncCopyTiming(sm, w, active[:], ma)
			return
		}
		sectors := memsys.CoalesceSectorsInto(sm.sectorBuf, a.L1SectorBytes, ma.addrs[:], active[:], ma.width)
		sm.sectorBuf = sectors[:0]
		done := now
		svcEnd := now
		if ma.atomic {
			// Atomics bypass L1 and resolve at the L2 atomic units. Every
			// active lane is a read-modify-write: lanes hitting the same
			// address serialize fully — the §4.4 global-atomic cost.
			lanes := popcount32(ma.mask)
			start := math.Max(now, sm.atomFree)
			sm.atomFree = start + 2*float64(lanes)
			svcEnd = sm.atomFree
			for _, s := range sectors {
				lat := e.l2Access(sm, s, true)
				if t := sm.atomFree + lat; t > done {
					done = t
				}
			}
			c.GlobalAtomics += uint64(lanes)
		} else {
			useRO := ma.nc
			for _, s := range sectors {
				svc := sm.lsu.Request(now, a.L1SectorBytes)
				if svc > svcEnd {
					svcEnd = svc
				}
				hit := sm.l1.AccessSector(s, ma.write)
				lat := float64(a.L1HitLatency)
				if ma.write {
					// Volta's L1 is write-through: every store sector goes
					// to L2 regardless of the L1 state (uncoalesced stores
					// therefore hammer L2 bandwidth).
					e.l2Access(sm, s, true)
				} else if !hit {
					// An L1 miss occupies an MSHR until data returns; when
					// all MSHRs are busy the miss waits for a free slot.
					start := sm.lsuMiss.admit(svc, a.LSUMSHRs)
					lat += (start - svc) + e.l2Access(sm, s, ma.write)
					sm.lsuMiss.push(svc + lat)
				}
				if useRO {
					c.TexSectors++
					if hit {
						c.TexSectorHits++
					}
				} else if ma.space == sass.ClassGlobal {
					if ma.write {
						c.GlobalStSectors++
					} else {
						c.GlobalLdSectors++
						if hit {
							c.GlobalLdSectorHits++
						}
					}
				} else {
					if ma.write {
						c.LocalStSectors++
					} else {
						c.LocalLdSectors++
						if hit {
							c.LocalLdSectorHits++
						}
					}
				}
				if t := svc + lat; t > done {
					done = t
				}
			}
		}
		// The LG instruction queue holds the request until the L1TEX unit
		// accepts it (service), not until data returns — lg_throttle is
		// about issue backlog (§3.2).
		sm.lgQ.push(svcEnd)
		if sass.IsLoad(in.Op) || (ma.atomic && in.Op == sass.OpATOM) {
			e.setDstReady(sm, w, in, done-now, ma.space)
		} else if svcEnd > w.lastStoreDone {
			// Stores are posted: the warp may exit once the write is
			// accepted by the memory system, not when it lands in DRAM.
			w.lastStoreDone = svcEnd
		}
		switch {
		case in.Op == sass.OpLDG:
			c.GlobalLdInsts++
		case in.Op == sass.OpSTG:
			c.GlobalStInsts++
		case in.Op == sass.OpLDL:
			c.LocalLdInsts++
		case in.Op == sass.OpSTL:
			c.LocalStInsts++
		}

	case sass.ClassShared:
		var trans int
		if ma.atomic {
			// Shared atomics serialize per lane on conflicting banks and
			// words in the MIO pipe (§4.4: cheaper than global, but loads
			// the MIO pipeline).
			trans = sm.banks.AtomicConflicts(a.SharedBanks, ma.addrs[:], active[:])
			c.SharedAtomics += uint64(popcount32(ma.mask))
		} else {
			trans = sm.banks.BankConflicts(a.SharedBanks, ma.addrs[:], active[:], ma.width)
		}
		if trans == 0 {
			trans = 1
		}
		svc := sm.mio.Request(now, trans)
		done := svc + float64(a.SharedLatency)
		sm.mioQ.push(svc)
		if in.Op == sass.OpLDS || in.Op == sass.OpATOMS {
			e.setDstReady(sm, w, in, done-now, sass.ClassShared)
		} else if svc > w.lastStoreDone {
			w.lastStoreDone = svc
		}
		switch in.Op {
		case sass.OpLDS:
			c.SharedLdInsts++
			c.SharedLdTrans += uint64(trans)
		case sass.OpSTS:
			c.SharedStInsts++
			c.SharedStTrans += uint64(trans)
		case sass.OpATOMS:
			c.SharedLdTrans += uint64(trans)
		}

	case sass.ClassTexture:
		sectors := memsys.CoalesceSectorsInto(sm.sectorBuf, a.L1SectorBytes, ma.addrs[:], active[:], ma.width)
		sm.sectorBuf = sectors[:0]
		done := now
		svcEnd := now
		for _, s := range sectors {
			svc := sm.texu.Request(now, a.L1SectorBytes)
			if svc > svcEnd {
				svcEnd = svc
			}
			hit := sm.l1.AccessSector(s, false)
			lat := float64(a.TexLatency)
			if !hit {
				start := sm.texMiss.admit(svc, a.TEXMSHRs)
				lat += (start - svc) + e.l2Access(sm, s, false)
				sm.texMiss.push(svc + lat)
			}
			c.TexSectors++
			if hit {
				c.TexSectorHits++
			}
			if t := svc + lat; t > done {
				done = t
			}
		}
		sm.texQ.push(svcEnd)
		c.TexInsts++
		e.setDstReady(sm, w, in, done-now, sass.ClassTexture)

	case sass.ClassConst:
		// Constant cache: fast uniform path; latency from the arch
		// descriptor.
		lat := float64(a.ISA.ConstLatency)
		if lat <= 0 {
			lat = 8
		}
		e.setDstReady(sm, w, in, lat, sass.ClassALU)
	}
}

// asyncCopyTiming models one cp.async-style LDGSTS: the global read
// bypasses L1 and the register file, each sector going straight to the
// L2/DRAM path while occupying an LSU MSHR, and the warp continues
// immediately — the latency is only observed at the next barrier, which
// waits for the block's outstanding copies (blockState.asyncDone). That
// deferred wait is exactly how cp.async hides global-load stalls.
func (e *engine) asyncCopyTiming(sm *smState, w *warp, active []bool, ma memAccess) {
	a := &e.arch
	c := sm.counters
	now := sm.now
	sectors := memsys.CoalesceSectorsInto(sm.sectorBuf, a.L1SectorBytes, ma.addrs[:], active, ma.width)
	sm.sectorBuf = sectors[:0]
	done := now
	svcEnd := now
	for _, s := range sectors {
		svc := sm.lsu.Request(now, a.L1SectorBytes)
		if svc > svcEnd {
			svcEnd = svc
		}
		start := sm.lsuMiss.admit(svc, a.LSUMSHRs)
		lat := (start - svc) + e.l2Access(sm, s, false)
		sm.lsuMiss.push(svc + lat)
		c.AsyncCopySectors++
		if t := svc + lat; t > done {
			done = t
		}
	}
	sm.lgQ.push(svcEnd)
	c.AsyncCopyInsts++
	if b := w.block; done > b.asyncDone {
		b.asyncDone = done
	}
	if done > w.lastStoreDone {
		// The copy must land in shared memory before the block can retire
		// even when no barrier follows.
		w.lastStoreDone = done
	}
}

// l2Access models one 32-byte sector request to this SM's L2 slice and,
// on miss, to DRAM. It returns the added latency beyond L1.
func (e *engine) l2Access(sm *smState, sector uint64, write bool) float64 {
	a := &e.arch
	c := sm.counters
	q := sm.l2bw.QueueDelay(sm.now)
	sm.l2bw.Request(sm.now, a.L1SectorBytes)
	hit := sm.l2.AccessSector(sector, write)
	c.L2Sectors++
	if write {
		c.L2WriteSectors++
	} else {
		c.L2ReadSectors++
	}
	lat := q + float64(a.L2HitLatency)
	if hit {
		c.L2Hits++
		return lat
	}
	dq := sm.dram.QueueDelay(sm.now)
	sm.dram.Request(sm.now, a.L1SectorBytes)
	if write {
		c.DRAMWriteBytes += uint64(a.L1SectorBytes)
	} else {
		c.DRAMReadBytes += uint64(a.L1SectorBytes)
	}
	return lat + dq + float64(a.DRAMLatency)
}

// checkBarrier releases a block's barrier when every live warp arrived.
// On async-copy architectures the barrier is also the synchronization
// point for outstanding LDGSTS transfers: warps resume only once the
// block's pending copies have landed in shared memory, and that residual
// wait is attributed to the barrier (the stall cp.async converts
// long-scoreboard time into).
func (e *engine) checkBarrier(sm *smState, b *blockState) {
	if b.liveWarps == 0 || b.barArrived < b.liveWarps {
		return
	}
	release := sm.now + 1
	wait := StallWait
	if b.asyncDone > release {
		release = b.asyncDone
		wait = StallBarrier
	}
	for _, w := range b.warps {
		if w.atBarrier {
			w.atBarrier = false
			w.readyAt = release
			w.waitReason = wait
			w.clsValid = false
		}
	}
	b.barArrived = 0
	b.asyncDone = 0
}

// retireWarp handles warp completion. When the whole block retires its
// arena slot is released; the scheduler loop recycles it for a pending
// CTA at the top of its next iteration (never mid-iteration, so the
// loop's warp-list snapshot stays valid and scheduling order matches the
// old allocate-on-retire behavior exactly).
func (e *engine) retireWarp(sm *smState, w *warp) {
	b := w.block
	b.liveWarps--
	sm.needCompact = true
	if b.liveWarps > 0 {
		e.checkBarrier(sm, b)
		return
	}
	// Block finished: drop greedy-scheduler pointers into its warps (the
	// structs are about to be recycled; the old path left them done
	// forever, which the greedy check rejected the same way), then free
	// the slot.
	for i, lp := range sm.lastPick {
		if lp != nil && lp.block == b {
			sm.lastPick[i] = nil
		}
	}
	sm.arena.releaseBlock(b)
}

// launchBlock makes a CTA resident, recycling a free arena slot.
func (e *engine) launchBlock(sm *smState, idx Dim3) {
	nb := sm.arena.takeBlock(idx, e.block)
	warps := sm.arena.warpsPerBlock
	nb.liveWarps = warps
	for i := 0; i < warps; i++ {
		w := sm.arena.resetWarp(nb, i, sm.nextGid)
		sm.nextGid++
		w.readyAt = sm.now
		w.waitReason = StallWait
		nb.warps = append(nb.warps, w)
		sm.warps = append(sm.warps, w)
	}
}
