package sim

import (
	"math/bits"

	"gpuscout/internal/sass"
)

// Dim3 is a CUDA grid/block dimension triple.
type Dim3 struct{ X, Y, Z int }

// Count returns X*Y*Z (1 substituted for zero components).
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// D1 makes a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 makes a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// divEntry is one divergence-stack record: lanes waiting to run the other
// side of a branch, and lanes already parked at the reconvergence point.
type divEntry struct {
	reconv    uint64
	otherPC   uint64
	otherMask uint32
	joined    uint32
}

// blockState is the shared state of one resident CTA. Block structs,
// their warps, and the shared-memory segment all live in the SM's
// launchArena; slot names the arena slot so a retired block's memory can
// be recycled for the next pending CTA.
type blockState struct {
	idx        Dim3 // blockIdx
	dim        Dim3 // blockDim
	slot       int  // arena slot owning this block's backing memory
	shared     []byte
	warps      []*warp
	liveWarps  int // warps not yet done
	barArrived int // warps waiting at the current barrier
	// asyncDone is the cycle the block's outstanding cp.async-style
	// copies (LDGSTS) complete; the next barrier release waits for it.
	asyncDone float64
}

// warp is the execution state of one 32-thread warp: functional registers
// and divergence state, plus the timing fields the SM engine drives. The
// slice fields (regs, regReady, regSrc, localMem, stack) are views into
// the owning SM's launchArena, carved once at launch and zeroed — not
// reallocated — when the warp slot is recycled for a new CTA.
type warp struct {
	id     int // warp index within the block
	gid    int // global warp index (for stable scheduling order)
	block  *blockState
	pc     uint64
	active uint32
	stack  []divEntry
	done   bool

	regs  [][32]uint32 // [NumRegs][lane]
	preds [sass.NumPreds][32]bool

	localMem []byte // 32 * LocalBytes, lane-major segments

	// Timing state (owned by the SM engine).
	readyAt    float64
	waitReason Stall        // why the warp is not ready before readyAt
	regReady   []float64    // per physical register, cycle the value lands
	regSrc     []sass.Class // producing pipe class, for stall attribution
	atBarrier  bool
	// stores outstanding; EXIT drains them.
	lastStoreDone float64

	// Cached scheduler classification (valid until cls.event or until the
	// warp's state changes).
	cls      wclass
	clsValid bool
}

// laneTid returns the (x,y,z) thread index of a lane in this warp.
func (w *warp) laneTid(lane int) Dim3 {
	lin := w.id*32 + lane
	dx, dy := w.block.dim.X, w.block.dim.Y
	if dx == 0 {
		dx = 1
	}
	if dy == 0 {
		dy = 1
	}
	return Dim3{X: lin % dx, Y: (lin / dx) % dy, Z: lin / (dx * dy)}
}

func (w *warp) rd(r sass.Reg, lane int) uint32 {
	if r == sass.RZ {
		return 0
	}
	return w.regs[r][lane]
}

func (w *warp) wr(r sass.Reg, lane int, v uint32) {
	if r == sass.RZ {
		return
	}
	w.regs[r][lane] = v
}

func (w *warp) rd64(r sass.Reg, lane int) uint64 {
	return uint64(w.rd(r, lane)) | uint64(w.rd(r+1, lane))<<32
}

func (w *warp) wr64(r sass.Reg, lane int, v uint64) {
	w.wr(r, lane, uint32(v))
	w.wr(r+1, lane, uint32(v>>32))
}

func (w *warp) rdPred(p sass.Pred, lane int) bool {
	if p == sass.PT {
		return true
	}
	return w.preds[p][lane]
}

func (w *warp) wrPred(p sass.Pred, lane int, v bool) {
	if p == sass.PT {
		return
	}
	w.preds[p][lane] = v
}

// guardMask returns the lanes whose guard predicate passes.
func (w *warp) guardMask(in *sass.Inst) uint32 {
	if in.Pred == sass.PT && !in.PredNeg {
		return w.active
	}
	var m uint32
	for act := w.active; act != 0; act &= act - 1 {
		lane := bits.TrailingZeros32(act)
		v := w.rdPred(in.Pred, lane)
		if in.PredNeg {
			v = !v
		}
		if v {
			m |= 1 << uint(lane)
		}
	}
	return m
}

// maybeReconverge handles arrival at divergence-stack reconvergence
// points and empty-mask continuation. It must be called whenever w.pc or
// w.active changes. Returns false when the warp has fully exited.
func (w *warp) maybeReconverge() bool {
	for {
		if len(w.stack) == 0 {
			if w.active == 0 {
				w.done = true
				return false
			}
			return true
		}
		top := &w.stack[len(w.stack)-1]
		if w.active != 0 && w.pc != top.reconv {
			return true
		}
		if w.pc == top.reconv || w.active == 0 {
			if top.otherMask != 0 {
				// Park the arrived lanes; run the other side.
				top.joined |= w.active
				w.active = top.otherMask
				w.pc = top.otherPC
				top.otherMask = 0
				continue
			}
			// Both sides done (or lanes exited): merge and pop. Lanes that
			// exited mid-divergence leave active empty; the parked lanes
			// resume at the reconvergence point.
			if w.active == 0 {
				w.pc = top.reconv
			}
			w.active |= top.joined
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return true
	}
}
