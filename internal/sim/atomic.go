package sim

import "sync"

// atomShards is the number of locks the atomic unit spreads addresses
// over. Power of two so the shard index is a mask; 64 keeps false
// sharing between unrelated histogram bins unlikely while staying small
// enough to embed in every engine.
const atomShards = 64

// atomicUnit serializes cross-SM global atomics. The hardware analogue
// is the L2 atomic units: read-modify-writes to one address always
// observe each other, while atomics to different addresses proceed
// independently. Sharding by word address approximates that — two
// addresses only contend when they fall in the same shard.
//
// The unit guards functional correctness, not ordering: a parallel
// launch may interleave atomics from different SMs in any order, so
// bit-identical results across worker counts additionally require the
// kernel's atomic combines to be order-invariant (integer ADD/MIN/MAX,
// or float adds whose intermediate sums are exactly representable —
// true of every registered workload). Order-sensitive uses (float ATOM
// with a consumed return value) stay correct but may differ between
// worker counts; see DESIGN.md.
type atomicUnit struct {
	shards [atomShards]sync.Mutex
}

// lock returns the mutex guarding addr's shard. Addresses are word
// (4-byte) granular, matching the 32-bit atomics the ISA models.
func (u *atomicUnit) lock(addr uint64) *sync.Mutex {
	return &u.shards[(addr>>2)&(atomShards-1)]
}
