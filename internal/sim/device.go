package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"gpuscout/internal/gpu"
)

// memBase is the first device virtual address handed out by Alloc; a
// non-zero base makes accidental nil-pointer dereferences in kernels
// detectable.
const memBase uint64 = 0x7f0000000

// Device models one GPU: its global memory arena and texture bindings.
// It plays the role of the CUDA runtime for examples and benchmarks
// (Alloc ~ cudaMalloc, CopyToDevice ~ cudaMemcpy).
type Device struct {
	Arch gpu.Arch

	mem   []byte
	next  uint64 // next free offset
	texes []Texture
}

// Buffer is a device memory allocation.
type Buffer struct {
	Addr uint64
	Size int
}

// Texture describes a 2D texture binding over a device buffer, fetched
// with TEX.2D: a Width x Height array of float32 texels with clamped
// integer addressing (the tex2D() analogue of §5.2).
type Texture struct {
	Base   uint64
	Width  int
	Height int
}

// NewDevice creates a device with the given architecture.
func NewDevice(arch gpu.Arch) *Device {
	return &Device{Arch: arch}
}

// Alloc reserves n bytes of device memory (256-byte aligned).
func (d *Device) Alloc(n int) (Buffer, error) {
	if n <= 0 {
		return Buffer{}, fmt.Errorf("sim: Alloc(%d)", n)
	}
	aligned := (n + 255) / 256 * 256
	if d.next+uint64(aligned) > uint64(d.Arch.DRAMBytes) {
		return Buffer{}, fmt.Errorf("sim: device out of memory (%d requested, %d in use)", n, d.next)
	}
	off := d.next
	d.next += uint64(aligned)
	need := int(d.next)
	if need > len(d.mem) {
		grown := make([]byte, need*2)
		copy(grown, d.mem)
		d.mem = grown
	}
	return Buffer{Addr: memBase + off, Size: n}, nil
}

// MustAlloc is Alloc for tests and examples with static sizes.
func (d *Device) MustAlloc(n int) Buffer {
	b, err := d.Alloc(n)
	if err != nil {
		panic(err)
	}
	return b
}

func (d *Device) slice(addr uint64, n int) ([]byte, error) {
	if addr < memBase || addr+uint64(n) > memBase+d.next {
		return nil, fmt.Errorf("sim: device address %#x+%d out of bounds", addr, n)
	}
	off := addr - memBase
	return d.mem[off : off+uint64(n)], nil
}

// CopyToDevice writes host bytes into device memory.
func (d *Device) CopyToDevice(dst Buffer, src []byte) error {
	if len(src) > dst.Size {
		return fmt.Errorf("sim: copy of %d bytes into %d-byte buffer", len(src), dst.Size)
	}
	s, err := d.slice(dst.Addr, len(src))
	if err != nil {
		return err
	}
	copy(s, src)
	return nil
}

// CopyFromDevice reads device memory into a host slice.
func (d *Device) CopyFromDevice(dst []byte, src Buffer) error {
	if len(dst) > src.Size {
		return fmt.Errorf("sim: copy of %d bytes from %d-byte buffer", len(dst), src.Size)
	}
	s, err := d.slice(src.Addr, len(dst))
	if err != nil {
		return err
	}
	copy(dst, s)
	return nil
}

// WriteF32 fills a buffer with float32 values.
func (d *Device) WriteF32(dst Buffer, vals []float32) error {
	if len(vals)*4 > dst.Size {
		return fmt.Errorf("sim: %d floats exceed %d-byte buffer", len(vals), dst.Size)
	}
	s, err := d.slice(dst.Addr, len(vals)*4)
	if err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(s[i*4:], math.Float32bits(v))
	}
	return nil
}

// ReadF32 reads n float32 values from a buffer.
func (d *Device) ReadF32(src Buffer, n int) ([]float32, error) {
	s, err := d.slice(src.Addr, n*4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[i*4:]))
	}
	return out, nil
}

// WriteF64 fills a buffer with float64 values.
func (d *Device) WriteF64(dst Buffer, vals []float64) error {
	if len(vals)*8 > dst.Size {
		return fmt.Errorf("sim: %d doubles exceed %d-byte buffer", len(vals), dst.Size)
	}
	s, err := d.slice(dst.Addr, len(vals)*8)
	if err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(s[i*8:], math.Float64bits(v))
	}
	return nil
}

// ReadF64 reads n float64 values from a buffer.
func (d *Device) ReadF64(src Buffer, n int) ([]float64, error) {
	s, err := d.slice(src.Addr, n*8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[i*8:]))
	}
	return out, nil
}

// WriteI32 fills a buffer with int32 values.
func (d *Device) WriteI32(dst Buffer, vals []int32) error {
	if len(vals)*4 > dst.Size {
		return fmt.Errorf("sim: %d ints exceed %d-byte buffer", len(vals), dst.Size)
	}
	s, err := d.slice(dst.Addr, len(vals)*4)
	if err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(s[i*4:], uint32(v))
	}
	return nil
}

// ReadI32 reads n int32 values from a buffer.
func (d *Device) ReadI32(src Buffer, n int) ([]int32, error) {
	s, err := d.slice(src.Addr, n*4)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(s[i*4:]))
	}
	return out, nil
}

// BindTexture2D binds a width x height float32 texture over buf and
// returns its texture id for Tex2D fetches.
func (d *Device) BindTexture2D(buf Buffer, width, height int) (int, error) {
	if width*height*4 > buf.Size {
		return 0, fmt.Errorf("sim: texture %dx%d exceeds buffer size %d", width, height, buf.Size)
	}
	d.texes = append(d.texes, Texture{Base: buf.Addr, Width: width, Height: height})
	return len(d.texes) - 1, nil
}

// texture returns the bound texture descriptor.
func (d *Device) texture(id int) (Texture, error) {
	if id < 0 || id >= len(d.texes) {
		return Texture{}, fmt.Errorf("sim: texture id %d not bound", id)
	}
	return d.texes[id], nil
}

// load reads width bytes at addr (little-endian, zero-extended to 16B).
func (d *Device) load(addr uint64, width int, out *[4]uint32) error {
	s, err := d.slice(addr, width)
	if err != nil {
		return err
	}
	for i := 0; i < width/4; i++ {
		out[i] = binary.LittleEndian.Uint32(s[i*4:])
	}
	return nil
}

// store writes width bytes at addr.
func (d *Device) store(addr uint64, width int, vals *[4]uint32) error {
	s, err := d.slice(addr, width)
	if err != nil {
		return err
	}
	for i := 0; i < width/4; i++ {
		binary.LittleEndian.PutUint32(s[i*4:], vals[i])
	}
	return nil
}

// InUse reports allocated device memory in bytes.
func (d *Device) InUse() uint64 { return d.next }

// MemorySnapshot copies the allocated portion of the device memory
// arena. Differential tests use it to compare the functional effects of
// two launches (e.g. sequential vs parallel simulation) byte for byte.
func (d *Device) MemorySnapshot() []byte {
	out := make([]byte, d.next)
	copy(out, d.mem[:d.next])
	return out
}
