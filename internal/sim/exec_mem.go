package sim

import (
	"encoding/binary"
	"fmt"

	"gpuscout/internal/sass"
)

// execMem functionally executes a memory instruction and returns its
// access descriptor for the timing model.
func (e *engine) execMem(w *warp, in *sass.Inst, execMask uint32) (memAccess, error) {
	ma := memAccess{valid: execMask != 0, mask: execMask, width: in.WidthBytes()}

	mem, hasMem := in.MemOperand()
	lanes := func(f func(lane int) error) error {
		for lane := 0; lane < 32; lane++ {
			if execMask&(1<<uint(lane)) == 0 {
				continue
			}
			if err := f(lane); err != nil {
				return err
			}
		}
		return nil
	}

	switch in.Op {
	case sass.OpLDG, sass.OpSTG, sass.OpATOM, sass.OpRED:
		ma.space = sass.ClassGlobal
		ma.nc = in.IsNC()
		if !hasMem {
			return ma, fmt.Errorf("%s without memory operand", in.Op)
		}
		switch in.Op {
		case sass.OpLDG:
			err := lanes(func(lane int) error {
				addr := w.rd64(mem.Reg, lane) + uint64(mem.Imm)
				ma.addrs[lane] = addr
				var buf [4]uint32
				if err := e.dev.load(addr, ma.width, &buf); err != nil {
					return err
				}
				for i := 0; i < ma.width/4; i++ {
					w.wr(in.Dst[0].Reg+sass.Reg(i), lane, buf[i])
				}
				return nil
			})
			return ma, err
		case sass.OpSTG:
			ma.write = true
			err := lanes(func(lane int) error {
				addr := w.rd64(mem.Reg, lane) + uint64(mem.Imm)
				ma.addrs[lane] = addr
				var buf [4]uint32
				for i := 0; i < ma.width/4; i++ {
					buf[i] = w.rd(in.Src[0].Reg+sass.Reg(i), lane)
				}
				return e.dev.store(addr, ma.width, &buf)
			})
			return ma, err
		default: // ATOM / RED
			ma.atomic = true
			ma.write = true
			ma.width = 4
			err := lanes(func(lane int) error {
				addr := w.rd64(mem.Reg, lane) + uint64(mem.Imm)
				ma.addrs[lane] = addr
				v, err := e.val(w, in.Src[0], lane)
				if err != nil {
					return err
				}
				old, err := e.atomGlobal(addr, in, v)
				if err != nil {
					return err
				}
				if in.Op == sass.OpATOM && in.Dst[0].Kind == sass.OpdReg {
					w.wr(in.Dst[0].Reg, lane, old)
				}
				return nil
			})
			return ma, err
		}

	case sass.OpLDL, sass.OpSTL:
		ma.space = sass.ClassLocal
		localBytes := len(w.localMem) / 32
		laneAddr := func(lane int) (int, error) {
			base := uint32(0)
			if mem.Reg != sass.RZ {
				base = w.rd(mem.Reg, lane)
			}
			off := int(int32(base)) + int(mem.Imm)
			if off < 0 || off+ma.width > localBytes {
				return 0, fmt.Errorf("local access at %d exceeds %d bytes of local memory", off, localBytes)
			}
			// The per-lane global-equivalent address interleaves threads,
			// which is how local memory is physically laid out (coalesced
			// across the warp); this feeds the cache model.
			ma.addrs[lane] = e.localBase + uint64(w.gid)*uint64(32*localBytes) +
				uint64(off)*32 + uint64(lane*4)
			return lane*localBytes + off, nil
		}
		if in.Op == sass.OpLDL {
			err := lanes(func(lane int) error {
				off, err := laneAddr(lane)
				if err != nil {
					return err
				}
				for i := 0; i < ma.width/4; i++ {
					w.wr(in.Dst[0].Reg+sass.Reg(i), lane, binary.LittleEndian.Uint32(w.localMem[off+4*i:]))
				}
				return nil
			})
			return ma, err
		}
		ma.write = true
		err := lanes(func(lane int) error {
			off, err := laneAddr(lane)
			if err != nil {
				return err
			}
			for i := 0; i < ma.width/4; i++ {
				binary.LittleEndian.PutUint32(w.localMem[off+4*i:], w.rd(in.Src[0].Reg+sass.Reg(i), lane))
			}
			return nil
		})
		return ma, err

	case sass.OpLDS, sass.OpSTS, sass.OpATOMS:
		ma.space = sass.ClassShared
		shared := w.block.shared
		laneOff := func(lane int) (int, error) {
			base := uint32(0)
			if mem.Reg != sass.RZ {
				base = w.rd(mem.Reg, lane)
			}
			off := int(int32(base)) + int(mem.Imm)
			if off < 0 || off+ma.width > len(shared) {
				return 0, fmt.Errorf("shared access at %d exceeds %d bytes of shared memory", off, len(shared))
			}
			ma.addrs[lane] = uint64(off)
			return off, nil
		}
		switch in.Op {
		case sass.OpLDS:
			err := lanes(func(lane int) error {
				off, err := laneOff(lane)
				if err != nil {
					return err
				}
				for i := 0; i < ma.width/4; i++ {
					w.wr(in.Dst[0].Reg+sass.Reg(i), lane, binary.LittleEndian.Uint32(shared[off+4*i:]))
				}
				return nil
			})
			return ma, err
		case sass.OpSTS:
			ma.write = true
			err := lanes(func(lane int) error {
				off, err := laneOff(lane)
				if err != nil {
					return err
				}
				for i := 0; i < ma.width/4; i++ {
					binary.LittleEndian.PutUint32(shared[off+4*i:], w.rd(in.Src[0].Reg+sass.Reg(i), lane))
				}
				return nil
			})
			return ma, err
		default: // ATOMS
			ma.atomic = true
			ma.write = true
			ma.width = 4
			err := lanes(func(lane int) error {
				off, err := laneOff(lane)
				if err != nil {
					return err
				}
				v, err := e.val(w, in.Src[0], lane)
				if err != nil {
					return err
				}
				old := binary.LittleEndian.Uint32(shared[off:])
				binary.LittleEndian.PutUint32(shared[off:], atomApply(in, old, v))
				if in.Dst[0].Kind == sass.OpdReg {
					w.wr(in.Dst[0].Reg, lane, old)
				}
				return nil
			})
			return ma, err
		}

	case sass.OpLDGSTS:
		// cp.async-style global→shared copy (sm_80+): data moves from
		// global memory straight into the shared segment, bypassing the
		// register file and L1. Dst[0] is the shared address, Src[0] the
		// global address; the timing model sees the global side (ma.addrs)
		// and tracks completion against the block's barrier.
		ma.space = sass.ClassGlobal
		ma.async = true
		shared := w.block.shared
		if len(in.Dst) == 0 || in.Dst[0].Kind != sass.OpdMem ||
			len(in.Src) == 0 || in.Src[0].Kind != sass.OpdMem {
			return ma, fmt.Errorf("LDGSTS needs shared-dst and global-src memory operands")
		}
		sdst, gsrc := in.Dst[0], in.Src[0]
		err := lanes(func(lane int) error {
			gaddr := w.rd64(gsrc.Reg, lane) + uint64(gsrc.Imm)
			ma.addrs[lane] = gaddr
			base := uint32(0)
			if sdst.Reg != sass.RZ {
				base = w.rd(sdst.Reg, lane)
			}
			off := int(int32(base)) + int(sdst.Imm)
			if off < 0 || off+ma.width > len(shared) {
				return fmt.Errorf("async copy to shared at %d exceeds %d bytes of shared memory", off, len(shared))
			}
			var buf [4]uint32
			if err := e.dev.load(gaddr, ma.width, &buf); err != nil {
				return err
			}
			for i := 0; i < ma.width/4; i++ {
				binary.LittleEndian.PutUint32(shared[off+4*i:], buf[i])
			}
			return nil
		})
		return ma, err

	case sass.OpLDC:
		ma.space = sass.ClassConst
		err := lanes(func(lane int) error {
			base := uint32(0)
			if hasMem && mem.Reg != sass.RZ {
				base = w.rd(mem.Reg, lane)
			}
			off := int64(int32(base))
			if hasMem {
				off += mem.Imm
			}
			if off < 0 || int(off)+4 > len(e.constMem) {
				return fmt.Errorf("LDC offset %#x out of constant bank", off)
			}
			w.wr(in.Dst[0].Reg, lane, binary.LittleEndian.Uint32(e.constMem[off:]))
			return nil
		})
		return ma, err

	case sass.OpTEX:
		ma.space = sass.ClassTexture
		ma.width = 4
		texID64, err := e.val(w, in.Src[2], 0)
		if err != nil {
			return ma, err
		}
		tex, err := e.dev.texture(int(texID64))
		if err != nil {
			return ma, err
		}
		err = lanes(func(lane int) error {
			xv, err1 := e.val(w, in.Src[0], lane)
			yv, err2 := e.val(w, in.Src[1], lane)
			if err := firstErr(err1, err2); err != nil {
				return err
			}
			x, y := clamp(int(int32(xv)), tex.Width), clamp(int(int32(yv)), tex.Height)
			addr := tex.Base + uint64(y*tex.Width+x)*4
			ma.addrs[lane] = addr
			var buf [4]uint32
			if err := e.dev.load(addr, 4, &buf); err != nil {
				return err
			}
			w.wr(in.Dst[0].Reg, lane, buf[0])
			return nil
		})
		return ma, err
	}
	return ma, fmt.Errorf("execMem: %s unhandled", in.Op)
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// atomGlobal applies a global atomic to device memory, returning the old
// 32-bit value. The read-modify-write holds the address's atomic-unit
// shard lock so concurrently simulated SMs never lose an update.
func (e *engine) atomGlobal(addr uint64, in *sass.Inst, v uint32) (uint32, error) {
	mu := e.atomics.lock(addr)
	mu.Lock()
	defer mu.Unlock()
	var buf [4]uint32
	if err := e.dev.load(addr, 4, &buf); err != nil {
		return 0, err
	}
	old := buf[0]
	buf[0] = atomApply(in, old, v)
	if err := e.dev.store(addr, 4, &buf); err != nil {
		return 0, err
	}
	return old, nil
}

// atomApply computes the read-modify-write result for ATOM/ATOMS/RED.
func atomApply(in *sass.Inst, old, v uint32) uint32 {
	isF32 := in.HasMod("F32")
	switch {
	case in.HasMod("ADD"):
		if isF32 {
			return b32(f32(old) + f32(v))
		}
		return old + v
	case in.HasMod("MIN"):
		if isF32 {
			if f32(v) < f32(old) {
				return v
			}
			return old
		}
		if int32(v) < int32(old) {
			return v
		}
		return old
	case in.HasMod("MAX"):
		if isF32 {
			if f32(v) > f32(old) {
				return v
			}
			return old
		}
		if int32(v) > int32(old) {
			return v
		}
		return old
	case in.HasMod("EXCH"):
		return v
	}
	return old + v
}
