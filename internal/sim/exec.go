package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"gpuscout/internal/sass"
)

// memAccess describes the memory behaviour of one issued warp instruction
// for the timing model: the space, per-lane addresses, and access width.
type memAccess struct {
	valid  bool
	space  sass.Class // Global, Local, Shared, Texture, Const
	write  bool
	atomic bool
	nc     bool // read-only (LDG.E.NC) path
	async  bool // cp.async-style global→shared copy (LDGSTS)
	width  int  // bytes per lane
	mask   uint32
	addrs  [32]uint64
}

// execError wraps a functional-execution fault with its location.
type execError struct {
	Kernel string
	PC     uint64
	Line   int
	Err    error
}

func (e *execError) Error() string {
	return fmt.Sprintf("sim: kernel %s at PC %#x (line %d): %v", e.Kernel, e.PC, e.Line, e.Err)
}

func (e *execError) Unwrap() error { return e.Err }

func f32(bits uint32) float32  { return math.Float32frombits(bits) }
func b32(f float32) uint32     { return math.Float32bits(f) }
func f64b(bits uint64) float64 { return math.Float64frombits(bits) }
func b64(f float64) uint64     { return math.Float64bits(f) }

func popcount32(m uint32) int { return bits.OnesCount32(m) }

// val reads a 32-bit source operand for one lane.
func (e *engine) val(w *warp, o sass.Operand, lane int) (uint32, error) {
	switch o.Kind {
	case sass.OpdReg:
		v := w.rd(o.Reg, lane)
		if o.Neg {
			v ^= 0x80000000
		}
		return v, nil
	case sass.OpdImm:
		return uint32(o.Imm), nil
	case sass.OpdConst:
		if o.Bank != 0 || o.Imm < 0 || int(o.Imm)+4 > len(e.constMem) {
			return 0, fmt.Errorf("constant c[%#x][%#x] out of range", o.Bank, o.Imm)
		}
		return binary.LittleEndian.Uint32(e.constMem[o.Imm:]), nil
	case sass.OpdSpecial:
		return e.specialVal(w, o.Special, lane), nil
	case sass.OpdPred:
		if w.rdPred(o.Pred, lane) != o.Neg {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("unreadable operand %v", o)
}

// val64 reads a 64-bit source operand (register pair or constant pair).
func (e *engine) val64(w *warp, o sass.Operand, lane int) (uint64, error) {
	switch o.Kind {
	case sass.OpdReg:
		v := w.rd64(o.Reg, lane)
		if o.Neg {
			v ^= 1 << 63
		}
		return v, nil
	case sass.OpdConst:
		if o.Bank != 0 || o.Imm < 0 || int(o.Imm)+8 > len(e.constMem) {
			return 0, fmt.Errorf("constant pair c[%#x][%#x] out of range", o.Bank, o.Imm)
		}
		return binary.LittleEndian.Uint64(e.constMem[o.Imm:]), nil
	}
	return 0, fmt.Errorf("unreadable 64-bit operand %v", o)
}

func (e *engine) specialVal(w *warp, sr sass.SpecialReg, lane int) uint32 {
	tid := w.laneTid(lane)
	switch sr {
	case sass.SRTidX:
		return uint32(tid.X)
	case sass.SRTidY:
		return uint32(tid.Y)
	case sass.SRTidZ:
		return uint32(tid.Z)
	case sass.SRCtaidX:
		return uint32(w.block.idx.X)
	case sass.SRCtaidY:
		return uint32(w.block.idx.Y)
	case sass.SRCtaidZ:
		return uint32(w.block.idx.Z)
	case sass.SRLaneID:
		return uint32(lane)
	case sass.SRNTidX:
		return uint32(w.block.dim.X)
	case sass.SRNTidY:
		return uint32(w.block.dim.Y)
	case sass.SRNCtaidX:
		return uint32(e.grid.X)
	case sass.SRNCtaidY:
		return uint32(e.grid.Y)
	}
	return 0
}

// exec functionally executes one instruction for all guarded-active lanes
// and advances the PC. Memory behaviour is reported for the timing model.
// execMask is the caller-computed guard mask (issue already needs it for
// thread-instruction accounting; warp state is unchanged in between, so
// computing it once is exact).
func (e *engine) exec(w *warp, in *sass.Inst, execMask uint32) (ma memAccess, err error) {
	defer func() {
		if err != nil {
			err = &execError{Kernel: e.kernel.Name, PC: in.PC, Line: in.Line, Err: err}
		}
	}()

	nextPC := in.PC + sass.InstBytes

	lanes := func(f func(lane int) error) error {
		for m := execMask; m != 0; m &= m - 1 {
			if err := f(bits.TrailingZeros32(m)); err != nil {
				return err
			}
		}
		return nil
	}

	switch in.Op {
	case sass.OpMOV, sass.OpS2R:
		fastDone := false
		if in.Op == sass.OpMOV && !in.Dst[0].Reg.IsZ() {
			if o, ok := e.resolve32(in.Src[0]); ok {
				dst := &w.regs[in.Dst[0].Reg]
				for m := execMask; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros32(m)
					dst[lane] = o.get(w, lane)
				}
				fastDone = true
			}
		}
		if !fastDone {
			err = lanes(func(lane int) error {
				v, err := e.val(w, in.Src[0], lane)
				if err != nil {
					return err
				}
				w.wr(in.Dst[0].Reg, lane, v)
				return nil
			})
		}

	case sass.OpIADD3:
		err = e.intOp(w, in, execMask, func(a, b, c int32) int32 { return a + b + c })

	case sass.OpIMAD:
		if in.HasMod("WIDE") {
			isU32 := in.HasMod("U32")
			ra, ok1 := e.resolve32(in.Src[0])
			rb, ok2 := e.resolve32(in.Src[1])
			rc, ok3 := e.resolve64(in.Src[2])
			if d := in.Dst[0].Reg; ok1 && ok2 && ok3 && !d.IsZ() {
				lo, hi := &w.regs[d], &w.regs[d+1]
				for m := execMask; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros32(m)
					a, b := ra.get(w, lane), rb.get(w, lane)
					var prod int64
					if isU32 {
						prod = int64(uint64(a) * uint64(b))
					} else {
						prod = int64(int32(a)) * int64(int32(b))
					}
					v := uint64(prod) + rc.get(w, lane)
					lo[lane] = uint32(v)
					hi[lane] = uint32(v >> 32)
				}
			} else {
				err = lanes(func(lane int) error {
					a, err1 := e.val(w, in.Src[0], lane)
					b, err2 := e.val(w, in.Src[1], lane)
					if err1 != nil || err2 != nil {
						return firstErr(err1, err2)
					}
					c, err3 := e.val64(w, in.Src[2], lane)
					if err3 != nil {
						return err3
					}
					var prod int64
					if isU32 {
						prod = int64(uint64(a) * uint64(b))
					} else {
						prod = int64(int32(a)) * int64(int32(b))
					}
					w.wr64(in.Dst[0].Reg, lane, uint64(prod)+c)
					return nil
				})
			}
		} else {
			err = e.intOp(w, in, execMask, func(a, b, c int32) int32 { return a*b + c })
		}

	case sass.OpLOP3:
		fn := func(a, b, c int32) int32 { return a & b }
		switch {
		case in.HasMod("OR"):
			fn = func(a, b, c int32) int32 { return a | b }
		case in.HasMod("XOR"):
			fn = func(a, b, c int32) int32 { return a ^ b }
		}
		err = e.intOp(w, in, execMask, fn)

	case sass.OpSHF:
		left := in.HasMod("L")
		err = e.intOp(w, in, execMask, func(a, b, c int32) int32 {
			sh := uint32(b) & 31
			if left {
				return int32(uint32(a) << sh)
			}
			return int32(uint32(a) >> sh)
		})

	case sass.OpSEL:
		err = lanes(func(lane int) error {
			a, err1 := e.val(w, in.Src[0], lane)
			b, err2 := e.val(w, in.Src[1], lane)
			p, err3 := e.val(w, in.Src[2], lane)
			if err := firstErr(err1, err2, err3); err != nil {
				return err
			}
			if p != 0 {
				w.wr(in.Dst[0].Reg, lane, a)
			} else {
				w.wr(in.Dst[0].Reg, lane, b)
			}
			return nil
		})

	case sass.OpIMNMX:
		min := in.HasMod("MIN")
		err = e.intOp(w, in, execMask, func(a, b, c int32) int32 {
			if (a < b) == min {
				return a
			}
			return b
		})

	case sass.OpIABS:
		err = e.intOp(w, in, execMask, func(a, b, c int32) int32 {
			if a < 0 {
				return -a
			}
			return a
		})

	case sass.OpPOPC:
		err = e.intOp(w, in, execMask, func(a, b, c int32) int32 {
			return int32(popcount32(uint32(a)))
		})

	case sass.OpISETP, sass.OpFSETP:
		isFloat := in.Op == sass.OpFSETP
		isU32 := !isFloat && in.HasMod("U32")
		cmpOp := in.Mods[0]
		dst2 := sass.PT
		if len(in.Dst) > 1 {
			dst2 = in.Dst[1].Pred
		}
		ra, ok1 := e.resolve32(in.Src[0])
		rb, ok2 := e.resolve32(in.Src[1])
		rc, ok3 := e.resolve32(in.Src[2])
		if ok1 && ok2 && ok3 {
			dstP := in.Dst[0].Pred
			for m := execMask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a, b, c := ra.get(w, lane), rb.get(w, lane), rc.get(w, lane)
				var res bool
				if isFloat {
					res = fcmp(cmpOp, f32(a), f32(b))
				} else if isU32 {
					res = ucmp(cmpOp, a, b)
				} else {
					res = icmp(cmpOp, int32(a), int32(b))
				}
				res = res && c != 0 // .AND with the source predicate
				w.wrPred(dstP, lane, res)
				if dst2 != sass.PT {
					w.wrPred(dst2, lane, !res && c != 0)
				}
			}
		} else {
			err = lanes(func(lane int) error {
				a, err1 := e.val(w, in.Src[0], lane)
				b, err2 := e.val(w, in.Src[1], lane)
				c, err3 := e.val(w, in.Src[2], lane)
				if err := firstErr(err1, err2, err3); err != nil {
					return err
				}
				var res bool
				if isFloat {
					res = fcmp(cmpOp, f32(a), f32(b))
				} else if isU32 {
					res = ucmp(cmpOp, a, b)
				} else {
					res = icmp(cmpOp, int32(a), int32(b))
				}
				res = res && c != 0 // .AND with the source predicate
				w.wrPred(in.Dst[0].Pred, lane, res)
				if dst2 != sass.PT {
					w.wrPred(dst2, lane, !res && c != 0)
				}
				return nil
			})
		}

	case sass.OpFADD:
		err = e.fOp(w, in, execMask, func(a, b, c float32) float32 { return a + b })
	case sass.OpFMUL:
		err = e.fOp(w, in, execMask, func(a, b, c float32) float32 { return a * b })
	case sass.OpFFMA:
		err = e.fOp(w, in, execMask, func(a, b, c float32) float32 { return a*b + c })
	case sass.OpFMNMX:
		min := in.HasMod("MIN")
		err = e.fOp(w, in, execMask, func(a, b, c float32) float32 {
			if (a < b) == min {
				return a
			}
			return b
		})

	case sass.OpMUFU:
		err = lanes(func(lane int) error {
			a, err := e.val(w, in.Src[0], lane)
			if err != nil {
				return err
			}
			x := f32(a)
			var r float32
			switch {
			case in.HasMod("RCP"):
				r = 1 / x
			case in.HasMod("SQRT"):
				r = float32(math.Sqrt(float64(x)))
			case in.HasMod("RSQ"):
				r = float32(1 / math.Sqrt(float64(x)))
			default:
				return fmt.Errorf("MUFU variant %v not modeled", in.Mods)
			}
			w.wr(in.Dst[0].Reg, lane, b32(r))
			return nil
		})

	case sass.OpDADD:
		err = e.dOp(w, in, execMask, func(a, b, c float64) float64 { return a + b })
	case sass.OpDMUL:
		err = e.dOp(w, in, execMask, func(a, b, c float64) float64 { return a * b })
	case sass.OpDFMA:
		err = e.dOp(w, in, execMask, func(a, b, c float64) float64 { return a*b + c })

	case sass.OpI2F:
		toF64 := len(in.Mods) > 0 && in.Mods[0] == "F64"
		err = lanes(func(lane int) error {
			a, err := e.val(w, in.Src[0], lane)
			if err != nil {
				return err
			}
			if toF64 {
				w.wr64(in.Dst[0].Reg, lane, b64(float64(int32(a))))
			} else {
				w.wr(in.Dst[0].Reg, lane, b32(float32(int32(a))))
			}
			return nil
		})

	case sass.OpF2I:
		err = lanes(func(lane int) error {
			a, err := e.val(w, in.Src[0], lane)
			if err != nil {
				return err
			}
			w.wr(in.Dst[0].Reg, lane, uint32(int32(f32(a))))
			return nil
		})

	case sass.OpF2F:
		widen := len(in.Mods) > 1 && in.Mods[0] == "F64"
		err = lanes(func(lane int) error {
			if widen {
				a, err := e.val(w, in.Src[0], lane)
				if err != nil {
					return err
				}
				w.wr64(in.Dst[0].Reg, lane, b64(float64(f32(a))))
				return nil
			}
			a, err := e.val64(w, in.Src[0], lane)
			if err != nil {
				return err
			}
			w.wr(in.Dst[0].Reg, lane, b32(float32(f64b(a))))
			return nil
		})

	case sass.OpI2I:
		err = lanes(func(lane int) error {
			a, err := e.val(w, in.Src[0], lane)
			if err != nil {
				return err
			}
			w.wr(in.Dst[0].Reg, lane, a)
			return nil
		})

	case sass.OpSHFL:
		// Warp shuffle: every lane reads another lane's pre-shuffle value.
		// Inactive source lanes (and out-of-range indices) return the
		// reading lane's own value, like __shfl_*_sync with a full mask.
		var pre [32]uint32
		for lane := 0; lane < 32; lane++ {
			pre[lane], _ = e.val(w, in.Src[0], lane)
		}
		err = lanes(func(lane int) error {
			bval, err := e.val(w, in.Src[1], lane)
			if err != nil {
				return err
			}
			src := lane
			switch {
			case in.HasMod("DOWN"):
				src = lane + int(bval)
			case in.HasMod("UP"):
				src = lane - int(bval)
			case in.HasMod("BFLY"):
				src = lane ^ int(bval)
			case in.HasMod("IDX"):
				src = int(bval) & 31
			}
			if src < 0 || src > 31 || execMask&(1<<uint(src)) == 0 {
				src = lane
			}
			w.wr(in.Dst[0].Reg, lane, pre[src])
			return nil
		})

	case sass.OpLDG, sass.OpSTG, sass.OpLDL, sass.OpSTL, sass.OpLDS, sass.OpSTS,
		sass.OpLDC, sass.OpTEX, sass.OpATOM, sass.OpATOMS, sass.OpRED, sass.OpLDGSTS:
		ma, err = e.execMem(w, in, execMask)

	case sass.OpBRA:
		taken := execMask
		notTaken := w.active &^ taken
		switch {
		case taken == 0 || in.Target == nextPC:
			// Not taken (or a no-op jump): plain fall-through.
			w.pc = nextPC
		case notTaken == 0:
			w.pc = in.Target
		default:
			// Divergence: run the fall-through side first, park the taken
			// side, reconverge at the immediate post-dominator.
			idx := int(in.PC / sass.InstBytes)
			reconv, ok := e.ipdomPC(idx)
			if !ok {
				// No post-dominator (an exit on one side): use the kernel
				// end; exiting lanes clear themselves via EXIT.
				reconv = uint64(len(e.kernel.Insts)) * sass.InstBytes
			}
			w.stack = append(w.stack, divEntry{
				reconv:    reconv,
				otherPC:   in.Target,
				otherMask: taken,
			})
			w.active = notTaken
			w.pc = nextPC
		}
		w.maybeReconverge()
		return ma, nil

	case sass.OpEXIT:
		w.active &^= execMask
		if w.active != 0 {
			// Guard-false lanes continue past the EXIT.
			w.pc = nextPC
		}
		w.maybeReconverge()
		return ma, nil

	case sass.OpBAR, sass.OpNOP, sass.OpMEMBAR, sass.OpRET:
		// BAR timing handled by the engine; functionally a no-op here.

	default:
		err = fmt.Errorf("opcode %s not modeled", in.Op)
	}
	if err != nil {
		return ma, err
	}
	w.pc = nextPC
	w.maybeReconverge()
	return ma, nil
}

// opd32 is a source operand pre-resolved for the arithmetic fast path:
// either a register reference or a lane-invariant value.
type opd32 struct {
	isReg bool
	neg   bool
	reg   sass.Reg
	val   uint32
}

func (o *opd32) get(w *warp, lane int) uint32 {
	if !o.isReg {
		return o.val
	}
	v := w.regs[o.reg][lane]
	if o.neg {
		v ^= 0x80000000
	}
	return v
}

// resolve32 classifies an operand for the fast path. It mirrors val():
// immediates and in-range constants are lane-invariant, RZ (negated or
// not) is a lane-invariant literal, registers defer the read. Operand
// kinds with per-lane logic beyond a register read (specials,
// predicates) and out-of-range constants report !ok and take the
// original per-lane path.
func (e *engine) resolve32(o sass.Operand) (opd32, bool) {
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg.IsZ() {
			var v uint32
			if o.Neg {
				v = 0x80000000
			}
			return opd32{val: v}, true
		}
		return opd32{isReg: true, reg: o.Reg, neg: o.Neg}, true
	case sass.OpdImm:
		return opd32{val: uint32(o.Imm)}, true
	case sass.OpdConst:
		if o.Bank != 0 || o.Imm < 0 || int(o.Imm)+4 > len(e.constMem) {
			return opd32{}, false
		}
		return opd32{val: binary.LittleEndian.Uint32(e.constMem[o.Imm:])}, true
	case sass.OpdPred:
		// PT reads as true in every lane: val() yields 1 (0 when negated).
		// Allocatable predicates are per-lane state — slow path.
		if o.Pred == sass.PT {
			if o.Neg {
				return opd32{}, true
			}
			return opd32{val: 1}, true
		}
	}
	return opd32{}, false
}

func (e *engine) intOp(w *warp, in *sass.Inst, mask uint32, f func(a, b, c int32) int32) error {
	if mask == 0 {
		return nil
	}
	var ops [3]opd32
	fast := !in.Dst[0].Reg.IsZ()
	for i := 0; fast && i < len(in.Src) && i < 3; i++ {
		var ok bool
		if ops[i], ok = e.resolve32(in.Src[i]); !ok {
			fast = false
		}
	}
	if fast {
		dst := &w.regs[in.Dst[0].Reg]
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := ops[0].get(w, lane)
			b := ops[1].get(w, lane)
			c := ops[2].get(w, lane)
			dst[lane] = uint32(f(int32(a), int32(b), int32(c)))
		}
		return nil
	}
	return e.intOpSlow(w, in, mask, f)
}

// intOpSlow is the original per-lane operand path, kept for operand
// kinds the fast path does not cover; it defines the error semantics.
func (e *engine) intOpSlow(w *warp, in *sass.Inst, mask uint32, f func(a, b, c int32) int32) error {
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		a, err1 := e.val(w, in.Src[0], lane)
		var b, c uint32
		var err2, err3 error
		if len(in.Src) > 1 {
			b, err2 = e.val(w, in.Src[1], lane)
		}
		if len(in.Src) > 2 {
			c, err3 = e.val(w, in.Src[2], lane)
		}
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		w.wr(in.Dst[0].Reg, lane, uint32(f(int32(a), int32(b), int32(c))))
	}
	return nil
}

func (e *engine) fOp(w *warp, in *sass.Inst, mask uint32, f func(a, b, c float32) float32) error {
	if mask == 0 {
		return nil
	}
	var ops [3]opd32
	fast := !in.Dst[0].Reg.IsZ()
	for i := 0; fast && i < len(in.Src) && i < 3; i++ {
		var ok bool
		if ops[i], ok = e.resolve32(in.Src[i]); !ok {
			fast = false
		}
	}
	if fast {
		dst := &w.regs[in.Dst[0].Reg]
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := f32(ops[0].get(w, lane))
			b := f32(ops[1].get(w, lane))
			c := f32(ops[2].get(w, lane))
			dst[lane] = b32(f(a, b, c))
		}
		return nil
	}
	return e.intOpSlow(w, in, mask, func(a, b, c int32) int32 {
		return int32(b32(f(f32(uint32(a)), f32(uint32(b)), f32(uint32(c)))))
	})
}

// opd64 mirrors opd32 for 64-bit (register-pair or constant-pair)
// operands.
type opd64 struct {
	isReg bool
	neg   bool
	reg   sass.Reg
	val   uint64
}

func (o *opd64) get(w *warp, lane int) uint64 {
	if !o.isReg {
		return o.val
	}
	v := uint64(w.regs[o.reg][lane]) | uint64(w.regs[o.reg+1][lane])<<32
	if o.neg {
		v ^= 1 << 63
	}
	return v
}

func (e *engine) resolve64(o sass.Operand) (opd64, bool) {
	switch o.Kind {
	case sass.OpdReg:
		if o.Reg.IsZ() {
			// val64's rd64(RZ) touches RZ+1; keep the slow path's exact
			// behavior for this degenerate case.
			return opd64{}, false
		}
		return opd64{isReg: true, reg: o.Reg, neg: o.Neg}, true
	case sass.OpdConst:
		if o.Bank != 0 || o.Imm < 0 || int(o.Imm)+8 > len(e.constMem) {
			return opd64{}, false
		}
		return opd64{val: binary.LittleEndian.Uint64(e.constMem[o.Imm:])}, true
	}
	return opd64{}, false
}

func (e *engine) dOp(w *warp, in *sass.Inst, mask uint32, f func(a, b, c float64) float64) error {
	if mask == 0 {
		return nil
	}
	var ops [3]opd64
	fast := !in.Dst[0].Reg.IsZ()
	for i := 0; fast && i < len(in.Src) && i < 3; i++ {
		var ok bool
		if ops[i], ok = e.resolve64(in.Src[i]); !ok {
			fast = false
		}
	}
	if fast {
		d := in.Dst[0].Reg
		lo, hi := &w.regs[d], &w.regs[d+1]
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := ops[0].get(w, lane)
			b := ops[1].get(w, lane)
			c := ops[2].get(w, lane)
			v := b64(f(f64b(a), f64b(b), f64b(c)))
			lo[lane] = uint32(v)
			hi[lane] = uint32(v >> 32)
		}
		return nil
	}
	return e.dOpSlow(w, in, mask, f)
}

func (e *engine) dOpSlow(w *warp, in *sass.Inst, mask uint32, f func(a, b, c float64) float64) error {
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		a, err1 := e.val64(w, in.Src[0], lane)
		var b, c uint64
		var err2, err3 error
		if len(in.Src) > 1 {
			b, err2 = e.val64(w, in.Src[1], lane)
		}
		if len(in.Src) > 2 {
			c, err3 = e.val64(w, in.Src[2], lane)
		}
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		w.wr64(in.Dst[0].Reg, lane, b64(f(f64b(a), f64b(b), f64b(c))))
	}
	return nil
}

func icmp(op string, a, b int32) bool {
	switch op {
	case "LT":
		return a < b
	case "LE":
		return a <= b
	case "GT":
		return a > b
	case "GE":
		return a >= b
	case "EQ":
		return a == b
	case "NE":
		return a != b
	}
	return false
}

func ucmp(op string, a, b uint32) bool {
	switch op {
	case "LT":
		return a < b
	case "LE":
		return a <= b
	case "GT":
		return a > b
	case "GE":
		return a >= b
	case "EQ":
		return a == b
	case "NE":
		return a != b
	}
	return false
}

func fcmp(op string, a, b float32) bool {
	switch op {
	case "LT":
		return a < b
	case "LE":
		return a <= b
	case "GT":
		return a > b
	case "GE":
		return a >= b
	case "EQ":
		return a == b
	case "NE":
		return a != b
	}
	return false
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
