package sim

import (
	"math"
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// runScalarKernel builds a 32-thread kernel with body emitting a single
// result vreg, runs it, and returns each lane's output word.
func runScalarKernel(t *testing.T, body func(b *kasm.Builder, tid kasm.VReg) kasm.VReg) []uint32 {
	t.Helper()
	b := kasm.NewBuilder("_Zop", "sm_70", "op.cu")
	b.NumParams(1)
	b.Line(1)
	tid := b.TidX()
	out := b.ParamPtr(0)
	res := body(b, tid)
	off := b.Shl(kasm.VR(tid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(addr, 0, res, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.Compile(p, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(gpu.V100())
	buf := dev.MustAlloc(4 * 32)
	if _, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(32), Params: []uint64{buf.Addr},
	}, Config{}); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 4*32)
	if err := dev.CopyFromDevice(raw, buf); err != nil {
		t.Fatal(err)
	}
	out32 := make([]uint32, 32)
	for i := range out32 {
		out32[i] = uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
	}
	return out32
}

func TestOpMufu(t *testing.T) {
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		f := b.I2F(kasm.VR(tid))
		one := b.FAdd(kasm.VR(f), kasm.VImm(int64(math.Float32bits(1))))
		return b.MufuRcp(kasm.VR(one)) // 1/(tid+1)
	})
	for lane, g := range got {
		want := float32(1) / float32(lane+1)
		if math.Float32frombits(g) != want {
			t.Fatalf("rcp lane %d = %v, want %v", lane, math.Float32frombits(g), want)
		}
	}
}

func TestOpMinMaxSelAbsPopc(t *testing.T) {
	// max(tid, 16)
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		return b.IMax(kasm.VR(tid), kasm.VImm(16))
	})
	for lane, g := range got {
		want := uint32(16)
		if lane > 16 {
			want = uint32(lane)
		}
		if g != want {
			t.Fatalf("max lane %d = %d, want %d", lane, g, want)
		}
	}
	// |tid - 16|
	got = runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		d := b.IAdd(kasm.VR(tid), kasm.VImm(-16))
		dst := b.MovImm(0)
		b.MovTo(kasm.VR(dst), kasm.VR(d))
		abs := b.MovImm(0)
		_ = abs
		// IABS via raw emit through the builder's generic path.
		return emitUnary(b, sass.OpIABS, nil, kasm.VR(d))
	})
	for lane, g := range got {
		want := uint32(lane - 16)
		if lane < 16 {
			want = uint32(16 - lane)
		}
		if g != want {
			t.Fatalf("abs lane %d = %d, want %d", lane, g, want)
		}
	}
	// popc(tid)
	got = runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		return emitUnary(b, sass.OpPOPC, nil, kasm.VR(tid))
	})
	for lane, g := range got {
		want := uint32(0)
		for x := lane; x != 0; x &= x - 1 {
			want++
		}
		if g != want {
			t.Fatalf("popc lane %d = %d, want %d", lane, g, want)
		}
	}
}

// emitUnary emits op dst, a through the builder's internals-free surface.
func emitUnary(b *kasm.Builder, op sass.Opcode, mods []string, a kasm.VOperand) kasm.VReg {
	// The builder has no public emitter for every opcode; reuse IMad-like
	// shape via a tiny shim: Mov into a fresh reg then rewrite is not
	// possible, so use the dedicated builder entry points where they
	// exist and the generic Raw emitter below otherwise.
	return b.Raw(op, mods, a)
}

func TestOpShflVariants(t *testing.T) {
	// shfl.down by 1: lane i gets value of lane i+1 (lane 31 keeps own).
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		return b.ShflDown(kasm.VR(tid), 1)
	})
	for lane, g := range got {
		want := uint32(lane + 1)
		if lane == 31 {
			want = 31
		}
		if g != want {
			t.Fatalf("shfl.down lane %d = %d, want %d", lane, g, want)
		}
	}
	// shfl.bfly by 16: halves swap.
	got = runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		return b.ShflBfly(kasm.VR(tid), 16)
	})
	for lane, g := range got {
		if g != uint32(lane^16) {
			t.Fatalf("shfl.bfly lane %d = %d, want %d", lane, g, lane^16)
		}
	}
	// shfl.idx to lane 7: broadcast.
	got = runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		return b.ShflIdx(kasm.VR(tid), kasm.VImm(7))
	})
	for lane, g := range got {
		if g != 7 {
			t.Fatalf("shfl.idx lane %d = %d, want 7", lane, g)
		}
	}
}

func TestOpF64Conversions(t *testing.T) {
	// double(tid) * 0.5 narrowed back to float.
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		f := b.I2F(kasm.VR(tid))
		d := b.F2FWiden(kasm.VR(f))
		half := b.MovImmF64(0.5)
		prod := b.DMul(kasm.VR(d), kasm.VR(half))
		return b.F2FNarrow(kasm.VR(prod))
	})
	for lane, g := range got {
		want := float32(float64(lane) * 0.5)
		if math.Float32frombits(g) != want {
			t.Fatalf("f64 chain lane %d = %v, want %v", lane, math.Float32frombits(g), want)
		}
	}
}

func TestOpLogicAndShifts(t *testing.T) {
	// ((tid | 0x30) ^ 0x5) >> 1
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		or := b.Raw(sass.OpLOP3, []string{"OR"}, kasm.VR(tid), kasm.VImm(0x30))
		xor := b.Raw(sass.OpLOP3, []string{"XOR"}, kasm.VR(or), kasm.VImm(0x5))
		return b.Shr(kasm.VR(xor), 1)
	})
	for lane, g := range got {
		want := uint32((lane|0x30)^0x5) >> 1
		if g != want {
			t.Fatalf("logic lane %d = %#x, want %#x", lane, g, want)
		}
	}
}

func TestOpFMnmxAndFSetp(t *testing.T) {
	// min(float(tid), 10.0) selected via FSETP+SEL equivalence check:
	// use FMNMX directly.
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		f := b.I2F(kasm.VR(tid))
		return b.Raw(sass.OpFMNMX, []string{"MIN"}, kasm.VR(f), kasm.VImm(int64(math.Float32bits(10))))
	})
	for lane, g := range got {
		want := float32(lane)
		if want > 10 {
			want = 10
		}
		if math.Float32frombits(g) != want {
			t.Fatalf("fmnmx lane %d = %v, want %v", lane, math.Float32frombits(g), want)
		}
	}
}

func TestOpUnsignedCompare(t *testing.T) {
	// (uint32)(tid-8) < 4 ? 1 : 0 — exercises ISETP.U32 wraparound.
	got := runScalarKernel(t, func(b *kasm.Builder, tid kasm.VReg) kasm.VReg {
		d := b.IAdd(kasm.VR(tid), kasm.VImm(-8))
		res := b.MovImm(0)
		p := b.Raw2P(sass.OpISETP, []string{"LT", "U32", "AND"}, kasm.VR(d), kasm.VImm(4))
		b.WithPred(p, false, func() { b.MovTo(kasm.VR(res), kasm.VImm(1)) })
		b.FreePred(p)
		return res
	})
	for lane, g := range got {
		want := uint32(0)
		if uint32(lane-8) < 4 {
			want = 1
		}
		if g != want {
			t.Fatalf("ucmp lane %d = %d, want %d", lane, g, want)
		}
	}
}
