package sim

import (
	"context"
	"fmt"
	"math"

	"gpuscout/internal/gpu"
	"gpuscout/internal/memsys"
	"gpuscout/internal/sass"
)

// Config controls a simulated launch.
type Config struct {
	// SampleSMs caps how many SMs are simulated; blocks assigned to other
	// SMs are accounted for by scaling (homogeneous-workload assumption,
	// standard simulator practice). 0 means the default of 4.
	SampleSMs int
	// MaxCycles aborts runaway kernels. 0 means the default of 2e8.
	MaxCycles float64
}

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *sass.Kernel
	Grid   Dim3
	Block  Dim3
	// Params are the kernel's 8-byte argument slots (pointers as device
	// addresses, 32-bit scalars in the low word), written to the constant
	// bank at kasm.ParamBase.
	Params []uint64
}

// engine holds everything one simulated launch needs.
type engine struct {
	ctx     context.Context
	dev     *Device
	arch    gpu.Arch
	kernel  *sass.Kernel
	grid    Dim3
	block   Dim3
	cfg     Config
	occ     gpu.Occupancy
	nextGid int

	constMem []byte
	counters *Counters

	reconvPC  []uint64
	hasReconv []bool

	// localBase is a synthetic address region where per-thread local
	// memory lives for cache-modeling purposes.
	localBase uint64
}

// paramBase mirrors kasm.ParamBase without importing it (sim is below
// kasm in the package DAG).
const paramBase = 0x160

// Launch runs the kernel on the device and returns timing, stalls and
// counters. Functional effects (buffer contents, atomics) are applied to
// the device memory.
func Launch(dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	return LaunchContext(context.Background(), dev, spec, cfg)
}

// LaunchContext is Launch with cancellation: the simulation loop polls
// ctx and aborts promptly (within a few thousand simulated cycles) when
// it is cancelled or its deadline passes, returning an error satisfying
// errors.Is(err, ctx.Err()).
func LaunchContext(ctx context.Context, dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k := spec.Kernel
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if spec.Grid.X <= 0 || spec.Grid.Y < 0 || spec.Grid.Z < 0 ||
		spec.Block.X <= 0 || spec.Block.Y < 0 || spec.Block.Z < 0 {
		return nil, fmt.Errorf("sim: empty grid/block %v/%v", spec.Grid, spec.Block)
	}
	if spec.Block.Count() > dev.Arch.MaxThreadsPerBlock {
		return nil, fmt.Errorf("sim: block of %d threads exceeds limit %d", spec.Block.Count(), dev.Arch.MaxThreadsPerBlock)
	}
	occ, err := gpu.ComputeOccupancy(dev.Arch, k.NumRegs, k.SharedBytes, spec.Block.Count())
	if err != nil {
		return nil, fmt.Errorf("sim: occupancy: %w", err)
	}
	if cfg.SampleSMs <= 0 {
		cfg.SampleSMs = 4
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2e8
	}

	cfgCFG, err := sass.BuildCFG(k)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	e := &engine{
		ctx:       ctx,
		dev:       dev,
		arch:      dev.Arch,
		kernel:    k,
		grid:      spec.Grid,
		block:     spec.Block,
		cfg:       cfg,
		occ:       occ,
		counters:  newCounters(),
		localBase: memBase + uint64(dev.Arch.DRAMBytes) + (1 << 40),
	}

	// Parameter area in constant bank 0.
	e.constMem = make([]byte, paramBase+8*len(spec.Params))
	for i, p := range spec.Params {
		putU64(e.constMem[paramBase+8*i:], p)
	}
	if k.ConstBytes > len(e.constMem) {
		grown := make([]byte, k.ConstBytes)
		copy(grown, e.constMem)
		e.constMem = grown
	}

	// Precompute per-instruction reconvergence PCs.
	e.reconvPC = make([]uint64, len(k.Insts))
	e.hasReconv = make([]bool, len(k.Insts))
	for i := range k.Insts {
		if k.Insts[i].Op == sass.OpBRA {
			pc, ok := cfgCFG.IPDomPC(i)
			e.reconvPC[i], e.hasReconv[i] = pc, ok
		}
	}

	// Distribute blocks round-robin over all NumSMs; simulate a sample.
	totalBlocks := spec.Grid.Count()
	simSMs := e.arch.NumSMs
	if simSMs > cfg.SampleSMs {
		simSMs = cfg.SampleSMs
	}
	if simSMs > totalBlocks {
		simSMs = totalBlocks
	}

	var maxFinish float64
	var smFinish []float64
	simulatedBlocks := 0
	for smID := 0; smID < simSMs; smID++ {
		blocks := blocksForSM(spec.Grid, smID, e.arch.NumSMs)
		if len(blocks) == 0 {
			continue
		}
		simulatedBlocks += len(blocks)
		finish, err := e.runSM(smID, blocks)
		if err != nil {
			return nil, err
		}
		smFinish = append(smFinish, finish)
		if finish > maxFinish {
			maxFinish = finish
		}
	}
	if simulatedBlocks == 0 {
		return nil, fmt.Errorf("sim: no blocks simulated")
	}

	scale := float64(totalBlocks) / float64(simulatedBlocks)
	res := &Result{
		Kernel:          k.Name,
		Grid:            spec.Grid,
		Block:           spec.Block,
		Cycles:          maxFinish,
		DurationSec:     e.arch.CyclesToSeconds(uint64(maxFinish)),
		Occupancy:       occ,
		Scale:           scale,
		SimulatedBlocks: simulatedBlocks,
		TotalBlocks:     totalBlocks,
		NumSMs:          e.arch.NumSMs,
		SimulatedSMs:    simSMs,
		SMFinish:        smFinish,
		Counters:        e.counters,
	}
	if e.counters.SMBusyCycles > 0 {
		res.AchievedOccupancy = e.counters.ActiveWarpCycles /
			(e.counters.SMBusyCycles * float64(e.arch.MaxWarpsPerSM))
	}
	return res, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// blocksForSM lists the block indices assigned to one SM under
// round-robin rasterization (X-major, then Y, then Z).
func blocksForSM(grid Dim3, smID, numSMs int) []Dim3 {
	var out []Dim3
	gx, gy, gz := grid.X, grid.Y, grid.Z
	if gx == 0 {
		gx = 1
	}
	if gy == 0 {
		gy = 1
	}
	if gz == 0 {
		gz = 1
	}
	total := gx * gy * gz
	for lin := smID; lin < total; lin += numSMs {
		out = append(out, Dim3{X: lin % gx, Y: (lin / gx) % gy, Z: lin / (gx * gy)})
	}
	return out
}

// ipdomPC returns the reconvergence PC of the branch at instruction idx.
func (e *engine) ipdomPC(idx int) (uint64, bool) {
	return e.reconvPC[idx], e.hasReconv[idx]
}

// newSM builds the per-SM timing state with this SM's bandwidth slices.
func (e *engine) newSM(id int) *smState {
	a := &e.arch
	l2SliceBytes := a.L2Bytes / a.NumSMs
	// Keep cache geometry valid: at least one set of full associativity.
	minBytes := a.L2LineBytes * a.L2Ways
	if l2SliceBytes < minBytes {
		l2SliceBytes = minBytes
	} else {
		l2SliceBytes = l2SliceBytes / minBytes * minBytes
	}
	return &smState{
		id: id,
		l1: memsys.NewCache(memsys.CacheConfig{
			Name: "l1tex", TotalBytes: a.L1Bytes, LineBytes: a.L1LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L1Ways,
		}),
		l2: memsys.NewCache(memsys.CacheConfig{
			Name: "lts", TotalBytes: l2SliceBytes, LineBytes: a.L2LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L2Ways,
		}),
		lsu:     memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		texu:    memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		mio:     memsys.NewBandwidth(1),                        // 1 transaction/cycle
		l2bw:    memsys.NewBandwidth(a.L2BWBytes / float64(a.NumSMs)),
		dram:    memsys.NewBandwidth(a.DRAMBWBytes / float64(a.NumSMs)),
		scratch: make([]sass.Reg, 0, 16),
	}
}

// runSM simulates all blocks assigned to one SM and returns its finish
// time in cycles.
func (e *engine) runSM(smID int, blockIdxs []Dim3) (float64, error) {
	sm := e.newSM(smID)
	resident := e.occ.BlocksPerSM
	if resident > len(blockIdxs) {
		resident = len(blockIdxs)
	}
	for i := 0; i < resident; i++ {
		e.launchBlock(sm, blockIdxs[i])
	}
	sm.pending = append(sm.pending, blockIdxs[resident:]...)

	numSched := e.arch.NumSchedulers
	if numSched < 1 || numSched > len(sm.lastPick) {
		numSched = 4
	}

	for iter := 0; ; iter++ {
		// Cancellation poll: cheap enough amortized over 1024 scheduler
		// rounds, frequent enough that a daemon's per-job timeout actually
		// interrupts a long simulation.
		if iter&1023 == 0 {
			select {
			case <-e.ctx.Done():
				return 0, fmt.Errorf("sim: kernel %s aborted at cycle %.0f on SM %d: %w",
					e.kernel.Name, sm.now, smID, e.ctx.Err())
			default:
			}
		}
		// Completion check and per-warp classification. Snapshot the warp
		// list: issuing an EXIT can retire a block and launch a pending
		// one, appending warps that are only considered next iteration.
		// Classifications are cached: a blocked warp cannot unblock before
		// its recorded event, so it is only re-examined then (or when its
		// own state changes).
		warps := sm.warps
		liveWarps := 0
		allDone := true
		for _, w := range warps {
			if w.done {
				continue
			}
			allDone = false
			liveWarps++
			if !w.clsValid || w.cls.eligible || w.cls.event <= sm.now {
				w.cls = e.classify(sm, w)
				w.clsValid = true
			}
		}
		if allDone {
			if len(sm.pending) > 0 {
				// Should be unreachable: retireWarp refills eagerly.
				idx := sm.pending[0]
				sm.pending = sm.pending[1:]
				e.launchBlock(sm, idx)
				continue
			}
			break
		}

		// Scheduling: each scheduler issues at most one eligible warp,
		// greedy-then-oldest.
		issued := 0
		for sched := 0; sched < numSched; sched++ {
			var pick *warp
			if last := sm.lastPick[sched]; last != nil && !last.done && last.cls.eligible {
				pick = last
			}
			if pick == nil {
				for _, w := range warps {
					if w.done || w.gid%numSched != sched || !w.cls.eligible {
						continue
					}
					pick = w
					break
				}
			}
			if pick == nil {
				continue
			}
			sm.lastPick[sched] = pick
			pc := pick.cls.pc
			if err := e.issue(sm, pick); err != nil {
				return 0, err
			}
			e.counters.addStall(pc, StallSelected, 1)
			pick.cls.eligible = false
			pick.cls.reason = StallSelected
			pick.clsValid = false
			issued++
		}

		// Advance time and attribute stall cycles.
		dt := 1.0
		if issued == 0 {
			next := math.Inf(1)
			for _, w := range warps {
				if w.done {
					continue
				}
				if t := w.cls.event; t < next {
					next = t
				}
			}
			if math.IsInf(next, 1) {
				return 0, fmt.Errorf("sim: deadlock on SM %d at cycle %.0f (kernel %s): all %d warps blocked",
					smID, sm.now, e.kernel.Name, liveWarps)
			}
			if next <= sm.now {
				next = sm.now + 1
			}
			dt = next - sm.now
		}
		for _, w := range warps {
			if w.done || (!w.clsValid && w.cls.reason == StallSelected) {
				continue
			}
			if !w.clsValid {
				// Just issued this cycle; already attributed as selected.
				continue
			}
			reason := w.cls.reason
			if w.cls.eligible {
				reason = StallNotSelected
			}
			e.counters.addStall(w.cls.pc, reason, dt)
		}
		e.counters.ActiveWarpCycles += float64(liveWarps) * dt
		sm.now += dt
		if sm.now > e.cfg.MaxCycles {
			return 0, fmt.Errorf("sim: kernel %s exceeded %g cycles on SM %d", e.kernel.Name, e.cfg.MaxCycles, smID)
		}
	}
	e.counters.SMBusyCycles += sm.now
	return sm.now, nil
}
