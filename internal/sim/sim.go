package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/memsys"
	"gpuscout/internal/sass"
)

// siteLaunch is the fault-injection site covering the simulated launch.
var siteLaunch = faultinject.Register("sim.launch")

// Config controls a simulated launch.
type Config struct {
	// SampleSMs caps how many SMs are simulated; blocks assigned to other
	// SMs are accounted for by scaling (homogeneous-workload assumption,
	// standard simulator practice). 0 means the default of 4.
	SampleSMs int
	// MaxCycles aborts runaway kernels. 0 means the default of 2e8.
	MaxCycles float64
	// Workers caps how many sampled SMs simulate concurrently. Each SM
	// owns its timing state, counters, and L2/DRAM bandwidth slice, so
	// SMs are independent up to device memory; cross-SM global atomics
	// serialize in an address-sharded atomic unit. 0 uses GOMAXPROCS;
	// 1 is the sequential reference path. Every worker count produces
	// the same Result bit for bit (fixed SM-ID merge order; see the
	// determinism note on Result).
	Workers int
}

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *sass.Kernel
	Grid   Dim3
	Block  Dim3
	// Params are the kernel's 8-byte argument slots (pointers as device
	// addresses, 32-bit scalars in the low word), written to the constant
	// bank at kasm.ParamBase.
	Params []uint64
}

// engine holds everything one simulated launch needs. During the SM
// phase the engine is shared read-only between SM goroutines; all
// mutable per-SM state (timing, counters, warp IDs) lives in smState,
// and the only cross-SM writes — global atomics — go through atomics.
type engine struct {
	ctx    context.Context
	dev    *Device
	arch   gpu.Arch
	kernel *sass.Kernel
	grid   Dim3
	block  Dim3
	cfg    Config
	occ    gpu.Occupancy

	constMem []byte
	atomics  atomicUnit

	reconvPC  []uint64
	hasReconv []bool

	// Per-instruction register lists, precomputed once per launch so the
	// scheduler's eligibility test (classify) and writeback (setDstReady)
	// never re-derive operands on the hot path. depRegs[i] is instruction
	// i's sources followed by its destinations — the exact order the old
	// per-issue SrcRegs+DstRegs calls produced, which the strict-`>`
	// tie-break in classify depends on. Both are views into one flat
	// backing slice.
	depRegs [][]sass.Reg
	dstRegs [][]sass.Reg

	// localBase is a synthetic address region where per-thread local
	// memory lives for cache-modeling purposes.
	localBase uint64
}

// paramBase mirrors kasm.ParamBase without importing it (sim is below
// kasm in the package DAG).
const paramBase = 0x160

// Launch runs the kernel on the device and returns timing, stalls and
// counters. Functional effects (buffer contents, atomics) are applied to
// the device memory.
func Launch(dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	return LaunchContext(context.Background(), dev, spec, cfg)
}

// LaunchContext is Launch with cancellation: the simulation loop polls
// ctx and aborts promptly (within a few thousand simulated cycles) when
// it is cancelled or its deadline passes, returning an error satisfying
// errors.Is(err, ctx.Err()).
func LaunchContext(ctx context.Context, dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Hit(siteLaunch); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	k := spec.Kernel
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if spec.Grid.X <= 0 || spec.Grid.Y < 0 || spec.Grid.Z < 0 ||
		spec.Block.X <= 0 || spec.Block.Y < 0 || spec.Block.Z < 0 {
		return nil, fmt.Errorf("sim: empty grid/block %v/%v", spec.Grid, spec.Block)
	}
	if spec.Block.Count() > dev.Arch.MaxThreadsPerBlock {
		return nil, fmt.Errorf("sim: block of %d threads exceeds limit %d", spec.Block.Count(), dev.Arch.MaxThreadsPerBlock)
	}
	occ, err := gpu.ComputeOccupancy(dev.Arch, k.NumRegs, k.SharedBytes, spec.Block.Count())
	if err != nil {
		return nil, fmt.Errorf("sim: occupancy: %w", err)
	}
	if cfg.SampleSMs <= 0 {
		cfg.SampleSMs = 4
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2e8
	}

	cfgCFG, err := sass.BuildCFG(k)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	e := &engine{
		ctx:       ctx,
		dev:       dev,
		arch:      dev.Arch,
		kernel:    k,
		grid:      spec.Grid,
		block:     spec.Block,
		cfg:       cfg,
		occ:       occ,
		localBase: memBase + uint64(dev.Arch.DRAMBytes) + (1 << 40),
	}

	// Parameter area in constant bank 0.
	e.constMem = make([]byte, paramBase+8*len(spec.Params))
	for i, p := range spec.Params {
		putU64(e.constMem[paramBase+8*i:], p)
	}
	if k.ConstBytes > len(e.constMem) {
		grown := make([]byte, k.ConstBytes)
		copy(grown, e.constMem)
		e.constMem = grown
	}

	// Precompute per-instruction reconvergence PCs.
	e.reconvPC = make([]uint64, len(k.Insts))
	e.hasReconv = make([]bool, len(k.Insts))
	for i := range k.Insts {
		if k.Insts[i].Op == sass.OpBRA {
			pc, ok := cfgCFG.IPDomPC(i)
			e.reconvPC[i], e.hasReconv[i] = pc, ok
		}
	}
	e.precomputeRegLists()

	// Distribute blocks round-robin over all NumSMs; simulate a sample.
	totalBlocks := spec.Grid.Count()
	simSMs := e.arch.NumSMs
	if simSMs > cfg.SampleSMs {
		simSMs = cfg.SampleSMs
	}
	if simSMs > totalBlocks {
		simSMs = totalBlocks
	}

	// Plan the per-SM work up front. Global warp IDs feed scheduling
	// order and local-memory addressing, so each SM gets a precomputed
	// base equal to the warps launched by the SMs before it — the exact
	// IDs a sequential pass over the SMs would assign.
	warpsPerBlock := (spec.Block.Count() + 31) / 32
	type smPlan struct {
		id      int
		blocks  []Dim3
		gidBase int
	}
	var plans []smPlan
	simulatedBlocks := 0
	for smID := 0; smID < simSMs; smID++ {
		blocks := blocksForSM(spec.Grid, smID, e.arch.NumSMs)
		if len(blocks) == 0 {
			continue
		}
		plans = append(plans, smPlan{id: smID, blocks: blocks, gidBase: simulatedBlocks * warpsPerBlock})
		simulatedBlocks += len(blocks)
	}
	if simulatedBlocks == 0 {
		return nil, fmt.Errorf("sim: no blocks simulated")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}

	sms := make([]*smState, len(plans))
	smSeconds := make([]float64, len(plans))
	wallStart := time.Now()
	if workers <= 1 {
		// Sequential reference path: same per-SM states, same merge.
		for i, p := range plans {
			sm := e.newSM(p.id, p.gidBase)
			t0 := time.Now()
			if err := e.runSM(ctx, sm, p.blocks); err != nil {
				return nil, err
			}
			smSeconds[i] = time.Since(t0).Seconds()
			sms[i] = sm
		}
	} else {
		// One goroutine per sampled SM, at most `workers` running. A
		// failing SM cancels its siblings through runCtx so the launch
		// aborts promptly instead of simulating doomed SMs to the end.
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		errs := make([]error, len(plans))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range plans {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				p := plans[i]
				sm := e.newSM(p.id, p.gidBase)
				t0 := time.Now()
				if err := e.runSM(runCtx, sm, p.blocks); err != nil {
					errs[i] = err
					cancel()
					return
				}
				smSeconds[i] = time.Since(t0).Seconds()
				sms[i] = sm
			}(i)
		}
		wg.Wait()
		if err := firstSMError(ctx, errs); err != nil {
			return nil, err
		}
	}

	// Deterministic reduction: merge per-SM counters in fixed SM-ID
	// order, so float accumulation order — and hence every derived
	// metric — is identical for any worker count.
	merged := newCounters()
	var maxFinish, smSecondsTotal float64
	smFinish := make([]float64, len(sms))
	for i, sm := range sms {
		merged.merge(sm.counters)
		smFinish[i] = sm.now
		if sm.now > maxFinish {
			maxFinish = sm.now
		}
		smSecondsTotal += smSeconds[i]
	}

	scale := float64(totalBlocks) / float64(simulatedBlocks)
	res := &Result{
		Kernel:          k.Name,
		Grid:            spec.Grid,
		Block:           spec.Block,
		Cycles:          maxFinish,
		DurationSec:     e.arch.CyclesToSeconds(uint64(maxFinish)),
		Occupancy:       occ,
		Scale:           scale,
		SimulatedBlocks: simulatedBlocks,
		TotalBlocks:     totalBlocks,
		NumSMs:          e.arch.NumSMs,
		SimulatedSMs:    simSMs,
		SMFinish:        smFinish,
		Counters:        merged,
		Host: HostStats{
			Workers:     workers,
			WallSeconds: time.Since(wallStart).Seconds(),
			SMSeconds:   smSecondsTotal,
		},
	}
	if merged.SMBusyCycles > 0 {
		res.AchievedOccupancy = merged.ActiveWarpCycles /
			(merged.SMBusyCycles * float64(e.arch.MaxWarpsPerSM))
	}
	return res, nil
}

// firstSMError picks the error a parallel launch reports: the
// lowest-SM-ID failure that is not collateral damage from our own
// sibling cancellation, falling back to the first error of any kind
// (every error is a cancellation when the caller's ctx itself ended).
func firstSMError(ctx context.Context, errs []error) error {
	var collateral error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if collateral == nil {
			collateral = err
		}
		if ctx.Err() != nil || !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return collateral
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// blocksForSM lists the block indices assigned to one SM under
// round-robin rasterization (X-major, then Y, then Z).
func blocksForSM(grid Dim3, smID, numSMs int) []Dim3 {
	var out []Dim3
	gx, gy, gz := grid.X, grid.Y, grid.Z
	if gx == 0 {
		gx = 1
	}
	if gy == 0 {
		gy = 1
	}
	if gz == 0 {
		gz = 1
	}
	total := gx * gy * gz
	for lin := smID; lin < total; lin += numSMs {
		out = append(out, Dim3{X: lin % gx, Y: (lin / gx) % gy, Z: lin / (gx * gy)})
	}
	return out
}

// ipdomPC returns the reconvergence PC of the branch at instruction idx.
func (e *engine) ipdomPC(idx int) (uint64, bool) {
	return e.reconvPC[idx], e.hasReconv[idx]
}

// precomputeRegLists builds e.depRegs / e.dstRegs: per-instruction
// dependency (sources then destinations) and destination register lists,
// carved out of two flat backing slices once the totals are known.
func (e *engine) precomputeRegLists() {
	insts := e.kernel.Insts
	var depFlat, dstFlat []sass.Reg
	depEnd := make([]int, len(insts))
	dstEnd := make([]int, len(insts))
	for i := range insts {
		in := &insts[i]
		depFlat = in.SrcRegs(depFlat)
		depFlat = in.DstRegs(depFlat)
		depEnd[i] = len(depFlat)
		dstFlat = in.DstRegs(dstFlat)
		dstEnd[i] = len(dstFlat)
	}
	e.depRegs = make([][]sass.Reg, len(insts))
	e.dstRegs = make([][]sass.Reg, len(insts))
	start, dstart := 0, 0
	for i := range insts {
		e.depRegs[i] = depFlat[start:depEnd[i]:depEnd[i]]
		e.dstRegs[i] = dstFlat[dstart:dstEnd[i]:dstEnd[i]]
		start, dstart = depEnd[i], dstEnd[i]
	}
}

// newSM builds the per-SM timing state with this SM's bandwidth slices,
// its own counters, and its deterministic global-warp-ID base.
func (e *engine) newSM(id, gidBase int) *smState {
	a := &e.arch
	l2SliceBytes := a.L2Bytes / a.NumSMs
	// Keep cache geometry valid: at least one set of full associativity.
	minBytes := a.L2LineBytes * a.L2Ways
	if l2SliceBytes < minBytes {
		l2SliceBytes = minBytes
	} else {
		l2SliceBytes = l2SliceBytes / minBytes * minBytes
	}
	return &smState{
		id:       id,
		nextGid:  gidBase,
		counters: newCounters(),
		l1: memsys.NewCache(memsys.CacheConfig{
			Name: "l1tex", TotalBytes: a.L1Bytes, LineBytes: a.L1LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L1Ways,
		}),
		l2: memsys.NewCache(memsys.CacheConfig{
			Name: "lts", TotalBytes: l2SliceBytes, LineBytes: a.L2LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L2Ways,
		}),
		lsu:  memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		texu: memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		mio:  memsys.NewBandwidth(1),                        // 1 transaction/cycle
		l2bw: memsys.NewBandwidth(a.L2BWBytes / float64(a.NumSMs)),
		dram: memsys.NewBandwidth(a.DRAMBWBytes / float64(a.NumSMs)),
	}
}

// runSM simulates all blocks assigned to one SM; sm.now holds its
// finish time in cycles and sm.counters its event counts. It touches no
// engine state besides read-only launch data, device memory (disjoint
// functional writes; atomics via the shared atomic unit), and ctx, so
// SMs may run concurrently.
func (e *engine) runSM(ctx context.Context, sm *smState, blockIdxs []Dim3) error {
	resident := e.occ.BlocksPerSM
	if resident > len(blockIdxs) {
		resident = len(blockIdxs)
	}
	// All mutable warp/block state for this SM lives in one arena sized
	// for the resident-block window; slots recycle as CTAs retire. The
	// dense stall/opcode counters are folded into the map-shaped Counters
	// once at the end.
	sm.arena = newLaunchArena(e.kernel, e.block, resident)
	sm.pcStalls = make([][NumStalls]float64, len(e.kernel.Insts)+1)
	sm.opcodeDyn = make([]uint64, sass.NumOpcodes)
	for i := 0; i < resident; i++ {
		e.launchBlock(sm, blockIdxs[i])
	}
	sm.pending = append(sm.pending, blockIdxs[resident:]...)

	numSched := e.arch.NumSchedulers
	if numSched < 1 || numSched > len(sm.lastPick) {
		numSched = 4
	}

	// prevDT is the last round's time step, attributed to the warps'
	// end-of-round classifications during the next round's scan. Folding
	// the attribution pass into the classification pass visits the same
	// live warps in the same gid order with the same skips (issued and
	// newly launched warps have clsValid=false, done warps are compacted
	// out where the old pass skipped them), so every per-counter float
	// accumulation sequence is unchanged.
	prevDT := 0.0
	for iter := 0; ; iter++ {
		// Cancellation poll: cheap enough amortized over 1024 scheduler
		// rounds, frequent enough that a daemon's per-job timeout actually
		// interrupts a long simulation.
		if iter&1023 == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("sim: kernel %s aborted at cycle %.0f on SM %d: %w",
					e.kernel.Name, sm.now, sm.id, ctx.Err())
			default:
			}
		}
		// Housekeeping between scheduler rounds — never mid-iteration, so
		// snapshots of the warp list below stay valid. First compact done
		// warps out (every remaining loop skips them anyway; removal keeps
		// the scans short), then recycle freed arena slots for pending
		// CTAs. Refilling here instead of inside retireWarp is timing-
		// equivalent: new warps were only ever considered starting the
		// next round, and their readyAt is a don't-care below sm.now.
		if sm.needCompact {
			sm.needCompact = false
			live := sm.warps[:0]
			for _, w := range sm.warps {
				if !w.done {
					live = append(live, w)
				}
			}
			// Nil the tail so retired-block pointers don't pin recycled
			// slots' previous contents in scans.
			for i := len(live); i < len(sm.warps); i++ {
				sm.warps[i] = nil
			}
			sm.warps = live
		}
		for len(sm.pending) > 0 && len(sm.arena.freeSlots) > 0 {
			idx := sm.pending[0]
			sm.pending = sm.pending[1:]
			e.launchBlock(sm, idx)
		}

		// Single scan: attribute the previous round's stall cycles, check
		// completion, (re-)classify, and collect this round's scheduling
		// inputs — each scheduler's first eligible warp in gid order and
		// the earliest unblock event. Issuing an EXIT can mark warps done
		// mid-round; they are compacted out only at the top of the next
		// round, so the snapshot taken here stays valid. Classifications
		// are cached: a blocked warp cannot unblock before its recorded
		// event, so it is only re-examined then (or when its own state
		// changes).
		warps := sm.warps
		liveWarps := 0
		allDone := true
		nextEvent := math.Inf(1)
		var firstElig [8]*warp
		for _, w := range warps {
			if w.done {
				continue
			}
			if prevDT > 0 && w.clsValid {
				reason := w.cls.reason
				if w.cls.eligible {
					reason = StallNotSelected
				}
				sm.addStall(w.cls.pc, reason, prevDT)
			}
			allDone = false
			liveWarps++
			if !w.clsValid || w.cls.eligible || w.cls.event <= sm.now {
				w.cls = e.classify(sm, w)
				w.clsValid = true
			}
			if w.cls.eligible {
				if s := w.gid % numSched; firstElig[s] == nil {
					firstElig[s] = w
				}
			}
			if w.cls.event < nextEvent {
				nextEvent = w.cls.event
			}
		}
		if allDone {
			break
		}

		// Scheduling: each scheduler issues at most one eligible warp,
		// greedy-then-oldest. Issuing never flips another warp's cached
		// eligibility (barrier releases and retires only clear clsValid),
		// so the candidates collected above are exact.
		issued := 0
		for sched := 0; sched < numSched; sched++ {
			pick := firstElig[sched]
			if last := sm.lastPick[sched]; last != nil && !last.done && last.cls.eligible {
				pick = last
			}
			if pick == nil {
				continue
			}
			sm.lastPick[sched] = pick
			pc := pick.cls.pc
			if err := e.issue(sm, pick); err != nil {
				return err
			}
			sm.addStall(pc, StallSelected, 1)
			pick.cls.eligible = false
			pick.cls.reason = StallSelected
			pick.clsValid = false
			issued++
		}

		// Advance time. With no issue this round, nothing changed since
		// the scan, so the collected nextEvent is still the earliest
		// possible unblock.
		dt := 1.0
		if issued == 0 {
			next := nextEvent
			if math.IsInf(next, 1) {
				return fmt.Errorf("sim: deadlock on SM %d at cycle %.0f (kernel %s): all %d warps blocked",
					sm.id, sm.now, e.kernel.Name, liveWarps)
			}
			if next <= sm.now {
				next = sm.now + 1
			}
			dt = next - sm.now
		}
		sm.counters.ActiveWarpCycles += float64(liveWarps) * dt
		prevDT = dt
		sm.now += dt
		if sm.now > e.cfg.MaxCycles {
			return fmt.Errorf("sim: kernel %s exceeded %g cycles on SM %d", e.kernel.Name, e.cfg.MaxCycles, sm.id)
		}
	}
	sm.foldDense()
	sm.counters.SMBusyCycles = sm.now
	return nil
}
