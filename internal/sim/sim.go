package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/memsys"
	"gpuscout/internal/sass"
)

// siteLaunch is the fault-injection site covering the simulated launch.
var siteLaunch = faultinject.Register("sim.launch")

// Config controls a simulated launch.
type Config struct {
	// SampleSMs caps how many SMs are simulated; blocks assigned to other
	// SMs are accounted for by scaling (homogeneous-workload assumption,
	// standard simulator practice). 0 means the default of 4.
	SampleSMs int
	// MaxCycles aborts runaway kernels. 0 means the default of 2e8.
	MaxCycles float64
	// Workers caps how many sampled SMs simulate concurrently. Each SM
	// owns its timing state, counters, and L2/DRAM bandwidth slice, so
	// SMs are independent up to device memory; cross-SM global atomics
	// serialize in an address-sharded atomic unit. 0 uses GOMAXPROCS;
	// 1 is the sequential reference path. Every worker count produces
	// the same Result bit for bit (fixed SM-ID merge order; see the
	// determinism note on Result).
	Workers int
}

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *sass.Kernel
	Grid   Dim3
	Block  Dim3
	// Params are the kernel's 8-byte argument slots (pointers as device
	// addresses, 32-bit scalars in the low word), written to the constant
	// bank at kasm.ParamBase.
	Params []uint64
}

// engine holds everything one simulated launch needs. During the SM
// phase the engine is shared read-only between SM goroutines; all
// mutable per-SM state (timing, counters, warp IDs) lives in smState,
// and the only cross-SM writes — global atomics — go through atomics.
type engine struct {
	ctx    context.Context
	dev    *Device
	arch   gpu.Arch
	kernel *sass.Kernel
	grid   Dim3
	block  Dim3
	cfg    Config
	occ    gpu.Occupancy

	constMem []byte
	atomics  atomicUnit

	reconvPC  []uint64
	hasReconv []bool

	// localBase is a synthetic address region where per-thread local
	// memory lives for cache-modeling purposes.
	localBase uint64
}

// paramBase mirrors kasm.ParamBase without importing it (sim is below
// kasm in the package DAG).
const paramBase = 0x160

// Launch runs the kernel on the device and returns timing, stalls and
// counters. Functional effects (buffer contents, atomics) are applied to
// the device memory.
func Launch(dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	return LaunchContext(context.Background(), dev, spec, cfg)
}

// LaunchContext is Launch with cancellation: the simulation loop polls
// ctx and aborts promptly (within a few thousand simulated cycles) when
// it is cancelled or its deadline passes, returning an error satisfying
// errors.Is(err, ctx.Err()).
func LaunchContext(ctx context.Context, dev *Device, spec LaunchSpec, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Hit(siteLaunch); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	k := spec.Kernel
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if spec.Grid.X <= 0 || spec.Grid.Y < 0 || spec.Grid.Z < 0 ||
		spec.Block.X <= 0 || spec.Block.Y < 0 || spec.Block.Z < 0 {
		return nil, fmt.Errorf("sim: empty grid/block %v/%v", spec.Grid, spec.Block)
	}
	if spec.Block.Count() > dev.Arch.MaxThreadsPerBlock {
		return nil, fmt.Errorf("sim: block of %d threads exceeds limit %d", spec.Block.Count(), dev.Arch.MaxThreadsPerBlock)
	}
	occ, err := gpu.ComputeOccupancy(dev.Arch, k.NumRegs, k.SharedBytes, spec.Block.Count())
	if err != nil {
		return nil, fmt.Errorf("sim: occupancy: %w", err)
	}
	if cfg.SampleSMs <= 0 {
		cfg.SampleSMs = 4
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2e8
	}

	cfgCFG, err := sass.BuildCFG(k)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	e := &engine{
		ctx:       ctx,
		dev:       dev,
		arch:      dev.Arch,
		kernel:    k,
		grid:      spec.Grid,
		block:     spec.Block,
		cfg:       cfg,
		occ:       occ,
		localBase: memBase + uint64(dev.Arch.DRAMBytes) + (1 << 40),
	}

	// Parameter area in constant bank 0.
	e.constMem = make([]byte, paramBase+8*len(spec.Params))
	for i, p := range spec.Params {
		putU64(e.constMem[paramBase+8*i:], p)
	}
	if k.ConstBytes > len(e.constMem) {
		grown := make([]byte, k.ConstBytes)
		copy(grown, e.constMem)
		e.constMem = grown
	}

	// Precompute per-instruction reconvergence PCs.
	e.reconvPC = make([]uint64, len(k.Insts))
	e.hasReconv = make([]bool, len(k.Insts))
	for i := range k.Insts {
		if k.Insts[i].Op == sass.OpBRA {
			pc, ok := cfgCFG.IPDomPC(i)
			e.reconvPC[i], e.hasReconv[i] = pc, ok
		}
	}

	// Distribute blocks round-robin over all NumSMs; simulate a sample.
	totalBlocks := spec.Grid.Count()
	simSMs := e.arch.NumSMs
	if simSMs > cfg.SampleSMs {
		simSMs = cfg.SampleSMs
	}
	if simSMs > totalBlocks {
		simSMs = totalBlocks
	}

	// Plan the per-SM work up front. Global warp IDs feed scheduling
	// order and local-memory addressing, so each SM gets a precomputed
	// base equal to the warps launched by the SMs before it — the exact
	// IDs a sequential pass over the SMs would assign.
	warpsPerBlock := (spec.Block.Count() + 31) / 32
	type smPlan struct {
		id      int
		blocks  []Dim3
		gidBase int
	}
	var plans []smPlan
	simulatedBlocks := 0
	for smID := 0; smID < simSMs; smID++ {
		blocks := blocksForSM(spec.Grid, smID, e.arch.NumSMs)
		if len(blocks) == 0 {
			continue
		}
		plans = append(plans, smPlan{id: smID, blocks: blocks, gidBase: simulatedBlocks * warpsPerBlock})
		simulatedBlocks += len(blocks)
	}
	if simulatedBlocks == 0 {
		return nil, fmt.Errorf("sim: no blocks simulated")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}

	sms := make([]*smState, len(plans))
	smSeconds := make([]float64, len(plans))
	wallStart := time.Now()
	if workers <= 1 {
		// Sequential reference path: same per-SM states, same merge.
		for i, p := range plans {
			sm := e.newSM(p.id, p.gidBase)
			t0 := time.Now()
			if err := e.runSM(ctx, sm, p.blocks); err != nil {
				return nil, err
			}
			smSeconds[i] = time.Since(t0).Seconds()
			sms[i] = sm
		}
	} else {
		// One goroutine per sampled SM, at most `workers` running. A
		// failing SM cancels its siblings through runCtx so the launch
		// aborts promptly instead of simulating doomed SMs to the end.
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		errs := make([]error, len(plans))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range plans {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				p := plans[i]
				sm := e.newSM(p.id, p.gidBase)
				t0 := time.Now()
				if err := e.runSM(runCtx, sm, p.blocks); err != nil {
					errs[i] = err
					cancel()
					return
				}
				smSeconds[i] = time.Since(t0).Seconds()
				sms[i] = sm
			}(i)
		}
		wg.Wait()
		if err := firstSMError(ctx, errs); err != nil {
			return nil, err
		}
	}

	// Deterministic reduction: merge per-SM counters in fixed SM-ID
	// order, so float accumulation order — and hence every derived
	// metric — is identical for any worker count.
	merged := newCounters()
	var maxFinish, smSecondsTotal float64
	smFinish := make([]float64, len(sms))
	for i, sm := range sms {
		merged.merge(sm.counters)
		smFinish[i] = sm.now
		if sm.now > maxFinish {
			maxFinish = sm.now
		}
		smSecondsTotal += smSeconds[i]
	}

	scale := float64(totalBlocks) / float64(simulatedBlocks)
	res := &Result{
		Kernel:          k.Name,
		Grid:            spec.Grid,
		Block:           spec.Block,
		Cycles:          maxFinish,
		DurationSec:     e.arch.CyclesToSeconds(uint64(maxFinish)),
		Occupancy:       occ,
		Scale:           scale,
		SimulatedBlocks: simulatedBlocks,
		TotalBlocks:     totalBlocks,
		NumSMs:          e.arch.NumSMs,
		SimulatedSMs:    simSMs,
		SMFinish:        smFinish,
		Counters:        merged,
		Host: HostStats{
			Workers:     workers,
			WallSeconds: time.Since(wallStart).Seconds(),
			SMSeconds:   smSecondsTotal,
		},
	}
	if merged.SMBusyCycles > 0 {
		res.AchievedOccupancy = merged.ActiveWarpCycles /
			(merged.SMBusyCycles * float64(e.arch.MaxWarpsPerSM))
	}
	return res, nil
}

// firstSMError picks the error a parallel launch reports: the
// lowest-SM-ID failure that is not collateral damage from our own
// sibling cancellation, falling back to the first error of any kind
// (every error is a cancellation when the caller's ctx itself ended).
func firstSMError(ctx context.Context, errs []error) error {
	var collateral error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if collateral == nil {
			collateral = err
		}
		if ctx.Err() != nil || !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return collateral
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// blocksForSM lists the block indices assigned to one SM under
// round-robin rasterization (X-major, then Y, then Z).
func blocksForSM(grid Dim3, smID, numSMs int) []Dim3 {
	var out []Dim3
	gx, gy, gz := grid.X, grid.Y, grid.Z
	if gx == 0 {
		gx = 1
	}
	if gy == 0 {
		gy = 1
	}
	if gz == 0 {
		gz = 1
	}
	total := gx * gy * gz
	for lin := smID; lin < total; lin += numSMs {
		out = append(out, Dim3{X: lin % gx, Y: (lin / gx) % gy, Z: lin / (gx * gy)})
	}
	return out
}

// ipdomPC returns the reconvergence PC of the branch at instruction idx.
func (e *engine) ipdomPC(idx int) (uint64, bool) {
	return e.reconvPC[idx], e.hasReconv[idx]
}

// newSM builds the per-SM timing state with this SM's bandwidth slices,
// its own counters, and its deterministic global-warp-ID base.
func (e *engine) newSM(id, gidBase int) *smState {
	a := &e.arch
	l2SliceBytes := a.L2Bytes / a.NumSMs
	// Keep cache geometry valid: at least one set of full associativity.
	minBytes := a.L2LineBytes * a.L2Ways
	if l2SliceBytes < minBytes {
		l2SliceBytes = minBytes
	} else {
		l2SliceBytes = l2SliceBytes / minBytes * minBytes
	}
	return &smState{
		id:       id,
		nextGid:  gidBase,
		counters: newCounters(),
		l1: memsys.NewCache(memsys.CacheConfig{
			Name: "l1tex", TotalBytes: a.L1Bytes, LineBytes: a.L1LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L1Ways,
		}),
		l2: memsys.NewCache(memsys.CacheConfig{
			Name: "lts", TotalBytes: l2SliceBytes, LineBytes: a.L2LineBytes,
			SectorBytes: a.L1SectorBytes, Ways: a.L2Ways,
		}),
		lsu:     memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		texu:    memsys.NewBandwidth(float64(a.L1SectorBytes)), // 1 sector/cycle
		mio:     memsys.NewBandwidth(1),                        // 1 transaction/cycle
		l2bw:    memsys.NewBandwidth(a.L2BWBytes / float64(a.NumSMs)),
		dram:    memsys.NewBandwidth(a.DRAMBWBytes / float64(a.NumSMs)),
		scratch: make([]sass.Reg, 0, 16),
	}
}

// runSM simulates all blocks assigned to one SM; sm.now holds its
// finish time in cycles and sm.counters its event counts. It touches no
// engine state besides read-only launch data, device memory (disjoint
// functional writes; atomics via the shared atomic unit), and ctx, so
// SMs may run concurrently.
func (e *engine) runSM(ctx context.Context, sm *smState, blockIdxs []Dim3) error {
	resident := e.occ.BlocksPerSM
	if resident > len(blockIdxs) {
		resident = len(blockIdxs)
	}
	for i := 0; i < resident; i++ {
		e.launchBlock(sm, blockIdxs[i])
	}
	sm.pending = append(sm.pending, blockIdxs[resident:]...)

	numSched := e.arch.NumSchedulers
	if numSched < 1 || numSched > len(sm.lastPick) {
		numSched = 4
	}

	for iter := 0; ; iter++ {
		// Cancellation poll: cheap enough amortized over 1024 scheduler
		// rounds, frequent enough that a daemon's per-job timeout actually
		// interrupts a long simulation.
		if iter&1023 == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("sim: kernel %s aborted at cycle %.0f on SM %d: %w",
					e.kernel.Name, sm.now, sm.id, ctx.Err())
			default:
			}
		}
		// Completion check and per-warp classification. Snapshot the warp
		// list: issuing an EXIT can retire a block and launch a pending
		// one, appending warps that are only considered next iteration.
		// Classifications are cached: a blocked warp cannot unblock before
		// its recorded event, so it is only re-examined then (or when its
		// own state changes).
		warps := sm.warps
		liveWarps := 0
		allDone := true
		for _, w := range warps {
			if w.done {
				continue
			}
			allDone = false
			liveWarps++
			if !w.clsValid || w.cls.eligible || w.cls.event <= sm.now {
				w.cls = e.classify(sm, w)
				w.clsValid = true
			}
		}
		if allDone {
			if len(sm.pending) > 0 {
				// Should be unreachable: retireWarp refills eagerly.
				idx := sm.pending[0]
				sm.pending = sm.pending[1:]
				e.launchBlock(sm, idx)
				continue
			}
			break
		}

		// Scheduling: each scheduler issues at most one eligible warp,
		// greedy-then-oldest.
		issued := 0
		for sched := 0; sched < numSched; sched++ {
			var pick *warp
			if last := sm.lastPick[sched]; last != nil && !last.done && last.cls.eligible {
				pick = last
			}
			if pick == nil {
				for _, w := range warps {
					if w.done || w.gid%numSched != sched || !w.cls.eligible {
						continue
					}
					pick = w
					break
				}
			}
			if pick == nil {
				continue
			}
			sm.lastPick[sched] = pick
			pc := pick.cls.pc
			if err := e.issue(sm, pick); err != nil {
				return err
			}
			sm.counters.addStall(pc, StallSelected, 1)
			pick.cls.eligible = false
			pick.cls.reason = StallSelected
			pick.clsValid = false
			issued++
		}

		// Advance time and attribute stall cycles.
		dt := 1.0
		if issued == 0 {
			next := math.Inf(1)
			for _, w := range warps {
				if w.done {
					continue
				}
				if t := w.cls.event; t < next {
					next = t
				}
			}
			if math.IsInf(next, 1) {
				return fmt.Errorf("sim: deadlock on SM %d at cycle %.0f (kernel %s): all %d warps blocked",
					sm.id, sm.now, e.kernel.Name, liveWarps)
			}
			if next <= sm.now {
				next = sm.now + 1
			}
			dt = next - sm.now
		}
		for _, w := range warps {
			if w.done || (!w.clsValid && w.cls.reason == StallSelected) {
				continue
			}
			if !w.clsValid {
				// Just issued this cycle; already attributed as selected.
				continue
			}
			reason := w.cls.reason
			if w.cls.eligible {
				reason = StallNotSelected
			}
			sm.counters.addStall(w.cls.pc, reason, dt)
		}
		sm.counters.ActiveWarpCycles += float64(liveWarps) * dt
		sm.now += dt
		if sm.now > e.cfg.MaxCycles {
			return fmt.Errorf("sim: kernel %s exceeded %g cycles on SM %d", e.kernel.Name, e.cfg.MaxCycles, sm.id)
		}
	}
	sm.counters.SMBusyCycles = sm.now
	return nil
}
