package sim

import (
	"gpuscout/internal/sass"
)

// initStackCap is the divergence-stack capacity carved per warp from the
// arena backing. Deeper nesting reallocates off-arena once and the grown
// buffer is then retained by the slot for the rest of the launch.
const initStackCap = 8

// launchArena owns every piece of per-SM mutable warp and block state as
// a few large flat backing slices carved into per-slot views: warp
// structs, register files, scoreboard (regReady/regSrc), local memory,
// divergence stacks, block structs and their shared-memory segments.
//
// It is allocated once per smState when the SM starts running and is
// never freed mid-launch: when a resident block retires, its slot is
// pushed onto freeSlots and the next pending CTA re-uses the same memory
// after a reset (zeroing, not reallocation). This keeps the simulator
// hot path allocation-free after launch setup — the arena
// allocate/reset/reuse discipline described in DESIGN.md.
//
// A slot covers one resident block and its warpsPerBlock warps; slot
// indices are invisible to the timing model (global warp IDs, which feed
// scheduling order and local-memory addressing, keep increasing
// monotonically across re-uses), so arena recycling is bit-identical to
// the old allocate-per-block behavior.
type launchArena struct {
	numRegs       int
	localBytes    int // per-thread local memory bytes
	sharedBytes   int
	warpsPerBlock int

	warps  []warp       // slots*warpsPerBlock structs
	blocks []blockState // one per slot

	blockWarps []*warp // slots*warpsPerBlock backing for blockState.warps

	regs     [][32]uint32 // slots*warpsPerBlock*numRegs
	regReady []float64    // same shape as regs
	regSrc   []sass.Class // same shape as regs
	localMem []byte       // slots*warpsPerBlock*32*localBytes
	shared   []byte       // slots*sharedBytes
	stacks   []divEntry   // slots*warpsPerBlock*initStackCap

	// freeSlots is the stack of block slots available for the next
	// pending CTA. Popped and pushed only by the SM that owns the arena,
	// so re-use order is deterministic.
	freeSlots []int
}

// newLaunchArena sizes an arena for `slots` simultaneously resident
// blocks of the current kernel and carves all per-warp views. Views are
// carved exactly once — resets only zero their contents.
func newLaunchArena(k *sass.Kernel, block Dim3, slots int) *launchArena {
	wpb := (block.Count() + 31) / 32
	a := &launchArena{
		numRegs:       k.NumRegs,
		localBytes:    k.LocalBytes,
		sharedBytes:   k.SharedBytes,
		warpsPerBlock: wpb,
		warps:         make([]warp, slots*wpb),
		blocks:        make([]blockState, slots),
		blockWarps:    make([]*warp, slots*wpb),
		regs:          make([][32]uint32, slots*wpb*k.NumRegs),
		regReady:      make([]float64, slots*wpb*k.NumRegs),
		regSrc:        make([]sass.Class, slots*wpb*k.NumRegs),
		stacks:        make([]divEntry, slots*wpb*initStackCap),
		freeSlots:     make([]int, 0, slots),
	}
	if k.LocalBytes > 0 {
		a.localMem = make([]byte, slots*wpb*32*k.LocalBytes)
	}
	if k.SharedBytes > 0 {
		a.shared = make([]byte, slots*k.SharedBytes)
	}
	for s := 0; s < slots; s++ {
		b := &a.blocks[s]
		b.slot = s
		if k.SharedBytes > 0 {
			b.shared = a.shared[s*k.SharedBytes : (s+1)*k.SharedBytes : (s+1)*k.SharedBytes]
		}
		for i := 0; i < wpb; i++ {
			wi := s*wpb + i
			w := &a.warps[wi]
			w.regs = a.regs[wi*k.NumRegs : (wi+1)*k.NumRegs : (wi+1)*k.NumRegs]
			w.regReady = a.regReady[wi*k.NumRegs : (wi+1)*k.NumRegs : (wi+1)*k.NumRegs]
			w.regSrc = a.regSrc[wi*k.NumRegs : (wi+1)*k.NumRegs : (wi+1)*k.NumRegs]
			if k.LocalBytes > 0 {
				lb := 32 * k.LocalBytes
				w.localMem = a.localMem[wi*lb : (wi+1)*lb : (wi+1)*lb]
			}
			// Three-index slicing caps the view so a deeper stack
			// reallocates instead of stomping the neighbor's segment.
			w.stack = a.stacks[wi*initStackCap : wi*initStackCap : (wi+1)*initStackCap]
		}
		a.freeSlots = append(a.freeSlots, s)
	}
	return a
}

// takeBlock pops a free slot and resets its block for a new CTA at idx.
// The caller launches the warps via resetWarp. Panics if no slot is free
// (the engine only refills after a block retired).
func (a *launchArena) takeBlock(idx, dim Dim3) *blockState {
	s := a.freeSlots[len(a.freeSlots)-1]
	a.freeSlots = a.freeSlots[:len(a.freeSlots)-1]
	b := &a.blocks[s]
	b.idx = idx
	b.dim = dim
	b.liveWarps = 0
	b.barArrived = 0
	b.asyncDone = 0
	b.warps = a.blockWarps[s*a.warpsPerBlock : s*a.warpsPerBlock : (s+1)*a.warpsPerBlock]
	for i := range b.shared {
		b.shared[i] = 0
	}
	return b
}

// releaseBlock returns a retired block's slot to the free stack. The
// memory is reset lazily by the next takeBlock/resetWarp.
func (a *launchArena) releaseBlock(b *blockState) {
	a.freeSlots = append(a.freeSlots, b.slot)
}

// resetWarp re-initializes warp i of block b (slot view selection) to
// the state newly allocated warps had in the pre-arena simulator: zeroed
// registers, predicates, scoreboard and local memory, empty divergence
// stack, PC 0, and the in-block active-lane mask.
func (a *launchArena) resetWarp(b *blockState, i, gid int) *warp {
	w := &a.warps[b.slot*a.warpsPerBlock+i]
	regs := w.regs
	for j := range regs {
		regs[j] = [32]uint32{}
	}
	ready := w.regReady
	for j := range ready {
		ready[j] = 0
	}
	src := w.regSrc
	for j := range src {
		src[j] = 0
	}
	for j := range w.localMem {
		w.localMem[j] = 0
	}
	w.id = i
	w.gid = gid
	w.block = b
	w.pc = 0
	w.active = 0
	w.stack = w.stack[:0]
	w.done = false
	w.preds = [sass.NumPreds][32]bool{}
	w.readyAt = 0
	w.waitReason = 0
	w.atBarrier = false
	w.lastStoreDone = 0
	w.cls = wclass{}
	w.clsValid = false
	// Activate only lanes whose linear thread id is inside the block.
	threads := b.dim.Count()
	for lane := 0; lane < 32; lane++ {
		if i*32+lane < threads {
			w.active |= 1 << uint(lane)
		}
	}
	return w
}
