package sim

import (
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// TestNestedDivergence executes a two-level nested if/else:
//
//	if (tid & 1) { if (tid & 2) r=3 else r=2 } else { if (tid & 2) r=1 else r=0 }
//
// exercising reconvergence-stack nesting.
func TestNestedDivergence(t *testing.T) {
	b := kasm.NewBuilder("_Znest", "sm_70", "n.cu")
	b.NumParams(1)
	b.Line(1)
	tid := b.TidX()
	out := b.ParamPtr(0)
	r := b.MovImm(-1)
	bit0 := b.And(kasm.VR(tid), kasm.VImm(1))
	bit1 := b.And(kasm.VR(tid), kasm.VImm(2))
	p0 := b.ISetp("NE", kasm.VR(bit0), kasm.VImm(0))
	p1 := b.ISetp("NE", kasm.VR(bit1), kasm.VImm(0))

	b.BraIf(p0, false, "odd")
	// even half:
	b.BraIf(p1, false, "even_hi")
	b.MovTo(kasm.VR(r), kasm.VImm(0))
	b.Bra("join")
	b.LabelName("even_hi")
	b.MovTo(kasm.VR(r), kasm.VImm(1))
	b.Bra("join")
	// odd half:
	b.LabelName("odd")
	b.BraIf(p1, false, "odd_hi")
	b.MovTo(kasm.VR(r), kasm.VImm(2))
	b.Bra("join")
	b.LabelName("odd_hi")
	b.MovTo(kasm.VR(r), kasm.VImm(3))
	b.LabelName("join")
	off := b.Shl(kasm.VR(tid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(addr, 0, r, 4)
	b.Exit()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.Compile(p, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(gpu.V100())
	buf := dev.MustAlloc(4 * 64)
	if _, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(64), Params: []uint64{buf.Addr},
	}, Config{}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadI32(buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	for lane, g := range got {
		want := int32(0)
		if lane&1 != 0 {
			want = 2
		}
		if lane&2 != 0 {
			want++
		}
		if g != want {
			t.Fatalf("lane %d = %d, want %d", lane, g, want)
		}
	}
}

// TestDivergentLoopTripCounts runs a loop whose trip count differs per
// lane (tid iterations), exercising loop-exit divergence: lanes leave the
// loop at different times and must reconverge after it.
func TestDivergentLoopTripCounts(t *testing.T) {
	// acc = 0; for (i = 0; i < tid; i++) acc += 2; out[tid] = acc
	b := kasm.NewBuilder("_Zdivloop", "sm_70", "dl.cu")
	b.NumParams(1)
	b.Line(1)
	tid := b.TidX()
	out := b.ParamPtr(0)
	acc := b.MovImm(0)
	i := b.MovImm(0)
	// Guard the whole loop for tid == 0.
	p := b.ISetp("GE", kasm.VR(i), kasm.VR(tid))
	b.BraIf(p, false, "done")
	b.LabelName("loop")
	b.IAddTo(kasm.VR(acc), kasm.VR(acc), kasm.VImm(2))
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p2 := b.ISetp("LT", kasm.VR(i), kasm.VR(tid))
	b.BraIf(p2, false, "loop")
	b.LabelName("done")
	off := b.Shl(kasm.VR(tid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(addr, 0, acc, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.Compile(prog, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(gpu.V100())
	buf := dev.MustAlloc(4 * 96)
	if _, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(96), Params: []uint64{buf.Addr},
	}, Config{}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadI32(buf, 96)
	if err != nil {
		t.Fatal(err)
	}
	for lane, g := range got {
		if g != int32(2*lane) {
			t.Fatalf("lane %d = %d, want %d", lane, g, 2*lane)
		}
	}
}

// TestGuardedSpill compiles a kernel whose guarded (predicated) writes
// target values that get spilled: the spill stores must inherit the
// guard, or inactive lanes would corrupt the slot.
func TestGuardedSpill(t *testing.T) {
	const n = 20
	b := kasm.NewBuilder("_Zgspill", "sm_70", "gs.cu")
	b.NumParams(2)
	b.Line(1)
	tid := b.TidX()
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	base := b.IMul(kasm.VR(tid), kasm.VImm(n*4))
	addr := b.IMadWide(kasm.VR(base), kasm.VImm(1), in)
	vals := make([]kasm.VReg, n)
	for j := 0; j < n; j++ {
		vals[j] = b.Ldg(addr, int64(4*j), 4, false)
	}
	// Odd lanes double every value; even lanes keep the loads.
	bit := b.And(kasm.VR(tid), kasm.VImm(1))
	p := b.ISetp("NE", kasm.VR(bit), kasm.VImm(0))
	for j := 0; j < n; j++ {
		b.WithPred(p, false, func() {
			b.IAddTo(kasm.VR(vals[j]), kasm.VR(vals[j]), kasm.VR(vals[j]))
		})
	}
	b.FreePred(p)
	sum := b.IAdd(kasm.VR(vals[0]), kasm.VR(vals[1]))
	for j := 2; j < n; j++ {
		b.IAddTo(kasm.VR(sum), kasm.VR(sum), kasm.VR(vals[j]))
	}
	oOff := b.Shl(kasm.VR(tid), 2)
	oAddr := b.IMadWide(kasm.VR(oOff), kasm.VImm(1), out)
	b.Stg(oAddr, 0, sum, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := codegen.Compile(prog, codegen.Options{MaxRegs: 14})
	if err != nil {
		t.Fatal(err)
	}
	if ops := k.CountOpcodes(); ops[sass.OpSTL] == 0 {
		t.Fatal("budget did not force spilling; test is vacuous")
	}

	dev := NewDevice(gpu.V100())
	inBuf := dev.MustAlloc(4 * 64 * n)
	outBuf := dev.MustAlloc(4 * 64)
	data := make([]int32, 64*n)
	for i := range data {
		data[i] = int32(i%9 + 1)
	}
	if err := dev.WriteI32(inBuf, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(dev, LaunchSpec{
		Kernel: k, Grid: D1(1), Block: D1(64),
		Params: []uint64{inBuf.Addr, outBuf.Addr},
	}, Config{}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadI32(outBuf, 64)
	if err != nil {
		t.Fatal(err)
	}
	for lane, g := range got {
		var want int32
		for j := 0; j < n; j++ {
			v := data[lane*n+j]
			if lane&1 != 0 {
				v *= 2
			}
			want += v
		}
		if g != want {
			t.Fatalf("lane %d = %d, want %d", lane, g, want)
		}
	}
}
