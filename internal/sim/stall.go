// Package sim is the execution-driven GPU simulator standing in for the
// V100 in the paper's evaluation. It executes sass.Kernel programs
// functionally (32-lane warps, divergence stack, real addresses against
// device memory) under a Volta-like timing model (warp schedulers,
// scoreboard dependencies, LG/MIO/TEX issue queues, sectored L1, banked
// shared memory, L2, DRAM bandwidth), producing the two observable
// surfaces GPUscout consumes: per-PC warp-stall distributions (the CUPTI
// PC Sampling substitute) and kernel-wide hardware counters (the ncu
// metric substitute).
//
// Sampled SMs simulate independently — each owns its timing state,
// counters, and bandwidth slices — and may run concurrently
// (Config.Workers); cross-SM global atomics serialize in an
// address-sharded atomic unit, and per-SM results merge in fixed SM-ID
// order so the Result is bit-identical for every worker count.
package sim

// Stall classifies why a warp could not issue (or that it did). The set
// mirrors the CUPTI/Nsight stall taxonomy the paper discusses; the string
// forms match the smsp__pcsamp_warp_stall_* suffixes.
type Stall uint8

const (
	// StallSelected counts issue cycles (the warp made progress).
	StallSelected Stall = iota
	// StallLongScoreboard waits on a scoreboard dependency for an L1TEX
	// operation: global, local or texture memory data (§4.1, §4.2, §4.6).
	StallLongScoreboard
	// StallShortScoreboard waits on MIO data, typically shared memory
	// (§4.3, §5.3).
	StallShortScoreboard
	// StallWait waits on a fixed-latency ALU dependency.
	StallWait
	// StallLGThrottle waits for room in the L1 instruction queue for
	// local/global operations — too-frequent LG traffic (§3.2, §4.2, §4.4).
	StallLGThrottle
	// StallMIOThrottle waits for room in the MIO instruction queue
	// (shared memory ops; §4.4, §5.3).
	StallMIOThrottle
	// StallTexThrottle waits for room in the TEX instruction queue (§4.6).
	StallTexThrottle
	// StallMathPipeThrottle waits for a busy math pipe (FP64/SFU).
	StallMathPipeThrottle
	// StallBarrier waits at a CTA barrier for sibling warps.
	StallBarrier
	// StallBranchResolving waits for a branch target to resolve.
	StallBranchResolving
	// StallNotSelected was eligible but another warp was issued.
	StallNotSelected
	// StallDrain waits for outstanding stores to drain at EXIT.
	StallDrain

	NumStalls
)

var stallNames = [...]string{
	StallSelected:         "selected",
	StallLongScoreboard:   "long_scoreboard",
	StallShortScoreboard:  "short_scoreboard",
	StallWait:             "wait",
	StallLGThrottle:       "lg_throttle",
	StallMIOThrottle:      "mio_throttle",
	StallTexThrottle:      "tex_throttle",
	StallMathPipeThrottle: "math_pipe_throttle",
	StallBarrier:          "barrier",
	StallBranchResolving:  "branch_resolving",
	StallNotSelected:      "not_selected",
	StallDrain:            "drain",
}

func (s Stall) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return "unknown"
}

// Explain returns the verbose interpretation GPUscout prints alongside a
// stall reason (the paper's "more verbose explanations of the observed
// stalls", §3).
func (s Stall) Explain() string {
	switch s {
	case StallSelected:
		return "warp was selected by the scheduler and issued an instruction"
	case StallLongScoreboard:
		return "warp stalled waiting on a scoreboard dependency for L1TEX (global, local or texture memory) data; reduce memory latency exposure by vectorizing loads, improving locality, or increasing occupancy"
	case StallShortScoreboard:
		return "warp stalled waiting on MIO data, typically a shared-memory load; reduce shared-memory bank conflicts or re-order computation to hide the latency"
	case StallWait:
		return "warp stalled on a fixed-latency dependency between back-to-back arithmetic instructions"
	case StallLGThrottle:
		return "warp stalled waiting for the L1 instruction queue for local and global (LG) memory operations to be not full; typically caused by executing local or global memory operations too frequently — register spills amplify this"
	case StallMIOThrottle:
		return "warp stalled waiting for the MIO (memory input/output) instruction queue to be not full; high utilization of the MIO pipeline from shared-memory instructions causes this"
	case StallTexThrottle:
		return "warp stalled waiting for the TEX instruction queue to be not full; too many outstanding texture fetches fill the TEX pipeline"
	case StallMathPipeThrottle:
		return "warp stalled waiting for a heavily utilized math pipeline (FP64/SFU) to become available"
	case StallBarrier:
		return "warp stalled at a CTA barrier waiting for sibling warps to arrive; consider balancing work between warps of a block"
	case StallBranchResolving:
		return "warp stalled waiting for a branch target to be computed and the program counter to be updated"
	case StallNotSelected:
		return "warp was eligible but the scheduler selected a different warp; abundant eligible warps — not a bottleneck"
	case StallDrain:
		return "warp stalled at EXIT waiting for outstanding memory writes to drain"
	}
	return "unknown stall reason"
}

// StallByName resolves a stall-reason name.
func StallByName(name string) (Stall, bool) {
	for s := Stall(0); s < NumStalls; s++ {
		if stallNames[s] == name {
			return s, true
		}
	}
	return 0, false
}
