package sim

import (
	"testing"

	"gpuscout/internal/gpu"
)

// TestQueueRingZeroAlloc locks in the allocation-free behavior of the
// queueRing hot path: once the scratch selection buffer has grown to the
// queue's size, admit and inflight must not touch the heap again. This
// guards the fix for the old admit, which copied the queue into a fresh
// slice and insertion-sorted it on every MSHR-full event.
func TestQueueRingZeroAlloc(t *testing.T) {
	q := &queueRing{}
	fill := func() {
		q.times = q.times[:0]
		for i := 0; i < 64; i++ {
			q.push(float64(100 + i))
		}
	}

	// Warm-up: grow times and scratch to steady-state capacity.
	fill()
	q.admit(0, 32)

	allocs := testing.AllocsPerRun(100, func() {
		fill()
		if got := q.inflight(0); got != 64 {
			t.Fatalf("inflight = %d, want 64", got)
		}
		// Queue full beyond capacity 32: admission waits for the 33rd
		// soonest completion, t=132.
		if got := q.admit(0, 32); got != 132 {
			t.Fatalf("admit = %v, want 132", got)
		}
	})
	if allocs != 0 {
		t.Errorf("warm admit/inflight allocated %v times per run, want 0", allocs)
	}
}

// TestLaunchAllocsBounded asserts that a full Launch of a small workload
// stays under a fixed allocation budget. The remaining allocations are
// launch setup — per-SM arena backing slices, the engine's precomputed
// tables, counter maps materialized once at the end of a run — not
// per-cycle or per-instruction churn; the budget is far below the tens of
// thousands of allocations the pre-arena simulator performed for the same
// workload, and holding it constant keeps per-warp state and counters from
// quietly migrating back onto the hot path.
func TestLaunchAllocsBounded(t *testing.T) {
	k := vecAddKernel(t)
	dev := NewDevice(gpu.V100())
	const n = 1024
	a := dev.MustAlloc(4 * n)
	b := dev.MustAlloc(4 * n)
	c := dev.MustAlloc(4 * n)
	spec := LaunchSpec{
		Kernel: k,
		Grid:   D1(n / 128),
		Block:  D1(128),
		Params: []uint64{a.Addr, b.Addr, c.Addr, n},
	}
	cfg := Config{SampleSMs: 1, Workers: 1}
	launch := func() {
		if _, err := Launch(dev, spec, cfg); err != nil {
			t.Fatalf("Launch: %v", err)
		}
	}

	launch() // warm-up: device memory pages and pool state settle

	allocs := testing.AllocsPerRun(5, launch)
	// Measured ~165 allocs per warm Launch for this workload; the bound
	// leaves slack for toolchain variation while still catching any
	// reintroduction of per-warp or per-instruction heap traffic.
	const maxAllocs = 300
	if allocs > maxAllocs {
		t.Errorf("warm Launch allocated %v times per run, want <= %d", allocs, maxAllocs)
	}
	t.Logf("warm Launch: %.0f allocs per run", allocs)
}
