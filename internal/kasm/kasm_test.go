package kasm

import (
	"strings"
	"testing"

	"gpuscout/internal/sass"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("_Zk", "sm_70", "k.cu")
	b.NumParams(2)
	b.SetSource([]string{"line one", "line two"})
	b.Line(1)
	tid := b.TidX()
	in := b.ParamPtr(0)
	v := b.Ldg(in, 8, 4, false)
	b.Line(2)
	w := b.FFma(VR(v), VR(v), VR(tid))
	out := b.ParamPtr(1)
	b.Stg(out, 0, w, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.NumParams != 2 || p.ConstBytes() != ParamBase+16 {
		t.Errorf("params: %d, const bytes %d", p.NumParams, p.ConstBytes())
	}
	if p.WidthOf(in) != 2 || p.WidthOf(v) != 1 {
		t.Error("widths wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Lines attributed.
	if p.Insts[0].Line != 1 {
		t.Errorf("first inst line = %d", p.Insts[0].Line)
	}
	if _, err := b.Build(); err == nil {
		t.Error("second Build call accepted")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("Ldg with non-pair base", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		r := b.MovImm(0)
		b.Ldg(r, 0, 4, false)
	})
	expectPanic("Ldg bad width", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		p := b.ParamPtr(0)
		b.Ldg(p, 0, 12, false)
	})
	expectPanic("duplicate label", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		b.LabelName("l")
		b.LabelName("l")
	})
	expectPanic("predicate pool exhaustion", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		for i := 0; i < 10; i++ {
			b.AllocPred()
		}
	})
	expectPanic("LdgTo width mismatch", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		p := b.ParamPtr(0)
		d := b.MovImm(0)
		b.LdgTo(d, p, 0, 16, false)
	})
	expectPanic("DAdd on scalars", func() {
		b := NewBuilder("x", "sm_70", "x.cu")
		r := b.MovImm(0)
		b.DAdd(VR(r), VR(r))
	})
}

func TestValidateCatches(t *testing.T) {
	// Undefined label.
	b := NewBuilder("x", "sm_70", "x.cu")
	b.Bra("nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label not caught: %v", err)
	}
	// Missing EXIT.
	b2 := NewBuilder("y", "sm_70", "y.cu")
	b2.MovImm(1)
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "EXIT") {
		t.Errorf("missing EXIT not caught: %v", err)
	}
	// Empty program.
	b3 := NewBuilder("z", "sm_70", "z.cu")
	if _, err := b3.Build(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestWithPredGuardsEverything(t *testing.T) {
	b := NewBuilder("x", "sm_70", "x.cu")
	pr := b.AllocPred()
	v := b.MovImm(0)
	n0 := len(programOf(b).Insts)
	b.WithPred(pr, true, func() {
		b.MovTo(VR(v), VImm(1))
		b.IAddTo(VR(v), VR(v), VImm(2))
	})
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := n0; i < n0+2; i++ {
		if p.Insts[i].Pred != pr || !p.Insts[i].PredNeg {
			t.Errorf("inst %d not guarded: %+v", i, p.Insts[i])
		}
	}
	if p.Insts[len(p.Insts)-1].Pred != sass.PT {
		t.Error("EXIT unexpectedly guarded")
	}
}

// programOf peeks at the builder's program for test assertions.
func programOf(b *Builder) *Program { return b.p }

func TestParamConstLayout(t *testing.T) {
	if o := ParamConst(0, 0); o.Imm != ParamBase {
		t.Errorf("param 0 at %#x", o.Imm)
	}
	if o := ParamConst(2, 1); o.Imm != ParamBase+20 {
		t.Errorf("param 2 high word at %#x", o.Imm)
	}
}

func TestAllocShared(t *testing.T) {
	b := NewBuilder("x", "sm_70", "x.cu")
	o1 := b.AllocShared(100)
	o2 := b.AllocShared(16)
	if o1 != 0 || o2 != 112 { // 100 rounded to 112
		t.Errorf("shared offsets %d, %d", o1, o2)
	}
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.ShmemBytes != 128 {
		t.Errorf("ShmemBytes = %d", p.ShmemBytes)
	}
}
