// Package kasm is the kernel assembler: the code-generation front half of
// our nvcc stand-in. Workload kernels (internal/workloads) are written
// against its Builder using virtual registers, labels and source-line
// attachment; internal/codegen then allocates physical registers (spilling
// to local memory under pressure, exactly like -maxrregcount) and produces
// a finished sass.Kernel.
//
// The IR is architecture-neutral: a Program carries no target-specific
// instruction selection. Per-architecture lowering (e.g. fusing LDG+STS
// pairs into cp.async-style LDGSTS on sm_80) happens inside
// internal/codegen, driven by the gpu.Arch descriptor passed in
// codegen.Options — see DESIGN.md §12.
package kasm

import (
	"fmt"

	"gpuscout/internal/sass"
)

// VReg identifies a virtual register. Virtual registers are typed by
// width: 1 word (32-bit int/float), 2 words (64-bit address/double), or
// 4 words (128-bit vector). Wide vregs are allocated to aligned,
// contiguous physical register groups.
type VReg int32

// NoVReg is the zero-value "no register" sentinel.
const NoVReg VReg = -1

// VOperandKind discriminates VOperand.
type VOperandKind uint8

const (
	VOpdNone VOperandKind = iota
	VOpdReg               // virtual register (with optional word element)
	VOpdZero              // RZ
	VOpdImm
	VOpdMem   // [vreg-pair + offset]; base NoVReg means [RZ+offset]
	VOpdConst // c[bank][off]
	VOpdPred
	VOpdSpecial
)

// VOperand is an operand referring to virtual registers.
type VOperand struct {
	Kind    VOperandKind
	V       VReg // VOpdReg / VOpdMem base
	Elem    int  // word offset into a wide vreg (VOpdReg)
	Neg     bool // fp negation (VOpdReg) or predicate negation (VOpdPred)
	Imm     int64
	Bank    int
	Pred    sass.Pred
	Special sass.SpecialReg
}

// VR makes a virtual-register operand.
func VR(v VReg) VOperand { return VOperand{Kind: VOpdReg, V: v} }

// VRElem refers to word e of a wide virtual register.
func VRElem(v VReg, e int) VOperand { return VOperand{Kind: VOpdReg, V: v, Elem: e} }

// VZero is the RZ operand.
func VZero() VOperand { return VOperand{Kind: VOpdZero} }

// VImm makes an immediate operand.
func VImm(v int64) VOperand { return VOperand{Kind: VOpdImm, Imm: v} }

// VMem makes a [base+off] operand; base must be a 2-word vreg, or NoVReg
// for absolute (thread-local) addressing.
func VMem(base VReg, off int64) VOperand { return VOperand{Kind: VOpdMem, V: base, Imm: off} }

// VConst makes a c[bank][off] operand.
func VConst(bank int, off int64) VOperand { return VOperand{Kind: VOpdConst, Bank: bank, Imm: off} }

// VPred makes a predicate operand.
func VPred(p sass.Pred, neg bool) VOperand { return VOperand{Kind: VOpdPred, Pred: p, Neg: neg} }

// VSR makes a special-register operand.
func VSR(s sass.SpecialReg) VOperand { return VOperand{Kind: VOpdSpecial, Special: s} }

// VInst is one instruction over virtual registers.
type VInst struct {
	Op      sass.Opcode
	Mods    []string
	Pred    sass.Pred // guard; PT = unconditional
	PredNeg bool
	Dst     []VOperand
	Src     []VOperand
	Line    int
	Label   string // branch target label (OpBRA)
}

// Program is a finished virtual-register kernel, ready for codegen.
type Program struct {
	Name       string
	Arch       string
	SourceFile string
	Source     []string
	Insts      []VInst
	Labels     map[string]int // label -> instruction index
	NumVRegs   int
	Widths     []uint8 // width (words) per vreg
	ShmemBytes int     // static shared memory per block
	NumParams  int     // 8-byte parameter slots
}

// ParamBase is the constant-bank offset of the kernel parameter area,
// matching the layout real CUDA drivers use on Volta.
const ParamBase = 0x160

// ConstBytes returns the size of the kernel's constant parameter area.
func (p *Program) ConstBytes() int { return ParamBase + 8*p.NumParams }

// WidthOf returns the word width of a vreg.
func (p *Program) WidthOf(v VReg) int {
	if v == NoVReg {
		return 0
	}
	return int(p.Widths[v])
}

// Validate checks structural invariants of the program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("kasm: program has no name")
	}
	if len(p.Insts) == 0 {
		return fmt.Errorf("kasm: program %s is empty", p.Name)
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op == sass.OpBRA {
			if _, ok := p.Labels[in.Label]; !ok {
				return fmt.Errorf("kasm: %s inst %d branches to undefined label %q", p.Name, i, in.Label)
			}
		}
		check := func(o VOperand, isDst bool) error {
			if (o.Kind != VOpdReg && o.Kind != VOpdMem) || o.V == NoVReg {
				return nil
			}
			if int(o.V) >= p.NumVRegs {
				return fmt.Errorf("kasm: %s inst %d references undefined vreg %d", p.Name, i, o.V)
			}
			if o.Kind == VOpdReg && o.Elem >= int(p.Widths[o.V]) {
				return fmt.Errorf("kasm: %s inst %d elem %d out of range for v%d (width %d)",
					p.Name, i, o.Elem, o.V, p.Widths[o.V])
			}
			if o.Kind == VOpdMem {
				// Global-space addresses are 64-bit pairs; shared and
				// local addresses are 32-bit segment offsets. LDGSTS is the
				// one dual-space instruction: its destination is a shared
				// address, its source a global address.
				wantPair := in.Op == sass.OpLDG || in.Op == sass.OpSTG ||
					in.Op == sass.OpATOM || in.Op == sass.OpRED ||
					(in.Op == sass.OpLDGSTS && !isDst)
				if wantPair && p.Widths[o.V] != 2 {
					return fmt.Errorf("kasm: %s inst %d global memory base v%d is not a 64-bit pair", p.Name, i, o.V)
				}
				if !wantPair && p.Widths[o.V] != 1 {
					return fmt.Errorf("kasm: %s inst %d shared/local memory base v%d must be 32-bit", p.Name, i, o.V)
				}
			}
			return nil
		}
		for _, o := range in.Dst {
			if err := check(o, true); err != nil {
				return err
			}
		}
		for _, o := range in.Src {
			if err := check(o, false); err != nil {
				return err
			}
		}
	}
	if p.Insts[len(p.Insts)-1].Op != sass.OpEXIT {
		return fmt.Errorf("kasm: program %s does not end with EXIT", p.Name)
	}
	return nil
}
