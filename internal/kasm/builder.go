package kasm

import (
	"fmt"
	"math"

	"gpuscout/internal/sass"
)

// Builder incrementally constructs a Program. Emit methods mirror the
// instruction mix nvcc produces for the paper's kernels; each records the
// current source line (set with Line) so the generated SASS carries
// -g --generate-line-info-style attribution.
//
// Builder methods panic on structural misuse (wrong operand widths,
// predicate pool exhaustion): those are programming errors in kernel
// construction, not runtime conditions.
type Builder struct {
	p        *Program
	line     int
	predUsed [sass.NumPreds]bool
	built    bool
}

// NewBuilder starts a kernel named name for the given architecture tag,
// attributing code to the given source file.
func NewBuilder(name, arch, sourceFile string) *Builder {
	return &Builder{p: &Program{
		Name:       name,
		Arch:       arch,
		SourceFile: sourceFile,
		Labels:     map[string]int{},
	}}
}

// SetSource embeds the kernel's (pseudo-CUDA) source text, 1-based lines.
func (b *Builder) SetSource(lines []string) { b.p.Source = lines }

// Line sets the source line attributed to subsequently emitted
// instructions.
func (b *Builder) Line(n int) *Builder {
	b.line = n
	return b
}

// NumParams declares how many 8-byte parameter slots the kernel takes.
func (b *Builder) NumParams(n int) { b.p.NumParams = n }

// NewVec4 creates an uninitialized 128-bit (4-word) virtual register, for
// guarded vector loads whose destination must pre-exist.
func (b *Builder) NewVec4() VReg { return b.newReg(4) }

// AllocShared reserves bytes of static shared memory and returns its byte
// offset within the block's shared segment.
func (b *Builder) AllocShared(bytes int) int64 {
	off := int64(b.p.ShmemBytes)
	b.p.ShmemBytes += (bytes + 15) / 16 * 16
	return off
}

func (b *Builder) newReg(width int) VReg {
	v := VReg(b.p.NumVRegs)
	b.p.NumVRegs++
	b.p.Widths = append(b.p.Widths, uint8(width))
	return v
}

func (b *Builder) emit(in VInst) {
	if in.Pred == 0 && !in.PredNeg {
		// Zero value means "unset"; default to unconditional. Guarded
		// emission goes through emitPred.
		in.Pred = sass.PT
	}
	in.Line = b.line
	b.p.Insts = append(b.p.Insts, in)
}

func (b *Builder) emitPred(p sass.Pred, neg bool, in VInst) {
	in.Pred, in.PredNeg = p, neg
	in.Line = b.line
	b.p.Insts = append(b.p.Insts, in)
}

func (b *Builder) widthOf(o VOperand) int {
	if o.Kind != VOpdReg || o.V == NoVReg {
		return 1
	}
	return int(b.p.Widths[o.V])
}

func (b *Builder) wantPair(o VOperand, what string) {
	if o.Kind == VOpdReg && b.widthOf(o) < 2 {
		panic(fmt.Sprintf("kasm: %s requires a 64-bit pair operand, got width %d", what, b.widthOf(o)))
	}
}

// --- special registers and parameters ---

// Special reads a special register (thread/block indices and dimensions).
func (b *Builder) Special(sr sass.SpecialReg) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpS2R, Dst: []VOperand{VR(d)}, Src: []VOperand{VSR(sr)}})
	return d
}

// TidX reads threadIdx.x.
func (b *Builder) TidX() VReg { return b.Special(sass.SRTidX) }

// TidY reads threadIdx.y.
func (b *Builder) TidY() VReg { return b.Special(sass.SRTidY) }

// CtaidX reads blockIdx.x.
func (b *Builder) CtaidX() VReg { return b.Special(sass.SRCtaidX) }

// CtaidY reads blockIdx.y.
func (b *Builder) CtaidY() VReg { return b.Special(sass.SRCtaidY) }

// NTidX reads blockDim.x.
func (b *Builder) NTidX() VReg { return b.Special(sass.SRNTidX) }

// NTidY reads blockDim.y.
func (b *Builder) NTidY() VReg { return b.Special(sass.SRNTidY) }

// NCtaidX reads gridDim.x.
func (b *Builder) NCtaidX() VReg { return b.Special(sass.SRNCtaidX) }

// ParamConst returns the constant-bank operand of 32-bit word w of
// parameter slot i (w=0 low word, w=1 high word).
func ParamConst(i, w int) VOperand {
	return VConst(0, int64(ParamBase+8*i+4*w))
}

// Param32 loads a 32-bit parameter (int/float) into a register.
func (b *Builder) Param32(i int) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VR(d)}, Src: []VOperand{ParamConst(i, 0)}})
	return d
}

// ParamPtr loads a 64-bit pointer parameter into a register pair.
func (b *Builder) ParamPtr(i int) VReg {
	d := b.newReg(2)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 0)}, Src: []VOperand{ParamConst(i, 0)}})
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 1)}, Src: []VOperand{ParamConst(i, 1)}})
	return d
}

// ParamF64 loads a 64-bit double parameter into a register pair.
func (b *Builder) ParamF64(i int) VReg { return b.ParamPtr(i) }

// --- moves and immediates ---

// MovImm materializes a 32-bit immediate.
func (b *Builder) MovImm(v int64) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VR(d)}, Src: []VOperand{VImm(v)}})
	return d
}

// MovImmF32 materializes a float32 immediate.
func (b *Builder) MovImmF32(f float32) VReg {
	return b.MovImm(int64(math.Float32bits(f)))
}

// MovImmF64 materializes a float64 immediate into a pair.
func (b *Builder) MovImmF64(f float64) VReg {
	bits := math.Float64bits(f)
	d := b.newReg(2)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 0)}, Src: []VOperand{VImm(int64(uint32(bits)))}})
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 1)}, Src: []VOperand{VImm(int64(bits >> 32))}})
	return d
}

// Mov copies src into a fresh register.
func (b *Builder) Mov(src VOperand) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VR(d)}, Src: []VOperand{src}})
	return d
}

// MovTo copies src into an existing destination.
func (b *Builder) MovTo(dst, src VOperand) {
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{dst}, Src: []VOperand{src}})
}

// MovPair copies a 64-bit pair.
func (b *Builder) MovPair(src VReg) VReg {
	b.wantPair(VR(src), "MovPair")
	d := b.newReg(2)
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 0)}, Src: []VOperand{VRElem(src, 0)}})
	b.emit(VInst{Op: sass.OpMOV, Dst: []VOperand{VRElem(d, 1)}, Src: []VOperand{VRElem(src, 1)}})
	return d
}

// --- integer arithmetic ---

func (b *Builder) alu3(op sass.Opcode, mods []string, a, c, d VOperand) VReg {
	dst := b.newReg(1)
	b.emit(VInst{Op: op, Mods: mods, Dst: []VOperand{VR(dst)}, Src: []VOperand{a, c, d}})
	return dst
}

// IAdd computes a + c.
func (b *Builder) IAdd(a, c VOperand) VReg {
	return b.alu3(sass.OpIADD3, nil, a, c, VZero())
}

// IAddTo computes dst = a + c in place.
func (b *Builder) IAddTo(dst VOperand, a, c VOperand) {
	b.emit(VInst{Op: sass.OpIADD3, Dst: []VOperand{dst}, Src: []VOperand{a, c, VZero()}})
}

// IMul computes a * c (32-bit).
func (b *Builder) IMul(a, c VOperand) VReg {
	return b.alu3(sass.OpIMAD, nil, a, c, VZero())
}

// IMad computes a*c + d (32-bit).
func (b *Builder) IMad(a, c, d VOperand) VReg {
	return b.alu3(sass.OpIMAD, nil, a, c, d)
}

// IMadTo computes dst = a*c + d in place (32-bit).
func (b *Builder) IMadTo(dst VOperand, a, c, d VOperand) {
	b.emit(VInst{Op: sass.OpIMAD, Dst: []VOperand{dst}, Src: []VOperand{a, c, d}})
}

// IMadWide computes base64 + a*c as a 64-bit address pair: the canonical
// SASS address calculation (IMAD.WIDE).
func (b *Builder) IMadWide(a, c VOperand, base64 VReg) VReg {
	b.wantPair(VR(base64), "IMadWide")
	d := b.newReg(2)
	b.emit(VInst{Op: sass.OpIMAD, Mods: []string{"WIDE"},
		Dst: []VOperand{VR(d)}, Src: []VOperand{a, c, VR(base64)}})
	return d
}

// Shl computes a << n.
func (b *Builder) Shl(a VOperand, n int64) VReg {
	return b.alu3(sass.OpSHF, []string{"L"}, a, VImm(n), VZero())
}

// Shr computes a >> n (logical).
func (b *Builder) Shr(a VOperand, n int64) VReg {
	return b.alu3(sass.OpSHF, []string{"R"}, a, VImm(n), VZero())
}

// And computes a & c.
func (b *Builder) And(a, c VOperand) VReg {
	return b.alu3(sass.OpLOP3, []string{"AND"}, a, c, VZero())
}

// IMin computes min(a, c) (signed).
func (b *Builder) IMin(a, c VOperand) VReg {
	return b.alu3(sass.OpIMNMX, []string{"MIN"}, a, c, VZero())
}

// IMax computes max(a, c) (signed).
func (b *Builder) IMax(a, c VOperand) VReg {
	return b.alu3(sass.OpIMNMX, []string{"MAX"}, a, c, VZero())
}

// WithPred guards every instruction emitted inside f with predicate p
// (negated when neg). Used for predicated-execution sequences like the
// halo handling of shared-memory stencils.
func (b *Builder) WithPred(p sass.Pred, neg bool, f func()) {
	start := len(b.p.Insts)
	f()
	for i := start; i < len(b.p.Insts); i++ {
		b.p.Insts[i].Pred = p
		b.p.Insts[i].PredNeg = neg
	}
}

// Raw emits an arbitrary single-destination ALU-style instruction into a
// fresh 32-bit register — the escape hatch for opcodes without a
// dedicated builder method (IABS, POPC, FMNMX, LOP3 variants, ...).
func (b *Builder) Raw(op sass.Opcode, mods []string, srcs ...VOperand) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: op, Mods: mods, Dst: []VOperand{VR(d)}, Src: srcs})
	return d
}

// Raw2P emits a SETP-style comparison with explicit modifiers (e.g.
// []string{"LT", "U32", "AND"}) and returns the predicate.
func (b *Builder) Raw2P(op sass.Opcode, mods []string, a, c VOperand) sass.Pred {
	p := b.AllocPred()
	b.emit(VInst{Op: op, Mods: mods,
		Dst: []VOperand{VPred(p, false), VPred(sass.PT, false)},
		Src: []VOperand{a, c, VPred(sass.PT, false)}})
	return p
}

// --- predicates and comparisons ---

// AllocPred reserves a predicate register from the pool.
func (b *Builder) AllocPred() sass.Pred {
	for p := 0; p < sass.NumPreds-1; p++ {
		if !b.predUsed[p] {
			b.predUsed[p] = true
			return sass.Pred(p)
		}
	}
	panic("kasm: predicate pool exhausted")
}

// FreePred returns a predicate to the pool.
func (b *Builder) FreePred(p sass.Pred) { b.predUsed[p] = false }

// ISetp compares a and c with cmp ("LT","LE","GT","GE","EQ","NE") and
// returns a fresh predicate holding the result.
func (b *Builder) ISetp(cmp string, a, c VOperand) sass.Pred {
	p := b.AllocPred()
	b.emit(VInst{Op: sass.OpISETP, Mods: []string{cmp, "AND"},
		Dst: []VOperand{VPred(p, false), VPred(sass.PT, false)},
		Src: []VOperand{a, c, VPred(sass.PT, false)}})
	return p
}

// FSetp compares two floats.
func (b *Builder) FSetp(cmp string, a, c VOperand) sass.Pred {
	p := b.AllocPred()
	b.emit(VInst{Op: sass.OpFSETP, Mods: []string{cmp, "AND"},
		Dst: []VOperand{VPred(p, false), VPred(sass.PT, false)},
		Src: []VOperand{a, c, VPred(sass.PT, false)}})
	return p
}

// --- fp32 ---

// FAdd computes a + c.
func (b *Builder) FAdd(a, c VOperand) VReg { return b.alu2(sass.OpFADD, nil, a, c) }

// FMul computes a * c.
func (b *Builder) FMul(a, c VOperand) VReg { return b.alu2(sass.OpFMUL, nil, a, c) }

func (b *Builder) alu2(op sass.Opcode, mods []string, a, c VOperand) VReg {
	dst := b.newReg(1)
	b.emit(VInst{Op: op, Mods: mods, Dst: []VOperand{VR(dst)}, Src: []VOperand{a, c}})
	return dst
}

// FFma computes a*c + d.
func (b *Builder) FFma(a, c, d VOperand) VReg {
	return b.alu3(sass.OpFFMA, nil, a, c, d)
}

// FFmaTo computes dst = a*c + d in place (accumulators, vector lanes).
func (b *Builder) FFmaTo(dst VOperand, a, c, d VOperand) {
	b.emit(VInst{Op: sass.OpFFMA, Dst: []VOperand{dst}, Src: []VOperand{a, c, d}})
}

// FAddTo computes dst = a + c in place.
func (b *Builder) FAddTo(dst VOperand, a, c VOperand) {
	b.emit(VInst{Op: sass.OpFADD, Dst: []VOperand{dst}, Src: []VOperand{a, c}})
}

// FMulTo computes dst = a * c in place.
func (b *Builder) FMulTo(dst VOperand, a, c VOperand) {
	b.emit(VInst{Op: sass.OpFMUL, Dst: []VOperand{dst}, Src: []VOperand{a, c}})
}

// MufuRcp computes an approximate 1/a on the SFU pipe.
func (b *Builder) MufuRcp(a VOperand) VReg {
	dst := b.newReg(1)
	b.emit(VInst{Op: sass.OpMUFU, Mods: []string{"RCP"}, Dst: []VOperand{VR(dst)}, Src: []VOperand{a}})
	return dst
}

// --- fp64 (register pairs) ---

func (b *Builder) dalu(op sass.Opcode, srcs ...VOperand) VReg {
	for _, s := range srcs {
		b.wantPair(s, op.String())
	}
	dst := b.newReg(2)
	b.emit(VInst{Op: op, Dst: []VOperand{VR(dst)}, Src: srcs})
	return dst
}

// DAdd computes the double sum a + c.
func (b *Builder) DAdd(a, c VOperand) VReg { return b.dalu(sass.OpDADD, a, c) }

// DMul computes the double product a * c.
func (b *Builder) DMul(a, c VOperand) VReg { return b.dalu(sass.OpDMUL, a, c) }

// DFma computes the double a*c + d.
func (b *Builder) DFma(a, c, d VOperand) VReg { return b.dalu(sass.OpDFMA, a, c, d) }

// DFmaTo computes dst = a*c + d in place on pairs.
func (b *Builder) DFmaTo(dst VOperand, a, c, d VOperand) {
	b.wantPair(dst, "DFmaTo")
	b.emit(VInst{Op: sass.OpDFMA, Dst: []VOperand{dst}, Src: []VOperand{a, c, d}})
}

// DAddTo computes dst = a + c in place on pairs.
func (b *Builder) DAddTo(dst VOperand, a, c VOperand) {
	b.wantPair(dst, "DAddTo")
	b.emit(VInst{Op: sass.OpDADD, Dst: []VOperand{dst}, Src: []VOperand{a, c}})
}

// --- conversions (§4.7 traffic) ---

// I2F converts a signed 32-bit integer to float32.
func (b *Builder) I2F(a VOperand) VReg {
	return b.conv(sass.OpI2F, []string{"F32", "S32"}, a, 1)
}

// I2FD converts a signed 32-bit integer to float64.
func (b *Builder) I2FD(a VOperand) VReg {
	return b.conv(sass.OpI2F, []string{"F64", "S32"}, a, 2)
}

// F2I converts float32 to a signed 32-bit integer (truncating).
func (b *Builder) F2I(a VOperand) VReg {
	return b.conv(sass.OpF2I, []string{"S32", "F32", "TRUNC"}, a, 1)
}

// F2FWiden converts float32 to float64.
func (b *Builder) F2FWiden(a VOperand) VReg {
	return b.conv(sass.OpF2F, []string{"F64", "F32"}, a, 2)
}

// F2FNarrow converts float64 (pair) to float32.
func (b *Builder) F2FNarrow(a VOperand) VReg {
	b.wantPair(a, "F2FNarrow")
	return b.conv(sass.OpF2F, []string{"F32", "F64"}, a, 1)
}

func (b *Builder) conv(op sass.Opcode, mods []string, a VOperand, dstWidth int) VReg {
	dst := b.newReg(dstWidth)
	b.emit(VInst{Op: op, Mods: mods, Dst: []VOperand{VR(dst)}, Src: []VOperand{a}})
	return dst
}

// --- memory ---

// Ldg loads widthBytes (4, 8 or 16) from global memory at [base+off].
// nc routes the load through the read-only data cache (LDG.E.NC), the
// compiled form of const __restrict__ pointers.
func (b *Builder) Ldg(base VReg, off int64, widthBytes int, nc bool) VReg {
	b.wantPair(VR(base), "Ldg")
	mods := []string{"E"}
	switch widthBytes {
	case 4:
	case 8:
		mods = append(mods, "64")
	case 16:
		mods = append(mods, "128")
	default:
		panic(fmt.Sprintf("kasm: Ldg width %d", widthBytes))
	}
	if nc {
		mods = append(mods, "NC")
	}
	mods = append(mods, "SYS")
	d := b.newReg(widthBytes / 4)
	b.emit(VInst{Op: sass.OpLDG, Mods: mods, Dst: []VOperand{VR(d)}, Src: []VOperand{VMem(base, off)}})
	return d
}

// LdgTo loads widthBytes from global memory at [base+off] into an
// existing destination register (group).
func (b *Builder) LdgTo(dst VReg, base VReg, off int64, widthBytes int, nc bool) {
	if b.p.WidthOf(dst) != widthBytes/4 {
		panic(fmt.Sprintf("kasm: LdgTo width mismatch: dst %d words, load %dB", b.p.WidthOf(dst), widthBytes))
	}
	n := len(b.p.Insts)
	tmp := b.Ldg(base, off, widthBytes, nc)
	// Rewrite the freshly emitted load to target dst instead of tmp; the
	// temporary vreg simply goes unused.
	_ = tmp
	b.p.Insts[n].Dst = []VOperand{VR(dst)}
}

// LdsTo loads widthBytes from shared memory into an existing destination.
func (b *Builder) LdsTo(dst VReg, addr VReg, off int64, widthBytes int) {
	if b.p.WidthOf(dst) != widthBytes/4 {
		panic(fmt.Sprintf("kasm: LdsTo width mismatch: dst %d words, load %dB", b.p.WidthOf(dst), widthBytes))
	}
	n := len(b.p.Insts)
	_ = b.Lds(addr, off, widthBytes)
	b.p.Insts[n].Dst = []VOperand{VR(dst)}
}

// LdgPred emits a guarded global load.
func (b *Builder) LdgPred(p sass.Pred, neg bool, base VReg, off int64, widthBytes int, nc bool) VReg {
	n := len(b.p.Insts)
	d := b.Ldg(base, off, widthBytes, nc)
	b.p.Insts[n].Pred, b.p.Insts[n].PredNeg = p, neg
	return d
}

// Stg stores widthBytes from val to global memory at [base+off].
func (b *Builder) Stg(base VReg, off int64, val VReg, widthBytes int) {
	b.wantPair(VR(base), "Stg")
	mods := []string{"E"}
	switch widthBytes {
	case 4:
	case 8:
		mods = append(mods, "64")
	case 16:
		mods = append(mods, "128")
	default:
		panic(fmt.Sprintf("kasm: Stg width %d", widthBytes))
	}
	mods = append(mods, "SYS")
	b.emit(VInst{Op: sass.OpSTG, Mods: mods, Dst: []VOperand{VMem(base, off)}, Src: []VOperand{VR(val)}})
}

// Lds loads widthBytes from shared memory at [addr32+off].
func (b *Builder) Lds(addr VReg, off int64, widthBytes int) VReg {
	mods := widthMods(widthBytes, "Lds")
	d := b.newReg(widthBytes / 4)
	b.emit(VInst{Op: sass.OpLDS, Mods: mods, Dst: []VOperand{VR(d)}, Src: []VOperand{VMem(addr, off)}})
	return d
}

// Sts stores widthBytes to shared memory at [addr32+off].
func (b *Builder) Sts(addr VReg, off int64, val VReg, widthBytes int) {
	mods := widthMods(widthBytes, "Sts")
	b.emit(VInst{Op: sass.OpSTS, Mods: mods, Dst: []VOperand{VMem(addr, off)}, Src: []VOperand{VR(val)}})
}

func widthMods(widthBytes int, what string) []string {
	switch widthBytes {
	case 4:
		return nil
	case 8:
		return []string{"64"}
	case 16:
		return []string{"128"}
	}
	panic(fmt.Sprintf("kasm: %s width %d", what, widthBytes))
}

// AtomAddF32 performs a global atomic float add, returning the old value.
func (b *Builder) AtomAddF32(base VReg, off int64, val VReg) VReg {
	b.wantPair(VR(base), "AtomAddF32")
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpATOM, Mods: []string{"E", "ADD", "F32"},
		Dst: []VOperand{VR(d), VMem(base, off)}, Src: []VOperand{VR(val)}})
	return d
}

// RedAddF32 performs a global atomic float add without return value.
func (b *Builder) RedAddF32(base VReg, off int64, val VReg) {
	b.wantPair(VR(base), "RedAddF32")
	b.emit(VInst{Op: sass.OpRED, Mods: []string{"E", "ADD", "F32"},
		Dst: []VOperand{VMem(base, off)}, Src: []VOperand{VR(val)}})
}

// AtomsAddF32 performs a shared-memory atomic float add, returning the
// old value.
func (b *Builder) AtomsAddF32(addr VReg, off int64, val VReg) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpATOMS, Mods: []string{"ADD", "F32"},
		Dst: []VOperand{VR(d), VMem(addr, off)}, Src: []VOperand{VR(val)}})
	return d
}

// ShflDown reads the value of lane (laneid + delta) within the warp;
// out-of-range lanes keep their own value (__shfl_down_sync).
func (b *Builder) ShflDown(v VOperand, delta int64) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpSHFL, Mods: []string{"DOWN"},
		Dst: []VOperand{VR(d)}, Src: []VOperand{v, VImm(delta)}})
	return d
}

// ShflBfly reads lane (laneid ^ mask): the butterfly exchange.
func (b *Builder) ShflBfly(v VOperand, mask int64) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpSHFL, Mods: []string{"BFLY"},
		Dst: []VOperand{VR(d)}, Src: []VOperand{v, VImm(mask)}})
	return d
}

// ShflIdx reads an arbitrary lane's value.
func (b *Builder) ShflIdx(v VOperand, lane VOperand) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpSHFL, Mods: []string{"IDX"},
		Dst: []VOperand{VR(d)}, Src: []VOperand{v, lane}})
	return d
}

// Tex2D samples texture texID (bound at launch) at integer coordinates
// (x, y), returning one float32 texel.
func (b *Builder) Tex2D(texID int, x, y VOperand) VReg {
	d := b.newReg(1)
	b.emit(VInst{Op: sass.OpTEX, Mods: []string{"2D"},
		Dst: []VOperand{VR(d)}, Src: []VOperand{x, y, VImm(int64(texID))}})
	return d
}

// --- control flow ---

// LabelName marks the next emitted instruction with a branch target label.
func (b *Builder) LabelName(name string) {
	if _, dup := b.p.Labels[name]; dup {
		panic(fmt.Sprintf("kasm: duplicate label %q", name))
	}
	b.p.Labels[name] = len(b.p.Insts)
}

// Bra emits an unconditional branch to a label.
func (b *Builder) Bra(label string) {
	b.emit(VInst{Op: sass.OpBRA, Label: label})
}

// BraIf emits a branch taken when predicate p (negated if neg) holds.
func (b *Builder) BraIf(p sass.Pred, neg bool, label string) {
	b.emitPred(p, neg, VInst{Op: sass.OpBRA, Label: label})
}

// Bar emits a block-wide barrier (__syncthreads()).
func (b *Builder) Bar() {
	b.emit(VInst{Op: sass.OpBAR, Mods: []string{"SYNC"}})
}

// Exit emits the kernel's terminating EXIT.
func (b *Builder) Exit() {
	b.emit(VInst{Op: sass.OpEXIT})
}

// ExitPred emits a guarded EXIT (early thread termination).
func (b *Builder) ExitPred(p sass.Pred, neg bool) {
	b.emitPred(p, neg, VInst{Op: sass.OpEXIT})
}

// Build finalizes and validates the program.
func (b *Builder) Build() (*Program, error) {
	if b.built {
		return nil, fmt.Errorf("kasm: Build called twice on %s", b.p.Name)
	}
	b.built = true
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}
