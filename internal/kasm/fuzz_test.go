package kasm_test

import (
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// FuzzKasmCompile interprets the fuzz input as a program over the safe
// builder surface (operand indices are always reduced into range, so
// every generated program is structurally legal even when the bytes are
// garbage) and asserts the pipeline invariants downstream: Build and
// Compile may reject a program but must not panic, every compiled kernel
// passes sass.Validate, and the printed SASS is a Print→Parse→Print
// fixed point — the property the golden suite and the daemon's cubin
// path both lean on.
func FuzzKasmCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{16, 0, 17, 1, 2, 18, 3, 19, 200, 100, 50, 25})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := kasm.NewBuilder("_Z4fuzzPfi", "sm_70", "fuzz.cu")
		b.SetSource([]string{"__global__ void fuzz(float* p, int n) {", "}"})
		b.NumParams(2)

		// Seed pools so every op has a legal operand from byte one.
		ptrs := []kasm.VReg{b.ParamPtr(0)}          // 64-bit pairs (addresses)
		regs := []kasm.VReg{b.Param32(1), b.TidX()} // 32-bit scalars
		shAddr := b.MovImm(b.AllocShared(256))
		regs = append(regs, shAddr)

		pick := func(i int, pool []kasm.VReg) kasm.VOperand {
			return kasm.VR(pool[i%len(pool)])
		}
		widths := []int{4, 8, 16}

		const maxOps = 64
		ops := 0
		for i := 0; i+2 < len(data) && ops < maxOps; i += 3 {
			op, x, y := data[i], int(data[i+1]), int(data[i+2])
			a, c := pick(x, regs), pick(y, regs)
			switch op % 18 {
			case 0:
				regs = append(regs, b.MovImm(int64(x)<<8|int64(y)))
			case 1:
				regs = append(regs, b.Mov(a))
			case 2:
				regs = append(regs, b.IAdd(a, c))
			case 3:
				regs = append(regs, b.IMul(a, c))
			case 4:
				regs = append(regs, b.IMad(a, c, pick(x+y, regs)))
			case 5:
				regs = append(regs, b.Shl(a, int64(y%32)))
			case 6:
				regs = append(regs, b.Shr(a, int64(y%32)))
			case 7:
				regs = append(regs, b.And(a, c))
			case 8:
				regs = append(regs, b.IMin(a, c))
			case 9:
				regs = append(regs, b.IMax(a, c))
			case 10:
				regs = append(regs, b.FAdd(a, c))
			case 11:
				regs = append(regs, b.FMul(a, c))
			case 12:
				regs = append(regs, b.FFma(a, c, pick(x+y, regs)))
			case 13:
				regs = append(regs, b.I2F(a))
			case 14:
				regs = append(regs, b.F2I(a))
			case 15:
				base := ptrs[x%len(ptrs)]
				w := widths[y%len(widths)]
				d := b.Ldg(base, int64(y%64)*4, w, y%2 == 0)
				if w == 4 {
					regs = append(regs, d)
				}
			case 16:
				base := ptrs[x%len(ptrs)]
				b.Stg(base, int64(y%64)*4, regs[(x+y)%len(regs)], 4)
			case 17:
				if y%2 == 0 {
					regs = append(regs, b.Lds(shAddr, int64(y%64)*4, 4))
				} else {
					b.Sts(shAddr, int64(y%64)*4, regs[(x+y)%len(regs)], 4)
				}
			}
			ops++
		}
		b.Exit()

		prog, err := b.Build()
		if err != nil {
			t.Skip() // structurally rejected; rejection must be an error, not a panic
		}
		k, err := codegen.Compile(prog, codegen.Options{})
		if err != nil {
			t.Skip()
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("compiled kernel fails validation: %v", err)
		}

		text := sass.Print(k)
		k2, err := sass.Parse(text)
		if err != nil {
			t.Fatalf("printed SASS does not re-parse: %v\n%s", err, text)
		}
		if text2 := sass.Print(k2); text2 != text {
			t.Fatalf("Print→Parse→Print is not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
		}
	})
}
