package codegen_test

import (
	"testing"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// stagingProgram builds the canonical global→shared staging pattern the
// sm_80 backend fuses: load in[tid], stage it into shared memory, read
// it back after the barrier, store to out[tid].
func stagingProgram(t *testing.T, nc, extraUse bool) *kasm.Program {
	t.Helper()
	b := kasm.NewBuilder("stage", "sm_70", "stage.cu")
	b.NumParams(2)
	tid := b.TidX()
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	b.AllocShared(128)
	off := b.Shl(kasm.VR(tid), 2)
	gaddr := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	v := b.Ldg(gaddr, 0, 4, nc)
	if extraUse {
		// A second consumer of the loaded value: the load result must
		// stay in a register, so fusion must not fire.
		w := b.FAdd(kasm.VR(v), kasm.VR(v))
		oaddr2 := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
		b.Stg(oaddr2, 0, w, 4)
	}
	b.Sts(off, 0, v, 4)
	b.Bar()
	r := b.Lds(off, 0, 4)
	oaddr := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	b.Stg(oaddr, 0, r, 4)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func opCount(k *sass.Kernel, op sass.Opcode) int {
	n := 0
	for i := range k.Insts {
		if k.Insts[i].Op == op {
			n++
		}
	}
	return n
}

// TestSM80FusesAsyncCopy: the Ampere backend must lower the LDG+STS
// staging pair to a single cp.async-style LDGSTS at the STS position.
func TestSM80FusesAsyncCopy(t *testing.T) {
	k, err := codegen.Compile(stagingProgram(t, false, false), codegen.Options{Arch: gpu.A100()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if k.Arch != "sm_80" {
		t.Errorf("kernel arch = %q, want sm_80", k.Arch)
	}
	if n := opCount(k, sass.OpLDGSTS); n != 1 {
		t.Fatalf("LDGSTS count = %d, want 1\n%s", n, sass.Print(k))
	}
	if n := opCount(k, sass.OpLDG); n != 0 {
		t.Errorf("LDG count = %d, want 0 (fused away)\n%s", n, sass.Print(k))
	}
	if n := opCount(k, sass.OpSTS); n != 0 {
		t.Errorf("STS count = %d, want 0 (fused away)\n%s", n, sass.Print(k))
	}
}

// TestSM70LoweringIsIdentity: compiling for the (default) Volta backend
// must produce the same SASS as an arch-less compile — the property that
// keeps every pre-refactor sm_70 golden file byte-identical.
func TestSM70LoweringIsIdentity(t *testing.T) {
	plain, err := codegen.Compile(stagingProgram(t, false, false), codegen.Options{})
	if err != nil {
		t.Fatalf("compile (zero options): %v", err)
	}
	volta, err := codegen.Compile(stagingProgram(t, false, false), codegen.Options{Arch: gpu.V100()})
	if err != nil {
		t.Fatalf("compile (V100): %v", err)
	}
	if got, want := sass.Print(volta), sass.Print(plain); got != want {
		t.Errorf("sm_70 lowering is not the identity:\n--- zero options ---\n%s\n--- V100 ---\n%s", want, got)
	}
	if n := opCount(volta, sass.OpLDGSTS); n != 0 {
		t.Errorf("LDGSTS on sm_70: %d, want 0", n)
	}
}

// TestFusionSkipsIneligibleLoads: NC (read-only cache) loads and loads
// with more than one consumer must survive unfused.
func TestFusionSkipsIneligibleLoads(t *testing.T) {
	cases := []struct {
		name     string
		nc       bool
		extraUse bool
	}{
		{"nc_load", true, false},
		{"multi_use", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := codegen.Compile(stagingProgram(t, tc.nc, tc.extraUse), codegen.Options{Arch: gpu.A100()})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if n := opCount(k, sass.OpLDGSTS); n != 0 {
				t.Errorf("LDGSTS count = %d, want 0\n%s", n, sass.Print(k))
			}
			if n := opCount(k, sass.OpLDG); n == 0 {
				t.Error("LDG disappeared without fusion")
			}
		})
	}
}

// TestAsyncCopyExecutes runs the fused kernel on the simulator: the
// value staged by LDGSTS must land in shared memory (and hence in the
// output), and the async-copy counters must tick.
func TestAsyncCopyExecutes(t *testing.T) {
	arch := gpu.A100()
	k, err := codegen.Compile(stagingProgram(t, false, false), codegen.Options{Arch: arch})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if opCount(k, sass.OpLDGSTS) == 0 {
		t.Fatal("kernel did not fuse; test exercises nothing")
	}
	dev := sim.NewDevice(arch)
	inBuf, err := dev.Alloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	outBuf, err := dev.Alloc(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float32, 32)
	for i := range data {
		data[i] = float32(i) + 0.5
	}
	if err := dev.WriteF32(inBuf, data); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Launch(dev, sim.LaunchSpec{
		Kernel: k,
		Grid:   sim.D1(1),
		Block:  sim.D1(32),
		Params: []uint64{inBuf.Addr, outBuf.Addr},
	}, sim.Config{})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	got, err := dev.ReadF32(outBuf, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	if res.Counters.AsyncCopyInsts == 0 {
		t.Error("AsyncCopyInsts = 0, want > 0")
	}
	if res.Counters.AsyncCopySectors == 0 {
		t.Error("AsyncCopySectors = 0, want > 0")
	}
}
