// Package codegen lowers a kasm.Program (virtual registers) to a finished
// sass.Kernel: it computes virtual-register liveness, runs a linear-scan
// register allocator with spill-everywhere spilling to local memory
// (STL/LDL — the traffic §4.2 of the paper detects), assigns Volta-style
// scoreboard control info, and resolves labels to branch-target PCs.
package codegen

import (
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// vliveness computes, for each instruction index, the set of virtual
// registers live immediately after it, via backward dataflow over the
// VInst control-flow graph.
type vliveness struct {
	liveOut []vset
}

type vset []uint64

func newVset(n int) vset { return make(vset, (n+63)/64) }

func (s vset) add(v kasm.VReg)      { s[v/64] |= 1 << (uint(v) % 64) }
func (s vset) remove(v kasm.VReg)   { s[v/64] &^= 1 << (uint(v) % 64) }
func (s vset) has(v kasm.VReg) bool { return s[v/64]&(1<<(uint(v)%64)) != 0 }

func (s vset) clone() vset {
	c := make(vset, len(s))
	copy(c, s)
	return c
}

func (s vset) union(o vset) (changed bool) {
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// defsUses extracts the virtual registers written and read by in.
// fullDef reports whether the write covers the whole vreg (a partial
// element write both reads and writes it).
func defsUses(p *kasm.Program, in *kasm.VInst) (defs []kasm.VReg, fullDef bool, uses []kasm.VReg) {
	fullDef = true
	written := writtenWords(in)
	for _, o := range in.Dst {
		switch o.Kind {
		case kasm.VOpdReg:
			if o.V == kasm.NoVReg {
				continue
			}
			defs = append(defs, o.V)
			if o.Elem != 0 || written < p.WidthOf(o.V) {
				fullDef = false
				uses = append(uses, o.V)
			}
		case kasm.VOpdMem:
			if o.V != kasm.NoVReg {
				uses = append(uses, o.V) // store/atomic address
			}
		}
	}
	for _, o := range in.Src {
		switch o.Kind {
		case kasm.VOpdReg, kasm.VOpdMem:
			if o.V != kasm.NoVReg {
				uses = append(uses, o.V)
			}
		}
	}
	return defs, fullDef, uses
}

// writtenWords returns how many 32-bit words the instruction writes to its
// (first) register destination.
func writtenWords(in *kasm.VInst) int {
	hasMod := func(m string) bool {
		for _, s := range in.Mods {
			if s == m {
				return true
			}
		}
		return false
	}
	switch {
	case sass.IsLoad(in.Op) || in.Op == sass.OpATOM || in.Op == sass.OpATOMS:
		switch {
		case hasMod("128"):
			return 4
		case hasMod("64"):
			return 2
		default:
			return 1
		}
	case sass.ClassOf(in.Op) == sass.ClassFP64:
		return 2
	case in.Op == sass.OpIMAD && hasMod("WIDE"):
		return 2
	case (in.Op == sass.OpF2F || in.Op == sass.OpI2F || in.Op == sass.OpI2I) &&
		len(in.Mods) > 0 && in.Mods[0] == "F64":
		return 2
	default:
		return 1
	}
}

// computeVLiveness runs the dataflow. Successor structure comes from
// labels/branches; blocks are implicit (per-instruction granularity keeps
// the code simple and the programs are small).
func computeVLiveness(p *kasm.Program) *vliveness {
	n := len(p.Insts)
	nv := p.NumVRegs
	succs := make([][2]int, n) // up to 2 successors; -1 = none
	for i := range p.Insts {
		succs[i] = [2]int{-1, -1}
		in := &p.Insts[i]
		switch in.Op {
		case sass.OpBRA:
			succs[i][0] = p.Labels[in.Label]
			if in.Pred != sass.PT && i+1 < n {
				succs[i][1] = i + 1
			}
		case sass.OpEXIT, sass.OpRET:
			if in.Pred != sass.PT && i+1 < n {
				// Guarded EXIT falls through for the non-exiting threads.
				succs[i][0] = i + 1
			}
		default:
			if i+1 < n {
				succs[i][0] = i + 1
			}
		}
	}

	lv := &vliveness{liveOut: make([]vset, n)}
	liveIn := make([]vset, n)
	for i := 0; i < n; i++ {
		lv.liveOut[i] = newVset(nv)
		liveIn[i] = newVset(nv)
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := lv.liveOut[i]
			for _, s := range succs[i] {
				if s >= 0 {
					if out.union(liveIn[s]) {
						changed = true
					}
				}
			}
			in := out.clone()
			defs, fullDef, uses := defsUses(p, &p.Insts[i])
			if fullDef {
				for _, d := range defs {
					in.remove(d)
				}
			}
			for _, u := range uses {
				in.add(u)
			}
			if liveIn[i].union(in) {
				changed = true
			}
		}
	}
	return lv
}
