package codegen

import (
	"fmt"

	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// Options configure compilation.
type Options struct {
	// MaxRegs bounds physical registers per thread, like nvcc's
	// -maxrregcount. 0 means the target's architectural maximum. Lower
	// budgets force register spilling to local memory.
	MaxRegs int

	// Arch selects the target architecture. The zero value targets the
	// default Volta-class machine (gpu.V100). The descriptor drives
	// per-arch lowering — instruction selection such as LDG+STS →
	// LDGSTS fusion on async-copy ISAs, the per-thread register ceiling,
	// and the number of dependency scoreboards — and stamps the produced
	// kernel's arch tag.
	Arch gpu.Arch
}

// Compile lowers a kasm.Program to an executable sass.Kernel: per-arch
// instruction selection, register allocation (with spilling), label
// resolution, scoreboard assignment and resource accounting.
func Compile(p *kasm.Program, opts Options) (*sass.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arch := opts.Arch
	if arch.Name == "" {
		arch = gpu.V100()
	}
	maxRegs := arch.MaxRegsPerThread
	if maxRegs <= 0 || maxRegs > sass.NumArchRegs {
		maxRegs = sass.NumArchRegs
	}
	budget := opts.MaxRegs
	if budget <= 0 || budget > maxRegs {
		budget = maxRegs
	}
	if budget < 8 {
		return nil, fmt.Errorf("codegen: register budget %d below minimum 8", budget)
	}

	// Work on a copy: spill rewriting mutates the program.
	work := cloneProgram(p)
	lowerForArch(work, arch.ISA)
	noSpill := map[kasm.VReg]bool{}
	spilledEver := map[kasm.VReg]bool{}
	sp := &spiller{}

	var alloc *allocResult
	for round := 0; ; round++ {
		if round > 64 {
			return nil, fmt.Errorf("codegen: spilling did not converge after %d rounds", round)
		}
		lv := computeVLiveness(work)
		ivs := buildIntervals(work, lv, noSpill)
		var err error
		alloc, err = linearScan(ivs, budget)
		if err != nil {
			return nil, err
		}
		if len(alloc.spilled) == 0 {
			break
		}
		for _, v := range alloc.spilled {
			if spilledEver[v] {
				return nil, fmt.Errorf("codegen: vreg %d spilled twice; budget %d unworkable", v, budget)
			}
			spilledEver[v] = true
		}
		sp.rewrite(work, alloc.spilled, noSpill)
	}

	k := translate(work, alloc)
	k.LocalBytes = sp.localBytes
	if opts.Arch.Name != "" {
		// An explicit target stamps the kernel; otherwise the program's
		// own tag (what the builder was constructed with) stands.
		k.Arch = arch.SM
	}
	assignScoreboards(k, arch.ISA.Scoreboards)
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: produced invalid kernel: %w", err)
	}
	return k, nil
}

func cloneProgram(p *kasm.Program) *kasm.Program {
	c := *p
	c.Insts = make([]kasm.VInst, len(p.Insts))
	for i := range p.Insts {
		in := p.Insts[i]
		in.Dst = append([]kasm.VOperand(nil), in.Dst...)
		in.Src = append([]kasm.VOperand(nil), in.Src...)
		c.Insts[i] = in
	}
	c.Widths = append([]uint8(nil), p.Widths...)
	c.Labels = make(map[string]int, len(p.Labels))
	for k, v := range p.Labels {
		c.Labels[k] = v
	}
	return &c
}

// spiller rewrites a program so that the given vregs live in local memory,
// inserting LDL reloads before uses and STL stores after definitions —
// the spill-everywhere strategy, which keeps the allocation state
// consistent across control-flow edges.
type spiller struct {
	localBytes int
	slots      map[kasm.VReg]int64
}

func (sp *spiller) rewrite(p *kasm.Program, spilled []kasm.VReg, noSpill map[kasm.VReg]bool) {
	if sp.slots == nil {
		sp.slots = map[kasm.VReg]int64{}
	}
	isSpilled := map[kasm.VReg]bool{}
	for _, v := range spilled {
		isSpilled[v] = true
		w := p.WidthOf(v) * 4
		// Align the slot to the access width.
		sp.localBytes = (sp.localBytes + w - 1) / w * w
		sp.slots[v] = int64(sp.localBytes)
		sp.localBytes += w
	}

	newReg := func(width int) kasm.VReg {
		v := kasm.VReg(p.NumVRegs)
		p.NumVRegs++
		p.Widths = append(p.Widths, uint8(width))
		noSpill[v] = true
		return v
	}

	var out []kasm.VInst
	oldToNew := make([]int, len(p.Insts)+1)
	for i := range p.Insts {
		oldToNew[i] = len(out)
		in := p.Insts[i]

		// Which spilled vregs does this instruction touch?
		var loads []kasm.VReg  // need value before inst
		var stores []kasm.VReg // need slot updated after inst
		temps := map[kasm.VReg]kasm.VReg{}

		scan := func(opds []kasm.VOperand, isDst bool) {
			for oi := range opds {
				o := &opds[oi]
				if (o.Kind != kasm.VOpdReg && o.Kind != kasm.VOpdMem) || o.V == kasm.NoVReg || !isSpilled[o.V] {
					continue
				}
				v := o.V
				t, have := temps[v]
				if !have {
					t = newReg(p.WidthOf(v))
					temps[v] = t
				}
				if isDst && o.Kind == kasm.VOpdReg {
					// Partial writes must load-modify-store; full writes
					// only store.
					partial := o.Elem != 0 || writtenWords(&in) < p.WidthOf(v)
					if partial && !contains(loads, v) {
						loads = append(loads, v)
					}
					if !contains(stores, v) {
						stores = append(stores, v)
					}
				} else if !contains(loads, v) {
					// Source reads and memory-operand bases reload first.
					loads = append(loads, v)
				}
				o.V = t
			}
		}
		scan(in.Src, false)
		scan(in.Dst, true)

		for _, v := range loads {
			out = append(out, kasm.VInst{
				Op: sass.OpLDL, Mods: widthModsFor(p.WidthOf(v)), Pred: sass.PT,
				Dst:  []kasm.VOperand{kasm.VR(temps[v])},
				Src:  []kasm.VOperand{kasm.VMem(kasm.NoVReg, sp.slots[v])},
				Line: in.Line,
			})
		}
		out = append(out, in)
		for _, v := range stores {
			out = append(out, kasm.VInst{
				Op: sass.OpSTL, Mods: widthModsFor(p.WidthOf(v)),
				Pred: in.Pred, PredNeg: in.PredNeg,
				Dst:  []kasm.VOperand{kasm.VMem(kasm.NoVReg, sp.slots[v])},
				Src:  []kasm.VOperand{kasm.VR(temps[v])},
				Line: in.Line,
			})
		}
	}
	oldToNew[len(p.Insts)] = len(out)
	for name, idx := range p.Labels {
		p.Labels[name] = oldToNew[idx]
	}
	p.Insts = out
}

func contains(s []kasm.VReg, v kasm.VReg) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func widthModsFor(widthWords int) []string {
	switch widthWords {
	case 2:
		return []string{"64"}
	case 4:
		return []string{"128"}
	default:
		return nil
	}
}

// translate converts the allocated program into sass instructions.
func translate(p *kasm.Program, alloc *allocResult) *sass.Kernel {
	k := &sass.Kernel{
		Name:        p.Name,
		Arch:        p.Arch,
		SharedBytes: p.ShmemBytes,
		ConstBytes:  p.ConstBytes(),
		SourceFile:  p.SourceFile,
		Source:      p.Source,
	}
	mapOpd := func(o kasm.VOperand) sass.Operand {
		switch o.Kind {
		case kasm.VOpdReg:
			r := alloc.phys[o.V] + sass.Reg(o.Elem)
			so := sass.R(r)
			so.Neg = o.Neg
			return so
		case kasm.VOpdZero:
			return sass.R(sass.RZ)
		case kasm.VOpdImm:
			return sass.Imm(o.Imm)
		case kasm.VOpdMem:
			base := sass.RZ
			if o.V != kasm.NoVReg {
				base = alloc.phys[o.V]
			}
			return sass.Mem(base, o.Imm)
		case kasm.VOpdConst:
			return sass.Const(o.Bank, o.Imm)
		case kasm.VOpdPred:
			po := sass.P(o.Pred)
			po.Neg = o.Neg
			return po
		case kasm.VOpdSpecial:
			return sass.SR(o.Special)
		}
		return sass.Operand{}
	}
	for i := range p.Insts {
		vin := &p.Insts[i]
		in := sass.Inst{
			PC:      uint64(i) * sass.InstBytes,
			Pred:    vin.Pred,
			PredNeg: vin.PredNeg,
			Op:      vin.Op,
			Mods:    vin.Mods,
			Line:    vin.Line,
			Ctrl:    sass.DefaultCtrl(),
		}
		for _, o := range vin.Dst {
			in.Dst = append(in.Dst, mapOpd(o))
		}
		for _, o := range vin.Src {
			in.Src = append(in.Src, mapOpd(o))
		}
		if vin.Op == sass.OpBRA {
			in.Target = uint64(p.Labels[vin.Label]) * sass.InstBytes
		}
		k.Insts = append(k.Insts, in)
	}
	k.NumRegs = alloc.maxReg + 1
	if k.NumRegs < 4 {
		k.NumRegs = 4
	}
	return k
}

// assignScoreboards walks the kernel and assigns Volta-style control
// info: variable-latency instructions (memory loads, atomics with return)
// set a write scoreboard; the first subsequent instruction reading or
// overwriting one of the pending registers carries the slot in its wait
// mask. The number of hardware slots comes from the arch descriptor
// (ISADesc.Scoreboards). The simulator enforces dependencies dynamically
// as well; the static info mirrors what real SASS encodes and is shown by
// the disassembler.
func assignScoreboards(k *sass.Kernel, nslots int) {
	if nslots <= 0 {
		nslots = 6
	}
	type pending struct {
		regs []sass.Reg
	}
	slots := make([]pending, nslots)
	next := 0
	var scratch []sass.Reg

	intersects := func(regs []sass.Reg, set []sass.Reg) bool {
		for _, r := range regs {
			for _, s := range set {
				if r == s {
					return true
				}
			}
		}
		return false
	}

	for i := range k.Insts {
		in := &k.Insts[i]
		srcs := in.SrcRegs(scratch[:0])
		dsts := in.DstRegs(nil)
		all := append(append([]sass.Reg(nil), srcs...), dsts...)
		for s := range slots {
			if len(slots[s].regs) > 0 && intersects(all, slots[s].regs) {
				in.Ctrl.WaitMask |= 1 << uint(s)
				slots[s].regs = nil
			}
		}
		if needsWrBar(in) {
			// Find a free slot, else force a wait on the round-robin slot.
			slot := -1
			for off := 0; off < nslots; off++ {
				s := (next + off) % nslots
				if len(slots[s].regs) == 0 {
					slot = s
					break
				}
			}
			if slot < 0 {
				slot = next % nslots
				in.Ctrl.WaitMask |= 1 << uint(slot)
				slots[slot].regs = nil
			}
			next = (slot + 1) % nslots
			in.Ctrl.WrBar = int8(slot)
			slots[slot].regs = append([]sass.Reg(nil), dsts...)
		}
	}
}

func needsWrBar(in *sass.Inst) bool {
	switch in.Op {
	case sass.OpLDG, sass.OpLDS, sass.OpLDL, sass.OpLDC, sass.OpTEX:
		return true
	case sass.OpATOM, sass.OpATOMS:
		// Only when a return value is produced into a register.
		for _, o := range in.Dst {
			if o.Kind == sass.OpdReg && !o.Reg.IsZ() {
				return true
			}
		}
	}
	return false
}
