package codegen

import (
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// lowerForArch applies per-architecture instruction selection to the
// arch-neutral kasm program, driven entirely by the gpu.ISADesc
// descriptor. Volta-class targets (no async copy) are the identity
// transform, which is what keeps sm_70 output byte-identical to the
// pre-descriptor compiler. It runs before register allocation so that
// registers freed by fusion never reach the allocator.
func lowerForArch(p *kasm.Program, isa gpu.ISADesc) {
	if isa.AsyncCopy {
		fuseAsyncCopies(p, isa)
	}
}

// vinstHasMod reports whether a virtual instruction carries a modifier.
func vinstHasMod(in *kasm.VInst, m string) bool {
	for _, s := range in.Mods {
		if s == m {
			return true
		}
	}
	return false
}

// vinstWidthBytes mirrors sass.Inst.WidthBytes for virtual instructions.
func vinstWidthBytes(in *kasm.VInst) int {
	switch {
	case vinstHasMod(in, "128"):
		return 16
	case vinstHasMod(in, "64"):
		return 8
	default:
		return 4
	}
}

// writesVReg reports whether the instruction defines any word of vreg v.
func writesVReg(in *kasm.VInst, v kasm.VReg) bool {
	for _, o := range in.Dst {
		if o.Kind == kasm.VOpdReg && o.V == v {
			return true
		}
	}
	return false
}

// writesPred reports whether the instruction defines predicate pr.
func writesPred(in *kasm.VInst, pr sass.Pred) bool {
	for _, o := range in.Dst {
		if o.Kind == kasm.VOpdPred && o.Pred == pr {
			return true
		}
	}
	return false
}

// fuseAsyncCopies rewrites LDG+STS staging pairs into single LDGSTS
// async copies (the SASS form of cp.async on sm_80+). The fused copy
// sits at the STS's position so shared-memory store ordering is
// preserved; only the global read moves later, which is safe when no
// intervening instruction writes global memory or crosses a
// synchronization/control boundary.
//
// A pair is eligible when:
//   - the LDG is a plain cached load (no .NC: read-only-cache loads keep
//     their texture-path routing) no wider than the ISA's maximum
//     per-thread async copy;
//   - the loaded vreg has exactly one definition (the LDG) and one use
//     (the STS's stored value, at element 0), so deleting the LDG leaves
//     no other reader;
//   - the two instructions carry the same guard predicate and the store
//     is the full loaded width;
//   - nothing between them is a branch, branch target, barrier, EXIT/RET,
//     MEMBAR, or global-memory write, and nothing redefines the loaded
//     vreg, either address base, or the shared guard predicate.
func fuseAsyncCopies(p *kasm.Program, isa gpu.ISADesc) {
	uses := make([]int, p.NumVRegs)
	defs := make([]int, p.NumVRegs)
	for i := range p.Insts {
		in := &p.Insts[i]
		for _, o := range in.Src {
			if (o.Kind == kasm.VOpdReg || o.Kind == kasm.VOpdMem) && o.V != kasm.NoVReg {
				uses[o.V]++
			}
		}
		for _, o := range in.Dst {
			switch {
			case o.Kind == kasm.VOpdReg && o.V != kasm.NoVReg:
				defs[o.V]++
			case o.Kind == kasm.VOpdMem && o.V != kasm.NoVReg:
				uses[o.V]++ // a store's base address is a read
			}
		}
	}
	isTarget := make([]bool, len(p.Insts)+1)
	for _, idx := range p.Labels {
		isTarget[idx] = true
	}

	drop := make([]bool, len(p.Insts))
	for i := range p.Insts {
		ldg := &p.Insts[i]
		if ldg.Op != sass.OpLDG || drop[i] {
			continue
		}
		if vinstHasMod(ldg, "NC") || vinstHasMod(ldg, "CI") {
			continue
		}
		width := vinstWidthBytes(ldg)
		if isa.AsyncCopyMaxBytes > 0 && width > isa.AsyncCopyMaxBytes {
			continue
		}
		if len(ldg.Dst) != 1 || ldg.Dst[0].Kind != kasm.VOpdReg {
			continue
		}
		v := ldg.Dst[0].V
		if v == kasm.NoVReg || defs[v] != 1 || uses[v] != 1 {
			continue
		}
		if len(ldg.Src) != 1 || ldg.Src[0].Kind != kasm.VOpdMem {
			continue
		}
		gbase := ldg.Src[0].V

	scan:
		for j := i + 1; j < len(p.Insts); j++ {
			if isTarget[j] || drop[j] {
				break
			}
			in := &p.Insts[j]
			if in.Op == sass.OpSTS &&
				len(in.Src) == 1 && in.Src[0].Kind == kasm.VOpdReg &&
				in.Src[0].V == v && in.Src[0].Elem == 0 &&
				len(in.Dst) == 1 && in.Dst[0].Kind == kasm.VOpdMem &&
				vinstWidthBytes(in) == width &&
				in.Pred == ldg.Pred && in.PredNeg == ldg.PredNeg {
				mods := []string{"E", "BYPASS"}
				if wm := widthModsFor(width / 4); wm != nil {
					mods = append(mods, wm...)
				}
				p.Insts[j] = kasm.VInst{
					Op: sass.OpLDGSTS, Mods: mods,
					Pred: ldg.Pred, PredNeg: ldg.PredNeg,
					Dst:  []kasm.VOperand{in.Dst[0]},
					Src:  []kasm.VOperand{ldg.Src[0]},
					Line: in.Line,
				}
				drop[i] = true
				break
			}
			// Moving the global read past any of these is unsafe.
			switch in.Op {
			case sass.OpBRA, sass.OpBAR, sass.OpEXIT, sass.OpRET, sass.OpMEMBAR,
				sass.OpSTG, sass.OpATOM, sass.OpRED:
				break scan
			}
			if writesVReg(in, v) || writesVReg(in, gbase) ||
				(ldg.Pred != sass.PT && writesPred(in, ldg.Pred)) {
				break
			}
		}
	}

	any := false
	for _, d := range drop {
		if d {
			any = true
			break
		}
	}
	if !any {
		return
	}
	out := p.Insts[:0:0]
	oldToNew := make([]int, len(p.Insts)+1)
	for i := range p.Insts {
		oldToNew[i] = len(out)
		if !drop[i] {
			out = append(out, p.Insts[i])
		}
	}
	oldToNew[len(p.Insts)] = len(out)
	for name, idx := range p.Labels {
		p.Labels[name] = oldToNew[idx]
	}
	p.Insts = out
}
