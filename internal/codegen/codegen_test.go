package codegen

import (
	"fmt"
	"testing"
	"testing/quick"

	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// sumProgram builds a kernel that loads n values from a pointer param,
// sums them, and stores the result: with n large and the budget small,
// it forces register spilling.
func sumProgram(t *testing.T, n int) *kasm.Program {
	t.Helper()
	b := kasm.NewBuilder("_Zsum", "sm_70", "sum.cu")
	b.NumParams(2)
	b.Line(3)
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	vals := make([]kasm.VReg, n)
	for i := 0; i < n; i++ {
		b.Line(4 + i)
		vals[i] = b.Ldg(in, int64(4*i), 4, false)
	}
	b.Line(4 + n)
	acc := b.MovImmF32(0)
	for i := 0; i < n; i++ {
		b.FAddTo(kasm.VR(acc), kasm.VR(acc), kasm.VR(vals[i]))
	}
	b.Stg(out, 0, acc, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestCompileNoSpill(t *testing.T) {
	p := sumProgram(t, 8)
	k, err := Compile(p, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if k.LocalBytes != 0 {
		t.Errorf("LocalBytes = %d, want 0 (no spills expected)", k.LocalBytes)
	}
	ops := k.CountOpcodes()
	if ops[sass.OpSTL] != 0 || ops[sass.OpLDL] != 0 {
		t.Errorf("unexpected spill code: %d STL, %d LDL", ops[sass.OpSTL], ops[sass.OpLDL])
	}
	if ops[sass.OpLDG] != 8 {
		t.Errorf("LDG count = %d, want 8", ops[sass.OpLDG])
	}
	// 8 loads + address pairs + accumulator: comfortably under 32 regs.
	if k.NumRegs > 32 {
		t.Errorf("NumRegs = %d, suspiciously high", k.NumRegs)
	}
}

func TestCompileSpills(t *testing.T) {
	p := sumProgram(t, 24) // 24 live floats + two pointer pairs
	k, err := Compile(p, Options{MaxRegs: 12})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if k.NumRegs > 12 {
		t.Errorf("NumRegs = %d exceeds budget 12", k.NumRegs)
	}
	ops := k.CountOpcodes()
	if ops[sass.OpSTL] == 0 || ops[sass.OpLDL] == 0 {
		t.Errorf("expected spill code under budget 12: %d STL, %d LDL", ops[sass.OpSTL], ops[sass.OpLDL])
	}
	if k.LocalBytes == 0 {
		t.Error("LocalBytes = 0 despite spilling")
	}
	// Spill stores must carry source-line attribution for §4.2 reporting.
	for i := range k.Insts {
		if k.Insts[i].Op == sass.OpSTL && k.Insts[i].Line == 0 {
			t.Error("STL without line attribution")
			break
		}
	}
}

func TestCompileBudgetMonotonic(t *testing.T) {
	// Property: smaller budgets never yield more registers than allowed,
	// and the compile always succeeds down to a sane floor.
	p := sumProgram(t, 16)
	prevLocal := -1
	for _, budget := range []int{255, 32, 20, 12, 10} {
		k, err := Compile(p, Options{MaxRegs: budget})
		if err != nil {
			t.Fatalf("Compile(budget=%d): %v", budget, err)
		}
		if k.NumRegs > budget {
			t.Errorf("budget %d: NumRegs = %d", budget, k.NumRegs)
		}
		if prevLocal >= 0 && k.LocalBytes < prevLocal {
			t.Errorf("budget %d: LocalBytes %d decreased from %d with tighter budget",
				budget, k.LocalBytes, prevLocal)
		}
		prevLocal = k.LocalBytes
	}
}

func TestCompileLoop(t *testing.T) {
	// for (i = 0; i < n; i++) acc += in[i]; out[0] = acc
	b := kasm.NewBuilder("_Zloopsum", "sm_70", "loop.cu")
	b.NumParams(3)
	b.Line(2)
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	n := b.Param32(2)
	i := b.MovImm(0)
	acc := b.MovImmF32(0)
	addr := b.MovPair(in)
	b.Line(3)
	b.LabelName("loop")
	v := b.Ldg(addr, 0, 4, false)
	b.Line(4)
	b.FAddTo(kasm.VR(acc), kasm.VR(acc), kasm.VR(v))
	b.IAddTo(kasm.VRElem(addr, 0), kasm.VRElem(addr, 0), kasm.VImm(4))
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p0 := b.ISetp("LT", kasm.VR(i), kasm.VR(n))
	b.BraIf(p0, false, "loop")
	b.Line(6)
	b.Stg(out, 0, acc, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, err := Compile(p, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// The backward branch must target the LDG.
	var bra *sass.Inst
	for idx := range k.Insts {
		if k.Insts[idx].Op == sass.OpBRA {
			bra = &k.Insts[idx]
		}
	}
	if bra == nil {
		t.Fatal("no branch emitted")
	}
	tgt := k.InstAt(bra.Target)
	if tgt == nil || tgt.Op != sass.OpLDG {
		t.Errorf("branch targets %v, want the loop-head LDG", tgt)
	}
	// CFG must see exactly one loop.
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	if len(cfg.Loops) != 1 {
		t.Errorf("loops = %d, want 1", len(cfg.Loops))
	}
}

func TestScoreboardAssignment(t *testing.T) {
	p := sumProgram(t, 4)
	k, err := Compile(p, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Every load carries a write scoreboard.
	pendingSlots := map[int8]bool{}
	waited := 0
	for idx := range k.Insts {
		in := &k.Insts[idx]
		if sass.IsLoad(in.Op) {
			if in.Ctrl.WrBar == sass.NoBar {
				t.Errorf("load at %#x has no WrBar", in.PC)
			} else {
				pendingSlots[in.Ctrl.WrBar] = true
			}
		}
		if in.Ctrl.WaitMask != 0 {
			waited++
			for s := int8(0); s < 6; s++ {
				if in.Ctrl.WaitMask&(1<<uint(s)) != 0 && !pendingSlots[s] {
					t.Errorf("inst at %#x waits on slot %d that was never set", in.PC, s)
				}
			}
		}
	}
	if waited == 0 {
		t.Error("no instruction waits on any scoreboard; consumers unprotected")
	}
}

func TestCompileErrors(t *testing.T) {
	p := sumProgram(t, 4)
	if _, err := Compile(p, Options{MaxRegs: 4}); err == nil {
		t.Error("Compile accepted budget below floor")
	}
	bad := &kasm.Program{Name: "x"}
	if _, err := Compile(bad, Options{}); err == nil {
		t.Error("Compile accepted empty program")
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	p := sumProgram(t, 24)
	before := len(p.Insts)
	if _, err := Compile(p, Options{MaxRegs: 12}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(p.Insts) != before {
		t.Errorf("Compile mutated input program: %d -> %d insts", before, len(p.Insts))
	}
	// Second compile with a different budget must work off the original.
	k, err := Compile(p, Options{})
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if ops := k.CountOpcodes(); ops[sass.OpSTL] != 0 {
		t.Error("recompile with large budget still spills; input was mutated")
	}
}

func TestQuickCompileWithinBudget(t *testing.T) {
	// Property: for any live-value count and budget, compilation either
	// fails cleanly or produces a valid kernel within budget.
	f := func(n8, b8 uint8) bool {
		n := int(n8%28) + 1
		budget := int(b8%56) + 8
		b := kasm.NewBuilder(fmt.Sprintf("_Zq%d_%d", n, budget), "sm_70", "q.cu")
		b.NumParams(2)
		b.Line(1)
		in := b.ParamPtr(0)
		out := b.ParamPtr(1)
		vals := make([]kasm.VReg, n)
		for i := 0; i < n; i++ {
			vals[i] = b.Ldg(in, int64(4*i), 4, false)
		}
		acc := b.MovImmF32(1)
		for i := 0; i < n; i++ {
			b.FFmaTo(kasm.VR(acc), kasm.VR(acc), kasm.VR(vals[i]), kasm.VR(vals[n-1-i]))
		}
		b.Stg(out, 0, acc, 4)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			return false
		}
		k, err := Compile(p, Options{MaxRegs: budget})
		if err != nil {
			// Acceptable only for genuinely tiny budgets.
			return budget < 12
		}
		return k.Validate() == nil && k.NumRegs <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
