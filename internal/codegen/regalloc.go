package codegen

import (
	"fmt"
	"sort"

	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
)

// interval is the live range of a virtual register in linearized
// instruction positions. Backward dataflow already accounts for loop
// back edges, so [Start, End] safely over-approximates all positions
// where the vreg's value matters.
type interval struct {
	v          kasm.VReg
	start, end int
	width      int
	noSpill    bool // spill-reload temporaries must stay in registers
}

// buildIntervals derives live intervals from the per-instruction liveness.
func buildIntervals(p *kasm.Program, lv *vliveness, noSpill map[kasm.VReg]bool) []interval {
	n := len(p.Insts)
	start := make([]int, p.NumVRegs)
	end := make([]int, p.NumVRegs)
	seen := make([]bool, p.NumVRegs)
	touch := func(v kasm.VReg, i int) {
		if !seen[v] {
			seen[v] = true
			start[v], end[v] = i, i
			return
		}
		if i < start[v] {
			start[v] = i
		}
		if i > end[v] {
			end[v] = i
		}
	}
	for i := 0; i < n; i++ {
		defs, _, uses := defsUses(p, &p.Insts[i])
		for _, d := range defs {
			touch(d, i)
		}
		for _, u := range uses {
			touch(u, i)
		}
		for w := 0; w < len(lv.liveOut[i]); w++ {
			bits := lv.liveOut[i][w]
			for bits != 0 {
				b := bits & (-bits)
				v := kasm.VReg(w*64 + trailingZeros(bits))
				touch(v, i+1)
				bits ^= b
			}
		}
	}
	var ivs []interval
	for v := 0; v < p.NumVRegs; v++ {
		if !seen[v] {
			continue
		}
		ivs = append(ivs, interval{
			v: kasm.VReg(v), start: start[v], end: end[v],
			width: p.WidthOf(kasm.VReg(v)), noSpill: noSpill[kasm.VReg(v)],
		})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})
	return ivs
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// allocResult is the outcome of one linear-scan pass.
type allocResult struct {
	phys    map[kasm.VReg]sass.Reg
	maxReg  int // highest physical register used
	spilled []kasm.VReg
}

// linearScan allocates physical registers for all intervals within the
// budget. When the register file is exhausted it selects spill victims
// (farthest interval end) and reports them; the caller rewrites the
// program with spill code and retries.
func linearScan(ivs []interval, budget int) (*allocResult, error) {
	type active struct {
		interval
		base sass.Reg
	}
	res := &allocResult{phys: map[kasm.VReg]sass.Reg{}, maxReg: -1}
	inUse := make([]bool, budget)
	var act []active

	findFree := func(width int) (sass.Reg, bool) {
		align := width
		if align == 3 {
			align = 4
		}
		for base := 0; base+width <= budget; base += align {
			ok := true
			for i := 0; i < width; i++ {
				if inUse[base+i] {
					ok = false
					break
				}
			}
			if ok {
				return sass.Reg(base), true
			}
		}
		return 0, false
	}
	assign := func(iv interval, base sass.Reg) {
		for i := 0; i < iv.width; i++ {
			inUse[int(base)+i] = true
		}
		res.phys[iv.v] = base
		if m := int(base) + iv.width - 1; m > res.maxReg {
			res.maxReg = m
		}
		act = append(act, active{iv, base})
	}
	release := func(idx int) {
		a := act[idx]
		for i := 0; i < a.width; i++ {
			inUse[int(a.base)+i] = false
		}
		act = append(act[:idx], act[idx+1:]...)
	}

	for _, iv := range ivs {
		// Expire intervals that ended strictly before this start.
		for i := 0; i < len(act); {
			if act[i].end < iv.start {
				release(i)
			} else {
				i++
			}
		}
		base, ok := findFree(iv.width)
		for !ok {
			// Spill active intervals (farthest end first, same-or-wider
			// width preferred for alignment) until the new interval fits;
			// consider spilling the new interval itself instead.
			victim := -1
			for i := range act {
				if act[i].noSpill {
					continue
				}
				if victim < 0 ||
					(act[i].width >= iv.width) != (act[victim].width >= iv.width) && act[i].width >= iv.width ||
					(act[i].width >= iv.width) == (act[victim].width >= iv.width) && act[i].end > act[victim].end {
					victim = i
				}
			}
			if victim >= 0 && (act[victim].end > iv.end || iv.noSpill) {
				res.spilled = append(res.spilled, act[victim].v)
				delete(res.phys, act[victim].v)
				release(victim)
				base, ok = findFree(iv.width)
				continue
			}
			if !iv.noSpill {
				res.spilled = append(res.spilled, iv.v)
				break
			}
			return nil, fmt.Errorf("codegen: cannot allocate spill temporary within budget %d", budget)
		}
		if !ok {
			continue // the new interval was spilled instead
		}
		assign(iv, base)
	}
	return res, nil
}
