package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"gpuscout/internal/scout"
)

// reportCache is a thread-safe LRU of marshaled report JSON, keyed by
// CacheKey, bounded by entry count and — when maxBytes > 0 — by total
// payload bytes, so a cache of a few huge sweep reports cannot dwarf the
// heap the way a pure entry cap would allow. Entries are immutable byte
// slices, so a cached report can be handed to concurrent readers without
// copying.
type reportCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64      // sum of cached payload lengths
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
}

type cacheEntry struct {
	key  string
	data []byte
}

func newReportCache(capacity int, maxBytes int64) *reportCache {
	return &reportCache{cap: capacity, maxBytes: maxBytes, ll: list.New(), m: map[string]*list.Element{}}
}

// get returns the cached report for key, refreshing its recency.
func (c *reportCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put stores data under key, evicting least recently used entries while
// over the entry cap or the byte bound. A zero or negative capacity
// disables the cache; an entry larger than the whole byte bound is not
// cached at all (it would evict everything and still not fit).
func (c *reportCache) put(key string, data []byte) {
	if c.cap <= 0 {
		return
	}
	if c.maxBytes > 0 && int64(len(data)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	for c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.m, e.key)
		c.bytes -= int64(len(e.data))
	}
}

// size returns the number of cached reports.
func (c *reportCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// bytesUsed returns the total cached payload bytes.
func (c *reportCache) bytesUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// CacheKey is the content address of one analysis: the SHA-256 of the
// kernel's canonical SASS text, the target architecture tag, the launch
// fingerprint, and the analysis options that change the report.
//
// The launch fingerprint exists because the same kernel SASS produces
// different reports at different problem scales once the simulator runs:
// a workload's grid dimensions and memory traffic depend on the scale,
// which never appears in the machine code. Static (dry-run) analyses use
// the fixed fingerprint "static" — there the report depends only on the
// kernel — so identical kernels share one entry regardless of whether
// they arrived as a workload name, SASS text, or a cubin.
//
// verify distinguishes reports with counterfactual Verification blocks
// from plain ones: the same analysis with verification enabled carries
// extra measured data, so the two must not share a cache entry. The same
// holds for sensitivity (perturbation-sweep blocks plus payoff-ranked
// ordering) and opts.StallSlices (backward producer chains): each knob
// changes the report bytes, so each is part of the address.
func CacheKey(canonicalSASS, archTag, launch string, opts scout.Options, verify, sensitivity bool) string {
	h := sha256.New()
	io.WriteString(h, "gpuscoutd-report-v3\x00")
	io.WriteString(h, archTag)
	h.Write([]byte{0})
	io.WriteString(h, launch)
	h.Write([]byte{0})
	// opts.Sim.Workers is deliberately not fingerprinted: the simulator
	// guarantees bit-identical results for every worker count, so a
	// report computed at any parallelism serves requests at all of them.
	fmt.Fprintf(h, "dryrun=%t period=%g samplesms=%d maxcycles=%g verify=%t sensitivity=%t slices=%t",
		opts.DryRun, opts.SamplingPeriod, opts.Sim.SampleSMs, opts.Sim.MaxCycles,
		verify, sensitivity, opts.StallSlices)
	h.Write([]byte{0})
	io.WriteString(h, canonicalSASS)
	return hex.EncodeToString(h.Sum(nil))
}
