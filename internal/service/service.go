// Package service implements gpuscoutd, the long-lived GPUscout analysis
// service: a bounded job queue feeding a worker pool, a content-addressed
// LRU report cache in front of the scout.Analyze pipeline, and a
// hand-rolled Prometheus-format metrics registry — stdlib only.
//
// The data path is queue → pool → cache → pipeline: POST /v1/analyze
// enqueues a job (429 + Retry-After when the queue is full), a worker
// resolves the kernel (built-in workload, uploaded SASS text, or uploaded
// cubin), looks its canonical SASS up in the cache, and only on a miss
// runs the full analysis — under a per-job context whose timeout or
// cancellation interrupts the simulated launch itself.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpuscout/internal/advisor"
	"gpuscout/internal/cubin"
	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// Config tunes the service. The zero value selects sane defaults.
type Config struct {
	// Workers is the number of concurrent analysis workers
	// (default: GOMAXPROCS, capped at 8).
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// beyond it, submissions are shed with ErrQueueFull (default 64).
	QueueDepth int
	// CacheEntries bounds the report cache (default 256; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout bounds each job unless the request overrides it
	// (default 2m).
	DefaultTimeout time.Duration
	// MaxUploadBytes caps the POST /v1/analyze body (default 8 MiB).
	MaxUploadBytes int64
	// MaxJobsRetained caps how many finished jobs are kept for
	// GET /v1/jobs/{id} before the oldest are pruned (default 1024).
	MaxJobsRetained int
	// SimWorkers is the default per-launch simulation parallelism
	// (sim.Config.Workers) for jobs that don't set sim_workers. The
	// default is 1: the pool already runs Workers jobs concurrently, so
	// fanning each launch out across cores would oversubscribe the
	// machine; raise it on a lightly loaded daemon to trade job
	// throughput for single-job latency. Results are identical either
	// way (the simulator's determinism guarantee).
	SimWorkers int
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 8 << 20
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 1024
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
}

// Service is the gpuscoutd core, independent of HTTP: Submit feeds the
// queue, Handler (server.go) wraps it for the wire.
type Service struct {
	cfg   Config
	pool  *pool
	cache *reportCache
	reg   *Registry
	start time.Time

	nextID atomic.Uint64

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for pruning finished jobs

	// Metrics (the observability surface of the queue → pool → cache →
	// pipeline path).
	jobsInflight  *Gauge
	jobsFinished  map[State]*Counter
	cacheHits     *Counter
	cacheMisses   *Counter
	stageDuration map[string]*Histogram
	simWall       *Histogram
	simSpeedup    *Histogram
	verifications map[scout.Verdict]*Counter
}

// New builds a Service and starts its worker pool.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	s := &Service{
		cfg:   cfg,
		cache: newReportCache(cfg.CacheEntries),
		reg:   NewRegistry(),
		start: time.Now(),
		jobs:  map[string]*Job{},
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execute)

	r := s.reg
	r.NewGaugeFunc("gpuscoutd_queue_depth",
		"Jobs accepted and waiting for a worker.",
		func() float64 { return float64(s.pool.depth()) })
	s.jobsInflight = r.NewGauge("gpuscoutd_jobs_inflight",
		"Jobs currently executing on the worker pool.")
	s.jobsFinished = map[State]*Counter{}
	for _, st := range []State{StateDone, StateFailed, StateCancelled, StateTimeout} {
		s.jobsFinished[st] = r.NewCounter("gpuscoutd_jobs_finished_total",
			"Jobs finished, by terminal state.", Label{"state", string(st)})
	}
	s.cacheHits = r.NewCounter("gpuscoutd_cache_hits_total",
		"Analyses served from the content-addressed report cache.")
	s.cacheMisses = r.NewCounter("gpuscoutd_cache_misses_total",
		"Analyses that had to run the pipeline.")
	r.NewGaugeFunc("gpuscoutd_cache_entries",
		"Reports currently cached.",
		func() float64 { return float64(s.cache.size()) })
	s.stageDuration = map[string]*Histogram{}
	for _, stage := range []string{"build", "analyze", "verify", "encode"} {
		s.stageDuration[stage] = r.NewHistogram("gpuscoutd_stage_seconds",
			"Per-stage job latency: build (kernel resolution), analyze (pipeline), verify (counterfactual re-runs), encode (report JSON).",
			nil, Label{"stage", stage})
	}
	r.NewGaugeFunc("gpuscoutd_sim_workers_default",
		"Per-launch simulation parallelism applied to jobs that don't set sim_workers.",
		func() float64 { return float64(s.cfg.SimWorkers) })
	s.verifications = map[scout.Verdict]*Counter{}
	for _, v := range []scout.Verdict{scout.VerdictConfirmed, scout.VerdictNeutral, scout.VerdictRefuted} {
		s.verifications[v] = r.NewCounter("gpuscoutd_verifications_total",
			"Counterfactually verified recommendations, by measured verdict.",
			Label{"verdict", string(v)})
	}
	s.simWall = r.NewHistogram("gpuscoutd_sim_wall_seconds",
		"Host wall time of each simulated launch's SM phase.", nil)
	s.simSpeedup = r.NewHistogram("gpuscoutd_sim_speedup",
		"Achieved parallel speedup per simulated launch (aggregate per-SM time over wall time).",
		[]float64{1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16})
	return s, nil
}

// Metrics exposes the registry (for /metrics and tests).
func (s *Service) Metrics() *Registry { return s.reg }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the workers to drain.
func (s *Service) Close() {
	s.jobsMu.Lock()
	for _, j := range s.jobs {
		j.Cancel()
	}
	s.jobsMu.Unlock()
	s.pool.shutdown()
}

// Submit validates and enqueues an analysis job. It returns ErrQueueFull
// when the bounded queue is at capacity and ErrClosed during shutdown;
// any other error is a request validation failure.
func (s *Service) Submit(req AnalyzeRequest) (*Job, error) {
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	id := fmt.Sprintf("j%08d", s.nextID.Add(1))
	j := newJob(id, req, ctx, cancel)

	s.jobsMu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.jobsMu.Unlock()

	if err := s.pool.trySubmit(j); err != nil {
		cancel()
		s.jobsMu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.jobsMu.Unlock()
		return nil, err
	}
	return j, nil
}

// Job looks up a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// pruneLocked evicts the oldest *finished* jobs once over the retention
// cap; queued and running jobs are never evicted.
func (s *Service) pruneLocked() {
	if len(s.jobs) <= s.cfg.MaxJobsRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobsRetained && j.StateNow().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// execute runs one job on a worker goroutine: resolve the kernel, consult
// the cache, run the pipeline, encode and cache the report.
func (s *Service) execute(j *Job) {
	if err := j.ctx.Err(); err != nil {
		j.finish(s.countFinish(j.interrupted()), nil, "aborted before start: "+err.Error(), false)
		return
	}
	j.markRunning()
	s.jobsInflight.Add(1)
	defer s.jobsInflight.Add(-1)

	// Stage 1: build — resolve the request to a kernel + launch harness.
	t0 := time.Now()
	k, arch, opts, run, err := s.resolve(j.req)
	s.stageDuration["build"].Observe(time.Since(t0).Seconds())
	if err != nil {
		j.finish(s.countFinish(StateFailed), nil, err.Error(), false)
		return
	}

	// Stage 2: cache probe on the canonical SASS text. A simulated
	// workload run keys on its launch configuration too — the same SASS
	// yields different reports at different problem scales.
	launch := "static"
	if run != nil {
		launch = fmt.Sprintf("workload=%s scale=%d", j.req.Workload, j.req.Scale)
	}
	key := CacheKey(sass.Print(k), arch.SM, launch, opts, j.req.Verify)
	if data, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		j.finish(s.countFinish(StateDone), data, "", true)
		return
	}
	s.cacheMisses.Inc()

	// Stage 3: the three-pillar pipeline, under the job's context.
	t1 := time.Now()
	rep, err := scout.AnalyzeContext(j.ctx, arch, k, run, opts)
	s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())
	if err != nil {
		if j.ctx.Err() != nil {
			j.finish(s.countFinish(j.interrupted()), nil, err.Error(), false)
		} else {
			j.finish(s.countFinish(StateFailed), nil, err.Error(), false)
		}
		return
	}

	// Stage 3b: counterfactual verification — re-execute each paired
	// optimized variant under the same sim config and the same job
	// context, so the per-job timeout covers the variant runs too.
	if j.req.Verify {
		t := time.Now()
		sum, err := advisor.Verify(j.ctx, rep, j.req.Workload, j.req.Scale, arch, opts.Sim)
		s.stageDuration["verify"].Observe(time.Since(t).Seconds())
		if err != nil {
			if j.ctx.Err() != nil {
				j.finish(s.countFinish(j.interrupted()), nil, err.Error(), false)
			} else {
				j.finish(s.countFinish(StateFailed), nil, "verify: "+err.Error(), false)
			}
			return
		}
		s.verifications[scout.VerdictConfirmed].Add(uint64(sum.Confirmed))
		s.verifications[scout.VerdictNeutral].Add(uint64(sum.Neutral))
		s.verifications[scout.VerdictRefuted].Add(uint64(sum.Refuted))
	}

	// Stage 4: encode once, cache the immutable bytes.
	t2 := time.Now()
	data, err := rep.MarshalJSON()
	s.stageDuration["encode"].Observe(time.Since(t2).Seconds())
	if err != nil {
		j.finish(s.countFinish(StateFailed), nil, "encode report: "+err.Error(), false)
		return
	}
	s.cache.put(key, data)
	j.finish(s.countFinish(StateDone), data, "", false)
}

// countFinish bumps the per-state finished counter and passes the state
// through, so finish call sites stay one-liners.
func (s *Service) countFinish(st State) State {
	if c, ok := s.jobsFinished[st]; ok {
		c.Inc()
	}
	return st
}

// resolve turns a request into (kernel, arch, options, run func). For
// uploaded SASS and cubins there is no launch harness, so the analysis is
// forced static (DryRun) — matching the CLI's behavior for -sass/-cubin.
func (s *Service) resolve(req AnalyzeRequest) (*sass.Kernel, gpu.Arch, scout.Options, scout.RunContextFunc, error) {
	archName := req.Arch
	if archName == "" {
		archName = "sm_70"
	}
	arch, err := gpu.ByName(archName)
	if err != nil {
		return nil, gpu.Arch{}, scout.Options{}, nil, err
	}
	simWorkers := req.SimWorkers
	if simWorkers <= 0 {
		simWorkers = s.cfg.SimWorkers
	}
	opts := scout.Options{
		DryRun:         req.DryRun,
		SamplingPeriod: req.SamplingPeriod,
		Sim:            sim.Config{SampleSMs: req.SampleSMs, Workers: simWorkers},
	}

	switch {
	case req.Workload != "":
		w, err := workloads.Build(req.Workload, req.Scale)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, err
		}
		var run scout.RunContextFunc
		if !opts.DryRun {
			run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
				dev := sim.NewDevice(arch)
				res, err := workloads.ExecuteContext(ctx, w, dev, cfg)
				if err == nil {
					s.simWall.Observe(res.Host.WallSeconds)
					s.simSpeedup.Observe(res.Host.Speedup())
				}
				return res, err
			}
		}
		return w.Kernel, arch, opts, run, nil

	case req.SASS != "":
		k, err := sass.Parse(req.SASS)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, fmt.Errorf("parse SASS: %w", err)
		}
		opts.DryRun = true
		return k, arch, opts, nil, nil

	default: // cubin (validate guarantees exactly one source)
		bin, err := cubin.Decode(req.Cubin)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, err
		}
		if len(bin.Kernels) == 0 {
			return nil, gpu.Arch{}, scout.Options{}, nil, fmt.Errorf("cubin holds no kernels")
		}
		k := bin.Kernels[0]
		if req.Kernel != "" {
			if k, err = bin.Kernel(req.Kernel); err != nil {
				return nil, gpu.Arch{}, scout.Options{}, nil, err
			}
		}
		opts.DryRun = true
		return k, arch, opts, nil, nil
	}
}
