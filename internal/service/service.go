// Package service implements gpuscoutd, the long-lived GPUscout analysis
// service: a bounded job queue feeding a worker pool, a content-addressed
// LRU report cache in front of the scout.Analyze pipeline, and a
// hand-rolled Prometheus-format metrics registry — stdlib only.
//
// The data path is queue → pool → cache → pipeline: POST /v1/analyze
// enqueues a job (429 + Retry-After when the queue is full), a worker
// resolves the kernel (built-in workload, uploaded SASS text, or uploaded
// cubin), looks its canonical SASS up in the cache, and only on a miss
// runs the full analysis — under a per-job context whose timeout or
// cancellation interrupts the simulated launch itself.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpuscout/internal/advisor"
	"gpuscout/internal/cubin"
	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/store"
	"gpuscout/internal/workloads"
)

// ErrDurability is returned by Submit when the write-ahead journal
// cannot record the job: the service refuses to acknowledge work it
// could lose across a crash. The HTTP layer maps it to 503.
var ErrDurability = errors.New("service: journal write failed; job not accepted")

// Config tunes the service. The zero value selects sane defaults.
type Config struct {
	// Workers is the number of concurrent analysis workers
	// (default: GOMAXPROCS, capped at 8).
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// beyond it, submissions are shed with ErrQueueFull (default 64).
	QueueDepth int
	// CacheEntries bounds the report cache (default 256; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout bounds each job unless the request overrides it
	// (default 2m).
	DefaultTimeout time.Duration
	// MaxUploadBytes caps the POST /v1/analyze body (default 8 MiB).
	MaxUploadBytes int64
	// MaxJobsRetained caps how many finished jobs are kept for
	// GET /v1/jobs/{id} before the oldest are pruned (default 1024).
	MaxJobsRetained int
	// StageBudgets splits each job's timeout across pipeline stages so a
	// slow stage degrades the report instead of timing the job out. The
	// zero value applies scout.DefaultStageBudgets (parse 5% / sim 55% /
	// scout 15% / verify 25%); set Disabled for whole-deadline semantics.
	StageBudgets scout.StageBudgets
	// RetryAttempts is the total number of execution attempts for a job
	// whose failure is transient — a recovered panic or injected fault
	// (default 2; 1 disables retrying).
	RetryAttempts int
	// RetryBackoff is the base delay before a retry; attempt n waits
	// base·2^(n-1) capped at 2s, upper half jittered (default 100ms).
	RetryBackoff time.Duration
	// QuarantineAfter opens the per-fingerprint circuit breaker after
	// this many consecutive job failures, so poison inputs are rejected
	// at Submit instead of re-burning workers (default 2; negative
	// disables quarantine).
	QuarantineAfter int
	// QuarantineCooldown is how long an open breaker rejects a
	// fingerprint before admitting a probe attempt (default 30s).
	QuarantineCooldown time.Duration
	// Mode labels this process's role in a deployment ("standalone",
	// "worker" behind a coordinator, or "coordinator"); it is surfaced
	// by /healthz so operators and cluster membership checks can tell
	// replicas apart (default "standalone").
	Mode string
	// MaxBatchItems caps how many requests one POST /v1/analyze/batch
	// body may carry (default 4096).
	MaxBatchItems int
	// PeerFill, when set, is consulted after a local cache miss and
	// before the pipeline runs: given the job's input fingerprint and
	// report cache key it may return the marshaled report bytes from a
	// peer replica's cache (the cluster's two-tier cache-fill protocol).
	// A returned report is stored locally and served as a cache hit; a
	// miss, error, or timeout inside the hook silently falls through to
	// local simulation — peer fill is an optimization, never a
	// dependency.
	PeerFill func(ctx context.Context, fingerprint, cacheKey string) ([]byte, bool)
	// Store, when set, is the crash-safe persistence layer under
	// -data-dir: accepted jobs are journaled before they are
	// acknowledged (and re-enqueued after a restart), clean reports are
	// written through to the content-addressed disk store (probed
	// between the memory cache and peer fill), and quarantine-breaker
	// state survives restarts. Nil runs the service purely in memory.
	// The caller owns the store's lifecycle and closes it after Close.
	Store *store.Store
	// CacheMaxBytes additionally bounds the in-memory report cache by
	// total payload bytes (0 = entries-only bound).
	CacheMaxBytes int64
	// SimWorkers is the default per-launch simulation parallelism
	// (sim.Config.Workers) for jobs that don't set sim_workers. The
	// default is 1: the pool already runs Workers jobs concurrently, so
	// fanning each launch out across cores would oversubscribe the
	// machine; raise it on a lightly loaded daemon to trade job
	// throughput for single-job latency. Results are identical either
	// way (the simulator's determinism guarantee).
	SimWorkers int
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 8 << 20
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 1024
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
	if c.Mode == "" {
		c.Mode = "standalone"
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 4096
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 2
	} else if c.QuarantineAfter < 0 {
		c.QuarantineAfter = 0 // disabled
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = 30 * time.Second
	}
}

// Service is the gpuscoutd core, independent of HTTP: Submit feeds the
// queue, Handler (server.go) wraps it for the wire.
type Service struct {
	cfg        Config
	pool       *pool
	cache      *reportCache
	reg        *Registry
	start      time.Time
	breaker    *breaker
	durations  *durationRing
	draining   atomic.Bool // readiness flipped off before shutdown
	recovering atomic.Bool // journal replay re-enqueueing jobs; /readyz 503

	nextID         atomic.Uint64
	recoveredCount atomic.Uint64 // jobs re-enqueued from the journal at startup

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for pruning finished jobs

	// Metrics (the observability surface of the queue → pool → cache →
	// pipeline path).
	jobsInflight  *Gauge
	jobsFinished  map[State]*Counter
	cacheHits     *Counter
	cacheMisses   *Counter
	peerFillHits  *Counter
	peerFillMiss  *Counter
	peerServes    *Counter
	batchRequests *Counter
	batchItems    *Counter
	batchDeduped  *Counter
	stageDuration map[string]*Histogram
	simWall       *Histogram
	simSpeedup    *Histogram
	verifications map[scout.Verdict]*Counter
	stagePanics   map[string]*Counter
	retries       *Counter
	quarantined   *Counter
	storeHits     *Counter
	storeMisses   *Counter
	recoveredJobs *Counter

	degradedMu sync.Mutex
	degraded   map[string]*Counter // gpuscoutd_degraded_reports_total, by kind
}

// New builds a Service and starts its worker pool.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	s := &Service{
		cfg:       cfg,
		cache:     newReportCache(cfg.CacheEntries, cfg.CacheMaxBytes),
		reg:       NewRegistry(),
		start:     time.Now(),
		jobs:      map[string]*Job{},
		breaker:   newBreaker(cfg.QuarantineAfter, cfg.QuarantineCooldown),
		durations: newDurationRing(32),
		degraded:  map[string]*Counter{},
	}
	// Durable state first: reload the breaker (a restart must not
	// un-quarantine a poison input) and resume the job-ID sequence past
	// every handle the journal has ever recorded, so recovered jobs keep
	// their IDs and new jobs cannot collide with them.
	var pendingJobs []store.PendingJob
	if st := cfg.Store; st != nil {
		if data, ok := st.LoadBreaker(); ok {
			s.breaker.importJSON(data)
		}
		if last := st.LastJobID(); strings.HasPrefix(last, "j") {
			if n, err := strconv.ParseUint(last[1:], 10, 64); err == nil {
				s.nextID.Store(n)
			}
		}
		pendingJobs = st.Pending()
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execute)

	r := s.reg
	r.NewGaugeFunc("gpuscoutd_queue_depth",
		"Jobs accepted and waiting for a worker.",
		func() float64 { return float64(s.pool.depth()) })
	s.jobsInflight = r.NewGauge("gpuscoutd_jobs_inflight",
		"Jobs currently executing on the worker pool.")
	s.jobsFinished = map[State]*Counter{}
	for _, st := range []State{StateDone, StateFailed, StateCancelled, StateTimeout} {
		s.jobsFinished[st] = r.NewCounter("gpuscoutd_jobs_finished_total",
			"Jobs finished, by terminal state.", Label{"state", string(st)})
	}
	s.cacheHits = r.NewCounter("gpuscoutd_cache_hits_total",
		"Analyses served from the content-addressed report cache.")
	s.cacheMisses = r.NewCounter("gpuscoutd_cache_misses_total",
		"Analyses that had to run the pipeline.")
	r.NewGaugeFunc("gpuscoutd_cache_entries",
		"Reports currently cached.",
		func() float64 { return float64(s.cache.size()) })
	r.NewGaugeFunc("gpuscoutd_cache_bytes",
		"Total payload bytes held by the in-memory report cache.",
		func() float64 { return float64(s.cache.bytesUsed()) })
	s.storeHits = r.NewCounter("gpuscoutd_store_hits_total",
		"Memory-cache misses served whole from the persistent report store (warm restarts, rebalanced keys).")
	s.storeMisses = r.NewCounter("gpuscoutd_store_misses_total",
		"Memory-cache misses that also missed the persistent report store.")
	s.recoveredJobs = r.NewCounter("gpuscoutd_recovered_jobs_total",
		"Journaled jobs re-enqueued by startup recovery.")
	if st := cfg.Store; st != nil {
		r.NewGaugeFunc("gpuscoutd_store_report_bytes",
			"Bytes held by the persistent report store.",
			func() float64 { return float64(st.Stats().ReportBytes) })
		r.NewGaugeFunc("gpuscoutd_store_report_entries",
			"Reports held by the persistent report store.",
			func() float64 { return float64(st.Stats().ReportEntries) })
		r.NewGaugeFunc("gpuscoutd_store_journal_records",
			"Frames in the write-ahead job journal.",
			func() float64 { return float64(st.Stats().JournalRecords) })
		r.NewGaugeFunc("gpuscoutd_store_journal_lag",
			"Journal records beyond the live job set — the garbage the next compaction reclaims.",
			func() float64 { return float64(st.Stats().JournalLag) })
		r.NewGaugeFunc("gpuscoutd_store_corrupt_quarantined",
			"Report entries quarantined to corrupt/ since the store opened.",
			func() float64 { return float64(st.Stats().CorruptQuarantined) })
	}
	s.peerFillHits = r.NewCounter("gpuscoutd_peer_fill_hits_total",
		"Local cache misses served by a peer replica's cache (two-tier fill).")
	s.peerFillMiss = r.NewCounter("gpuscoutd_peer_fill_misses_total",
		"Peer cache-fill attempts that fell through to local simulation.")
	s.peerServes = r.NewCounter("gpuscoutd_peer_cache_serves_total",
		"Cache entries served to peer replicas via /internal/v1/cache.")
	s.batchRequests = r.NewCounter("gpuscoutd_batch_requests_total",
		"POST /v1/analyze/batch requests accepted.")
	s.batchItems = r.NewCounter("gpuscoutd_batch_items_total",
		"Analysis requests carried inside batch bodies.")
	s.batchDeduped = r.NewCounter("gpuscoutd_batch_deduped_total",
		"Batch items that shared a fingerprint with an earlier item in the same batch and were folded into its job before enqueue.")
	s.stageDuration = map[string]*Histogram{}
	for _, stage := range []string{"build", "analyze", "verify", "sweep", "encode"} {
		s.stageDuration[stage] = r.NewHistogram("gpuscoutd_stage_seconds",
			"Per-stage job latency: build (kernel resolution), analyze (pipeline), verify (counterfactual re-runs), sweep (perturbation re-simulation), encode (report JSON).",
			nil, Label{"stage", stage})
	}
	r.NewGaugeFunc("gpuscoutd_sim_workers_default",
		"Per-launch simulation parallelism applied to jobs that don't set sim_workers.",
		func() float64 { return float64(s.cfg.SimWorkers) })
	s.verifications = map[scout.Verdict]*Counter{}
	for _, v := range []scout.Verdict{scout.VerdictConfirmed, scout.VerdictNeutral, scout.VerdictRefuted} {
		s.verifications[v] = r.NewCounter("gpuscoutd_verifications_total",
			"Counterfactually verified recommendations, by measured verdict.",
			Label{"verdict", string(v)})
	}
	s.simWall = r.NewHistogram("gpuscoutd_sim_wall_seconds",
		"Host wall time of each simulated launch's SM phase.", nil)
	s.simSpeedup = r.NewHistogram("gpuscoutd_sim_speedup",
		"Achieved parallel speedup per simulated launch (aggregate per-SM time over wall time).",
		[]float64{1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16})
	s.stagePanics = map[string]*Counter{}
	for _, stage := range []string{scout.StageParse, scout.StageScout, scout.StageSim, scout.StageVerify} {
		s.stagePanics[stage] = r.NewCounter("gpuscoutd_stage_panics_total",
			"Panics recovered inside the pipeline, by stage.", Label{"stage", stage})
	}
	s.retries = r.NewCounter("gpuscoutd_retries_total",
		"Job attempts retried after a transient stage failure.")
	s.quarantined = r.NewCounter("gpuscoutd_quarantined_total",
		"Submissions rejected because the input fingerprint is quarantined.")
	r.NewGaugeFunc("gpuscoutd_quarantine_open",
		"Input fingerprints currently held by the circuit breaker.",
		func() float64 { return float64(s.breaker.openCount()) })
	// Pre-register the common degraded-report kinds so the series render
	// from zero; rarer kinds appear on first use.
	for _, kind := range []string{
		"sim_timeout", "sim_panic", "sim_error",
		"scout_timeout", "scout_panic", "scout_error",
		"verify_timeout", "verify_panic", "verify_error",
	} {
		s.degradedCounter(kind)
	}
	// Startup recovery: re-enqueue every journaled job that never reached
	// a tombstone. /readyz stays 503 until the replay has drained into
	// the queue; jobs whose reports already landed on disk resolve as
	// instant store hits instead of re-simulating.
	if len(pendingJobs) > 0 {
		s.recovering.Store(true)
		go s.recoverJobs(pendingJobs)
	}
	return s, nil
}

// recoverJobs replays the journal's pending set through the normal
// execution path. Each job keeps its original ID (clients may still
// hold the handle), is re-validated (the journal could have been
// written by an older build), and respects the reloaded quarantine
// breaker — a poison input does not get a free re-run just because the
// daemon restarted mid-job.
func (s *Service) recoverJobs(pending []store.PendingJob) {
	defer s.recovering.Store(false)
	st := s.cfg.Store
	for _, p := range pending {
		var req AnalyzeRequest
		if err := json.Unmarshal(p.Req, &req); err != nil {
			st.AppendTombstone(p.ID, string(StateFailed))
			continue
		}
		if err := req.validate(); err != nil {
			st.AppendTombstone(p.ID, string(StateFailed))
			continue
		}
		if err := s.breaker.check(req.Fingerprint()); err != nil {
			s.quarantined.Inc()
			st.AppendTombstone(p.ID, string(StateCancelled))
			continue
		}
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		j := newJob(p.ID, req, ctx, cancel)
		j.fingerprint = req.Fingerprint()
		j.timeout = timeout
		j.onFinish = s.tombstoneHook(p.ID)

		s.jobsMu.Lock()
		s.jobs[p.ID] = j
		s.order = append(s.order, p.ID)
		s.pruneLocked()
		s.jobsMu.Unlock()

		// The queue may be smaller than the recovery backlog: wait for
		// drain rather than dropping acknowledged work.
		for {
			err := s.pool.trySubmit(j)
			if err == nil {
				s.recoveredJobs.Inc()
				s.recoveredCount.Add(1)
				break
			}
			if errors.Is(err, ErrClosed) {
				cancel()
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// tombstoneHook journals a job's terminal state; attached to every job
// when a store is configured.
func (s *Service) tombstoneHook(id string) func(State) {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	return func(terminal State) { st.AppendTombstone(id, string(terminal)) }
}

// persistBreaker writes the breaker's current state through the store,
// outside the breaker's lock. Failures are swallowed: breaker
// persistence is hardening, not a correctness dependency.
func (s *Service) persistBreaker() {
	if s.cfg.Store == nil {
		return
	}
	_ = s.cfg.Store.SaveBreaker(s.breaker.exportJSON())
}

// RecoveredJobs reports how many journaled jobs startup recovery has
// re-enqueued (surfaced by /healthz).
func (s *Service) RecoveredJobs() uint64 { return s.recoveredCount.Load() }

// degradedCounter finds or registers the degraded-report counter for one
// "<stage>_<kind>" label value.
func (s *Service) degradedCounter(kind string) *Counter {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	c, ok := s.degraded[kind]
	if !ok {
		c = s.reg.NewCounter("gpuscoutd_degraded_reports_total",
			"Reports shipped with a degradation ledger, by stage_kind.",
			Label{"kind", kind})
		s.degraded[kind] = c
	}
	return c
}

// Metrics exposes the registry (for /metrics and tests).
func (s *Service) Metrics() *Registry { return s.reg }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the workers to drain. Readiness flips off first so a load
// balancer stops routing before the queue starts rejecting.
func (s *Service) Close() {
	s.BeginShutdown()
	s.jobsMu.Lock()
	for _, j := range s.jobs {
		j.Cancel()
	}
	s.jobsMu.Unlock()
	s.pool.shutdown()
}

// BeginShutdown flips /readyz to 503 without stopping work: the graceful
// shutdown sequence is BeginShutdown → drain the HTTP server → Close.
func (s *Service) BeginShutdown() { s.draining.Store(true) }

// Ready reports whether the service should receive new traffic, with the
// reason when it should not.
func (s *Service) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "shutting down"
	}
	if s.recovering.Load() {
		return false, "recovering: replaying job journal"
	}
	if d := s.pool.depth(); d >= s.cfg.QueueDepth {
		return false, fmt.Sprintf("queue saturated (%d/%d)", d, s.cfg.QueueDepth)
	}
	return true, "ok"
}

// retryAfterSeconds estimates when a shed client should come back:
// (queued jobs + 1) × the p75 of recent job durations, spread over the
// worker count, clamped to [1, 30] seconds. p75 rather than the mean:
// durations are skewed (cache hits vs cold simulations), and a mean
// dominated by hits tells clients to come back long before the queue of
// cold jobs can possibly have drained.
func (s *Service) retryAfterSeconds() int {
	est75 := s.durations.quantile(0.75)
	if est75 <= 0 {
		est75 = time.Second
	}
	est := float64(est75) * float64(s.pool.depth()+1) / float64(s.cfg.Workers)
	secs := int(math.Ceil(est / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Submit validates and enqueues an analysis job. It returns ErrQueueFull
// when the bounded queue is at capacity and ErrClosed during shutdown;
// any other error is a request validation failure.
func (s *Service) Submit(req AnalyzeRequest) (*Job, error) {
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	fp := req.Fingerprint()
	if err := s.breaker.check(fp); err != nil {
		s.quarantined.Inc()
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	id := fmt.Sprintf("j%08d", s.nextID.Add(1))
	j := newJob(id, req, ctx, cancel)
	j.fingerprint = fp
	j.timeout = timeout
	j.onFinish = s.tombstoneHook(id)

	s.jobsMu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.jobsMu.Unlock()

	rollback := func() {
		cancel()
		s.jobsMu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.jobsMu.Unlock()
	}

	// Write-ahead: the accept record must be on disk before the client
	// hears the job ID. A journal that cannot take the record means the
	// acknowledgement would be a lie — refuse the job instead.
	if st := s.cfg.Store; st != nil {
		reqJSON, err := json.Marshal(req)
		if err == nil {
			err = st.AppendAccept(id, fp, reqJSON)
		}
		if err != nil {
			rollback()
			return nil, fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}

	if err := s.pool.trySubmit(j); err != nil {
		rollback()
		if st := s.cfg.Store; st != nil {
			// The accept is journaled but the job was shed: tombstone it
			// so a restart does not resurrect a job the client was told
			// to retry. Best-effort — a lost tombstone only costs one
			// redundant re-run.
			st.AppendTombstone(id, string(StateCancelled))
		}
		return nil, err
	}
	return j, nil
}

// Job looks up a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// pruneLocked evicts the oldest *finished* jobs once over the retention
// cap; queued and running jobs are never evicted.
func (s *Service) pruneLocked() {
	if len(s.jobs) <= s.cfg.MaxJobsRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobsRetained && j.StateNow().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// execute runs one job on a worker goroutine, retrying transient stage
// failures (recovered panics, injected faults) with capped exponential
// backoff + jitter, and feeding the quarantine breaker on final failure.
func (s *Service) execute(j *Job) {
	if err := j.ctx.Err(); err != nil {
		s.breaker.release(j.fingerprint)
		j.finish(s.countFinish(j.interrupted()), nil, "aborted before start: "+err.Error(), false)
		return
	}
	j.markRunning()
	s.jobsInflight.Add(1)
	defer s.jobsInflight.Add(-1)
	defer func(t time.Time) { s.durations.record(time.Since(t)) }(time.Now())

	var lastErr error
	for attempt := 1; ; attempt++ {
		j.setAttempts(attempt)
		err := s.executeAttempt(j)
		if err == nil {
			if s.breaker.recordSuccess(j.fingerprint) {
				s.persistBreaker()
			}
			return
		}
		lastErr = err
		s.notePanic(err)
		if j.ctx.Err() != nil {
			s.breaker.release(j.fingerprint)
			j.finish(s.countFinish(j.interrupted()), nil, err.Error(), false)
			return
		}
		if attempt >= s.cfg.RetryAttempts || !scout.TransientError(err) {
			break
		}
		s.retries.Inc()
		select {
		case <-time.After(backoffDelay(s.cfg.RetryBackoff, 2*time.Second, attempt)):
		case <-j.ctx.Done():
			s.breaker.release(j.fingerprint)
			j.finish(s.countFinish(j.interrupted()), nil, lastErr.Error(), false)
			return
		}
	}
	s.breaker.recordFailure(j.fingerprint, lastErr.Error())
	s.persistBreaker()
	j.finish(s.countFinish(StateFailed), nil, lastErr.Error(), false)
}

// notePanic counts a fatal recovered panic in the stage-panic metric.
// (Panics that were degraded into a shipped report are counted from the
// report's ledger instead.)
func (s *Service) notePanic(err error) {
	var se *scout.StageError
	if errors.As(err, &se) && se.PanicValue != nil {
		if c, ok := s.stagePanics[se.Stage]; ok {
			c.Inc()
		}
	}
}

// storeGet probes the persistent report store after a memory-cache
// miss; a hit is promoted into the memory tier by the caller. Absent a
// store it is a silent miss (no metrics tick — there is no disk tier to
// account for).
func (s *Service) storeGet(key string) ([]byte, bool) {
	st := s.cfg.Store
	if st == nil {
		return nil, false
	}
	data, ok := st.GetReport(key)
	if ok {
		s.storeHits.Inc()
	} else {
		s.storeMisses.Inc()
	}
	return data, ok
}

// storePut writes a clean report through to the persistent store.
// Failures are swallowed: the report was already computed and is being
// returned to the client; losing the disk copy only costs a future
// recompute.
func (s *Service) storePut(key, fingerprint string, data []byte) {
	if st := s.cfg.Store; st != nil {
		_ = st.PutReport(key, fingerprint, data)
	}
}

// executeAttempt is one end-to-end pass at a job: resolve the kernel,
// consult the cache, run the pipeline, encode and cache the report. It
// returns nil when the job reached a terminal state itself; an error
// means the attempt failed and the retry loop decides what happens.
func (s *Service) executeAttempt(j *Job) error {
	if j.req.ArchCompare != "" {
		return s.executeArchCompare(j)
	}
	// Stage 1: build — resolve the request to a kernel + launch harness.
	t0 := time.Now()
	k, arch, opts, run, err := s.resolve(j.req)
	s.stageDuration["build"].Observe(time.Since(t0).Seconds())
	if err != nil {
		return err
	}
	opts.Budgets = s.cfg.StageBudgets

	// Stage 2: cache probe on the canonical SASS text. A simulated
	// workload run keys on its launch configuration too — the same SASS
	// yields different reports at different problem scales.
	launch := "static"
	if run != nil {
		launch = fmt.Sprintf("workload=%s scale=%d", j.req.Workload, j.req.Scale)
	}
	key := CacheKey(sass.Print(k), arch.SM, launch, opts, j.req.Verify, j.req.Sensitivity)
	if data, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		j.finish(s.countFinish(StateDone), data, "", true)
		return nil
	}

	// Stage 2a: persistent-store probe — a warm restart (or a replica
	// rejoining the ring) finds previously computed reports on disk and
	// serves them without re-simulating; the hit is promoted into the
	// memory tier.
	if data, ok := s.storeGet(key); ok {
		s.cache.put(key, data)
		j.finish(s.countFinish(StateDone), data, "", true)
		return nil
	}

	// Stage 2b: peer cache-fill — in a cluster, a key this replica has
	// never seen may already be warm in the ring owner's cache (the key
	// was rebalanced here, or we are taking failover traffic). One
	// bounded peer lookup is far cheaper than re-simulating; any failure
	// falls through to the pipeline.
	if s.cfg.PeerFill != nil {
		if data, ok := s.cfg.PeerFill(j.ctx, j.fingerprint, key); ok && len(data) > 0 {
			s.peerFillHits.Inc()
			s.cache.put(key, data)
			s.storePut(key, j.fingerprint, data)
			j.finish(s.countFinish(StateDone), data, "", true)
			return nil
		}
		s.peerFillMiss.Inc()
	}
	s.cacheMisses.Inc()

	// Stage 3: the three-pillar pipeline, under the job's context. Stage
	// budgets are applied inside: a slow or crashing dynamic pillar comes
	// back as a degraded static report, not an error.
	t1 := time.Now()
	rep, err := scout.AnalyzeContext(j.ctx, arch, k, run, opts)
	s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())
	if err != nil {
		return err
	}

	// Stage 3b: counterfactual verification — re-execute each paired
	// optimized variant under the same sim config, inside the verify
	// budget slice; when the slice expires, remaining findings ship
	// unverified (recorded in the report's ledger by the advisor).
	if j.req.Verify {
		vctx, vcancel := j.ctx, context.CancelFunc(func() {})
		if !s.cfg.StageBudgets.Disabled && j.timeout > 0 {
			vctx, vcancel = context.WithTimeout(j.ctx, s.cfg.StageBudgets.SliceOf(scout.StageVerify, j.timeout))
		}
		t := time.Now()
		sum, err := advisor.Verify(vctx, rep, j.req.Workload, j.req.Scale, arch, opts.Sim)
		vcancel()
		s.stageDuration["verify"].Observe(time.Since(t).Seconds())
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		s.verifications[scout.VerdictConfirmed].Add(uint64(sum.Confirmed))
		s.verifications[scout.VerdictNeutral].Add(uint64(sum.Neutral))
		s.verifications[scout.VerdictRefuted].Add(uint64(sum.Refuted))
	}

	// Stage 3c: sensitivity sweep — re-simulate the workload under the
	// hardware perturbation matrix, attach dominant-resource sensitivity
	// to the report and findings, and re-rank findings by estimated
	// speedup. Shares the verify budget slice (both are re-execution
	// passes on top of the finished report); an expired slice ships the
	// remaining perturbations as ledger entries.
	if j.req.Sensitivity {
		sctx, scancel := j.ctx, context.CancelFunc(func() {})
		if !s.cfg.StageBudgets.Disabled && j.timeout > 0 {
			sctx, scancel = context.WithTimeout(j.ctx, s.cfg.StageBudgets.SliceOf(scout.StageVerify, j.timeout))
		}
		t := time.Now()
		_, err := advisor.Sweep(sctx, rep, j.req.Workload, j.req.Scale, arch, opts.Sim)
		scancel()
		s.stageDuration["sweep"].Observe(time.Since(t).Seconds())
		if err != nil {
			return fmt.Errorf("sensitivity sweep: %w", err)
		}
	}

	// Degradation accounting: every shipped ledger entry is visible in
	// /metrics — one degraded_reports tick per distinct stage_kind, one
	// stage_panics tick per recovered panic.
	if n := len(rep.Degradations); n > 0 {
		kinds := map[string]bool{}
		for _, d := range rep.Degradations {
			kinds[d.Stage+"_"+d.Kind] = true
			if d.Kind == scout.DegradePanic {
				if c, ok := s.stagePanics[d.Stage]; ok {
					c.Inc()
				}
			}
		}
		for kind := range kinds {
			s.degradedCounter(kind).Inc()
		}
		j.setDegradations(n)
	}

	// Stage 4: encode once; cache the immutable bytes — but never a
	// degraded report, so a later identical request gets a chance at the
	// full result.
	t2 := time.Now()
	data, err := rep.MarshalJSON()
	s.stageDuration["encode"].Observe(time.Since(t2).Seconds())
	if err != nil {
		return fmt.Errorf("encode report: %w", err)
	}
	if len(rep.Degradations) == 0 {
		s.cache.put(key, data)
		s.storePut(key, j.fingerprint, data)
	}
	j.finish(s.countFinish(StateDone), data, "", false)
	return nil
}

// executeArchCompare is the cross-arch job path: the workload is lowered
// and analyzed on both requested architectures and the job's report is
// the comparison document (finding deltas plus both full reports).
func (s *Service) executeArchCompare(j *Job) error {
	req := j.req
	baseName := req.Arch
	if baseName == "" {
		baseName = "sm_70"
	}
	baseArch, err := gpu.ByName(baseName)
	if err != nil {
		return err
	}
	otherArch, err := gpu.ByName(req.ArchCompare)
	if err != nil {
		return err
	}
	simWorkers := req.SimWorkers
	if simWorkers <= 0 {
		simWorkers = s.cfg.SimWorkers
	}
	opts := scout.Options{
		DryRun:         req.DryRun,
		SamplingPeriod: req.SamplingPeriod,
		StallSlices:    req.StallSlices,
		Sim:            sim.Config{SampleSMs: req.SampleSMs, Workers: simWorkers},
		Budgets:        s.cfg.StageBudgets,
	}

	// Stage 1: build both lowerings up front — the base kernel's
	// canonical SASS anchors the cache key, and a build error should
	// fail before any simulation runs.
	t0 := time.Now()
	type lowered struct {
		arch gpu.Arch
		w    *workloads.Workload
	}
	var variants [2]lowered
	for i, arch := range []gpu.Arch{baseArch, otherArch} {
		w, err := workloads.BuildArch(req.Workload, req.Scale, arch)
		if err != nil {
			s.stageDuration["build"].Observe(time.Since(t0).Seconds())
			return err
		}
		variants[i] = lowered{arch, w}
	}
	s.stageDuration["build"].Observe(time.Since(t0).Seconds())

	// Stage 2: cache probe. The launch fingerprint carries the second
	// arch tag, so a comparison never shares an entry with the plain
	// report of the same workload.
	launch := fmt.Sprintf("workload=%s scale=%d archcmp=%s", req.Workload, req.Scale, otherArch.SM)
	key := CacheKey(sass.Print(variants[0].w.Kernel), baseArch.SM, launch, opts, req.Verify, req.Sensitivity)
	if data, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		j.finish(s.countFinish(StateDone), data, "", true)
		return nil
	}
	if data, ok := s.storeGet(key); ok {
		s.cache.put(key, data)
		j.finish(s.countFinish(StateDone), data, "", true)
		return nil
	}
	if s.cfg.PeerFill != nil {
		if data, ok := s.cfg.PeerFill(j.ctx, j.fingerprint, key); ok && len(data) > 0 {
			s.peerFillHits.Inc()
			s.cache.put(key, data)
			s.storePut(key, j.fingerprint, data)
			j.finish(s.countFinish(StateDone), data, "", true)
			return nil
		}
		s.peerFillMiss.Inc()
	}
	s.cacheMisses.Inc()

	// Stage 3: both pipelines (and optional verification), sequentially
	// under the job's context.
	t1 := time.Now()
	reps := make([]*scout.Report, 2)
	for i, v := range variants {
		arch, w := v.arch, v.w
		var run scout.RunContextFunc
		if !opts.DryRun {
			run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
				res, err := workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), cfg)
				if err == nil {
					s.simWall.Observe(res.Host.WallSeconds)
					s.simSpeedup.Observe(res.Host.Speedup())
				}
				return res, err
			}
		}
		rep, err := scout.AnalyzeContext(j.ctx, arch, w.Kernel, run, opts)
		if err != nil {
			s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())
			return err
		}
		if req.Verify {
			sum, err := advisor.Verify(j.ctx, rep, req.Workload, req.Scale, arch, opts.Sim)
			if err != nil {
				s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())
				return fmt.Errorf("verify on %s: %w", arch.SM, err)
			}
			s.verifications[scout.VerdictConfirmed].Add(uint64(sum.Confirmed))
			s.verifications[scout.VerdictNeutral].Add(uint64(sum.Neutral))
			s.verifications[scout.VerdictRefuted].Add(uint64(sum.Refuted))
		}
		if req.Sensitivity {
			if _, err := advisor.Sweep(j.ctx, rep, req.Workload, req.Scale, arch, opts.Sim); err != nil {
				s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())
				return fmt.Errorf("sensitivity sweep on %s: %w", arch.SM, err)
			}
		}
		reps[i] = rep
	}
	s.stageDuration["analyze"].Observe(time.Since(t1).Seconds())

	// Stage 4: diff, encode, cache (only clean runs, as in the plain
	// path), finish.
	cmp := scout.CompareReports(reps[0], reps[1])
	t2 := time.Now()
	data, err := cmp.MarshalJSON()
	s.stageDuration["encode"].Observe(time.Since(t2).Seconds())
	if err != nil {
		return fmt.Errorf("encode comparison: %w", err)
	}
	if n := len(reps[0].Degradations) + len(reps[1].Degradations); n > 0 {
		j.setDegradations(n)
	} else {
		s.cache.put(key, data)
		s.storePut(key, j.fingerprint, data)
	}
	j.finish(s.countFinish(StateDone), data, "", false)
	return nil
}

// countFinish bumps the per-state finished counter and passes the state
// through, so finish call sites stay one-liners.
func (s *Service) countFinish(st State) State {
	if c, ok := s.jobsFinished[st]; ok {
		c.Inc()
	}
	return st
}

// siteResolve covers the whole kernel-resolution step (SASS parse, cubin
// decode, workload build); the nested sites register their own names.
var siteResolve = faultinject.Register("service.resolve")

// resolve turns a request into (kernel, arch, options, run func), under
// a parse-stage panic guard so a crash on malformed input becomes a
// typed StageError instead of killing the worker. For uploaded SASS and
// cubins there is no launch harness, so the analysis is forced static
// (DryRun) — matching the CLI's behavior for -sass/-cubin.
func (s *Service) resolve(req AnalyzeRequest) (k *sass.Kernel, arch gpu.Arch, opts scout.Options, run scout.RunContextFunc, err error) {
	err = scout.Guard(scout.StageParse, siteResolve, func() error {
		if e := faultinject.Hit(siteResolve); e != nil {
			return e
		}
		var e error
		k, arch, opts, run, e = s.resolveRequest(req)
		return e
	})
	return k, arch, opts, run, err
}

func (s *Service) resolveRequest(req AnalyzeRequest) (*sass.Kernel, gpu.Arch, scout.Options, scout.RunContextFunc, error) {
	archName := req.Arch
	if archName == "" {
		archName = "sm_70"
	}
	arch, err := gpu.ByName(archName)
	if err != nil {
		return nil, gpu.Arch{}, scout.Options{}, nil, err
	}
	simWorkers := req.SimWorkers
	if simWorkers <= 0 {
		simWorkers = s.cfg.SimWorkers
	}
	opts := scout.Options{
		DryRun:         req.DryRun,
		SamplingPeriod: req.SamplingPeriod,
		StallSlices:    req.StallSlices,
		Sim:            sim.Config{SampleSMs: req.SampleSMs, Workers: simWorkers},
	}

	switch {
	case req.Workload != "":
		w, err := workloads.BuildArch(req.Workload, req.Scale, arch)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, err
		}
		var run scout.RunContextFunc
		if !opts.DryRun {
			run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
				dev := sim.NewDevice(arch)
				res, err := workloads.ExecuteContext(ctx, w, dev, cfg)
				if err == nil {
					s.simWall.Observe(res.Host.WallSeconds)
					s.simSpeedup.Observe(res.Host.Speedup())
				}
				return res, err
			}
		}
		return w.Kernel, arch, opts, run, nil

	case req.SASS != "":
		k, err := sass.Parse(req.SASS)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, fmt.Errorf("parse SASS: %w", err)
		}
		opts.DryRun = true
		return k, arch, opts, nil, nil

	default: // cubin (validate guarantees exactly one source)
		bin, err := cubin.Decode(req.Cubin)
		if err != nil {
			return nil, gpu.Arch{}, scout.Options{}, nil, err
		}
		if len(bin.Kernels) == 0 {
			return nil, gpu.Arch{}, scout.Options{}, nil, fmt.Errorf("cubin holds no kernels")
		}
		k := bin.Kernels[0]
		if req.Kernel != "" {
			if k, err = bin.Kernel(req.Kernel); err != nil {
				return nil, gpu.Arch{}, scout.Options{}, nil, err
			}
		}
		opts.DryRun = true
		return k, arch, opts, nil, nil
	}
}
