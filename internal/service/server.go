package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"gpuscout/internal/workloads"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/analyze            submit a job; ?async=1 returns 202 + job ID
//	POST   /v1/analyze/batch      many requests at once, deduped by fingerprint
//	GET    /v1/jobs/{id}          job status (+ report JSON when done)
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/workloads          list built-in workload names
//	GET    /internal/v1/cache/{key}  peer cache-fill: raw cached report bytes
//	GET    /healthz               liveness probe (200 + build/mode info)
//	GET    /readyz                readiness probe (503 when saturated or draining)
//	GET    /metrics               Prometheus text-format metrics
//
// Builds tagged `faultinject` additionally expose /debug/faultinject for
// arming chaos faults (absent from production builds).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", s.handleAnalyzeBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /internal/v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.registerDebugHandlers(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req AnalyzeRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}

	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the bounded queue is at capacity. Tell the client
		// when to come back — estimated from the queue depth and the mean
		// recent job duration — instead of buffering unboundedly.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDurability):
		// ErrDurability: the write-ahead journal could not record the
		// job, so acknowledging it would risk silent loss — the client
		// should retry against a healthy replica.
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQuarantined):
		// The input's circuit breaker is open: answer immediately with
		// the prior failure instead of occupying a worker. The typed
		// error says when the breaker will admit a probe.
		var qe *QuarantineError
		if errors.As(err, &qe) && qe.RetryAfter > 0 {
			secs := int(qe.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if async := r.URL.Query().Get("async"); async != "" && async != "0" {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"job_id":     j.ID,
			"status_url": "/v1/jobs/" + j.ID,
		})
		return
	}

	// Synchronous: wait for the job, but give up (and cancel it) if the
	// client disconnects — nobody is left to read the report.
	select {
	case <-j.Done():
		writeJSON(w, statusCode(j.StateNow()), j.Snapshot())
	case <-r.Context().Done():
		j.Cancel()
	}
}

// statusCode maps a terminal job state to the sync-response HTTP code.
func statusCode(st State) int {
	switch st {
	case StateDone:
		return http.StatusOK
	case StateTimeout:
		return http.StatusGatewayTimeout
	case StateCancelled:
		return http.StatusConflict
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Service) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": workloads.Names()})
}

// handleCacheGet is the peer cache-fill endpoint: a replica that misses
// locally asks the ring owner for the raw cached report bytes before it
// re-simulates. 404 means "not here either — simulate". The path is
// namespaced /internal because it exposes cache internals keyed by
// CacheKey, not a public API surface.
func (s *Service) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.get(key)
	if !ok {
		// Disk fallthrough: a replica that restarted since computing the
		// report can still serve its peers from the persistent store.
		if data, ok = s.storeGet(key); ok {
			s.cache.put(key, data)
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "cache miss")
		return
	}
	s.peerServes.Inc()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleHealthz is the liveness probe: 200 as long as the process can
// serve HTTP at all, even while draining. Restart decisions key on
// this; the body carries build and role info so operators and cluster
// membership checks can tell replicas apart.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"version":        Version,
		"go":             runtime.Version(),
		"mode":           s.cfg.Mode,
		"workers":        s.cfg.Workers,
		"queue_depth":    s.pool.depth(),
		"cache_entries":  s.cache.size(),
		"cache_bytes":    s.cache.bytesUsed(),
		"uptime_seconds": s.Uptime().Seconds(),
	}
	if store := s.cfg.Store; store != nil {
		st := store.Stats()
		dd := map[string]any{
			"path":                st.Path,
			"report_entries":      st.ReportEntries,
			"report_bytes":        st.ReportBytes,
			"journal_records":     st.JournalRecords,
			"journal_live_jobs":   st.JournalLiveJobs,
			"journal_lag":         st.JournalLag,
			"journal_bytes":       st.JournalBytes,
			"compactions":         st.Compactions,
			"corrupt_quarantined": st.CorruptQuarantined,
			"evicted":             st.Evicted,
			"recovered_torn":      st.RecoveredTorn,
		}
		if !st.LastCompaction.IsZero() {
			dd["last_compaction"] = st.LastCompaction.UTC().Format(time.RFC3339)
		}
		body["data_dir"] = dd
		body["recovered_jobs"] = s.RecoveredJobs()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness probe: 503 while the queue is saturated
// or shutdown has begun, so load balancers stop routing before requests
// start failing. Routing decisions key on this.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.Ready()
	code := http.StatusOK
	status := "ready"
	if !ready {
		code = http.StatusServiceUnavailable
		status = "not ready"
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"reason":      reason,
		"queue_depth": s.pool.depth(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
