package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"gpuscout/internal/cubin"
	"gpuscout/internal/faultinject"
	"gpuscout/internal/scout"
)

// corruptCubinBody returns an analyze request whose cubin decodes partway
// and then fails — a deterministic (non-transient) poison input.
func corruptCubinBody(t *testing.T) string {
	t.Helper()
	bin := cubin.New("sm_70")
	if err := bin.Add(testKernel(t)); err != nil {
		t.Fatal(err)
	}
	data, err := cubin.Encode(bin)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(AnalyzeRequest{Cubin: data[:len(data)/2]})
	return string(body)
}

// TestQuarantine is the acceptance path: a fingerprint that fails twice
// returns 422 immediately on the third submission without occupying a
// worker, and clears after the breaker's cool-down.
func TestQuarantine(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		QuarantineAfter:    2,
		QuarantineCooldown: 150 * time.Millisecond,
	})
	body := corruptCubinBody(t)

	for i := 1; i <= 2; i++ {
		resp, b := postAnalyze(t, ts, "", body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("submission %d: status %d, body %s", i, resp.StatusCode, b)
		}
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="failed"}`); n != 2 {
		t.Fatalf("failed jobs = %g, want 2", n)
	}

	// Third submission: rejected at Submit — no new job runs.
	resp, b := postAnalyze(t, ts, "", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submission: status %d, body %s", resp.StatusCode, b)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(b, &errResp); err != nil || errResp.Error == "" {
		t.Fatalf("quarantine response carries no error: %s", b)
	}
	if n := metricValue(t, ts, `gpuscoutd_quarantined_total`); n != 1 {
		t.Errorf("quarantined_total = %g, want 1", n)
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="failed"}`); n != 2 {
		t.Errorf("failed jobs = %g after quarantine rejection, want still 2", n)
	}

	// After the cool-down the breaker admits a probe, which runs (and
	// fails) on a worker again.
	time.Sleep(200 * time.Millisecond)
	resp, b = postAnalyze(t, ts, "", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("post-cooldown submission: status %d, body %s", resp.StatusCode, b)
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="failed"}`); n != 3 {
		t.Errorf("failed jobs = %g after cool-down probe, want 3", n)
	}
}

// TestRetryTransient: a single-shot injected fault fails the first
// attempt; the retry succeeds and the job finishes clean, with the retry
// visible in the job status and gpuscoutd_retries_total.
func TestRetryTransient(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		RetryAttempts: 2, RetryBackoff: time.Millisecond,
	})
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: "service.resolve", Mode: faultinject.ModeError, Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postAnalyze(t, ts, "", `{"workload":"transpose_naive","scale":32}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if n := metricValue(t, ts, `gpuscoutd_retries_total`); n != 1 {
		t.Errorf("retries_total = %g, want 1", n)
	}
}

// TestVerifyTimeoutShipsUnverified: a delay fault makes the verify slice
// expire; the findings ship unverified with the loss in the ledger, the
// job still finishes StateDone, and the degradation is visible in
// gpuscoutd_degraded_reports_total{kind="verify_timeout"}.
func TestVerifyTimeoutShipsUnverified(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// timeout 2s → verify slice 500ms; the armed delay overshoots it.
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: "advisor.verify", Mode: faultinject.ModeDelay, Delay: 700 * time.Millisecond, Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postAnalyze(t, ts, "",
		`{"workload":"histogram_global","scale":4,"verify":true,"timeout_ms":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	var rep struct {
		Degradations []scout.Degradation `json:"degradations"`
		Findings     []struct {
			Analysis     string          `json:"analysis"`
			Verification json.RawMessage `json:"verification"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	found := false
	for _, d := range rep.Degradations {
		if d.Stage == scout.StageVerify && d.Kind == scout.DegradeTimeout {
			found = true
		}
	}
	if !found {
		t.Fatalf("ledger %+v misses a verify/timeout entry", rep.Degradations)
	}
	for _, f := range rep.Findings {
		if f.Analysis == "shared_atomics" && len(f.Verification) > 0 {
			t.Error("finding verified despite the verify slice expiring")
		}
	}
	if n := metricValue(t, ts, `gpuscoutd_degraded_reports_total{kind="verify_timeout"}`); n != 1 {
		t.Errorf(`degraded_reports_total{kind="verify_timeout"} = %g, want 1`, n)
	}
}

// TestSweepTimeoutShipsPartial mirrors the verify contract for the
// sensitivity sweep: a delay fault makes the sweep's budget slice expire
// mid-matrix; the skipped perturbations land in the ledger as timeout
// degradations, the report still ships, and the job finishes StateDone.
func TestSweepTimeoutShipsPartial(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// timeout 2s → sweep slice 500ms; the armed delay overshoots it on
	// the first matrix entry.
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: "advisor.sweep", Mode: faultinject.ModeDelay, Delay: 700 * time.Millisecond, Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postAnalyze(t, ts, "",
		`{"workload":"histogram_global","scale":4,"sensitivity":true,"timeout_ms":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	var rep struct {
		Degradations []scout.Degradation `json:"degradations"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	timeouts := 0
	for _, d := range rep.Degradations {
		if d.Site == "advisor.sweep" && d.Kind == scout.DegradeTimeout {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatalf("ledger %+v misses sweep timeout entries", rep.Degradations)
	}
	if st.Degradations != len(rep.Degradations) {
		t.Errorf("status degradations = %d, ledger has %d", st.Degradations, len(rep.Degradations))
	}
	if n := metricValue(t, ts, `gpuscoutd_degraded_reports_total{kind="verify_timeout"}`); n != 1 {
		t.Errorf(`degraded_reports_total{kind="verify_timeout"} = %g, want 1`, n)
	}
}

// TestDetectorPanicDropsOnlyItsFindings: an injected panic in one
// detector drops that detector's findings, keeps everyone else's, and
// records exactly one panic ledger entry.
func TestDetectorPanicDropsOnlyItsFindings(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	site := scout.DetectorSite("shared_atomics")
	disarm, err := faultinject.Arm(faultinject.Fault{Site: site, Mode: faultinject.ModePanic, Times: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postAnalyze(t, ts, "", `{"workload":"histogram_global","scale":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	var rep struct {
		Degradations []scout.Degradation `json:"degradations"`
		Findings     []struct {
			Analysis string `json:"analysis"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	for _, f := range rep.Findings {
		if f.Analysis == "shared_atomics" {
			t.Error("panicking detector's findings survived")
		}
	}
	if len(rep.Degradations) != 1 || rep.Degradations[0].Site != site ||
		rep.Degradations[0].Kind != scout.DegradePanic || rep.Degradations[0].Stage != scout.StageScout {
		t.Errorf("ledger = %+v, want exactly one scout/panic entry at %s", rep.Degradations, site)
	}
	if n := metricValue(t, ts, `gpuscoutd_stage_panics_total{stage="scout"}`); n != 1 {
		t.Errorf(`stage_panics_total{stage="scout"} = %g, want 1`, n)
	}
}

// TestReadyzFlipsOnShutdown: /readyz serves 200 while accepting work and
// 503 once BeginShutdown is called; /healthz stays 200 throughout.
func TestReadyzFlipsOnShutdown(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("/readyz before shutdown: %d, want 200", c)
	}
	svc.BeginShutdown()
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200 (liveness is not readiness)", c)
	}
}

// TestRetryAfterComputed: the backpressure header is a live estimate in
// [1, 30], not the old hardcoded "1".
func TestRetryAfterComputed(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Pre-load the duration ring so the estimate has data: 4s mean with a
	// full queue of 1 must push Retry-After well past 1s.
	for i := 0; i < 4; i++ {
		svc.durations.record(4 * time.Second)
	}
	// Stall the worker so submissions pile up deterministically.
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site: "service.resolve", Mode: faultinject.ModeDelay, Delay: 250 * time.Millisecond, Times: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	// Fill the worker and the queue, then trip 429.
	for i := 0; i < 8; i++ {
		resp, _ := postAnalyze(t, ts, "?async=1", `{"workload":"transpose_naive","scale":32}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil {
				t.Fatalf("Retry-After %q is not an integer", ra)
			}
			if secs < 1 || secs > 30 {
				t.Fatalf("Retry-After = %d, want within [1, 30]", secs)
			}
			if secs < 4 {
				t.Errorf("Retry-After = %d, want >= 4 (mean 4s, queue full, 1 worker)", secs)
			}
			return
		}
	}
	t.Fatal("queue never filled; 429 path not exercised")
}

// TestCancelVsDeadlineRace: when an explicit Cancel() races the context
// deadline, the job deterministically reports cancelled (userAbort), in
// both orderings.
func TestCancelVsDeadlineRace(t *testing.T) {
	// Ordering 1: deadline expires first, Cancel arrives before the
	// worker classifies the interruption.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	j := newJob("j1", AnalyzeRequest{Workload: "x"}, ctx, cancel)
	<-ctx.Done()
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
	j.Cancel()
	if st := j.interrupted(); st != StateCancelled {
		t.Errorf("deadline-then-cancel: interrupted() = %s, want %s", st, StateCancelled)
	}

	// Ordering 2: Cancel first, deadline expires while the job is still
	// unfinished.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	j2 := newJob("j2", AnalyzeRequest{Workload: "x"}, ctx2, cancel2)
	j2.Cancel()
	time.Sleep(15 * time.Millisecond)
	if st := j2.interrupted(); st != StateCancelled {
		t.Errorf("cancel-then-deadline: interrupted() = %s, want %s", st, StateCancelled)
	}

	// Control: a pure deadline expiry (no Cancel) reports timeout.
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Nanosecond)
	j3 := newJob("j3", AnalyzeRequest{Workload: "x"}, ctx3, cancel3)
	defer cancel3()
	<-ctx3.Done()
	if st := j3.interrupted(); st != StateTimeout {
		t.Errorf("pure deadline: interrupted() = %s, want %s", st, StateTimeout)
	}
}
