package service

// Version identifies the gpuscoutd build. It is surfaced by /healthz
// (alongside the process mode) and by `gpuscoutd -version`, so cluster
// membership checks and operators can tell replicas — and mixed-version
// rollouts — apart. Release builds may override it via
//
//	go build -ldflags "-X gpuscout/internal/service.Version=..."
var Version = "0.7.0-dev"
