//go:build faultinject

package service

import (
	"encoding/json"
	"net/http"
	"time"

	"gpuscout/internal/faultinject"
)

// This file exists only under the `faultinject` build tag: production
// gpuscoutd binaries have no fault-arming surface at all. Chaos builds
// get a small debug API:
//
//	GET    /debug/faultinject        registered sites + currently armed faults
//	POST   /debug/faultinject        arm {"site","mode","delay_ms","skip_hits","times"}
//	DELETE /debug/faultinject        disarm ?site=..., or everything without it
func (s *Service) registerDebugHandlers(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/faultinject", func(w http.ResponseWriter, _ *http.Request) {
		armed := map[string]map[string]any{}
		for site, f := range faultinject.Armed() {
			armed[site] = map[string]any{
				"mode":      f.Mode.String(),
				"delay_ms":  f.Delay.Milliseconds(),
				"skip_hits": f.SkipHits,
				"times":     f.Times,
				"fired":     faultinject.Fired(site),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"sites": faultinject.Sites(),
			"armed": armed,
		})
	})
	mux.HandleFunc("POST /debug/faultinject", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Site     string `json:"site"`
			Mode     string `json:"mode"`
			DelayMS  int    `json:"delay_ms"`
			SkipHits int    `json:"skip_hits"`
			Times    int    `json:"times"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		mode, err := faultinject.ParseMode(req.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if _, err := faultinject.Arm(faultinject.Fault{
			Site:     req.Site,
			Mode:     mode,
			Delay:    time.Duration(req.DelayMS) * time.Millisecond,
			SkipHits: req.SkipHits,
			Times:    req.Times,
		}); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"armed": req.Site})
	})
	mux.HandleFunc("DELETE /debug/faultinject", func(w http.ResponseWriter, r *http.Request) {
		if site := r.URL.Query().Get("site"); site != "" {
			faultinject.Disarm(site)
			writeJSON(w, http.StatusOK, map[string]string{"disarmed": site})
			return
		}
		faultinject.Reset()
		writeJSON(w, http.StatusOK, map[string]string{"disarmed": "all"})
	})
}
