//go:build faultinject

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/scout"
)

// debugArm arms a fault through the HTTP debug API (the same surface an
// operator uses against a chaos build of gpuscoutd).
func debugArm(t *testing.T, url, site, mode string, delayMS, times int) {
	t.Helper()
	body := fmt.Sprintf(`{"site":%q,"mode":%q,"delay_ms":%d,"times":%d}`, site, mode, delayMS, times)
	resp, err := http.Post(url+"/debug/faultinject", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("arm %s: %v", site, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm %s: status %d", site, resp.StatusCode)
	}
}

func debugReset(t *testing.T, url string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url+"/debug/faultinject", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("reset: %v", err)
	}
	resp.Body.Close()
}

// TestChaosServiceDebugEndpoint drives faults into a running daemon
// purely over HTTP: arm → observe the degradation → disarm, with the
// process healthy throughout.
func TestChaosServiceDebugEndpoint(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	// CacheEntries: -1 — a cache hit would mask the armed fault entirely.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, RetryBackoff: 1, CacheEntries: -1})
	t.Cleanup(func() { debugReset(t, ts.URL) })

	// The debug listing knows every registered site.
	resp, err := http.Get(ts.URL + "/debug/faultinject")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Sites []string                  `json:"sites"`
		Armed map[string]map[string]any `json:"armed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	resp.Body.Close()
	if len(listing.Sites) == 0 || len(listing.Armed) != 0 {
		t.Fatalf("fresh listing: %d sites, %d armed", len(listing.Sites), len(listing.Armed))
	}

	submit := func() Status {
		t.Helper()
		resp, body := postAnalyze(t, ts, "", `{"workload":"histogram_shared","scale":4}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return st
	}

	// A detector panic degrades the report; the daemon survives.
	debugArm(t, ts.URL, scout.DetectorSite("shared_atomics"), "panic", 0, 1)
	if st := submit(); st.State != StateDone || st.Degradations == 0 {
		t.Fatalf("detector panic: state=%s degradations=%d, want done+degraded", st.State, st.Degradations)
	}
	debugReset(t, ts.URL)

	// A transient resolve fault retries to success.
	debugArm(t, ts.URL, "service.resolve", "error", 0, 1)
	if st := submit(); st.State != StateDone || st.Attempts != 2 {
		t.Fatalf("transient resolve fault: state=%s attempts=%d, want done after retry", st.State, st.Attempts)
	}
	debugReset(t, ts.URL)

	// A dynamic-pillar fault is absorbed inside the analysis (static
	// fallback), so no retry happens — the report ships degraded.
	debugArm(t, ts.URL, "sim.launch", "error", 0, 8)
	st := submit()
	if st.State != StateDone || st.Degradations == 0 {
		t.Fatalf("sim fault: state=%s degradations=%d, want degraded done", st.State, st.Degradations)
	}
	if !strings.Contains(string(st.Report), `"dry_run": true`) {
		t.Error("sim fault did not fall back to a static report")
	}
	debugReset(t, ts.URL)

	// Healthy and clean after the whole ordeal.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v / %v", err, hresp)
	}
	hresp.Body.Close()
	if st := submit(); st.State != StateDone || st.Degradations != 0 {
		t.Fatalf("post-chaos run: state=%s degradations=%d, want clean done", st.State, st.Degradations)
	}
}
