package service

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal hand-rolled metrics library — just enough for
// gpuscoutd's /metrics endpoint to speak the Prometheus text exposition
// format (v0.0.4) while keeping go.mod dependency-free. Instruments are
// registered once at service construction; observation paths are
// lock-free (counters, gauges) or take one short mutex (histograms).

// Label is one metric label pair.
type Label struct {
	Name, Value string
}

// Registry holds instrument families and renders them in registration
// order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	series          []renderer
}

type renderer interface {
	render(w io.Writer, name string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// familyFor finds or creates the family for name, enforcing that a
// metric name maps to exactly one type and help string.
func (r *Registry) familyFor(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("service: metric %s registered as both %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) add(r *Registry, s renderer) {
	r.mu.Lock()
	f.series = append(f.series, s)
	r.mu.Unlock()
}

// WritePrometheus renders every registered instrument.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.render(w, f.name)
		}
	}
}

// --- Counter ---

// Counter is a monotonically increasing integer counter.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// NewCounter registers a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: labelString(labels)}
	r.familyFor(name, help, "counter").add(r, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// --- Gauge ---

// Gauge is a settable instantaneous value.
type Gauge struct {
	labels string
	bits   atomic.Uint64 // float64 bits
}

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: labelString(labels)}
	r.familyFor(name, help, "gauge").add(r, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (use a negative delta to decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, g.labels, formatFloat(g.Value()))
}

// gaugeFunc samples its value at scrape time (queue depth, cache size).
type gaugeFunc struct {
	labels string
	fn     func() float64
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.familyFor(name, help, "gauge").add(r, &gaugeFunc{labels: labelString(labels), fn: fn})
}

func (g *gaugeFunc) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, g.labels, formatFloat(g.fn()))
}

// --- Histogram ---

// DefSecondsBuckets is the default latency bucket layout, in seconds.
var DefSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram observes values into cumulative buckets.
type Histogram struct {
	labels []Label
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // per-bound (non-cumulative)
	inf    uint64
	sum    float64
	count  uint64
}

// NewHistogram registers a histogram series. bounds must be ascending;
// nil selects DefSecondsBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	h := &Histogram{
		labels: append([]Label(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
	r.familyFor(name, help, "histogram").add(r, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) render(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			labelString(append(append([]Label(nil), h.labels...), Label{"le", formatFloat(b)})), cum)
	}
	cum += h.inf
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		labelString(append(append([]Label(nil), h.labels...), Label{"le", "+Inf"})), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(h.labels), formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(h.labels), h.count)
}

// --- rendering helpers ---

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	// %g keeps integers short ("3") and floats precise enough for scrapes.
	return fmt.Sprintf("%g", v)
}
