package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpuscout/internal/cubin"
	"gpuscout/internal/sass"
)

func postBatch(t *testing.T, ts *httptest.Server, batch BatchRequest) (*http.Response, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/analyze/batch: %v", err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	}
	return resp, out
}

// batchKernelSASS builds a tiny valid kernel whose name and immediate
// vary with i, giving each i a distinct input fingerprint while keeping
// the analysis static-only (fast).
func batchKernelSASS(t *testing.T, i int) string {
	t.Helper()
	k := &sass.Kernel{
		Name: fmt.Sprintf("_Z5bat%02dPf", i), Arch: "sm_70", NumRegs: 8, ConstBytes: 0x170,
		SourceFile: "batch.cu",
		Source:     []string{"__global__ void bat(float* x) {", "  x[0] = 1.0f;", "}"},
	}
	ctrl := sass.DefaultCtrl()
	k.Insts = []sass.Inst{
		{Pred: sass.PT, Op: sass.OpMOV, Dst: []sass.Operand{sass.R(0)}, Src: []sass.Operand{sass.Imm(int64(0x1000 + i))}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpSTG, Mods: []string{"E", "SYS"}, Dst: []sass.Operand{sass.Mem(2, 0)}, Src: []sass.Operand{sass.R(0)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpEXIT, Ctrl: ctrl, Line: 3},
	}
	k.RenumberPCs()
	return sass.Print(k)
}

// TestBatchDedupeIdenticalCubins is the acceptance flow for batch
// dedupe: N items carrying byte-identical cubins cost exactly one
// simulation. Every item still gets its own Status entry.
func TestBatchDedupeIdenticalCubins(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	bin := cubin.New("sm_70")
	if err := bin.Add(testKernel(t)); err != nil {
		t.Fatal(err)
	}
	data, err := cubin.Encode(bin)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	batch := BatchRequest{}
	for i := 0; i < n; i++ {
		batch.Requests = append(batch.Requests, AnalyzeRequest{Cubin: data})
	}
	resp, out := postBatch(t, ts, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(out.Results) != n {
		t.Fatalf("got %d results, want %d", len(out.Results), n)
	}
	for i, st := range out.Results {
		if st.State != StateDone {
			t.Fatalf("result %d: state %s (%s)", i, st.State, st.Error)
		}
		if !bytes.Equal(st.Report, out.Results[0].Report) {
			t.Errorf("result %d: report differs from result 0", i)
		}
	}
	if misses := metricValue(t, ts, "gpuscoutd_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %g, want 1 (N identical cubins must cost one run)", misses)
	}
	if deduped := metricValue(t, ts, "gpuscoutd_batch_deduped_total"); deduped != n-1 {
		t.Errorf("batch deduped = %g, want %d", deduped, n-1)
	}
	if items := metricValue(t, ts, "gpuscoutd_batch_items_total"); items != n {
		t.Errorf("batch items = %g, want %d", items, n)
	}
}

// TestBatchOrderAndMixedInputs interleaves duplicates of distinct
// kernels and checks the response preserves request order: result i
// must carry the report for the kernel request i named.
func TestBatchOrderAndMixedInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	// 3 distinct kernels, each submitted 3 times, interleaved.
	order := []int{0, 1, 2, 2, 0, 1, 1, 2, 0}
	batch := BatchRequest{}
	for _, k := range order {
		batch.Requests = append(batch.Requests, AnalyzeRequest{SASS: batchKernelSASS(t, k)})
	}
	resp, out := postBatch(t, ts, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(out.Results) != len(order) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(order))
	}
	for i, st := range out.Results {
		if st.State != StateDone {
			t.Fatalf("result %d: state %s (%s)", i, st.State, st.Error)
		}
		wantName := fmt.Sprintf("_Z5bat%02dPf", order[i])
		if !bytes.Contains(st.Report, []byte(wantName)) {
			t.Errorf("result %d: report does not mention %s — order not preserved", i, wantName)
		}
	}
	if misses := metricValue(t, ts, "gpuscoutd_cache_misses_total"); misses != 3 {
		t.Errorf("cache misses = %g, want 3 (one per distinct kernel)", misses)
	}
	if deduped := metricValue(t, ts, "gpuscoutd_batch_deduped_total"); deduped != 6 {
		t.Errorf("batch deduped = %g, want 6", deduped)
	}
}

// TestBatchValidation covers the batch-level 400/413 paths: empty
// batches, malformed items (failing the whole batch with the offending
// index), and an item count beyond MaxBatchItems.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxBatchItems: 4})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/analyze/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"requests":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"requests":[{"workload":"transpose_naive"},{}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid item: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	big := `{"requests":[` + strings.Repeat(`{"workload":"transpose_naive","dry_run":true},`, 4) +
		`{"workload":"transpose_naive","dry_run":true}]}`
	if resp := post(big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestHealthzInfoBody pins the /healthz JSON contract the cluster
// tooling reads: version and build info, process mode, worker count,
// and live queue depth.
func TestHealthzInfoBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 7, Mode: "worker"})

	var hz struct {
		Status       string  `json:"status"`
		Version      string  `json:"version"`
		Go           string  `json:"go"`
		Mode         string  `json:"mode"`
		Workers      int     `json:"workers"`
		QueueDepth   float64 `json:"queue_depth"`
		CacheEntries float64 `json:"cache_entries"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &hz)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if hz.Status != "ok" {
		t.Errorf("status = %q, want ok", hz.Status)
	}
	if hz.Version != Version {
		t.Errorf("version = %q, want %q", hz.Version, Version)
	}
	if !strings.HasPrefix(hz.Go, "go") {
		t.Errorf("go = %q, want a go version string", hz.Go)
	}
	if hz.Mode != "worker" {
		t.Errorf("mode = %q, want worker", hz.Mode)
	}
	if hz.Workers != 3 {
		t.Errorf("workers = %d, want 3", hz.Workers)
	}
	if hz.QueueDepth != 0 {
		t.Errorf("queue_depth = %g, want 0 on an idle daemon", hz.QueueDepth)
	}
}
