package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestSensitivityJob runs a sweep-enabled analysis through the daemon:
// the report must carry the perturbation matrix and per-finding
// sensitivity blocks, and it must not share a cache entry with the plain
// analysis of the same workload.
func TestSensitivityJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	req := `{"workload":"sgemm_naive","scale":64,"sample_sms":1,"sensitivity":true,"stall_slices":true}`
	resp, body := postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sensitivity analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	for _, want := range []string{`"sensitivity"`, `"dominant"`, `"est_speedup"`, `"stall_slices"`} {
		if !bytes.Contains(st.Report, []byte(want)) {
			t.Errorf("report missing %s: %.200s", want, st.Report)
		}
	}

	// The same analysis without the sweep is a different report and must
	// occupy its own cache entry.
	plain := `{"workload":"sgemm_naive","scale":64,"sample_sms":1}`
	resp, body = postAnalyze(t, ts, "", plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.CacheHit {
		t.Error("plain analysis hit the swept report's cache entry")
	}
	if bytes.Contains(st2.Report, []byte(`"dominant"`)) {
		t.Error("plain report carries sensitivity blocks")
	}
	if n := svc.cache.size(); n != 2 {
		t.Errorf("cache size = %d, want 2 (swept and plain are distinct)", n)
	}

	// Re-submitting the swept request now hits the cache bit-identically.
	resp, body = postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat sensitivity analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st3 Status
	if err := json.Unmarshal(body, &st3); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !st3.CacheHit {
		t.Error("repeated swept analysis missed the cache")
	}
	if !bytes.Equal(st.Report, st3.Report) {
		t.Error("cached swept report differs from the original")
	}
}

// TestSensitivityValidation: the sweep rebuilds the workload per
// perturbed arch, so it needs a workload analysis with the dynamic
// pillars.
func TestSensitivityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{"workload":"sgemm_naive","sensitivity":true,"dry_run":true}`,
		`{"sass":"// bogus","sensitivity":true}`,
	} {
		resp, data := postAnalyze(t, ts, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", body, resp.StatusCode, data)
		}
	}
}
