package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrQuarantined is returned by Submit for an input fingerprint whose
// recent attempts all failed: the per-fingerprint circuit breaker is
// open, and re-running a poison input would only burn another worker.
// The HTTP layer maps it to 422 with the prior failure message.
var ErrQuarantined = errors.New("service: input quarantined")

// QuarantineError is the typed rejection a quarantined submission gets:
// it unwraps to ErrQuarantined and carries how long the client should
// wait before the breaker will admit (another) probe. The HTTP layer
// turns RetryAfter into a Retry-After header on the 422.
type QuarantineError struct {
	// Failures is the consecutive-failure count that opened the breaker.
	Failures int
	// LastErr is the most recent failure message for this fingerprint.
	LastErr string
	// RetryAfter is the suggested wait before resubmitting.
	RetryAfter time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("%v: %d consecutive failures, last: %s (retry after cool-down)",
		ErrQuarantined, e.Failures, e.LastErr)
}

// Unwrap keeps errors.Is(err, ErrQuarantined) working.
func (e *QuarantineError) Unwrap() error { return ErrQuarantined }

// Fingerprint identifies the analysis input: everything that determines
// what the pipeline will execute, nothing that merely tunes how
// (timeout, sim_workers, sampling period). It keys the quarantine
// breaker, batch deduplication, and — in a cluster — the coordinator's
// consistent-hash routing, so repeated submissions of the same input
// land on the same replica's cache.
func (r *AnalyzeRequest) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\x00scale=%d\x00sass=%s\x00cubin=%x\x00kernel=%s\x00arch=%s\x00archcmp=%s\x00dry=%t\x00verify=%t",
		r.Workload, r.Scale, r.SASS, r.Cubin, r.Kernel, r.Arch, r.ArchCompare, r.DryRun, r.Verify)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// breaker is the per-fingerprint circuit breaker behind quarantine: a
// fingerprint that reaches `after` consecutive failures is rejected at
// Submit until `cooldown` has passed since the breaker opened; the first
// submission after the cool-down is admitted as a probe (half-open), and
// one success clears the entry entirely.
type breaker struct {
	after    int
	cooldown time.Duration

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	failures int
	lastErr  string
	openedAt time.Time
	probing  bool // a half-open probe is in flight; admit no others
}

func newBreaker(after int, cooldown time.Duration) *breaker {
	return &breaker{after: after, cooldown: cooldown, entries: map[string]*breakerEntry{}}
}

// check admits or rejects a submission for fp. A rejection returns a
// *QuarantineError (wrapping ErrQuarantined) carrying the prior failure
// and a Retry-After hint. After the cool-down, exactly one concurrent
// submission is admitted as the half-open probe — the probing flag holds
// the slot until the probe's verdict (recordSuccess / recordFailure) or
// its interruption (release) — so a thundering herd against a poison
// fingerprint cannot burn more than one worker.
func (b *breaker) check(fp string) error {
	if b.after <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok || e.failures < b.after {
		return nil
	}
	if !e.probing && time.Since(e.openedAt) >= b.cooldown {
		// Half-open: this caller is the one probe.
		e.probing = true
		return nil
	}
	retry := b.cooldown - time.Since(e.openedAt)
	if retry < time.Second {
		// Cool-down elapsed but a probe is in flight: its verdict lands
		// within one job, so "come back shortly".
		retry = time.Second
	}
	return &QuarantineError{Failures: e.failures, LastErr: e.lastErr, RetryAfter: retry}
}

// recordFailure counts one failed execution of fp. A failed half-open
// probe re-opens the breaker for a full cool-down.
func (b *breaker) recordFailure(fp, errMsg string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok {
		e = &breakerEntry{}
		b.entries[fp] = e
	}
	e.probing = false
	e.failures++
	e.lastErr = errMsg
	if e.failures >= b.after {
		e.openedAt = time.Now()
	}
}

// recordSuccess clears fp's failure history, reporting whether an entry
// existed (so callers persist breaker state only when it changed).
func (b *breaker) recordSuccess(fp string) bool {
	if b.after <= 0 {
		return false
	}
	b.mu.Lock()
	_, had := b.entries[fp]
	delete(b.entries, fp)
	b.mu.Unlock()
	return had
}

// release frees fp's half-open probe slot without a verdict — the probe
// job was cancelled or timed out before it could prove anything. Without
// this, an interrupted probe would wedge the breaker open forever.
func (b *breaker) release(fp string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	if e, ok := b.entries[fp]; ok {
		e.probing = false
	}
	b.mu.Unlock()
}

// openCount reports how many fingerprints are currently quarantined.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.entries {
		if e.failures >= b.after && time.Since(e.openedAt) < b.cooldown {
			n++
		}
	}
	return n
}

// breakerEntryJSON is the persisted wire form of one breaker entry. The
// probing flag is deliberately absent: a restart killed any in-flight
// probe, so the reloaded entry may admit a fresh one.
type breakerEntryJSON struct {
	Failures int       `json:"failures"`
	LastErr  string    `json:"last_err,omitempty"`
	OpenedAt time.Time `json:"opened_at,omitempty"`
}

// exportJSON snapshots the breaker's entries for persistence, so a
// restart cannot un-quarantine a poison fingerprint.
func (b *breaker) exportJSON() []byte {
	b.mu.Lock()
	out := make(map[string]breakerEntryJSON, len(b.entries))
	for fp, e := range b.entries {
		out[fp] = breakerEntryJSON{Failures: e.failures, LastErr: e.lastErr, OpenedAt: e.openedAt}
	}
	b.mu.Unlock()
	data, _ := json.Marshal(out)
	return data
}

// importJSON restores entries exported by exportJSON, replacing any
// in-memory state for the same fingerprints. Unparseable state is
// ignored — the breaker starts cold rather than poisoning startup.
func (b *breaker) importJSON(data []byte) {
	var in map[string]breakerEntryJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return
	}
	b.mu.Lock()
	for fp, e := range in {
		b.entries[fp] = &breakerEntry{failures: e.Failures, lastErr: e.LastErr, openedAt: e.OpenedAt}
	}
	b.mu.Unlock()
}

// backoffDelay is the capped-exponential-with-jitter retry schedule:
// base·2^(attempt-1), capped at cap, with the upper half jittered so
// retried jobs don't stampede the pool in lockstep.
func backoffDelay(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// durationRing remembers the last N job durations for the Retry-After
// estimate.
type durationRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newDurationRing(size int) *durationRing {
	return &durationRing{buf: make([]time.Duration, size)}
}

func (r *durationRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-th quantile (0 < q ≤ 1) of the recorded
// durations, 0 with no samples. The Retry-After estimate uses p75
// rather than the mean: job durations are heavily skewed (cache hits
// are microseconds, cold simulations are seconds), and under that skew
// the mean is dragged toward whichever class happens to dominate the
// window — a client told to come back too soon just gets shed again.
// A p75 over the ring tracks the slow class as soon as it is a quarter
// of the traffic.
func (r *durationRing) quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	s := make([]time.Duration, r.n)
	copy(s, r.buf[:r.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[r.n-1]
	}
	idx := int(math.Ceil(q*float64(r.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
