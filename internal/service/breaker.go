package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrQuarantined is returned by Submit for an input fingerprint whose
// recent attempts all failed: the per-fingerprint circuit breaker is
// open, and re-running a poison input would only burn another worker.
// The HTTP layer maps it to 422 with the prior failure message.
var ErrQuarantined = errors.New("service: input quarantined")

// Fingerprint identifies the analysis input: everything that determines
// what the pipeline will execute, nothing that merely tunes how
// (timeout, sim_workers, sampling period). It keys the quarantine
// breaker, batch deduplication, and — in a cluster — the coordinator's
// consistent-hash routing, so repeated submissions of the same input
// land on the same replica's cache.
func (r *AnalyzeRequest) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\x00scale=%d\x00sass=%s\x00cubin=%x\x00kernel=%s\x00arch=%s\x00archcmp=%s\x00dry=%t\x00verify=%t",
		r.Workload, r.Scale, r.SASS, r.Cubin, r.Kernel, r.Arch, r.ArchCompare, r.DryRun, r.Verify)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// breaker is the per-fingerprint circuit breaker behind quarantine: a
// fingerprint that reaches `after` consecutive failures is rejected at
// Submit until `cooldown` has passed since the breaker opened; the first
// submission after the cool-down is admitted as a probe (half-open), and
// one success clears the entry entirely.
type breaker struct {
	after    int
	cooldown time.Duration

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	failures int
	lastErr  string
	openedAt time.Time
}

func newBreaker(after int, cooldown time.Duration) *breaker {
	return &breaker{after: after, cooldown: cooldown, entries: map[string]*breakerEntry{}}
}

// check admits or rejects a submission for fp. A rejection error wraps
// ErrQuarantined and carries the prior failure.
func (b *breaker) check(fp string) error {
	if b.after <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok || e.failures < b.after {
		return nil
	}
	if time.Since(e.openedAt) >= b.cooldown {
		// Half-open: admit one probe. Drop back to just below the
		// threshold so another failure re-opens immediately.
		e.failures = b.after - 1
		return nil
	}
	return fmt.Errorf("%w: %d consecutive failures, last: %s (retry after cool-down)",
		ErrQuarantined, e.failures, e.lastErr)
}

// recordFailure counts one failed execution of fp.
func (b *breaker) recordFailure(fp, errMsg string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok {
		e = &breakerEntry{}
		b.entries[fp] = e
	}
	e.failures++
	e.lastErr = errMsg
	if e.failures >= b.after {
		e.openedAt = time.Now()
	}
}

// recordSuccess clears fp's failure history.
func (b *breaker) recordSuccess(fp string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.entries, fp)
	b.mu.Unlock()
}

// openCount reports how many fingerprints are currently quarantined.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.entries {
		if e.failures >= b.after && time.Since(e.openedAt) < b.cooldown {
			n++
		}
	}
	return n
}

// backoffDelay is the capped-exponential-with-jitter retry schedule:
// base·2^(attempt-1), capped at cap, with the upper half jittered so
// retried jobs don't stampede the pool in lockstep.
func backoffDelay(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// durationRing remembers the last N job durations for the Retry-After
// estimate.
type durationRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newDurationRing(size int) *durationRing {
	return &durationRing{buf: make([]time.Duration, size)}
}

func (r *durationRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-th quantile (0 < q ≤ 1) of the recorded
// durations, 0 with no samples. The Retry-After estimate uses p75
// rather than the mean: job durations are heavily skewed (cache hits
// are microseconds, cold simulations are seconds), and under that skew
// the mean is dragged toward whichever class happens to dominate the
// window — a client told to come back too soon just gets shed again.
// A p75 over the ring tracks the slow class as soon as it is a quarter
// of the traffic.
func (r *durationRing) quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	s := make([]time.Duration, r.n)
	copy(s, r.buf[:r.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[r.n-1]
	}
	idx := int(math.Ceil(q*float64(r.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
