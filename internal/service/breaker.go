package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrQuarantined is returned by Submit for an input fingerprint whose
// recent attempts all failed: the per-fingerprint circuit breaker is
// open, and re-running a poison input would only burn another worker.
// The HTTP layer maps it to 422 with the prior failure message.
var ErrQuarantined = errors.New("service: input quarantined")

// fingerprint identifies the analysis input for quarantine purposes:
// everything that determines what the pipeline will execute, nothing
// that merely tunes how (timeout, sim_workers, sampling period).
func (r *AnalyzeRequest) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\x00scale=%d\x00sass=%s\x00cubin=%x\x00kernel=%s\x00arch=%s\x00dry=%t\x00verify=%t",
		r.Workload, r.Scale, r.SASS, r.Cubin, r.Kernel, r.Arch, r.DryRun, r.Verify)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// breaker is the per-fingerprint circuit breaker behind quarantine: a
// fingerprint that reaches `after` consecutive failures is rejected at
// Submit until `cooldown` has passed since the breaker opened; the first
// submission after the cool-down is admitted as a probe (half-open), and
// one success clears the entry entirely.
type breaker struct {
	after    int
	cooldown time.Duration

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	failures int
	lastErr  string
	openedAt time.Time
}

func newBreaker(after int, cooldown time.Duration) *breaker {
	return &breaker{after: after, cooldown: cooldown, entries: map[string]*breakerEntry{}}
}

// check admits or rejects a submission for fp. A rejection error wraps
// ErrQuarantined and carries the prior failure.
func (b *breaker) check(fp string) error {
	if b.after <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok || e.failures < b.after {
		return nil
	}
	if time.Since(e.openedAt) >= b.cooldown {
		// Half-open: admit one probe. Drop back to just below the
		// threshold so another failure re-opens immediately.
		e.failures = b.after - 1
		return nil
	}
	return fmt.Errorf("%w: %d consecutive failures, last: %s (retry after cool-down)",
		ErrQuarantined, e.failures, e.lastErr)
}

// recordFailure counts one failed execution of fp.
func (b *breaker) recordFailure(fp, errMsg string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if !ok {
		e = &breakerEntry{}
		b.entries[fp] = e
	}
	e.failures++
	e.lastErr = errMsg
	if e.failures >= b.after {
		e.openedAt = time.Now()
	}
}

// recordSuccess clears fp's failure history.
func (b *breaker) recordSuccess(fp string) {
	if b.after <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.entries, fp)
	b.mu.Unlock()
}

// openCount reports how many fingerprints are currently quarantined.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.entries {
		if e.failures >= b.after && time.Since(e.openedAt) < b.cooldown {
			n++
		}
	}
	return n
}

// backoffDelay is the capped-exponential-with-jitter retry schedule:
// base·2^(attempt-1), capped at cap, with the upper half jittered so
// retried jobs don't stampede the pool in lockstep.
func backoffDelay(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// durationRing remembers the last N job durations for the Retry-After
// estimate.
type durationRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newDurationRing(size int) *durationRing {
	return &durationRing{buf: make([]time.Duration, size)}
}

func (r *durationRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// mean returns the average recorded duration (0 with no samples).
func (r *durationRing) mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < r.n; i++ {
		sum += r.buf[i]
	}
	return sum / time.Duration(r.n)
}
