package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestVerifyJob runs a verification-enabled analysis through the daemon:
// the report must carry Verification blocks, the verdict counters must
// advance, and the verified report must not share a cache entry with the
// plain analysis of the same workload.
func TestVerifyJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	req := `{"workload":"sgemm_naive","scale":64,"sample_sms":1,"verify":true}`
	resp, body := postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if !bytes.Contains(st.Report, []byte(`"verification"`)) {
		t.Fatalf("report carries no verification blocks: %.200s", st.Report)
	}
	if !bytes.Contains(st.Report, []byte(`"verdict": "confirmed"`)) {
		t.Error("report has no confirmed verdict")
	}

	var verified uint64
	for _, c := range svc.verifications {
		verified += c.Value()
	}
	if verified == 0 {
		t.Error("verdict counters did not advance")
	}
	if confirmed := metricValue(t, ts,
		`gpuscoutd_verifications_total{verdict="confirmed"}`); confirmed < 1 {
		t.Errorf("confirmed verifications = %g, want >= 1", confirmed)
	}

	// The same analysis without verification is a different report and
	// must occupy its own cache entry.
	plain := `{"workload":"sgemm_naive","scale":64,"sample_sms":1}`
	resp, body = postAnalyze(t, ts, "", plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.CacheHit {
		t.Error("plain analysis hit the verified report's cache entry")
	}
	if bytes.Contains(st2.Report, []byte(`"verification"`)) {
		t.Error("plain report carries verification blocks")
	}
	if n := svc.cache.size(); n != 2 {
		t.Errorf("cache size = %d, want 2 (verified and plain are distinct)", n)
	}

	// Re-submitting the verified request now hits the cache.
	resp, body = postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat verify analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st3 Status
	if err := json.Unmarshal(body, &st3); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !st3.CacheHit {
		t.Error("repeated verified analysis missed the cache")
	}
	if !bytes.Equal(st.Report, st3.Report) {
		t.Error("cached verified report differs from the original")
	}
}

// TestVerifyValidation: verify is only meaningful for workload analyses
// with the dynamic pillars.
func TestVerifyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{"workload":"sgemm_naive","verify":true,"dry_run":true}`,
		`{"sass":"// bogus","verify":true}`,
	} {
		resp, data := postAnalyze(t, ts, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", body, resp.StatusCode, data)
		}
	}
}
