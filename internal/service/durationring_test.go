package service

import (
	"testing"
	"time"
)

// TestDurationRingQuantile pins the Retry-After estimator's input on
// skewed samples: the mean is dragged toward whichever duration class
// dominates the window, while p75 tracks the slow class as soon as it
// is a quarter of the traffic — the case the table's "slow majority"
// rows demonstrate (mean well under the value p75 reports).
func TestDurationRingQuantile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		size    int
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"empty", 8, nil, 0.75, 0},
		{"single", 8, []time.Duration{ms(5000)}, 0.75, ms(5000)},
		{"uniform", 8, []time.Duration{ms(100), ms(100), ms(100)}, 0.75, ms(100)},
		// Slow majority with a fast tail: mean = 1525ms lies below every
		// slow job; p75 answers with the slow class.
		{"slow majority", 8, []time.Duration{ms(100), ms(2000), ms(2000), ms(2000)}, 0.75, ms(2000)},
		// Cache-hit-dominated window: hits are ~0, one cold simulation.
		// p75 stays at the hit cost — backpressure needn't scare clients
		// away while most answers are instant.
		{"hit dominated", 8, []time.Duration{0, 0, 0, ms(8000)}, 0.75, 0},
		// Exactly at the 3/4 boundary with mixed order (quantile sorts).
		{"unsorted", 8, []time.Duration{ms(900), ms(10), ms(500), ms(100)}, 0.75, ms(500)},
		{"q=1 is max", 8, []time.Duration{ms(10), ms(700), ms(40)}, 1, ms(700)},
		{"q=0 is min", 8, []time.Duration{ms(10), ms(700), ms(40)}, 0, ms(10)},
		// Ring wraps: only the last `size` samples count. The four huge
		// early samples are overwritten by 4 later ones.
		{"wraparound", 4, []time.Duration{ms(60000), ms(60000), ms(60000), ms(60000), ms(10), ms(20), ms(30), ms(40)}, 0.75, ms(30)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newDurationRing(tc.size)
			for _, d := range tc.samples {
				r.record(d)
			}
			if got := r.quantile(tc.q); got != tc.want {
				t.Errorf("quantile(%g) over %v = %v, want %v", tc.q, tc.samples, got, tc.want)
			}
		})
	}
}

// TestDurationRingQuantileVsMeanSkew documents the satellite fix
// directly: under a slow-majority skew the old mean-based estimate
// undershoots the real per-job wait, p75 does not.
func TestDurationRingQuantileVsMeanSkew(t *testing.T) {
	r := newDurationRing(32)
	var sum time.Duration
	samples := []time.Duration{
		50 * time.Millisecond, 80 * time.Millisecond, // two cache-ish jobs
		3 * time.Second, 3 * time.Second, 3 * time.Second, 3 * time.Second,
		3 * time.Second, 3 * time.Second, // six cold simulations
	}
	for _, d := range samples {
		r.record(d)
		sum += d
	}
	mean := sum / time.Duration(len(samples))
	p75 := r.quantile(0.75)
	if p75 != 3*time.Second {
		t.Fatalf("p75 = %v, want 3s", p75)
	}
	if mean >= p75 {
		t.Fatalf("test premise broken: mean %v not below p75 %v", mean, p75)
	}
}
