package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuscout/internal/cubin"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postAnalyze(t *testing.T, ts *httptest.Server, query string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/analyze"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/analyze: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// metricValue extracts one sample value from Prometheus text output.
func metricValue(t *testing.T, ts *httptest.Server, sample string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found in:\n%s", sample, body)
	return 0
}

// TestAnalyzeCacheHit is the acceptance flow: the same workload twice,
// second response served from the content-addressed cache.
func TestAnalyzeCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	req := `{"workload":"transpose_naive","dry_run":true}`

	resp, body := postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st1 Status
	if err := json.Unmarshal(body, &st1); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first analyze: state=%s cacheHit=%v, want done/false", st1.State, st1.CacheHit)
	}
	if len(st1.Report) == 0 || !bytes.Contains(st1.Report, []byte(`"kernel"`)) {
		t.Fatalf("first analyze: missing report JSON: %.120s", st1.Report)
	}

	resp, body = postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("second analyze: state=%s cacheHit=%v, want done/true", st2.State, st2.CacheHit)
	}
	if !bytes.Equal(st1.Report, st2.Report) {
		t.Error("cached report differs from the original")
	}

	if hits := metricValue(t, ts, "gpuscoutd_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %g, want 1", hits)
	}
	if misses := metricValue(t, ts, "gpuscoutd_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %g, want 1", misses)
	}
	if entries := metricValue(t, ts, "gpuscoutd_cache_entries"); entries != 1 {
		t.Errorf("cache entries = %g, want 1", entries)
	}
}

// TestCacheScaleMiss: a simulated workload at a different problem scale
// must NOT hit the cache — the kernel SASS is identical across scales,
// but the simulated report (grid, traffic, stalls) is not. Regression
// test for the launch fingerprint in CacheKey.
func TestCacheScaleMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	submit := func(scale int) Status {
		t.Helper()
		resp, body := postAnalyze(t, ts, "",
			fmt.Sprintf(`{"workload":"transpose_naive","scale":%d}`, scale))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scale %d: status %d, body %s", scale, resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("scale %d: unmarshal: %v", scale, err)
		}
		if st.State != StateDone {
			t.Fatalf("scale %d: state %s, want done", scale, st.State)
		}
		return st
	}

	if st := submit(32); st.CacheHit {
		t.Fatal("first scale-32 run reported a cache hit")
	}
	if st := submit(64); st.CacheHit {
		t.Fatal("scale-64 run hit the scale-32 cache entry — launch fingerprint missing from key")
	}
	if st := submit(32); !st.CacheHit {
		t.Fatal("repeated scale-32 run missed the cache")
	}
	if misses := metricValue(t, ts, "gpuscoutd_cache_misses_total"); misses != 2 {
		t.Errorf("cache misses = %g, want 2", misses)
	}
}

// TestQueueBackpressure fills the bounded queue and expects 429 +
// Retry-After on the next submission.
func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Full three-pillar run at a scale that stays in flight long enough
	// for the cancel below to land while the job is still running.
	slow := `{"workload":"sgemm_naive","scale":512}`

	// Job 1: wait until it occupies the single worker.
	resp, body := postAnalyze(t, ts, "?async=1", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d, body %s", resp.StatusCode, body)
	}
	var acc1 struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &acc1); err != nil || acc1.JobID == "" {
		t.Fatalf("job 1 accept body %s: %v", body, err)
	}
	waitForState(t, ts, acc1.JobID, StateRunning)

	// Job 2 fills the queue (depth 1).
	resp, body = postAnalyze(t, ts, "?async=1", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d, body %s", resp.StatusCode, body)
	}

	// Job 3 must be shed with backpressure.
	resp, body = postAnalyze(t, ts, "?async=1", slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if depth := metricValue(t, ts, "gpuscoutd_queue_depth"); depth != 1 {
		t.Errorf("queue depth = %g, want 1", depth)
	}

	// Cancel job 1 via the API; it must reach a terminal cancelled state,
	// freeing the worker for job 2.
	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc1.JobID, nil)
	respDel, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	respDel.Body.Close()
	st := waitForTerminal(t, ts, acc1.JobID)
	if st.State != StateCancelled {
		t.Errorf("cancelled job state = %s, want %s", st.State, StateCancelled)
	}
}

// TestJobTimeout gives a heavy job a tiny deadline and expects the
// simulation to be interrupted, reporting state "timeout".
// TestJobTimeout covers the pre-degradation semantics: with stage
// budgets disabled, a job whose simulation outlives the whole deadline
// times out and reports 504.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		StageBudgets: scout.StageBudgets{Disabled: true},
	})
	resp, body := postAnalyze(t, ts, "", `{"workload":"sgemm_naive","timeout_ms":20}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateTimeout {
		t.Errorf("state = %s, want %s", st.State, StateTimeout)
	}
	if st.Error == "" {
		t.Error("timed-out job carries no error message")
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="timeout"}`); n != 1 {
		t.Errorf("timeout counter = %g, want 1", n)
	}
}

// TestSimTimeoutDegrades is the staged-deadline acceptance path: with
// budgets on (the default), a sim slice too small for the launch yields
// a degraded static-only report — StateDone, ledger naming sim.launch —
// instead of an empty StateTimeout, and the degradation is visible in
// gpuscoutd_degraded_reports_total{kind="sim_timeout"}.
func TestSimTimeoutDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// 60ms total → ~33ms sim slice: enough to start sgemm_naive's launch,
	// not to finish it; the static pillars fit comfortably.
	resp, body := postAnalyze(t, ts, "", `{"workload":"sgemm_naive","timeout_ms":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want %s (error %q)", st.State, StateDone, st.Error)
	}
	if st.Degradations == 0 {
		t.Fatal("degraded job reports zero ledger entries")
	}
	var rep struct {
		DryRun       bool                `json:"dry_run"`
		Degradations []scout.Degradation `json:"degradations"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if !rep.DryRun {
		t.Error("sim-timeout fallback must be a static (dry-run-equivalent) report")
	}
	found := false
	for _, d := range rep.Degradations {
		if d.Stage == scout.StageSim && d.Site == "sim.launch" && d.Kind == scout.DegradeTimeout {
			found = true
		}
	}
	if !found {
		t.Errorf("ledger %+v misses the sim/timeout/sim.launch entry", rep.Degradations)
	}
	if n := metricValue(t, ts, `gpuscoutd_degraded_reports_total{kind="sim_timeout"}`); n != 1 {
		t.Errorf(`degraded_reports_total{kind="sim_timeout"} = %g, want 1`, n)
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="timeout"}`); n != 0 {
		t.Errorf("timeout counter = %g, want 0 (job must degrade, not time out)", n)
	}
	// Degraded reports must not poison the cache: the same request again
	// with a generous deadline gets the full dynamic report.
	resp2, body2 := postAnalyze(t, ts, "", `{"workload":"sgemm_naive"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: status %d (body %s)", resp2.StatusCode, body2)
	}
	var st2 Status
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.CacheHit {
		t.Error("degraded report was served from cache")
	}
	var rep2 struct {
		DryRun bool `json:"dry_run"`
	}
	if err := json.Unmarshal(st2.Report, &rep2); err != nil {
		t.Fatalf("unmarshal second report: %v", err)
	}
	if rep2.DryRun {
		t.Error("full-deadline rerun still degraded")
	}
}

// TestAnalyzeSASSUpload posts raw SASS text; the service analyzes it
// statically.
func TestAnalyzeSASSUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	text := sass.Print(testKernel(t))
	reqBody, _ := json.Marshal(AnalyzeRequest{SASS: text})
	resp, body := postAnalyze(t, ts, "", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	var rep struct {
		DryRun bool `json:"dry_run"`
	}
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if !rep.DryRun {
		t.Error("uploaded SASS must be analyzed as a dry run")
	}
}

// TestAnalyzeCubinUpload round-trips a kernel through the cubin codec and
// the HTTP API, including the corrupt-input path.
func TestAnalyzeCubinUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	bin := cubin.New("sm_70")
	if err := bin.Add(testKernel(t)); err != nil {
		t.Fatal(err)
	}
	data, err := cubin.Encode(bin)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, _ := json.Marshal(AnalyzeRequest{Cubin: data})
	resp, body := postAnalyze(t, ts, "", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}

	// Corrupt cubin: the job must fail with a descriptive error, not 500.
	reqBody, _ = json.Marshal(AnalyzeRequest{Cubin: data[:len(data)/2]})
	resp, body = postAnalyze(t, ts, "", string(reqBody))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt cubin: status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "cubin") {
		t.Errorf("corrupt cubin: state=%s error=%q", st.State, st.Error)
	}
}

// TestRequestValidation exercises the 400 paths.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{}`, // no source
		`{"workload":"transpose_naive","sass":"x"}`, // two sources
		`{"workload":"transpose_naive","scale":-1}`,
		`{"kernel":"k","workload":"transpose_naive"}`, // kernel without cubin
		`{"unknown_field":1}`,
		`not json`,
	} {
		resp, _ := postAnalyze(t, ts, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Unknown workload fails at build time (the request shape is valid).
	resp, body := postAnalyze(t, ts, "", `{"workload":"nope"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown workload: status %d, body %s", resp.StatusCode, body)
	}
}

// TestEndpoints covers workloads, healthz, job lookup misses.
func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	var wl struct {
		Workloads []string `json:"workloads"`
	}
	getJSON(t, ts.URL+"/v1/workloads", &wl)
	if len(wl.Workloads) == 0 {
		t.Error("no workloads listed")
	}
	found := false
	for _, n := range wl.Workloads {
		if n == "sgemm_naive" {
			found = true
		}
	}
	if !found {
		t.Errorf("sgemm_naive missing from %v", wl.Workloads)
	}

	var hz struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, hz.Status)
	}

	if resp := getJSON(t, ts.URL+"/v1/jobs/j99999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func waitForState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State == want || st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s reached %s while waiting for %s (%s)", id, st.State, want, st.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func waitForTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

// testKernel builds a small valid kernel for upload tests.
func testKernel(t *testing.T) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{
		Name: "_Z4tinyPf", Arch: "sm_70", NumRegs: 8, ConstBytes: 0x170,
		SourceFile: "tiny.cu",
		Source:     []string{"__global__ void tiny(float* x) {", "  x[0] = 1.0f;", "}"},
	}
	ctrl := sass.DefaultCtrl()
	k.Insts = []sass.Inst{
		{Pred: sass.PT, Op: sass.OpMOV, Dst: []sass.Operand{sass.R(0)}, Src: []sass.Operand{sass.Imm(0x3f800000)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpSTG, Mods: []string{"E", "SYS"}, Dst: []sass.Operand{sass.Mem(2, 0)}, Src: []sass.Operand{sass.R(0)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpEXIT, Ctrl: ctrl, Line: 3},
	}
	k.RenumberPCs()
	return k
}

// TestSimWorkersPlumbing: sim_workers reaches the simulator (the job
// completes, the per-launch sim metrics are observed), and a follow-up
// request differing only in sim_workers is served from the cache —
// worker count is deliberately absent from the cache key because
// results are worker-invariant.
func TestSimWorkersPlumbing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	resp, body := postAnalyze(t, ts, "", `{"workload":"transpose_naive","scale":32,"sim_workers":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st1 Status
	if err := json.Unmarshal(body, &st1); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first analyze: state=%s cacheHit=%v, want done/false (err %q)", st1.State, st1.CacheHit, st1.Error)
	}
	if n := metricValue(t, ts, "gpuscoutd_sim_speedup_count"); n < 1 {
		t.Errorf("sim speedup observations = %g, want >= 1", n)
	}
	if n := metricValue(t, ts, "gpuscoutd_sim_wall_seconds_count"); n < 1 {
		t.Errorf("sim wall-time observations = %g, want >= 1", n)
	}
	if v := metricValue(t, ts, "gpuscoutd_sim_workers_default"); v != 1 {
		t.Errorf("sim workers default = %g, want 1", v)
	}

	resp, body = postAnalyze(t, ts, "", `{"workload":"transpose_naive","scale":32,"sim_workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("second analyze: state=%s cacheHit=%v, want done/true — sim_workers must not change the cache key", st2.State, st2.CacheHit)
	}
	if !bytes.Equal(st1.Report, st2.Report) {
		t.Error("report differs across sim_workers values")
	}
}

// TestSimWorkersValidation rejects negative sim_workers.
func TestSimWorkersValidation(t *testing.T) {
	req := AnalyzeRequest{Workload: "transpose_naive", SimWorkers: -1}
	if err := req.validate(); err == nil {
		t.Error("negative sim_workers accepted")
	}
}
