//go:build faultinject

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/store"
)

// These tests drop a running daemon at each persistence kill site and
// restart it against the same data-dir, asserting the durability
// contract end to end: no acknowledged job is lost, no corrupt bytes
// are ever served, and a recovered daemon converges to byte-identical
// reports. The store-level suite (internal/store) covers the same
// sites at the layer below; here the faults travel through Submit,
// the worker pool, and the HTTP surface.

// preserveDataDir copies the data-dir into $CRASH_ARTIFACT_DIR when
// the test fails, so CI can attach the journal and report store for
// post-mortem instead of losing them with the temp dir.
func preserveDataDir(t *testing.T, dir string) {
	t.Helper()
	t.Cleanup(func() {
		dest := os.Getenv("CRASH_ARTIFACT_DIR")
		if !t.Failed() || dest == "" {
			return
		}
		target := filepath.Join(dest, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := copyTree(dir, target); err != nil {
			t.Logf("preserve data dir: %v", err)
			return
		}
		t.Logf("crashed data dir preserved at %s", target)
	})
}

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if de.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
}

// armStoreFault arms a single-shot injected failure at a store kill
// site: the first hit errors, the store goes fail-stop, and the test
// restarts it — the in-process analogue of kill -9 at that instruction.
func armStoreFault(t *testing.T, site string) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if _, err := faultinject.Arm(faultinject.Fault{Site: site, Mode: faultinject.ModeError, Times: 1}); err != nil {
		t.Fatal(err)
	}
}

// endLife hard-stops one daemon life so the next can open the same
// data-dir. Closing a dead store is a no-op beyond releasing handles.
func endLife(svc *Service, ts *httptest.Server) {
	ts.Close()
	svc.Close()
	if svc.cfg.Store != nil {
		svc.cfg.Store.Close()
	}
	faultinject.Reset()
}

func analyzeOK(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, data := postAnalyze(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze %s: status %d, body %s", body, resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != StateDone || len(st.Report) == 0 {
		t.Fatalf("analyze %s: state=%s, want done with report", body, st.State)
	}
	return st
}

// TestChaosDaemonMidJournalAppend kills the daemon inside the
// write-ahead append: the client gets 503 (never an acknowledgement),
// the store goes fail-stop, and the restarted daemon neither
// resurrects the torn job nor loses anything acknowledged before it.
func TestChaosDaemonMidJournalAppend(t *testing.T) {
	dir := t.TempDir()
	preserveDataDir(t, dir)
	baseline := `{"workload":"transpose_naive","scale":32}`

	svc, ts := newStoreServer(t, dir, Config{Workers: 2, QueueDepth: 8})
	want := analyzeOK(t, ts, baseline).Report

	armStoreFault(t, "store.journal.append")
	resp, _ := postAnalyze(t, ts, "", `{"workload":"jacobi_naive","scale":32}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("torn accept: status %d, want 503 (job must not be acknowledged)", resp.StatusCode)
	}
	// Fail-stop: the daemon refuses all further work rather than
	// acknowledging jobs the dead journal cannot record.
	resp, _ = postAnalyze(t, ts, "", baseline)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead store accepted a job: status %d", resp.StatusCode)
	}
	endLife(svc, ts)

	svc2, ts2 := newStoreServer(t, dir, Config{Workers: 2, QueueDepth: 8})
	waitRecovered(t, svc2)
	if got := svc2.RecoveredJobs(); got != 0 {
		t.Errorf("recovered %d jobs, want 0 — the torn accept was never acknowledged", got)
	}
	// The acknowledged baseline survives on disk and serves without
	// re-simulating; the shed request now goes through cleanly.
	st := analyzeOK(t, ts2, baseline)
	if !st.CacheHit || !bytes.Equal(want, st.Report) {
		t.Errorf("baseline after restart: cacheHit=%v identical=%v", st.CacheHit, bytes.Equal(want, st.Report))
	}
	if misses := metricValue(t, ts2, "gpuscoutd_cache_misses_total"); misses != 0 {
		t.Errorf("restart re-simulated the baseline: %g pipeline misses", misses)
	}
	analyzeOK(t, ts2, `{"workload":"jacobi_naive","scale":32}`)
}

// TestChaosDaemonMidTombstone kills the daemon after a job finished
// but before its tombstone landed: the restart replays the accept,
// and the recovered job converges through the persistent report store
// — addressable under its original ID, byte-identical, zero pipeline
// runs.
func TestChaosDaemonMidTombstone(t *testing.T) {
	dir := t.TempDir()
	preserveDataDir(t, dir)
	baseline := `{"workload":"transpose_naive","scale":32}`

	svc, ts := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	armStoreFault(t, "store.journal.tombstone")
	// The job completes — report computed, stored, returned — but the
	// injected crash suppresses its tombstone.
	want := analyzeOK(t, ts, baseline).Report
	if faultinject.Fired("store.journal.tombstone") == 0 {
		t.Fatal("tombstone site never fired")
	}
	endLife(svc, ts)

	svc2, ts2 := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	waitRecovered(t, svc2)

	// The journal listed the job as live, so recovery re-enqueued it
	// under its original ID; it must converge via the disk store.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st Status
		resp := getJSON(t, ts2.URL+"/v1/jobs/j00000001", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET recovered job: status %d", resp.StatusCode)
		}
		if st.State == StateDone {
			if !st.CacheHit || !bytes.Equal(want, st.Report) {
				t.Fatalf("recovered job: cacheHit=%v identical=%v, want store-served identical bytes",
					st.CacheHit, bytes.Equal(want, st.Report))
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("recovered job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := svc2.RecoveredJobs(); got != 1 {
		t.Errorf("recovered_jobs = %d, want 1", got)
	}
	if hits := metricValue(t, ts2, "gpuscoutd_store_hits_total"); hits < 1 {
		t.Errorf("store_hits_total = %g, want >= 1 (convergence must come from disk)", hits)
	}
	if misses := metricValue(t, ts2, "gpuscoutd_cache_misses_total"); misses != 0 {
		t.Errorf("recovered job re-simulated: %g pipeline misses", misses)
	}
	// This life's tombstone landed, so the journal is quiescent.
	var hz map[string]any
	getJSON(t, ts2.URL+"/healthz", &hz)
	dd, _ := hz["data_dir"].(map[string]any)
	if dd == nil {
		t.Fatal("healthz data_dir block missing")
	}
	if live, _ := dd["journal_live_jobs"].(float64); live != 0 {
		t.Errorf("journal_live_jobs = %v after convergence, want 0", dd["journal_live_jobs"])
	}
}

// normalizeReport zeroes the one legitimately non-deterministic report
// field — overhead_cycles.sass is derived from host wall-clock timing
// (scout.Report.OverheadSASSCycles) — so recomputed reports can be
// compared structurally. Store-served reports never need this: they
// are the original bytes.
func normalizeReport(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalize report: %v", err)
	}
	if oc, ok := m["overhead_cycles"].(map[string]any); ok {
		oc["sass"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosDaemonMidReportRename kills the daemon between a report's
// temp write and its rename: the client already has the report, the
// disk copy is lost, and the restarted daemon self-heals by
// recomputing — identical to both the first life and a never-crashed
// control daemon (modulo the wall-clock overhead field), with zero
// corrupt entries.
func TestChaosDaemonMidReportRename(t *testing.T) {
	dir := t.TempDir()
	preserveDataDir(t, dir)
	baseline := `{"workload":"transpose_naive","scale":32}`

	// Control: a daemon that never crashes, for report identity.
	_, ctrl := newStoreServer(t, t.TempDir(), Config{Workers: 1, QueueDepth: 8})
	control := normalizeReport(t, analyzeOK(t, ctrl, baseline).Report)

	svc, ts := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	armStoreFault(t, "store.report.rename")
	// The pipeline runs and the client is answered; only the disk
	// write-through dies (swallowed — the report exists in memory).
	first := analyzeOK(t, ts, baseline).Report
	if !bytes.Equal(control, normalizeReport(t, first)) {
		t.Fatal("first life diverged from the control daemon")
	}
	if faultinject.Fired("store.report.rename") == 0 {
		t.Fatal("report rename site never fired")
	}
	endLife(svc, ts)

	svc2, ts2 := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	waitRecovered(t, svc2)
	// The report never reached the store and the tombstone died with
	// it, so recovery re-runs the job: exactly one pipeline pass.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st Status
		resp := getJSON(t, ts2.URL+"/v1/jobs/j00000001", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET recovered job: status %d", resp.StatusCode)
		}
		if st.State == StateDone {
			if !bytes.Equal(control, normalizeReport(t, st.Report)) {
				t.Fatal("recomputed report diverged from the control daemon")
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("recovered job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := svc2.RecoveredJobs(); got != 1 {
		t.Errorf("recovered_jobs = %d, want 1", got)
	}
	// No half-written debris: the orphan temp file is swept at Open and
	// nothing was ever quarantined (a torn rename leaves no entry at all).
	des, err := os.ReadDir(filepath.Join(dir, "reports"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Errorf("orphan temp file %s survived restart", de.Name())
		}
	}
	if q := metricValue(t, ts2, "gpuscoutd_store_corrupt_quarantined"); q != 0 {
		t.Errorf("corrupt_quarantined = %g, want 0", q)
	}
	// Self-heal is durable: a third life serves the recomputed report
	// from disk.
	endLife(svc2, ts2)
	svc3, ts3 := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 8})
	waitRecovered(t, svc3)
	st3 := analyzeOK(t, ts3, baseline)
	if !st3.CacheHit || !bytes.Equal(control, normalizeReport(t, st3.Report)) {
		t.Errorf("third life: cacheHit=%v identical=%v, want disk-served identical report",
			st3.CacheHit, bytes.Equal(control, normalizeReport(t, st3.Report)))
	}
}

// TestChaosDaemonMidCompactRename kills the daemon between the
// compacted journal's temp write and its rename: the uncompacted
// journal stays authoritative, the restart sweeps journal.tmp, and
// the daemon keeps working.
func TestChaosDaemonMidCompactRename(t *testing.T) {
	dir := t.TempDir()
	preserveDataDir(t, dir)
	opts := store.Options{FsyncPolicy: store.FsyncNever, CompactAfter: 4}
	baseline := `{"workload":"transpose_naive","dry_run":true}`

	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	analyzeOK(t, ts, baseline)

	armStoreFault(t, "store.compact.rename")
	// Churn finished jobs until the journal lag trips a compaction into
	// the armed rename. Submissions may start failing 503 once the
	// store is dead; the loop only cares that the site fired.
	for i := 0; i < 30 && faultinject.Fired("store.compact.rename") == 0; i++ {
		resp, _ := postAnalyze(t, ts, "", baseline)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("churn %d: status %d", i, resp.StatusCode)
		}
	}
	if faultinject.Fired("store.compact.rename") == 0 {
		t.Fatal("compaction never tripped the armed rename site")
	}
	endLife(svc, ts)

	st2, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := New(Config{Workers: 1, QueueDepth: 8, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(func() { endLife(svc2, ts2) })
	waitRecovered(t, svc2)

	if _, err := os.Stat(filepath.Join(dir, "journal.tmp")); !os.IsNotExist(err) {
		t.Error("journal.tmp survived restart")
	}
	// At most the one in-flight churn job comes back; everything
	// tombstoned before the crash stays tombstoned.
	if got := svc2.RecoveredJobs(); got > 1 {
		t.Errorf("recovered %d jobs, want <= 1", got)
	}
	// The daemon is fully live: the baseline serves from disk and new
	// compactions succeed (exercised by more churn).
	if got := analyzeOK(t, ts2, baseline); !got.CacheHit {
		t.Error("baseline not served from the persistent store after a crashed compaction")
	}
	for i := 0; i < 8; i++ {
		analyzeOK(t, ts2, baseline)
	}
	var hz map[string]any
	getJSON(t, ts2.URL+"/healthz", &hz)
	if hz["status"] != "ok" {
		t.Errorf("healthz after crashed compaction: %v", hz["status"])
	}
}

// TestSoakCrashRestartCycles loops crash/restart cycles over the same
// data-dir, rotating through every kill site. Each life must serve the
// baseline workload byte-identically; the final clean life must serve
// it from disk. SOAK_CYCLES overrides the cycle count (make soak).
func TestSoakCrashRestartCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("soak suite skipped in -short")
	}
	cycles := 4
	if v := os.Getenv("SOAK_CYCLES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cycles = n
		}
	}
	dir := t.TempDir()
	preserveDataDir(t, dir)
	sites := []string{
		"store.journal.append",
		"store.journal.tombstone",
		"store.report.rename",
		"store.compact.rename",
	}
	baseline := `{"workload":"transpose_naive","scale":32}`
	opts := store.Options{FsyncPolicy: store.FsyncNever, CompactAfter: 4}
	var want []byte

	openLife := func() (*Service, *httptest.Server) {
		st, err := store.Open(dir, opts)
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		svc, err := New(Config{Workers: 2, QueueDepth: 16, Store: st})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return svc, httptest.NewServer(svc.Handler())
	}

	for cycle := 0; cycle < cycles; cycle++ {
		faultinject.Reset()
		svc, ts := openLife()
		waitRecovered(t, svc)

		st := analyzeOK(t, ts, baseline)
		if want == nil {
			want = st.Report
		} else if !bytes.Equal(want, st.Report) {
			endLife(svc, ts)
			t.Fatalf("cycle %d: baseline report diverged after %d crashes", cycle, cycle)
		}

		site := sites[cycle%len(sites)]
		if _, err := faultinject.Arm(faultinject.Fault{Site: site, Mode: faultinject.ModeError, Times: 1}); err != nil {
			t.Fatal(err)
		}
		// Drive distinct-key traffic until the armed site fires. Unique
		// sample_sms values force fresh cache keys, so every request
		// journals, computes, stores, and tombstones.
		for i := 0; i < 50 && faultinject.Fired(site) == 0; i++ {
			body := fmt.Sprintf(`{"workload":"transpose_naive","dry_run":true,"sample_sms":%d}`, cycle*64+i+1)
			resp, _ := postAnalyze(t, ts, "", body)
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				endLife(svc, ts)
				t.Fatalf("cycle %d churn %d: status %d", cycle, i, resp.StatusCode)
			}
		}
		fired := faultinject.Fired(site)
		endLife(svc, ts)
		if fired == 0 {
			t.Fatalf("cycle %d: site %s never fired", cycle, site)
		}
	}

	// Final clean life: everything converges and the baseline comes
	// straight off disk.
	faultinject.Reset()
	svc, ts := openLife()
	t.Cleanup(func() { endLife(svc, ts) })
	waitRecovered(t, svc)
	st := analyzeOK(t, ts, baseline)
	if !st.CacheHit || !bytes.Equal(want, st.Report) {
		t.Fatalf("final life: cacheHit=%v identical=%v, want disk-served identical bytes",
			st.CacheHit, bytes.Equal(want, st.Report))
	}
	if hits := metricValue(t, ts, "gpuscoutd_store_hits_total"); hits < 1 {
		t.Errorf("final life store_hits_total = %g, want >= 1", hits)
	}
	if q := metricValue(t, ts, "gpuscoutd_store_corrupt_quarantined"); q != 0 {
		t.Errorf("corrupt_quarantined = %g after %d crashes, want 0", q, cycles)
	}
}
