package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the analysis.
	StateRunning State = "running"
	// StateDone: finished successfully; the report is available.
	StateDone State = "done"
	// StateFailed: the analysis returned an error.
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client (DELETE or disconnect).
	StateCancelled State = "cancelled"
	// StateTimeout: the per-job deadline expired mid-analysis.
	StateTimeout State = "timeout"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateTimeout:
		return true
	}
	return false
}

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one kernel
// source must be set: Workload (a built-in case-study kernel, run through
// the full three-pillar pipeline), SASS (nvdisasm-style text), or Cubin
// (raw container bytes, base64-encoded in JSON). Uploaded SASS and cubins
// carry no launch harness, so they are analyzed statically (dry run).
type AnalyzeRequest struct {
	// Workload names a built-in workload (see GET /v1/workloads).
	Workload string `json:"workload,omitempty"`
	// Scale is the workload problem scale (0 = the workload's default).
	Scale int `json:"scale,omitempty"`
	// SASS is nvdisasm-style SASS text to analyze statically.
	SASS string `json:"sass,omitempty"`
	// Cubin is a cubin container (base64 in JSON) to analyze statically.
	Cubin []byte `json:"cubin,omitempty"`
	// Kernel selects a kernel within the cubin (default: first).
	Kernel string `json:"kernel,omitempty"`
	// Arch is the target architecture ("sm_70"/"V100", "sm_60", "sm_80");
	// default sm_70.
	Arch string `json:"arch,omitempty"`
	// ArchCompare names a second architecture: the workload is analyzed
	// on both Arch and ArchCompare and the job's report becomes the
	// cross-arch comparison (deltas plus both full reports). Workload
	// analyses only.
	ArchCompare string `json:"arch_compare,omitempty"`
	// DryRun restricts a workload analysis to the static pillar.
	DryRun bool `json:"dry_run,omitempty"`
	// Verify re-executes each recommendation's paired optimized variant
	// and attaches the measured Verification blocks (workload analyses
	// only; incompatible with dry_run).
	Verify bool `json:"verify,omitempty"`
	// Sensitivity re-simulates the workload under the hardware
	// perturbation matrix, attaches dominant-resource sensitivity to the
	// report and findings, and ranks findings by estimated speedup
	// (workload analyses only; incompatible with dry_run).
	Sensitivity bool `json:"sensitivity,omitempty"`
	// StallSlices attaches a backward def-use producer chain to each
	// finding's highest-stall PC (needs the dynamic pillars; ignored on
	// dry runs).
	StallSlices bool `json:"stall_slices,omitempty"`
	// SamplingPeriod overrides the CUPTI sampling period in cycles.
	SamplingPeriod float64 `json:"sampling_period,omitempty"`
	// SampleSMs caps how many SMs the simulator models (0 = default).
	SampleSMs int `json:"sample_sms,omitempty"`
	// SimWorkers sets how many sampled SMs simulate concurrently for
	// this job (0 = the server default, normally 1). Any value yields
	// the same report; higher values shorten one job at the expense of
	// neighbors on a busy daemon.
	SimWorkers int `json:"sim_workers,omitempty"`
	// TimeoutMS bounds this job's execution (0 = the server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// validate checks the request shape without building anything.
func (r *AnalyzeRequest) validate() error {
	sources := 0
	if r.Workload != "" {
		sources++
	}
	if r.SASS != "" {
		sources++
	}
	if len(r.Cubin) > 0 {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of workload, sass, cubin must be set (got %d)", sources)
	}
	if r.Kernel != "" && len(r.Cubin) == 0 {
		return fmt.Errorf("kernel selects a kernel within a cubin; no cubin given")
	}
	if r.Scale < 0 {
		return fmt.Errorf("scale must be >= 0")
	}
	if r.Verify && r.Workload == "" {
		return fmt.Errorf("verify needs a workload analysis (recommendation pairs are workload-keyed)")
	}
	if r.Verify && r.DryRun {
		return fmt.Errorf("verify needs the dynamic pillars; incompatible with dry_run")
	}
	if r.Sensitivity && r.Workload == "" {
		return fmt.Errorf("sensitivity needs a workload analysis (the sweep rebuilds the kernel per perturbed arch)")
	}
	if r.Sensitivity && r.DryRun {
		return fmt.Errorf("sensitivity needs a baseline measurement; incompatible with dry_run")
	}
	if r.ArchCompare != "" && r.Workload == "" {
		return fmt.Errorf("arch_compare needs a workload analysis (uploaded kernels are already lowered for one arch)")
	}
	if r.SimWorkers < 0 {
		return fmt.Errorf("sim_workers must be >= 0")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	return nil
}

// Job is one queued or executed analysis.
type Job struct {
	// ID is the job's handle, e.g. "j00000007".
	ID string

	req         AnalyzeRequest
	ctx         context.Context
	cancel      context.CancelFunc
	done        chan struct{}
	fingerprint string        // quarantine identity of the input
	timeout     time.Duration // the job's whole deadline budget
	onFinish    func(State)   // set by the service to journal the tombstone

	mu           sync.Mutex
	state        State
	report       []byte // marshaled report JSON, set on StateDone
	errMsg       string
	cacheHit     bool
	userAbort    bool // Cancel() was called (vs deadline expiry)
	attempts     int  // execution attempts (>1 after a transient retry)
	degradations int  // ledger entries in the shipped report
	created      time.Time
	started      time.Time
	finished     time.Time
}

func newJob(id string, req AnalyzeRequest, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job. Safe to call in any state, any number of times;
// a finished job is unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.userAbort = true
	}
	j.mu.Unlock()
	j.cancel()
}

func (j *Job) markRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) setAttempts(n int) {
	j.mu.Lock()
	j.attempts = n
	j.mu.Unlock()
}

func (j *Job) setDegradations(n int) {
	j.mu.Lock()
	j.degradations = n
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, report []byte, errMsg string, cacheHit bool) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.report = report
	j.errMsg = errMsg
	j.cacheHit = cacheHit
	j.finished = time.Now()
	hook := j.onFinish
	j.mu.Unlock()
	j.cancel() // release the timeout timer
	if hook != nil {
		// Journal the terminal state (the job's tombstone) before Done is
		// observable: once a waiter sees the job finished, a restart will
		// not resurrect it. A failed append is tolerable — the job just
		// re-runs after a crash and converges through the report store.
		hook(state)
	}
	close(j.done)
}

// interrupted maps the job context's termination cause to a terminal
// state: explicit Cancel wins over deadline expiry.
func (j *Job) interrupted() State {
	j.mu.Lock()
	abort := j.userAbort
	j.mu.Unlock()
	if abort {
		return StateCancelled
	}
	if j.ctx.Err() == context.DeadlineExceeded {
		return StateTimeout
	}
	return StateCancelled
}

// Status is the wire form of a job, served by GET /v1/jobs/{id}.
type Status struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Workload string `json:"workload,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	Arch     string `json:"arch,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// Attempts is set past 1 when transient failures were retried.
	Attempts int `json:"attempts,omitempty"`
	// Degradations counts the report's ledger entries (0 = clean run).
	Degradations int             `json:"degradations,omitempty"`
	CreatedAt    time.Time       `json:"created_at"`
	StartedAt    *time.Time      `json:"started_at,omitempty"`
	FinishedAt   *time.Time      `json:"finished_at,omitempty"`
	Report       json.RawMessage `json:"report,omitempty"`
}

// Snapshot returns the job's current wire form. The Report field aliases
// the immutable cached JSON; callers must not mutate it.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:           j.ID,
		State:        j.state,
		Workload:     j.req.Workload,
		Kernel:       j.req.Kernel,
		Arch:         j.req.Arch,
		CacheHit:     j.cacheHit,
		Error:        j.errMsg,
		Attempts:     j.attempts,
		Degradations: j.degradations,
		CreatedAt:    j.created,
		Report:       j.report,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// StateNow returns the job's current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
