package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpuscout/internal/store"
)

// openTestStore opens a store on dir that the test closes; the service
// built over it must be closed first (newStoreServer arranges that via
// t.Cleanup ordering: LIFO, so register the store before the service).
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{FsyncPolicy: store.FsyncNever})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func newStoreServer(t *testing.T, dir string, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	cfg.Store = openTestStore(t, dir)
	return newTestServer(t, cfg)
}

// waitRecovered blocks until startup recovery has drained (readiness no
// longer reports the journal replay).
func waitRecovered(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !svc.recovering.Load() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("recovery never finished")
}

// TestWarmRestartServesFromDisk is the tentpole acceptance test: a
// restarted daemon (fresh memory cache, same data-dir) serves
// previously computed fingerprints from the persistent store without
// re-simulating — store hits observed, zero pipeline runs, and the
// bytes identical to the first life's reports.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	reqs := []string{
		`{"workload":"transpose_naive","scale":32}`,
		`{"workload":"jacobi_naive","scale":32}`,
	}

	// First life: compute and persist.
	first := map[string][]byte{}
	{
		svc, ts := newStoreServer(t, dir, Config{Workers: 2, QueueDepth: 8})
		for _, body := range reqs {
			resp, data := postAnalyze(t, ts, "", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("first life %s: status %d, body %s", body, resp.StatusCode, data)
			}
			var st Status
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatal(err)
			}
			if st.State != StateDone || len(st.Report) == 0 {
				t.Fatalf("first life %s: state=%s", body, st.State)
			}
			first[body] = st.Report
		}
		// End the first life cleanly before the second opens the same
		// directory (the deferred cleanups would only run at test end).
		ts.Close()
		svc.Close()
		svc.cfg.Store.Close()
	}

	// Second life: same data-dir, cold memory cache.
	svc, ts := newStoreServer(t, dir, Config{Workers: 2, QueueDepth: 8})
	waitRecovered(t, svc)
	for _, body := range reqs {
		resp, data := postAnalyze(t, ts, "", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("second life %s: status %d, body %s", body, resp.StatusCode, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || !st.CacheHit {
			t.Fatalf("second life %s: state=%s cacheHit=%v, want a store hit", body, st.State, st.CacheHit)
		}
		if !bytes.Equal(first[body], st.Report) {
			t.Errorf("%s: restarted report differs from the first life's bytes", body)
		}
	}
	if hits := metricValue(t, ts, "gpuscoutd_store_hits_total"); hits != float64(len(reqs)) {
		t.Errorf("store hits = %g, want %d", hits, len(reqs))
	}
	if misses := metricValue(t, ts, "gpuscoutd_cache_misses_total"); misses != 0 {
		t.Errorf("cache (pipeline) misses = %g, want 0 — the restart re-simulated", misses)
	}
}

// TestJournalRecoveryReenqueues: a journal holding an accept without a
// tombstone (the artifact of a crash mid-job) is replayed at startup —
// the job re-runs under its original ID and lands a report.
func TestJournalRecoveryReenqueues(t *testing.T) {
	dir := t.TempDir()
	// Forge the crashed daemon's journal directly at the store layer.
	{
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reqJSON, _ := json.Marshal(AnalyzeRequest{Workload: "transpose_naive", Scale: 32})
		r := AnalyzeRequest{Workload: "transpose_naive", Scale: 32}
		if err := st.AppendAccept("j00000007", r.Fingerprint(), reqJSON); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}

	svc, ts := newStoreServer(t, dir, Config{Workers: 2, QueueDepth: 8})
	waitRecovered(t, svc)

	// The recovered job is addressable under its journaled ID.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st Status
		resp := getJSON(t, ts.URL+"/v1/jobs/j00000007", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET recovered job: status %d", resp.StatusCode)
		}
		if st.State == StateDone {
			if len(st.Report) == 0 {
				t.Fatal("recovered job finished without a report")
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("recovered job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /healthz accounts for the replay.
	var hz map[string]any
	getJSON(t, ts.URL+"/healthz", &hz)
	if got, _ := hz["recovered_jobs"].(float64); got != 1 {
		t.Errorf("healthz recovered_jobs = %v, want 1", hz["recovered_jobs"])
	}
	dd, _ := hz["data_dir"].(map[string]any)
	if dd == nil || dd["path"] == "" {
		t.Errorf("healthz data_dir block missing: %v", hz["data_dir"])
	}
	if hits := metricValue(t, ts, "gpuscoutd_recovered_jobs_total"); hits != 1 {
		t.Errorf("recovered_jobs_total = %g, want 1", hits)
	}

	// New submissions resume the ID sequence past the journaled handle.
	j, err := svc.Submit(AnalyzeRequest{Workload: "transpose_naive", DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID <= "j00000007" {
		t.Errorf("post-recovery job ID %s did not resume past the journal's j00000007", j.ID)
	}
}

// TestBreakerStateSurvivesRestart: a fingerprint quarantined in the
// first life is still rejected after a restart against the same
// data-dir — crashing the daemon does not launder poison inputs.
func TestBreakerStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	// A cubin whose body fails decoding deterministically: submissions
	// fail, the breaker opens, and the state lands in breaker.json.
	poison := AnalyzeRequest{Cubin: []byte("not a cubin at all")}
	{
		svc, _ := newStoreServer(t, dir, Config{
			Workers: 1, QueueDepth: 4,
			RetryAttempts: 1, QuarantineAfter: 1, QuarantineCooldown: time.Hour,
		})
		j, err := svc.Submit(poison)
		if err != nil {
			t.Fatalf("poison submit: %v", err)
		}
		<-j.Done()
		if st := j.StateNow(); st != StateFailed {
			t.Fatalf("poison job state = %s, want failed", st)
		}
		// Now quarantined in-memory; the restart must remember it.
		if _, err := svc.Submit(poison); err == nil {
			t.Fatal("poison not quarantined in first life")
		}
	}

	svc2, _ := newStoreServer(t, dir, Config{
		Workers: 1, QueueDepth: 4,
		RetryAttempts: 1, QuarantineAfter: 1, QuarantineCooldown: time.Hour,
	})
	waitRecovered(t, svc2)
	_, err := svc2.Submit(poison)
	if err == nil {
		t.Fatal("restart un-quarantined a poison input")
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("quarantine rejection is not typed: %v", err)
	}
	if qe.RetryAfter <= 0 {
		t.Errorf("QuarantineError.RetryAfter = %v, want > 0", qe.RetryAfter)
	}
}

// TestCacheMaxBytesBound: the in-memory cache honors the byte bound on
// top of the entry cap.
func TestCacheMaxBytesBound(t *testing.T) {
	c := newReportCache(100, 100)
	big := make([]byte, 60)
	c.put("k1", big)
	c.put("k2", big)
	if got := c.size(); got != 1 {
		t.Fatalf("entries after byte-bound eviction = %d, want 1", got)
	}
	if _, ok := c.get("k2"); !ok {
		t.Error("most recent entry evicted instead of the LRU one")
	}
	if got := c.bytesUsed(); got != 60 {
		t.Errorf("bytesUsed = %d, want 60", got)
	}
	// An entry bigger than the whole bound is refused outright.
	c.put("huge", make([]byte, 200))
	if _, ok := c.get("huge"); ok {
		t.Error("over-bound entry was cached")
	}
	// Updating an entry in place re-accounts its bytes.
	c.put("k2", make([]byte, 10))
	if got := c.bytesUsed(); got != 10 {
		t.Errorf("bytesUsed after update = %d, want 10", got)
	}
}
