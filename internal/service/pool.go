package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header — explicit backpressure instead of unbounded
// buffering.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: shutting down")

// pool is a fixed-size worker pool fed by a bounded queue. Submission
// never blocks: when the queue is full the caller gets ErrQueueFull and
// decides what to do (the daemon sheds the request).
type pool struct {
	run    func(*Job)
	wg     sync.WaitGroup
	mu     sync.RWMutex // guards closed vs. sends on queue
	queue  chan *Job
	closed bool
}

func newPool(workers, depth int, run func(*Job)) *pool {
	p := &pool{run: run, queue: make(chan *Job, depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				p.run(j)
			}
		}()
	}
	return p
}

// trySubmit enqueues the job or fails fast.
func (p *pool) trySubmit(j *Job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth is the number of jobs waiting in the queue (not yet picked up by
// a worker).
func (p *pool) depth() int { return len(p.queue) }

// shutdown rejects new submissions, drains the queue, and waits for
// in-flight jobs. Queued jobs still run; cancel them first for a fast
// stop.
func (p *pool) shutdown() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
