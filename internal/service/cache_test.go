package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
)

func TestReportCacheLRU(t *testing.T) {
	c := newReportCache(2, 0)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a was just refreshed, so inserting c evicts b.
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being most recently used")
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}
	// Overwriting an existing key must not grow the cache.
	c.put("a", []byte("A2"))
	if data, _ := c.get("a"); string(data) != "A2" {
		t.Errorf("a = %q after overwrite", data)
	}
	if c.size() != 2 {
		t.Errorf("size = %d after overwrite, want 2", c.size())
	}
}

// TestReportCacheConcurrentChurn hammers a tiny cache with parallel
// get/put churn over a key space 4× its capacity (run under -race in
// CI): the capacity bound must hold at every observation point, and a
// get must never return bytes that belong to a different key — the
// "stale bytes" failure a broken map/list pairing would produce.
func TestReportCacheConcurrentChurn(t *testing.T) {
	const (
		capacity   = 8
		keySpace   = 32
		goroutines = 8
		ops        = 4000
	)
	c := newReportCache(capacity, 0)
	payload := func(k int) []byte { return []byte(fmt.Sprintf("report-%03d-payload", k)) }
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keySpace)
				key := fmt.Sprintf("key-%03d", k)
				if rng.Intn(2) == 0 {
					c.put(key, payload(k))
				} else if data, ok := c.get(key); ok && !bytes.Equal(data, payload(k)) {
					t.Errorf("stale bytes for %s: got %q", key, data)
				}
				if i%64 == 0 {
					if s := c.size(); s > capacity {
						t.Errorf("size %d exceeds capacity %d mid-churn", s, capacity)
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if s := c.size(); s > capacity {
		t.Errorf("final size %d exceeds capacity %d", s, capacity)
	}
	// The cache must still behave after the storm.
	c.put("after", []byte("A"))
	if data, ok := c.get("after"); !ok || string(data) != "A" {
		t.Errorf("cache broken after churn: %q %v", data, ok)
	}
}

func TestReportCacheDisabled(t *testing.T) {
	c := newReportCache(-1, 0)
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := CacheKey("SASS", "sm_70", "static", scout.Options{}, false, false)
	if CacheKey("SASS", "sm_70", "static", scout.Options{}, false, false) != base {
		t.Error("cache key not deterministic")
	}
	variants := []string{
		CacheKey("SASS2", "sm_70", "static", scout.Options{}, false, false),
		CacheKey("SASS", "sm_60", "static", scout.Options{}, false, false),
		CacheKey("SASS", "sm_70", "workload=sgemm_naive scale=256", scout.Options{}, false, false),
		CacheKey("SASS", "sm_70", "workload=sgemm_naive scale=320", scout.Options{}, false, false),
		CacheKey("SASS", "sm_70", "static", scout.Options{DryRun: true}, false, false),
		CacheKey("SASS", "sm_70", "static", scout.Options{SamplingPeriod: 512}, false, false),
		CacheKey("SASS", "sm_70", "static", scout.Options{Sim: sim.Config{SampleSMs: 2}}, false, false),
		CacheKey("SASS", "sm_70", "static", scout.Options{}, true, false),
		CacheKey("SASS", "sm_70", "static", scout.Options{}, false, true),
		CacheKey("SASS", "sm_70", "static", scout.Options{StallSlices: true}, false, false),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides with another key", i)
		}
		seen[v] = true
	}
	if len(base) != 64 {
		t.Errorf("key %q is not a SHA-256 hex digest", base)
	}
}

func TestMetricsExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops.", Label{"kind", "x"})
	c.Add(3)
	g := r.NewGauge("test_depth", "Depth.")
	g.Set(2.5)
	g.Add(-0.5)
	r.NewGaugeFunc("test_fn", "Fn.", func() float64 { return 7 })
	h := r.NewHistogram("test_seconds", "Latency.", []float64{0.1, 1}, Label{"stage", "build"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		`test_ops_total{kind="x"} 3`,
		"# TYPE test_depth gauge",
		"test_depth 2",
		"test_fn 7",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{stage="build",le="0.1"} 1`,
		`test_seconds_bucket{stage="build",le="1"} 2`,
		`test_seconds_bucket{stage="build",le="+Inf"} 3`,
		`test_seconds_sum{stage="build"} 5.55`,
		`test_seconds_count{stage="build"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	got := labelString([]Label{{"a", `x"y\z` + "\n"}})
	want := `{a="x\"y\\z\n"}`
	if got != want {
		t.Errorf("labelString = %s, want %s", got, want)
	}
}

func TestPoolBackpressureAndShutdown(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 8)
	p := newPool(1, 1, func(j *Job) {
		started <- j.ID
		<-block
		j.finish(StateDone, nil, "", false)
	})

	j := func(id string) *Job { return newJob(id, AnalyzeRequest{}, context.Background(), func() {}) }
	if err := p.trySubmit(j("a")); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	<-started // a occupies the worker
	if err := p.trySubmit(j("b")); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if err := p.trySubmit(j("c")); err != ErrQueueFull {
		t.Fatalf("submit c: err = %v, want ErrQueueFull", err)
	}
	if d := p.depth(); d != 1 {
		t.Errorf("depth = %d, want 1", d)
	}

	close(block)
	p.shutdown()
	if err := p.trySubmit(j("d")); err != ErrClosed {
		t.Errorf("submit after shutdown: err = %v, want ErrClosed", err)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	// Many concurrent identical dry-run submissions: all succeed or shed
	// cleanly, and cache + counters stay consistent under -race.
	svc, err := New(Config{Workers: 4, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			j, err := svc.Submit(AnalyzeRequest{Workload: "transpose_naive", DryRun: true})
			if err != nil {
				errs <- fmt.Errorf("submit: %w", err)
				return
			}
			<-j.Done()
			if st := j.Snapshot(); st.State != StateDone {
				errs <- fmt.Errorf("job %s: %s (%s)", j.ID, st.State, st.Error)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	hits := svc.cacheHits.Value()
	misses := svc.cacheMisses.Value()
	if hits+misses != n {
		t.Errorf("hits(%d)+misses(%d) != %d", hits, misses, n)
	}
	if misses < 1 {
		t.Error("expected at least one cache miss")
	}
	if svc.cache.size() != 1 {
		t.Errorf("cache size = %d, want 1 (content-addressed)", svc.cache.size())
	}
}
