package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"gpuscout/internal/scout"
)

// TestAnalyzeArchCompare: a workload request with arch_compare runs both
// lowerings and the report payload is the cross-arch comparison document.
func TestAnalyzeArchCompare(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	req := `{"workload":"sgemm_shared","scale":64,"arch":"sm_70","arch_compare":"sm80"}`

	resp, body := postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal status: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	var cmp scout.JSONArchComparison
	if err := json.Unmarshal(st.Report, &cmp); err != nil {
		t.Fatalf("report is not an arch comparison: %v\n%.200s", err, st.Report)
	}
	if cmp.BaseArch != "sm_70" || cmp.OtherArch != "sm_80" {
		t.Errorf("arches = %q/%q, want sm_70/sm_80", cmp.BaseArch, cmp.OtherArch)
	}
	if cmp.Base == nil || cmp.Other == nil {
		t.Fatal("comparison lacks the two full reports")
	}
	if len(cmp.Deltas) == 0 {
		t.Fatal("no deltas — sgemm_shared must differ across sm_70/sm_80")
	}
	// The headline cross-arch story: sgemm_shared's global-load findings
	// disappear on sm_80 because the backend lowered the staging to
	// cp.async copies.
	onlyBase := 0
	for _, d := range cmp.Deltas {
		if d.Status == string(scout.DeltaOnlyBase) {
			onlyBase++
		}
	}
	if onlyBase == 0 {
		t.Errorf("no sm_70-only findings in deltas: %+v", cmp.Deltas)
	}

	// Identical request again: served from cache.
	resp, body = postAnalyze(t, ts, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st2 Status
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Errorf("second analyze: state=%s cacheHit=%v, want done/true", st2.State, st2.CacheHit)
	}

	// Same workload WITHOUT arch_compare must not collide in the cache
	// with the comparison document.
	resp, body = postAnalyze(t, ts, "", `{"workload":"sgemm_shared","scale":64,"arch":"sm_70"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain analyze: status %d, body %s", resp.StatusCode, body)
	}
	var st3 Status
	if err := json.Unmarshal(body, &st3); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st3.CacheHit {
		t.Error("plain request hit the arch-compare cache entry")
	}
	var plain scout.JSONReport
	if err := json.Unmarshal(st3.Report, &plain); err != nil {
		t.Fatalf("plain report: %v", err)
	}
	if plain.Arch != "sm_70" {
		t.Errorf("plain report arch = %q, want sm_70", plain.Arch)
	}
}

// arch_compare is only meaningful for workload analyses: uploaded SASS or
// cubins are already lowered for one architecture.
func TestArchCompareValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, body := postAnalyze(t, ts, "", `{"sass":"LDG.E R0, [R2] ;","arch_compare":"sm80"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}

	resp, body = postAnalyze(t, ts, "", `{"workload":"sgemm_shared","arch_compare":"sm_999"}`)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unknown arch_compare: status %d, non-status body %s", resp.StatusCode, body)
	}
	if st.State != StateFailed {
		t.Fatalf("unknown arch_compare: state=%s (status %d), want failed", st.State, resp.StatusCode)
	}
}
