package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbe hammers an open breaker just past its
// cool-down from many goroutines: exactly one caller wins the half-open
// probe slot, every loser gets a typed rejection, and the slot's
// lifecycle (failure verdict, interruption, success) behaves.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	const fp = "fp-poison"
	b.recordFailure(fp, "boom")
	time.Sleep(15 * time.Millisecond) // cool-down elapses; breaker is half-open

	const n = 32
	var wg sync.WaitGroup
	admitted := make(chan struct{}, n)
	rejected := make(chan error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if err := b.check(fp); err == nil {
				admitted <- struct{}{}
			} else {
				rejected <- err
			}
		}()
	}
	wg.Wait()
	close(admitted)
	close(rejected)
	if got := len(admitted); got != 1 {
		t.Fatalf("%d concurrent probes admitted, want exactly 1", got)
	}
	for err := range rejected {
		var qe *QuarantineError
		if !errors.As(err, &qe) || !errors.Is(err, ErrQuarantined) {
			t.Fatalf("loser got untyped rejection: %v", err)
		}
		if qe.RetryAfter <= 0 {
			t.Errorf("loser RetryAfter = %v, want > 0", qe.RetryAfter)
		}
	}

	// The probe's failure re-opens the breaker for a full cool-down.
	b.recordFailure(fp, "still broken")
	if err := b.check(fp); err == nil {
		t.Fatal("breaker admitted a submission immediately after a failed probe")
	}
	time.Sleep(15 * time.Millisecond)

	// An interrupted probe (cancelled, timed out) must free the slot via
	// release — otherwise the breaker wedges open forever.
	if err := b.check(fp); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if err := b.check(fp); err == nil {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.release(fp)
	if err := b.check(fp); err != nil {
		t.Fatalf("probe slot not freed by release: %v", err)
	}

	// A successful probe clears the entry entirely.
	if !b.recordSuccess(fp) {
		t.Fatal("recordSuccess reported no entry")
	}
	if err := b.check(fp); err != nil {
		t.Fatalf("cleared fingerprint still rejected: %v", err)
	}
}

// TestQuarantineHalfOpenConcurrentProbes drives the same race through
// the HTTP surface: a thundering herd resubmitting a quarantined input
// right after the cool-down burns exactly one worker — one probe job
// runs, every other client gets 422 with a Retry-After header.
func TestQuarantineHalfOpenConcurrentProbes(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 16,
		RetryAttempts:      1,
		QuarantineAfter:    1,
		QuarantineCooldown: 100 * time.Millisecond,
	})
	body := corruptCubinBody(t)

	// Open the breaker: the poison input runs once and fails.
	resp, b := postAnalyze(t, ts, "", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("poison submission: status %d, body %s", resp.StatusCode, b)
	}
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="failed"}`); n != 1 {
		t.Fatalf("failed jobs = %g, want 1", n)
	}
	time.Sleep(150 * time.Millisecond) // cool-down elapses

	// The herd: concurrent resubmissions against the half-open breaker.
	const herd = 8
	type result struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make([]result, herd)
	var wg sync.WaitGroup
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			resp, data := postAnalyze(t, ts, "", body)
			results[i] = result{resp.StatusCode, resp.Header.Get("Retry-After"), data}
		}(i)
	}
	wg.Wait()

	probes, rejections := 0, 0
	for i, r := range results {
		if r.status != http.StatusUnprocessableEntity {
			t.Fatalf("herd %d: status %d, want 422", i, r.status)
		}
		// The one admitted probe ran a job and returns its failed
		// snapshot; rejected clients get an error body with Retry-After.
		if strings.Contains(string(r.body), `"state"`) {
			probes++
			continue
		}
		rejections++
		var errResp struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(r.body, &errResp); err != nil || !strings.Contains(errResp.Error, "quarantined") {
			t.Errorf("herd %d: rejection body %s", i, r.body)
		}
		if r.retryAfter == "" {
			t.Errorf("herd %d: rejection carries no Retry-After header", i)
		}
	}
	if probes != 1 || rejections != herd-1 {
		t.Fatalf("herd outcome: %d probes, %d rejections; want exactly 1 probe, %d rejections",
			probes, rejections, herd-1)
	}
	// The worker-burn accounting agrees: exactly one more failed job.
	if n := metricValue(t, ts, `gpuscoutd_jobs_finished_total{state="failed"}`); n != 2 {
		t.Errorf("failed jobs = %g after the herd, want 2 (one probe)", n)
	}
	if n := metricValue(t, ts, `gpuscoutd_quarantined_total`); n != herd-1 {
		t.Errorf("quarantined_total = %g, want %d", n, herd-1)
	}
}
