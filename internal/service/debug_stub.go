//go:build !faultinject

package service

import "net/http"

// registerDebugHandlers is a no-op in production builds: the fault
// injection debug API only exists under the `faultinject` build tag.
func (s *Service) registerDebugHandlers(_ *http.ServeMux) {}
