package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// BatchRequest is the body of POST /v1/analyze/batch: many analysis
// requests in one round trip. Items sharing a fingerprint are folded
// into one job *before* enqueue — N identical cubins cost one
// simulation — and the response streams one Status per item, in request
// order, as results become available.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchResponse is the decoded shape of the batch response stream (the
// handler writes it incrementally; clients that don't care about
// streaming can unmarshal the whole body into this).
type BatchResponse struct {
	Results []Status `json:"results"`
}

// batchEnqueueTimeout bounds how long the handler waits for queue
// capacity across a whole batch before failing the remaining items: a
// saturated daemon should degrade a batch into per-item errors, not
// hold the connection open forever.
const batchEnqueueTimeout = 2 * time.Minute

// handleAnalyzeBatch implements POST /v1/analyze/batch. The pipeline-
// relevant property is dedupe-before-enqueue: concurrent identical
// items in one batch would otherwise all miss the cache and each burn a
// worker on the same simulation.
func (s *Service) handleAnalyzeBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var batch BatchRequest
	if err := dec.Decode(&batch); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	n := len(batch.Requests)
	if n == 0 {
		writeError(w, http.StatusBadRequest, "batch holds no requests")
		return
	}
	if n > s.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch holds %d requests, limit %d", n, s.cfg.MaxBatchItems))
		return
	}
	// Validate everything up front: a malformed item fails the whole
	// batch with its index, before any work is enqueued.
	for i := range batch.Requests {
		if err := batch.Requests[i].validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("request %d: %v", i, err))
			return
		}
	}
	s.batchRequests.Inc()
	s.batchItems.Add(uint64(n))

	// Dedupe by input fingerprint: one job per distinct input, shared by
	// every item that carries it.
	type slot struct {
		req AnalyzeRequest
		job *Job
		err error
	}
	var uniq []*slot
	fpTo := map[string]int{}
	idx := make([]int, n) // item index -> uniq index
	for i := range batch.Requests {
		fp := batch.Requests[i].Fingerprint()
		if u, ok := fpTo[fp]; ok {
			idx[i] = u
			s.batchDeduped.Inc()
			continue
		}
		fpTo[fp] = len(uniq)
		idx[i] = len(uniq)
		uniq = append(uniq, &slot{req: batch.Requests[i]})
	}

	// Enqueue each unique job, waiting out transient queue-full periods:
	// a batch is allowed to be larger than the bounded queue — items
	// trickle in as workers drain it — but a wedged queue fails the
	// remaining items instead of blocking forever.
	cancelAll := func() {
		for _, u := range uniq {
			if u.job != nil {
				u.job.Cancel()
			}
		}
	}
	deadline := time.Now().Add(batchEnqueueTimeout)
	for _, u := range uniq {
		for {
			if r.Context().Err() != nil {
				cancelAll()
				return
			}
			j, err := s.Submit(u.req)
			if err == nil {
				u.job = j
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				// Quarantined or shutting down: a per-item error entry,
				// not a batch failure.
				u.err = err
				break
			}
			if time.Now().After(deadline) {
				u.err = fmt.Errorf("batch enqueue timed out: %w", err)
				break
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-r.Context().Done():
				cancelAll()
				return
			}
		}
	}

	// Stream the results in request order. Duplicates resolve to the
	// same job, so their Status entries share one report.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if _, err := w.Write([]byte(`{"results":[`)); err != nil {
		cancelAll()
		return
	}
	for i := 0; i < n; i++ {
		u := uniq[idx[i]]
		var st Status
		switch {
		case u.err != nil:
			st = Status{State: StateFailed, Error: u.err.Error()}
		default:
			select {
			case <-u.job.Done():
				st = u.job.Snapshot()
			case <-r.Context().Done():
				cancelAll()
				return
			}
		}
		if i > 0 {
			if _, err := w.Write([]byte(",")); err != nil {
				cancelAll()
				return
			}
		}
		b, err := json.Marshal(st)
		if err != nil {
			b, _ = json.Marshal(Status{State: StateFailed, Error: "encode status: " + err.Error()})
		}
		if _, err := w.Write(b); err != nil {
			cancelAll()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = w.Write([]byte("]}"))
}
