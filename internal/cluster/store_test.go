package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"gpuscout/internal/service"
	"gpuscout/internal/store"
)

// TestWorkerWarmRejoinServesFromDisk: a worker replica with a data-dir
// restarts on the same address and serves every report it had computed
// straight from its persistent store — zero peer cache-fill lookups,
// zero re-simulations. Disk warms before the ring is consulted, so a
// rejoining worker does not stampede its peers.
func TestWorkerWarmRejoinServesFromDisk(t *testing.T) {
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{"http://" + l0.Addr().String(), "http://" + l1.Addr().String()}
	dataDir := t.TempDir()

	// newWorker builds one worker replica: peer cache-fill over the
	// two-node ring, optionally counting every peer consultation.
	newWorker := func(l net.Listener, self string, st *store.Store, asks *atomic.Int64) (*service.Service, *httptest.Server) {
		t.Helper()
		pc := NewPeerCache(urls, self, PeerCacheConfig{})
		cfg := service.Config{Workers: 2, QueueDepth: 16, Mode: "worker", Store: st}
		cfg.PeerFill = func(ctx context.Context, fp, key string) ([]byte, bool) {
			if asks != nil {
				asks.Add(1)
			}
			return pc.Fill(ctx, fp, key)
		}
		svc, err := service.New(cfg)
		if err != nil {
			t.Fatalf("worker %s: %v", self, err)
		}
		ts := httptest.NewUnstartedServer(svc.Handler())
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		return svc, ts
	}

	// The peer replica stays up the whole test, cold: if the rejoined
	// worker asked it for anything, the asks counter would tick and the
	// misses would force re-simulation.
	svc1, ts1 := newWorker(l1, urls[1], nil, nil)
	t.Cleanup(func() { ts1.Close(); svc1.Close() })

	// First life of worker 0: compute a spread of fingerprints, all
	// written through to its data-dir.
	st0, err := store.Open(dataDir, store.Options{FsyncPolicy: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	svc0, ts0 := newWorker(l0, urls[0], st0, nil)
	const nKeys = 8
	first := make([][]byte, nKeys)
	for i := 0; i < nKeys; i++ {
		resp, data := postJSON(t, urls[0]+"/v1/analyze", clusterKernelReq(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first life key %d: status %d, body %s", i, resp.StatusCode, data)
		}
		var stat service.Status
		if err := json.Unmarshal(data, &stat); err != nil {
			t.Fatal(err)
		}
		if stat.State != service.StateDone || len(stat.Report) == 0 {
			t.Fatalf("first life key %d: state=%s", i, stat.State)
		}
		first[i] = stat.Report
	}
	ts0.Close()
	svc0.Close()
	if err := st0.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// Rejoin: same advertised address, same data-dir, cold memory, and
	// a counting peer-fill hook.
	l0b, err := net.Listen("tcp", l0.Addr().String())
	if err != nil {
		t.Fatalf("re-listen on %s: %v", l0.Addr(), err)
	}
	st0b, err := store.Open(dataDir, store.Options{FsyncPolicy: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st0b.Close() })
	var peerAsks atomic.Int64
	svc0b, ts0b := newWorker(l0b, urls[0], st0b, &peerAsks)
	t.Cleanup(func() { ts0b.Close(); svc0b.Close() })

	for i := 0; i < nKeys; i++ {
		resp, data := postJSON(t, urls[0]+"/v1/analyze", clusterKernelReq(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rejoin key %d: status %d, body %s", i, resp.StatusCode, data)
		}
		var stat service.Status
		if err := json.Unmarshal(data, &stat); err != nil {
			t.Fatal(err)
		}
		if stat.State != service.StateDone || !stat.CacheHit {
			t.Fatalf("rejoin key %d: state=%s cacheHit=%v, want a store hit", i, stat.State, stat.CacheHit)
		}
		if !bytes.Equal(first[i], stat.Report) {
			t.Errorf("rejoin key %d: report differs from the first life's bytes", i)
		}
	}
	if asks := peerAsks.Load(); asks != 0 {
		t.Errorf("rejoined worker consulted peers %d times, want 0 — disk must warm before the ring", asks)
	}
	if hits := scrapeMetric(t, urls[0], "gpuscoutd_store_hits_total"); hits != nKeys {
		t.Errorf("store_hits_total = %g, want %d", hits, nKeys)
	}
	if misses := scrapeMetric(t, urls[0], "gpuscoutd_cache_misses_total"); misses != 0 {
		t.Errorf("rejoined worker re-simulated: %g pipeline misses", misses)
	}
}
