package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/service"
)

// siteBatch gates each sub-batch send: an armed error models a replica
// dying with part of a batch — the coordinator must re-route the
// stranded items to another replica (which simulates them locally), not
// fail the batch.
var siteBatch = faultinject.Register("cluster.batch")

// batchSlot is one distinct fingerprint's pending result. done closes
// exactly once, after status is set.
type batchSlot struct {
	req    service.AnalyzeRequest
	fp     string
	status json.RawMessage
	done   chan struct{}
}

func (s *batchSlot) deliver(status json.RawMessage) {
	s.status = status
	close(s.done)
}

func failStatus(msg string) json.RawMessage {
	b, _ := json.Marshal(service.Status{State: service.StateFailed, Error: msg})
	return b
}

// handleBatch implements the coordinator's POST /v1/analyze/batch:
// dedupe by fingerprint, group the distinct inputs by ring owner, send
// one sub-batch per owner concurrently, and stream the per-item results
// back in request order as they arrive. A sub-batch that dies partway
// gets its undelivered items re-routed once to the next usable replica.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	raw, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var batch service.BatchRequest
	if err := json.Unmarshal(raw, &batch); err != nil {
		writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	n := len(batch.Requests)
	if n == 0 {
		writeError(w, http.StatusBadRequest, "batch holds no requests")
		return
	}
	if n > c.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch holds %d requests, limit %d", n, c.cfg.MaxBatchItems))
		return
	}
	c.batchRequests.Inc()
	c.batchItems.Add(uint64(n))

	// Dedupe across the whole batch before any fan-out.
	var uniq []*batchSlot
	fpTo := map[string]int{}
	idx := make([]int, n)
	for i := range batch.Requests {
		fp := batch.Requests[i].Fingerprint()
		if u, ok := fpTo[fp]; ok {
			idx[i] = u
			c.batchDeduped.Inc()
			continue
		}
		fpTo[fp] = len(uniq)
		idx[i] = len(uniq)
		uniq = append(uniq, &batchSlot{
			req:  batch.Requests[i],
			fp:   fp,
			done: make(chan struct{}),
		})
	}

	go c.fanOut(r.Context(), uniq)

	// Stream results in request order; duplicates share their slot.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if _, err := w.Write([]byte(`{"results":[`)); err != nil {
		return
	}
	for i := 0; i < n; i++ {
		s := uniq[idx[i]]
		select {
		case <-s.done:
		case <-r.Context().Done():
			return
		}
		if i > 0 {
			if _, err := w.Write([]byte(",")); err != nil {
				return
			}
		}
		if _, err := w.Write(s.status); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = w.Write([]byte("]}"))
}

// fanOut runs up to two routing rounds over the undelivered slots: the
// first groups by ring owner (cache affinity), the second re-routes
// anything stranded by a dead or partially-failed replica. Slots still
// undelivered after both rounds fail individually.
func (c *Coordinator) fanOut(ctx context.Context, uniq []*batchSlot) {
	pending := uniq
	for round := 0; round < 2 && len(pending) > 0; round++ {
		if round > 0 {
			c.batchReroutes.Add(uint64(len(pending)))
		}
		groups := map[string][]*batchSlot{}
		var unroutable []*batchSlot
		for _, s := range pending {
			owner := c.pickOwner(s.fp)
			if owner == "" {
				unroutable = append(unroutable, s)
				continue
			}
			groups[owner] = append(groups[owner], s)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var failed []*batchSlot
		for owner, slots := range groups {
			wg.Add(1)
			go func(owner string, slots []*batchSlot) {
				defer wg.Done()
				stranded := c.sendSubBatch(ctx, owner, slots)
				if len(stranded) > 0 {
					mu.Lock()
					failed = append(failed, stranded...)
					mu.Unlock()
				}
			}(owner, slots)
		}
		wg.Wait()
		pending = append(failed, unroutable...)
	}
	for _, s := range pending {
		s.deliver(failStatus("cluster: no replica could run this request"))
	}
}

// pickOwner returns fp's first routable replica in ring preference
// order, "" when the whole chain is down or drained.
func (c *Coordinator) pickOwner(fp string) string {
	for _, url := range c.ring.Owners(fp, len(c.cfg.Replicas)) {
		if c.members.State(url) == ReplicaUp {
			return url
		}
	}
	return ""
}

// sendSubBatch posts one owner's slots as a worker-side batch and
// stream-decodes the results array, delivering each slot as its entry
// arrives (the worker dedupes again internally, and its queue-full
// waiting keeps over-large sub-batches trickling in). It returns the
// slots left undelivered by a transport failure or a response that died
// partway — the caller re-routes those.
func (c *Coordinator) sendSubBatch(ctx context.Context, owner string, slots []*batchSlot) []*batchSlot {
	if err := faultinject.Hit(siteBatch); err != nil {
		c.members.MarkDown(owner, err.Error())
		c.failovers.Inc()
		return slots
	}
	reqs := make([]service.AnalyzeRequest, len(slots))
	for i, s := range slots {
		reqs[i] = s.req
	}
	body, err := json.Marshal(service.BatchRequest{Requests: reqs})
	if err != nil {
		for _, s := range slots {
			s.deliver(failStatus("encode sub-batch: " + err.Error()))
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/analyze/batch", bytes.NewReader(body))
	if err != nil {
		return slots
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.members.MarkDown(owner, err.Error())
		c.failovers.Inc()
		return slots
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The whole sub-batch was refused (saturated, draining, bad
		// request): try it elsewhere.
		c.failovers.Inc()
		return slots
	}
	c.proxied[owner].Inc()

	// Stream-decode `{"results":[ ... ]}`, delivering slot i as the
	// i-th element arrives — the worker emits them in sub-batch order.
	dec := json.NewDecoder(resp.Body)
	if !expectBatchHeader(dec) {
		c.members.MarkDown(owner, "malformed batch response")
		return slots
	}
	for i, s := range slots {
		if !dec.More() {
			return slots[i:]
		}
		var st json.RawMessage
		if err := dec.Decode(&st); err != nil {
			// Died mid-array: everything from here on is stranded.
			c.members.MarkDown(owner, "batch response truncated: "+err.Error())
			return slots[i:]
		}
		s.deliver(st)
	}
	return nil
}

// expectBatchHeader consumes the `{"results":[` prefix tokens.
func expectBatchHeader(dec *json.Decoder) bool {
	t, err := dec.Token()
	if err != nil || t != json.Delim('{') {
		return false
	}
	t, err = dec.Token()
	if err != nil || t != "results" {
		return false
	}
	t, err = dec.Token()
	return err == nil && t == json.Delim('[')
}
