package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuscout/internal/sass"
	"gpuscout/internal/service"
)

// testCluster is an in-process fleet: n worker replicas on loopback
// listeners plus a coordinator fronting them. Replica URLs are fixed
// before any service is built (peer caches need the full list), so
// listeners are pre-created and handed to httptest.
type testCluster struct {
	urls    []string
	svcs    []*service.Service
	servers []*httptest.Server
	coord   *Coordinator
	front   *httptest.Server

	mu     sync.Mutex
	killed map[int]bool
}

func startCluster(t *testing.T, n int, svcCfg service.Config) *testCluster {
	t.Helper()
	tc := &testCluster{killed: map[int]bool{}}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		tc.urls = append(tc.urls, "http://"+l.Addr().String())
	}
	for i := 0; i < n; i++ {
		cfg := svcCfg
		cfg.Mode = "worker"
		pc := NewPeerCache(tc.urls, tc.urls[i], PeerCacheConfig{})
		cfg.PeerFill = pc.Fill
		svc, err := service.New(cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		ts := httptest.NewUnstartedServer(svc.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		tc.svcs = append(tc.svcs, svc)
		tc.servers = append(tc.servers, ts)
	}
	coord, err := New(Config{Replicas: append([]string(nil), tc.urls...)})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	coord.Start()
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		coord.Close()
		for i := range tc.servers {
			if tc.killed[i] {
				continue
			}
			tc.servers[i].Close()
			tc.svcs[i].Close()
		}
	})
	return tc
}

// kill hard-stops replica i: in-flight client connections are severed
// (mid-response death, not a graceful drain), then the server and core
// shut down.
func (tc *testCluster) kill(i int) {
	tc.mu.Lock()
	tc.killed[i] = true
	tc.mu.Unlock()
	tc.servers[i].CloseClientConnections()
	tc.servers[i].Close()
	tc.svcs[i].Close()
}

func (tc *testCluster) index(url string) int {
	for i, u := range tc.urls {
		if u == url {
			return i
		}
	}
	return -1
}

// scrapeMetric reads one Prometheus sample from base's /metrics.
func scrapeMetric(t *testing.T, base, sample string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", base, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found at %s", sample, base)
	return 0
}

// clusterKernelReq builds an analysis request whose fingerprint is
// unique to i: a tiny static-only SASS kernel with a distinct name and
// immediate. Static analyses run in microseconds, so tests can push
// thousands of requests through a small fleet.
func clusterKernelReq(i int) service.AnalyzeRequest {
	k := &sass.Kernel{
		Name: fmt.Sprintf("_Z6fleet%03dPf", i), Arch: "sm_70", NumRegs: 8, ConstBytes: 0x170,
		SourceFile: "fleet.cu",
		Source:     []string{"__global__ void fleet(float* x) {", "  x[0] = 1.0f;", "}"},
	}
	ctrl := sass.DefaultCtrl()
	k.Insts = []sass.Inst{
		{Pred: sass.PT, Op: sass.OpMOV, Dst: []sass.Operand{sass.R(0)}, Src: []sass.Operand{sass.Imm(int64(0x2000 + i))}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpSTG, Mods: []string{"E", "SYS"}, Dst: []sass.Operand{sass.Mem(2, 0)}, Src: []sass.Operand{sass.R(0)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpEXIT, Ctrl: ctrl, Line: 3},
	}
	k.RenumberPCs()
	return service.AnalyzeRequest{SASS: sass.Print(k)}
}

// zipfPicks draws n key indexes from [0, k) under a Zipf-ish skew —
// the realistic cluster workload: a few hot fingerprints dominate,
// a long tail shows up rarely. Deterministic (seeded).
func zipfPicks(n, k int, seed int64) []int {
	weights := make([]float64, k)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.2)
		total += weights[i]
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for j := range out {
		r := rng.Float64() * total
		for i, w := range weights {
			r -= w
			if r <= 0 || i == k-1 {
				out[j] = i
				break
			}
		}
	}
	return out
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestClusterAffinityHitRateAndIdenticalReports is the tentpole
// acceptance test: a 5-replica fleet under 2000 Zipf-skewed requests
// over 40 fingerprints. After a one-request-per-key warmup, routing
// affinity must make the fleet serve ≥90% of the load from cache, every
// fingerprint must have been simulated by exactly its ring owner, and
// every response must be byte-identical to a single standalone node's
// report for the same input — the determinism that makes affinity a
// pure optimization.
func TestClusterAffinityHitRateAndIdenticalReports(t *testing.T) {
	const (
		replicas = 5
		keys     = 40
		load     = 2000
		clients  = 8
	)
	tc := startCluster(t, replicas, service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 4096})

	// Reference: a standalone node (no peers) analyzing the same inputs
	// over the same HTTP surface, so report bytes compare like-for-like.
	solo, err := service.New(service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 4096})
	if err != nil {
		t.Fatal(err)
	}
	soloTS := httptest.NewServer(solo.Handler())
	t.Cleanup(func() {
		soloTS.Close()
		solo.Close()
	})

	reqs := make([]service.AnalyzeRequest, keys)
	ref := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		reqs[i] = clusterKernelReq(i)
		resp, body := postJSON(t, soloTS.URL+"/v1/analyze", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solo key %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var st service.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateDone {
			t.Fatalf("solo key %d: %s (%s)", i, st.State, st.Error)
		}
		ref[i] = st.Report
	}

	// Warmup: one request per key through the coordinator.
	for i := 0; i < keys; i++ {
		resp, body := postJSON(t, tc.front.URL+"/v1/analyze", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup key %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var st service.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Report, ref[i]) {
			t.Fatalf("warmup key %d: cluster report differs from standalone", i)
		}
	}

	// Zipf-skewed load from concurrent clients.
	picks := zipfPicks(load, keys, 1)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	per := load / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			for _, k := range chunk {
				body, _ := json.Marshal(reqs[k])
				resp, err := http.Post(tc.front.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("key %d: %v", k, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("key %d: status %d, body %s", k, resp.StatusCode, data)
					return
				}
				var st service.Status
				if err := json.Unmarshal(data, &st); err != nil {
					errc <- fmt.Errorf("key %d: decode: %v", k, err)
					return
				}
				if !bytes.Equal(st.Report, ref[k]) {
					errc <- fmt.Errorf("key %d: report differs from standalone reference", k)
					return
				}
			}
			errc <- nil
		}(picks[c*per : (c+1)*per])
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// Fleet-wide cache accounting. cache_misses counts "ran the
	// pipeline", so the sum across replicas is the number of distinct
	// simulations the fleet performed.
	var hits, misses float64
	for _, u := range tc.urls {
		hits += scrapeMetric(t, u, "gpuscoutd_cache_hits_total")
		misses += scrapeMetric(t, u, "gpuscoutd_cache_misses_total")
	}
	if misses != keys {
		t.Errorf("fleet simulated %g times, want exactly %d (one per fingerprint)", misses, keys)
	}
	if rate := hits / load; rate < 0.9 {
		t.Errorf("fleet hit rate = %.3f over the loaded phase, want >= 0.90", rate)
	}

	// Exactly-one-owner: each replica's miss count must equal the number
	// of keys the ring assigns it.
	owned := map[string]float64{}
	for i := 0; i < keys; i++ {
		owned[tc.coord.Ring().Owner(reqs[i].Fingerprint())]++
	}
	for _, u := range tc.urls {
		if got := scrapeMetric(t, u, "gpuscoutd_cache_misses_total"); got != owned[u] {
			t.Errorf("replica %s simulated %g keys, ring assigns it %g", u, got, owned[u])
		}
	}

	// Healthy fleet: no request should have left its first-preference owner.
	if breaks := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_affinity_breaks_total"); breaks != 0 {
		t.Errorf("affinity breaks = %g on a healthy fleet, want 0", breaks)
	}
	if shed := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_shed_total"); shed != 0 {
		t.Errorf("coordinator shed %g requests, want 0", shed)
	}
}

// TestClusterFailoverMidLoad kills a replica while load is in flight:
// every request must still answer 200 (the coordinator's buffered
// proxying makes mid-response death retryable), the dead replica's keys
// must be re-served byte-identically by their failover owners, and the
// coordinator must report itself degraded-but-serving.
func TestClusterFailoverMidLoad(t *testing.T) {
	const keys = 12
	tc := startCluster(t, 5, service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 4096})

	reqs := make([]service.AnalyzeRequest, keys)
	ref := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		reqs[i] = clusterKernelReq(100 + i)
		resp, body := postJSON(t, tc.front.URL+"/v1/analyze", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup key %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var st service.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ref[i] = st.Report
	}

	// The victim owns key 0 (and possibly others).
	victimURL := tc.coord.Ring().Owner(reqs[0].Fingerprint())
	victim := tc.index(victimURL)
	if victim < 0 {
		t.Fatalf("owner %s not in fleet", victimURL)
	}

	// Concurrent load across all keys; the victim dies partway through.
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	var once sync.Once
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; n < 40; n++ {
				if c == 0 && n == 10 {
					once.Do(func() { tc.kill(victim) })
				}
				k := (c + n) % keys
				body, _ := json.Marshal(reqs[k])
				resp, err := http.Post(tc.front.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("client %d key %d: %v", c, k, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d key %d: status %d mid-failover, body %s", c, k, resp.StatusCode, data)
					return
				}
				var st service.Status
				if err := json.Unmarshal(data, &st); err != nil {
					errc <- fmt.Errorf("client %d key %d: decode: %v", c, k, err)
					return
				}
				if !bytes.Equal(st.Report, ref[k]) {
					errc <- fmt.Errorf("client %d key %d: report changed after failover", c, k)
					return
				}
			}
			errc <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < 4; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// The dead replica's keys keep being served, byte-identically.
	for i := 0; i < keys; i++ {
		if tc.coord.Ring().Owner(reqs[i].Fingerprint()) != victimURL {
			continue
		}
		resp, body := postJSON(t, tc.front.URL+"/v1/analyze", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dead-owner key %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var st service.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Report, ref[i]) {
			t.Errorf("dead-owner key %d: failover report differs", i)
		}
	}

	// Degraded but serving: /readyz stays 200 and says so.
	tc.coord.Membership().PollNow()
	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(tc.front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		d, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, d
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after kill: status %d, want 200 (degraded but serving), body %s", resp.StatusCode, body)
	}
	var rz struct {
		Status   string          `json:"status"`
		Replicas []ReplicaStatus `json:"replicas"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Status != "degraded" {
		t.Errorf("readyz status = %q, want degraded", rz.Status)
	}
	downSeen := false
	for _, r := range rz.Replicas {
		if r.URL == victimURL && r.State == "down" {
			downSeen = true
		}
	}
	if !downSeen {
		t.Errorf("victim %s not reported down in %+v", victimURL, rz.Replicas)
	}
	if fo := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_failovers_total"); fo < 1 {
		t.Errorf("failovers = %g, want >= 1 after killing a loaded replica", fo)
	}
}

// TestPeerCacheFill pins the two-tier cache protocol: when the ring
// owner misses locally but its failover successor already holds the
// report (it served the key while the owner was absent), the owner
// fetches the bytes from the peer instead of re-simulating.
func TestPeerCacheFill(t *testing.T) {
	tc := startCluster(t, 3, service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 64})

	req := clusterKernelReq(500)
	fp := req.Fingerprint()
	cands := tc.coord.Ring().Owners(fp, 3)
	owner, successor := cands[0], cands[1]

	// The successor serves the key first (as it would while the owner was
	// down): a local simulation, cached.
	resp, body := postJSON(t, successor+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("successor analyze: status %d, body %s", resp.StatusCode, body)
	}
	var stSucc service.Status
	if err := json.Unmarshal(body, &stSucc); err != nil {
		t.Fatal(err)
	}

	// Now the owner gets the key (as it would after rejoining): its local
	// miss must be filled from the successor, not re-simulated.
	resp, body = postJSON(t, owner+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner analyze: status %d, body %s", resp.StatusCode, body)
	}
	var stOwn service.Status
	if err := json.Unmarshal(body, &stOwn); err != nil {
		t.Fatal(err)
	}
	if !stOwn.CacheHit {
		t.Error("peer-filled response not marked as a cache hit")
	}
	if !bytes.Equal(stOwn.Report, stSucc.Report) {
		t.Error("peer-filled report differs from the peer's own bytes")
	}
	if v := scrapeMetric(t, owner, "gpuscoutd_peer_fill_hits_total"); v != 1 {
		t.Errorf("owner peer_fill_hits = %g, want 1", v)
	}
	if v := scrapeMetric(t, owner, "gpuscoutd_cache_misses_total"); v != 0 {
		t.Errorf("owner simulated %g times, want 0 (peer fill must preempt the pipeline)", v)
	}
	if v := scrapeMetric(t, successor, "gpuscoutd_peer_cache_serves_total"); v != 1 {
		t.Errorf("successor peer_cache_serves = %g, want 1", v)
	}

	// A warm owner answers from its own cache: no further peer traffic.
	resp, _ = postJSON(t, owner+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner re-analyze: status %d", resp.StatusCode)
	}
	if v := scrapeMetric(t, successor, "gpuscoutd_peer_cache_serves_total"); v != 1 {
		t.Errorf("successor served %g peer fetches, want still 1", v)
	}
}

// TestClusterBatchDedupeAndOrder drives the coordinator's batch path:
// 30 items over 10 distinct fingerprints (3 copies each, interleaved)
// must come back as 30 results in request order, cost the fleet exactly
// 10 simulations, and show 20 items deduped before fan-out.
func TestClusterBatchDedupeAndOrder(t *testing.T) {
	const distinct = 10
	tc := startCluster(t, 5, service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 4096})

	var order []int
	for copyN := 0; copyN < 3; copyN++ {
		for k := 0; k < distinct; k++ {
			order = append(order, (k+copyN*3)%distinct)
		}
	}
	batch := service.BatchRequest{}
	for _, k := range order {
		batch.Requests = append(batch.Requests, clusterKernelReq(700+k))
	}

	resp, body := postJSON(t, tc.front.URL+"/v1/analyze/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, body)
	}
	var out service.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if len(out.Results) != len(order) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(order))
	}
	for i, st := range out.Results {
		if st.State != service.StateDone {
			t.Fatalf("result %d: state %s (%s)", i, st.State, st.Error)
		}
		wantName := fmt.Sprintf("_Z6fleet%03dPf", 700+order[i])
		if !bytes.Contains(st.Report, []byte(wantName)) {
			t.Errorf("result %d: report does not mention %s — request order lost", i, wantName)
		}
	}

	var misses float64
	for _, u := range tc.urls {
		misses += scrapeMetric(t, u, "gpuscoutd_cache_misses_total")
	}
	if misses != distinct {
		t.Errorf("fleet simulated %g times for the batch, want %d", misses, distinct)
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_batch_deduped_total"); v != float64(len(order)-distinct) {
		t.Errorf("coordinator deduped %g items, want %d", v, len(order)-distinct)
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_batch_items_total"); v != float64(len(order)) {
		t.Errorf("coordinator batch items = %g, want %d", v, len(order))
	}
}

// TestClusterBackpressure saturates a single-replica fleet with slow
// jobs: the worker's own 429 + Retry-After must relay through the
// coordinator, async job handles must round-trip through the cluster id
// scheme ("r0-..."), and once the health poll sees the saturated
// replica the coordinator must answer its own 429 without bothering the
// worker.
func TestClusterBackpressure(t *testing.T) {
	tc := startCluster(t, 1, service.Config{Workers: 1, QueueDepth: 1})

	slow := func() service.AnalyzeRequest {
		return service.AnalyzeRequest{Workload: "sgemm_naive", Scale: 512}
	}
	// Job 1 occupies the worker; job 2 fills the queue.
	resp, body := postJSON(t, tc.front.URL+"/v1/analyze?async=1", slow())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID     string `json:"job_id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(acc.JobID, "r0-") {
		t.Fatalf("cluster job id = %q, want r0-<local>", acc.JobID)
	}

	// The cluster id resolves through the coordinator.
	st := waitClusterJobState(t, tc.front.URL, acc.JobID, service.StateRunning)
	if st.State != service.StateRunning {
		t.Fatalf("job 1 state = %s, want running", st.State)
	}

	resp, body = postJSON(t, tc.front.URL+"/v1/analyze?async=1", slow2())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d, body %s", resp.StatusCode, body)
	}

	// Queue full: the worker sheds, and the coordinator relays 429 +
	// Retry-After verbatim.
	resp, body = postJSON(t, tc.front.URL+"/v1/analyze?async=1", slow3())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want relayed 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("relayed 429 lost its Retry-After header")
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_shed_total"); v != 0 {
		t.Errorf("shed = %g before the poll saw saturation, want 0", v)
	}

	// After a poll sweep the replica is NotReady: the coordinator sheds
	// at the front door with its aggregated hint.
	tc.coord.Membership().PollNow()
	if got := tc.coord.Membership().State(tc.urls[0]); got != ReplicaNotReady {
		t.Fatalf("replica state after saturation poll = %v, want not_ready", got)
	}
	resp, body = postJSON(t, tc.front.URL+"/v1/analyze?async=1", slow4())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-poll request: status %d, want coordinator 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("coordinator 429 missing Retry-After")
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_shed_total"); v < 1 {
		t.Errorf("shed = %g, want >= 1 once the coordinator answers saturation itself", v)
	}

	// Drain: cancel job 1 so cleanup isn't stuck behind a long simulation.
	reqDel, _ := http.NewRequest(http.MethodDelete, tc.front.URL+"/v1/jobs/"+acc.JobID, nil)
	if respDel, err := http.DefaultClient.Do(reqDel); err == nil {
		respDel.Body.Close()
	}
}

// slow2..slow4 vary the fingerprint so queue slots aren't deduplicated
// by the content-addressed cache path.
func slow2() service.AnalyzeRequest {
	return service.AnalyzeRequest{Workload: "sgemm_naive", Scale: 576}
}
func slow3() service.AnalyzeRequest {
	return service.AnalyzeRequest{Workload: "sgemm_naive", Scale: 640}
}
func slow4() service.AnalyzeRequest {
	return service.AnalyzeRequest{Workload: "sgemm_naive", Scale: 704}
}

func waitClusterJobState(t *testing.T, front, id string, want service.State) service.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(front + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		if st.State == want || st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return service.Status{}
}
