//go:build faultinject

package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/service"
)

// TestClusterChaosSlowPeerFill arms a delay past the peer-fill budget:
// the owner's fill attempt must burn its window and degrade to local
// simulation — the request succeeds, it just isn't free.
func TestClusterChaosSlowPeerFill(t *testing.T) {
	defer faultinject.Reset()
	tc := startCluster(t, 3, service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 64})

	req := clusterKernelReq(900)
	fp := req.Fingerprint()
	cands := tc.coord.Ring().Owners(fp, 3)
	owner, successor := cands[0], cands[1]

	// The successor holds the report (warmed before any fault is armed).
	if resp, body := postJSON(t, successor+"/v1/analyze", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm successor: status %d, body %s", resp.StatusCode, body)
	}

	// A healthy fill would now succeed; a slow peer must not.
	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  "cluster.peerfill",
		Mode:  faultinject.ModeDelay,
		Delay: 1200 * time.Millisecond, // past the 750ms default budget
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postJSON(t, owner+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner analyze under slow peer: status %d, body %s", resp.StatusCode, body)
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("state = %s (%s), want done via local simulation", st.State, st.Error)
	}
	if st.CacheHit {
		t.Error("response claims a cache hit although the fill timed out")
	}
	if v := scrapeMetric(t, owner, "gpuscoutd_peer_fill_misses_total"); v < 1 {
		t.Errorf("owner peer_fill_misses = %g, want >= 1", v)
	}
	if v := scrapeMetric(t, owner, "gpuscoutd_cache_misses_total"); v != 1 {
		t.Errorf("owner simulated %g times, want 1 (local fallback)", v)
	}
	if n := faultinject.Fired("cluster.peerfill"); n != 1 {
		t.Errorf("peerfill fault fired %d times, want 1", n)
	}
}

// TestClusterChaosDeadOwnerProxy arms a single-shot transport error on
// the proxy path: the owner "dies" between the health poll and the
// forward, and the coordinator must fail over along the ring without
// the client noticing anything but the answer.
func TestClusterChaosDeadOwnerProxy(t *testing.T) {
	defer faultinject.Reset()
	tc := startCluster(t, 3, service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 64})

	req := clusterKernelReq(910)
	resp, body := postJSON(t, tc.front.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d, body %s", resp.StatusCode, body)
	}
	var warm service.Status
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}

	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  "cluster.proxy",
		Mode:  faultinject.ModeError,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body = postJSON(t, tc.front.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with dying owner: status %d, want 200 via failover (body %s)", resp.StatusCode, body)
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if !bytes.Equal(st.Report, warm.Report) {
		t.Error("failover report differs from the owner's original")
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_failovers_total"); v < 1 {
		t.Errorf("failovers = %g, want >= 1", v)
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_affinity_breaks_total"); v < 1 {
		t.Errorf("affinity breaks = %g, want >= 1 (the key left its owner)", v)
	}
}

// TestClusterChaosPartialBatchFailure arms a single-shot error on the
// sub-batch send: one owner's whole sub-batch is stranded, and the
// second fan-out round must re-route every stranded item to a live
// replica — the batch completes with zero failed entries.
func TestClusterChaosPartialBatchFailure(t *testing.T) {
	defer faultinject.Reset()
	tc := startCluster(t, 3, service.Config{Workers: 2, QueueDepth: 32, CacheEntries: 256})

	const items = 8
	batch := service.BatchRequest{}
	for i := 0; i < items; i++ {
		batch.Requests = append(batch.Requests, clusterKernelReq(920+i))
	}

	disarm, err := faultinject.Arm(faultinject.Fault{
		Site:  "cluster.batch",
		Mode:  faultinject.ModeError,
		Times: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	resp, body := postJSON(t, tc.front.URL+"/v1/analyze/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, body)
	}
	var out service.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if len(out.Results) != items {
		t.Fatalf("got %d results, want %d", len(out.Results), items)
	}
	for i, st := range out.Results {
		if st.State != service.StateDone {
			t.Errorf("result %d: state %s (%s) — stranded items must be re-routed, not failed", i, st.State, st.Error)
		}
	}
	if v := scrapeMetric(t, tc.front.URL, "gpuscoutd_cluster_batch_reroutes_total"); v < 1 {
		t.Errorf("batch reroutes = %g, want >= 1", v)
	}
	if n := faultinject.Fired("cluster.batch"); n != 1 {
		t.Errorf("batch fault fired %d times, want 1", n)
	}
}
