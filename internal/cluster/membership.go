package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicaState is a replica's health as the coordinator sees it.
type ReplicaState int32

const (
	// ReplicaUp: /readyz answered 200 — route traffic here.
	ReplicaUp ReplicaState = iota
	// ReplicaNotReady: the process is alive but refusing traffic
	// (queue saturated, draining) — route around it, but expect it back.
	ReplicaNotReady
	// ReplicaDown: unreachable — failover its keys until it returns.
	ReplicaDown
)

// String names the state ("up", "not_ready", "down").
func (s ReplicaState) String() string {
	switch s {
	case ReplicaUp:
		return "up"
	case ReplicaNotReady:
		return "not_ready"
	default:
		return "down"
	}
}

// replica is one member's live view: URL plus the latest health probe.
type replica struct {
	url        string
	state      atomic.Int32
	queueDepth atomic.Int64
	retryAfter atomic.Int64 // last Retry-After hint observed, seconds

	mu     sync.Mutex
	reason string
}

func (r *replica) setState(s ReplicaState, reason string) {
	r.state.Store(int32(s))
	r.mu.Lock()
	r.reason = reason
	r.mu.Unlock()
}

// Membership tracks the static replica list's up/down state by polling
// each replica's existing /readyz on an interval. The coordinator also
// feeds it synchronously: a proxy attempt that hits a dead connection
// calls MarkDown immediately instead of waiting out the poll interval.
type Membership struct {
	replicas []*replica
	byURL    map[string]*replica
	client   *http.Client
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ReplicaStatus is one member's state snapshot (for /healthz, /readyz
// and tests).
type ReplicaStatus struct {
	URL        string `json:"url"`
	State      string `json:"state"`
	QueueDepth int64  `json:"queue_depth"`
	Reason     string `json:"reason,omitempty"`
}

func newMembership(urls []string, interval time.Duration, client *http.Client) *Membership {
	m := &Membership{
		byURL:    make(map[string]*replica, len(urls)),
		client:   client,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		rep := &replica{url: u}
		rep.setState(ReplicaUp, "assumed up until first probe") // optimistic until probed
		m.replicas = append(m.replicas, rep)
		m.byURL[u] = rep
	}
	return m
}

// Start runs one synchronous probe sweep (so routing decisions made
// immediately after Start see real states), then polls in the
// background until Stop.
func (m *Membership) Start() {
	m.PollNow()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.PollNow()
			}
		}
	}()
}

// Stop ends background polling.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	select {
	case <-m.done:
	case <-time.After(5 * time.Second):
	}
}

// PollNow probes every replica once, concurrently, and waits for the
// sweep to finish. Tests use it to force a deterministic state refresh.
func (m *Membership) PollNow() {
	var wg sync.WaitGroup
	for _, rep := range m.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			m.probe(rep)
		}(rep)
	}
	wg.Wait()
}

// probe classifies one replica from its /readyz: 200 = up, 503 = alive
// but not ready (the replica's own saturated/draining signal), any
// transport failure = down.
func (m *Membership) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		rep.setState(ReplicaDown, err.Error())
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		rep.setState(ReplicaDown, err.Error())
		return
	}
	defer resp.Body.Close()
	var body struct {
		Reason     string `json:"reason"`
		QueueDepth int64  `json:"queue_depth"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	rep.queueDepth.Store(body.QueueDepth)
	switch {
	case resp.StatusCode == http.StatusOK:
		rep.setState(ReplicaUp, "")
	case resp.StatusCode == http.StatusServiceUnavailable:
		rep.setState(ReplicaNotReady, body.Reason)
	default:
		rep.setState(ReplicaNotReady, resp.Status)
	}
}

// State returns the replica's current health (ReplicaDown for unknown
// URLs — routing treats them as unusable).
func (m *Membership) State(url string) ReplicaState {
	rep, ok := m.byURL[url]
	if !ok {
		return ReplicaDown
	}
	return ReplicaState(rep.state.Load())
}

// MarkDown records an observed transport failure immediately, without
// waiting for the next poll sweep. The replica comes back via polling.
func (m *Membership) MarkDown(url, reason string) {
	if rep, ok := m.byURL[url]; ok {
		rep.setState(ReplicaDown, reason)
	}
}

// NoteRetryAfter records a Retry-After hint a replica attached to its
// own 429, for the coordinator's aggregated backpressure answer.
func (m *Membership) NoteRetryAfter(url string, seconds int) {
	if rep, ok := m.byURL[url]; ok && seconds > 0 {
		rep.retryAfter.Store(int64(seconds))
	}
}

// RetryAfterHint aggregates per-replica hints into the coordinator's
// own Retry-After: the minimum hint among live (non-down) replicas —
// the fleet can accept work as soon as its least-loaded live member can
// — defaulting to 1s when nothing has hinted yet.
func (m *Membership) RetryAfterHint() int {
	best := int64(0)
	for _, rep := range m.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaDown {
			continue
		}
		if h := rep.retryAfter.Load(); h > 0 && (best == 0 || h < best) {
			best = h
		}
	}
	if best == 0 {
		return 1
	}
	return int(best)
}

// UpCount reports how many replicas are currently routable.
func (m *Membership) UpCount() int {
	n := 0
	for _, rep := range m.replicas {
		if ReplicaState(rep.state.Load()) == ReplicaUp {
			n++
		}
	}
	return n
}

// Snapshot returns every replica's current status, in configured order.
func (m *Membership) Snapshot() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(m.replicas))
	for _, rep := range m.replicas {
		rep.mu.Lock()
		reason := rep.reason
		rep.mu.Unlock()
		out = append(out, ReplicaStatus{
			URL:        rep.url,
			State:      ReplicaState(rep.state.Load()).String(),
			QueueDepth: rep.queueDepth.Load(),
			Reason:     reason,
		})
	}
	return out
}
