package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8090", i+1)
	}
	return out
}

// TestRingDeterminism: ownership is a pure function of (members, key) —
// rebuilding the ring, in any member order, maps every key identically.
func TestRingDeterminism(t *testing.T) {
	members := ringMembers(5)
	a := NewRing(members, 0)
	b := NewRing(members, 0)
	reversed := []string{members[4], members[3], members[2], members[1], members[0]}
	c := NewRing(reversed, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: rebuild changed owner", key)
		}
		if a.Owner(key) != c.Owner(key) {
			t.Fatalf("key %s: member order changed owner (%s vs %s)", key, a.Owner(key), c.Owner(key))
		}
	}
}

// TestRingOwnersPreference: Owners returns distinct members, starts at
// Owner, and covers the whole fleet when asked.
func TestRingOwnersPreference(t *testing.T) {
	members := ringMembers(5)
	r := NewRing(members, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%04d", i)
		owners := r.Owners(key, len(members))
		if len(owners) != len(members) {
			t.Fatalf("key %s: got %d owners, want %d", key, len(owners), len(members))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %s: Owners[0]=%s, Owner=%s", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		if got := r.Owners(key, 2); len(got) != 2 || got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("key %s: Owners(,2) is not a prefix of the full chain", key)
		}
	}
}

// TestRingBalance: with DefaultVNodes the key space spreads within a
// reasonable factor of even — no replica owns a dominant share and none
// starves.
func TestRingBalance(t *testing.T) {
	members := ringMembers(5)
	r := NewRing(members, 0)
	counts := map[string]int{}
	const keys = 5000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("%x-fingerprint", i*7919))]++
	}
	want := keys / len(members)
	for m, got := range counts {
		if got < want/3 || got > want*3 {
			t.Errorf("member %s owns %d keys, want within [%d, %d]", m, got, want/3, want*3)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d members own keys", len(counts), len(members))
	}
}

// TestRingFailoverStability is the consistent-hashing property the
// coordinator's health filtering relies on: when a member is skipped
// (down), only its keys move — every key owned by a live member keeps
// its owner, because the preference chain is walked, not rebuilt.
func TestRingFailoverStability(t *testing.T) {
	members := ringMembers(5)
	r := NewRing(members, 0)
	dead := members[2]
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp-%04d", i)
		owners := r.Owners(key, len(members))
		// Simulate health-filtered routing: first owner not equal to dead.
		routed := owners[0]
		if routed == dead {
			routed = owners[1]
		}
		if owners[0] != dead && routed != owners[0] {
			t.Fatalf("key %s: owner moved although its replica is alive", key)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	var empty *Ring = NewRing(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
	if got := empty.Owners("x", 3); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
	one := NewRing([]string{"http://a"}, 4)
	if got := one.Owner("anything"); got != "http://a" {
		t.Errorf("single-member ring Owner = %q", got)
	}
	if got := one.Owners("anything", 5); len(got) != 1 {
		t.Errorf("single-member ring Owners = %v", got)
	}
}
