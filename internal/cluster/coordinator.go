package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/service"
)

// siteProxy gates each single-request proxy attempt: an armed error
// models the owner dying between the health poll and the proxy — the
// coordinator must fail over to the next ring owner, which simulates
// locally, instead of failing the request.
var siteProxy = faultinject.Register("cluster.proxy")

// Config tunes the coordinator. Replicas is the only required field.
type Config struct {
	// Replicas is the static member list: every worker's base URL
	// (e.g. "http://10.0.0.1:8090"). The ring is built over exactly this
	// list; health checks decide which members are routable.
	Replicas []string
	// VNodes per replica on the ring (default DefaultVNodes). Must match
	// the workers' PeerCacheConfig.VNodes.
	VNodes int
	// HealthInterval is the /readyz poll period (default 2s).
	HealthInterval time.Duration
	// ProxyTimeout bounds one proxied attempt, response body included.
	// Sync analyses can legitimately run for minutes (default 5m).
	ProxyTimeout time.Duration
	// MaxUploadBytes caps request bodies, mirroring the worker's own
	// limit (default 8 MiB).
	MaxUploadBytes int64
	// MaxBatchItems caps POST /v1/analyze/batch (default 4096).
	MaxBatchItems int
	// Client overrides the proxy HTTP client (tests).
	Client *http.Client
}

func (c *Config) applyDefaults() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("cluster: no replicas configured")
	}
	seen := map[string]bool{}
	for i, r := range c.Replicas {
		c.Replicas[i] = strings.TrimRight(r, "/")
		if c.Replicas[i] == "" || seen[c.Replicas[i]] {
			return fmt.Errorf("cluster: replica list has an empty or duplicate entry: %q", r)
		}
		seen[c.Replicas[i]] = true
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 5 * time.Minute
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 4096
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return nil
}

// Coordinator fronts a fleet of gpuscoutd workers: it computes each
// request's input fingerprint, routes it to the ring owner so repeated
// fingerprints always land on the same worker's cache, fails over along
// the ring's preference chain when the owner is down or drained, and
// aggregates the fleet's backpressure into its own 429s.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	members  *Membership
	client   *http.Client
	reg      *service.Registry
	start    time.Time
	draining atomic.Bool
	repIndex map[string]int // replica URL -> position in cfg.Replicas

	proxied        map[string]*service.Counter
	failovers      *service.Counter
	affinityBreaks *service.Counter
	shed           *service.Counter
	batchRequests  *service.Counter
	batchItems     *service.Counter
	batchDeduped   *service.Counter
	batchReroutes  *service.Counter
}

// New builds a coordinator over the configured replicas. Call Start to
// begin health polling (it runs one synchronous sweep first), then
// serve Handler().
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas, cfg.VNodes),
		members:  newMembership(cfg.Replicas, cfg.HealthInterval, cfg.Client),
		client:   cfg.Client,
		reg:      service.NewRegistry(),
		start:    time.Now(),
		repIndex: map[string]int{},
		proxied:  map[string]*service.Counter{},
	}
	for i, r := range cfg.Replicas {
		c.repIndex[r] = i
	}
	reg := c.reg
	reg.NewGaugeFunc("gpuscoutd_cluster_replicas",
		"Replicas in the configured member list.",
		func() float64 { return float64(len(c.cfg.Replicas)) })
	reg.NewGaugeFunc("gpuscoutd_cluster_replicas_up",
		"Replicas currently routable (last /readyz probe answered 200).",
		func() float64 { return float64(c.members.UpCount()) })
	for _, r := range cfg.Replicas {
		c.proxied[r] = reg.NewCounter("gpuscoutd_cluster_proxied_total",
			"Requests proxied to each replica.", service.Label{Name: "replica", Value: r})
	}
	c.failovers = reg.NewCounter("gpuscoutd_cluster_failovers_total",
		"Proxy attempts abandoned for a dead or refusing replica and retried on the next ring owner.")
	c.affinityBreaks = reg.NewCounter("gpuscoutd_cluster_affinity_breaks_total",
		"Requests served by a replica other than their first-preference ring owner.")
	c.shed = reg.NewCounter("gpuscoutd_cluster_shed_total",
		"Requests the coordinator answered 429/503 itself because no replica could take them.")
	c.batchRequests = reg.NewCounter("gpuscoutd_cluster_batch_requests_total",
		"POST /v1/analyze/batch requests accepted by the coordinator.")
	c.batchItems = reg.NewCounter("gpuscoutd_cluster_batch_items_total",
		"Analysis requests carried inside coordinator batch bodies.")
	c.batchDeduped = reg.NewCounter("gpuscoutd_cluster_batch_deduped_total",
		"Batch items folded into an earlier item's slot before fan-out (shared fingerprint).")
	c.batchReroutes = reg.NewCounter("gpuscoutd_cluster_batch_reroutes_total",
		"Batch items re-sent to another replica after a partial sub-batch failure.")
	return c, nil
}

// Start begins membership health polling.
func (c *Coordinator) Start() { c.members.Start() }

// BeginShutdown flips /readyz to 503 without stopping proxying — same
// contract as the worker's BeginShutdown.
func (c *Coordinator) BeginShutdown() { c.draining.Store(true) }

// Close stops health polling and drops idle upstream connections.
func (c *Coordinator) Close() {
	c.members.Stop()
	c.client.CloseIdleConnections()
}

// Ring exposes the routing ring (tests assert ownership against it).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Membership exposes the live member view (tests and operators).
func (c *Coordinator) Membership() *Membership { return c.members }

// Metrics exposes the coordinator's registry.
func (c *Coordinator) Metrics() *service.Registry { return c.reg }

// Handler returns the coordinator's HTTP API — the same public surface
// as a worker, so clients need not know whether they talk to one
// replica or a fleet:
//
//	POST   /v1/analyze        route by fingerprint to the ring owner
//	POST   /v1/analyze/batch  dedupe, fan out per owner, stream in order
//	GET    /v1/jobs/{id}      ids are "r<replica>-<job>" — proxied home
//	DELETE /v1/jobs/{id}      likewise
//	GET    /v1/workloads      proxied to any up replica
//	GET    /healthz           coordinator liveness + per-replica states
//	GET    /readyz            200 while >=1 replica is up ("degraded" when not all)
//	GET    /metrics           coordinator routing metrics
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", c.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/workloads", c.handleWorkloads)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// readBody slurps a bounded request body, mapping the size limit to 413.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxUploadBytes))
	if err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		}
		return nil, false
	}
	return raw, true
}

// handleAnalyze routes one analysis to its fingerprint's ring owner.
func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	raw, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req service.AnalyzeRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	fp := req.Fingerprint()
	path := "/v1/analyze"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	c.routeByKey(w, r, fp, http.MethodPost, path, raw)
}

// routeByKey walks fp's ring preference chain, proxying to the first
// usable replica and failing over past dead or refusing ones. It writes
// the response (or the coordinator's own backpressure answer).
func (c *Coordinator) routeByKey(w http.ResponseWriter, r *http.Request, fp, method, pathq string, body []byte) {
	cands := c.ring.Owners(fp, len(c.cfg.Replicas))
	sawNotReady := false
	for i, url := range cands {
		switch c.members.State(url) {
		case ReplicaNotReady:
			sawNotReady = true
			continue
		case ReplicaDown:
			continue
		}
		resp, data, err := c.forward(r.Context(), url, method, pathq, body)
		if err != nil {
			// Dead between polls: record it now, fail over along the
			// ring — the next owner simulates (or peer-fills) the key.
			c.members.MarkDown(url, err.Error())
			c.failovers.Inc()
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The replica itself is refusing (draining): treat like the
			// poll had already said not-ready and keep walking.
			c.members.byURL[url].setState(ReplicaNotReady, "503 from proxy")
			c.failovers.Inc()
			sawNotReady = true
			continue
		}
		if i > 0 {
			c.affinityBreaks.Inc()
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				c.members.NoteRetryAfter(url, s)
			}
		}
		c.proxied[url].Inc()
		c.relay(w, url, resp, data)
		return
	}
	// Nobody took it. Saturated-but-alive replicas mean "come back";
	// a fully dead fleet means 503.
	c.shed.Inc()
	if sawNotReady {
		w.Header().Set("Retry-After", strconv.Itoa(c.members.RetryAfterHint()))
		writeError(w, http.StatusTooManyRequests,
			"cluster: all replicas for this key are saturated or draining")
		return
	}
	writeError(w, http.StatusServiceUnavailable, "cluster: no replica available")
}

// forward performs one buffered proxy attempt. Buffering the whole
// response before relaying is what makes failover safe: a replica dying
// mid-response surfaces here as an error with nothing yet written to
// the client, so the next candidate can be tried transparently.
func (c *Coordinator) forward(ctx context.Context, url, method, pathq string, body []byte) (*http.Response, []byte, error) {
	if err := faultinject.Hit(siteProxy); err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url+pathq, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// relay writes a buffered upstream response through to the client,
// rewriting async job handles into cluster-wide ids ("r<i>-<job>") so
// follow-up GET/DELETE /v1/jobs calls can be routed home.
func (c *Coordinator) relay(w http.ResponseWriter, url string, resp *http.Response, data []byte) {
	if resp.StatusCode == http.StatusAccepted {
		var acc struct {
			JobID string `json:"job_id"`
		}
		if json.Unmarshal(data, &acc) == nil && acc.JobID != "" {
			rid := fmt.Sprintf("r%d-%s", c.repIndex[url], acc.JobID)
			writeJSON(w, http.StatusAccepted, map[string]string{
				"job_id":     rid,
				"status_url": "/v1/jobs/" + rid,
			})
			return
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
}

// handleJob proxies job status/cancel calls to the replica encoded in
// the cluster job id ("r<i>-<local id>").
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rest, ok := strings.CutPrefix(id, "r")
	if !ok {
		writeError(w, http.StatusNotFound,
			"unknown job id (coordinator job ids look like r0-j00000001)")
		return
	}
	idxStr, local, ok := strings.Cut(rest, "-")
	idx, err := strconv.Atoi(idxStr)
	if !ok || err != nil || idx < 0 || idx >= len(c.cfg.Replicas) || local == "" {
		writeError(w, http.StatusNotFound,
			"unknown job id (coordinator job ids look like r0-j00000001)")
		return
	}
	url := c.cfg.Replicas[idx]
	resp, data, err := c.forward(r.Context(), url, r.Method, "/v1/jobs/"+local, nil)
	if err != nil {
		c.members.MarkDown(url, err.Error())
		writeError(w, http.StatusBadGateway, "replica unreachable: "+err.Error())
		return
	}
	c.relay(w, url, resp, data)
}

// handleWorkloads proxies the workload listing to any up replica — the
// list is identical fleet-wide (same binary).
func (c *Coordinator) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	for _, url := range c.cfg.Replicas {
		if c.members.State(url) != ReplicaUp {
			continue
		}
		resp, data, err := c.forward(r.Context(), url, http.MethodGet, "/v1/workloads", nil)
		if err != nil {
			c.members.MarkDown(url, err.Error())
			continue
		}
		c.relay(w, url, resp, data)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "cluster: no replica available")
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        service.Version,
		"go":             runtime.Version(),
		"mode":           "coordinator",
		"replicas":       c.members.Snapshot(),
		"uptime_seconds": time.Since(c.start).Seconds(),
	})
}

// handleReadyz reflects the fleet: ready while every replica is up,
// degraded-but-serving (still 200) while at least one is, 503 only when
// the coordinator itself is draining or no replica can take traffic.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	up := c.members.UpCount()
	total := len(c.cfg.Replicas)
	code, status, reason := http.StatusOK, "ready", "ok"
	switch {
	case c.draining.Load():
		code, status, reason = http.StatusServiceUnavailable, "not ready", "shutting down"
	case up == 0:
		code, status, reason = http.StatusServiceUnavailable, "not ready", "no replicas up"
	case up < total:
		status = "degraded"
		reason = fmt.Sprintf("%d/%d replicas up", up, total)
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"reason":   reason,
		"replicas": c.members.Snapshot(),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WritePrometheus(w)
}
