// Package cluster turns N gpuscoutd replicas into one fleet: a
// consistent-hash ring routes every analysis to the replica that owns
// its input fingerprint (cache-affinity — repeated fingerprints always
// land on the same in-process LRU), a coordinator proxies the public
// API and fails over around dead or drained replicas, and a peer
// cache-fill protocol lets a replica warm rebalanced keys from the ring
// owner's cache instead of re-simulating.
//
// The design leans on one property of the analysis: a report is a pure
// function of (canonical SASS, arch, launch, options). Any replica can
// compute any report, byte-identically — the simulator's determinism
// guarantee — so routing is purely an optimization for cache locality,
// and every routing failure can degrade to "simulate wherever the
// request lands" without changing the answer.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the default number of virtual nodes each replica
// projects onto the ring. More vnodes smooth the key distribution
// (stddev ~ 1/sqrt(vnodes)); 64 keeps per-replica load within a few
// percent of even for small fleets while the ring stays tiny.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a static replica list.
// Health is deliberately not the ring's concern: membership changes
// (a replica going down and coming back) must not reshuffle ownership
// of unrelated keys, so the ring always contains every configured
// replica and callers skip unhealthy ones by walking the preference
// order from Owners.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash, clockwise
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds the ring from the configured replica URLs. vnodes <= 0
// selects DefaultVNodes. Order of members does not matter: placement
// depends only on each member's name.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Keys are
// already hex fingerprints, but hashing again costs nothing here and
// keeps vnode placement uniform for arbitrary member names.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the configured replica list (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the replica that owns key: the member whose vnode is
// first at or clockwise-after the key's hash.
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// Owners returns up to n distinct replicas in preference order for key.
// The order is the ring's failover chain: Owners(key, …)[1] is where
// key's traffic goes while [0] is down — and therefore also the peer a
// rejoining owner should ask first when warming its cache back up.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.members))
	out := make([]string, 0, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(start+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
