package cluster

import (
	"context"
	"io"
	"net/http"
	"time"

	"gpuscout/internal/faultinject"
)

// sitePeerFill gates the whole peer-fill attempt: an armed delay models
// a slow peer (the fill budget expires and the worker simulates
// locally), an armed error models a peer that cannot be asked at all.
var sitePeerFill = faultinject.Register("cluster.peerfill")

// PeerCacheConfig tunes the worker-side cache-fill client. The zero
// value selects defaults.
type PeerCacheConfig struct {
	// VNodes must match the coordinator's ring (default DefaultVNodes).
	VNodes int
	// Timeout bounds one whole Fill attempt, peers included. It should
	// be far below a simulation's cost and is a hard budget: when it
	// expires the worker simulates locally (default 750ms).
	Timeout time.Duration
	// MaxBytes caps an accepted peer report (default 32 MiB).
	MaxBytes int64
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// PeerCache is the worker half of the two-tier cache: on a local miss
// the service's PeerFill hook calls Fill, which asks the key's ring
// owner(s) for the already-rendered report bytes before falling back to
// simulation.
//
// Fill always consults the preference chain *excluding this replica*:
// if we are the ring owner, the first peer asked is our failover
// successor — exactly where this key's reports accumulated while we
// were down, which is what makes a rejoining owner warm up from peers
// instead of re-simulating its whole key range.
type PeerCache struct {
	ring     *Ring
	self     string
	client   *http.Client
	timeout  time.Duration
	maxBytes int64
}

// NewPeerCache builds the fill client for one replica. replicas is the
// same static list every cluster member is configured with; self is
// this replica's own advertised URL (skipped when walking the ring).
func NewPeerCache(replicas []string, self string, cfg PeerCacheConfig) *PeerCache {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 750 * time.Millisecond
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 32 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &PeerCache{
		ring:     NewRing(replicas, cfg.VNodes),
		self:     self,
		client:   client,
		timeout:  cfg.Timeout,
		maxBytes: cfg.MaxBytes,
	}
}

// Fill implements service.Config.PeerFill: it asks up to two preferred
// peers for the cached report under cacheKey, routed by the input
// fingerprint (the same key the coordinator routes by). Any failure —
// peer down, slow, 404, oversized — returns (nil, false) and the caller
// simulates locally; peer fill never makes a request fail.
func (p *PeerCache) Fill(ctx context.Context, fingerprint, cacheKey string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	if err := faultinject.Hit(sitePeerFill); err != nil {
		return nil, false
	}
	if ctx.Err() != nil {
		// An injected delay (or a caller already out of budget) burned
		// the fill window: degrade to local simulation.
		return nil, false
	}
	asked := 0
	for _, peer := range p.ring.Owners(fingerprint, len(p.ring.members)) {
		if peer == p.self {
			continue
		}
		if asked >= 2 || ctx.Err() != nil {
			break
		}
		asked++
		if data, ok := p.ask(ctx, peer, cacheKey); ok {
			return data, true
		}
	}
	return nil, false
}

func (p *PeerCache) ask(ctx context.Context, peer, cacheKey string) ([]byte, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/internal/v1/cache/"+cacheKey, nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBytes+1))
	if err != nil || int64(len(data)) > p.maxBytes || len(data) == 0 {
		return nil, false
	}
	return data, true
}
