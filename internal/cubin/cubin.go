// Package cubin implements the CUDA-binary container used by the
// GPUscout Configuration stage. A Binary bundles one or more compiled
// kernels — their encoded SASS, resource usage, and (when compiled with
// the -g --generate-line-info analogue) the source line table and embedded
// source text.
//
// The on-disk format is a little-endian sectioned binary with a magic
// header; Disassemble recovers the sass.Kernel from a contained program,
// playing the role nvdisasm/cuobjdump play for real cubins (§2.1).
package cubin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/sass"
)

// siteDecode is the fault-injection site covering untrusted-input decode.
var siteDecode = faultinject.Register("cubin.decode")

// Magic identifies a serialized Binary.
var Magic = [4]byte{'C', 'U', 'B', 'N'}

// Version is the current format version.
const Version uint32 = 2

// Binary is a compiled CUDA module: a set of kernels for one architecture.
type Binary struct {
	Arch    string // e.g. "sm_70"
	Kernels []*sass.Kernel
}

// New creates a Binary for the given architecture.
func New(arch string) *Binary { return &Binary{Arch: arch} }

// Add appends a kernel, validating it first.
func (b *Binary) Add(k *sass.Kernel) error {
	if err := k.Validate(); err != nil {
		return fmt.Errorf("cubin: %w", err)
	}
	if k.Arch != b.Arch {
		return fmt.Errorf("cubin: kernel %s is %s, binary is %s", k.Name, k.Arch, b.Arch)
	}
	for _, have := range b.Kernels {
		if have.Name == k.Name {
			return fmt.Errorf("cubin: duplicate kernel %s", k.Name)
		}
	}
	b.Kernels = append(b.Kernels, k)
	return nil
}

// Kernel returns the kernel with the given (mangled) name.
func (b *Binary) Kernel(name string) (*sass.Kernel, error) {
	for _, k := range b.Kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("cubin: no kernel %q (have %d kernels)", name, len(b.Kernels))
}

// Disassemble renders a kernel's SASS in nvdisasm-like text form.
func (b *Binary) Disassemble(name string) (string, error) {
	k, err := b.Kernel(name)
	if err != nil {
		return "", err
	}
	return sass.Print(k), nil
}

// Encode serializes the Binary.
func Encode(b *Binary) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	writeU32(&buf, Version)
	writeString(&buf, b.Arch)
	writeU32(&buf, uint32(len(b.Kernels)))
	for _, k := range b.Kernels {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("cubin: encode: %w", err)
		}
		writeString(&buf, k.Name)
		writeU32(&buf, uint32(k.NumRegs))
		writeU32(&buf, uint32(k.SharedBytes))
		writeU32(&buf, uint32(k.LocalBytes))
		writeU32(&buf, uint32(k.ConstBytes))
		writeString(&buf, k.SourceFile)
		writeU32(&buf, uint32(len(k.Source)))
		for _, line := range k.Source {
			writeString(&buf, line)
		}
		// The SASS section stores the canonical text encoding; parsing it
		// back is the "disassembly" step.
		writeString(&buf, sass.Print(k))
	}
	return buf.Bytes(), nil
}

// Sanity bounds for decoding untrusted input (cubins arrive over HTTP in
// gpuscoutd): reject headers whose claimed sizes are impossible for the
// bytes actually present, before allocating anything proportional to the
// claim.
const (
	// maxRegsPlausible bounds a kernel's register count (the hardware
	// register file has 255 addressable registers).
	maxRegsPlausible = 256
	// maxResourceBytes bounds shared/local/const sizes (far above any
	// real per-kernel resource, far below an allocation attack).
	maxResourceBytes = 16 << 20
	// minKernelBytes is the smallest possible serialized kernel: seven
	// u32 length/size fields, all strings empty.
	minKernelBytes = 7 * 4
)

// Decode deserializes a Binary and validates every kernel. It is safe on
// arbitrary untrusted input: malformed, truncated, or adversarial bytes
// produce a descriptive error (wrapping io.ErrUnexpectedEOF where the
// input ends early) — never a panic and never an allocation proportional
// to a claimed-but-absent size.
func Decode(data []byte) (*Binary, error) {
	if err := faultinject.Hit(siteDecode); err != nil {
		return nil, fmt.Errorf("cubin: %w", err)
	}
	r := &reader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err != nil {
		return nil, fmt.Errorf("cubin: missing magic: %w", r.err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("cubin: bad magic %q", magic[:])
	}
	if v := r.u32(); r.err == nil && v != Version {
		return nil, fmt.Errorf("cubin: unsupported version %d (want %d)", v, Version)
	}
	b := &Binary{Arch: r.str()}
	n := int(r.u32())
	if r.err != nil {
		return nil, fmt.Errorf("cubin: truncated header: %w", r.err)
	}
	if n > 1<<16 || n > r.remaining()/minKernelBytes {
		return nil, fmt.Errorf("cubin: implausible kernel count %d (%d bytes remain)", n, r.remaining())
	}
	for i := 0; i < n; i++ {
		name := r.str()
		regs := int(r.u32())
		shared := int(r.u32())
		local := int(r.u32())
		cbytes := int(r.u32())
		srcFile := r.str()
		nsrc := int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("cubin: truncated kernel %d: %w", i, r.err)
		}
		if regs < 0 || regs > maxRegsPlausible {
			return nil, fmt.Errorf("cubin: kernel %q claims implausible register count %d", name, regs)
		}
		if shared < 0 || shared > maxResourceBytes ||
			local < 0 || local > maxResourceBytes ||
			cbytes < 0 || cbytes > maxResourceBytes {
			return nil, fmt.Errorf("cubin: kernel %q claims implausible resource sizes (shared=%d local=%d const=%d)",
				name, shared, local, cbytes)
		}
		// Each source line costs at least its 4-byte length prefix.
		if nsrc > r.remaining()/4 {
			return nil, fmt.Errorf("cubin: kernel %q claims %d source lines but only %d bytes remain",
				name, nsrc, r.remaining())
		}
		src := make([]string, 0, nsrc)
		for j := 0; j < nsrc; j++ {
			src = append(src, r.str())
		}
		text := r.str()
		if r.err != nil {
			return nil, fmt.Errorf("cubin: truncated kernel %q: %w", name, r.err)
		}
		k, err := sass.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("cubin: kernel %q SASS section: %w", name, err)
		}
		// Header fields are authoritative over the text's header line.
		k.Name, k.Arch = name, b.Arch
		k.NumRegs, k.SharedBytes, k.LocalBytes, k.ConstBytes = regs, shared, local, cbytes
		k.SourceFile, k.Source = srcFile, src
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("cubin: decoded kernel invalid: %w", err)
		}
		b.Kernels = append(b.Kernels, k)
	}
	if len(r.data) != r.off {
		return nil, fmt.Errorf("cubin: %d trailing bytes", len(r.data)-r.off)
	}
	return b, nil
}

func writeU32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeString(w *bytes.Buffer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

type reader struct {
	data []byte
	off  int
	err  error
}

// remaining is how many undecoded bytes are left.
func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.data) {
		r.err = fmt.Errorf("need %d bytes at offset %d, have %d: %w",
			len(dst), r.off, r.remaining(), io.ErrUnexpectedEOF)
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("string of %d bytes at offset %d exceeds %d remaining: %w",
			n, r.off, r.remaining(), io.ErrUnexpectedEOF)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}
