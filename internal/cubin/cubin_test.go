package cubin

import (
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"

	"gpuscout/internal/sass"
)

func tinyKernel(name string) *sass.Kernel {
	k := &sass.Kernel{
		Name: name, Arch: "sm_70", NumRegs: 8, ConstBytes: 0x170,
		SourceFile: "tiny.cu",
		Source:     []string{"__global__ void tiny(float* x) {", "  x[0] = 1.0f;", "}"},
	}
	ctrl := sass.DefaultCtrl()
	k.Insts = []sass.Inst{
		{Pred: sass.PT, Op: sass.OpMOV, Dst: []sass.Operand{sass.R(0)}, Src: []sass.Operand{sass.Imm(0x3f800000)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpSTG, Mods: []string{"E", "SYS"}, Dst: []sass.Operand{sass.Mem(2, 0)}, Src: []sass.Operand{sass.R(0)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpEXIT, Ctrl: ctrl, Line: 3},
	}
	k.RenumberPCs()
	return k
}

func TestRoundTrip(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := b.Add(tinyKernel("_Z5tiny2Pf")); err != nil {
		t.Fatalf("Add second: %v", err)
	}
	data, err := Encode(b)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Arch != "sm_70" || len(got.Kernels) != 2 {
		t.Fatalf("decoded %q with %d kernels", got.Arch, len(got.Kernels))
	}
	k, err := got.Kernel("_Z4tinyPf")
	if err != nil {
		t.Fatalf("Kernel: %v", err)
	}
	if k.NumRegs != 8 || k.SourceFile != "tiny.cu" || len(k.Source) != 3 {
		t.Errorf("kernel fields lost: %+v", k)
	}
	if len(k.Insts) != 3 || k.Insts[1].Op != sass.OpSTG || k.Insts[1].Line != 2 {
		t.Errorf("instructions lost: %+v", k.Insts)
	}
}

func TestDisassemble(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatal(err)
	}
	text, err := b.Disassemble("_Z4tinyPf")
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if !strings.Contains(text, "STG.E.SYS") || !strings.Contains(text, `//## File "tiny.cu", line 2`) {
		t.Errorf("disassembly missing content:\n%s", text)
	}
	// The disassembly must itself parse.
	if _, err := sass.Parse(text); err != nil {
		t.Errorf("disassembly does not re-parse: %v", err)
	}
	if _, err := b.Disassemble("nope"); err == nil {
		t.Error("Disassemble of missing kernel succeeded")
	}
}

func TestAddRejects(t *testing.T) {
	b := New("sm_70")
	bad := tinyKernel("_Zbad")
	bad.Insts = nil // invalid
	if err := b.Add(bad); err == nil {
		t.Error("Add accepted invalid kernel")
	}
	wrongArch := tinyKernel("_Zwrong")
	wrongArch.Arch = "sm_60"
	if err := b.Add(wrongArch); err == nil {
		t.Error("Add accepted arch mismatch")
	}
	ok := tinyKernel("_Zdup")
	if err := b.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(tinyKernel("_Zdup")); err == nil {
		t.Error("Add accepted duplicate kernel name")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[0] = 'X'
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted bad magic")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[4] = 99
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted bad version")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, data...), 0xde, 0xad)
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted trailing bytes")
		}
	})
	t.Run("truncation never panics", func(t *testing.T) {
		for n := 0; n < len(data); n += 7 {
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("Decode accepted truncation at %d bytes", n)
			}
		}
	})
}

// craft builds a malformed cubin byte stream field by field.
type craft struct{ b []byte }

func (c *craft) u32(v uint32) *craft {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	c.b = append(c.b, x[:]...)
	return c
}

func (c *craft) str(s string) *craft {
	c.u32(uint32(len(s)))
	c.b = append(c.b, s...)
	return c
}

func (c *craft) raw(p ...byte) *craft { c.b = append(c.b, p...); return c }

func header() *craft {
	c := &craft{}
	return c.raw(Magic[:]...).u32(Version).str("sm_70")
}

// TestDecodeMalformed exercises every error path against hand-crafted
// adversarial inputs: each must fail with a descriptive error, never
// panic, and never allocate proportionally to a claimed-but-absent size
// (cubins reach Decode over HTTP from untrusted clients via gpuscoutd).
func TestDecodeMalformed(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		wantErr string // substring of the expected error
	}{
		{"empty", nil, "magic"},
		{"short magic", []byte("CU"), "magic"},
		{"wrong magic", (&craft{}).raw('E', 'L', 'F', 0).b, "bad magic"},
		{"truncated after magic", (&craft{}).raw(Magic[:]...).b, "truncated"},
		{"future version", (&craft{}).raw(Magic[:]...).u32(Version + 7).b, "unsupported version"},
		{"arch string runs past end",
			(&craft{}).raw(Magic[:]...).u32(Version).u32(1 << 30).b, "exceeds"},
		{"huge kernel count",
			header().u32(0xffffffff).b, "implausible kernel count"},
		{"kernel count beyond payload",
			header().u32(100).str("k").b, "implausible kernel count"},
		{"truncated mid-kernel",
			header().u32(1).str("_Zkernel_with_a_long_name").u32(8).u32(0).b, "truncated kernel"},
		{"implausible registers",
			header().u32(1).str("_Zk").u32(100000).u32(0).u32(0).u32(0).str("f.cu").u32(0).str("x").b,
			"implausible register count"},
		{"implausible shared size",
			header().u32(1).str("_Zk").u32(8).u32(1 << 30).u32(0).u32(0).str("f.cu").u32(0).str("x").b,
			"implausible resource sizes"},
		{"source lines beyond payload",
			header().u32(1).str("_Zk").u32(8).u32(0).u32(0).u32(0).str("f.cu").u32(1 << 19).b,
			"source lines"},
		{"SASS section not parseable",
			header().u32(1).str("_Zk").u32(8).u32(0).u32(0).u32(0).str("f.cu").u32(0).str("not sass").b,
			"SASS section"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bin, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("Decode accepted malformed input: %+v", bin)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeHeaderSASSMismatch: the header's resource fields are
// authoritative over the SASS text, so a crafted stream whose SASS
// parses fine but contradicts its own header (writes R4 while the header
// claims 2 registers) must be rejected by post-decode validation.
func TestDecodeHeaderSASSMismatch(t *testing.T) {
	k := tinyKernel("_Z4tinyPf")
	k.Insts[0].Dst = []sass.Operand{sass.R(4)}
	k.Insts[1].Src = []sass.Operand{sass.R(4)}
	text := sass.Print(k)

	data := header().u32(1).
		str(k.Name).u32(2 /* fewer than R4 needs */).u32(0).u32(0).u32(0x170).
		str("tiny.cu").u32(0).str(text).b
	if _, err := Decode(data); err == nil {
		t.Fatal("Decode accepted kernel contradicting its header")
	} else if !strings.Contains(err.Error(), "invalid") {
		t.Errorf("error %q does not mention validation", err)
	}
}

func TestQuickDecodeGarbage(t *testing.T) {
	// Property: Decode never panics on arbitrary input.
	f := func(junk []byte) bool {
		_, _ = Decode(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
