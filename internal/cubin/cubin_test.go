package cubin

import (
	"strings"
	"testing"
	"testing/quick"

	"gpuscout/internal/sass"
)

func tinyKernel(name string) *sass.Kernel {
	k := &sass.Kernel{
		Name: name, Arch: "sm_70", NumRegs: 8, ConstBytes: 0x170,
		SourceFile: "tiny.cu",
		Source:     []string{"__global__ void tiny(float* x) {", "  x[0] = 1.0f;", "}"},
	}
	ctrl := sass.DefaultCtrl()
	k.Insts = []sass.Inst{
		{Pred: sass.PT, Op: sass.OpMOV, Dst: []sass.Operand{sass.R(0)}, Src: []sass.Operand{sass.Imm(0x3f800000)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpSTG, Mods: []string{"E", "SYS"}, Dst: []sass.Operand{sass.Mem(2, 0)}, Src: []sass.Operand{sass.R(0)}, Ctrl: ctrl, Line: 2},
		{Pred: sass.PT, Op: sass.OpEXIT, Ctrl: ctrl, Line: 3},
	}
	k.RenumberPCs()
	return k
}

func TestRoundTrip(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := b.Add(tinyKernel("_Z5tiny2Pf")); err != nil {
		t.Fatalf("Add second: %v", err)
	}
	data, err := Encode(b)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Arch != "sm_70" || len(got.Kernels) != 2 {
		t.Fatalf("decoded %q with %d kernels", got.Arch, len(got.Kernels))
	}
	k, err := got.Kernel("_Z4tinyPf")
	if err != nil {
		t.Fatalf("Kernel: %v", err)
	}
	if k.NumRegs != 8 || k.SourceFile != "tiny.cu" || len(k.Source) != 3 {
		t.Errorf("kernel fields lost: %+v", k)
	}
	if len(k.Insts) != 3 || k.Insts[1].Op != sass.OpSTG || k.Insts[1].Line != 2 {
		t.Errorf("instructions lost: %+v", k.Insts)
	}
}

func TestDisassemble(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatal(err)
	}
	text, err := b.Disassemble("_Z4tinyPf")
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if !strings.Contains(text, "STG.E.SYS") || !strings.Contains(text, `//## File "tiny.cu", line 2`) {
		t.Errorf("disassembly missing content:\n%s", text)
	}
	// The disassembly must itself parse.
	if _, err := sass.Parse(text); err != nil {
		t.Errorf("disassembly does not re-parse: %v", err)
	}
	if _, err := b.Disassemble("nope"); err == nil {
		t.Error("Disassemble of missing kernel succeeded")
	}
}

func TestAddRejects(t *testing.T) {
	b := New("sm_70")
	bad := tinyKernel("_Zbad")
	bad.Insts = nil // invalid
	if err := b.Add(bad); err == nil {
		t.Error("Add accepted invalid kernel")
	}
	wrongArch := tinyKernel("_Zwrong")
	wrongArch.Arch = "sm_60"
	if err := b.Add(wrongArch); err == nil {
		t.Error("Add accepted arch mismatch")
	}
	ok := tinyKernel("_Zdup")
	if err := b.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(tinyKernel("_Zdup")); err == nil {
		t.Error("Add accepted duplicate kernel name")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	b := New("sm_70")
	if err := b.Add(tinyKernel("_Z4tinyPf")); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[0] = 'X'
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted bad magic")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[4] = 99
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted bad version")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, data...), 0xde, 0xad)
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted trailing bytes")
		}
	})
	t.Run("truncation never panics", func(t *testing.T) {
		for n := 0; n < len(data); n += 7 {
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("Decode accepted truncation at %d bytes", n)
			}
		}
	})
}

func TestQuickDecodeGarbage(t *testing.T) {
	// Property: Decode never panics on arbitrary input.
	f := func(junk []byte) bool {
		_, _ = Decode(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
