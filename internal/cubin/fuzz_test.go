package cubin_test

import (
	"bytes"
	"testing"

	"gpuscout/internal/cubin"
	"gpuscout/internal/workloads"
)

// FuzzCubinDecode feeds arbitrary bytes to the cubin decoder, seeded with
// a valid single-kernel container per registered workload. Decode handles
// untrusted gpuscoutd uploads, so it must never panic and never allocate
// proportionally to a claimed-but-absent size; anything it accepts must
// re-encode, and the re-encoding must be a decode/encode fixed point.
func FuzzCubinDecode(f *testing.F) {
	for _, name := range workloads.Names() {
		w, err := workloads.Build(name, 0)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		b := cubin.New(w.Kernel.Arch)
		if err := b.Add(w.Kernel); err != nil {
			f.Fatalf("add %s: %v", name, err)
		}
		data, err := cubin.Encode(b)
		if err != nil {
			f.Fatalf("encode %s: %v", name, err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("CUBN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := cubin.Decode(data)
		if err != nil {
			return
		}
		first, err := cubin.Encode(b)
		if err != nil {
			t.Fatalf("decoded binary does not re-encode: %v", err)
		}
		b2, err := cubin.Decode(first)
		if err != nil {
			t.Fatalf("re-encoded binary does not decode: %v", err)
		}
		second, err := cubin.Encode(b2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("encode not a fixed point after decode round trip")
		}
	})
}
