package gpu

import "testing"

// TestPerturbationMatrix checks the matrix shape: every resource appears
// in both directions, IDs are unique, and exactly one direction of each
// resource is marked as helping.
func TestPerturbationMatrix(t *testing.T) {
	ps := Perturbations()
	if want := 2 * len(ResourceNames()); len(ps) != want {
		t.Fatalf("matrix has %d entries, want %d", len(ps), want)
	}
	seen := map[string]bool{}
	helping := map[string]int{}
	for _, p := range ps {
		if seen[p.ID()] {
			t.Errorf("duplicate perturbation %s", p.ID())
		}
		seen[p.ID()] = true
		if p.Direction != "up" && p.Direction != "down" {
			t.Errorf("%s: bad direction %q", p.ID(), p.Direction)
		}
		if (p.Direction == "up") != (p.Factor > 1) {
			t.Errorf("%s: direction/factor mismatch (factor %g)", p.ID(), p.Factor)
		}
		if p.Helps {
			helping[p.Resource]++
		}
		if got, ok := PerturbationByID(p.ID()); !ok || got != p {
			t.Errorf("PerturbationByID(%s) = %+v, %t", p.ID(), got, ok)
		}
	}
	for _, r := range ResourceNames() {
		if helping[r] != 1 {
			t.Errorf("resource %s has %d helping directions, want 1", r, helping[r])
		}
	}
	if _, ok := PerturbationByID("no_such/up"); ok {
		t.Error("PerturbationByID invented an entry")
	}
}

// TestPerturbationApply checks each resource actually moves, in the right
// direction, and that nothing else about the arch changes.
func TestPerturbationApply(t *testing.T) {
	base := V100()
	for _, p := range Perturbations() {
		a := p.Apply(base)
		read := func(arch Arch) float64 {
			switch p.Resource {
			case ResourceL1Capacity:
				return float64(arch.L1Bytes)
			case ResourceL2Capacity:
				return float64(arch.L2Bytes)
			case ResourceDRAMLatency:
				return float64(arch.DRAMLatency)
			case ResourceDRAMBandwidth:
				return arch.DRAMBWBytes
			case ResourceSharedBanks:
				return float64(arch.SharedBanks)
			case ResourceIssueWidth:
				return float64(arch.NumSchedulers)
			case ResourceScoreboards:
				return float64(arch.ISA.Scoreboards)
			}
			t.Fatalf("unknown resource %s", p.Resource)
			return 0
		}
		before, after := read(base), read(a)
		if p.Factor > 1 && after <= before {
			t.Errorf("%s: %g -> %g did not grow", p.ID(), before, after)
		}
		if p.Factor < 1 && after >= before {
			t.Errorf("%s: %g -> %g did not shrink", p.ID(), before, after)
		}
		// Restore the one field and compare: nothing else may move.
		restored := a
		switch p.Resource {
		case ResourceL1Capacity:
			restored.L1Bytes = base.L1Bytes
		case ResourceL2Capacity:
			restored.L2Bytes = base.L2Bytes
		case ResourceDRAMLatency:
			restored.DRAMLatency = base.DRAMLatency
		case ResourceDRAMBandwidth:
			restored.DRAMBWBytes = base.DRAMBWBytes
		case ResourceSharedBanks:
			restored.SharedBanks = base.SharedBanks
		case ResourceIssueWidth:
			restored.NumSchedulers = base.NumSchedulers
		case ResourceScoreboards:
			restored.ISA.Scoreboards = base.ISA.Scoreboards
		}
		if restored != base {
			t.Errorf("%s: perturbation touched more than its resource", p.ID())
		}
	}
}

// TestPerturbationClamps covers the integer floors: scaling tiny values
// down must not produce degenerate hardware.
func TestPerturbationClamps(t *testing.T) {
	a := V100()
	a.ISA.Scoreboards = 1
	a.SharedBanks = 1
	a.NumSchedulers = 1
	down := Perturbation{Resource: ResourceScoreboards, Direction: "down", Factor: 0.5}
	if got := down.Apply(a).ISA.Scoreboards; got != 1 {
		t.Errorf("scoreboards clamped to %d, want 1", got)
	}
	down.Resource = ResourceSharedBanks
	if got := down.Apply(a).SharedBanks; got != 1 {
		t.Errorf("banks clamped to %d, want 1", got)
	}
	up := Perturbation{Resource: ResourceIssueWidth, Direction: "up", Factor: 2}
	a.NumSchedulers = 8
	if got := up.Apply(a).NumSchedulers; got != 8 {
		t.Errorf("schedulers = %d, want picker-width clamp at 8", got)
	}
}
