package gpu

import "fmt"

// Occupancy is the result of the CUDA occupancy calculation for one kernel
// launch configuration: how many blocks and warps fit on an SM, and which
// resource limits them. GPUscout reports register-pressure-driven occupancy
// drops (§4.1: "an increased register pressure may lead to a decreased
// occupancy on an SM").
type Occupancy struct {
	BlocksPerSM   int
	WarpsPerBlock int
	WarpsPerSM    int
	// Theoretical occupancy: resident warps / max warps.
	Theoretical float64
	// Limiter names the resource that bounds BlocksPerSM:
	// "warps", "registers", "shared", or "blocks".
	Limiter string
}

// ComputeOccupancy calculates the theoretical occupancy of a kernel with
// the given per-thread register count, per-block shared memory and block
// size on architecture a.
func ComputeOccupancy(a Arch, regsPerThread, sharedPerBlock, threadsPerBlock int) (Occupancy, error) {
	if threadsPerBlock <= 0 || threadsPerBlock > a.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("gpu: block size %d out of range (1..%d)", threadsPerBlock, a.MaxThreadsPerBlock)
	}
	if regsPerThread > a.MaxRegsPerThread {
		return Occupancy{}, fmt.Errorf("gpu: %d registers per thread exceeds limit %d", regsPerThread, a.MaxRegsPerThread)
	}
	warpsPerBlock := (threadsPerBlock + a.WarpSize - 1) / a.WarpSize

	// Limit 1: warp slots.
	byWarps := a.MaxWarpsPerSM / warpsPerBlock

	// Limit 2: registers. Allocation is per warp at RegAllocGranule
	// granularity.
	byRegs := byWarps
	if regsPerThread > 0 {
		regsPerWarp := roundUp(regsPerThread*a.WarpSize, a.RegAllocGranule)
		warpsByRegs := a.RegsPerSM / regsPerWarp
		byRegs = warpsByRegs / warpsPerBlock
	}

	// Limit 3: shared memory.
	byShared := byWarps
	if sharedPerBlock > 0 {
		byShared = a.SharedPerSM / roundUp(sharedPerBlock, a.SharedGranule)
	}

	// Limit 4: block slots.
	byBlocks := a.MaxBlocksPerSM

	blocks := byWarps
	limiter := "warps"
	for _, c := range []struct {
		n   int
		tag string
	}{{byRegs, "registers"}, {byShared, "shared"}, {byBlocks, "blocks"}} {
		if c.n < blocks {
			blocks, limiter = c.n, c.tag
		}
	}
	if blocks <= 0 {
		return Occupancy{}, fmt.Errorf("gpu: kernel does not fit on an SM (limited by %s)", limiter)
	}
	warps := blocks * warpsPerBlock
	return Occupancy{
		BlocksPerSM:   blocks,
		WarpsPerBlock: warpsPerBlock,
		WarpsPerSM:    warps,
		Theoretical:   float64(warps) / float64(a.MaxWarpsPerSM),
		Limiter:       limiter,
	}, nil
}

func roundUp(v, g int) int {
	if g <= 0 {
		return v
	}
	return (v + g - 1) / g * g
}
