package gpu

import "fmt"

// Perturbation is one microarchitectural what-if: a single hardware
// resource scaled by a factor, leaving everything else untouched. The
// advisor's sensitivity analysis (following Pompougnac et al.: "from
// latency sensitivity to bug hunting") re-simulates an analyzed kernel
// under each perturbation and attributes the bottleneck to the resource
// whose movement moves cycles most — a bandwidth-bound kernel barely
// notices halved DRAM latency but slows almost linearly under halved
// bandwidth, and vice versa for a latency-bound one.
type Perturbation struct {
	// Resource names the scaled resource (see ResourceNames).
	Resource string
	// Direction is "up" (resource scaled by Factor > 1) or "down".
	Direction string
	// Factor is the multiplier applied to the resource.
	Factor float64
	// Helps reports whether this direction relieves the resource:
	// more capacity, bandwidth, banks, slots — or less latency. The
	// estimated-speedup ranking only extrapolates from helping runs.
	Helps bool
}

// Canonical resource names, in matrix order.
const (
	ResourceL1Capacity    = "l1_capacity"
	ResourceL2Capacity    = "l2_capacity"
	ResourceDRAMLatency   = "dram_latency"
	ResourceDRAMBandwidth = "dram_bandwidth"
	ResourceSharedBanks   = "shared_banks"
	ResourceIssueWidth    = "issue_width"
	ResourceScoreboards   = "scoreboards"
)

// ResourceNames lists every perturbed resource in matrix order.
func ResourceNames() []string {
	return []string{
		ResourceL1Capacity,
		ResourceL2Capacity,
		ResourceDRAMLatency,
		ResourceDRAMBandwidth,
		ResourceSharedBanks,
		ResourceIssueWidth,
		ResourceScoreboards,
	}
}

// ID is the stable identifier used in reports and JSON: "resource/dir".
func (p Perturbation) ID() string { return p.Resource + "/" + p.Direction }

// String describes the perturbation for report text.
func (p Perturbation) String() string {
	return fmt.Sprintf("%s x%g", p.Resource, p.Factor)
}

// Apply returns a copy of arch with the perturbation applied. Integer
// resources are clamped to stay valid (at least one cache set, one bank,
// one scheduler, one scoreboard slot); the simulator further clamps the
// scheduler count to its per-SM picker width.
func (p Perturbation) Apply(a Arch) Arch {
	switch p.Resource {
	case ResourceL1Capacity:
		a.L1Bytes = scaleInt(a.L1Bytes, p.Factor, a.L1LineBytes*a.L1Ways)
	case ResourceL2Capacity:
		a.L2Bytes = scaleInt(a.L2Bytes, p.Factor, a.L2LineBytes*a.L2Ways)
	case ResourceDRAMLatency:
		a.DRAMLatency = scaleInt(a.DRAMLatency, p.Factor, 1)
	case ResourceDRAMBandwidth:
		a.DRAMBWBytes *= p.Factor
	case ResourceSharedBanks:
		a.SharedBanks = scaleInt(a.SharedBanks, p.Factor, 1)
	case ResourceIssueWidth:
		a.NumSchedulers = scaleInt(a.NumSchedulers, p.Factor, 1)
		if a.NumSchedulers > 8 {
			a.NumSchedulers = 8 // simulator picker width
		}
	case ResourceScoreboards:
		a.ISA.Scoreboards = scaleInt(a.ISA.Scoreboards, p.Factor, 1)
	}
	return a
}

func scaleInt(v int, factor float64, min int) int {
	out := int(float64(v) * factor)
	if out < min {
		out = min
	}
	return out
}

// Perturbations returns the full sensitivity matrix in its fixed order:
// each resource scaled up and down by 2x. The order is part of the
// report contract — sweeps iterate it as given so rendered sensitivity
// blocks are byte-stable.
func Perturbations() []Perturbation {
	var out []Perturbation
	for _, r := range ResourceNames() {
		// For latency, "up" means more cycles, which hurts; for every
		// other resource "up" means more of it, which helps.
		upHelps := r != ResourceDRAMLatency
		out = append(out,
			Perturbation{Resource: r, Direction: "up", Factor: 2, Helps: upHelps},
			Perturbation{Resource: r, Direction: "down", Factor: 0.5, Helps: !upHelps},
		)
	}
	return out
}

// PerturbationByID resolves "resource/direction" back to its matrix
// entry.
func PerturbationByID(id string) (Perturbation, bool) {
	for _, p := range Perturbations() {
		if p.ID() == id {
			return p, true
		}
	}
	return Perturbation{}, false
}
