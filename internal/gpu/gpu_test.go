package gpu

import (
	"testing"
	"testing/quick"
)

func TestV100Parameters(t *testing.T) {
	a := V100()
	if a.NumSMs != 80 {
		t.Errorf("V100 NumSMs = %d, want 80 (paper §5)", a.NumSMs)
	}
	if a.MaxWarpsPerSM*a.WarpSize != 2048 {
		t.Errorf("V100 threads per SM = %d, want 2048", a.MaxWarpsPerSM*a.WarpSize)
	}
	if !a.SupportsNCU() {
		t.Error("V100 must support ncu metric collection")
	}
	// ~900 GB/s HBM2.
	gbps := a.DRAMBWBytes * a.ClockGHz
	if gbps < 850 || gbps > 950 {
		t.Errorf("V100 DRAM bandwidth = %.0f GB/s, want ~900", gbps)
	}
}

func TestPascalNoNCU(t *testing.T) {
	a := P100()
	if a.SupportsNCU() {
		t.Error("Pascal must not support ncu (motivates --dry-run, §3.1)")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sm_70", "V100", "sm_60", "p100"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("sm_99"); err == nil {
		t.Error("ByName accepted unknown architecture")
	}
}

func TestOccupancyKnownPoints(t *testing.T) {
	a := V100()
	cases := []struct {
		regs, shared, block int
		wantWarps           int
		wantLimiter         string
	}{
		// 32 regs/thread, no shared, 256-thread blocks: full occupancy.
		{32, 0, 256, 64, "warps"},
		// 64 regs/thread: register file limits to 32 warps (50%).
		{64, 0, 256, 32, "registers"},
		// 128 regs/thread: 16 warps (25%).
		{128, 0, 256, 16, "registers"},
		// 48 KB shared per block: two blocks fit.
		{32, 48 << 10, 256, 16, "shared"},
		// Tiny blocks hit the block-slot limit: 32 blocks x 1 warp.
		{16, 0, 32, 32, "blocks"},
	}
	for _, tc := range cases {
		occ, err := ComputeOccupancy(a, tc.regs, tc.shared, tc.block)
		if err != nil {
			t.Errorf("ComputeOccupancy(%d,%d,%d): %v", tc.regs, tc.shared, tc.block, err)
			continue
		}
		if occ.WarpsPerSM != tc.wantWarps {
			t.Errorf("ComputeOccupancy(%d,%d,%d).WarpsPerSM = %d, want %d",
				tc.regs, tc.shared, tc.block, occ.WarpsPerSM, tc.wantWarps)
		}
		if occ.Limiter != tc.wantLimiter {
			t.Errorf("ComputeOccupancy(%d,%d,%d).Limiter = %q, want %q",
				tc.regs, tc.shared, tc.block, occ.Limiter, tc.wantLimiter)
		}
	}
}

func TestOccupancyMoreRegistersNeverHelps(t *testing.T) {
	// Property: occupancy is monotonically non-increasing in register
	// count and shared memory usage.
	a := V100()
	f := func(regs8, shared8, block8 uint8) bool {
		regs := int(regs8%120) + 16
		shared := int(shared8) * 128
		block := (int(block8%31) + 1) * 32
		o1, err1 := ComputeOccupancy(a, regs, shared, block)
		o2, err2 := ComputeOccupancy(a, regs+8, shared, block)
		if err1 != nil || err2 != nil {
			return true // does not fit; nothing to compare
		}
		if o2.Theoretical > o1.Theoretical {
			return false
		}
		o3, err3 := ComputeOccupancy(a, regs, shared+4096, block)
		if err3 == nil && o3.Theoretical > o1.Theoretical {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOccupancyErrors(t *testing.T) {
	a := V100()
	if _, err := ComputeOccupancy(a, 32, 0, 0); err == nil {
		t.Error("accepted zero block size")
	}
	if _, err := ComputeOccupancy(a, 32, 0, 2048); err == nil {
		t.Error("accepted oversized block")
	}
	if _, err := ComputeOccupancy(a, 300, 0, 256); err == nil {
		t.Error("accepted too many registers per thread")
	}
	if _, err := ComputeOccupancy(a, 32, 200<<10, 256); err == nil {
		t.Error("accepted block with more shared memory than the SM has")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	a := V100()
	s := a.CyclesToSeconds(uint64(a.ClockGHz * 1e9))
	if s < 0.999 || s > 1.001 {
		t.Errorf("CyclesToSeconds(1s worth) = %v", s)
	}
}

func TestA100(t *testing.T) {
	a := A100()
	if !a.SupportsNCU() {
		t.Error("A100 must support ncu")
	}
	if a.NumSMs != 108 || a.SM != "sm_80" {
		t.Errorf("A100 shape wrong: %+v", a)
	}
	got, err := ByName("sm_80")
	if err != nil || got.Name != "A100" {
		t.Errorf("ByName(sm_80) = %v, %v", got.Name, err)
	}
	// More memory bandwidth and L2 than the V100.
	v := V100()
	if a.DRAMBWBytes <= v.DRAMBWBytes || a.L2Bytes <= v.L2Bytes {
		t.Error("A100 not bigger than V100 where it should be")
	}
}
