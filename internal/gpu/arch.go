// Package gpu describes the modeled GPU architectures: the static hardware
// parameters the simulator, the occupancy calculator, and the metric
// formulas consume. The default is a Tesla V100 (Volta, SM 7.0) — the GPU
// the paper's evaluation ran on.
package gpu

import "fmt"

// Arch holds the hardware parameters of one GPU model.
type Arch struct {
	Name string // marketing name, e.g. "Tesla V100"
	SM   string // compute architecture tag, e.g. "sm_70"

	// Chip-level organization.
	NumSMs      int     // streaming multiprocessors
	ClockGHz    float64 // SM clock
	DRAMBytes   int64   // device memory capacity
	DRAMBWBytes float64 // DRAM bandwidth in bytes/cycle (whole chip)
	DRAMLatency int     // cycles from L2 miss to data return

	// Per-SM resources.
	WarpSize           int
	MaxWarpsPerSM      int
	MaxBlocksPerSM     int
	MaxThreadsPerBlock int
	RegsPerSM          int // 32-bit registers in the register file
	MaxRegsPerThread   int
	RegAllocGranule    int // register allocation granularity (per warp)
	SharedPerSM        int // bytes of shared memory
	SharedGranule      int // shared allocation granularity in bytes
	NumSchedulers      int // warp schedulers per SM

	// Memory hierarchy.
	L1Bytes       int // unified L1/tex data cache per SM
	L1LineBytes   int
	L1SectorBytes int
	L1Ways        int
	L1HitLatency  int
	L2Bytes       int // chip-wide L2
	L2LineBytes   int
	L2Ways        int
	L2HitLatency  int
	L2BWBytes     float64 // L2 bandwidth in bytes/cycle (whole chip)
	SharedBanks   int
	SharedLatency int // MIO shared-memory access latency
	TexLatency    int // texture pipe latency on a tex-cache hit

	// Issue-queue depths per SM; when full, issuing warps report the
	// corresponding throttle stall (lg_throttle / mio_throttle /
	// tex_throttle).
	LGQueueDepth  int
	MIOQueueDepth int
	TEXQueueDepth int

	// Miss-status holding registers: outstanding L1 misses supported by
	// the LSU path vs the (deeper) texture path. The texture pipe's
	// greater memory-level parallelism is what makes tex2D() faster for
	// latency-bound stencils (§5.2).
	LSUMSHRs int
	TEXMSHRs int

	// Pipe issue intervals in cycles (1 = fully pipelined per scheduler).
	ALULatency    int // dependent-issue latency of the ALU pipe
	FP64Latency   int
	SFULatency    int
	FP64IssueRate int // cycles between FP64 issues per scheduler (throughput limit)
	SFUIssueRate  int

	// ISA describes what the architecture's instruction set offers; the
	// codegen backend selects instructions from it during lowering.
	ISA ISADesc
}

// ISADesc is the instruction-selection side of an architecture
// descriptor: everything codegen needs to lower the arch-neutral kasm IR
// onto this target without per-arch constants in the compiler itself.
type ISADesc struct {
	// AsyncCopy reports whether the target has cp.async-style
	// global→shared copy instructions (LDGSTS on sm_80+). When set, the
	// backend fuses eligible LDG+STS pairs into single async copies that
	// bypass the register file and L1.
	AsyncCopy bool
	// AsyncCopyMaxBytes is the widest per-thread async copy (16 on
	// Ampere: cp.async.cg 16B).
	AsyncCopyMaxBytes int
	// Scoreboards is the number of hardware dependency scoreboards
	// (barrier slots) the control encoding exposes.
	Scoreboards int
	// ConstLatency is the constant-cache hit latency in cycles.
	ConstLatency int
}

// V100 returns the Tesla V100 (SXM2 16GB) description used throughout the
// paper's evaluation: 80 SMs, Volta memory system, ~900 GB/s HBM2.
func V100() Arch {
	return Arch{
		Name: "Tesla V100", SM: "sm_70",

		NumSMs:      80,
		ClockGHz:    1.38,
		DRAMBytes:   16 << 30,
		DRAMBWBytes: 652, // ~900 GB/s / 1.38 GHz
		DRAMLatency: 440,

		WarpSize:           32,
		MaxWarpsPerSM:      64,
		MaxBlocksPerSM:     32,
		MaxThreadsPerBlock: 1024,
		RegsPerSM:          65536,
		MaxRegsPerThread:   255,
		RegAllocGranule:    256, // registers per warp rounded to 8/thread
		SharedPerSM:        96 << 10,
		SharedGranule:      256,
		NumSchedulers:      4,

		L1Bytes:       128 << 10,
		L1LineBytes:   128,
		L1SectorBytes: 32,
		L1Ways:        4,
		L1HitLatency:  28,
		L2Bytes:       6 << 20,
		L2LineBytes:   128,
		L2Ways:        16,
		L2HitLatency:  193,
		L2BWBytes:     1600,
		SharedBanks:   32,
		SharedLatency: 19,
		TexLatency:    60,

		LGQueueDepth:  12,
		MIOQueueDepth: 8,
		TEXQueueDepth: 8,

		LSUMSHRs: 112,
		TEXMSHRs: 256,

		ALULatency:    4,
		FP64Latency:   8,
		SFULatency:    14,
		FP64IssueRate: 2,
		SFUIssueRate:  4,

		ISA: ISADesc{
			AsyncCopy:   false,
			Scoreboards: 6,

			ConstLatency: 8,
		},
	}
}

// P100 returns a Pascal-generation description. ncu does not support
// Pascal (the paper notes GPUscout's --dry-run still works there); the
// simulator supports it fully, but the scout tool refuses metric
// collection for it just as ncu would.
func P100() Arch {
	a := V100()
	a.Name, a.SM = "Tesla P100", "sm_60"
	a.NumSMs = 56
	a.ClockGHz = 1.33
	a.MaxWarpsPerSM = 64
	a.SharedPerSM = 64 << 10
	a.L1Bytes = 24 << 10
	a.L2Bytes = 4 << 20
	a.DRAMBWBytes = 549 // ~730 GB/s / 1.33 GHz
	return a
}

// A100 returns an Ampere-generation description (SM 8.0): more SMs, a
// larger L2 and more shared memory per SM than the V100. GPUscout's
// modular analyses run on it unchanged — the paper's extensibility claim.
func A100() Arch {
	a := V100()
	a.Name, a.SM = "A100", "sm_80"
	a.NumSMs = 108
	a.ClockGHz = 1.41
	a.DRAMBytes = 40 << 30
	a.DRAMBWBytes = 1103 // ~1555 GB/s HBM2e / 1.41 GHz
	a.SharedPerSM = 164 << 10
	a.L1Bytes = 192 << 10
	a.L1SectorBytes = 64 // wider L1 sectors; all coalescing/byte math reads this
	a.L1Ways = 6
	a.L2Bytes = 40 << 20
	a.L2BWBytes = 3200
	a.MaxRegsPerThread = 255
	a.LSUMSHRs = 144
	a.TEXMSHRs = 320
	a.ISA.AsyncCopy = true
	a.ISA.AsyncCopyMaxBytes = 16
	return a
}

// ByName resolves an architecture by SM tag ("sm_70", also accepted
// without the underscore as "sm70") or name.
func ByName(name string) (Arch, error) {
	switch name {
	case "sm_70", "sm70", "V100", "v100", "Tesla V100":
		return V100(), nil
	case "sm_60", "sm60", "P100", "p100", "Tesla P100":
		return P100(), nil
	case "sm_80", "sm80", "A100", "a100":
		return A100(), nil
	}
	return Arch{}, fmt.Errorf("gpu: unknown architecture %q", name)
}

// SupportsNCU reports whether the (modeled) Nsight Compute CLI supports
// this architecture. Volta (sm_70) and newer are supported; Pascal is not,
// mirroring the tooling restriction discussed with --dry-run in §3.1.
func (a Arch) SupportsNCU() bool {
	return a.SM >= "sm_70"
}

// CyclesToSeconds converts an SM cycle count to wall-clock seconds.
func (a Arch) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (a.ClockGHz * 1e9)
}
