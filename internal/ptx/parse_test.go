package ptx

import (
	"strings"
	"testing"

	"gpuscout/internal/workloads"
)

// TestParseRoundTrip lifts every registered workload, prints the module,
// and parses it back: the reparse must reproduce the instruction stream
// and print byte-identically.
func TestParseRoundTrip(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.Build(name, 0)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		m := Lift(w.Kernel)
		text := m.Print()
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: Parse(Print()): %v", name, err)
		}
		if got.Kernel != m.Kernel {
			t.Errorf("%s: kernel = %q, want %q", name, got.Kernel, m.Kernel)
		}
		if len(got.Insts) != len(m.Insts) {
			t.Fatalf("%s: %d insts, want %d", name, len(got.Insts), len(m.Insts))
		}
		for i := range m.Insts {
			want, have := m.Insts[i], got.Insts[i]
			if have.Text != want.Text || have.Opcode != want.Opcode ||
				have.Space != want.Space || have.Line != want.Line {
				t.Errorf("%s inst %d: %+v, want %+v", name, i, have, want)
			}
		}
		if again := got.Print(); again != text {
			t.Errorf("%s: print not a fixed point:\n--- lifted\n%s--- reparsed\n%s", name, text, again)
		}
	}
}

// TestParseAtomics checks the §4.4 query works on a parsed module: the
// state spaces survive the text round trip.
func TestParseAtomics(t *testing.T) {
	w, err := workloads.Build("histogram_shared", 0)
	if err != nil {
		t.Fatal(err)
	}
	lifted := Lift(w.Kernel)
	parsed, err := Parse(lifted.Print())
	if err != nil {
		t.Fatal(err)
	}
	want, got := lifted.Atomics(), parsed.Atomics()
	if len(got.SharedAtomics) != len(want.SharedAtomics) || len(got.GlobalAtomics) != len(want.GlobalAtomics) {
		t.Errorf("atomics after round trip: %d shared / %d global, want %d / %d",
			len(got.SharedAtomics), len(got.GlobalAtomics),
			len(want.SharedAtomics), len(want.GlobalAtomics))
	}
	if len(got.SharedAtomics) == 0 {
		t.Error("histogram_shared round trip lost its shared atomics")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"comment only", "// PTX view of k\n"},
		{"no entry", "ld.global.f32;\n"},
		{"unnamed entry", ".visible .entry ()\n{\n}\n"},
		{"missing brace", ".visible .entry k()\n\tld.global.f32;\n}\n"},
		{"unterminated inst", ".visible .entry k()\n{\n\tld.global.f32\n}\n"},
		{"bad loc", ".visible .entry k()\n{\n\t.loc one 2 3\n}\n"},
		{"unclosed body", ".visible .entry k()\n{\n\tld.global.f32;\n"},
		{"trailing content", ".visible .entry k()\n{\n}\nextra\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
		}
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		text, opcode, space string
	}{
		{"ld.global.f32", "ld", "global"},
		{"ld.global.nc.f32", "ld", ""},
		{"st.shared.v4.f32", "st", "shared"},
		{"ld.local.f64", "ld", "local"},
		{"ld.const.s32", "ld", "const"},
		{"tex.2d.v4.f32.s32", "tex", "tex"},
		{"atom.shared.add.u32", "atom", "shared"},
		{"red.global.add.f32", "red", "global"},
		{"cvt.f32.s32", "cvt", ""},
		{"bar.sync 0", "bar", ""},
		{"fma.rn.f32", "fma", ""},
	} {
		op, sp := classify(tc.text)
		if op != tc.opcode || sp != tc.space {
			t.Errorf("classify(%q) = %q/%q, want %q/%q", tc.text, op, sp, tc.opcode, tc.space)
		}
	}
}

// TestParseTolerance: the parser normalizes incidental whitespace and
// comments without inventing instructions.
func TestParseTolerance(t *testing.T) {
	text := "// header\r\n\r\n.visible .entry k()\r\n{\r\n\t.loc 1 5 0\r\n\t  ld.global.f32 ;\r\n}\r\n"
	m, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Insts) != 1 || m.Insts[0].Text != "ld.global.f32" || m.Insts[0].Line != 5 {
		t.Errorf("parsed %+v", m.Insts)
	}
	if !strings.Contains(m.Print(), ".loc 1 5 0") {
		t.Error("line attribution lost")
	}
}
