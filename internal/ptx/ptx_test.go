package ptx

import (
	"strings"
	"testing"

	"gpuscout/internal/workloads"
)

func TestLiftHistogram(t *testing.T) {
	w, err := workloads.Build("histogram_global", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := Lift(w.Kernel)
	if m.Kernel != w.Kernel.Name || len(m.Insts) == 0 {
		t.Fatalf("empty module: %+v", m)
	}
	a := m.Atomics()
	if len(a.GlobalAtomics) == 0 {
		t.Fatal("no global atomics lifted (RED must count)")
	}
	if len(a.SharedAtomics) != 0 {
		t.Error("phantom shared atomics")
	}
	for _, in := range a.GlobalAtomics {
		if in.Line == 0 {
			t.Error("atomic without source line")
		}
		if !strings.HasPrefix(in.Text, "red.global") && !strings.HasPrefix(in.Text, "atom.global") {
			t.Errorf("unexpected text %q", in.Text)
		}
	}

	ws, err := workloads.Build("histogram_shared", 4)
	if err != nil {
		t.Fatal(err)
	}
	as := Lift(ws.Kernel).Atomics()
	if len(as.SharedAtomics) == 0 {
		t.Error("shared histogram lifted without atom.shared")
	}
}

func TestLiftMnemonics(t *testing.T) {
	w, err := workloads.Build("jacobi_naive", 128)
	if err != nil {
		t.Fatal(err)
	}
	m := Lift(w.Kernel)
	text := m.Print()
	for _, want := range []string{
		"ld.global", "st.global", "cvt.f32.s32", "fma.rn.f32", ".loc 1 ",
		".visible .entry",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("PTX text missing %q", want)
		}
	}
	// The naive jacobi has no shared or texture ops.
	if strings.Contains(text, "ld.shared") || strings.Contains(text, "tex.2d") {
		t.Error("phantom shared/texture ops in naive jacobi PTX")
	}

	wt, err := workloads.Build("jacobi_texture", 128)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Lift(wt.Kernel).Print(), "tex.2d") {
		t.Error("texture variant PTX lacks tex.2d")
	}

	wv, err := workloads.Build("mixbench_sp_vec4", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Lift(wv.Kernel).Print(), "ld.global.v4.f32") {
		t.Error("vectorized loads not lifted as .v4")
	}
}
