package ptx

import (
	"fmt"
	"strings"
)

// Parse reads the text form produced by Module.Print back into a Module.
// It accepts exactly that dialect: an optional leading comment block, one
// ".visible .entry NAME()" declaration, and a braced body of ".loc" line
// markers and ";"-terminated instructions. Instruction opcodes and state
// spaces are re-derived from the instruction text, so Atomics works on a
// parsed module exactly as on a lifted one. SASS PCs are not part of the
// text form and come back as zero.
func Parse(text string) (*Module, error) {
	lines := strings.Split(text, "\n")
	i := 0
	next := func() (string, bool) {
		for i < len(lines) {
			line := strings.TrimSuffix(lines[i], "\r")
			i++
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, "//") {
				continue
			}
			return trimmed, true
		}
		return "", false
	}

	decl, ok := next()
	if !ok {
		return nil, fmt.Errorf("ptx: empty module")
	}
	const entry = ".visible .entry "
	if !strings.HasPrefix(decl, entry) || !strings.HasSuffix(decl, "()") {
		return nil, fmt.Errorf("ptx: line %d: want %q declaration, got %q", i, entry+"NAME()", decl)
	}
	m := &Module{Kernel: strings.TrimSuffix(strings.TrimPrefix(decl, entry), "()")}
	if m.Kernel == "" {
		return nil, fmt.Errorf("ptx: line %d: empty kernel name", i)
	}

	if open, ok := next(); !ok || open != "{" {
		return nil, fmt.Errorf("ptx: line %d: want '{' after entry declaration", i)
	}

	curLine := 0
	closed := false
	for {
		line, ok := next()
		if !ok {
			break
		}
		if line == "}" {
			closed = true
			break
		}
		if strings.HasPrefix(line, ".loc ") {
			var file, col int
			if _, err := fmt.Sscanf(line, ".loc %d %d %d", &file, &curLine, &col); err != nil {
				return nil, fmt.Errorf("ptx: line %d: malformed %q: %w", i, line, err)
			}
			continue
		}
		body, ok := strings.CutSuffix(line, ";")
		if !ok {
			return nil, fmt.Errorf("ptx: line %d: instruction %q lacks ';'", i, line)
		}
		in := Inst{Text: strings.TrimSpace(body), Line: curLine}
		in.Opcode, in.Space = classify(in.Text)
		m.Insts = append(m.Insts, in)
	}
	if !closed {
		return nil, fmt.Errorf("ptx: missing closing '}'")
	}
	if rest, ok := next(); ok {
		return nil, fmt.Errorf("ptx: trailing content %q after '}'", rest)
	}
	return m, nil
}

// classify re-derives the Opcode and Space fields from an instruction's
// text, mirroring how liftInst builds them: the opcode is the mnemonic's
// first dotted segment, the space is the second when it names a state
// space — except ld.global.nc, which Lift files under the read-only path
// with an empty space, and tex, whose space is implied by the opcode.
func classify(text string) (opcode, space string) {
	head := text
	if cut := strings.IndexAny(head, " \t"); cut >= 0 {
		head = head[:cut]
	}
	segs := strings.Split(head, ".")
	opcode = segs[0]
	if opcode == "tex" {
		return opcode, "tex"
	}
	if len(segs) >= 2 {
		switch segs[1] {
		case "global", "shared", "local", "const":
			if len(segs) >= 3 && segs[2] == "nc" {
				return opcode, ""
			}
			return opcode, segs[1]
		}
	}
	return opcode, ""
}
