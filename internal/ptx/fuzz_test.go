package ptx_test

import (
	"testing"

	"gpuscout/internal/ptx"
	"gpuscout/internal/workloads"
)

// FuzzParsePTX feeds arbitrary text to the PTX-view parser, seeded with
// the printed PTX lift of every registered workload. The parser must
// never panic, and anything it accepts must survive a print -> parse ->
// print round trip byte-identically.
func FuzzParsePTX(f *testing.F) {
	for _, name := range workloads.Names() {
		w, err := workloads.Build(name, 0)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		f.Add(ptx.Lift(w.Kernel).Print())
	}
	f.Add("")
	f.Add(".visible .entry k()\n{\n}\n")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ptx.Parse(text)
		if err != nil {
			return
		}
		printed := m.Print()
		m2, err := ptx.Parse(printed)
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n%s", err, printed)
		}
		if again := m2.Print(); again != printed {
			t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, again)
		}
	})
}
