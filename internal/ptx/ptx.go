// Package ptx provides a PTX-level view of a kernel. The paper performs
// its atomics analysis (§4.4) on PTX rather than SASS (footnote 2:
// "Analogously to SASS, a PTX analysis is performed in Section 4.4"), so
// GPUscout's shared-atomics detector cross-checks against this view.
//
// PTX is a virtual-ISA *above* SASS; since our toolchain lowers directly
// to SASS, this package lifts SASS back into canonical PTX mnemonics —
// sufficient for the instruction-class and state-space queries GPUscout
// performs (atom.global vs atom.shared, red, conversions, memory ops).
package ptx

import (
	"fmt"
	"strings"

	"gpuscout/internal/sass"
)

// Inst is one PTX-level instruction with source attribution.
type Inst struct {
	// Text is the canonical PTX mnemonic+operands rendering.
	Text string
	// Opcode is the PTX opcode ("atom", "red", "ld", "cvt", ...).
	Opcode string
	// Space is the state space for memory ops ("global", "shared",
	// "local", "const", "tex", "").
	Space string
	Line  int
	PC    uint64 // originating SASS PC
}

// Module is the PTX view of one kernel.
type Module struct {
	Kernel string
	Insts  []Inst
}

// Lift produces the PTX view of a SASS kernel.
func Lift(k *sass.Kernel) *Module {
	m := &Module{Kernel: k.Name}
	for i := range k.Insts {
		in := &k.Insts[i]
		p, ok := liftInst(in)
		if !ok {
			continue
		}
		p.Line = in.Line
		p.PC = in.PC
		m.Insts = append(m.Insts, p)
	}
	return m
}

func liftInst(in *sass.Inst) (Inst, bool) {
	typ := ".f32"
	switch {
	case in.HasMod("F64") || sass.ClassOf(in.Op) == sass.ClassFP64:
		typ = ".f64"
	case in.HasMod("S32"):
		typ = ".s32"
	case in.HasMod("U32"):
		typ = ".u32"
	}
	wide := ""
	switch {
	case in.HasMod("128"):
		wide = ".v4"
	case in.HasMod("64") && sass.IsMemory(in.Op):
		wide = ".v2"
	}
	mk := func(op, space string) (Inst, bool) {
		text := op
		if space != "" {
			text += "." + space
		}
		text += wide + typ
		// The opcode tag is the base mnemonic before any sub-operation
		// ("atom.add" -> "atom").
		base := op
		if dot := strings.IndexByte(op, '.'); dot >= 0 {
			base = op[:dot]
		}
		return Inst{Text: text, Opcode: base, Space: space}, true
	}
	switch in.Op {
	case sass.OpLDG:
		if in.IsNC() {
			return mk("ld.global.nc", "")
		}
		return mk("ld", "global")
	case sass.OpSTG:
		return mk("st", "global")
	case sass.OpLDS:
		return mk("ld", "shared")
	case sass.OpSTS:
		return mk("st", "shared")
	case sass.OpLDL:
		return mk("ld", "local")
	case sass.OpSTL:
		return mk("st", "local")
	case sass.OpLDC:
		return mk("ld", "const")
	case sass.OpTEX:
		return Inst{Text: "tex.2d.v4.f32.s32", Opcode: "tex", Space: "tex"}, true
	case sass.OpATOM:
		return Inst{Text: "atom.global." + atomOp(in) + typ, Opcode: "atom", Space: "global"}, true
	case sass.OpATOMS:
		return Inst{Text: "atom.shared." + atomOp(in) + typ, Opcode: "atom", Space: "shared"}, true
	case sass.OpRED:
		return Inst{Text: "red.global." + atomOp(in) + typ, Opcode: "red", Space: "global"}, true
	case sass.OpI2F, sass.OpF2I, sass.OpF2F, sass.OpI2I:
		return Inst{Text: "cvt" + cvtTypes(in), Opcode: "cvt"}, true
	case sass.OpFFMA, sass.OpDFMA:
		return Inst{Text: "fma.rn" + typ, Opcode: "fma"}, true
	case sass.OpIMAD:
		return Inst{Text: "mad.lo.s32", Opcode: "mad"}, true
	case sass.OpBAR:
		return Inst{Text: "bar.sync 0", Opcode: "bar"}, true
	default:
		return Inst{}, false
	}
}

func atomOp(in *sass.Inst) string {
	for _, m := range []string{"ADD", "MIN", "MAX", "EXCH"} {
		if in.HasMod(m) {
			return strings.ToLower(m)
		}
	}
	return "add"
}

func cvtTypes(in *sass.Inst) string {
	if len(in.Mods) >= 2 {
		return fmt.Sprintf(".%s.%s", strings.ToLower(in.Mods[0]), strings.ToLower(in.Mods[1]))
	}
	return ".f32.s32"
}

// AtomicSummary aggregates §4.4's atomics analysis over the PTX view.
type AtomicSummary struct {
	GlobalAtomics []Inst // atom.global + red.global
	SharedAtomics []Inst // atom.shared
}

// Atomics extracts the atomic instructions by state space.
func (m *Module) Atomics() AtomicSummary {
	var s AtomicSummary
	for _, in := range m.Insts {
		switch {
		case (in.Opcode == "atom" || in.Opcode == "red") && in.Space == "global":
			s.GlobalAtomics = append(s.GlobalAtomics, in)
		case in.Opcode == "atom" && in.Space == "shared":
			s.SharedAtomics = append(s.SharedAtomics, in)
		}
	}
	return s
}

// Print renders the PTX view as text.
func (m *Module) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// PTX view of %s\n.visible .entry %s()\n{\n", m.Kernel, m.Kernel)
	curLine := -1
	for _, in := range m.Insts {
		if in.Line != curLine {
			curLine = in.Line
			fmt.Fprintf(&b, "\t.loc 1 %d 0\n", in.Line)
		}
		fmt.Fprintf(&b, "\t%s;\n", in.Text)
	}
	b.WriteString("}\n")
	return b.String()
}
