package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func armT(t *testing.T, f Fault) {
	t.Helper()
	disarm, err := Arm(f)
	if err != nil {
		t.Fatalf("Arm(%+v): %v", f, err)
	}
	t.Cleanup(disarm)
}

func TestDisarmedHitIsFree(t *testing.T) {
	Reset()
	if err := Hit("nowhere.registered"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestArmRequiresRegistration(t *testing.T) {
	Reset()
	if _, err := Arm(Fault{Site: "no.such.site.ever"}); err == nil {
		t.Fatal("arming an unregistered site succeeded")
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	site := Register("test.error")
	armT(t, Fault{Site: site, Mode: ModeError})
	err := Hit(site)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	armT(t, Fault{Site: site, Mode: ModeError, Err: custom})
	err = Hit(site)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("Hit = %v, want both ErrInjected and the custom error", err)
	}
}

func TestPanicModeCarriesSite(t *testing.T) {
	Reset()
	site := Register("test.panic")
	armT(t, Fault{Site: site, Mode: ModePanic})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *InjectedPanic", r, r)
		}
		if ip.Site != site {
			t.Fatalf("panic site = %q, want %q", ip.Site, site)
		}
	}()
	_ = Hit(site)
	t.Fatal("Hit did not panic")
}

func TestDelayMode(t *testing.T) {
	Reset()
	site := Register("test.delay")
	armT(t, Fault{Site: site, Mode: ModeDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit(site); err != nil {
		t.Fatalf("delay Hit returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 30ms", d)
	}
}

func TestSkipHitsAndTimes(t *testing.T) {
	Reset()
	site := Register("test.nth")
	// Fire on the 3rd hit only (SkipHits 2, Times 1).
	armT(t, Fault{Site: site, Mode: ModeError, SkipHits: 2, Times: 1})
	for i := 1; i <= 5; i++ {
		err := Hit(site)
		if i == 3 && err == nil {
			t.Fatalf("hit %d: fault did not fire", i)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: unexpected fire %v", i, err)
		}
	}
	if got := Fired(site); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestResetAndArmedListing(t *testing.T) {
	Reset()
	a, b := Register("test.a"), Register("test.b")
	armT(t, Fault{Site: a, Mode: ModeError})
	armT(t, Fault{Site: b, Mode: ModeError})
	if got := len(Armed()); got != 2 {
		t.Fatalf("Armed() has %d entries, want 2", got)
	}
	Reset()
	if got := len(Armed()); got != 0 {
		t.Fatalf("after Reset, Armed() has %d entries", got)
	}
	if err := Hit(a); err != nil {
		t.Fatalf("Hit after Reset fired: %v", err)
	}
}

func TestSitesSorted(t *testing.T) {
	Register("test.z")
	Register("test.m")
	ss := Sites()
	for i := 1; i < len(ss); i++ {
		if ss[i-1] >= ss[i] {
			t.Fatalf("Sites not strictly sorted: %q >= %q", ss[i-1], ss[i])
		}
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModePanic, ModeError, ModeDelay} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("explode"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}

// TestConcurrentHits hammers an armed site from many goroutines; the
// counter bookkeeping must stay consistent under -race.
func TestConcurrentHits(t *testing.T) {
	Reset()
	site := Register("test.concurrent")
	armT(t, Fault{Site: site, Mode: ModeError, SkipHits: 50})
	var wg sync.WaitGroup
	var mu sync.Mutex
	n := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Hit(site) != nil {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if n != 150 {
		t.Fatalf("fired %d times, want 150 (200 hits - 50 skipped)", n)
	}
}
