// Package faultinject is the deterministic fault-injection harness behind
// the chaos test suite and gpuscoutd's build-tag-gated debug endpoint.
//
// Pipeline stages declare *sites* — stable, dot-separated names such as
// "sim.launch", "scout.detector.bank_conflicts", "advisor.verify" or
// "cubin.decode" — by calling Register at init time and Hit on the hot
// path. The persistence layer registers crash points the same way
// ("store.journal.append", "store.journal.tombstone",
// "store.report.rename", "store.compact.rename"): firing one mid-write
// leaves genuinely torn bytes on disk and fail-stops the store, which
// is how the restart chaos suites simulate kill -9 in-process. A disarmed site costs one atomic load; tests (or the daemon's
// debug endpoint) Arm a site to panic, delay past a stage budget, or
// return an error, optionally only on the Nth hit and only a bounded
// number of times. Everything is deterministic: no randomness, no
// time-based triggering, and hit counting is per-armed-fault, so a chaos
// run replays exactly.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed fault does when it fires.
type Mode int

const (
	// ModePanic makes Hit panic with an *InjectedPanic.
	ModePanic Mode = iota
	// ModeError makes Hit return an error wrapping ErrInjected.
	ModeError
	// ModeDelay makes Hit sleep for Fault.Delay, then pass — the way a
	// stage blows its deadline without failing outright.
	ModeDelay
)

// String names the mode ("panic", "error", "delay").
func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "panic":
		return ModePanic, nil
	case "error":
		return ModeError, nil
	case "delay":
		return ModeDelay, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown mode %q (want panic, error or delay)", s)
	}
}

// ErrInjected is the root of every error an armed ModeError fault
// returns; errors.Is(err, ErrInjected) identifies injected failures so
// retry logic can classify them as transient.
var ErrInjected = errors.New("injected fault")

// InjectedPanic is the value an armed ModePanic fault panics with. Stage
// guards recognize it to attribute the panic to its site.
type InjectedPanic struct {
	// Site is the site that fired.
	Site string
}

func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Site)
}

// Fault arms one site. The zero Mode is ModePanic.
type Fault struct {
	// Site names the instrumented location (must be registered).
	Site string
	// Mode selects panic, error, or delay.
	Mode Mode
	// Delay is how long a ModeDelay fault sleeps.
	Delay time.Duration
	// Err overrides the returned error for ModeError (it is wrapped so
	// errors.Is(err, ErrInjected) still holds). Nil uses a default.
	Err error
	// SkipHits passes through this many hits before the fault starts
	// firing ("fire on the Nth hit" = SkipHits: N-1).
	SkipHits int
	// Times bounds how often the fault fires once reached; 0 means
	// every remaining hit. SkipHits:0 Times:1 is a single-shot fault —
	// the shape transient-failure retry tests want.
	Times int
}

type armedFault struct {
	Fault
	hits  int // total Hit calls observed while armed
	fired int // times the fault actually fired
}

var (
	mu       sync.Mutex
	sites    = map[string]bool{}
	armed    = map[string]*armedFault{}
	armedLen atomic.Int32 // fast disarmed-path check
)

// Register declares a site name so chaos suites can enumerate every
// instrumented location. Call it from an init function next to the Hit
// call. Registering the same name twice is fine. It returns the name so
// instrumented packages can write:
//
//	var siteLaunch = faultinject.Register("sim.launch")
func Register(site string) string {
	mu.Lock()
	sites[site] = true
	mu.Unlock()
	return site
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Arm installs a fault at its site, replacing any fault already armed
// there, and returns a disarm function. Arming an unregistered site is
// an error — it would silently never fire.
func Arm(f Fault) (func(), error) {
	mu.Lock()
	defer mu.Unlock()
	if !sites[f.Site] {
		return nil, fmt.Errorf("faultinject: site %q is not registered (known: %d sites)", f.Site, len(sites))
	}
	if _, replaced := armed[f.Site]; !replaced {
		armedLen.Add(1)
	}
	armed[f.Site] = &armedFault{Fault: f}
	site := f.Site
	return func() { Disarm(site) }, nil
}

// Disarm removes the fault at site, if any.
func Disarm(site string) {
	mu.Lock()
	if _, ok := armed[site]; ok {
		delete(armed, site)
		armedLen.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every fault. Hit counters go with the faults.
func Reset() {
	mu.Lock()
	for s := range armed {
		delete(armed, s)
	}
	armedLen.Store(0)
	mu.Unlock()
}

// Armed reports the faults currently installed, keyed by site, with the
// observed hit and fire counts folded in (Times left at the armed value).
func Armed() map[string]Fault {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]Fault, len(armed))
	for s, f := range armed {
		out[s] = f.Fault
	}
	return out
}

// Fired reports how many times the fault armed at site has fired. A
// disarmed site reports 0.
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if f, ok := armed[site]; ok {
		return f.fired
	}
	return 0
}

// Hit is the instrumentation point. With nothing armed anywhere it is a
// single atomic load. An armed site fires according to its Fault: panic
// (with *InjectedPanic), sleep (ModeDelay), or a returned error wrapping
// ErrInjected. Hits before SkipHits and after Times firings pass through.
func Hit(site string) error {
	if armedLen.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := armed[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	f.hits++
	fire := f.hits > f.SkipHits && (f.Times == 0 || f.fired < f.Times)
	if fire {
		f.fired++
	}
	// Copy what the firing needs before releasing the lock: a ModeDelay
	// sleep must not serialize every other site behind it.
	mode, delay, err := f.Mode, f.Delay, f.Err
	mu.Unlock()
	if !fire {
		return nil
	}
	switch mode {
	case ModePanic:
		panic(&InjectedPanic{Site: site})
	case ModeDelay:
		time.Sleep(delay)
		return nil
	default:
		if err == nil {
			return fmt.Errorf("faultinject: site %s: %w", site, ErrInjected)
		}
		return fmt.Errorf("faultinject: site %s: %w: %w", site, ErrInjected, err)
	}
}
