package workloads

import (
	"testing"

	"gpuscout/internal/sim"
)

func TestTransposeCorrect(t *testing.T) {
	for _, name := range []string{"transpose_naive", "transpose_shared", "transpose_padded"} {
		t.Run(name, func(t *testing.T) {
			_, res := runWorkload(t, name, 128, sim.Config{SampleSMs: 2})
			if res.Cycles <= 0 {
				t.Error("no cycles")
			}
		})
	}
}

func TestTransposeBankConflictRatio(t *testing.T) {
	// §4.3: the bank-conflict ratio is transactions/accesses. The
	// unpadded column read must show a full 32-way conflict; padding the
	// tile to 33 floats per row makes it conflict-free.
	_, rs := runWorkload(t, "transpose_shared", 128, sim.Config{SampleSMs: 1})
	ratio := func(r *sim.Result) float64 {
		if r.Counters.SharedLdInsts == 0 {
			return 0
		}
		return float64(r.Counters.SharedLdTrans) / float64(r.Counters.SharedLdInsts)
	}
	if got := ratio(rs); got < 31.5 || got > 32.5 {
		t.Errorf("unpadded tile bank-conflict ratio = %.2f, want 32-way", got)
	}
	_, rp := runWorkload(t, "transpose_padded", 128, sim.Config{SampleSMs: 1})
	if got := ratio(rp); got != 1 {
		t.Errorf("padded tile bank-conflict ratio = %.2f, want 1.0", got)
	}
	// And it matters: the padded variant is faster.
	if rp.Cycles >= rs.Cycles {
		t.Errorf("padding did not help: %.0f vs %.0f cycles", rp.Cycles, rs.Cycles)
	}
	t.Logf("cycles: shared %.0f, padded %.0f (%.2fx); ratios %.1f vs %.1f",
		rs.Cycles, rp.Cycles, rs.Cycles/rp.Cycles, ratio(rs), ratio(rp))
	// The conflicts surface as MIO pressure (short_scoreboard/mio).
	mio := rs.StallShare(sim.StallShortScoreboard) + rs.StallShare(sim.StallMIOThrottle)
	mioP := rp.StallShare(sim.StallShortScoreboard) + rp.StallShare(sim.StallMIOThrottle)
	if mio <= mioP {
		t.Errorf("conflicted variant shows no extra MIO pressure: %.3f vs %.3f", mio, mioP)
	}
}

func TestTransposeSharedBeatsNaive(t *testing.T) {
	// At 1024x1024 each SM holds enough blocks to saturate the LSU, where
	// the naive variant's 32-sector uncoalesced stores dominate.
	_, rn := runWorkload(t, "transpose_naive", 1024, sim.Config{SampleSMs: 1})
	_, rp := runWorkload(t, "transpose_padded", 1024, sim.Config{SampleSMs: 1})
	speedup := rn.Cycles / rp.Cycles
	t.Logf("padded-tile transpose speedup over naive: %.2fx", speedup)
	if speedup < 1.4 {
		t.Errorf("tiled transpose not faster than naive: %.2fx", speedup)
	}
}
