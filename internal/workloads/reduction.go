package workloads

import (
	"fmt"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sim"
)

// Reduction sums an array, in two styles around the §4.4 atomics advice:
//
//	atomic — every thread issues a global atomicAdd: the device-wide
//	         serialization GPUscout's detector warns about
//	shfl   — warp-level butterfly reduction with __shfl_xor_sync, then a
//	         single global atomic per warp: 32x fewer atomics
const (
	redBlock  = 256
	redBlocks = 640
)

var redAtomicSource = []string{
	/* 1 */ `// sum reduction with per-thread global atomics`,
	/* 2 */ `__global__ void reduce(const float* in, float* sum) {`,
	/* 3 */ `  int gid = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  atomicAdd(sum, in[gid]);`,
	/* 5 */ `}`,
}

var redShflSource = []string{
	/* 1 */ `// sum reduction: warp shuffle butterfly, one atomic per warp`,
	/* 2 */ `__global__ void reduce_w(const float* in, float* sum) {`,
	/* 3 */ `  int gid = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  float v = in[gid];`,
	/* 5 */ `  for (int m = 16; m > 0; m >>= 1)`,
	/* 6 */ `    v += __shfl_xor_sync(0xffffffff, v, m);`,
	/* 7 */ `  if ((threadIdx.x & 31) == 0) atomicAdd(sum, v);`,
	/* 8 */ `}`,
}

// Reduction builds one variant. scale is unused (fixed size).
func Reduction(shfl bool, arch gpu.Arch) (*Workload, error) {
	name, file, source := "_Z6reducePKfPf", "reduce.cu", redAtomicSource
	if shfl {
		name, file, source = "_Z8reduce_wPKfPf", "reduce_w.cu", redShflSource
	}
	b := kasm.NewBuilder(name, arch.SM, file)
	b.SetSource(source)
	b.NumParams(2)

	b.Line(3)
	tid := b.TidX()
	ctaid := b.CtaidX()
	ntid := b.NTidX()
	gid := b.IMad(kasm.VR(ctaid), kasm.VR(ntid), kasm.VR(tid))
	in := b.ParamPtr(0)
	sum := b.ParamPtr(1)
	b.Line(4)
	off := b.Shl(kasm.VR(gid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	v := b.Ldg(addr, 0, 4, false)

	if !shfl {
		b.RedAddF32(sum, 0, v)
	} else {
		b.Line(6)
		// Butterfly: masks 16, 8, 4, 2, 1 (unrolled, like nvcc).
		for m := int64(16); m > 0; m >>= 1 {
			o := b.ShflBfly(kasm.VR(v), m)
			b.FAddTo(kasm.VR(v), kasm.VR(v), kasm.VR(o))
		}
		b.Line(7)
		lane := b.And(kasm.VR(tid), kasm.VImm(31))
		p := b.ISetp("EQ", kasm.VR(lane), kasm.VImm(0))
		b.WithPred(p, false, func() { b.RedAddF32(sum, 0, v) })
		b.FreePred(p)
	}
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	threads := redBlock * redBlocks
	variant := "atomic"
	if shfl {
		variant = "shfl"
	}
	w := &Workload{
		Name:        "reduction_" + variant,
		Description: fmt.Sprintf("array sum reduction, %s variant", variant),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			inBuf, err := dev.Alloc(4 * threads)
			if err != nil {
				return nil, err
			}
			sumBuf, err := dev.Alloc(16)
			if err != nil {
				return nil, err
			}
			data := make([]float32, threads)
			for i := range data {
				data[i] = float32(i % 8) // small ints: fp addition is exact
			}
			if err := dev.WriteF32(inBuf, data); err != nil {
				return nil, err
			}
			if err := dev.WriteF32(sumBuf, []float32{0}); err != nil {
				return nil, err
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D1(redBlocks),
				Block:  sim.D1(redBlock),
				Params: []uint64{inBuf.Addr, sumBuf.Addr},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(sumBuf, 1)
				if err != nil {
					return err
				}
				var want float32
				for th := 0; th < threads; th++ {
					if res.BlockRan(th / redBlock) {
						want += data[th]
					}
				}
				if got[0] != want {
					return fmt.Errorf("sum = %v, want %v", got[0], want)
				}
				return nil
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

func init() {
	register("reduction_atomic", func(scale int, arch gpu.Arch) (*Workload, error) { return Reduction(false, arch) })
	register("reduction_shfl", func(scale int, arch gpu.Arch) (*Workload, error) { return Reduction(true, arch) })
}
