package workloads

import (
	"sort"
	"testing"
)

// TestNamesSortedAndStable pins the registry's determinism contract: Names
// is sorted, duplicate-free, consistent with the factories map, and hands
// out an independent copy each call.
func TestNamesSortedAndStable(t *testing.T) {
	got := Names()
	if len(got) == 0 {
		t.Fatal("no workloads registered")
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("Names() not sorted: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Errorf("duplicate name %q", got[i])
		}
	}
	if len(got) != len(factories) {
		t.Errorf("Names() has %d entries, factories map has %d", len(got), len(factories))
	}
	for _, n := range got {
		if _, ok := factories[n]; !ok {
			t.Errorf("Names() lists %q but it is not in the factories map", n)
		}
	}
	// Mutating the returned slice must not corrupt the registry.
	got[0] = "zzz_mutated"
	if again := Names(); again[0] == "zzz_mutated" {
		t.Error("Names() returns a shared slice; mutation leaked into the registry")
	}
}

// TestRegisterInsertsSorted exercises the insertion path directly: names
// arriving in arbitrary order land in sorted position.
func TestRegisterInsertsSorted(t *testing.T) {
	defer func(f map[string]Factory, n []string) { factories, names = f, n }(factories, names)
	factories = map[string]Factory{}
	names = nil
	for _, n := range []string{"mango", "apple", "zebra", "kiwi"} {
		register(n, nil)
	}
	want := []string{"apple", "kiwi", "mango", "zebra"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRegisterPanicsOnDuplicate locks in the duplicate guard.
func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func(f map[string]Factory, n []string) { factories, names = f, n }(factories, names)
	factories = map[string]Factory{}
	names = nil
	register("once", nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate register did not panic")
		}
	}()
	register("once", nil)
}

// TestBuildUnknownNamesRegistry checks the error path mentions the sorted
// registry listing (the message users see from the CLI).
func TestBuildUnknownNamesRegistry(t *testing.T) {
	_, err := Build("no_such_workload", 0)
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
