package workloads

import (
	"fmt"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sim"
)

// Transpose demonstrates the §4.3 bank-conflict metric — the
// "# shared load transactions / # shared load accesses" ratio GPUscout
// computes because ncu does not expose n-way conflicts directly:
//
//	naive  — direct out[x][y] = in[y][x]: uncoalesced global stores
//	shared — staged through a 32x32 shared tile; the column-wise tile
//	         read hits ONE bank for all 32 lanes: a 32-way conflict
//	         (ratio 32.0)
//	padded — the classic fix, a 33-float row pitch: conflict-free
//	         (ratio 1.0)
const (
	transTile = 32
	transRows = 8 // block is 32 x 8; each thread moves 4 elements
)

// TransposeVariant selects the kernel version.
type TransposeVariant int

const (
	TransposeNaive TransposeVariant = iota
	TransposeShared
	TransposePadded
)

func (v TransposeVariant) String() string {
	switch v {
	case TransposeNaive:
		return "naive"
	case TransposeShared:
		return "shared"
	default:
		return "padded"
	}
}

var transposeSources = map[TransposeVariant][]string{
	TransposeNaive: {
		/* 1 */ `// naive transpose: out[x][y] = in[y][x]`,
		/* 2 */ `__global__ void transpose(const float* in, float* out, int N) {`,
		/* 3 */ `  int x = blockIdx.x*32 + threadIdx.x;`,
		/* 4 */ `  int y = blockIdx.y*32 + threadIdx.y;`,
		/* 5 */ `  for (int i = 0; i < 32; i += 8)`,
		/* 6 */ `    out[x*N + (y+i)] = in[(y+i)*N + x];  // strided stores`,
		/* 7 */ `}`,
	},
	TransposeShared: {
		/* 1 */ `// tiled transpose, unpadded tile: 32-way bank conflicts`,
		/* 2 */ `__global__ void transpose_s(const float* in, float* out, int N) {`,
		/* 3 */ `  __shared__ float tile[32][32];`,
		/* 4 */ `  int x = blockIdx.x*32 + threadIdx.x, y = blockIdx.y*32 + threadIdx.y;`,
		/* 5 */ `  for (int i = 0; i < 32; i += 8)`,
		/* 6 */ `    tile[threadIdx.y+i][threadIdx.x] = in[(y+i)*N + x];`,
		/* 7 */ `  __syncthreads();`,
		/* 8 */ `  int tx = blockIdx.y*32 + threadIdx.x, ty = blockIdx.x*32 + threadIdx.y;`,
		/* 9 */ `  for (int i = 0; i < 32; i += 8)`,
		/* 10 */ `    out[(ty+i)*N + tx] = tile[threadIdx.x][threadIdx.y+i];  // column read`,
		/* 11 */ `}`,
	},
	TransposePadded: {
		/* 1 */ `// tiled transpose, padded tile: conflict-free`,
		/* 2 */ `__global__ void transpose_p(const float* in, float* out, int N) {`,
		/* 3 */ `  __shared__ float tile[32][33];  // +1 padding column`,
		/* 4 */ `  int x = blockIdx.x*32 + threadIdx.x, y = blockIdx.y*32 + threadIdx.y;`,
		/* 5 */ `  for (int i = 0; i < 32; i += 8)`,
		/* 6 */ `    tile[threadIdx.y+i][threadIdx.x] = in[(y+i)*N + x];`,
		/* 7 */ `  __syncthreads();`,
		/* 8 */ `  int tx = blockIdx.y*32 + threadIdx.x, ty = blockIdx.x*32 + threadIdx.y;`,
		/* 9 */ `  for (int i = 0; i < 32; i += 8)`,
		/* 10 */ `    out[(ty+i)*N + tx] = tile[threadIdx.x][threadIdx.y+i];`,
		/* 11 */ `}`,
	},
}

// Transpose builds one variant for an N x N float matrix (scale = N;
// <= 0 selects 256).
func Transpose(variant TransposeVariant, n int, arch gpu.Arch) (*Workload, error) {
	if n <= 0 {
		n = 256
	}
	if n%transTile != 0 {
		return nil, fmt.Errorf("workloads: transpose N=%d not a multiple of %d", n, transTile)
	}
	name := map[TransposeVariant]string{
		TransposeNaive:  "_Z9transposePKfPfi",
		TransposeShared: "_Z11transpose_sPKfPfi",
		TransposePadded: "_Z11transpose_pPKfPfi",
	}[variant]
	file := "transpose_" + variant.String() + ".cu"
	b := kasm.NewBuilder(name, arch.SM, file)
	b.SetSource(transposeSources[variant])
	b.NumParams(3)

	pitch := transTile // tile row pitch in floats
	if variant == TransposePadded {
		pitch = transTile + 1
	}

	b.Line(4)
	tx := b.TidX()
	ty := b.TidY()
	bx := b.CtaidX()
	by := b.CtaidY()
	x := b.IMad(kasm.VR(bx), kasm.VImm(transTile), kasm.VR(tx))
	y := b.IMad(kasm.VR(by), kasm.VImm(transTile), kasm.VR(ty))
	nReg := b.Param32(2)
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)

	// in address for element (y+i, x): base + i*8*N*4 per step.
	b.Line(6)
	yN := b.IMul(kasm.VR(y), kasm.VR(nReg))
	inLin := b.IAdd(kasm.VR(yN), kasm.VR(x))
	inOff := b.Shl(kasm.VR(inLin), 2)
	inAddr := b.IMadWide(kasm.VR(inOff), kasm.VImm(1), in)
	strideIn := b.Shl(kasm.VR(nReg), 5) // 8 rows * N * 4 bytes

	switch variant {
	case TransposeNaive:
		// out address for (x, y): out + (x*N + y)*4; the +i steps are
		// immediate offsets (stride 8 floats).
		xN := b.IMul(kasm.VR(x), kasm.VR(nReg))
		outLin := b.IAdd(kasm.VR(xN), kasm.VR(y))
		outOff := b.Shl(kasm.VR(outLin), 2)
		outAddr := b.IMadWide(kasm.VR(outOff), kasm.VImm(1), out)
		for step := 0; step < transTile/transRows; step++ {
			addr := inAddr
			if step > 0 {
				addr = b.IMadWide(kasm.VR(strideIn), kasm.VImm(int64(step)), inAddr)
			}
			v := b.Ldg(addr, 0, 4, false)
			b.Stg(outAddr, int64(step*transRows*4), v, 4)
		}

	case TransposeShared, TransposePadded:
		tile := b.AllocShared(transTile * pitch * 4)
		// Store tile[ty+i][tx].
		stOff := b.IMad(kasm.VR(ty), kasm.VImm(int64(pitch*4)), kasm.VR(b.Shl(kasm.VR(tx), 2)))
		for step := 0; step < transTile/transRows; step++ {
			addr := inAddr
			if step > 0 {
				addr = b.IMadWide(kasm.VR(strideIn), kasm.VImm(int64(step)), inAddr)
			}
			v := b.Ldg(addr, 0, 4, false)
			b.Sts(stOff, tile+int64(step*transRows*pitch*4), v, 4)
		}
		b.Line(7)
		b.Bar()
		// Read tile[tx][ty+i] (the column read) and store coalesced to
		// out[(bx*32+ty+i)*N + by*32+tx].
		b.Line(10)
		ldOff := b.IMad(kasm.VR(tx), kasm.VImm(int64(pitch*4)), kasm.VR(b.Shl(kasm.VR(ty), 2)))
		otx := b.IMad(kasm.VR(by), kasm.VImm(transTile), kasm.VR(tx))
		oty := b.IMad(kasm.VR(bx), kasm.VImm(transTile), kasm.VR(ty))
		otyN := b.IMul(kasm.VR(oty), kasm.VR(nReg))
		oLin := b.IAdd(kasm.VR(otyN), kasm.VR(otx))
		oOff := b.Shl(kasm.VR(oLin), 2)
		outAddr := b.IMadWide(kasm.VR(oOff), kasm.VImm(1), out)
		for step := 0; step < transTile/transRows; step++ {
			v := b.Lds(ldOff, tile+int64(step*transRows*4), 4)
			addr := outAddr
			if step > 0 {
				addr = b.IMadWide(kasm.VR(strideIn), kasm.VImm(int64(step)), outAddr)
			}
			b.Stg(addr, 0, v, 4)
		}
	}
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	w := &Workload{
		Name:        "transpose_" + variant.String(),
		Description: fmt.Sprintf("%dx%d matrix transpose, %s variant", n, n, variant),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			inBuf, err := dev.Alloc(4 * n * n)
			if err != nil {
				return nil, err
			}
			outBuf, err := dev.Alloc(4 * n * n)
			if err != nil {
				return nil, err
			}
			data := make([]float32, n*n)
			for i := range data {
				data[i] = float32(i%1021) * 0.5
			}
			if err := dev.WriteF32(inBuf, data); err != nil {
				return nil, err
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D2(n/transTile, n/transTile),
				Block:  sim.D2(transTile, transRows),
				Params: []uint64{inBuf.Addr, outBuf.Addr, uint64(uint32(n))},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(outBuf, n*n)
				if err != nil {
					return err
				}
				gridX := n / transTile
				for blin := 0; blin < gridX*gridX; blin++ {
					if !res.BlockRan(blin) {
						continue
					}
					bxi, byi := blin%gridX, blin/gridX
					for dy := 0; dy < transTile; dy++ {
						for dx := 0; dx < transTile; dx++ {
							xx, yy := bxi*transTile+dx, byi*transTile+dy
							if got[xx*n+yy] != data[yy*n+xx] {
								return fmt.Errorf("out[%d][%d] = %v, want %v", xx, yy, got[xx*n+yy], data[yy*n+xx])
							}
						}
					}
				}
				return nil
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

func init() {
	register("transpose_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return Transpose(TransposeNaive, scale, arch) })
	register("transpose_shared", func(scale int, arch gpu.Arch) (*Workload, error) { return Transpose(TransposeShared, scale, arch) })
	register("transpose_padded", func(scale int, arch gpu.Arch) (*Workload, error) { return Transpose(TransposePadded, scale, arch) })
}
