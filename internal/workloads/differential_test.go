package workloads

import (
	"reflect"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sim"
)

// differentialScale picks a small problem size per workload so the full
// sweep stays fast while still spanning several SMs.
func differentialScale(name string) int {
	switch name {
	case "mixbench_sp_naive", "mixbench_sp_vec4", "mixbench_dp_naive",
		"mixbench_dp_vec4", "mixbench_int_naive", "mixbench_int_vec4":
		return 4
	case "jacobi_naive", "jacobi_texture", "jacobi_restrict", "jacobi_shared":
		return 128
	case "sgemm_naive", "sgemm_shared", "sgemm_shared_vec":
		return 64
	case "transpose_naive", "transpose_shared", "transpose_padded":
		return 64
	case "spill_pressure", "histogram_global", "histogram_shared":
		return 4
	}
	return 0
}

// TestPerturbedParallelDifferential extends the differential guarantee to
// the sensitivity sweep's perturbation matrix: a perturbed Arch is just
// another architecture, so every (workload, perturbation, arch) triple
// must also be bit-identical between Workers=1 and Workers=4 — otherwise
// a sweep's dominant resource could depend on the daemon's parallelism.
// One workload per family keeps the matrix affordable; the plain
// differential test still covers every workload on the stock config.
func TestPerturbedParallelDifferential(t *testing.T) {
	reps := []string{
		"mixbench_sp_naive", "jacobi_naive", "sgemm_naive",
		"transpose_shared", "spill_pressure", "histogram_shared",
		"reduction_atomic",
	}
	cfg := sim.Config{SampleSMs: 4}
	for _, arch := range []gpu.Arch{gpu.V100(), gpu.A100()} {
		for _, name := range reps {
			for _, p := range gpu.Perturbations() {
				p := p
				t.Run(arch.SM+"/"+name+"/"+p.ID(), func(t *testing.T) {
					pa := p.Apply(arch)
					run := func(workers int) (*sim.Result, []byte) {
						w, err := BuildArch(name, differentialScale(name), pa)
						if err != nil {
							t.Fatalf("BuildArch: %v", err)
						}
						dev := sim.NewDevice(pa)
						c := cfg
						c.Workers = workers
						res, err := Execute(w, dev, c)
						if err != nil {
							t.Fatalf("Execute(Workers=%d): %v", workers, err)
						}
						return res, dev.MemorySnapshot()
					}
					seqRes, seqMem := run(1)
					parRes, parMem := run(4)
					seqRes.Host, parRes.Host = sim.HostStats{}, sim.HostStats{}
					if !reflect.DeepEqual(seqRes, parRes) {
						t.Errorf("Result differs between Workers=1 and Workers=4 under %s:\nseq: %+v\npar: %+v",
							p.ID(), seqRes, parRes)
					}
					if !reflect.DeepEqual(seqMem, parMem) {
						t.Errorf("device memory differs between Workers=1 and Workers=4 under %s", p.ID())
					}
				})
			}
		}
	}
}

// TestParallelDifferential is the acceptance proof for parallel
// simulation: every registered workload, run with Workers=1 and
// Workers=4 on fresh devices, must produce a bit-identical Result
// (HostStats excepted — wall time is genuinely nondeterministic) and
// byte-identical device memory. Any divergence means per-SM state
// leaked, the merge order drifted, or an atomic lost an update.
func TestParallelDifferential(t *testing.T) {
	cfg := sim.Config{SampleSMs: 4}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) (*sim.Result, []byte) {
				w, err := Build(name, differentialScale(name))
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				dev := sim.NewDevice(gpu.V100())
				c := cfg
				c.Workers = workers
				res, err := Execute(w, dev, c)
				if err != nil {
					t.Fatalf("Execute(Workers=%d): %v", workers, err)
				}
				return res, dev.MemorySnapshot()
			}
			seqRes, seqMem := run(1)
			parRes, parMem := run(4)
			if seqRes.Host.Workers != 1 || parRes.Host.Workers < 1 {
				t.Errorf("Host.Workers = %d/%d, want 1 and >=1",
					seqRes.Host.Workers, parRes.Host.Workers)
			}
			seqRes.Host, parRes.Host = sim.HostStats{}, sim.HostStats{}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("Result differs between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", seqRes, parRes)
			}
			if !reflect.DeepEqual(seqMem, parMem) {
				i := 0
				for i < len(seqMem) && i < len(parMem) && seqMem[i] == parMem[i] {
					i++
				}
				t.Errorf("device memory differs between Workers=1 and Workers=4 (first divergence at byte %d of %d)", i, len(seqMem))
			}
		})
	}
}
