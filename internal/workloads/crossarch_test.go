package workloads

import (
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sim"
)

// TestAllWorkloadsOnA100 runs every registered workload (small scale) on
// the Ampere description: the kernels, the simulator and the analyses are
// architecture-agnostic, the paper's extensibility claim.
func TestAllWorkloadsOnA100(t *testing.T) {
	arch := gpu.A100()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			scale := 0
			switch name {
			case "mixbench_sp_naive", "mixbench_sp_vec4", "mixbench_dp_naive",
				"mixbench_dp_vec4", "mixbench_int_naive", "mixbench_int_vec4":
				scale = 4
			case "jacobi_naive", "jacobi_texture", "jacobi_restrict", "jacobi_shared":
				scale = 128
			case "sgemm_naive", "sgemm_shared", "sgemm_shared_vec":
				scale = 64
			case "transpose_naive", "transpose_shared", "transpose_padded":
				scale = 64
			case "spill_pressure":
				scale = 4
			case "histogram_global", "histogram_shared":
				scale = 4
			}
			w, err := Build(name, scale)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			dev := sim.NewDevice(arch)
			res, err := Execute(w, dev, sim.Config{SampleSMs: 1})
			if err != nil {
				t.Fatalf("Execute on A100: %v", err)
			}
			if res.Cycles <= 0 || res.NumSMs != arch.NumSMs {
				t.Errorf("bad result: cycles=%v NumSMs=%d", res.Cycles, res.NumSMs)
			}
		})
	}
}

// TestA100FasterWhereItShouldBe spot-checks that the bigger machine wins
// on a bandwidth-bound kernel.
func TestA100FasterWhereItShouldBe(t *testing.T) {
	w, err := Build("jacobi_naive", 512)
	if err != nil {
		t.Fatal(err)
	}
	devV := sim.NewDevice(gpu.V100())
	resV, err := Execute(w, devV, sim.Config{SampleSMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build("jacobi_naive", 512)
	if err != nil {
		t.Fatal(err)
	}
	devA := sim.NewDevice(gpu.A100())
	resA, err := Execute(w2, devA, sim.Config{SampleSMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resA.DurationSec >= resV.DurationSec {
		t.Errorf("A100 (%.3g s) not faster than V100 (%.3g s)", resA.DurationSec, resV.DurationSec)
	}
}
