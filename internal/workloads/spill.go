package workloads

import (
	"fmt"
	"math"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sim"
)

// SpillPressure is the Fig. 2 demonstration workload: a kernel whose
// working set of live values exceeds the register budget (compiled with a
// -maxrregcount analogue), so the register allocator spills to local
// memory — producing the STL/LDL instructions, the extra L1/L2 traffic,
// and the lg_throttle stalls that §4.2 detects.

const (
	spillValues = 24  // live float accumulators
	spillBudget = 16  // register budget forcing spills
	spillIters  = 32  // loop iterations touching every accumulator
	spillBlock  = 128 // threads per block
	spillBlocks = 160 // grid blocks (2 per SM)
)

var spillSource = []string{
	/* 1 */ `// register-pressure demo: too many live accumulators`,
	/* 2 */ `__global__ void pressure(const float* in, float* out, int iters) {`,
	/* 3 */ `  int gid = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  float acc[24];  // lives in registers ... until it does not`,
	/* 5 */ `  for (int j = 0; j < 24; j++) acc[j] = in[gid*24 + j];`,
	/* 6 */ `  for (int i = 0; i < iters; i++)`,
	/* 7 */ `    for (int j = 0; j < 24; j++)`,
	/* 8 */ `      acc[j] = acc[j] * acc[(j+1) % 24] + 0.1f;`,
	/* 9 */ `  float s = 0; for (int j = 0; j < 24; j++) s += acc[j];`,
	/* 10 */ `  out[gid] = s;`,
	/* 11 */ `}`,
}

// SpillPressureWorkload builds the workload; scale is the iteration count
// (<= 0 selects 32).
func SpillPressureWorkload(scale int, arch gpu.Arch) (*Workload, error) {
	return spillWorkload(scale, spillBudget, arch)
}

// SpillReliefWorkload is the same kernel compiled without the register
// cap — the §4.2 fix (raise -maxrregcount / drop the launch-bounds
// constraint) — so the advisor can re-execute the recommendation and
// measure the spill traffic disappearing.
func SpillReliefWorkload(scale int, arch gpu.Arch) (*Workload, error) {
	return spillWorkload(scale, 0, arch)
}

func spillWorkload(scale, maxRegs int, arch gpu.Arch) (*Workload, error) {
	iters := scale
	if iters <= 0 {
		iters = spillIters
	}
	b := kasm.NewBuilder("_Z8pressurePKfPfi", arch.SM, "pressure.cu")
	b.SetSource(spillSource)
	b.NumParams(3)

	b.Line(3)
	tid := b.TidX()
	ctaid := b.CtaidX()
	ntid := b.NTidX()
	gid := b.IMad(kasm.VR(ctaid), kasm.VR(ntid), kasm.VR(tid))
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)

	b.Line(5)
	off := b.IMul(kasm.VR(gid), kasm.VImm(spillValues*4))
	base := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	accs := make([]kasm.VReg, spillValues)
	for j := 0; j < spillValues; j++ {
		accs[j] = b.Ldg(base, int64(4*j), 4, false)
	}

	b.Line(6)
	i := b.MovImm(0)
	half := b.MovImmF32(0.1)
	b.LabelName("iters")
	b.Line(8)
	for j := 0; j < spillValues; j++ {
		b.FFmaTo(kasm.VR(accs[j]), kasm.VR(accs[j]), kasm.VR(accs[(j+1)%spillValues]), kasm.VR(half))
	}
	b.Line(6)
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p := b.ISetp("LT", kasm.VR(i), kasm.VImm(int64(iters)))
	b.BraIf(p, false, "iters")
	b.FreePred(p)

	b.Line(9)
	sum := b.FAdd(kasm.VR(accs[0]), kasm.VR(accs[1]))
	for j := 2; j < spillValues; j++ {
		b.FAddTo(kasm.VR(sum), kasm.VR(sum), kasm.VR(accs[j]))
	}
	b.Line(10)
	oOff := b.Shl(kasm.VR(gid), 2)
	oAddr := b.IMadWide(kasm.VR(oOff), kasm.VImm(1), out)
	b.Stg(oAddr, 0, sum, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{MaxRegs: maxRegs, Arch: arch})
	if err != nil {
		return nil, err
	}

	name := "spill_pressure"
	desc := fmt.Sprintf("register-pressure kernel compiled with maxrregcount=%d (forces spills)", maxRegs)
	if maxRegs <= 0 {
		name = "spill_relief"
		desc = "register-pressure kernel compiled without a register cap (no spills)"
	}
	threads := spillBlock * spillBlocks
	w := &Workload{
		Name:        name,
		Description: desc,
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			inBuf, err := dev.Alloc(4 * threads * spillValues)
			if err != nil {
				return nil, err
			}
			outBuf, err := dev.Alloc(4 * threads)
			if err != nil {
				return nil, err
			}
			data := make([]float32, threads*spillValues)
			for idx := range data {
				data[idx] = 0.1 + float32(idx%5)*0.08
			}
			if err := dev.WriteF32(inBuf, data); err != nil {
				return nil, err
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D1(spillBlocks),
				Block:  sim.D1(spillBlock),
				Params: []uint64{inBuf.Addr, outBuf.Addr, uint64(uint32(iters))},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(outBuf, threads)
				if err != nil {
					return err
				}
				for th := 0; th < threads; th++ {
					if !res.BlockRan(th / spillBlock) {
						continue
					}
					acc := make([]float32, spillValues)
					copy(acc, data[th*spillValues:(th+1)*spillValues])
					for it := 0; it < iters; it++ {
						for j := 0; j < spillValues; j++ {
							acc[j] = acc[j]*acc[(j+1)%spillValues] + 0.1
						}
					}
					var want float32
					for j := 0; j < spillValues; j++ {
						want += acc[j]
					}
					if g := got[th]; !almostEqual(float64(g), float64(want), 1e-4) &&
						!(math.IsInf(float64(want), 0) && math.IsInf(float64(g), 0)) {
						return fmt.Errorf("thread %d: %v, want %v", th, g, want)
					}
				}
				return nil
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

func init() {
	register("spill_pressure", SpillPressureWorkload)
	register("spill_relief", SpillReliefWorkload)
}
