package workloads

import (
	"testing"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

func TestJacobiVariantsCorrect(t *testing.T) {
	for _, name := range []string{"jacobi_naive", "jacobi_texture", "jacobi_restrict", "jacobi_shared"} {
		t.Run(name, func(t *testing.T) {
			_, res := runWorkload(t, name, 128, sim.Config{SampleSMs: 2})
			if res.Cycles <= 0 {
				t.Error("no cycles")
			}
		})
	}
}

func TestJacobiInstructionMix(t *testing.T) {
	wn, err := Build("jacobi_naive", 128)
	if err != nil {
		t.Fatal(err)
	}
	ops := wn.Kernel.CountOpcodes()
	// 5 stencil loads + 2 guarded boundary re-reads for left/right.
	if ops[sass.OpLDG] != 7 {
		t.Errorf("naive LDG count = %d, want 7", ops[sass.OpLDG])
	}
	// §4.7: exactly six I2F conversions.
	if ops[sass.OpI2F] != 6 {
		t.Errorf("I2F count = %d, want 6 (paper §5.2)", ops[sass.OpI2F])
	}
	if ops[sass.OpTEX] != 0 {
		t.Error("naive variant has TEX instructions")
	}

	wt, err := Build("jacobi_texture", 128)
	if err != nil {
		t.Fatal(err)
	}
	ops = wt.Kernel.CountOpcodes()
	if ops[sass.OpTEX] != 5 || ops[sass.OpLDG] != 0 {
		t.Errorf("texture variant: %d TEX, %d LDG; want 5, 0", ops[sass.OpTEX], ops[sass.OpLDG])
	}

	wr, err := Build("jacobi_restrict", 128)
	if err != nil {
		t.Fatal(err)
	}
	nc := 0
	for i := range wr.Kernel.Insts {
		in := &wr.Kernel.Insts[i]
		if in.Op == sass.OpLDG && in.IsNC() {
			nc++
		}
	}
	if nc != 7 {
		t.Errorf("restrict variant NC loads = %d, want 7", nc)
	}

	ws, err := Build("jacobi_shared", 128)
	if err != nil {
		t.Fatal(err)
	}
	ops = ws.Kernel.CountOpcodes()
	if ops[sass.OpLDS] == 0 || ops[sass.OpSTS] == 0 || ops[sass.OpBAR] == 0 {
		t.Errorf("shared variant missing shared-memory traffic: %v", ops)
	}
	if ws.Kernel.SharedBytes < jacobiBx*jacobiBy*4 {
		t.Errorf("shared variant SharedBytes = %d", ws.Kernel.SharedBytes)
	}
}

func TestJacobiTextureSpeedsUpAndThrottles(t *testing.T) {
	// §5.2: texture improved kernel duration by 39.2% (1.64x) and moved
	// tex_throttle stalls from 0% to 24.65%.
	_, rn := runWorkload(t, "jacobi_naive", 1024, sim.Config{SampleSMs: 1})
	_, rt := runWorkload(t, "jacobi_texture", 1024, sim.Config{SampleSMs: 1})
	speedup := rn.Cycles / rt.Cycles
	t.Logf("texture speedup %.2fx (naive %.0f, texture %.0f)", speedup, rn.Cycles, rt.Cycles)
	if speedup < 1.3 {
		t.Errorf("texture variant not faster: %.2fx (paper: 1.64x)", speedup)
	}
	if rn.StallShare(sim.StallTexThrottle) != 0 {
		t.Error("naive kernel reports tex_throttle stalls")
	}
	if rt.StallShare(sim.StallTexThrottle) <= 0 {
		t.Error("texture kernel reports no tex_throttle stalls (paper: 24.65%)")
	}
	t.Logf("tex_throttle share: naive %.2f%%, texture %.2f%%",
		100*rn.StallShare(sim.StallTexThrottle), 100*rt.StallShare(sim.StallTexThrottle))
}

func TestJacobiRestrictSmallEffect(t *testing.T) {
	// §5.2: __restrict__ improved performance by only 0.3% — tiny but
	// not harmful. Accept anything from "no change" to a modest win.
	_, rn := runWorkload(t, "jacobi_naive", 256, sim.Config{SampleSMs: 2})
	_, rr := runWorkload(t, "jacobi_restrict", 256, sim.Config{SampleSMs: 2})
	ratio := rn.Cycles / rr.Cycles
	t.Logf("restrict speedup %.3fx", ratio)
	if ratio < 0.9 || ratio > 1.5 {
		t.Errorf("restrict effect out of expected range: %.3fx (paper: +0.3%%)", ratio)
	}
}
