package workloads

import (
	"testing"

	"gpuscout/internal/sim"
)

func TestReductionCorrect(t *testing.T) {
	_, ra := runWorkload(t, "reduction_atomic", 0, sim.Config{SampleSMs: 2})
	_, rs := runWorkload(t, "reduction_shfl", 0, sim.Config{SampleSMs: 2})
	if ra.Counters.GlobalAtomics == 0 || rs.Counters.GlobalAtomics == 0 {
		t.Fatal("no atomics recorded")
	}
	// The shuffle variant issues one atomic per warp instead of one per
	// thread: a 32x reduction.
	if rs.Counters.GlobalAtomics*32 != ra.Counters.GlobalAtomics {
		t.Errorf("atomics: %d (shfl) vs %d (atomic); want 32x fewer",
			rs.Counters.GlobalAtomics, ra.Counters.GlobalAtomics)
	}
}

func TestReductionShflFaster(t *testing.T) {
	_, ra := runWorkload(t, "reduction_atomic", 0, sim.Config{SampleSMs: 1})
	_, rs := runWorkload(t, "reduction_shfl", 0, sim.Config{SampleSMs: 1})
	speedup := ra.Cycles / rs.Cycles
	t.Logf("warp-shuffle reduction speedup: %.2fx (atomic %.0f, shfl %.0f)",
		speedup, ra.Cycles, rs.Cycles)
	// The per-SM bandwidth-slice model spreads the single-address L2
	// contention across SMs, so the measured gap understates the real
	// one; the direction and the atomic-count reduction are the point.
	if speedup < 1.15 {
		t.Errorf("shuffle reduction not faster: %.2fx", speedup)
	}
	// Shuffles execute on the MIO pipe: their consumers show
	// short-scoreboard dependencies absent in the atomic variant.
	if rs.Counters.StallCycles[sim.StallShortScoreboard] <= ra.Counters.StallCycles[sim.StallShortScoreboard] {
		t.Error("shuffle variant shows no extra short_scoreboard pressure")
	}
}
