package workloads

import (
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// runWorkload executes a workload at the given scale on a fresh V100 and
// verifies its output.
func runWorkload(t *testing.T, name string, scale int, cfg sim.Config) (*Workload, *sim.Result) {
	t.Helper()
	w, err := Build(name, scale)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	dev := sim.NewDevice(gpu.V100())
	res, err := Execute(w, dev, cfg)
	if err != nil {
		t.Fatalf("Execute(%s): %v", name, err)
	}
	return w, res
}

func TestMixbenchVariantsCorrect(t *testing.T) {
	for _, name := range []string{
		"mixbench_sp_naive", "mixbench_sp_vec4",
		"mixbench_dp_naive", "mixbench_dp_vec4",
		"mixbench_int_naive", "mixbench_int_vec4",
	} {
		t.Run(name, func(t *testing.T) {
			// Small iteration count: correctness only.
			_, res := runWorkload(t, name, 4, sim.Config{SampleSMs: 2})
			if res.Cycles <= 0 {
				t.Error("no cycles")
			}
		})
	}
}

func TestMixbenchNaiveHasScalarLoads(t *testing.T) {
	w, err := Build("mixbench_sp_naive", 4)
	if err != nil {
		t.Fatal(err)
	}
	vec, nonvec := 0, 0
	for i := range w.Kernel.Insts {
		in := &w.Kernel.Insts[i]
		if in.Op != sass.OpLDG {
			continue
		}
		if in.IsVectorized() {
			vec++
		} else {
			nonvec++
		}
	}
	if nonvec != mixGranularity || vec != 0 {
		t.Errorf("naive kernel: %d scalar, %d vector loads; want %d scalar", nonvec, vec, mixGranularity)
	}

	wv, err := Build("mixbench_sp_vec4", 4)
	if err != nil {
		t.Fatal(err)
	}
	vec, nonvec = 0, 0
	for i := range wv.Kernel.Insts {
		in := &wv.Kernel.Insts[i]
		if in.Op == sass.OpLDG {
			if in.IsVectorized() {
				vec++
			} else {
				nonvec++
			}
		}
	}
	if vec != mixGranularity/4 || nonvec != 0 {
		t.Errorf("vec4 kernel: %d scalar, %d vector loads; want %d vector", nonvec, vec, mixGranularity/4)
	}
}

func TestMixbenchVectorizationSpeedsUp(t *testing.T) {
	// The §5.1 headline: vectorized loads win substantially at the
	// paper's compute_iterations=96 for every datatype.
	for _, tc := range []struct {
		naive, vec string
		minSpeedup float64
	}{
		{"mixbench_sp_naive", "mixbench_sp_vec4", 2.0},
		{"mixbench_dp_naive", "mixbench_dp_vec4", 1.3},
		{"mixbench_int_naive", "mixbench_int_vec4", 2.0},
	} {
		t.Run(tc.naive, func(t *testing.T) {
			// 24 iterations: the per-iteration effect equals the paper's 96.
			_, rn := runWorkload(t, tc.naive, 24, sim.Config{SampleSMs: 1})
			_, rv := runWorkload(t, tc.vec, 24, sim.Config{SampleSMs: 1})
			speedup := rn.Cycles / rv.Cycles
			if speedup < tc.minSpeedup {
				t.Errorf("speedup = %.2fx, want >= %.1fx (paper: 3.77-4.44x)", speedup, tc.minSpeedup)
			}
			t.Logf("%s -> %s: %.2fx (naive %.0f cy, vec %.0f cy)", tc.naive, tc.vec, speedup, rn.Cycles, rv.Cycles)
		})
	}
}

func TestMixbenchLongScoreboardDrops(t *testing.T) {
	// §5.1: long scoreboard stalls fell from 70% to 62% per active warp
	// after vectorization — direction must match.
	_, rn := runWorkload(t, "mixbench_sp_naive", 24, sim.Config{SampleSMs: 1})
	_, rv := runWorkload(t, "mixbench_sp_vec4", 24, sim.Config{SampleSMs: 1})
	n := rn.StallShare(sim.StallLongScoreboard)
	v := rv.StallShare(sim.StallLongScoreboard)
	t.Logf("long_scoreboard share: naive %.1f%%, vec %.1f%%", 100*n, 100*v)
	if n <= 0 {
		t.Fatal("naive kernel shows no long_scoreboard stalls")
	}
	if v >= n {
		t.Errorf("vectorization did not reduce long_scoreboard share: %.3f -> %.3f", n, v)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(Names()) < 6 {
		t.Errorf("registry too small: %v", Names())
	}
	if _, err := Build("nope", 0); err == nil {
		t.Error("Build accepted unknown workload")
	}
}
