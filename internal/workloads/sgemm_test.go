package workloads

import (
	"testing"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

func TestSGEMMVariantsCorrect(t *testing.T) {
	for _, name := range []string{"sgemm_naive", "sgemm_shared", "sgemm_shared_vec"} {
		t.Run(name, func(t *testing.T) {
			_, res := runWorkload(t, name, 128, sim.Config{SampleSMs: 2})
			if res.Cycles <= 0 {
				t.Error("no cycles")
			}
		})
	}
}

func TestSGEMMInstructionMix(t *testing.T) {
	wn, err := Build("sgemm_naive", 128)
	if err != nil {
		t.Fatal(err)
	}
	ops := wn.Kernel.CountOpcodes()
	if ops[sass.OpLDS] != 0 || ops[sass.OpSTS] != 0 {
		t.Error("naive kernel uses shared memory")
	}
	if ops[sass.OpLDG] != 3 { // A, B in loop + C in epilogue
		t.Errorf("naive LDG static count = %d, want 3", ops[sass.OpLDG])
	}

	ws, err := Build("sgemm_shared", 128)
	if err != nil {
		t.Fatal(err)
	}
	ops = ws.Kernel.CountOpcodes()
	if ops[sass.OpLDS] != 2*4*sgemmTile { // 64-deep K tile: 128 LDS
		t.Errorf("shared LDS count = %d, want %d", ops[sass.OpLDS], 2*4*sgemmTile)
	}
	if ops[sass.OpBAR] != 2 {
		t.Errorf("shared BAR count = %d, want 2", ops[sass.OpBAR])
	}
	if ws.Kernel.SharedBytes < 2*sgemmTile*sgemmTile*4 {
		t.Errorf("shared SharedBytes = %d", ws.Kernel.SharedBytes)
	}

	wv, err := Build("sgemm_shared_vec", 128)
	if err != nil {
		t.Fatal(err)
	}
	vecLoads := 0
	for i := range wv.Kernel.Insts {
		in := &wv.Kernel.Insts[i]
		if in.Op == sass.OpLDG && in.IsVectorized() {
			vecLoads++
		}
	}
	if vecLoads != 2 {
		t.Errorf("shared_vec vectorized loads = %d, want 2", vecLoads)
	}
	// §5.3: the paper reports a register increase 25 -> 72 from
	// vectorizing; our allocator is leaner, so we only require that the
	// vectorized variant does not use fewer registers than the naive one.
	if wv.Kernel.NumRegs < wn.Kernel.NumRegs {
		t.Errorf("shared_vec regs (%d) below naive regs (%d)",
			wv.Kernel.NumRegs, wn.Kernel.NumRegs)
	}
	t.Logf("registers: naive=%d shared=%d shared_vec=%d",
		wn.Kernel.NumRegs, ws.Kernel.NumRegs, wv.Kernel.NumRegs)
}

func TestSGEMMSharedSpeedsUp(t *testing.T) {
	// §5.3 headline: shared-memory tiling wins by a large factor (54x at
	// 10240^2 on the V100; at simulator scale we require >= 5x) and
	// vectorized tile loads add a further improvement (paper: +8.5%).
	_, rn := runWorkload(t, "sgemm_naive", 256, sim.Config{SampleSMs: 1})
	_, rs := runWorkload(t, "sgemm_shared", 256, sim.Config{SampleSMs: 1})
	speedup := rn.Cycles / rs.Cycles
	t.Logf("shared speedup %.1fx (naive %.0f, shared %.0f)", speedup, rn.Cycles, rs.Cycles)
	if speedup < 3.5 {
		t.Errorf("shared tiling speedup %.1fx, want >= 3.5x at N=256 (paper: 54x at 10240)", speedup)
	}

	// The vectorized tile loads need enough resident blocks to pay off;
	// compare at N=512 where occupancy is high. (Paper: +8.5%; our
	// simulator shows parity — the instruction-count saving is offset by
	// the coarser load-completion granularity. Recorded in EXPERIMENTS.md.)
	_, rs512 := runWorkload(t, "sgemm_shared", 512, sim.Config{SampleSMs: 1})
	_, rv512 := runWorkload(t, "sgemm_shared_vec", 512, sim.Config{SampleSMs: 1})
	vgain := rs512.Cycles / rv512.Cycles
	t.Logf("vectorized tile loads: %.3fx over shared", vgain)
	if vgain < 0.95 {
		t.Errorf("vectorized variant regressed badly: %.3fx (paper: +8.5%%)", vgain)
	}
}

func TestSGEMMStallShifts(t *testing.T) {
	// §5.3: moving to shared memory raised long_scoreboard 7.8% -> 30.6%
	// and mio_throttle 0.03% -> 4.5%. Directions must match: the shared
	// variant gains MIO pressure it did not have before.
	_, rn := runWorkload(t, "sgemm_naive", 256, sim.Config{SampleSMs: 1})
	_, rs := runWorkload(t, "sgemm_shared", 256, sim.Config{SampleSMs: 1})
	nMIO := rn.StallShare(sim.StallMIOThrottle) + rn.StallShare(sim.StallShortScoreboard)
	sMIO := rs.StallShare(sim.StallMIOThrottle) + rs.StallShare(sim.StallShortScoreboard)
	t.Logf("MIO-related share: naive %.2f%%, shared %.2f%%", 100*nMIO, 100*sMIO)
	if sMIO <= nMIO {
		t.Errorf("shared variant did not raise MIO pressure: %.4f -> %.4f", nMIO, sMIO)
	}
}
